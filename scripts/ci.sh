#!/usr/bin/env bash
# Offline CI pass: release build, full test suite, and a bench smoke run
# that executes every benchmark body once and verifies the JSON reports.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> cargo clippy --offline --workspace --all-targets -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> bench smoke pass (SIMTEST_BENCH_MODE=smoke)"
SIMTEST_BENCH_MODE=smoke cargo bench --offline -p bench

echo "==> verifying bench reports parse"
for suite in micro scheduler ixp_pipeline paper_artifacts queue; do
    report="results/bench_${suite}.json"
    [ -s "$report" ] || { echo "missing or empty $report" >&2; exit 1; }
    python3 -m json.tool "$report" > /dev/null \
        || { echo "$report is not valid JSON" >&2; exit 1; }
    echo "    ok: $report"
done

echo "==> accel smoke pass (experiments inference --smoke --jobs 2)"
./target/release/experiments --smoke --jobs 2 inference > /dev/null
python3 - <<'EOF'
import csv, sys

rows = list(csv.DictReader(open("results/i1_inference_batching.csv")))
tenants = [r["tenant"] for r in rows]
if tenants != ["chat", "vision", "rank", "embed"]:
    sys.exit(f"i1_inference_batching.csv: unexpected tenant rows {tenants}")
for r in rows:
    if r["class"] not in ("latency", "throughput"):
        sys.exit(f"i1_inference_batching.csv: bad class for {r['tenant']}")
    for col in ("Base p99 ms", "Coord p99 ms", "Base goodput/s", "Coord goodput/s"):
        if float(r[col]) <= 0.0:
            sys.exit(f"i1_inference_batching.csv: {r['tenant']} has no {col}")
    for col in ("Base mean batch", "Coord mean batch"):
        if float(r[col]) < 1.0:
            sys.exit(f"i1_inference_batching.csv: {r['tenant']} {col} below 1")

rows = list(csv.DictReader(open("results/i2_batch_preemption.csv")))
bym = {r["Metric"]: r for r in rows}
for t in ("chat", "vision", "rank", "embed"):
    for m in (f"{t} queue p99 ms", f"{t} mean batch"):
        if m not in bym:
            sys.exit(f"i2_batch_preemption.csv: missing row '{m}'")
triggers = bym.get("Triggers applied")
preempts = bym.get("Batches preempted")
if triggers is None or preempts is None:
    sys.exit("i2_batch_preemption.csv: missing trigger summary rows")
if int(triggers["no-coord"]) != 0:
    sys.exit("i2_batch_preemption.csv: uncoordinated run applied triggers")
if int(triggers["coord-trigger"]) == 0 or int(preempts["coord-trigger"]) == 0:
    sys.exit("i2_batch_preemption.csv: coordinated run never preempted a batch")
print("    ok: i1_inference_batching.csv and i2_batch_preemption.csv shapes verified")
EOF

# The rate gate below sums per-run wall time across worker threads, so
# on a host with fewer cores than jobs the threads contend and the
# measured rate halves against the serial committed baseline. Keep the
# parallel-merge path exercised only where the machine can back it.
smoke_jobs=2
[ "$(nproc)" -lt 2 ] && smoke_jobs=1
echo "==> experiments smoke pass (--smoke --jobs $smoke_jobs)"
baseline=$(mktemp)
git show HEAD:results/BENCH_experiments.json > "$baseline" 2>/dev/null || true
./target/release/experiments --smoke --jobs "$smoke_jobs" all > /dev/null
report="results/BENCH_experiments.json"
[ -s "$report" ] || { echo "missing or empty $report" >&2; exit 1; }
python3 -m json.tool "$report" > /dev/null \
    || { echo "$report is not valid JSON" >&2; exit 1; }
python3 - "$report" "$baseline" <<'EOF'
import json, os, sys
r = json.load(open(sys.argv[1]))
sr = r["sim_rate"]
print(f"    experiments: {len(r['tables'])} tables, wall {r['wall_micros']/1e6:.2f} s, "
      f"{int(sr['events'])} events @ {sr['events_per_sec']:.0f} events/s")
base = sys.argv[2]
# Regression gate against the committed baseline rate. ARCH_RATE_TOLERANCE
# is the allowed fractional slowdown before CI fails (default 0.25, i.e.
# fail below 75% of baseline; warn below 90%). Set it to "skip" to run
# warn-only on machines whose throughput is not comparable to the one
# that produced the committed baseline. The gate is skipped automatically
# when no baseline exists (fresh clone, offline git).
tol_raw = os.environ.get("ARCH_RATE_TOLERANCE", "0.25")
if os.path.isfile(base) and os.path.getsize(base) > 0:
    b = json.load(open(base)).get("sim_rate", {})
    if b.get("events_per_sec", 0) > 0:
        ratio = sr["events_per_sec"] / b["events_per_sec"]
        print(f"    rate vs committed baseline: {ratio:.2f}x "
              f"(baseline {b['events_per_sec']:.0f} events/s)")
        if ratio < 0.90:
            print(f"    warning: event rate {1 - ratio:.0%} below the "
                  f"committed baseline", file=sys.stderr)
        if tol_raw.lower() != "skip":
            try:
                tol = float(tol_raw)
            except ValueError:
                sys.exit(f"ARCH_RATE_TOLERANCE must be a fraction or "
                         f"'skip', got {tol_raw!r}")
            if ratio < 1.0 - tol:
                sys.exit(f"event rate regressed {1 - ratio:.0%} vs the "
                         f"committed baseline (tolerance {tol:.0%}; set "
                         f"ARCH_RATE_TOLERANCE to loosen or 'skip' to "
                         f"disable)")
else:
    print("    no committed baseline rate; gate skipped")
EOF
rm -f "$baseline"

echo "==> fault-injection smoke checks (r1/r2 reliability tables)"
python3 - <<'EOF'
import csv, json, sys

tables = json.load(open("results/BENCH_experiments.json"))["tables"]
for slug in ("r1_loss_sweep", "r2_reliability"):
    if slug not in tables:
        sys.exit(f"{slug} missing from BENCH_experiments.json tables")

rows = list(csv.DictReader(open("results/r1_loss_sweep.csv")))
if [r["loss %"] for r in rows] != ["0", "5", "10", "20"]:
    sys.exit("r1_loss_sweep.csv: unexpected loss sweep rows")
clean = rows[0]
if int(clean["drops"]) != 0 or int(clean["retransmits"]) != 0:
    sys.exit("r1_loss_sweep.csv: loss=0 row reports drops or retransmits")
if len({r["Base"] for r in rows}) != 1:
    sys.exit("r1_loss_sweep.csv: uncoordinated Base column is not loss-invariant")
if not any(int(r["drops"]) > 0 for r in rows[1:]):
    sys.exit("r1_loss_sweep.csv: no drops recorded under nonzero loss")
if not any(int(r["retransmits"]) > 0 for r in rows[1:]):
    sys.exit("r1_loss_sweep.csv: no retransmissions recorded under nonzero loss")

rows = list(csv.DictReader(open("results/r2_reliability.csv")))
byv = {r["Variant"]: r for r in rows}
faulty_ff = byv.get("f&f, faulty channel")
faulty_ack = byv.get("ack/retry, faulty channel")
if faulty_ff is None or faulty_ack is None:
    sys.exit("r2_reliability.csv: expected variants missing")
if int(faulty_ff["drops"]) == 0:
    sys.exit("r2_reliability.csv: faulty channel recorded no drops")
if int(faulty_ack["retransmits"]) == 0 or int(faulty_ack["acked"]) == 0:
    sys.exit("r2_reliability.csv: reliable variant never retransmitted/acked")
print("    ok: r1_loss_sweep.csv and r2_reliability.csv shapes verified")
EOF

echo "==> adversarial-tenant smoke pass (experiments a1 --smoke)"
./target/release/experiments --smoke --jobs 2 a1 > /dev/null
python3 - <<'EOF'
import csv, sys

rows = list(csv.DictReader(open("results/a1_price_of_anarchy.csv")))
if [r["adversaries"] for r in rows] != ["0", "1", "2", "4"]:
    sys.exit("a1_price_of_anarchy.csv: unexpected adversary-count rows")
cols = list(rows[0].keys())
expect = ["adversaries", "honest", "honest+load", "non-coop", "coord",
          "coord+def", "PoA", "recovered %", "throttled", "discounted"]
if cols != expect:
    sys.exit(f"a1_price_of_anarchy.csv: unexpected columns {cols}")
if len({r["honest"] for r in rows}) != 1:
    sys.exit("a1_price_of_anarchy.csv: honest baseline is not row-invariant")
for r in rows:
    for col in ("honest", "honest+load", "non-coop", "coord", "coord+def"):
        if float(r[col]) <= 0.0:
            sys.exit(f"a1_price_of_anarchy.csv: n={r['adversaries']} "
                     f"has nonpositive {col}")
print("    ok: a1_price_of_anarchy.csv shape verified")
EOF

echo "==> energy-controller smoke pass (experiments energy --smoke)"
./target/release/experiments --smoke --jobs 2 energy > /dev/null
python3 - <<'EOF'
import csv, sys

rows = list(csv.DictReader(open("results/e1_energy_qos.csv")))
cols = list(rows[0].keys())
expect = ["Config", "joules", "mean W", "worst p99 ms", "p99 under target",
          "violations", "knob actions"]
if cols != expect:
    sys.exit(f"e1_energy_qos.csv: unexpected columns {cols}")
configs = [r["Config"] for r in rows]
if configs != ["no management", "uncoordinated cap 105W",
               "uncoordinated cap 90W", "coordinated energy"]:
    sys.exit(f"e1_energy_qos.csv: unexpected config rows {configs}")
by = {r["Config"]: r for r in rows}
for r in rows:
    if float(r["joules"]) <= 0.0:
        sys.exit(f"e1_energy_qos.csv: {r['Config']} metered no energy")
if int(by["no management"]["knob actions"]) != 0:
    sys.exit("e1_energy_qos.csv: frozen baseline moved a knob")
if int(by["coordinated energy"]["knob actions"]) == 0:
    sys.exit("e1_energy_qos.csv: coordinated run never moved a knob")

rows = list(csv.DictReader(open("results/e2_energy_ablation.csv")))
configs = [r["Config"] for r in rows]
if configs != ["frozen (all knobs pinned)", "dvfs only", "cache ways only",
               "membw share only", "coordinated (all three)"]:
    sys.exit(f"e2_energy_ablation.csv: unexpected config rows {configs}")
by = {r["Config"]: r for r in rows}
frozen = by["frozen (all knobs pinned)"]
if float(frozen["saved %"]) != 0.0 or int(frozen["descents"]) != 0:
    sys.exit("e2_energy_ablation.csv: frozen baseline descended")
if int(by["coordinated (all three)"]["descents"]) == 0:
    sys.exit("e2_energy_ablation.csv: coordinated run never descended")
# Single-axis arms must leave the other two axes at full performance.
if by["dvfs only"]["final ways"] != "16" or by["dvfs only"]["final membw %"] != "100":
    sys.exit("e2_energy_ablation.csv: dvfs-only arm moved a non-dvfs knob")
if by["cache ways only"]["final dvfs %"] != "100" or by["cache ways only"]["final membw %"] != "100":
    sys.exit("e2_energy_ablation.csv: cache-only arm moved a non-cache knob")
if by["membw share only"]["final dvfs %"] != "100" or by["membw share only"]["final ways"] != "16":
    sys.exit("e2_energy_ablation.csv: membw-only arm moved a non-membw knob")
print("    ok: e1_energy_qos.csv and e2_energy_ablation.csv shapes verified")
EOF

echo "==> fleet smoke pass (experiments fleet --smoke)"
./target/release/experiments --smoke --jobs "$smoke_jobs" fleet > /dev/null
python3 - <<'EOF'
import csv, json, sys

rows = list(csv.DictReader(open("results/f1_fleet_scale.csv")))
cols = list(rows[0].keys())
expect = ["bus", "depth", "arm", "events", "offered", "adm %", "X (req/s)",
          "mean ms", "vs base %", "late %", "tunes l0/l1/l2", "drops"]
if cols != expect:
    sys.exit(f"f1_fleet_scale.csv: unexpected columns {cols}")
buses = ["fast 100us", "slow 3ms", "lossy 3ms/25%"]
if [r["bus"] for r in rows] != [b for b in buses for _ in range(4)]:
    sys.exit(f"f1_fleet_scale.csv: unexpected bus blocks {[r['bus'] for r in rows]}")
if [r["depth"] for r in rows] != ["-", "1", "2", "3"] * 3:
    sys.exit("f1_fleet_scale.csv: each bus block must sweep depths -,1,2,3")
base_rows = [r for r in rows if r["arm"] == "base"]
if len({r["events"] for r in base_rows}) != 1:
    sys.exit("f1_fleet_scale.csv: uncoordinated base must be bus-invariant")
for r in rows:
    if r["arm"] == "coord" and float(r["vs base %"]) >= 0.0:
        sys.exit(f"f1_fleet_scale.csv: no coordination benefit on "
                 f"{r['bus']} depth {r['depth']} ({r['vs base %']}%)")
    if int(r["events"]) <= 0:
        sys.exit(f"f1_fleet_scale.csv: empty run on {r['bus']} depth {r['depth']}")
if not any(int(r["drops"]) > 0 for r in rows if r["bus"].startswith("lossy")):
    sys.exit("f1_fleet_scale.csv: lossy bus recorded no channel drops")

rows = list(csv.DictReader(open("results/f2_fleet_determinism.csv")))
if [r["run"] for r in rows] != ["jobs=1", "jobs=4", "replay jobs=1"]:
    sys.exit(f"f2_fleet_determinism.csv: unexpected runs {[r['run'] for r in rows]}")
if len({r["digest"] for r in rows}) != 1:
    sys.exit("f2_fleet_determinism.csv: digests diverged across thread counts")
if any(r["matches jobs=1"] != "yes" for r in rows):
    sys.exit("f2_fleet_determinism.csv: replay mismatch flagged")

fleet = json.load(open("results/BENCH_experiments.json"))["fleet"]
if fleet["runs"] <= 0 or fleet["events"] <= 0:
    sys.exit("BENCH_experiments.json: fleet block recorded no runs/events")
if len(fleet["per_shard_events"]) != int(fleet["shards"]):
    sys.exit("BENCH_experiments.json: per_shard_events width != shard count")
print("    ok: f1_fleet_scale.csv, f2_fleet_determinism.csv and fleet report verified")
EOF

echo "==> fleet shard byte-identity (2 shards, --jobs 1 vs 4)"
# ARCH_JOBS drives the *inner* shard fan-out (pool::default_jobs) while
# --jobs fans whole experiments; vary both so the scoped-thread shard
# merge itself is exercised, not just the outer experiment order.
fleet_tmp=$(mktemp -d)
ARCH_JOBS=1 ./target/release/experiments --smoke --shards 2 --jobs 1 fleet > /dev/null
cp results/f1_fleet_scale.csv results/f2_fleet_determinism.csv "$fleet_tmp/"
ARCH_JOBS=4 ./target/release/experiments --smoke --shards 2 --jobs 4 fleet > /dev/null
for csv in f1_fleet_scale f2_fleet_determinism; do
    cmp "results/${csv}.csv" "$fleet_tmp/${csv}.csv" || {
        echo "${csv}.csv differs between --jobs 1 and --jobs 4" >&2
        exit 1
    }
done
echo "    ok: 2-shard fleet CSVs byte-identical across worker counts"
rm -rf "$fleet_tmp"

echo "==> PDES island-threads smoke pass (i1 + a1 byte-identity vs serial)"
pdes_tmp=$(mktemp -d)
for sel in i1 a1; do
    ./target/release/experiments --smoke "$sel" > /dev/null
    cp results/BENCH_experiments.json "$pdes_tmp/${sel}_serial.json"
    for csv in $(python3 -c "import json; print(' '.join(json.load(open('results/BENCH_experiments.json'))['tables']))"); do
        cp "results/${csv}.csv" "$pdes_tmp/${csv}_serial.csv"
    done
    ./target/release/experiments --smoke --island-threads 3 "$sel" > /dev/null
    for csv in $(python3 -c "import json; print(' '.join(json.load(open('results/BENCH_experiments.json'))['tables']))"); do
        cmp "results/${csv}.csv" "$pdes_tmp/${csv}_serial.csv" || {
            echo "${csv}.csv differs between --island-threads 1 and 3" >&2
            exit 1
        }
    done
    python3 - "$pdes_tmp/${sel}_serial.json" results/BENCH_experiments.json <<'EOF'
import json, sys
serial = json.load(open(sys.argv[1]))
par = json.load(open(sys.argv[2]))
si, pi = serial["events_by_island"], par["events_by_island"]
for k in ("x86", "ixp", "accel", "sync_points"):
    if si[k] != pi[k]:
        sys.exit(f"events_by_island.{k} diverged: serial {si[k]} vs parallel {pi[k]}")
sr, pr = serial["sim_rate"], par["sim_rate"]
if sr["events"] != pr["events"]:
    sys.exit(f"event counts diverged: serial {sr['events']} vs parallel {pr['events']}")
# Warn-only rate comparison: island servicing is bounded overhead, not a
# speedup (dispatch order is conserved), so only flag gross regressions.
if sr["events_per_sec"] > 0:
    ratio = pr["events_per_sec"] / sr["events_per_sec"]
    print(f"    island-threads 3 rate: {ratio:.2f}x serial "
          f"({pr['events_per_sec']:.0f} vs {sr['events_per_sec']:.0f} events/s)")
    if ratio < 0.80:
        print(f"    warning: parallel-islands pass ran {1 - ratio:.0%} "
              f"slower than serial", file=sys.stderr)
print(f"    ok: byte-identical CSVs and island counts for selection")
EOF
done
rm -rf "$pdes_tmp"

echo "==> chaos shrink replay check (SIMTEST_SEED reproducibility)"
chaos_log=$(mktemp)
SIMTEST_CHAOS_FORCE_FAIL=1 cargo test -q --offline \
    --test adversary_properties chaos_forced_failure > "$chaos_log" 2>&1 || true
seed=$(grep -o 'SIMTEST_SEED=[0-9]*' "$chaos_log" | head -n1 | cut -d= -f2)
shrunk=$(grep 'shrunk counterexample' "$chaos_log" | head -n1)
[ -n "$seed" ] && [ -n "$shrunk" ] || {
    echo "chaos_forced_failure produced no shrink report" >&2
    cat "$chaos_log" >&2
    exit 1
}
replay_log=$(mktemp)
SIMTEST_SEED="$seed" SIMTEST_CHAOS_FORCE_FAIL=1 cargo test -q --offline \
    --test adversary_properties chaos_forced_failure > "$replay_log" 2>&1 || true
replayed=$(grep 'shrunk counterexample' "$replay_log" | head -n1)
if [ "$shrunk" != "$replayed" ]; then
    echo "chaos replay diverged from the recorded shrink report:" >&2
    echo "  first:  $shrunk" >&2
    echo "  replay: $replayed" >&2
    exit 1
fi
echo "    ok: SIMTEST_SEED=$seed replays the identical shrunk counterexample"
rm -f "$chaos_log" "$replay_log"

echo "CI pass complete."
