#!/usr/bin/env bash
# Offline CI pass: release build, full test suite, and a bench smoke run
# that executes every benchmark body once and verifies the JSON reports.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> bench smoke pass (SIMTEST_BENCH_MODE=smoke)"
SIMTEST_BENCH_MODE=smoke cargo bench --offline -p bench

echo "==> verifying bench reports parse"
for suite in micro scheduler ixp_pipeline paper_artifacts; do
    report="results/bench_${suite}.json"
    [ -s "$report" ] || { echo "missing or empty $report" >&2; exit 1; }
    python3 -m json.tool "$report" > /dev/null \
        || { echo "$report is not valid JSON" >&2; exit 1; }
    echo "    ok: $report"
done

echo "CI pass complete."
