//! Building your own scheduling island against the coordination API.
//!
//! The paper argues Tune/Trigger should be *standard interfaces* exported
//! by system software, so new islands (a GPU runtime, a storage engine, an
//! I/O scheduler) can join coordination without knowing the others'
//! resource abstractions. This example implements a toy I/O-scheduler
//! island whose Tune translation is a poll-interval adjustment — the
//! paper's own example of heterogeneous translation (§3.3) — and drives it
//! through the global controller with wire-encoded messages.
//!
//! ```sh
//! cargo run --release --example custom_island
//! ```

use archipelago::coord::{
    wire, Action, Controller, CoordError, CoordMsg, CoordinationPolicy, EntityId, IslandId,
    IslandKind, Observation, RequestTypePolicy, ResourceManager,
};
use archipelago::simcore::Nanos;

/// A toy I/O-scheduler island: each entity has a poll interval; Tunes make
/// polling more or less aggressive, Triggers force an immediate poll.
struct IoSchedulerIsland {
    id: IslandId,
    poll_us: Vec<(u64, i64)>, // (local_key, poll interval in µs)
    immediate_polls: u32,
}

impl IoSchedulerIsland {
    fn new(id: IslandId) -> Self {
        IoSchedulerIsland {
            id,
            poll_us: Vec::new(),
            immediate_polls: 0,
        }
    }

    fn register(&mut self, local_key: u64, poll_us: i64) {
        self.poll_us.push((local_key, poll_us));
    }

    fn poll_of(&self, local_key: u64) -> Option<i64> {
        self.poll_us
            .iter()
            .find(|(k, _)| *k == local_key)
            .map(|&(_, p)| p)
    }

    fn entry_mut(&mut self, entity: EntityId) -> Result<&mut (u64, i64), CoordError> {
        let key = entity.0 as u64;
        self.poll_us
            .iter_mut()
            .find(|(k, _)| *k == key)
            .ok_or(CoordError::NotMapped {
                entity,
                island: IslandId(9),
            })
    }
}

impl ResourceManager for IoSchedulerIsland {
    fn island(&self) -> IslandId {
        self.id
    }
    fn kind(&self) -> IslandKind {
        IslandKind::Storage
    }
    fn apply_tune(&mut self, _now: Nanos, entity: EntityId, delta: i32) -> Result<(), CoordError> {
        // Translation: positive deltas mean "more resources" — here, a
        // shorter poll interval. 64 tune units halve/double the interval.
        let e = self.entry_mut(entity)?;
        let factor = 2f64.powf(-(delta as f64) / 64.0);
        e.1 = ((e.1 as f64 * factor).round() as i64).clamp(10, 1_000_000);
        Ok(())
    }
    fn apply_trigger(&mut self, _now: Nanos, entity: EntityId) -> Result<(), CoordError> {
        self.entry_mut(entity)?;
        self.immediate_polls += 1;
        Ok(())
    }
}

fn main() {
    let io_island = IslandId(7);
    let mut island = IoSchedulerIsland::new(io_island);
    let mut controller = Controller::new();

    // Initialisation: the island registers with the global controller,
    // then the entities register their island-local identities (§2.3).
    controller.handle(
        Nanos::ZERO,
        CoordMsg::RegisterIsland { island: io_island, kind: IslandKind::Storage },
    );
    let web = EntityId(1);
    let app = EntityId(2);
    let db = EntityId(3);
    for e in [web, app, db] {
        controller.handle(
            Nanos::ZERO,
            CoordMsg::RegisterEntity { entity: e, island: io_island, local_key: e.0 as u64 },
        );
        island.register(e.0 as u64, 1_000); // 1 ms poll to start
    }

    // A stock policy produces Tunes from classified requests; we encode
    // them to wire bytes (as the PCI mailbox would carry them), decode at
    // the controller, and apply the resolved actions on our island.
    let mut policy = RequestTypePolicy::new(web, app, db, io_island);
    let observations = [
        Observation::Request { class_id: 1, write: false },
        Observation::Request { class_id: 11, write: true },
        Observation::Request { class_id: 11, write: true },
        Observation::Request { class_id: 7, write: false },
    ];
    let mut bytes_on_wire = 0usize;
    for (i, obs) in observations.iter().enumerate() {
        let now = Nanos::from_millis(i as u64 * 10);
        for msg in policy.observe(now, obs) {
            let mut buf = Vec::new();
            bytes_on_wire += wire::encode(&msg, &mut buf);
            let (decoded, _) = wire::decode(&buf).expect("round-trip");
            for action in controller.handle(now, decoded) {
                match action {
                    Action::ApplyTune { local_key, delta, .. } => {
                        island
                            .apply_tune(now, EntityId(local_key as u32), delta)
                            .expect("bound entity");
                    }
                    Action::ApplyTrigger { local_key, .. } => {
                        island
                            .apply_trigger(now, EntityId(local_key as u32))
                            .expect("bound entity");
                    }
                    // Energy-knob verbs target the x86 island's DVFS /
                    // cache / membw lattice; an I/O scheduler has none.
                    Action::ApplyKnob { .. } => {}
                }
            }
        }
    }

    println!("I/O-scheduler island after coordination:");
    for e in [web, app, db] {
        println!(
            "  entity{} poll interval: {} us",
            e.0,
            island.poll_of(e.0 as u64).unwrap()
        );
    }
    println!(
        "controller stats: {:?}; {} bytes crossed the wire",
        controller.stats(),
        bytes_on_wire
    );
}
