//! Quickstart: build the two-island platform, run RUBiS with and without
//! coordination, and print the headline comparison.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use archipelago::coord::PolicyKind;
use archipelago::platform::{PlatformBuilder, RubisScenario};
use archipelago::simcore::Nanos;

fn main() {
    println!("archipelago quickstart: 60 simulated seconds of RUBiS on the x86-IXP platform\n");
    for (label, policy) in [
        ("baseline (no coordination)", PolicyKind::None),
        ("coord-ixp-dom0 (request-type Tunes)", PolicyKind::RequestType),
    ] {
        let mut sim = PlatformBuilder::new()
            .seed(42)
            .policy(policy)
            .build_rubis(RubisScenario::read_write_mix(24));
        let report = sim.run(Nanos::from_secs(60));
        let overall = report.rubis.responses.overall();
        println!("== {label}");
        println!(
            "   throughput {:.1} req/s | sessions {} | response mean {:.0} ms, sd {:.0}, max {:.0}",
            report.rubis.throughput,
            report.rubis.sessions,
            overall.mean(),
            overall.std_dev(),
            overall.max(),
        );
        println!(
            "   dropped packets {} | coordination messages {} ({} bytes on the wire)\n",
            report.net.guest_drops, report.coord.messages_sent, report.coord.bytes_sent,
        );
    }
    println!("Run `cargo run --release -p bench --bin experiments` for every paper artifact.");
}
