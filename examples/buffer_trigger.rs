//! Buffer-threshold Trigger coordination (§3.2 scheme 2, Figure 7 and
//! Table 3): purely system-level monitoring, no application knowledge.
//!
//! The IXP watches Domain-1's packet queue in its DRAM; when it crosses
//! 128 KiB an immediate Trigger boosts the dequeuing guest on the x86
//! island. Domain-2, playing from local disk, pays the interference cost.
//!
//! ```sh
//! cargo run --release --example buffer_trigger
//! ```

use archipelago::coord::PolicyKind;
use archipelago::platform::{MplayerScenario, PlatformBuilder};
use archipelago::simcore::Nanos;

fn main() {
    for (label, policy) in [
        ("baseline", PolicyKind::None),
        ("coord-trigger", PolicyKind::BufferTrigger),
    ] {
        let mut sim = PlatformBuilder::new()
            .seed(42)
            .policy(policy)
            .build_mplayer(MplayerScenario::trigger_setup());
        let r = sim.run(Nanos::from_secs(180));
        println!("== {label}");
        for p in &r.players {
            println!("   {}: {:.1} fps", p.name, p.achieved_fps);
        }
        println!(
            "   triggers applied: {} | IXP buffer mean {:.0} bytes, max {:.0} bytes",
            r.coord.triggers_applied,
            r.buffer_series.mean(),
            r.buffer_series.max_value().unwrap_or(0.0),
        );
        // A compact sparkline of the buffer occupancy over the run.
        let pts = r.buffer_series.points();
        if !pts.is_empty() {
            let max = r.buffer_series.max_value().unwrap_or(1.0).max(1.0);
            let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#'];
            let line: String = pts
                .iter()
                .step_by(pts.len().div_ceil(60).max(1))
                .map(|&(_, v)| glyphs[((v / max) * 7.0).round() as usize])
                .collect();
            println!("   buffer over time: [{line}]");
        }
        println!();
    }
}
