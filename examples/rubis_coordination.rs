//! RUBiS request-type coordination in detail (§3.1 of the paper).
//!
//! Shows per-request-type results, the weight regimes the IXP's DPI
//! classification drives, and the mis-coordination cost of per-request
//! regime switching versus the hysteresis extension.
//!
//! ```sh
//! cargo run --release --example rubis_coordination
//! ```

use archipelago::coord::PolicyKind;
use archipelago::platform::{PlatformBuilder, RubisScenario, RunReport};
use archipelago::simcore::Nanos;

fn run(policy: PolicyKind) -> RunReport {
    let mut sim = PlatformBuilder::new()
        .seed(42)
        .policy(policy)
        .build_rubis(RubisScenario::read_write_mix(24));
    sim.run(Nanos::from_secs(60))
}

fn main() {
    let base = run(PolicyKind::None);
    let coord = run(PolicyKind::RequestType);
    let hyst = run(PolicyKind::RequestTypeHysteresis);

    println!("Per-type mean / max response (ms): baseline vs per-request vs hysteresis\n");
    println!(
        "{:<26} {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8}",
        "request type", "base", "max", "coord", "max", "hyst", "max"
    );
    for (name, b) in base.rubis.responses.iter() {
        let c = coord.rubis.responses.summary(name);
        let h = hyst.rubis.responses.summary(name);
        println!(
            "{:<26} {:>8.0} {:>8.0} | {:>8.0} {:>8.0} | {:>8.0} {:>8.0}",
            name,
            b.mean(),
            b.max(),
            c.map(|s| s.mean()).unwrap_or(0.0),
            c.map(|s| s.max()).unwrap_or(0.0),
            h.map(|s| s.mean()).unwrap_or(0.0),
            h.map(|s| s.max()).unwrap_or(0.0),
        );
    }

    println!(
        "\ncoordination traffic: per-request {} msgs ({} bytes), hysteresis {} msgs ({} bytes)",
        coord.coord.messages_sent,
        coord.coord.bytes_sent,
        hyst.coord.messages_sent,
        hyst.coord.bytes_sent,
    );
    println!(
        "dropped packets: baseline {}, per-request {}, hysteresis {}",
        base.net.guest_drops, coord.net.guest_drops, hyst.net.guest_drops
    );
    println!("\nCPU utilization (% of one pCPU):");
    for (b, c) in base.cpu.iter().zip(coord.cpu.iter()) {
        println!(
            "  {:<6} baseline {:>5.1}  coordinated {:>5.1}",
            b.name, b.percent, c.percent
        );
    }
}
