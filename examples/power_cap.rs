//! Platform-level power capping through the coordination layer (the
//! paper's second motivating use case, §1, and the first item of its §5
//! future work).
//!
//! At the same watt budget, who you cap decides whether the applications
//! survive: the per-tile "biggest consumer" rule slows the streaming
//! guests themselves; the coordinated priority order caps the elastic
//! Dom0 background load first and preserves QoS.
//!
//! ```sh
//! cargo run --release --example power_cap
//! ```

use archipelago::platform::{MplayerScenario, PlatformBuilder, PowerStrategy};
use archipelago::simcore::Nanos;

fn main() {
    println!("Platform power capping on the Figure-6 platform (120 simulated seconds)\n");
    println!(
        "{:<36} {:>7} {:>7} {:>9} {:>9} {:>8}",
        "configuration", "mean W", "max W", "dom1 fps", "dom2 fps", "actions"
    );
    let configs: Vec<(String, Option<(f64, PowerStrategy)>)> = vec![
        ("uncapped".into(), None),
        (
            "cap 105 W, biggest-consumer".into(),
            Some((105.0, PowerStrategy::BiggestConsumer)),
        ),
        (
            "cap 105 W, coordinated priority".into(),
            Some((
                105.0,
                PowerStrategy::Priority(vec!["dom0".into(), "dom1".into(), "dom2".into()]),
            )),
        ),
        (
            "cap 100 W, coordinated priority".into(),
            Some((
                100.0,
                PowerStrategy::Priority(vec!["dom0".into(), "dom1".into(), "dom2".into()]),
            )),
        ),
    ];
    for (label, cap) in configs {
        let mut builder = PlatformBuilder::new().seed(42);
        if let Some((watts, strategy)) = cap {
            builder = builder.power_cap(watts, strategy);
        }
        let mut sim = builder.build_mplayer(MplayerScenario::figure6(384, 512));
        let r = sim.run(Nanos::from_secs(120));
        println!(
            "{:<36} {:>7.1} {:>7.1} {:>9.1} {:>9.1} {:>8}",
            label,
            r.power.mean_watts,
            r.power.max_watts,
            r.player("dom1").map(|p| p.achieved_fps).unwrap_or(0.0),
            r.player("dom2").map(|p| p.achieved_fps).unwrap_or(0.0),
            r.power.cap_actions,
        );
    }
    println!("\nThe coordinated order sacrifices the background load first; the");
    println!("application-blind rule caps the streams and destroys their QoS.");
}
