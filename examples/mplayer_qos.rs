//! MPlayer stream-property coordination (§3.2, Figure 6).
//!
//! Walks the paper's three weight configurations and then demonstrates the
//! automatic path: the `StreamQos` policy reads bit/frame rates from RTSP
//! session setup on the IXP and issues the weight Tunes itself.
//!
//! ```sh
//! cargo run --release --example mplayer_qos
//! ```

use archipelago::coord::PolicyKind;
use archipelago::platform::{MplayerScenario, PlatformBuilder};
use archipelago::simcore::Nanos;

fn main() {
    println!("Figure 6 configurations (dom1 target 20 fps, dom2 target 25 fps)\n");
    for (label, w1, w2, tandem) in [
        ("256-256 (defaults)", 256, 256, false),
        ("384-512 (coordinated weights)", 384, 512, false),
        ("384-640 + IXP threads (tandem)", 384, 640, true),
    ] {
        let mut sim = PlatformBuilder::new()
            .seed(42)
            .build_mplayer(MplayerScenario::figure6(w1, w2));
        if tandem {
            sim.set_flow_threads_by_vm(2, 4);
        }
        let r = sim.run(Nanos::from_secs(60));
        print!("{label:<32}");
        for p in &r.players {
            let verdict = if p.achieved_fps >= p.target_fps as f64 {
                "meets"
            } else {
                "MISSES"
            };
            print!("  {}: {:>5.1} fps ({verdict})", p.name, p.achieved_fps);
        }
        println!();
    }

    println!("\nAutomatic coordination: StreamQos policy reacts to RTSP setup\n");
    let mut sim = PlatformBuilder::new()
        .seed(42)
        .policy(PolicyKind::StreamQos)
        .build_mplayer(MplayerScenario::figure6(256, 256));
    let r = sim.run(Nanos::from_secs(60));
    for p in &r.players {
        println!(
            "  {}: {:.1} fps (target {})",
            p.name, p.achieved_fps, p.target_fps
        );
    }
    println!(
        "  policy issued {} coordination messages; {} tunes applied",
        r.coord.messages_sent, r.coord.tunes_applied
    );
}
