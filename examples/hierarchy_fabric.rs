//! Scaling coordination to many islands with the hierarchical fabric
//! (the paper's §5: "distributed coordination algorithms across multiple
//! island resource managers").
//!
//! Eight zones, each owning four islands with eight entities; Tune
//! traffic with 90% zone locality. A single global controller would
//! serialize all of it; the fabric resolves local messages locally and
//! routes only the cross-zone remainder through the root directory.
//!
//! ```sh
//! cargo run --release --example hierarchy_fabric
//! ```

use archipelago::coord::hierarchy::{HierarchicalController, ZoneId};
use archipelago::coord::{CoordMsg, EntityId, IslandId, IslandKind};
use archipelago::simcore::{Nanos, SimRng};

fn main() {
    let zones = 8u16;
    let islands_per_zone = 4u16;
    let entities_per_island = 8u32;
    let mut fabric = HierarchicalController::new(zones);
    let mut entities: Vec<(ZoneId, EntityId)> = Vec::new();
    for z in 0..zones {
        for i in 0..islands_per_zone {
            let island = IslandId(z * islands_per_zone + i);
            fabric.register_island(ZoneId(z), island, IslandKind::GeneralPurpose);
            for e in 0..entities_per_island {
                let entity = EntityId(island.0 as u32 * entities_per_island + e);
                fabric.register_entity(ZoneId(z), entity, island, e as u64);
                entities.push((ZoneId(z), entity));
            }
        }
    }

    let mut rng = SimRng::new(7);
    let msgs = 200_000u32;
    for i in 0..msgs {
        let origin = ZoneId((i % zones as u32) as u16);
        let want_local = rng.chance(0.9);
        let (_, entity) = loop {
            let pick = entities[rng.below(entities.len() as u64) as usize];
            if (pick.0 == origin) == want_local {
                break pick;
            }
        };
        fabric.handle(
            Nanos::from_micros(i as u64),
            origin,
            CoordMsg::Tune { entity, delta: 1, target: None },
        );
    }

    println!(
        "{} Tunes across {} islands in {} zones (90% zone-local traffic)\n",
        msgs,
        zones * islands_per_zone,
        zones
    );
    println!("{:<6} {:>9} {:>10} {:>10}", "zone", "local", "remote-in", "fwd-out");
    for z in 0..zones {
        let l = fabric.load(ZoneId(z));
        println!(
            "{:<6} {:>9} {:>10} {:>10}",
            z, l.local, l.remote_in, l.forwarded_out
        );
    }
    println!(
        "\nroot directory lookups: {} ({:.1}% of traffic; a centralized \
         controller would serialize 100%)",
        fabric.root_lookups(),
        fabric.root_lookups() as f64 * 100.0 / msgs as f64
    );
}
