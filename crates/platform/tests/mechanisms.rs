//! Platform mechanism tests: retransmission, admission control,
//! receive-window backpressure, and the coordination apply path.

use coord::PolicyKind;
use platform::{MplayerScenario, PlatformBuilder, RubisScenario};
use simcore::Nanos;

#[test]
fn overload_produces_drops_and_retransmissions_recover() {
    // Brutally small queues: many drops, yet every client keeps making
    // progress because retransmission recovers lost requests.
    let mut scen = RubisScenario::read_write_mix(24);
    scen.rx_window = 2;
    let mut sim = PlatformBuilder::new()
        .seed(11)
        .queue_caps(2, 3)
        .build_rubis(scen);
    let r = sim.run(Nanos::from_secs(60));
    assert!(r.net.guest_drops > 100, "tiny queues overflow: {}", r.net.guest_drops);
    assert!(
        r.rubis.completed > 500,
        "clients still complete requests via retransmission: {}",
        r.rubis.completed
    );
    // Retransmission tails show up in the maxima.
    assert!(
        r.rubis.responses.overall().max() > 400.0,
        "timeout tails visible: {}",
        r.rubis.responses.overall().max()
    );
}

#[test]
fn generous_queues_eliminate_drops() {
    let mut scen = RubisScenario::read_write_mix(24);
    scen.rx_window = 64;
    let mut sim = PlatformBuilder::new()
        .seed(11)
        .queue_caps(64, 200)
        .build_rubis(scen);
    let r = sim.run(Nanos::from_secs(30));
    assert_eq!(r.net.guest_drops, 0, "no admission pressure, no drops");
    assert!(r.rubis.completed > 500);
}

#[test]
fn rto_knob_shapes_retransmission_pressure() {
    // Short client timeouts retransmit aggressively into the overloaded
    // tiers (more duplicate sends, more drops); long timeouts park the
    // client instead. Tails exceed the respective timeout either way.
    let run = |rto_ms: u64| {
        let mut sim = PlatformBuilder::new()
            .seed(7)
            .rto_initial(Nanos::from_millis(rto_ms))
            .queue_caps(4, 6)
            .build_rubis(RubisScenario::read_write_mix(24));
        sim.run(Nanos::from_secs(60))
    };
    let short = run(300);
    let long = run(3_000);
    assert!(short.net.guest_drops > 0, "scenario actually drops");
    assert!(
        short.net.guest_drops > long.net.guest_drops,
        "aggressive timeouts retransmit more into the overload: {} vs {}",
        short.net.guest_drops,
        long.net.guest_drops
    );
    assert!(short.rubis.responses.overall().max() > 300.0);
    assert!(long.rubis.responses.overall().max() > 3_000.0);
}

#[test]
fn mplayer_backpressure_parks_frames_on_the_ixp() {
    // A starved decoder cannot consume; the guest receive window closes
    // and frames pile up in IXP DRAM (the Figure 7 mechanism), without a
    // single packet being lost.
    let mut scen = MplayerScenario::trigger_setup();
    scen.buffer_threshold = None; // no triggers: pure backpressure
    let mut sim = PlatformBuilder::new().seed(13).build_mplayer(scen);
    let r = sim.run(Nanos::from_secs(120));
    assert!(
        r.buffer_series.max_value().unwrap_or(0.0) > 100_000.0,
        "standing queue forms: {:?}",
        r.buffer_series.max_value()
    );
    assert_eq!(r.net.ixp_drops, 0, "backpressure, not loss");
    let d1 = r.player("dom1").unwrap();
    assert!(d1.achieved_fps < d1.target_fps as f64, "decoder is starved");
}

#[test]
fn coordination_latency_delays_but_does_not_lose_tunes() {
    let run = |latency_us: u64| {
        let mut sim = PlatformBuilder::new()
            .seed(21)
            .policy(PolicyKind::RequestType)
            .coord_latency(Nanos::from_micros(latency_us))
            .build_rubis(RubisScenario::read_write_mix(24));
        sim.run(Nanos::from_secs(20))
    };
    let fast = run(1);
    let slow = run(10_000);
    // Applications are serialized through Dom0, so a handful may still be
    // in flight when the run ends — but none are lost along the way.
    for r in [&fast, &slow] {
        assert!(r.coord.tunes_applied <= r.coord.messages_sent);
        assert!(
            r.coord.messages_sent - r.coord.tunes_applied < 20,
            "only end-of-run residue unapplied: {} of {}",
            r.coord.tunes_applied,
            r.coord.messages_sent
        );
    }
    assert!(slow.coord.messages_sent > 100);
}

#[test]
fn weight_override_changes_outcomes() {
    let run = |override_weights: bool| {
        let mut sim = PlatformBuilder::new()
            .seed(9)
            .build_rubis(RubisScenario::read_write_mix(24));
        if override_weights {
            assert!(sim.set_weight_by_name("app", 1024));
            assert!(sim.set_weight_by_name("db", 1024));
            assert!(!sim.set_weight_by_name("ghost", 1));
        }
        sim.run(Nanos::from_secs(30))
    };
    let base = run(false);
    let boosted = run(true);
    assert_ne!(
        base.rubis.completed, boosted.rubis.completed,
        "static weights change the execution"
    );
}

#[test]
fn ixp_flow_thread_override_by_vm() {
    let mut sim = PlatformBuilder::new()
        .seed(3)
        .build_mplayer(MplayerScenario::figure6(256, 256));
    assert!(sim.set_flow_threads_by_vm(1, 6));
    assert!(sim.set_flow_threads_by_vm(2, 6));
    assert!(!sim.set_flow_threads_by_vm(99, 6));
    let r = sim.run(Nanos::from_secs(10));
    assert!(r.net.delivered > 100);
}

#[test]
fn coordination_trace_records_applied_decisions() {
    let mut sim = PlatformBuilder::new()
        .seed(2)
        .policy(PolicyKind::RequestType)
        .build_rubis(RubisScenario::read_write_mix(24));
    let r = sim.run(Nanos::from_secs(10));
    assert!(r.coord.tunes_applied > 10);
    let trace: Vec<_> = sim.coordination_trace().collect();
    assert!(!trace.is_empty(), "decisions were traced");
    assert!(trace.len() <= 512, "bounded history");
    assert!(
        trace.iter().all(|(_, m)| m.starts_with("tune ")),
        "rubis run applies tunes only"
    );
    // Timestamps are non-decreasing.
    for w in trace.windows(2) {
        assert!(w[0].0 <= w[1].0);
    }
}
