//! World-stepping and report-generation tests: short deterministic runs
//! asserting the accounting identities a `RunReport` promises.

use coord::PolicyKind;
use platform::{MplayerScenario, PlatformBuilder, RubisScenario};
use power::Strategy;
use simcore::Nanos;

const SECS: u64 = 10;

fn short_rubis(policy: PolicyKind, seed: u64) -> platform::RunReport {
    let mut sim = PlatformBuilder::new()
        .seed(seed)
        .policy(policy)
        .build_rubis(RubisScenario::read_write_mix(12));
    sim.run(Nanos::from_secs(SECS))
}

#[test]
fn rubis_run_accounting_is_consistent() {
    let r = short_rubis(PolicyKind::None, 7);
    assert_eq!(r.duration, Nanos::from_secs(SECS));
    assert!(r.rubis.completed > 0, "a loaded run completes requests");
    let expected_tput = r.rubis.completed as f64 / SECS as f64;
    assert!(
        (r.rubis.throughput - expected_tput).abs() < 1e-6,
        "throughput {} != completed/duration {expected_tput}",
        r.rubis.throughput
    );
    // CPU accounting: the total is the per-domain sum, each domain's
    // user+system splits stay within its total, and dom0 exists.
    let sum: f64 = r.cpu.iter().map(|d| d.percent).sum();
    assert!((r.total_cpu_percent - sum).abs() < 1e-6);
    assert!(r.cpu.iter().any(|d| d.name == "dom0"));
    for d in &r.cpu {
        assert!(d.percent >= 0.0 && d.percent <= 100.0 + 1e-6, "{}: {}", d.name, d.percent);
        assert!(
            d.user + d.system <= d.percent + 1e-6,
            "{}: user {} + system {} > total {}",
            d.name,
            d.user,
            d.system,
            d.percent
        );
    }
    // Network accounting: traffic flowed and every response series is
    // non-empty for a type that completed requests.
    assert!(r.net.delivered > 0, "packets reached the guests");
    assert!(r.rubis.responses.iter().count() > 0);
    // One CPU series per reported domain, sampled roughly once a second.
    assert_eq!(r.cpu_series.len(), r.cpu.len());
    for (name, series) in &r.cpu_series {
        assert!(!series.is_empty(), "{name} series empty");
    }
}

#[test]
fn identical_seeds_reproduce_identical_reports() {
    let a = short_rubis(PolicyKind::RequestType, 42);
    let b = short_rubis(PolicyKind::RequestType, 42);
    assert_eq!(a.rubis.completed, b.rubis.completed);
    assert_eq!(a.rubis.throughput, b.rubis.throughput);
    assert_eq!(a.total_cpu_percent, b.total_cpu_percent);
    assert_eq!(a.coord.messages_sent, b.coord.messages_sent);
    assert_eq!(a.coord.tunes_applied, b.coord.tunes_applied);
    assert_eq!(a.net.delivered, b.net.delivered);
}

#[test]
fn different_seeds_change_the_run() {
    let a = short_rubis(PolicyKind::None, 1);
    let b = short_rubis(PolicyKind::None, 2);
    // Same workload shape, different arrivals: some observable must move.
    assert!(
        a.rubis.completed != b.rubis.completed
            || a.total_cpu_percent != b.total_cpu_percent
            || a.net.delivered != b.net.delivered,
        "seed change had no observable effect"
    );
}

#[test]
fn coordination_policy_sends_traffic_baseline_does_not() {
    let base = short_rubis(PolicyKind::None, 42);
    let coord = short_rubis(PolicyKind::RequestType, 42);
    assert_eq!(base.coord.messages_sent, 0, "baseline is silent");
    assert_eq!(base.coord.tunes_applied, 0);
    assert!(
        coord.coord.messages_sent > 0,
        "request-type policy coordinates under load"
    );
    assert!(coord.coord.bytes_sent >= coord.coord.messages_sent, "wire messages are ≥ 1 byte");
    assert!(coord.coord.tunes_applied <= coord.coord.messages_sent);
}

#[test]
fn mplayer_run_reports_every_player() {
    let mut sim = PlatformBuilder::new()
        .seed(5)
        .policy(PolicyKind::None)
        .build_mplayer(MplayerScenario::figure6(256, 256));
    let r = sim.run(Nanos::from_secs(SECS));
    assert_eq!(r.players.len(), 2);
    assert_eq!(r.rubis.completed, 0, "no RUBiS traffic in an mplayer run");
    for p in &r.players {
        assert!(p.frames > 0, "{} decoded nothing", p.name);
        assert!(p.target_fps > 0);
        let expected = p.frames as f64 / SECS as f64;
        assert!(
            (p.achieved_fps - expected).abs() < 1e-6,
            "{}: fps {} != frames/duration {expected}",
            p.name,
            p.achieved_fps
        );
        assert!(r.player(&p.name).is_some());
    }
    assert!(r.player("nonexistent").is_none());
}

#[test]
fn weight_and_thread_knobs_validate_names() {
    let mut sim = PlatformBuilder::new()
        .seed(3)
        .build_rubis(RubisScenario::read_write_mix(4));
    assert!(sim.set_weight_by_name("web", 512));
    assert!(sim.set_weight_by_name("dom0", 384));
    assert!(!sim.set_weight_by_name("no-such-domain", 512));
    assert!(!sim.set_flow_threads_by_vm(99, 4), "unknown vm index rejected");
    assert!(!sim.credits_of("web").is_empty());
    assert!(sim.credits_of("no-such-domain").is_empty());
    // The diagnostic line renders without panicking even before a run.
    assert!(!sim.diag_line().is_empty());
}

#[test]
fn power_cap_populates_the_power_report() {
    let mut sim = PlatformBuilder::new()
        .seed(11)
        .power_cap(40.0, Strategy::BiggestConsumer)
        .build_rubis(RubisScenario::read_write_mix(12));
    let r = sim.run(Nanos::from_secs(SECS));
    assert_eq!(r.power.cap_watts, Some(40.0));
    assert!(r.power.mean_watts > 0.0, "power model reports draw");
    assert!(r.power.max_watts >= r.power.mean_watts);
    assert!(!r.power.series.is_empty(), "per-second watt series recorded");
    // An uncapped run still reports the modelled draw.
    let base = short_rubis(PolicyKind::None, 11);
    assert_eq!(base.power.cap_watts, None);
    assert!(base.power.mean_watts > 0.0);
}

#[test]
fn frozen_energy_accounting_does_not_perturb_the_run() {
    let run = |energy: Option<platform::EnergyConfig>| {
        let mut b = PlatformBuilder::new().seed(7).policy(PolicyKind::RequestType);
        if let Some(cfg) = energy {
            b = b.energy(cfg);
        }
        let mut sim = b.build_rubis(RubisScenario::read_write_mix(12));
        sim.run(Nanos::from_secs(SECS))
    };
    let base = run(None);
    let frozen = run(Some(platform::EnergyConfig::frozen(400.0)));
    // Metering is pure observation: the workload's event sequence is
    // untouched, so application-level results are bit-identical.
    assert_eq!(base.rubis.completed, frozen.rubis.completed);
    assert_eq!(
        base.rubis.throughput.to_bits(),
        frozen.rubis.throughput.to_bits(),
        "frozen energy accounting must not perturb the run"
    );
    assert_eq!(base.coord.messages_sent, frozen.coord.messages_sent);
    // Only the measurement differs: joules appear, knobs never move.
    assert!(!base.energy.enabled);
    assert_eq!(base.energy.total_joules(), 0.0);
    assert!(frozen.energy.enabled);
    assert!(frozen.energy.cpu_joules > 0.0, "package energy metered");
    assert!(frozen.energy.ixp_joules > 0.0, "IXP energy metered");
    assert_eq!(frozen.energy.knob_actions, 0, "frozen config never moves a knob");
    assert_eq!(frozen.energy.final_dvfs_percent, 100);
    assert_eq!(frozen.energy.final_ways, 16);
    assert_eq!(frozen.energy.final_membw_percent, 100);
    let full_rung = frozen.energy.residency.first().copied().unwrap_or_default();
    assert_eq!(full_rung.0, 100);
    assert!(full_rung.1 > 0, "all residency at the full-performance rung");
    assert!(frozen.energy.residency.iter().skip(1).all(|&(_, n)| n == 0));
}

#[test]
fn coordinated_energy_controller_descends_under_headroom() {
    let run = |cfg: platform::EnergyConfig| {
        let mut sim = PlatformBuilder::new()
            .seed(7)
            .policy(PolicyKind::RequestType)
            .energy(cfg)
            .build_rubis(RubisScenario::read_write_mix(12));
        sim.run(Nanos::from_secs(30))
    };
    // A generous target leaves headroom everywhere: the hill-climber
    // should walk the lattice down and spend less energy than the
    // frozen accounting baseline over the same run.
    let frozen = run(platform::EnergyConfig::frozen(5_000.0));
    let coord = run(platform::EnergyConfig::coordinated(5_000.0));
    assert!(coord.energy.descents > 0, "controller descended");
    assert!(coord.energy.knob_actions > 0, "knob moves reached the island");
    assert!(
        coord.energy.final_dvfs_percent < 100
            || coord.energy.final_ways < 16
            || coord.energy.final_membw_percent < 100,
        "some axis left full performance: {:?}",
        (
            coord.energy.final_dvfs_percent,
            coord.energy.final_ways,
            coord.energy.final_membw_percent
        )
    );
    assert!(
        coord.energy.cpu_joules < frozen.energy.cpu_joules,
        "coordinated {} J !< frozen {} J",
        coord.energy.cpu_joules,
        frozen.energy.cpu_joules
    );
    // Residency spread: the run left the full-performance rung.
    let off_nominal: u64 = coord.energy.residency.iter().skip(1).map(|&(_, n)| n).sum();
    assert!(off_nominal > 0, "residency at a lower rung: {:?}", coord.energy.residency);
}
