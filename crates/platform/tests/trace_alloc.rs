//! Proves the steady-state tracing path allocates nothing.
//!
//! A counting global allocator brackets a burst of `record` calls on a
//! wrapped `TraceBuffer<TraceEvent>` — exactly the operation the
//! platform's coordination paths perform per traced decision — and
//! asserts the allocation counter did not move. This binary installs its
//! own `#[global_allocator]`, so it holds only this one test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use coord::{CoordMsg, EntityId};
use platform::TraceEvent;
use simcore::trace::TraceBuffer;
use simcore::Nanos;
use xsched::DomId;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates every operation to the system allocator unchanged;
// the counter is a side effect only.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_trace_recording_does_not_allocate() {
    // Same capacity the platform uses for its coordination trace.
    let mut trace: TraceBuffer<TraceEvent> = TraceBuffer::new(512);
    let dom = DomId(2);
    let entity = EntityId(1);
    // Warm-up: fill the ring past capacity so eviction is active — the
    // steady state every long run operates in.
    for i in 0..1024u64 {
        trace.record(Nanos(i), TraceEvent::Tune { dom, from: 256, to: 257 });
    }

    // The counter is process-global, so the libtest harness thread can
    // allocate inside the bracket when a loaded machine stretches the
    // recording loop (seen under cargo's pipelined workspace builds).
    // Other threads can only *inflate* the count, never hide a recording
    // allocation — so the minimum over a few attempts is the recording
    // path's own cost, and one clean attempt proves the property.
    let mut best = u64::MAX;
    let mut after = 0;
    for _ in 0..5 {
        let before = ALLOCS.load(Ordering::SeqCst);
        for i in 0..10_000u64 {
            let now = Nanos(2048 + i);
            trace.record(now, TraceEvent::Tune { dom, from: 256, to: 260 });
            trace.record(now, TraceEvent::Trigger { dom });
            trace.record(now, TraceEvent::Retransmit { seq: i as u32 });
            trace.record(now, TraceEvent::AccelTune { entity, delta: -2 });
            trace.record(now, TraceEvent::AccelTrigger { entity });
            trace.record(
                now,
                TraceEvent::DegradedSuppressed {
                    msg: CoordMsg::Tune { entity, delta: 1, target: None },
                },
            );
            trace.record(now, TraceEvent::GaveUp { count: 1 });
            trace.record(now, TraceEvent::EnteredDegraded);
            trace.record(now, TraceEvent::SuppressedDuplicate { seq: i as u32 });
            trace.record(now, TraceEvent::DegradedOver { seq: i as u32 });
        }
        after = ALLOCS.load(Ordering::SeqCst);
        best = best.min(after - before);
        if best == 0 {
            break;
        }
    }
    assert_eq!(
        best,
        0,
        "recording {} trace events allocated {} time(s) on the cleanest of 5 attempts",
        10_000 * 10,
        best,
    );

    // Rendering is where the cost moved: it allocates, but only when the
    // history is actually read.
    assert_eq!(trace.len(), 512);
    let rendered = trace.dump();
    assert!(rendered.contains("trigger"));
    assert!(ALLOCS.load(Ordering::SeqCst) > after);
}
