//! The assembled platform: state, master event loop, and the output pump
//! that chains island events into each other at identical timestamps.

use crate::config::{
    EnergyConfig, HostCosts, InferenceScenario, MplayerScenario, PlatformBuilder, RubisScenario,
};
use crate::report::{
    AccelReport, AccelTenantReport, CoordReport, DomCpu, EnergyReport, NetReport, PlayerReport,
    PowerReport, RubisReport, RunReport, SimRate,
};
use accel::{AccelEvent, AccelIsland, TenantId};
use coord::{
    Action, BufferTriggerPolicy, Controller, CoordMsg, CoordinationPolicy, EnergyController,
    EnergyControllerConfig, EntityId, HysteresisPolicy, InferenceBatchPolicy, IslandId,
    IslandKind, KnobAxis, KnobPoint, NullPolicy, Observation, PolicyKind, ReliableReceiver,
    ReliableSender, RequestTypePolicy, ResourceManager, StreamQosPolicy,
};
use ixp::{AppTag, FlowId, IxpConfig, IxpEvent, IxpIsland, Packet};
use metrics::{platform_efficiency, ResponseStats, SessionStats};
use pcie::{HostLink, Mailbox, PcieEvent};
use power::{CpuPowerModel, DomainSample, DvfsState, IxpPowerModel, PowerGovernor};
use simcore::stats::Series;
use crate::trace_event::TraceEvent;
use simcore::trace::TraceBuffer;
use crate::pdes;
use simcore::{Component, EventQueue, HorizonCache, Nanos, SimRng};
use simtest::chaos::ChaosPlan;
use std::collections::{BTreeMap, HashMap, VecDeque};
use workloads::adversary::Adversary;
use workloads::inference::InferenceModel;
use workloads::mplayer::{Player, Source};
use workloads::rubis::{RequestType, RubisModel, Tier, TierDemands};
use xsched::{Burst, CreditScheduler, DomId, SchedConfig, SchedEvent, WakeMode};

/// The x86 island's coordination identity.
pub(crate) const X86: IslandId = IslandId(0);
/// The IXP island's coordination identity.
pub(crate) const IXP: IslandId = IslandId(1);
/// The accelerator island's coordination identity (present only on
/// inference platforms; the default two-island build never registers it).
pub(crate) const ACCEL: IslandId = IslandId(2);

/// The platform-wide entity the energy controller's SetKnob messages
/// address (registered only when the energy dimension is on). Sits well
/// clear of workload VM indices (1..n) and adversary indices (100+).
pub(crate) const ENERGY_ENTITY: EntityId = EntityId(99);

/// DB-partition cache ways powered at each rung of the cache axis
/// (rung 0 = the full 16-way LLC slice).
pub(crate) const WAYS_LADDER: [u32; 5] = [16, 12, 8, 6, 4];
/// Memory-bandwidth partition share (percent) at each rung of the
/// bandwidth axis.
pub(crate) const MEMBW_LADDER: [u32; 5] = [100, 85, 70, 55, 40];
/// Service-time multiplier on DB-tier demand per cache rung: DB-heavy
/// requests are working-set bound, so shrinking their partition misses
/// hard and fast.
const DB_WAYS_FACTOR: [f64; 5] = [1.0, 1.03, 1.08, 1.15, 1.30];
/// Service-time multiplier on DB-tier demand per bandwidth rung.
const DB_MEMBW_FACTOR: [f64; 5] = [1.0, 1.02, 1.06, 1.12, 1.25];
/// Service-time multiplier on web/app-tier demand per bandwidth rung:
/// CPU-heavy request classes barely notice a narrower memory lane (and
/// are untouched by the DB cache partition).
const CPU_MEMBW_FACTOR: [f64; 5] = [1.0, 1.01, 1.02, 1.04, 1.08];
/// Modelled uncore watts per powered cache way.
const WAY_WATTS: f64 = 0.6;
/// Modelled memory-subsystem watts at a 100% bandwidth share.
const MEMBW_WATTS: f64 = 8.0;

/// Master-queue events (workload pacing and sampling).
#[derive(Debug)]
pub(crate) enum Ev {
    /// A packet reaches the IXP's wire-side receive port.
    WireArrive(Packet),
    /// A RUBiS client issues its next request.
    ClientSend(u32),
    /// The streaming server emits the next frame of a stream.
    FrameGen(usize),
    /// Dom0's background load resumes after an idle gap.
    BackgroundKick,
    /// A RUBiS client's retransmission timer fires.
    Rto { req: u64, attempt: u32 },
    /// A guest-accepted inference request finishes its DMA into the
    /// accelerator's submission queue.
    AccelDma { req: u64 },
    /// A strategic tenant's next coordination message is due.
    Adversary(usize),
    /// Periodic measurement sample.
    Sample,
}

/// Context attached to scheduler burst tags.
#[derive(Debug, Clone)]
pub(crate) enum Ctx {
    /// Dom0 messaging-driver service routine finished.
    DriverService,
    /// A tier finished processing a RUBiS request.
    TierDone { req: u64, tier: Tier },
    /// Dom0 bridge hop finished; start `tier` processing of `req`.
    HopDone { req: u64, tier: Tier },
    /// Dom0 response-out bridge finished for `req`.
    RespOut { req: u64 },
    /// A frame decode finished.
    Decode { player: usize },
    /// Dom0 background work chunk finished.
    Background,
    /// An adversarial tenant VM's CPU-hog chunk finished.
    AdvLoad { slot: usize },
    /// Dom0 finished applying a coordination message.
    CoordApply { msg: CoordMsg },
    /// A tenant VM finished post-processing a completed inference batch
    /// item.
    InfPost { req: u64 },
    /// Dom0 finished bridging an inference response toward the IXP.
    InfRespOut { req: u64 },
}

#[derive(Debug)]
pub(crate) struct VmSlot {
    pub dom: DomId,
    pub vm_index: u32,
    pub entity: EntityId,
    pub flow: Option<FlowId>,
    pub name: String,
    pub inflight_rx: u32,
    pub hold: VecDeque<Packet>,
    /// Requests queued or in service at this tier (admission control).
    pub pending: u32,
}

#[derive(Debug)]
pub(crate) struct ReqState {
    pub rt: &'static RequestType,
    pub demands: TierDemands,
    pub client: u32,
    pub start: Nanos,
    /// Current transmission attempt (0 = original send).
    pub attempt: u32,
    /// A burst chain for this request is active in the tiers (guards
    /// against duplicate processing when a retransmitted copy arrives
    /// while the original is still being serviced).
    pub in_service: bool,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct ClientState {
    pub session_start: Nanos,
    pub done_in_session: u32,
}

#[derive(Debug)]
pub(crate) struct RubisState {
    pub model: RubisModel,
    pub reqs: HashMap<u64, ReqState>,
    pub resp_map: HashMap<u64, u64>,
    pub pkt_to_req: HashMap<u64, u64>,
    pub clients: Vec<ClientState>,
    pub web_vm: u32,
    pub app_vm: u32,
    pub db_vm: u32,
}

#[derive(Debug)]
pub(crate) struct InfReqState {
    /// Tenant index into `tenant_vms` / the model's tenant table.
    pub tenant: usize,
    pub start: Nanos,
    /// Current transmission attempt (0 = original send).
    pub attempt: u32,
    /// The request is past guest admission and owned by the DMA/accel
    /// pipeline (guards duplicate retransmitted copies).
    pub in_service: bool,
    /// Sampled accelerator compute cost, stable across retransmissions.
    pub cost: Nanos,
}

#[derive(Debug)]
pub(crate) struct InferenceState {
    pub model: InferenceModel,
    pub reqs: HashMap<u64, InfReqState>,
    /// Response packet id → request id.
    pub resp_map: HashMap<u64, u64>,
    /// Request packet id → request id (one entry per transmission).
    pub pkt_to_req: HashMap<u64, u64>,
    /// Tenant index → guest VM index.
    pub tenant_vms: Vec<u32>,
    /// Tenant index → accelerator-side queue identity.
    pub accel_tenants: Vec<TenantId>,
    /// Per-tenant accelerator queueing delay (batch-forming wait).
    pub queue_delays: ResponseStats,
}

#[derive(Debug)]
pub(crate) struct PlayerState {
    pub player: Player,
    pub vm_index: u32,
    pub rx_accum_bytes: u64,
    pub next_pkt_id: u64,
}

/// Runtime state of the QoS-constrained energy dimension. The
/// controller's commanded point leads `applied` by one coordination
/// channel flight: a SetKnob rides the mailbox and a Dom0 apply burst
/// like any Tune, so knob changes pay (and suffer) the channel.
#[derive(Debug)]
pub(crate) struct EnergyState {
    pub ctl: EnergyController,
    /// Knob rungs actually in force on the x86 island.
    pub applied: KnobPoint,
    /// Response latencies since the last sample — the controller's QoS
    /// signal, reset each sample so decisions track the present, not the
    /// run's whole history.
    pub window: ResponseStats,
    pub cpu_joules: f64,
    pub ixp_joules: f64,
    /// Samples spent at each DVFS rung.
    pub residency: [u64; DvfsState::xeon_ladder().len()],
    /// SetKnob actions applied on the island.
    pub knob_actions: u64,
}

impl EnergyState {
    fn new(cfg: EnergyConfig) -> Self {
        let mut ec = EnergyControllerConfig::default().with_target_ms(cfg.p99_target_ms);
        // A disabled axis gets a one-rung ladder: rung 0 (full
        // performance) is then its only point and the controller never
        // steps it — the E2 single-knob ablations are built from this.
        ec.rungs = [
            if cfg.dvfs { DvfsState::xeon_ladder().len() as u8 } else { 1 },
            if cfg.cache { WAYS_LADDER.len() as u8 } else { 1 },
            if cfg.membw { MEMBW_LADDER.len() as u8 } else { 1 },
        ];
        EnergyState {
            ctl: EnergyController::new(ec),
            applied: KnobPoint::default(),
            window: ResponseStats::new(),
            cpu_joules: 0.0,
            ixp_joules: 0.0,
            residency: [0; DvfsState::xeon_ladder().len()],
            knob_actions: 0,
        }
    }

    /// The controller's QoS signal: the worst per-request-class p99 over
    /// the window, in milliseconds. Classes too rare in the window to
    /// carry their own histogram ride the overall percentile; `None`
    /// (no completions at all) means no signal and no decision.
    fn worst_window_p99(&self) -> Option<f64> {
        if self.window.total() == 0 {
            return None;
        }
        let mut worst = self.window.overall_percentile(0.99);
        for (name, s) in self.window.iter() {
            if s.count() >= 5 {
                worst = worst.max(self.window.percentile(name, 0.99));
            }
        }
        Some(worst)
    }
}

#[derive(Debug, Default)]
pub(crate) struct CoordCounters {
    pub messages_sent: u64,
    pub bytes_sent: u64,
    pub tunes_applied: u64,
    pub triggers_applied: u64,
}

/// Bit assignments for the master loop's cached event horizon. One bit
/// per event source; a source's bit is marked in `Platform::horizons`
/// (the [`simcore::HorizonCache`]) whenever code mutates that source's
/// timing state, and the run loop refreshes only the marked entries
/// before taking the min.
pub(crate) mod horizon {
    pub const QUEUE: u32 = 1 << 0;
    pub const SCHED: u32 = 1 << 1;
    pub const IXP: u32 = 1 << 2;
    pub const LINK: u32 = 1 << 3;
    pub const MBX: u32 = 1 << 4;
    pub const ACK: u32 = 1 << 5;
    pub const RETX: u32 = 1 << 6;
    pub const ACCEL: u32 = 1 << 7;
    pub const ACCEL_MBX: u32 = 1 << 8;
    /// Number of event sources (= index bound for `Platform::horizons`).
    pub const NSRC: usize = 9;
}

/// One registry entry per event source: what the master loop iterates
/// instead of a hand-written nine-arm match. Array order mirrors the bit
/// assignments in [`horizon`]; `island` places the source in the PDES
/// partition defined in [`crate::pdes`].
pub(crate) struct SourceSpec {
    /// Short stable name (read by the debug-build invariant sweep).
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    pub name: &'static str,
    /// PDES island index ([`crate::pdes::X86_ISLAND`] etc.).
    pub island: usize,
    /// Dispatches this source's due event at `t` (consumes the head and
    /// absorbs whatever it produces).
    pub dispatch: fn(&mut Platform, Nanos),
}

/// The platform's event sources, in horizon-bit order. The dispatch
/// order at equal timestamps is the array order (lowest index wins) —
/// changing this table's order changes committed artifacts.
pub(crate) const SOURCES: [SourceSpec; horizon::NSRC] = [
    SourceSpec { name: "queue", island: pdes::X86_ISLAND, dispatch: Platform::dispatch_queue },
    SourceSpec { name: "sched", island: pdes::X86_ISLAND, dispatch: Platform::dispatch_sched },
    SourceSpec { name: "ixp", island: pdes::IXP_ISLAND, dispatch: Platform::dispatch_ixp },
    SourceSpec { name: "link", island: pdes::X86_ISLAND, dispatch: Platform::dispatch_link },
    SourceSpec { name: "coord-mbx", island: pdes::X86_ISLAND, dispatch: Platform::dispatch_coord_mbx },
    SourceSpec { name: "ack-mbx", island: pdes::X86_ISLAND, dispatch: Platform::dispatch_ack_mbx },
    SourceSpec { name: "retx", island: pdes::X86_ISLAND, dispatch: Platform::dispatch_retx },
    SourceSpec { name: "accel", island: pdes::ACCEL_ISLAND, dispatch: Platform::dispatch_accel },
    SourceSpec { name: "accel-mbx", island: pdes::ACCEL_ISLAND, dispatch: Platform::dispatch_accel_mbx },
];

/// The fully wired two-island platform. Construct with
/// [`PlatformBuilder`](crate::PlatformBuilder), then call [`run`](Self::run).
pub struct Platform {
    pub(crate) now: Nanos,
    pub(crate) rng: SimRng,
    pub(crate) sched: CreditScheduler,
    pub(crate) ixp: IxpIsland,
    pub(crate) link: HostLink,
    pub(crate) mbx: Mailbox<Vec<u8>>,
    /// Reverse channel (Dom0 → IXP) carrying reliable-delivery acks; it
    /// shares the forward channel's latency and fault profile and stays
    /// silent unless reliable delivery is enabled.
    pub(crate) ack_mbx: Mailbox<Vec<u8>>,
    pub(crate) rel_tx: Option<ReliableSender>,
    pub(crate) rel_rx: Option<ReliableReceiver>,
    pub(crate) degraded_suppressed: u64,
    /// Chaos schedule consulted at the loop's hook points. The default
    /// [`ChaosPlan::none()`] makes every hook an early-return with zero
    /// state change, keeping chaos-off runs byte-identical.
    pub(crate) chaos: ChaosPlan,
    /// Baseline coordination-channel latency, kept so the chaos jitter
    /// hook can restore it after a per-message override.
    pub(crate) coord_latency: Nanos,
    /// Strategic tenants emitting through the real coordination channel.
    pub(crate) adversaries: Vec<Adversary>,
    /// Count of chaos-forced Triggers (also rotates the victim queue).
    pub(crate) chaos_triggers: u64,
    pub(crate) controller: Controller,
    pub(crate) policy: Box<dyn CoordinationPolicy>,
    pub(crate) q: EventQueue<Ev>,
    pub(crate) tags: HashMap<u64, Ctx>,
    pub(crate) next_tag: u64,
    pub(crate) dom0: DomId,
    pub(crate) vms: Vec<VmSlot>,
    pub(crate) rubis: Option<RubisState>,
    /// The optional third island: a batching inference accelerator.
    /// `None` on every rubis/mplayer platform, keeping the default
    /// two-island build byte-identical.
    pub(crate) accel: Option<AccelIsland>,
    /// Doorbell lane carrying wire-encoded coordination verbs from Dom0
    /// to the accelerator (its own mailbox, with its own fault stream).
    pub(crate) accel_mbx: Mailbox<Vec<u8>>,
    pub(crate) inf: Option<InferenceState>,
    /// Host→accelerator DMA latency for one inference request.
    pub(crate) accel_dma: Nanos,
    pub(crate) players: Vec<PlayerState>,
    pub(crate) dom0_hog: f64,
    pub(crate) hog_chunk: Nanos,
    pub(crate) overrate: f64,
    pub(crate) costs: HostCosts,
    pub(crate) sample_period: Nanos,
    pub(crate) run_end: Nanos,
    pub(crate) driver_pending: bool,
    /// Coordination messages awaiting their Dom0 apply burst. Applications
    /// are strictly serialized: weight deltas do not commute once clamping
    /// is involved, so out-of-order application across Dom0's VCPUs would
    /// make weights drift.
    pub(crate) coord_pending: VecDeque<CoordMsg>,
    pub(crate) coord_inflight: bool,
    // measurement
    pub(crate) responses: ResponseStats,
    pub(crate) sessions: SessionStats,
    pub(crate) coord: CoordCounters,
    pub(crate) cpu_series: BTreeMap<DomId, Series>,
    pub(crate) buffer_series: Series,
    pub(crate) cpu_prev: BTreeMap<DomId, Nanos>,
    pub(crate) monitored_flow: Option<FlowId>,
    pub(crate) delivered: u64,
    pub(crate) guest_drops: u64,
    pub(crate) trace: TraceBuffer<TraceEvent>,
    pub(crate) power_gov: Option<PowerGovernor>,
    /// QoS-constrained energy dimension (`None` keeps the build
    /// byte-identical to the seed baseline).
    pub(crate) energy: Option<EnergyState>,
    pub(crate) cpu_power: CpuPowerModel,
    pub(crate) ixp_power: IxpPowerModel,
    pub(crate) power_series: Series,
    pub(crate) delivered_prev: u64,
    pub(crate) ncpus: u32,
    // Reusable dispatch buffers: each `on_timer` arm of the master loop
    // takes its buffer, appends into it, drains it, and puts it back, so
    // steady-state dispatch allocates nothing. Re-entrant absorb paths
    // (e.g. link → tx_from_host → absorb_ixp) use the by-value input
    // methods and never touch these.
    pub(crate) scratch_sched: Vec<SchedEvent>,
    pub(crate) scratch_ixp: Vec<IxpEvent>,
    pub(crate) scratch_link: Vec<PcieEvent>,
    pub(crate) scratch_mbx: Vec<Vec<u8>>,
    pub(crate) scratch_ack: Vec<Vec<u8>>,
    pub(crate) scratch_retx: Vec<(u32, CoordMsg)>,
    pub(crate) scratch_accel: Vec<AccelEvent>,
    pub(crate) scratch_accel_mbx: Vec<Vec<u8>>,
    pub(crate) scratch_ev: Vec<(Nanos, Ev)>,
    /// Cached `next_event_time()` of each source (`Nanos::MAX` = idle)
    /// plus the dirty mask, indexed by the bit positions in [`horizon`].
    /// Only dirty entries are recomputed each iteration, so the
    /// steady-state loop cost is a min over nine array slots rather than
    /// nine virtual calls (one of which — the reliable sender's timer —
    /// is O(pending)).
    pub(crate) horizons: HorizonCache<{ horizon::NSRC }>,
    /// Island worker threads used by [`run`](Self::run) (1 = serial).
    pub(crate) island_threads: usize,
}

impl std::fmt::Debug for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Platform")
            .field("now", &self.now)
            .field("policy", &self.policy.name())
            .field("vms", &self.vms.len())
            .field("players", &self.players.len())
            .finish_non_exhaustive()
    }
}

impl Platform {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    fn base(b: &PlatformBuilder, ixp_cfg: IxpConfig) -> Platform {
        let mut sched_cfg = SchedConfig::new(b.ncpus);
        sched_cfg.precise_accounting = b.precise_accounting;
        let sched = CreditScheduler::new(sched_cfg);
        let mut controller = Controller::new();
        if let Some(cfg) = b.defenses {
            controller.set_defenses(cfg);
        }
        controller.handle(
            Nanos::ZERO,
            CoordMsg::RegisterIsland { island: X86, kind: IslandKind::GeneralPurpose },
        );
        controller.handle(
            Nanos::ZERO,
            CoordMsg::RegisterIsland { island: IXP, kind: IslandKind::NetworkProcessor },
        );
        let energy = b.energy.map(|cfg| {
            controller.handle(
                Nanos::ZERO,
                CoordMsg::RegisterEntity { entity: ENERGY_ENTITY, island: X86, local_key: 0 },
            );
            EnergyState::new(cfg)
        });
        let mut mbx = Mailbox::new(b.coord_latency);
        let mut ack_mbx = Mailbox::new(b.coord_latency);
        let mut accel_mbx = Mailbox::new(b.coord_latency);
        if !b.fault_profile.is_none() {
            // Fault RNG streams are derived straight from the seed — never
            // forked from the platform RNG, which would shift every draw
            // the workload makes and break fault-free byte-identity.
            mbx.set_faults(b.fault_profile, SimRng::new(b.effective_seed() ^ 0xFA17_0001));
            ack_mbx.set_faults(b.fault_profile, SimRng::new(b.effective_seed() ^ 0xFA17_0002));
            accel_mbx.set_faults(b.fault_profile, SimRng::new(b.effective_seed() ^ 0xFA17_0003));
        }
        Platform {
            now: Nanos::ZERO,
            rng: SimRng::new(b.effective_seed()),
            sched,
            ixp: IxpIsland::new(ixp_cfg),
            link: HostLink::new(b.link_config()),
            mbx,
            ack_mbx,
            rel_tx: b.reliable.map(ReliableSender::new),
            rel_rx: b.reliable.map(|_| ReliableReceiver::new()),
            degraded_suppressed: 0,
            chaos: b.chaos.clone(),
            coord_latency: b.coord_latency,
            adversaries: Vec::new(),
            chaos_triggers: 0,
            controller,
            policy: Box::new(NullPolicy),
            q: EventQueue::new(),
            tags: HashMap::new(),
            next_tag: 1,
            dom0: DomId::DOM0,
            vms: Vec::new(),
            rubis: None,
            accel: None,
            accel_mbx,
            inf: None,
            accel_dma: Nanos::from_micros(20),
            players: Vec::new(),
            dom0_hog: 0.0,
            hog_chunk: Nanos::from_millis(20),
            overrate: 1.0,
            costs: b.costs,
            sample_period: b.sample_period,
            run_end: Nanos::MAX,
            driver_pending: false,
            coord_pending: VecDeque::new(),
            coord_inflight: false,
            responses: ResponseStats::new(),
            sessions: SessionStats::new(),
            coord: CoordCounters::default(),
            cpu_series: BTreeMap::new(),
            buffer_series: Series::new(),
            cpu_prev: BTreeMap::new(),
            monitored_flow: None,
            delivered: 0,
            guest_drops: 0,
            trace: TraceBuffer::new(512),
            power_gov: b
                .power_cap
                .clone()
                .map(|(w, s)| PowerGovernor::new(w, s)),
            energy,
            cpu_power: CpuPowerModel::default(),
            ixp_power: IxpPowerModel::default(),
            power_series: Series::new(),
            delivered_prev: 0,
            ncpus: b.ncpus,
            scratch_sched: Vec::new(),
            scratch_ixp: Vec::new(),
            scratch_link: Vec::new(),
            scratch_mbx: Vec::new(),
            scratch_ack: Vec::new(),
            scratch_retx: Vec::new(),
            scratch_accel: Vec::new(),
            scratch_accel_mbx: Vec::new(),
            scratch_ev: Vec::new(),
            horizons: HorizonCache::new(),
            island_threads: b.island_threads,
        }
    }

    /// Recomputes one source's horizon from scratch, through the
    /// source's [`Component`] face. The run loop calls this only for
    /// dirty entries (and, at debug-build epoch barriers, to cross-check
    /// every cached entry against the live sources).
    pub(crate) fn fresh_horizon(&self, i: usize) -> Nanos {
        let t = match i {
            0 => Component::next_event_time(&self.q),
            1 => Component::next_event_time(&self.sched),
            2 => Component::next_event_time(&self.ixp),
            3 => Component::next_event_time(&self.link),
            4 => Component::next_event_time(&self.mbx),
            5 => Component::next_event_time(&self.ack_mbx),
            6 => self.rel_tx.as_ref().and_then(Component::next_event_time),
            7 => self.accel.as_ref().and_then(Component::next_event_time),
            8 => Component::next_event_time(&self.accel_mbx),
            _ => unreachable!("no such event source"),
        };
        t.unwrap_or(Nanos::MAX)
    }

    fn add_vm(&mut self, name: &str, weight: u32, vm_index: u32, with_flow: bool) -> usize {
        self.horizons.mark(horizon::SCHED | horizon::IXP);
        let dom = self.sched.create_domain(name, weight, 1);
        let entity = EntityId(vm_index);
        let flow = with_flow.then(|| self.ixp.register_flow(vm_index));
        self.controller.handle(
            Nanos::ZERO,
            CoordMsg::RegisterEntity { entity, island: X86, local_key: dom.0 as u64 },
        );
        if let Some(f) = flow {
            self.controller.handle(
                Nanos::ZERO,
                CoordMsg::RegisterEntity { entity, island: IXP, local_key: f.0 as u64 },
            );
        }
        self.vms.push(VmSlot {
            dom,
            vm_index,
            entity,
            flow,
            name: name.to_owned(),
            inflight_rx: 0,
            hold: VecDeque::new(),
            pending: 0,
        });
        self.vms.len() - 1
    }

    /// Gives each configured adversarial tenant its own guest VM (default
    /// weight, no network flow) and binds the strategy to that VM's
    /// coordination entity. VM indices start at 100 to stay clear of any
    /// workload's numbering. With no adversaries configured this is a
    /// no-op, so default builds are untouched.
    fn attach_adversaries(&mut self, b: &PlatformBuilder) {
        for (i, spec) in b.adversaries.iter().enumerate() {
            let vm_index = 100 + i as u32;
            let slot = self.add_vm(&format!("adv{}", i + 1), 256, vm_index, false);
            let entity = self.vms[slot].entity;
            self.adversaries
                .push(Adversary::new(entity, Some(X86), spec.strategy, Nanos::ZERO));
        }
    }

    pub(crate) fn new_rubis(b: PlatformBuilder, scenario: RubisScenario) -> Platform {
        let mut ixp_cfg = b.ixp_overrides.clone().unwrap_or_default();
        ixp_cfg.dpi = true;
        let mut b = b;
        // Guest-side queues are small for request/response traffic: the
        // web VM's netfront ring and accept queue hold only a handful of
        // outstanding requests (the paper's overloaded 256 MB VMs), so a
        // starved tier drops and clients retransmit.
        if b.costs.guest_rx_cap == HostCosts::default().guest_rx_cap {
            b.costs.guest_rx_cap = scenario.rx_window;
            b.costs.guest_hold_cap = scenario.rx_window;
        }
        let mut p = Platform::base(&b, ixp_cfg);
        // Dom0 first (one VCPU per pCPU, unpinned, default weight).
        p.dom0 = p.sched.create_domain("dom0", 256, b.ncpus);
        p.add_vm("web", 256, 1, true);
        p.add_vm("app", 256, 2, true);
        p.add_vm("db", 256, 3, true);
        p.policy = match b.policy {
            PolicyKind::RequestType => {
                let mut pol = RequestTypePolicy::new(EntityId(1), EntityId(2), EntityId(3), X86);
                if let Some((hi, lo)) = b.policy_weights {
                    pol = pol.with_weights(hi, lo);
                }
                Box::new(pol)
            }
            PolicyKind::RequestTypeHysteresis => Box::new(HysteresisPolicy::new(
                EntityId(1),
                EntityId(2),
                EntityId(3),
                X86,
            )),
            PolicyKind::BufferTrigger => Box::new(BufferTriggerPolicy::new(X86)),
            PolicyKind::StreamQos => Box::new(StreamQosPolicy::new(X86, 500)),
            PolicyKind::InferenceBatch | PolicyKind::None => Box::new(NullPolicy),
        };
        let model = RubisModel::new(scenario.rubis_config(), b.effective_seed().wrapping_mul(0x9E37));
        let clients = (0..scenario.clients)
            .map(|_| ClientState { session_start: Nanos::ZERO, done_in_session: 0 })
            .collect();
        p.rubis = Some(RubisState {
            model,
            reqs: HashMap::new(),
            resp_map: HashMap::new(),
            pkt_to_req: HashMap::new(),
            clients,
            web_vm: 1,
            app_vm: 2,
            db_vm: 3,
        });
        p.attach_adversaries(&b);
        p
    }

    pub(crate) fn new_mplayer(b: PlatformBuilder, scenario: MplayerScenario) -> Platform {
        let mut ixp_cfg = b.ixp_overrides.clone().unwrap_or_default();
        ixp_cfg.buffer_threshold = scenario.buffer_threshold;
        let mut p = Platform::base(&b, ixp_cfg);
        p.dom0 = p
            .sched
            .create_domain("dom0", 256, scenario.dom0_vcpus.max(1));
        p.dom0_hog = scenario.dom0_hog.max(0.0);
        p.overrate = scenario.overrate.max(0.1);
        for (i, spec) in scenario.players.iter().enumerate() {
            let vm_index = (i + 1) as u32;
            let name = format!("dom{vm_index}");
            let network = spec.source == Source::Network;
            let slot = p.add_vm(&name, spec.weight, vm_index, network);
            if network && p.monitored_flow.is_none() {
                p.monitored_flow = p.vms[slot].flow;
            }
            p.players.push(PlayerState {
                player: Player::new(spec.stream, spec.source, Nanos::ZERO),
                vm_index,
                rx_accum_bytes: 0,
                next_pkt_id: (i as u64 + 1) << 48,
            });
        }
        p.policy = match b.policy {
            PolicyKind::StreamQos => Box::new(StreamQosPolicy::new(X86, 500).with_tandem_ixp(IXP)),
            PolicyKind::BufferTrigger => {
                let mut pol = BufferTriggerPolicy::new(X86);
                if let Some(rate) = b.trigger_rate {
                    pol = pol.with_rate_limit(rate, (rate * 2.0).max(1.0));
                }
                Box::new(pol)
            }
            PolicyKind::RequestType
            | PolicyKind::RequestTypeHysteresis
            | PolicyKind::InferenceBatch
            | PolicyKind::None => Box::new(NullPolicy),
        };
        p.attach_adversaries(&b);
        p
    }

    pub(crate) fn new_inference(b: PlatformBuilder, scenario: InferenceScenario) -> Platform {
        let mut ixp_cfg = b.ixp_overrides.clone().unwrap_or_default();
        // DPI on: the IXP classifies inference requests so the policy can
        // see each tenant's SLA class at the network edge.
        ixp_cfg.dpi = true;
        let mut p = Platform::base(&b, ixp_cfg);
        p.dom0 = p.sched.create_domain("dom0", 256, b.ncpus);
        p.accel_dma = scenario.dma_latency;
        let mut acc = AccelIsland::with_island(scenario.accel.clone(), ACCEL);
        p.controller.handle(
            Nanos::ZERO,
            CoordMsg::RegisterIsland { island: ACCEL, kind: IslandKind::Accelerator },
        );
        let model = InferenceModel::new(scenario.inference.clone(), b.effective_seed());
        let mut tenant_vms = Vec::new();
        let mut accel_tenants = Vec::new();
        for (i, spec) in scenario.inference.tenants.iter().enumerate() {
            let vm_index = (i + 1) as u32;
            let slot = p.add_vm(spec.name, 256, vm_index, true);
            let entity = p.vms[slot].entity;
            let tenant = acc.register_tenant(vm_index);
            // Monitor only interactive tenants' queues: their alarm sits
            // at `depth` requests' worth of the model's input bytes.
            if let Some(depth) = scenario.interactive_alarm_depth {
                let m = model.model_of(i);
                if m.latency_sensitive {
                    acc.set_queue_alarm(tenant, Some(depth as u64 * m.input_bytes as u64));
                }
            }
            // Third binding: the same platform entity is a submission
            // queue on the accelerator island.
            p.controller.handle(
                Nanos::ZERO,
                CoordMsg::RegisterEntity {
                    entity,
                    island: ACCEL,
                    local_key: tenant.0 as u64,
                },
            );
            tenant_vms.push(vm_index);
            accel_tenants.push(tenant);
        }
        p.accel = Some(acc);
        p.policy = match b.policy {
            PolicyKind::InferenceBatch => Box::new(InferenceBatchPolicy::new(ACCEL)),
            PolicyKind::BufferTrigger => {
                let mut pol = BufferTriggerPolicy::new(ACCEL);
                if let Some(rate) = b.trigger_rate {
                    pol = pol.with_rate_limit(rate, (rate * 2.0).max(1.0));
                }
                Box::new(pol)
            }
            PolicyKind::RequestType
            | PolicyKind::RequestTypeHysteresis
            | PolicyKind::StreamQos
            | PolicyKind::None => Box::new(NullPolicy),
        };
        p.inf = Some(InferenceState {
            model,
            reqs: HashMap::new(),
            resp_map: HashMap::new(),
            pkt_to_req: HashMap::new(),
            tenant_vms,
            accel_tenants,
            queue_delays: ResponseStats::new(),
        });
        p.attach_adversaries(&b);
        p
    }

    // ------------------------------------------------------------------
    // VM helpers
    // ------------------------------------------------------------------

    pub(crate) fn slot_by_vm(&self, vm_index: u32) -> Option<usize> {
        self.vms.iter().position(|v| v.vm_index == vm_index)
    }

    pub(crate) fn dom_of_vm(&self, vm_index: u32) -> Option<DomId> {
        self.slot_by_vm(vm_index).map(|i| self.vms[i].dom)
    }

    pub(crate) fn alloc_tag(&mut self, ctx: Ctx) -> u64 {
        let tag = self.next_tag;
        self.next_tag += 1;
        self.tags.insert(tag, ctx);
        tag
    }

    /// Submits a burst to a domain and absorbs any catch-up completions.
    pub(crate) fn submit(&mut self, dom: DomId, burst: Burst, wake: WakeMode) {
        self.horizons.mark(horizon::SCHED);
        let now = self.now;
        let evs = self
            .sched
            .submit(now, dom, burst, wake)
            .expect("domain exists");
        self.absorb_sched(evs);
    }

    /// Sets the IXP dequeue-thread count for the flow registered to a
    /// guest VM index (the Figure 6 "tandem" knob).
    pub fn set_flow_threads_by_vm(&mut self, vm_index: u32, threads: u32) -> bool {
        let Some(flow) = self.ixp.flow_of_vm(vm_index) else {
            return false;
        };
        self.horizons.mark(horizon::IXP);
        self.ixp.set_flow_threads(flow, threads);
        true
    }

    /// The most recent coordination decisions applied on the x86 island
    /// (bounded history; useful when debugging a policy), rendered to
    /// text lazily — the hot path records compact [`TraceEvent`] values.
    pub fn coordination_trace(&self) -> impl Iterator<Item = (Nanos, String)> + '_ {
        self.trace.iter().map(|&(t, e)| (t, e.to_string()))
    }

    /// The same bounded history as [`coordination_trace`](Self::coordination_trace),
    /// as the structured values the hot path actually records.
    pub fn coordination_trace_events(&self) -> impl Iterator<Item = &(Nanos, TraceEvent)> {
        self.trace.iter()
    }

    /// Diagnostic: one-line scheduler state summary.
    pub fn diag_line(&self) -> String {
        let mut out = String::new();
        let mut doms = vec![(self.dom0, "dom0".to_string())];
        for v in &self.vms {
            doms.push((v.dom, v.name.clone()));
        }
        for (d, name) in doms {
            out.push_str(&format!(
                "{}[{:?} {:?} c{:?}] ",
                name,
                self.sched.run_state(d),
                self.sched.priority(d),
                self.sched.credits_all(d),
            ));
        }
        out
    }

    /// Diagnostic: credits of each VCPU of a named domain.
    pub fn credits_of(&self, name: &str) -> Vec<i32> {
        if name == "dom0" {
            return self.sched.credits_all(self.dom0);
        }
        self.vms
            .iter()
            .find(|v| v.name == name)
            .map(|v| self.sched.credits_all(v.dom))
            .unwrap_or_default()
    }

    /// Overrides a domain's scheduling weight by name ("web", "dom1", …).
    /// Returns `false` if no such domain exists. Used by experiments that
    /// evaluate static weight assignments.
    pub fn set_weight_by_name(&mut self, name: &str, weight: u32) -> bool {
        self.horizons.mark(horizon::SCHED);
        if name == "dom0" {
            return self.sched.set_weight(self.dom0, weight).is_ok();
        }
        let Some(slot) = self.vms.iter().position(|v| v.name == name) else {
            return false;
        };
        self.sched.set_weight(self.vms[slot].dom, weight).is_ok()
    }

    // ------------------------------------------------------------------
    // Main loop
    // ------------------------------------------------------------------

    /// Runs the simulation for `duration` and returns the measurements,
    /// using the configured island-thread count (default 1 = serial).
    ///
    /// Each iteration refreshes the dirty entries of the horizon cache —
    /// all O(1) reads: the queues keep a live head and the scheduler
    /// memoises its horizon — and dispatches the earliest source through
    /// the [`SOURCES`] registry.
    pub fn run(&mut self, duration: Nanos) -> RunReport {
        let threads = self.island_threads;
        self.run_with(duration, threads)
    }

    /// [`run`](Self::run) with an explicit island worker-thread count.
    ///
    /// `island_threads = 1` is the serial master loop. With more
    /// threads, the loop partitions the event sources into the three
    /// scheduling islands (see [`crate::pdes`]), derives the
    /// conservative epoch from the cross-island channel lookaheads, and
    /// services island horizons on scoped worker threads at epoch
    /// barriers. Dispatch order — and therefore every report, CSV and
    /// trace — is bit-identical for any thread count; the determinism
    /// suite asserts this across seeds, fault profiles and chaos plans.
    pub fn run_with(&mut self, duration: Nanos, island_threads: usize) -> RunReport {
        let wall_start = std::time::Instant::now();
        let t_end = self.now + duration;
        self.run_end = t_end;
        self.q.schedule(self.now + self.sample_period, Ev::Sample);
        self.start_workload();
        // Pre-run configuration (weights, alarms, repeated `run` calls)
        // may have moved any source; start from a full refresh.
        self.horizons.mark_all();
        let stats = self.run_loop(t_end, island_threads.max(1));
        self.now = t_end;
        let mut evs = std::mem::take(&mut self.scratch_sched);
        self.sched.on_timer(t_end, &mut evs);
        self.absorb_sched_drain(&mut evs);
        self.scratch_sched = evs;
        let wall_micros = wall_start.elapsed().as_micros() as u64;
        self.build_report(duration, stats, wall_micros)
    }

    /// The master event loop, shared by the serial and parallel paths.
    ///
    /// The loop's invariants:
    /// * every cached horizon whose dirty bit is clear equals a
    ///   from-scratch recompute (checked at debug-build epoch barriers);
    /// * the earliest horizon is dispatched next, lowest source index
    ///   breaking timestamp ties (the [`SOURCES`] order);
    /// * no source advances past another source's horizon.
    ///
    /// Epoch barriers land on multiples of the conservative lookahead
    /// (the minimum cross-island channel latency): between two barriers
    /// no island can affect another island's horizon through a channel,
    /// so cross-island horizon refreshes can be serviced concurrently by
    /// the island workers without changing any cached value.
    fn run_loop(&mut self, t_end: Nanos, threads: usize) -> pdes::PdesStats {
        let plan = self.lookahead_plan();
        let mut stats = pdes::PdesStats::new(plan.epoch, threads);
        let mut next_barrier = pdes::next_boundary(self.now, plan.epoch);
        loop {
            let mut d = self.horizons.take_dirty();
            while d != 0 {
                let i = d.trailing_zeros() as usize;
                d &= d - 1;
                let h = self.fresh_horizon(i);
                self.horizons.set(i, h);
            }
            let (t, src) = self.horizons.earliest();
            if src == horizon::NSRC || t > t_end {
                break;
            }
            if t >= next_barrier {
                // Conservative epoch barrier. Idle epochs are coalesced:
                // the next barrier is aligned to the epoch grid at or
                // before the next event, so a quiet simulated second
                // costs one crossing, not latency/epoch of them.
                stats.sync_points += 1;
                #[cfg(debug_assertions)]
                self.debug_check_horizons();
                if threads > 1 && stats.sync_points.is_multiple_of(pdes::SERVICE_INTERVAL) {
                    self.service_islands_parallel(threads);
                }
                next_barrier = pdes::next_boundary(t, plan.epoch);
            }
            self.now = t;
            stats.events += 1;
            stats.by_island[SOURCES[src].island] += 1;
            // Dispatching a source always perturbs it (its head event is
            // consumed), so its entry is unconditionally dirty; anything
            // else the handler touches marks itself at the mutation site.
            self.horizons.mark(1 << src as u32);
            (SOURCES[src].dispatch)(self, t);
        }
        stats
    }

    /// Debug-build invariant sweep: every cached horizon must equal a
    /// from-scratch recompute. PR 5 ran this on every loop iteration,
    /// which made debug runs feel quadratic on long simulations; it now
    /// runs once per conservative epoch barrier — the same invariant
    /// (a missing dirty mark still trips, at the following barrier at
    /// the latest) at a bounded amortized cost.
    #[cfg(debug_assertions)]
    fn debug_check_horizons(&self) {
        for (i, spec) in SOURCES.iter().enumerate() {
            debug_assert_eq!(
                self.horizons.get(i),
                self.fresh_horizon(i),
                "stale cached horizon for source `{}` (bit {i}): a \
                 mutation site is missing its `horizons.mark` call",
                spec.name
            );
        }
    }

    // ------------------------------------------------------------------
    // Source dispatch (one method per [`SOURCES`] registry entry)
    // ------------------------------------------------------------------

    /// Master-queue head: workload pacing and sampling events.
    fn dispatch_queue(&mut self, t: Nanos) {
        let mut evs = std::mem::take(&mut self.scratch_ev);
        Component::advance(&mut self.q, t, &mut evs);
        for (_, ev) in evs.drain(..) {
            if let Some(d) = self.chaos.delay_event() {
                // Chaos: push this timer fire out by a bounded delay
                // instead of dispatching it. The schedule is finite, so
                // the event always runs eventually.
                self.q.schedule(t + d, ev);
            } else {
                self.handle_ev(ev);
            }
        }
        self.scratch_ev = evs;
    }

    /// Credit-scheduler timer: ticks, slice rotation, completions.
    fn dispatch_sched(&mut self, t: Nanos) {
        let mut evs = std::mem::take(&mut self.scratch_sched);
        Component::advance(&mut self.sched, t, &mut evs);
        self.absorb_sched_drain(&mut evs);
        self.scratch_sched = evs;
    }

    /// IXP stage pipeline: classification, delivery, alarms, wire tx.
    fn dispatch_ixp(&mut self, t: Nanos) {
        let mut evs = std::mem::take(&mut self.scratch_ixp);
        Component::advance(&mut self.ixp, t, &mut evs);
        self.absorb_ixp_drain(&mut evs);
        self.scratch_ixp = evs;
    }

    /// PCIe link: DMA completions and moderated host notifications.
    fn dispatch_link(&mut self, t: Nanos) {
        let mut evs = std::mem::take(&mut self.scratch_link);
        Component::advance(&mut self.link, t, &mut evs);
        self.absorb_link_drain(&mut evs);
        self.scratch_link = evs;
    }

    /// Forward coordination mailbox: frames arriving at Dom0.
    fn dispatch_coord_mbx(&mut self, t: Nanos) {
        let mut msgs = std::mem::take(&mut self.scratch_mbx);
        Component::advance(&mut self.mbx, t, &mut msgs);
        for m in msgs.drain(..) {
            self.handle_coord_delivery(m);
        }
        self.scratch_mbx = msgs;
    }

    /// Reverse mailbox: reliable-delivery acks arriving at the sender.
    fn dispatch_ack_mbx(&mut self, t: Nanos) {
        let mut msgs = std::mem::take(&mut self.scratch_ack);
        Component::advance(&mut self.ack_mbx, t, &mut msgs);
        for m in msgs.drain(..) {
            self.handle_ack_delivery(m);
        }
        self.scratch_ack = msgs;
    }

    /// Reliable sender's retransmission deadlines.
    fn dispatch_retx(&mut self, _t: Nanos) {
        self.pump_retransmits();
    }

    /// Accelerator batch engine: completions, alarms, chaos Triggers.
    fn dispatch_accel(&mut self, t: Nanos) {
        let mut evs = std::mem::take(&mut self.scratch_accel);
        if let Some(acc) = self.accel.as_mut() {
            Component::advance(acc, t, &mut evs);
        }
        if self.chaos.force_trigger() {
            // Chaos: preempt a tenant queue at this batch boundary, as a
            // hostile Trigger would.
            self.chaos_force_trigger();
        }
        self.absorb_accel_drain(&mut evs);
        self.scratch_accel = evs;
    }

    /// Accelerator doorbell lane: coordination verbs reaching the device.
    fn dispatch_accel_mbx(&mut self, t: Nanos) {
        let mut msgs = std::mem::take(&mut self.scratch_accel_mbx);
        Component::advance(&mut self.accel_mbx, t, &mut msgs);
        for m in msgs.drain(..) {
            self.handle_accel_delivery(m);
        }
        self.scratch_accel_mbx = msgs;
    }

    /// Overrides the island worker-thread count for subsequent
    /// [`run`](Self::run) calls (the builder knob
    /// [`PlatformBuilder::island_threads`] sets the initial value; the
    /// bench harness sets this from `--island-threads`).
    pub fn set_island_threads(&mut self, threads: usize) {
        self.island_threads = threads.max(1);
    }

    fn start_workload(&mut self) {
        if let Some(r) = self.rubis.as_ref() {
            let n = r.clients.len();
            for c in 0..n as u32 {
                // Stagger initial arrivals across the first think time.
                let jitter = Nanos::from_micros(self.rng.range(0, 100_000));
                self.q.schedule(self.now + jitter, Ev::ClientSend(c));
            }
        }
        if let Some(inf) = self.inf.as_mut() {
            // Each tenant's first arrival lands one inter-arrival gap in,
            // so sources start desynchronized.
            for t in 0..inf.tenant_vms.len() as u32 {
                let gap = inf.model.next_gap(t as usize);
                self.q.schedule(self.now + gap, Ev::ClientSend(t));
            }
        }
        for i in 0..self.players.len() {
            match self.players[i].player.source() {
                Source::Network => {
                    // RTSP setup packet first, then paced frames.
                    let spec = self.players[i].player.spec();
                    let vm = self.players[i].vm_index;
                    let id = self.players[i].next_pkt_id;
                    self.players[i].next_pkt_id += 1;
                    let setup = spec.setup_packet(id, vm);
                    self.q.schedule(self.now + self.costs.wire_latency, Ev::WireArrive(setup));
                    self.q
                        .schedule(self.now + Nanos::from_millis(50), Ev::FrameGen(i));
                }
                Source::LocalDisk => {
                    self.submit_decode(i);
                }
            }
        }
        let streams = self.dom0_hog.ceil() as u32;
        for _ in 0..streams {
            self.submit_background();
        }
        // Adversaries: arm each emission clock (fixed arithmetic schedule,
        // no RNG draws — zero adversaries leaves every stream untouched)
        // and start the per-VM CPU hog.
        for i in 0..self.adversaries.len() {
            let a = &self.adversaries[i];
            if let (0, Some(t)) = (a.sent(), a.next_at()) {
                self.horizons.mark(horizon::QUEUE);
                self.q.schedule(t, Ev::Adversary(i));
            }
            if let Some(slot) = self.slot_by_vm(self.adversaries[i].entity().0) {
                self.submit_adv_load(slot);
            }
        }
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle_ev(&mut self, ev: Ev) {
        match ev {
            Ev::WireArrive(pkt) => {
                let now = self.now;
                self.horizons.mark(horizon::IXP);
                let evs = self.ixp.rx_from_wire(now, pkt);
                self.absorb_ixp(evs);
            }
            Ev::ClientSend(client) => {
                if self.inf.is_some() {
                    self.inference_send(client)
                } else {
                    self.client_send(client)
                }
            }
            Ev::FrameGen(i) => self.frame_gen(i),
            Ev::BackgroundKick => self.submit_background(),
            Ev::Rto { req, attempt } => {
                if self.inf.is_some() {
                    self.inference_rto(req, attempt)
                } else {
                    self.client_rto(req, attempt)
                }
            }
            Ev::AccelDma { req } => self.accel_dma_done(req),
            Ev::Adversary(i) => self.adversary_act(i),
            Ev::Sample => self.take_sample(),
        }
    }

    /// An adversary's emission clock fired: forward its message through
    /// the real coordination channel (so it competes with honest traffic
    /// and meets the controller's defenses) and rearm the clock.
    fn adversary_act(&mut self, i: usize) {
        let now = self.now;
        let Some(a) = self.adversaries.get_mut(i) else { return };
        let Some(msg) = a.emit(now) else { return };
        let next = a.next_at();
        self.send_coord(vec![msg]);
        if let Some(t) = next {
            if t <= self.run_end {
                self.horizons.mark(horizon::QUEUE);
                self.q.schedule(t, Ev::Adversary(i));
            }
        }
    }

    /// One CPU-hog chunk on an adversary VM; the completion context
    /// resubmits, so the VM consumes whatever share its weight buys for
    /// the whole run.
    fn submit_adv_load(&mut self, slot: usize) {
        let chunk = self.hog_chunk;
        let dom = self.vms[slot].dom;
        let tag = self.alloc_tag(Ctx::AdvLoad { slot });
        // A CPU-bound guest gets no I/O boost; its share is bought purely
        // by weight — exactly the knob the inflater strategy games.
        self.submit(dom, Burst::user(chunk, tag), WakeMode::Plain);
    }

    /// Chaos hook: preempt one accelerator tenant queue as a hostile
    /// Trigger would, rotating the victim across successive firings.
    fn chaos_force_trigger(&mut self) {
        let now = self.now;
        let Some(inf) = self.inf.as_ref() else { return };
        if inf.accel_tenants.is_empty() {
            return;
        }
        let idx = (self.chaos_triggers as usize) % inf.accel_tenants.len();
        self.chaos_triggers += 1;
        let tenant = inf.accel_tenants[idx];
        let Some(acc) = self.accel.as_mut() else { return };
        self.horizons.mark(horizon::ACCEL);
        let mgr: &mut dyn ResourceManager = acc;
        let _ = mgr.apply_trigger(now, EntityId(tenant.0));
    }

    /// Perturbations the chaos plan has injected so far (0 for
    /// [`ChaosPlan::none()`], which is the default).
    pub fn chaos_injected(&self) -> u64 {
        self.chaos.injected()
    }

    pub(crate) fn absorb_sched(&mut self, mut evs: Vec<SchedEvent>) {
        self.absorb_sched_drain(&mut evs);
    }

    fn absorb_sched_drain(&mut self, evs: &mut Vec<SchedEvent>) {
        for ev in evs.drain(..) {
            let SchedEvent::Completed { tag, .. } = ev;
            let Some(ctx) = self.tags.remove(&tag) else { continue };
            self.handle_ctx(ctx);
        }
    }

    fn handle_ctx(&mut self, ctx: Ctx) {
        match ctx {
            Ctx::DriverService => {
                self.driver_pending = false;
                let now = self.now;
                self.horizons.mark(horizon::LINK);
                let pkts = self.link.host_take(now, usize::MAX);
                for (flow, pkt) in pkts {
                    self.deliver_to_guest(flow, pkt);
                }
            }
            Ctx::TierDone { req, tier } => self.rubis_tier_done(req, tier),
            Ctx::HopDone { req, tier } => self.rubis_hop_done(req, tier),
            Ctx::RespOut { req } => self.rubis_resp_out(req),
            Ctx::Decode { player } => self.decode_done(player),
            Ctx::Background => {
                // Per-stream duty cycle: a hog of e.g. 1.5 runs two
                // streams at 75% duty each.
                let streams = self.dom0_hog.ceil().max(1.0);
                let duty = (self.dom0_hog / streams).clamp(0.0, 1.0);
                if duty >= 1.0 {
                    self.submit_background();
                } else if duty > 0.0 {
                    let gap = self.hog_chunk * ((1.0 - duty) / duty);
                    self.horizons.mark(horizon::QUEUE);
                    self.q.schedule(self.now + gap, Ev::BackgroundKick);
                }
            }
            Ctx::AdvLoad { slot } => self.submit_adv_load(slot),
            Ctx::CoordApply { msg } => {
                self.coord_inflight = false;
                self.apply_coord_msg(msg);
                self.pump_coord_applies();
            }
            Ctx::InfPost { req } => self.inference_post_done(req),
            Ctx::InfRespOut { req } => self.inference_resp_out(req),
        }
    }

    pub(crate) fn absorb_ixp(&mut self, mut evs: Vec<IxpEvent>) {
        self.absorb_ixp_drain(&mut evs);
    }

    fn absorb_ixp_drain(&mut self, evs: &mut Vec<IxpEvent>) {
        for ev in evs.drain(..) {
            match ev {
                IxpEvent::Classified { flow, pkt, .. } => self.on_classified(flow, pkt),
                IxpEvent::DeliverToHost { flow, pkt, .. } => {
                    let now = self.now;
                    self.horizons.mark(horizon::LINK);
                    self.link.post_to_host(now, flow, pkt);
                }
                IxpEvent::BufferAlarm { flow, bytes, .. } => self.on_buffer_alarm(flow, bytes),
                IxpEvent::TransmitToWire { pkt, .. } => self.on_wire_tx(pkt),
            }
        }
    }

    fn absorb_link_drain(&mut self, evs: &mut Vec<PcieEvent>) {
        for ev in evs.drain(..) {
            match ev {
                PcieEvent::HostNotify { pending, .. } => {
                    if !self.driver_pending {
                        self.driver_pending = true;
                        let cost = self.costs.driver_base
                            + self.costs.driver_per_desc * pending as u64;
                        let tag = self.alloc_tag(Ctx::DriverService);
                        let dom0 = self.dom0;
                        self.submit(dom0, Burst::system(cost, tag), WakeMode::Boost);
                    }
                }
                PcieEvent::TxArrived { pkt, .. } => {
                    let now = self.now;
                    self.horizons.mark(horizon::IXP);
                    let evs = self.ixp.tx_from_host(now, pkt);
                    self.absorb_ixp(evs);
                }
            }
        }
    }

    fn on_classified(&mut self, flow: FlowId, pkt: Packet) {
        let obs = match pkt.app {
            AppTag::Http { class_id, write } => Some(Observation::Request { class_id, write }),
            AppTag::RtspSetup { kbps, fps } => {
                let entity = self
                    .ixp
                    .vm_of_flow(flow)
                    .and_then(|vm| self.slot_by_vm(vm))
                    .map(|i| self.vms[i].entity);
                entity.map(|entity| Observation::StreamInfo { entity, kbps, fps })
            }
            AppTag::Inference { latency_sensitive, .. } => {
                let entity = self
                    .ixp
                    .vm_of_flow(flow)
                    .and_then(|vm| self.slot_by_vm(vm))
                    .map(|i| self.vms[i].entity);
                entity.map(|entity| Observation::InferenceArrival { entity, latency_sensitive })
            }
            _ => None,
        };
        if let Some(obs) = obs {
            let now = self.now;
            let msgs = self.policy.observe(now, &obs);
            self.send_coord(msgs);
        }
    }

    fn on_buffer_alarm(&mut self, flow: FlowId, bytes: u64) {
        let Some(entity) = self
            .ixp
            .vm_of_flow(flow)
            .and_then(|vm| self.slot_by_vm(vm))
            .map(|i| self.vms[i].entity)
        else {
            return;
        };
        let now = self.now;
        let msgs = self.policy.observe(
            now,
            &Observation::BufferLevel { entity, bytes, crossed: true },
        );
        self.send_coord(msgs);
    }

    fn send_coord(&mut self, msgs: Vec<CoordMsg>) {
        let now = self.now;
        for m in msgs {
            let mut buf = Vec::new();
            let n = match self.rel_tx.as_mut() {
                Some(tx) => {
                    if tx.is_degraded() && tx.pending_len() > 0 {
                        // Degraded fallback: don't pile new tunes onto a
                        // channel that is demonstrably not delivering. The
                        // still-pending retransmissions double as probes;
                        // their ack ends degraded mode.
                        self.degraded_suppressed += 1;
                        self.trace.record(now, TraceEvent::DegradedSuppressed { msg: m });
                        continue;
                    }
                    let seq = tx.send(now, m);
                    coord::wire::encode_framed(seq, &m, &mut buf)
                }
                None => coord::wire::encode(&m, &mut buf),
            };
            self.coord.messages_sent += 1;
            self.coord.bytes_sent += n as u64;
            self.horizons.mark(horizon::RETX | horizon::MBX);
            match self.chaos.coord_jitter() {
                Some(extra) => {
                    // Chaos: this message rides a congested channel. The
                    // override applies to this send only.
                    self.mbx.set_latency(self.coord_latency + extra);
                    self.mbx.send(now, buf);
                    self.mbx.set_latency(self.coord_latency);
                }
                None => self.mbx.send(now, buf),
            }
        }
    }

    /// Fires due retransmission deadlines: re-sends under-cap messages and
    /// traces give-ups and degraded-mode entry.
    fn pump_retransmits(&mut self) {
        let now = self.now;
        self.horizons.mark(horizon::RETX | horizon::MBX);
        let Some(tx) = self.rel_tx.as_mut() else { return };
        let was_degraded = tx.is_degraded();
        let gave_up_before = tx.stats().gave_up;
        let mut retx = std::mem::take(&mut self.scratch_retx);
        Component::advance(tx, now, &mut retx);
        let entered_degraded = !was_degraded && tx.is_degraded();
        let gave_up = tx.stats().gave_up - gave_up_before;
        for (seq, msg) in retx.drain(..) {
            let mut buf = Vec::new();
            let n = coord::wire::encode_framed(seq, &msg, &mut buf);
            self.coord.bytes_sent += n as u64;
            self.trace.record(now, TraceEvent::Retransmit { seq });
            self.mbx.send(now, buf);
        }
        self.scratch_retx = retx;
        if gave_up > 0 {
            self.trace.record(now, TraceEvent::GaveUp { count: gave_up });
        }
        if entered_degraded {
            self.trace.record(now, TraceEvent::EnteredDegraded);
        }
    }

    fn handle_coord_delivery(&mut self, bytes: Vec<u8>) {
        let msg = if coord::wire::is_framed(&bytes) {
            let Ok((seq, msg, _)) = coord::wire::decode_framed(&bytes) else {
                return;
            };
            // Ack every copy — the sender may be retransmitting because a
            // previous ack was lost — but process each sequence once.
            let now = self.now;
            let mut ack = Vec::new();
            coord::wire::encode(&CoordMsg::Ack { seq }, &mut ack);
            self.horizons.mark(horizon::ACK);
            self.ack_mbx.send(now, ack);
            if let Some(rx) = self.rel_rx.as_mut() {
                if !rx.accept(seq) {
                    self.trace.record(now, TraceEvent::SuppressedDuplicate { seq });
                    return;
                }
            }
            msg
        } else {
            let Ok((msg, _)) = coord::wire::decode(&bytes) else {
                return;
            };
            msg
        };
        if msg.is_urgent() {
            // Triggers are interrupt-like: applied in interrupt context,
            // not through a scheduled Dom0 burst.
            self.apply_coord_msg(msg);
        } else {
            self.coord_pending.push_back(msg);
            self.pump_coord_applies();
        }
    }

    fn handle_ack_delivery(&mut self, bytes: Vec<u8>) {
        let Ok((CoordMsg::Ack { seq }, _)) = coord::wire::decode(&bytes) else {
            return;
        };
        let now = self.now;
        self.horizons.mark(horizon::RETX);
        let Some(tx) = self.rel_tx.as_mut() else { return };
        let was_degraded = tx.is_degraded();
        tx.on_ack(now, seq);
        if was_degraded {
            self.trace.record(now, TraceEvent::DegradedOver { seq });
        }
    }

    /// Absorbs accelerator events: completions feed the x86 post-process
    /// path, queue alarms feed the coordination policy.
    fn absorb_accel_drain(&mut self, evs: &mut Vec<AccelEvent>) {
        for ev in evs.drain(..) {
            match ev {
                AccelEvent::Completed { id, tenant, batch_size, queued, .. } => {
                    self.inference_completed(id, tenant, batch_size, queued);
                }
                AccelEvent::QueueAlarm { tenant, queued_bytes, .. } => {
                    self.on_accel_alarm(tenant, queued_bytes);
                }
            }
        }
    }

    /// Applies a coordination verb arriving over the accelerator's
    /// doorbell lane, through the island's [`ResourceManager`] contract.
    // collapsible_match would hoist the side-effecting apply_* calls into
    // match guards, which hides the mutation inside pattern dispatch.
    #[allow(clippy::collapsible_match)]
    fn handle_accel_delivery(&mut self, bytes: Vec<u8>) {
        let Ok((msg, _)) = coord::wire::decode(&bytes) else { return };
        let now = self.now;
        self.horizons.mark(horizon::ACCEL);
        let Some(acc) = self.accel.as_mut() else { return };
        let mgr: &mut dyn ResourceManager = acc;
        match msg {
            CoordMsg::Tune { entity, delta, .. } => {
                if mgr.apply_tune(now, entity, delta).is_ok() {
                    self.coord.tunes_applied += 1;
                    self.trace.record(now, TraceEvent::AccelTune { entity, delta });
                }
            }
            CoordMsg::Trigger { entity, .. } => {
                if mgr.apply_trigger(now, entity).is_ok() {
                    self.coord.triggers_applied += 1;
                    self.trace.record(now, TraceEvent::AccelTrigger { entity });
                }
            }
            _ => {}
        }
    }

    /// A tenant's device-side queue crossed its occupancy threshold; give
    /// the policy the same buffer-level view the IXP monitor produces.
    fn on_accel_alarm(&mut self, tenant: TenantId, queued_bytes: u64) {
        let Some(inf) = self.inf.as_ref() else { return };
        let Some(idx) = inf.accel_tenants.iter().position(|t| *t == tenant) else {
            return;
        };
        let Some(slot) = self.slot_by_vm(inf.tenant_vms[idx]) else { return };
        let entity = self.vms[slot].entity;
        let now = self.now;
        let msgs = self.policy.observe(
            now,
            &Observation::BufferLevel { entity, bytes: queued_bytes, crossed: true },
        );
        self.send_coord(msgs);
    }

    /// Keeps exactly one Dom0 coordination-apply burst in flight so Tune
    /// deltas land in channel order.
    fn pump_coord_applies(&mut self) {
        if self.coord_inflight {
            return;
        }
        let Some(msg) = self.coord_pending.pop_front() else { return };
        self.coord_inflight = true;
        let cost = self.costs.coord_apply;
        let tag = self.alloc_tag(Ctx::CoordApply { msg });
        let dom0 = self.dom0;
        self.submit(dom0, Burst::system(cost, tag), WakeMode::Boost);
    }

    fn apply_coord_msg(&mut self, msg: CoordMsg) {
        let now = self.now;
        let actions = self.controller.handle(now, msg);
        for a in actions {
            self.apply_action(a);
        }
    }

    fn apply_action(&mut self, action: Action) {
        match action {
            Action::ApplyTune { island, local_key, delta } if island == X86 => {
                let dom = DomId(local_key as u32);
                if let Ok(w) = self.sched.weight(dom) {
                    let new = (w as i64 + delta as i64).clamp(1, 65_535) as u32;
                    self.horizons.mark(horizon::SCHED);
                    let _ = self.sched.set_weight(dom, new);
                    self.coord.tunes_applied += 1;
                    let now = self.now;
                    self.trace.record(now, TraceEvent::Tune { dom, from: w, to: new });
                }
            }
            Action::ApplyTune { island, local_key, delta } if island == IXP => {
                let flow = FlowId(local_key as u32);
                let cur = self.ixp.flow_threads(flow) as i64;
                let new = (cur + delta as i64).clamp(1, 16) as u32;
                self.horizons.mark(horizon::IXP);
                self.ixp.set_flow_threads(flow, new);
                self.coord.tunes_applied += 1;
            }
            Action::ApplyTune { island, local_key, delta } if island == ACCEL => {
                // The accelerator is behind its own doorbell lane: Dom0
                // re-encodes the verb and the device applies it on
                // delivery, so accel coordination pays channel latency
                // (and suffers channel faults) like any other island.
                let mut buf = Vec::new();
                let msg = CoordMsg::Tune {
                    entity: EntityId(local_key as u32),
                    delta,
                    target: Some(ACCEL),
                };
                let n = coord::wire::encode(&msg, &mut buf);
                self.coord.bytes_sent += n as u64;
                let now = self.now;
                self.horizons.mark(horizon::ACCEL_MBX);
                self.accel_mbx.send(now, buf);
            }
            Action::ApplyTrigger { island, local_key } if island == ACCEL => {
                let mut buf = Vec::new();
                let msg = CoordMsg::Trigger {
                    entity: EntityId(local_key as u32),
                    target: Some(ACCEL),
                };
                let n = coord::wire::encode(&msg, &mut buf);
                self.coord.bytes_sent += n as u64;
                let now = self.now;
                self.horizons.mark(horizon::ACCEL_MBX);
                self.accel_mbx.send(now, buf);
            }
            Action::ApplyKnob { island, axis, rung, .. } if island == X86 => {
                self.apply_knob(axis, rung);
            }
            Action::ApplyTrigger { island, local_key } if island == X86 => {
                let dom = DomId(local_key as u32);
                if std::env::var_os("COORD_TRIGGER_DEBUG").is_some() {
                    eprintln!("trigger dom{} state={:?} prio={:?} credit={:?}",
                        local_key, self.sched.run_state(dom), self.sched.priority(dom),
                        self.sched.credit(dom));
                }
                let now = self.now;
                self.horizons.mark(horizon::SCHED);
                if let Ok(evs) = self.sched.boost_front(now, dom) {
                    self.absorb_sched(evs);
                    // §3.3: the x86 island translates the preemptive
                    // request into a credit adjustment as well as the
                    // runqueue promotion.
                    let _ = self.sched.grant_credit(dom, 100);
                    self.coord.triggers_applied += 1;
                    self.trace.record(now, TraceEvent::Trigger { dom });
                }
            }
            _ => {}
        }
    }

    /// Moves one axis of the x86 island's energy lattice to `rung`
    /// (clamped to the ladder). The DVFS axis retimes the credit
    /// scheduler's service rates through its exact-rational speed; the
    /// cache and bandwidth axes change the service-time factors the
    /// request path reads — and all three move the power model's
    /// operating point for subsequent samples.
    fn apply_knob(&mut self, axis: KnobAxis, rung: u8) {
        let now = self.now;
        let Some(e) = self.energy.as_mut() else { return };
        let freq = match axis {
            KnobAxis::Dvfs => {
                let ladder = DvfsState::xeon_ladder();
                let rung = rung.min(ladder.len() as u8 - 1);
                e.applied.dvfs = rung;
                let (num, den) = ladder[rung as usize].speed();
                self.horizons.mark(horizon::SCHED);
                self.sched.set_speed(num, den);
                num as u32
            }
            KnobAxis::CacheWays => {
                e.applied.ways = rung.min(WAYS_LADDER.len() as u8 - 1);
                WAYS_LADDER[e.applied.ways as usize]
            }
            KnobAxis::MembwShare => {
                e.applied.membw = rung.min(MEMBW_LADDER.len() as u8 - 1);
                MEMBW_LADDER[e.applied.membw as usize]
            }
        };
        e.knob_actions += 1;
        self.trace.record(now, TraceEvent::Knob { axis, value: freq });
    }

    /// Scales a tier's CPU demand by the applied cache/bandwidth rungs:
    /// fewer DB-partition ways or a narrower bandwidth share stretch
    /// service times, DB-heavy work far more than CPU-heavy web/app
    /// work. Identity when the energy dimension is off or every factor
    /// axis sits at rung 0, so baseline runs are byte-identical.
    pub(crate) fn energy_scaled(&self, tier: Tier, demand: Nanos) -> Nanos {
        let Some(e) = self.energy.as_ref() else { return demand };
        let f = match tier {
            Tier::Db => {
                DB_WAYS_FACTOR[e.applied.ways as usize]
                    * DB_MEMBW_FACTOR[e.applied.membw as usize]
            }
            Tier::Web | Tier::App => CPU_MEMBW_FACTOR[e.applied.membw as usize],
        };
        if f == 1.0 {
            demand
        } else {
            Nanos((demand.as_nanos() as f64 * f) as u64)
        }
    }

    // ------------------------------------------------------------------
    // Guest delivery with receive-window backpressure
    // ------------------------------------------------------------------

    fn deliver_to_guest(&mut self, flow: FlowId, pkt: Packet) {
        let Some(vm) = self.ixp.vm_of_flow(flow) else { return };
        let Some(slot) = self.slot_by_vm(vm) else { return };
        if self.vms[slot].inflight_rx < self.costs.guest_rx_cap {
            self.vms[slot].inflight_rx += 1;
            self.delivered += 1;
            let now = self.now;
            self.horizons.mark(horizon::IXP);
            let evs = self.ixp.host_ack(now, flow, 1);
            self.absorb_ixp(evs);
            self.route_into_guest(vm, pkt);
        } else if (self.vms[slot].hold.len() as u32) < self.costs.guest_hold_cap {
            self.vms[slot].hold.push_back(pkt);
        } else {
            // Netfront/accept-queue overflow: the packet is lost and the
            // client will retransmit after its timeout.
            self.guest_drops += 1;
        }
    }

    /// Releases `n` units of a guest's receive window, pulling held
    /// packets through.
    pub(crate) fn consume_rx(&mut self, vm: u32, n: u32) {
        let Some(slot) = self.slot_by_vm(vm) else { return };
        let flow = self.vms[slot].flow;
        for _ in 0..n {
            if self.vms[slot].inflight_rx > 0 {
                self.vms[slot].inflight_rx -= 1;
            }
        }
        while self.vms[slot].inflight_rx < self.costs.guest_rx_cap {
            let Some(pkt) = self.vms[slot].hold.pop_front() else { break };
            self.vms[slot].inflight_rx += 1;
            self.delivered += 1;
            if let Some(f) = flow {
                let now = self.now;
                self.horizons.mark(horizon::IXP);
                let evs = self.ixp.host_ack(now, f, 1);
                self.absorb_ixp(evs);
            }
            self.route_into_guest(vm, pkt);
        }
    }

    fn route_into_guest(&mut self, vm: u32, pkt: Packet) {
        match pkt.app {
            AppTag::Http { .. } => self.rubis_request_arrived(vm, pkt),
            AppTag::Inference { .. } => self.inference_request_arrived(vm, pkt),
            AppTag::InferenceResponse { .. } => {
                // Responses leave through the IXP; one arriving at a guest
                // is a routing artifact. Release the window unit.
                self.consume_rx(vm, 1);
            }
            AppTag::Rtp { .. } | AppTag::UdpBulk => self.media_data_arrived(vm, pkt),
            AppTag::RtspSetup { .. } => {
                // Session setup costs the guest a negligible burst; the
                // interesting side effect (policy) already happened at
                // classification. Release the window unit immediately.
                self.consume_rx(vm, 1);
            }
            AppTag::HttpResponse { .. } | AppTag::Plain => {
                self.consume_rx(vm, 1);
            }
        }
    }

    // ------------------------------------------------------------------
    // Measurement
    // ------------------------------------------------------------------

    fn take_sample(&mut self) {
        let now = self.now;
        // `usage_snapshot` flushes accounting state and `set_cap` below
        // can reshape the runqueue; both live behind the sched bit.
        self.horizons.mark(horizon::SCHED);
        let snap = self.sched.usage_snapshot();
        let mut samples: Vec<DomainSample> = Vec::new();
        let mut total_pct = 0.0;
        for (dom, usage) in snap.iter() {
            let cum = usage.running();
            let prev = self.cpu_prev.get(&dom).copied().unwrap_or(Nanos::ZERO);
            let pct = (cum.saturating_sub(prev)) / self.sample_period * 100.0;
            self.cpu_series.entry(dom).or_default().push(now, pct);
            self.cpu_prev.insert(dom, cum);
            total_pct += pct;
            let name = if dom == self.dom0 {
                "dom0".to_owned()
            } else {
                self.vms
                    .iter()
                    .find(|v| v.dom == dom)
                    .map(|v| v.name.clone())
                    .unwrap_or_else(|| dom.to_string())
            };
            samples.push(DomainSample { name, cpu_percent: pct });
        }
        // Modelled platform power: CPU package + network processor. With
        // the energy dimension on, the package term follows the applied
        // DVFS point and gains the uncore terms the knobs control
        // (powered cache ways, bandwidth-share interface); energy-off
        // runs keep the original affine model bit-for-bit.
        let util = (total_pct / 100.0 / self.ncpus as f64).clamp(0.0, 1.0);
        let window_pkts = self.delivered.saturating_sub(self.delivered_prev);
        self.delivered_prev = self.delivered;
        let kpps = window_pkts as f64 / self.sample_period.as_secs_f64() / 1000.0;
        let cpu_w = match self.energy.as_ref() {
            Some(e) => {
                let p = DvfsState::xeon_ladder()[e.applied.dvfs as usize];
                self.cpu_power.watts_at(util, p)
                    + WAY_WATTS * WAYS_LADDER[e.applied.ways as usize] as f64
                    + MEMBW_WATTS * MEMBW_LADDER[e.applied.membw as usize] as f64 / 100.0
            }
            None => self.cpu_power.watts(util),
        };
        let ixp_w = self.ixp_power.watts(kpps);
        let watts = cpu_w + ixp_w;
        self.power_series.push(now, watts);
        // Drive the energy controller off the window's worst per-class
        // p99. Its knob move (if any) is a SetKnob on the real
        // coordination channel, not a direct poke at the scheduler.
        let mut knob_msg = None;
        if let Some(e) = self.energy.as_mut() {
            let secs = self.sample_period.as_secs_f64();
            e.cpu_joules += cpu_w * secs;
            e.ixp_joules += ixp_w * secs;
            e.residency[e.applied.dvfs as usize] += 1;
            let worst = e.worst_window_p99();
            e.window = ResponseStats::new();
            if let Some(p99) = worst {
                if let Some(s) = e.ctl.observe(now, p99) {
                    knob_msg = Some(CoordMsg::SetKnob {
                        entity: ENERGY_ENTITY,
                        axis: s.axis,
                        rung: s.rung,
                        target: Some(X86),
                    });
                }
            }
        }
        if let Some(m) = knob_msg {
            self.send_coord(vec![m]);
        }
        if let Some(gov) = self.power_gov.as_mut() {
            let actions = gov.sample(now, watts, &samples);
            for a in actions {
                let dom = if a.name == "dom0" {
                    Some(self.dom0)
                } else {
                    self.vms.iter().find(|v| v.name == a.name).map(|v| v.dom)
                };
                if let Some(d) = dom {
                    let _ = self.sched.set_cap(d, a.cap_percent);
                }
            }
        }
        if let Some(flow) = self.monitored_flow {
            self.buffer_series
                .push(now, self.ixp.flow_queue_bytes(flow) as f64);
        }
        if now + self.sample_period <= self.run_end {
            self.horizons.mark(horizon::QUEUE);
            self.q.schedule(now + self.sample_period, Ev::Sample);
        }
    }

    fn build_report(
        &mut self,
        duration: Nanos,
        stats: pdes::PdesStats,
        wall_micros: u64,
    ) -> RunReport {
        let events = stats.events;
        let snap = self.sched.usage_snapshot();
        let mut cpu = Vec::new();
        let mut total = 0.0;
        let mut names: Vec<(DomId, String)> =
            vec![(self.dom0, "dom0".to_owned())];
        for v in &self.vms {
            names.push((v.dom, v.name.clone()));
        }
        for (dom, name) in &names {
            let pct = snap.cpu_percent(*dom);
            total += pct;
            cpu.push(DomCpu {
                name: name.clone(),
                percent: pct,
                user: snap.user_percent(*dom),
                system: snap.system_percent(*dom),
                steal: snap.steal_percent(*dom),
            });
        }
        let throughput = self.sessions.throughput(duration);
        let rubis = RubisReport {
            responses: std::mem::take(&mut self.responses),
            completed: self.sessions.requests(),
            throughput,
            sessions: self.sessions.sessions(),
            avg_session_secs: self.sessions.avg_session_secs(),
        };
        let players = self
            .players
            .iter()
            .map(|p| PlayerReport {
                name: format!("dom{}", p.vm_index),
                target_fps: p.player.spec().fps,
                achieved_fps: p.player.achieved_fps(self.now),
                frames: p.player.frames_decoded(),
            })
            .collect();
        let cpu_series = names
            .iter()
            .map(|(dom, name)| {
                (
                    name.clone(),
                    self.cpu_series.get(dom).cloned().unwrap_or_default(),
                )
            })
            .collect();
        let flow_drops: u64 = self
            .vms
            .iter()
            .filter_map(|v| v.flow)
            .filter_map(|f| self.ixp.flow_stats(f))
            .map(|s| s.dropped)
            .sum();
        let efficiency = if self.rubis.is_some() {
            platform_efficiency(throughput, total)
        } else {
            0.0
        };
        let accel = match (self.accel.as_ref(), self.inf.as_ref()) {
            (Some(acc), Some(inf)) => {
                let tenants = inf
                    .accel_tenants
                    .iter()
                    .enumerate()
                    .map(|(i, t)| {
                        let s = acc.stats(*t).copied().unwrap_or_default();
                        let name = inf.model.config().tenants[i].name.to_owned();
                        let queue_p99_ms = inf.queue_delays.percentile(&name, 0.99);
                        AccelTenantReport {
                            name,
                            latency_sensitive: inf.model.model_of(i).latency_sensitive,
                            submitted: s.submitted,
                            completed: s.completed,
                            rejected: s.rejected,
                            batches: s.batches,
                            mean_batch: if s.batches > 0 {
                                s.batch_items as f64 / s.batches as f64
                            } else {
                                0.0
                            },
                            queue_p99_ms,
                            preemptions: s.preemptions,
                            alarms: s.alarms,
                        }
                    })
                    .collect();
                AccelReport {
                    tenants,
                    hbm_high_water: acc.hbm_high_water(),
                    hbm_rejects: acc.hbm_rejects(),
                }
            }
            _ => AccelReport::default(),
        };
        let power = PowerReport {
            cap_watts: self.power_gov.as_ref().map(|g| g.cap_watts()),
            mean_watts: self.power_series.mean(),
            max_watts: self.power_series.max_value().unwrap_or(0.0),
            cap_actions: self.power_gov.as_ref().map(|g| g.actions_applied()).unwrap_or(0),
            series: std::mem::take(&mut self.power_series),
        };
        let energy = match self.energy.as_mut() {
            Some(e) => {
                let ladder = DvfsState::xeon_ladder();
                EnergyReport {
                    enabled: true,
                    p99_target_ms: e.ctl.p99_target_ms(),
                    cpu_joules: std::mem::take(&mut e.cpu_joules),
                    ixp_joules: std::mem::take(&mut e.ixp_joules),
                    residency: std::mem::take(&mut e.residency)
                        .iter()
                        .enumerate()
                        .map(|(i, &n)| (ladder[i].freq_percent, n))
                        .collect(),
                    violations: e.ctl.violations(),
                    backoffs: e.ctl.backoffs(),
                    descents: e.ctl.descents(),
                    freezes: e.ctl.freezes(),
                    knob_actions: e.knob_actions,
                    final_dvfs_percent: ladder[e.applied.dvfs as usize].freq_percent,
                    final_ways: WAYS_LADDER[e.applied.ways as usize],
                    final_membw_percent: MEMBW_LADDER[e.applied.membw as usize],
                }
            }
            None => EnergyReport::default(),
        };
        RunReport {
            duration,
            policy: self.policy.name().to_owned(),
            rubis,
            players,
            cpu,
            total_cpu_percent: total,
            efficiency,
            coord: {
                let tx = self.rel_tx.as_ref();
                let stats = tx.map(|t| t.stats()).unwrap_or_default();
                CoordReport {
                    messages_sent: self.coord.messages_sent,
                    bytes_sent: self.coord.bytes_sent,
                    tunes_applied: self.coord.tunes_applied,
                    triggers_applied: self.coord.triggers_applied,
                    rejected: self.controller.stats().rejected,
                    throttled: self.controller.stats().throttled,
                    discounted: self.controller.stats().discounted,
                    channel_drops: self.mbx.dropped() + self.ack_mbx.dropped(),
                    channel_dups: self.mbx.duplicated() + self.ack_mbx.duplicated(),
                    retransmits: stats.retransmits,
                    acked: stats.acked,
                    gave_up: stats.gave_up,
                    dup_suppressed: self
                        .rel_rx
                        .as_ref()
                        .map_or(0, |rx| rx.dup_suppressed()),
                    degraded_entries: stats.degraded_entries,
                    degraded_secs: tx
                        .map_or(0.0, |t| t.degraded_time(self.now).as_secs_f64()),
                    degraded_suppressed: self.degraded_suppressed,
                }
            },
            net: NetReport {
                ixp_drops: flow_drops,
                link_drops: self.link.stats().ring_full_drops,
                unroutable: self.ixp.unroutable(),
                delivered: self.delivered,
                guest_drops: self.guest_drops,
            },
            cpu_series,
            buffer_series: std::mem::take(&mut self.buffer_series),
            accel,
            power,
            energy,
            sim_rate: SimRate {
                events,
                wall_micros,
                events_per_sec: if wall_micros > 0 {
                    events as f64 * 1e6 / wall_micros as f64
                } else {
                    0.0
                },
            },
            events_by_island: stats.island_events(),
        }
    }

    // ------------------------------------------------------------------
    // Dom0 background load
    // ------------------------------------------------------------------

    fn submit_background(&mut self) {
        let chunk = self.hog_chunk;
        let tag = self.alloc_tag(Ctx::Background);
        let dom0 = self.dom0;
        // Dom0's background load is event-driven (interrupt handlers,
        // backend processing): its wakes are event-channel wakes and
        // boost like any other I/O work.
        self.submit(dom0, Burst::system(chunk, tag), WakeMode::Boost);
    }
}
