//! The MPlayer streaming/decode path across the platform.
//!
//! A Darwin-server analogue paces RTP packets at the stream's (slightly
//! over-provisioned) frame rate. Packets flow through the IXP into the
//! guest; once a frame's worth of bytes has arrived the guest queues a
//! decode burst. Local-disk players skip the network entirely and decode
//! continuously ("fastest frame rate possible", as MPlayer's benchmark
//! mode does).

use crate::world::{horizon, Ctx, Ev, Platform};
use ixp::Packet;
use workloads::mplayer::{Source, MTU_BYTES};
use xsched::{Burst, WakeMode};

impl Platform {
    /// The streaming server emits one frame's packets for player `i`.
    pub(crate) fn frame_gen(&mut self, i: usize) {
        let now = self.now;
        let wire = self.costs.wire_latency;
        let overrate = self.overrate;
        let run_end = self.run_end;
        let Some(p) = self.players.get_mut(i) else { return };
        self.horizons.mark(horizon::QUEUE);
        let spec = p.player.spec();
        let vm = p.vm_index;
        let mut remaining = spec.bytes_per_frame();
        while remaining > 0 {
            let len = remaining.min(MTU_BYTES);
            remaining -= len;
            let id = p.next_pkt_id;
            p.next_pkt_id += 1;
            let pkt = spec.data_packet(id, vm, len);
            self.q.schedule(now + wire, Ev::WireArrive(pkt));
        }
        let interval = spec.frame_interval() * (1.0 / overrate);
        let next = now + interval;
        if next <= run_end {
            self.q.schedule(next, Ev::FrameGen(i));
        }
    }

    /// Stream data reached the guest: accumulate and queue decode work
    /// when a full frame is present.
    pub(crate) fn media_data_arrived(&mut self, vm: u32, pkt: Packet) {
        let Some(i) = self.players.iter().position(|p| p.vm_index == vm) else {
            self.consume_rx(vm, 1);
            return;
        };
        self.players[i].rx_accum_bytes += pkt.len_bytes as u64;
        let bpf = self.players[i].player.spec().bytes_per_frame() as u64;
        if self.players[i].rx_accum_bytes >= bpf {
            self.players[i].rx_accum_bytes -= bpf;
            self.submit_decode(i);
        }
    }

    /// Queues one frame-decode burst on the player's guest.
    pub(crate) fn submit_decode(&mut self, i: usize) {
        let Some(p) = self.players.get(i) else { return };
        let cost = p.player.spec().decode_cost();
        let vm = p.vm_index;
        let Some(dom) = self.dom_of_vm(vm) else { return };
        let tag = self.alloc_tag(Ctx::Decode { player: i });
        self.submit(dom, Burst::user(cost, tag), WakeMode::Boost);
    }

    /// A frame finished decoding.
    pub(crate) fn decode_done(&mut self, i: usize) {
        let Some(p) = self.players.get_mut(i) else { return };
        p.player.frame_decoded();
        let source = p.player.source();
        let ppf = p.player.spec().packets_per_frame();
        let vm = p.vm_index;
        match source {
            Source::Network => {
                // The frame's packets leave the guest receive window only
                // now — a CPU-starved decoder therefore backpressures all
                // the way to the IXP DRAM queue (Figure 7's mechanism).
                self.consume_rx(vm, ppf);
            }
            Source::LocalDisk => {
                // Benchmark mode: decode the next frame immediately.
                self.submit_decode(i);
            }
        }
    }

    /// Convenience for tests: total bytes currently waiting in the
    /// monitored IXP flow queue.
    pub(crate) fn monitored_buffer_bytes(&self) -> u64 {
        self.monitored_flow
            .map(|f| self.ixp.flow_queue_bytes(f))
            .unwrap_or(0)
    }

    /// Convenience for tests: instantaneous fps of a player over the run.
    pub(crate) fn player_fps(&self, i: usize) -> f64 {
        self.players
            .get(i)
            .map(|p| p.player.achieved_fps(self.now))
            .unwrap_or(0.0)
    }
}

// Quiet "never used" warnings for test-only helpers in non-test builds.
#[allow(dead_code)]
fn _test_helpers_used(p: &Platform) -> (u64, f64) {
    (p.monitored_buffer_bytes(), p.player_fps(0))
}

#[allow(unused_imports)]
use std::mem::drop as _;

#[cfg(test)]
mod tests {
    use simcore::Nanos;

    #[test]
    fn frame_interval_respects_overrate() {
        // 25 fps at overrate 1.25 → packets every 32 ms instead of 40 ms.
        let base = Nanos::from_millis(40);
        let scaled = base * (1.0 / 1.25);
        assert_eq!(scaled, Nanos::from_millis(32));
    }
}
