//! Structured records for the coordination-decision trace.
//!
//! The master loop's coordination paths (tune/trigger application,
//! retransmission, ack handling) used to build `format!` strings for
//! every traced decision; at IXP packet rates that is an allocation per
//! event on the hottest paths. A [`TraceEvent`] is a compact value
//! recorded into the platform's `TraceBuffer<TraceEvent>` by copy —
//! no heap traffic — and rendered through its [`Display`] impl only
//! when a report, test, or debugger reads the history.

use coord::{CoordMsg, EntityId, KnobAxis};
use std::fmt;
use xsched::DomId;

/// One coordination-path decision, recorded by value on the hot path.
///
/// Variants carry only plain data (`CoordMsg` is `Copy`), so recording
/// one never allocates; the human-readable form is produced lazily by
/// the `Display` impl and matches the strings the trace historically
/// stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// Degraded channel: a new message was suppressed rather than queued
    /// behind retransmissions that are demonstrably not being delivered.
    DegradedSuppressed {
        /// The coordination message that was dropped at the source.
        msg: CoordMsg,
    },
    /// A reliable-delivery retransmission left Dom0.
    Retransmit {
        /// Sequence number of the re-sent frame.
        seq: u32,
    },
    /// The retry cap was hit and message(s) were abandoned.
    GaveUp {
        /// How many messages were given up on at this deadline.
        count: u64,
    },
    /// The reliable sender entered degraded mode.
    EnteredDegraded,
    /// The receiver suppressed an already-processed duplicate frame.
    SuppressedDuplicate {
        /// Sequence number of the duplicate.
        seq: u32,
    },
    /// An ack arrived while degraded: the channel has recovered.
    DegradedOver {
        /// Sequence number whose ack ended degraded mode.
        seq: u32,
    },
    /// The accelerator island applied a Tune verb.
    AccelTune {
        /// Entity whose batch budget / queue weight moved.
        entity: EntityId,
        /// Signed adjustment applied.
        delta: i32,
    },
    /// The accelerator island applied a Trigger verb (batch preempt).
    AccelTrigger {
        /// Entity whose batch boundary was forced.
        entity: EntityId,
    },
    /// The x86 island applied a weight Tune to a domain.
    Tune {
        /// Domain whose weight moved.
        dom: DomId,
        /// Weight before the tune.
        from: u32,
        /// Weight after clamping.
        to: u32,
    },
    /// The x86 island applied a Trigger (runqueue boost + credit grant).
    Trigger {
        /// Domain that was boosted.
        dom: DomId,
    },
    /// The x86 island moved one axis of its energy-knob lattice.
    Knob {
        /// The axis that moved.
        axis: KnobAxis,
        /// The applied value in the axis's own unit (frequency percent,
        /// powered ways, or bandwidth-share percent).
        value: u32,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::DegradedSuppressed { msg } => {
                write!(f, "coord: degraded, suppressed {msg:?}")
            }
            TraceEvent::Retransmit { seq } => write!(f, "coord: retransmit seq {seq}"),
            TraceEvent::GaveUp { count } => {
                write!(f, "coord: gave up on {count} message(s)")
            }
            TraceEvent::EnteredDegraded => write!(f, "coord: entering degraded mode"),
            TraceEvent::SuppressedDuplicate { seq } => {
                write!(f, "coord: suppressed duplicate seq {seq}")
            }
            TraceEvent::DegradedOver { seq } => {
                write!(f, "coord: ack seq {seq}, degraded mode over")
            }
            TraceEvent::AccelTune { entity, delta } => {
                write!(f, "accel tune {entity:?}: delta {delta}")
            }
            TraceEvent::AccelTrigger { entity } => {
                write!(f, "accel trigger {entity:?}: batch preempt")
            }
            TraceEvent::Tune { dom, from, to } => {
                write!(f, "tune {dom}: weight {from} -> {to}")
            }
            TraceEvent::Trigger { dom } => {
                write!(f, "trigger {dom}: boost + credit grant")
            }
            TraceEvent::Knob { axis, value } => {
                write!(f, "energy knob {axis:?} -> {value}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_match_the_historical_trace_strings() {
        let dom = DomId(3);
        assert_eq!(
            TraceEvent::Tune { dom, from: 256, to: 260 }.to_string(),
            format!("tune {dom}: weight 256 -> 260"),
        );
        assert_eq!(
            TraceEvent::Trigger { dom }.to_string(),
            format!("trigger {dom}: boost + credit grant"),
        );
        assert_eq!(
            TraceEvent::Retransmit { seq: 9 }.to_string(),
            "coord: retransmit seq 9",
        );
        assert_eq!(
            TraceEvent::GaveUp { count: 2 }.to_string(),
            "coord: gave up on 2 message(s)",
        );
        assert_eq!(
            TraceEvent::EnteredDegraded.to_string(),
            "coord: entering degraded mode",
        );
        assert_eq!(
            TraceEvent::SuppressedDuplicate { seq: 4 }.to_string(),
            "coord: suppressed duplicate seq 4",
        );
        assert_eq!(
            TraceEvent::DegradedOver { seq: 4 }.to_string(),
            "coord: ack seq 4, degraded mode over",
        );
        let entity = EntityId(1);
        assert_eq!(
            TraceEvent::AccelTune { entity, delta: -2 }.to_string(),
            format!("accel tune {entity:?}: delta -2"),
        );
        assert_eq!(
            TraceEvent::AccelTrigger { entity }.to_string(),
            format!("accel trigger {entity:?}: batch preempt"),
        );
        let msg = CoordMsg::Ack { seq: 1 };
        assert_eq!(
            TraceEvent::DegradedSuppressed { msg }.to_string(),
            format!("coord: degraded, suppressed {msg:?}"),
        );
        assert_eq!(
            TraceEvent::Knob { axis: KnobAxis::Dvfs, value: 85 }.to_string(),
            "energy knob Dvfs -> 85",
        );
    }
}
