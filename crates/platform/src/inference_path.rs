//! The inference request lifecycle across the three-island platform.
//!
//! A request is born at an open-loop tenant client, crosses the wire into
//! the IXP (where DPI classification tells the coordination policy each
//! tenant's SLA class), is DMA'd to the host, delivered into the tenant's
//! serving VM, DMA'd onward into the accelerator's per-tenant submission
//! queue, batched and executed on an execution unit, post-processed on
//! the tenant VM's x86 CPU, and its response leaves through the IXP Tx
//! pipeline. Response time is measured client-to-client, so it inherits
//! both islands' queueing *and* the batch-forming delay the Tune knob
//! controls.

use crate::world::{horizon, Ctx, Ev, InfReqState, Platform};
use accel::{AccelRequest, TenantId};
use ixp::{AppTag, Packet};
use xsched::{Burst, WakeMode};

impl Platform {
    /// An open-loop tenant source emits its next request and immediately
    /// schedules the one after it (arrivals never self-throttle).
    pub(crate) fn inference_send(&mut self, tenant: u32) {
        let now = self.now;
        let wire = self.costs.wire_latency;
        let rto = self.costs.rto_initial;
        let run_end = self.run_end;
        let Some(inf) = self.inf.as_mut() else { return };
        let t = tenant as usize;
        let cost = inf.model.compute_cost(t);
        let vm = inf.tenant_vms[t];
        let pkt = inf.model.request_packet(t, vm);
        let req = pkt.id;
        inf.pkt_to_req.insert(pkt.id, req);
        inf.reqs.insert(
            req,
            InfReqState { tenant: t, start: now, attempt: 0, in_service: false, cost },
        );
        let gap = inf.model.next_gap(t);
        self.horizons.mark(horizon::QUEUE);
        self.q.schedule(now + wire, Ev::WireArrive(pkt));
        self.q.schedule(now + rto, Ev::Rto { req, attempt: 0 });
        let next = now + gap;
        if next <= run_end {
            self.q.schedule(next, Ev::ClientSend(tenant));
        }
    }

    /// A tenant client's retransmission timer fired: if the request is
    /// still outstanding, resend it with exponential backoff.
    pub(crate) fn inference_rto(&mut self, req: u64, attempt: u32) {
        let now = self.now;
        let wire = self.costs.wire_latency;
        let rto = self.costs.rto_initial;
        let Some(inf) = self.inf.as_mut() else { return };
        let Some(state) = inf.reqs.get_mut(&req) else { return };
        if state.attempt != attempt || state.in_service {
            return;
        }
        state.attempt += 1;
        let next_attempt = state.attempt;
        let t = state.tenant;
        let vm = inf.tenant_vms[t];
        let pkt = inf.model.request_packet(t, vm);
        inf.pkt_to_req.insert(pkt.id, req);
        self.horizons.mark(horizon::QUEUE);
        self.q.schedule(now + wire, Ev::WireArrive(pkt));
        let backoff = rto * (1u64 << next_attempt.min(4));
        self.q.schedule(now + backoff, Ev::Rto { req, attempt: next_attempt });
    }

    /// A classified inference request reached its tenant's serving VM:
    /// admit it into the runtime's submission queue (bounded by the same
    /// connector cap the RUBiS tiers use) and start the DMA into the
    /// accelerator.
    pub(crate) fn inference_request_arrived(&mut self, vm: u32, pkt: Packet) {
        let AppTag::Inference { .. } = pkt.app else { return };
        let dma = self.accel_dma;
        let now = self.now;
        let Some(slot) = self.slot_by_vm(vm) else {
            self.consume_rx(vm, 1);
            return;
        };
        let over_cap = self.vms[slot].pending >= self.costs.tier_q_cap;
        let Some(inf) = self.inf.as_mut() else {
            self.consume_rx(vm, 1);
            return;
        };
        let Some(req) = inf.pkt_to_req.remove(&pkt.id) else {
            // Stale duplicate of an already-answered request.
            self.consume_rx(vm, 1);
            return;
        };
        let Some(state) = inf.reqs.get_mut(&req) else {
            self.consume_rx(vm, 1);
            return;
        };
        if state.in_service {
            // Original and retransmission both survived; discard the copy.
            self.consume_rx(vm, 1);
            return;
        }
        if over_cap {
            // Runtime submission queue overflow: the client retransmits.
            self.guest_drops += 1;
            self.consume_rx(vm, 1);
            return;
        }
        state.in_service = true;
        self.vms[slot].pending += 1;
        self.consume_rx(vm, 1);
        self.horizons.mark(horizon::QUEUE);
        self.q.schedule(now + dma, Ev::AccelDma { req });
    }

    /// The DMA into the accelerator finished: submit to the tenant's
    /// device-side queue. A synchronous rejection (device memory
    /// exhausted) drops the request back to the client's RTO.
    pub(crate) fn accel_dma_done(&mut self, req: u64) {
        let now = self.now;
        let Some(inf) = self.inf.as_mut() else { return };
        let Some(state) = inf.reqs.get_mut(&req) else { return };
        let t = state.tenant;
        let cost = state.cost;
        let tenant = inf.accel_tenants[t];
        let bytes = inf.model.model_of(t).input_bytes as u64;
        let vm = inf.tenant_vms[t];
        self.horizons.mark(horizon::ACCEL);
        let Some(acc) = self.accel.as_mut() else { return };
        let accepted = acc.submit(now, AccelRequest { id: req, tenant, cost, bytes });
        if !accepted {
            if let Some(inf) = self.inf.as_mut() {
                if let Some(state) = inf.reqs.get_mut(&req) {
                    state.in_service = false; // the RTO will resend
                }
            }
            if let Some(slot) = self.slot_by_vm(vm) {
                self.vms[slot].pending = self.vms[slot].pending.saturating_sub(1);
            }
            self.guest_drops += 1;
        }
    }

    /// The accelerator completed a request: record its batch-forming
    /// delay and start the x86 post-processing burst on the tenant VM.
    pub(crate) fn inference_completed(
        &mut self,
        req: u64,
        tenant: TenantId,
        _batch_size: u32,
        queued: simcore::Nanos,
    ) {
        let Some(inf) = self.inf.as_mut() else { return };
        let Some(idx) = inf.accel_tenants.iter().position(|t| *t == tenant) else {
            return;
        };
        let name = inf.model.config().tenants[idx].name;
        inf.queue_delays.record(name, queued);
        if !inf.reqs.contains_key(&req) {
            return;
        }
        let post = inf.model.post_cost(idx);
        let vm = inf.tenant_vms[idx];
        let Some(dom) = self.dom_of_vm(vm) else { return };
        let tag = self.alloc_tag(Ctx::InfPost { req });
        self.submit(dom, Burst::user(post, tag), WakeMode::Boost);
    }

    /// Post-processing finished: the request leaves the guest (freeing
    /// its submission-queue slot) and Dom0 bridges the response out.
    pub(crate) fn inference_post_done(&mut self, req: u64) {
        let Some(inf) = self.inf.as_ref() else { return };
        let Some(state) = inf.reqs.get(&req) else { return };
        let vm = inf.tenant_vms[state.tenant];
        if let Some(slot) = self.slot_by_vm(vm) {
            self.vms[slot].pending = self.vms[slot].pending.saturating_sub(1);
        }
        let cost = self.costs.resp_bridge;
        let tag = self.alloc_tag(Ctx::InfRespOut { req });
        let dom0 = self.dom0;
        self.submit(dom0, Burst::system(cost, tag), WakeMode::Boost);
    }

    /// Dom0's response bridge finished: hand the response packet to the
    /// IXP Tx pipeline.
    pub(crate) fn inference_resp_out(&mut self, req: u64) {
        let Some(inf) = self.inf.as_mut() else { return };
        let Some(state) = inf.reqs.get(&req) else { return };
        let t = state.tenant;
        let resp = inf.model.response_packet(t, u32::MAX);
        inf.resp_map.insert(resp.id, req);
        let now = self.now;
        self.horizons.mark(horizon::IXP);
        let evs = self.ixp.tx_from_host(now, resp);
        self.absorb_ixp(evs);
    }

    /// A packet left on the wire: if it is an inference response,
    /// complete the request at the client.
    pub(crate) fn inference_wire_tx(&mut self, pkt: Packet) {
        let now = self.now;
        let wire = self.costs.wire_latency;
        let Some(inf) = self.inf.as_mut() else { return };
        let Some(req) = inf.resp_map.remove(&pkt.id) else { return };
        let Some(state) = inf.reqs.remove(&req) else { return };
        let t_client = now + wire;
        let latency = t_client.saturating_sub(state.start);
        let name = inf.model.config().tenants[state.tenant].name;
        self.responses.record(name, latency);
        if let Some(e) = self.energy.as_mut() {
            e.window.record(name, latency);
        }
        self.sessions.request_completed();
    }
}
