//! Conservative barrier-epoch PDES across the platform's scheduling
//! islands.
//!
//! # Partition
//!
//! The nine event sources of [`crate::world::SOURCES`] split into three
//! islands, mirroring the paper's hardware:
//!
//! | island  | sources                                                    |
//! |---------|------------------------------------------------------------|
//! | `x86`   | master queue, credit scheduler, PCIe link (host endpoint), |
//! |         | coordination + ack mailboxes (Dom0/controller endpoints),  |
//! |         | reliable retransmission timers                             |
//! | `ixp`   | the network-processor stage pipeline                       |
//! | `accel` | the batching accelerator and its doorbell lane             |
//!
//! Each island owns a slice of the horizon cache — its components' cached
//! next-event times — and the channels between islands (PCIe mailbox
//! lanes, the link's DMA engine, the accelerator's submission DMA, the
//! wire) all impose a minimum latency on anything crossing.
//!
//! # Epoch = minimum cross-island channel latency
//!
//! That minimum is the classical conservative-synchronization lookahead:
//! between two barriers one epoch apart, nothing an island does can
//! *reach* another island through a channel, so each island's horizon
//! slice can be serviced concurrently. [`Platform::lookahead_plan`]
//! derives the epoch from the live lane configs (mailbox latencies, DMA
//! base latency, submission-DMA latency, wire latency), clamped to at
//! least one nanosecond.
//!
//! # Why dispatch order stays global
//!
//! The committed artifacts are byte-identity invariants, and this model
//! couples islands at *zero* latency in three host-mediated places that
//! bypass the latency-bearing channels:
//!
//! * guest delivery acknowledges IXP flow credit at the delivery
//!   timestamp (`ixp.host_ack` from `deliver_to_guest`/`consume_rx`);
//! * accelerator completions are absorbed into x86 post-processing at
//!   the completion timestamp;
//! * IXP classification drives the coordination policy — and the shared
//!   reliable-sender sequence space — at the classification timestamp.
//!
//! True island run-ahead would have to defer those edges by a channel
//! latency, which changes timing and therefore every committed CSV. So
//! the engine keeps the *dispatch* sequence in global `(time, source
//! index)` order — byte-identity holds by construction, which is exactly
//! the gate — and uses the epoch structure for what it can soundly
//! parallelize today: servicing the per-island horizon slices on scoped
//! worker threads at barriers, plus the barrier-cadence invariant sweep
//! in debug builds. The partition, the epoch derivation, and the barrier
//! bookkeeping are all exercised and reported (`events_by_island`), so a
//! future PR that re-baselines artifacts can widen the parallel region
//! without re-deriving the structure.

use crate::report::IslandEvents;
use crate::world::Platform;
use simcore::{Component, Nanos};

/// Island index of the x86 host (queue, sched, link, mailboxes, retx).
pub(crate) const X86_ISLAND: usize = 0;
/// Island index of the IXP network processor.
pub(crate) const IXP_ISLAND: usize = 1;
/// Island index of the batching accelerator (+ doorbell lane).
pub(crate) const ACCEL_ISLAND: usize = 2;
/// Number of scheduling islands.
pub(crate) const N_ISLANDS: usize = 3;

/// Epoch barriers between two threaded island-horizon services. Barrier
/// *accounting* happens at every epoch crossing (cheap: a counter and,
/// in debug builds, the invariant sweep), but spawning scoped workers is
/// tens of microseconds of wall clock — with the default 2 µs epoch
/// nearly every dispatch crosses a barrier, so a small stride would cost
/// more than the dispatch loop itself. The service is a deterministic
/// coherence self-heal, not a correctness requirement, so a sparse
/// stride loses nothing.
pub(crate) const SERVICE_INTERVAL: u64 = 4096;

/// The conservative lookahead derivation: every latency-bearing
/// cross-island channel's bound, and their minimum (the epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookaheadPlan {
    /// One-way latency of the IXP→Dom0 coordination mailbox.
    pub coord_mbx: Nanos,
    /// One-way latency of the Dom0→IXP ack mailbox.
    pub ack_mbx: Nanos,
    /// One-way latency of the accelerator's doorbell lane.
    pub accel_mbx: Nanos,
    /// Per-transfer base latency of the PCIe link's DMA engine.
    pub link_dma: Nanos,
    /// Host→accelerator submission DMA latency.
    pub accel_dma: Nanos,
    /// Wire latency between clients and the IXP's receive port.
    pub wire: Nanos,
    /// The conservative epoch: the minimum of every bound above,
    /// clamped to at least 1 ns.
    pub epoch: Nanos,
}

/// Per-run PDES bookkeeping accumulated by the master loop.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PdesStats {
    /// Total events dispatched.
    pub events: u64,
    /// Events dispatched per island (indexed by the island consts).
    pub by_island: [u64; N_ISLANDS],
    /// Epoch barriers crossed.
    pub sync_points: u64,
    /// The conservative epoch the run used.
    pub epoch: Nanos,
    /// Island worker threads the run used.
    pub threads: usize,
}

impl PdesStats {
    pub(crate) fn new(epoch: Nanos, threads: usize) -> Self {
        PdesStats {
            events: 0,
            by_island: [0; N_ISLANDS],
            sync_points: 0,
            epoch,
            threads,
        }
    }

    /// The report block (deterministic: identical for any thread count).
    pub(crate) fn island_events(&self) -> IslandEvents {
        IslandEvents {
            x86: self.by_island[X86_ISLAND],
            ixp: self.by_island[IXP_ISLAND],
            accel: self.by_island[ACCEL_ISLAND],
            sync_points: self.sync_points,
            island_threads: self.threads as u64,
            epoch_ns: self.epoch.as_nanos(),
        }
    }
}

/// First multiple of `epoch` strictly after `t`. The loop re-aligns on
/// every crossing, so consecutive barriers are one epoch apart under
/// load and idle stretches are skipped in one step.
pub(crate) fn next_boundary(t: Nanos, epoch: Nanos) -> Nanos {
    let e = epoch.as_nanos().max(1);
    let n = t.as_nanos() / e + 1;
    Nanos::from_nanos(n.saturating_mul(e))
}

impl Platform {
    /// Derives the conservative PDES lookahead from the live channel
    /// configurations. Deterministic and stable across a run: every
    /// latency that feeds it is fixed at build time (the chaos jitter
    /// hook restores the mailbox latency after each per-message
    /// override, and the epoch is not re-derived mid-run).
    pub fn lookahead_plan(&self) -> LookaheadPlan {
        let coord_mbx = self.mbx.latency();
        let ack_mbx = self.ack_mbx.latency();
        let accel_mbx = self.accel_mbx.latency();
        let link_dma = self.link.lookahead();
        let accel_dma = self.accel_dma;
        let wire = self.costs.wire_latency;
        let epoch = coord_mbx
            .min(ack_mbx)
            .min(accel_mbx)
            .min(link_dma)
            .min(accel_dma)
            .min(wire)
            .max(Nanos::from_nanos(1));
        LookaheadPlan { coord_mbx, ack_mbx, accel_mbx, link_dma, accel_dma, wire, epoch }
    }

    /// Services every island's horizon slice concurrently on scoped
    /// worker threads: one worker re-peeks the IXP island, one the
    /// accelerator island (with `threads == 2` the coordinating thread
    /// absorbs it), while the coordinating thread services the x86
    /// slice. Peeks are `&self` reads through each component's
    /// [`Component`] face, and by the cache invariant every value
    /// written back equals the cached one — so this is observably a
    /// no-op in a correct build, deterministic in any build, and a
    /// self-heal for a missed dirty mark in release builds.
    pub(crate) fn service_islands_parallel(&mut self, threads: usize) {
        let Platform {
            q,
            sched,
            ixp,
            link,
            mbx,
            ack_mbx,
            rel_tx,
            accel,
            accel_mbx,
            horizons,
            ..
        } = self;
        let ixp_ref: &ixp::IxpIsland = ixp;
        let accel_ref: Option<&accel::AccelIsland> = accel.as_ref();
        let accel_mbx_ref: &pcie::Mailbox<Vec<u8>> = accel_mbx;
        let accel_slice = || {
            [
                accel_ref
                    .and_then(Component::next_event_time)
                    .unwrap_or(Nanos::MAX),
                Component::next_event_time(accel_mbx_ref).unwrap_or(Nanos::MAX),
            ]
        };
        let (ixp_h, accel_h, x86_h) = std::thread::scope(|s| {
            let ixp_worker =
                s.spawn(move || Component::next_event_time(ixp_ref).unwrap_or(Nanos::MAX));
            let accel_worker = (threads > 2).then(|| s.spawn(accel_slice));
            let x86_h = [
                Component::next_event_time(&*q).unwrap_or(Nanos::MAX),
                Component::next_event_time(&*sched).unwrap_or(Nanos::MAX),
                Component::next_event_time(&*link).unwrap_or(Nanos::MAX),
                Component::next_event_time(&*mbx).unwrap_or(Nanos::MAX),
                Component::next_event_time(&*ack_mbx).unwrap_or(Nanos::MAX),
                rel_tx
                    .as_ref()
                    .and_then(Component::next_event_time)
                    .unwrap_or(Nanos::MAX),
            ];
            let ixp_h = ixp_worker.join().expect("ixp island worker");
            let accel_h = match accel_worker {
                Some(w) => w.join().expect("accel island worker"),
                None => accel_slice(),
            };
            (ixp_h, accel_h, x86_h)
        });
        // Write-back in global source order (x86 slice interleaves with
        // the others by construction of the bit assignments).
        horizons.set(0, x86_h[0]);
        horizons.set(1, x86_h[1]);
        horizons.set(2, ixp_h);
        horizons.set(3, x86_h[2]);
        horizons.set(4, x86_h[3]);
        horizons.set(5, x86_h[4]);
        horizons.set(6, x86_h[5]);
        horizons.set(7, accel_h[0]);
        horizons.set(8, accel_h[1]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PlatformBuilder, RubisScenario};

    #[test]
    fn next_boundary_is_strictly_ahead_and_aligned() {
        let e = Nanos::from_micros(30);
        assert_eq!(next_boundary(Nanos::ZERO, e), e);
        assert_eq!(next_boundary(Nanos::from_nanos(1), e), e);
        assert_eq!(next_boundary(e, e), e * 2);
        // Idle coalescing: a far-future t lands on the next multiple.
        let t = Nanos::from_secs(3) + Nanos::from_nanos(7);
        let b = next_boundary(t, e);
        assert!(b > t);
        assert_eq!(b.as_nanos() % e.as_nanos(), 0);
        assert!(b - t <= e);
    }

    #[test]
    fn epoch_is_the_minimum_channel_bound() {
        let sim = PlatformBuilder::new()
            .coord_latency(Nanos::from_micros(30))
            .build_rubis(RubisScenario::read_write_mix(4));
        let plan = sim.lookahead_plan();
        let min = plan
            .coord_mbx
            .min(plan.ack_mbx)
            .min(plan.accel_mbx)
            .min(plan.link_dma)
            .min(plan.accel_dma)
            .min(plan.wire);
        assert_eq!(plan.epoch, min);
        assert!(plan.epoch > Nanos::ZERO);
        // The default platform's tightest bound is the PCIe DMA base.
        assert_eq!(plan.epoch, plan.link_dma);
    }

    #[test]
    fn service_islands_matches_the_serial_refresh() {
        for threads in [2, 3, 8] {
            let mut sim = PlatformBuilder::new()
                .seed(11)
                .build_rubis(RubisScenario::read_write_mix(4));
            // Populate real horizons by running a little first.
            sim.run(Nanos::from_millis(50));
            let serial: Vec<Nanos> =
                (0..crate::world::horizon::NSRC).map(|i| sim.fresh_horizon(i)).collect();
            sim.service_islands_parallel(threads);
            for (i, &want) in serial.iter().enumerate() {
                assert_eq!(sim.horizons.get(i), want, "slot {i}, threads {threads}");
            }
        }
    }
}
