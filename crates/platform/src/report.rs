//! Results of a platform run.

use metrics::ResponseStats;
use simcore::stats::Series;
use simcore::Nanos;

/// RUBiS application-level results (empty/zero for MPlayer runs).
#[derive(Debug, Clone, Default)]
pub struct RubisReport {
    /// Per-request-type response-time summaries (milliseconds).
    pub responses: ResponseStats,
    /// Completed requests.
    pub completed: u64,
    /// Requests per second over the run.
    pub throughput: f64,
    /// User sessions completed.
    pub sessions: u64,
    /// Mean completed-session duration in seconds.
    pub avg_session_secs: f64,
}

/// One MPlayer instance's results.
#[derive(Debug, Clone)]
pub struct PlayerReport {
    /// Domain name ("dom1", ...).
    pub name: String,
    /// The stream's nominal frame rate.
    pub target_fps: u32,
    /// Achieved decoded frames/sec over the run.
    pub achieved_fps: f64,
    /// Total frames decoded.
    pub frames: u64,
}

/// One inference tenant's accelerator-side accounting.
#[derive(Debug, Clone, Default)]
pub struct AccelTenantReport {
    /// Tenant name ("chat", "rank", ...).
    pub name: String,
    /// `true` when the tenant's model carries an interactive latency SLA.
    pub latency_sensitive: bool,
    /// Requests accepted into the tenant's submission queue.
    pub submitted: u64,
    /// Requests completed by the accelerator.
    pub completed: u64,
    /// Requests rejected synchronously (device-memory exhaustion).
    pub rejected: u64,
    /// Batches launched for the tenant.
    pub batches: u64,
    /// Mean items per launched batch.
    pub mean_batch: f64,
    /// p99 batch-forming queue delay in milliseconds.
    pub queue_p99_ms: f64,
    /// Batches launched early by a coordination Trigger.
    pub preemptions: u64,
    /// Queue-occupancy alarms raised for the tenant.
    pub alarms: u64,
}

/// Accelerator-island results (empty for the default two-island builds).
#[derive(Debug, Clone, Default)]
pub struct AccelReport {
    /// Per-tenant accounting, in tenant order.
    pub tenants: Vec<AccelTenantReport>,
    /// Peak device-memory occupancy in bytes.
    pub hbm_high_water: u64,
    /// Submissions rejected for want of device memory.
    pub hbm_rejects: u64,
}

impl AccelReport {
    /// The tenant report for a name, if any.
    pub fn tenant(&self, name: &str) -> Option<&AccelTenantReport> {
        self.tenants.iter().find(|t| t.name == name)
    }
}

/// Per-domain CPU accounting over the whole run.
#[derive(Debug, Clone)]
pub struct DomCpu {
    /// Domain name.
    pub name: String,
    /// CPU consumption as a percentage of one pCPU.
    pub percent: f64,
    /// User-mode share of `percent`.
    pub user: f64,
    /// System-mode share of `percent`.
    pub system: f64,
    /// Runnable-wait ("steal") percentage.
    pub steal: f64,
}

/// Coordination-channel accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoordReport {
    /// Messages put on the channel by the IXP-side policy.
    pub messages_sent: u64,
    /// Encoded bytes put on the channel.
    pub bytes_sent: u64,
    /// Tune actions applied on a remote island.
    pub tunes_applied: u64,
    /// Trigger actions applied on a remote island.
    pub triggers_applied: u64,
    /// Messages the controller rejected.
    pub rejected: u64,
    /// Messages the controller's defenses refused outright (rate-limit
    /// exhausted); zero unless defenses are enabled.
    pub throttled: u64,
    /// Tune messages the defenses admitted at a reputation-reduced delta;
    /// zero unless defenses are enabled.
    pub discounted: u64,
    /// Message copies dropped in the channel by fault injection (both
    /// directions, acks included).
    pub channel_drops: u64,
    /// Duplicate copies injected by the channel (both directions).
    pub channel_dups: u64,
    /// Retransmissions performed by the reliable-delivery layer.
    pub retransmits: u64,
    /// Messages acknowledged end-to-end.
    pub acked: u64,
    /// Messages the sender abandoned after exhausting its retry cap.
    pub gave_up: u64,
    /// Duplicate deliveries suppressed by the receiver.
    pub dup_suppressed: u64,
    /// Times the sender entered degraded mode.
    pub degraded_entries: u64,
    /// Total simulated seconds spent in degraded mode.
    pub degraded_secs: f64,
    /// Policy messages suppressed because the sender was degraded.
    pub degraded_suppressed: u64,
}

/// Network-path loss/drop accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetReport {
    /// Packets dropped on IXP DRAM queue overflow.
    pub ixp_drops: u64,
    /// Descriptors dropped because the host ring was full.
    pub link_drops: u64,
    /// Packets with no registered flow.
    pub unroutable: u64,
    /// Packets delivered into guests.
    pub delivered: u64,
    /// Packets dropped at the guest receive queue (netfront overflow).
    pub guest_drops: u64,
}

/// Power accounting (populated when a power cap is configured; the
/// modelled draw is reported for every run).
#[derive(Debug, Clone, Default)]
pub struct PowerReport {
    /// Configured cap in watts, if any.
    pub cap_watts: Option<f64>,
    /// Mean modelled platform power over the run.
    pub mean_watts: f64,
    /// Peak modelled platform power.
    pub max_watts: f64,
    /// Cap adjustments the governor issued.
    pub cap_actions: u64,
    /// Modelled watts sampled once per second.
    pub series: Series,
}

/// QoS-constrained energy accounting (populated when the platform is
/// built with [`PlatformBuilder::energy`](crate::PlatformBuilder::energy);
/// all-zero otherwise).
#[derive(Debug, Clone, Default)]
pub struct EnergyReport {
    /// `true` when the energy dimension was modelled for this run.
    pub enabled: bool,
    /// The controller's per-tenant p99 target in milliseconds.
    pub p99_target_ms: f64,
    /// Modelled x86-island energy (package + uncore) in joules.
    pub cpu_joules: f64,
    /// Modelled IXP-island energy in joules.
    pub ixp_joules: f64,
    /// Operating-point residency: `(dvfs frequency percent, samples
    /// spent at that rung)`, full-performance rung first.
    pub residency: Vec<(u32, u64)>,
    /// Samples on which the worst per-tenant p99 exceeded the target.
    pub violations: u64,
    /// Controller back-offs (knob re-raised after a violation).
    pub backoffs: u64,
    /// Controller descents (knob lowered under QoS headroom).
    pub descents: u64,
    /// Times the oscillation detector froze the controller.
    pub freezes: u64,
    /// SetKnob actions applied on the x86 island.
    pub knob_actions: u64,
    /// Final DVFS operating point as a frequency percent.
    pub final_dvfs_percent: u32,
    /// Final DB cache-partition way count.
    pub final_ways: u32,
    /// Final memory-bandwidth share percent.
    pub final_membw_percent: u32,
}

impl EnergyReport {
    /// Total modelled platform energy over the run in joules.
    pub fn total_joules(&self) -> f64 {
        self.cpu_joules + self.ixp_joules
    }
}

/// Per-island master-loop accounting: how many dispatched events each
/// scheduling island absorbed, plus the PDES epoch-barrier bookkeeping.
///
/// Unlike [`SimRate`] these counts are fully deterministic — they depend
/// only on the seed and configuration, and are identical between
/// `--island-threads 1` and `--island-threads N` runs (the determinism
/// suite asserts this).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IslandEvents {
    /// Events dispatched to the x86 host island (master queue, credit
    /// scheduler, PCIe link, coordination + ack mailboxes, reliable
    /// retransmission timers).
    pub x86: u64,
    /// Events dispatched to the IXP network-processor island.
    pub ixp: u64,
    /// Events dispatched to the accelerator island (batch engine and its
    /// doorbell lane); 0 on two-island platforms.
    pub accel: u64,
    /// Conservative epoch barriers the run crossed (counted in serial
    /// mode too, so serial and parallel runs are comparable).
    pub sync_points: u64,
    /// Island worker threads the run used (1 = serial master loop).
    pub island_threads: u64,
    /// The conservative epoch — the minimum cross-island channel
    /// lookahead — in nanoseconds.
    pub epoch_ns: u64,
}

impl IslandEvents {
    /// Folds another run's per-island counts into this one (fleet report
    /// aggregation: shard counts sum; `island_threads` and `epoch_ns` are
    /// configuration, so the fold keeps the maximum it has seen).
    pub fn accumulate(&mut self, other: &IslandEvents) {
        self.x86 += other.x86;
        self.ixp += other.ixp;
        self.accel += other.accel;
        self.sync_points += other.sync_points;
        self.island_threads = self.island_threads.max(other.island_threads);
        self.epoch_ns = self.epoch_ns.max(other.epoch_ns);
    }
}

/// Simulator throughput over one run (wall-clock instrumentation).
///
/// These fields describe the *simulator*, not the simulated system: they
/// vary run to run with host load and are deliberately excluded from the
/// deterministic experiment tables.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimRate {
    /// Master-loop events dispatched.
    pub events: u64,
    /// Wall-clock time spent inside [`Platform::run`](crate::Platform::run)
    /// in microseconds.
    pub wall_micros: u64,
    /// Dispatch rate in events per wall-clock second.
    pub events_per_sec: f64,
}

/// Everything measured over one [`Platform::run`](crate::Platform::run).
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Simulated run length.
    pub duration: Nanos,
    /// Active coordination policy name.
    pub policy: String,
    /// RUBiS results (zeroed for MPlayer scenarios).
    pub rubis: RubisReport,
    /// MPlayer results (empty for RUBiS scenarios).
    pub players: Vec<PlayerReport>,
    /// Whole-run CPU accounting per domain (Dom0 first).
    pub cpu: Vec<DomCpu>,
    /// Sum of per-domain CPU percentages.
    pub total_cpu_percent: f64,
    /// The paper's platform-efficiency metric (RUBiS only; 0 otherwise).
    pub efficiency: f64,
    /// Coordination accounting.
    pub coord: CoordReport,
    /// Network accounting.
    pub net: NetReport,
    /// Per-domain CPU% time series (sampled each second).
    pub cpu_series: Vec<(String, Series)>,
    /// Monitored IXP buffer occupancy series in bytes.
    pub buffer_series: Series,
    /// Accelerator-island results (empty unless the platform was built
    /// with [`build_inference`](crate::PlatformBuilder::build_inference)).
    pub accel: AccelReport,
    /// Modelled platform power.
    pub power: PowerReport,
    /// QoS-constrained energy accounting (zeroed unless the platform was
    /// built with [`PlatformBuilder::energy`](crate::PlatformBuilder::energy)).
    pub energy: EnergyReport,
    /// Simulator throughput (events dispatched, wall time, events/sec).
    pub sim_rate: SimRate,
    /// Deterministic per-island event counts and PDES barrier accounting.
    pub events_by_island: IslandEvents,
}

impl RunReport {
    /// CPU percentage of a domain by name (0 if absent).
    pub fn cpu_percent(&self, name: &str) -> f64 {
        self.cpu
            .iter()
            .find(|d| d.name == name)
            .map(|d| d.percent)
            .unwrap_or(0.0)
    }

    /// The player report for a domain name, if any.
    pub fn player(&self, name: &str) -> Option<&PlayerReport> {
        self.players.iter().find(|p| p.name == name)
    }
}
