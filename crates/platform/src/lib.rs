//! # platform — the assembled x86-IXP two-island prototype
//!
//! This crate wires every substrate into the paper's experimental
//! platform (Figure 3): a [`xsched::CreditScheduler`] x86 island hosting
//! Dom0 and the guest VMs, an [`ixp::IxpIsland`] network-processor island
//! fronting all network traffic, a [`pcie::HostLink`] moving packets
//! between them, a [`pcie::Mailbox`] carrying wire-encoded coordination
//! messages, and a [`coord::Controller`] in the Dom0 role applying Tune
//! and Trigger actions through each island's own knobs.
//!
//! ## End-to-end receive path
//!
//! ```text
//! client ─wire─► IXP Rx ─► classifier (DPI → policy → coordination msgs)
//!        ─► per-VM flow queue ─► PCIe DMA ─► host ring ─► interrupt
//!        ─► Dom0 driver burst ─► guest rx window ─► guest CPU bursts
//! ```
//!
//! Every hop that costs host CPU is a real burst on the credit scheduler,
//! so host-side latency — including the latency of *applying* coordination
//! — inherits Dom0's scheduling fortunes, exactly the coupling the paper's
//! uncoordinated baseline suffers from.
//!
//! ## Example
//!
//! ```
//! use platform::{PlatformBuilder, RubisScenario};
//! use coord::PolicyKind;
//! use simcore::Nanos;
//!
//! let mut sim = PlatformBuilder::new()
//!     .seed(7)
//!     .policy(PolicyKind::RequestType)
//!     .build_rubis(RubisScenario::read_write_mix(8));
//! let report = sim.run(Nanos::from_secs(5));
//! assert!(report.rubis.completed > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod inference_path;
mod media;
mod pdes;
mod report;
mod rubis_path;
mod trace_event;
mod world;

pub use config::{
    EnergyConfig, InferenceScenario, MplayerScenario, PlatformBuilder, PlayerSpec, RubisScenario,
};
pub use pdes::LookaheadPlan;
pub use report::{
    AccelReport, AccelTenantReport, CoordReport, DomCpu, EnergyReport, IslandEvents, NetReport,
    PlayerReport, PowerReport, RubisReport, RunReport, SimRate,
};
pub use trace_event::TraceEvent;
pub use world::Platform;

// Re-export the types callers need to configure scenarios without extra
// imports.
pub use accel::AccelConfig;
pub use coord::{PolicerConfig, PolicyKind, ReliableConfig};
pub use simtest::chaos::{ChaosPlan, Perturbation};
pub use workloads::adversary::{AdversarySpec, Strategy as AdversaryStrategy};
pub use workloads::inference::{InferenceConfig, TenantSpec};
pub use pcie::{FaultProfile, Jitter};
pub use power::Strategy as PowerStrategy;
pub use workloads::mplayer::{Source, StreamSpec};
pub use workloads::rubis::Mix;
