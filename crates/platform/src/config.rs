//! Scenario configuration and the platform builder.

use crate::world::Platform;
use accel::AccelConfig;
use coord::{PolicerConfig, PolicyKind, ReliableConfig};
use ixp::IxpConfig;
use pcie::{FaultProfile, LinkConfig, NotifyMode};
use power::Strategy;
use simcore::Nanos;
use simtest::chaos::ChaosPlan;
use workloads::adversary::AdversarySpec;
use workloads::inference::{InferenceConfig, TenantSpec};
use workloads::mplayer::{Source, StreamSpec};
use workloads::rubis::{Mix, RubisConfig};

/// Host-side CPU costs of the data and control paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct HostCosts {
    /// Dom0 messaging-driver service routine base cost per notification.
    pub driver_base: Nanos,
    /// Additional driver cost per drained descriptor.
    pub driver_per_desc: Nanos,
    /// Dom0 bridge cost per inter-VM hop.
    pub bridge: Nanos,
    /// Dom0 cost to emit a response toward the IXP.
    pub resp_bridge: Nanos,
    /// Dom0 cost to apply one coordination Tune.
    pub coord_apply: Nanos,
    /// One-way wire latency between external client and the IXP.
    pub wire_latency: Nanos,
    /// Per-guest receive window (packets in flight into the guest).
    pub guest_rx_cap: u32,
    /// Dom0-side per-guest hold queue bound; packets beyond it are
    /// dropped (netfront/accept-queue overflow), recovered by client
    /// retransmission.
    pub guest_hold_cap: u32,
    /// Client initial retransmission timeout (doubles per attempt).
    pub rto_initial: Nanos,
    /// Per-tier admission bound: requests a tier may have queued or in
    /// service before its connector backlog overflows and the request is
    /// dropped (Tomcat/MySQL accept-queue analogue).
    pub tier_q_cap: u32,
}

impl Default for HostCosts {
    fn default() -> Self {
        HostCosts {
            driver_base: Nanos::from_micros(120),
            driver_per_desc: Nanos::from_micros(25),
            bridge: Nanos::from_micros(350),
            resp_bridge: Nanos::from_micros(350),
            coord_apply: Nanos::from_micros(30),
            wire_latency: Nanos::from_micros(100),
            guest_rx_cap: 64,
            guest_hold_cap: 64,
            rto_initial: Nanos::from_millis(500),
            tier_q_cap: 10,
        }
    }
}

/// A RUBiS experiment scenario (§3.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RubisScenario {
    /// Concurrent closed-loop clients.
    pub clients: u32,
    /// Request mix.
    pub mix: Mix,
    /// Mean think time between requests of a session.
    pub think_mean: Nanos,
    /// Requests per session.
    pub session_len: u32,
    /// Guest receive queue depth (requests a tier can have pending
    /// before overflow drops begin).
    pub rx_window: u32,
    /// Service-demand multiplier applied to the request catalogue.
    pub demand_scale: f64,
}

impl RubisScenario {
    /// The paper's bid/browse/sell (read-write) workload.
    pub fn read_write_mix(clients: u32) -> Self {
        RubisScenario {
            clients,
            mix: Mix::ReadWrite,
            think_mean: Nanos::from_millis(250),
            session_len: 12,
            rx_window: 8,
            demand_scale: 2.5,
        }
    }

    /// The paper's browsing (read-only) workload.
    pub fn browsing_mix(clients: u32) -> Self {
        RubisScenario {
            mix: Mix::Browsing,
            ..Self::read_write_mix(clients)
        }
    }

    pub(crate) fn rubis_config(&self) -> RubisConfig {
        RubisConfig {
            clients: self.clients,
            mix: self.mix,
            think_mean: self.think_mean,
            session_len: self.session_len,
            demand_scale: self.demand_scale,
            ..RubisConfig::default()
        }
    }
}

/// One MPlayer guest in a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct PlayerSpec {
    /// Stream characteristics.
    pub stream: StreamSpec,
    /// Network (through the IXP) or local-disk playback.
    pub source: Source,
    /// Initial Xen weight of the guest.
    pub weight: u32,
}

impl PlayerSpec {
    /// A network-streamed player with the default weight 256.
    pub fn network(stream: StreamSpec) -> Self {
        PlayerSpec {
            stream,
            source: Source::Network,
            weight: 256,
        }
    }

    /// A local-disk player with the default weight 256.
    pub fn local(stream: StreamSpec) -> Self {
        PlayerSpec {
            stream,
            source: Source::LocalDisk,
            weight: 256,
        }
    }

    /// Overrides the initial weight.
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }
}

/// An MPlayer experiment scenario (§3.2).
#[derive(Debug, Clone, PartialEq)]
pub struct MplayerScenario {
    /// The guests and their streams.
    pub players: Vec<PlayerSpec>,
    /// Dom0 elastic background demand as a fraction of one CPU (the
    /// relaying/housekeeping load that makes weights matter; 1.0 = a full
    /// core's worth whenever it can get it).
    pub dom0_hog: f64,
    /// Number of Dom0 VCPUs (1 concentrates Dom0's credit inflow on a
    /// single competing stream, as when its load is one busy backend).
    pub dom0_vcpus: u32,
    /// IXP buffer-monitor threshold in bytes (Figure 7 uses 128 KiB).
    pub buffer_threshold: Option<u64>,
    /// Stream delivery pacing relative to nominal (1.05 = server pushes
    /// 5% faster than the frame rate, letting a boosted decoder catch up
    /// beyond nominal fps as in Figures 6–7).
    pub overrate: f64,
}

impl MplayerScenario {
    /// Figure 7 / Table 3's trigger setup: Domain-1 decodes a demanding
    /// network stream whose IXP queue is monitored at 128 KiB; Domain-2
    /// plays from its local disk (no IXP resources) and measures the
    /// interference cost of the triggers.
    pub fn trigger_setup() -> Self {
        MplayerScenario {
            players: vec![
                PlayerSpec::network(StreamSpec { kbps: 480, fps: 27 }),
                PlayerSpec::local(StreamSpec { kbps: 300, fps: 80 }),
            ],
            dom0_hog: 1.0,
            dom0_vcpus: 1,
            buffer_threshold: Some(128 * 1024),
            overrate: 1.05,
        }
    }

    /// Figure 6's two-guest setup with the given initial weights.
    pub fn figure6(w1: u32, w2: u32) -> Self {
        MplayerScenario {
            players: vec![
                PlayerSpec::network(StreamSpec::low()).with_weight(w1),
                PlayerSpec::network(StreamSpec::high()).with_weight(w2),
            ],
            dom0_hog: 1.0,
            dom0_vcpus: 1,
            buffer_threshold: None,
            overrate: 1.05,
        }
    }
}

/// An inference-serving scenario for the three-island platform: tenant
/// VMs submitting to a batching accelerator behind the IXP.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceScenario {
    /// The open-loop tenant sources (one guest VM each).
    pub inference: InferenceConfig,
    /// Accelerator island configuration.
    pub accel: AccelConfig,
    /// Host→accelerator DMA latency per request.
    pub dma_latency: Nanos,
    /// When set, arm a queue alarm on each *latency-sensitive* tenant at
    /// this many requests' worth of its model's input bytes. Batch
    /// tenants stay unmonitored and pay the preemption cost (the
    /// Figure 7 pattern).
    pub interactive_alarm_depth: Option<u32>,
}

impl InferenceScenario {
    /// Experiment I1's mixed-SLA colocation: two interactive tenants
    /// (chat, vision) sharing the accelerator with two batch tenants
    /// (rank, embed) at rates that keep the two execution units busy.
    pub fn mixed_tenants() -> Self {
        InferenceScenario {
            inference: InferenceConfig {
                tenants: vec![
                    TenantSpec { name: "chat", model_id: 0, rate_per_sec: 260.0 },
                    TenantSpec { name: "vision", model_id: 1, rate_per_sec: 120.0 },
                    TenantSpec { name: "rank", model_id: 2, rate_per_sec: 220.0 },
                    TenantSpec { name: "embed", model_id: 3, rate_per_sec: 90.0 },
                ],
                cost_jitter: 0.2,
            },
            accel: AccelConfig::default(),
            dma_latency: Nanos::from_micros(20),
            interactive_alarm_depth: None,
        }
    }

    /// Experiment I2's trigger setup: each *interactive* tenant's device
    /// queue is monitored at three requests' depth, so occupancy
    /// crossings raise alarms that the BufferTrigger policy converts
    /// into batch preemptions. Batch tenants are unmonitored and absorb
    /// the preemption cost.
    pub fn trigger_setup() -> Self {
        let mut s = Self::mixed_tenants();
        // Push the units toward saturation so queues actually form:
        // preemptions then displace real batch work, making the
        // colocated cost measurable rather than theoretical.
        for t in &mut s.inference.tenants {
            t.rate_per_sec *= 1.3;
        }
        s.interactive_alarm_depth = Some(3);
        s
    }
}

/// Configuration of the QoS-constrained energy dimension (DESIGN.md
/// §2.15): which knob axes the [`coord::EnergyController`] may walk on
/// the x86 island, and the per-tenant p99 response-time target the walk
/// must respect. Constructed through [`EnergyConfig::coordinated`], the
/// single-axis ablation constructors, or [`EnergyConfig::frozen`]
/// (energy metering with every axis pinned at full performance — the
/// accounting baseline the experiments compare against).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyConfig {
    /// Per-tenant p99 response-time target in milliseconds.
    pub p99_target_ms: f64,
    /// Allow descent of the DVFS frequency/voltage ladder.
    pub dvfs: bool,
    /// Allow shrinking the DB cache-partition way count.
    pub cache: bool,
    /// Allow shrinking the memory-bandwidth partition share.
    pub membw: bool,
}

impl EnergyConfig {
    /// All three knob axes available to the controller (experiment E1's
    /// coordinated arm).
    pub fn coordinated(p99_target_ms: f64) -> Self {
        EnergyConfig { p99_target_ms, dvfs: true, cache: true, membw: true }
    }

    /// DVFS ladder only (experiment E2 ablation).
    pub fn dvfs_only(p99_target_ms: f64) -> Self {
        EnergyConfig { p99_target_ms, dvfs: true, cache: false, membw: false }
    }

    /// Cache-way partition only (experiment E2 ablation).
    pub fn cache_only(p99_target_ms: f64) -> Self {
        EnergyConfig { p99_target_ms, dvfs: false, cache: true, membw: false }
    }

    /// Memory-bandwidth share only (experiment E2 ablation).
    pub fn membw_only(p99_target_ms: f64) -> Self {
        EnergyConfig { p99_target_ms, dvfs: false, cache: false, membw: true }
    }

    /// Energy accounting with no knob movement: every axis stays at full
    /// performance. Both E1 baselines (uncapped and uncoordinated power
    /// capping) run with this so all arms share one power model.
    pub fn frozen(p99_target_ms: f64) -> Self {
        EnergyConfig { p99_target_ms, dvfs: false, cache: false, membw: false }
    }
}

/// Builder for a [`Platform`]. Collects the island- and channel-level
/// knobs shared by all scenarios; `build_rubis` / `build_mplayer` /
/// `build_inference` assemble a runnable simulation.
///
/// # Example
///
/// ```
/// use platform::{PlatformBuilder, RubisScenario};
/// use coord::PolicyKind;
/// use simcore::Nanos;
///
/// let mut sim = PlatformBuilder::new()
///     .seed(1)
///     .policy(PolicyKind::RequestTypeHysteresis)
///     .coord_latency(Nanos::from_micros(1)) // QPI-class channel
///     .build_rubis(RubisScenario::read_write_mix(24));
/// let report = sim.run(Nanos::from_secs(5));
/// assert!(report.rubis.completed > 0);
/// ```
#[derive(Debug, Clone)]
pub struct PlatformBuilder {
    pub(crate) seed: u64,
    pub(crate) ncpus: u32,
    pub(crate) policy: PolicyKind,
    pub(crate) coord_latency: Nanos,
    pub(crate) notify: NotifyMode,
    pub(crate) sample_period: Nanos,
    pub(crate) costs: HostCosts,
    pub(crate) ixp_overrides: Option<IxpConfig>,
    pub(crate) policy_weights: Option<(i32, i32)>,
    pub(crate) trigger_rate: Option<f64>,
    pub(crate) power_cap: Option<(f64, Strategy)>,
    pub(crate) energy: Option<EnergyConfig>,
    pub(crate) precise_accounting: bool,
    pub(crate) fault_profile: FaultProfile,
    pub(crate) reliable: Option<ReliableConfig>,
    pub(crate) chaos: ChaosPlan,
    pub(crate) defenses: Option<PolicerConfig>,
    pub(crate) adversaries: Vec<AdversarySpec>,
    pub(crate) island_threads: usize,
    pub(crate) shard: u16,
}

impl Default for PlatformBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl PlatformBuilder {
    /// Defaults matching the paper's prototype: 2 pCPUs, 30 µs PCIe
    /// mailbox, 100 µs interrupt moderation, no coordination.
    pub fn new() -> Self {
        PlatformBuilder {
            seed: 1,
            ncpus: 2,
            policy: PolicyKind::None,
            coord_latency: Nanos::from_micros(30),
            notify: NotifyMode::Interrupt {
                period: Nanos::from_micros(100),
            },
            sample_period: Nanos::from_secs(1),
            costs: HostCosts::default(),
            ixp_overrides: None,
            policy_weights: None,
            trigger_rate: None,
            power_cap: None,
            energy: None,
            precise_accounting: true,
            fault_profile: FaultProfile::none(),
            reliable: None,
            chaos: ChaosPlan::none(),
            defenses: None,
            adversaries: Vec::new(),
            island_threads: 1,
            shard: 0,
        }
    }

    /// Marks this platform as fleet shard `shard_id`. Every RNG stream is
    /// derived from `seed ^ shard_id`, so N shards built from one fleet
    /// seed draw disjoint streams yet each replays bit-identically from
    /// `(seed, shard_id)` alone. Shard 0 is the identity: a `.shard(0)`
    /// platform is byte-identical to one that never called this.
    pub fn shard(mut self, shard_id: u16) -> Self {
        self.shard = shard_id;
        self
    }

    /// The seed every stream actually derives from (`seed ^ shard`,
    /// independent of the order `seed`/`shard` were set in).
    pub(crate) fn effective_seed(&self) -> u64 {
        self.seed ^ self.shard as u64
    }

    /// Sets the island worker-thread count for the PDES engine. `1`
    /// (the default) is the serial master loop; `N > 1` services island
    /// horizons on scoped worker threads at conservative epoch barriers.
    /// Output is bit-identical either way — see DESIGN.md §2.14.
    pub fn island_threads(mut self, threads: usize) -> Self {
        self.island_threads = threads.max(1);
        self
    }

    /// Sets the deterministic seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of physical CPUs on the x86 island.
    ///
    /// # Panics
    /// Panics if `ncpus == 0`.
    pub fn ncpus(mut self, ncpus: u32) -> Self {
        assert!(ncpus > 0, "need at least one pcpu");
        self.ncpus = ncpus;
        self
    }

    /// Selects the coordination policy.
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the one-way coordination-channel latency (ablation A1).
    pub fn coord_latency(mut self, latency: Nanos) -> Self {
        self.coord_latency = latency;
        self
    }

    /// Sets the host notification mode for the messaging driver
    /// (ablation A3).
    pub fn notify_mode(mut self, notify: NotifyMode) -> Self {
        self.notify = notify;
        self
    }

    /// Sets the time-series sampling period.
    pub fn sample_period(mut self, period: Nanos) -> Self {
        self.sample_period = period;
        self
    }

    /// Replaces the IXP island configuration wholesale (ablation A4).
    pub fn ixp_config(mut self, cfg: IxpConfig) -> Self {
        self.ixp_overrides = Some(cfg);
        self
    }

    /// Overrides the request-type policy's high/low regime weights.
    pub fn policy_weights(mut self, hi: i32, lo: i32) -> Self {
        self.policy_weights = Some((hi, lo));
        self
    }

    /// Rate-limits Trigger emission (triggers/second; ablation A5).
    pub fn trigger_rate_limit(mut self, per_sec: f64) -> Self {
        self.trigger_rate = Some(per_sec);
        self
    }

    /// Selects the credit-accounting mode: `true` (default) debits actual
    /// consumption; `false` reproduces Xen 3.x's tick-sampled debits,
    /// which sub-tick workloads can dodge (ablation A6).
    pub fn precise_accounting(mut self, precise: bool) -> Self {
        self.precise_accounting = precise;
        self
    }

    /// Enables platform-level power capping (the paper's §1 second use
    /// case): a governor samples modelled platform power each second and
    /// adjusts per-domain CPU caps to stay under `cap_watts`, choosing
    /// victims per `strategy`.
    pub fn power_cap(mut self, cap_watts: f64, strategy: Strategy) -> Self {
        self.power_cap = Some((cap_watts, strategy));
        self
    }

    /// Enables the QoS-constrained energy dimension: the x86 island gets
    /// a modelled DVFS/cache/bandwidth operating point, joules are
    /// metered per island, and a [`coord::EnergyController`] walks the
    /// knob lattice downward in power while per-tenant p99 stays under
    /// `cfg.p99_target_ms` (axes per `cfg`). Off by default: a build
    /// without this call is byte-identical to the seed baseline.
    pub fn energy(mut self, cfg: EnergyConfig) -> Self {
        self.energy = Some(cfg);
        self
    }

    /// Overrides the guest receive window and tier admission cap.
    pub fn queue_caps(mut self, rx_window: u32, tier_q_cap: u32) -> Self {
        self.costs.guest_rx_cap = rx_window;
        self.costs.guest_hold_cap = rx_window;
        self.costs.tier_q_cap = tier_q_cap;
        self
    }

    /// Overrides the client initial retransmission timeout.
    pub fn rto_initial(mut self, rto: Nanos) -> Self {
        self.costs.rto_initial = rto;
        self
    }

    /// Injects channel faults into both coordination directions
    /// (experiments R1/R2). The default, [`FaultProfile::none()`], leaves
    /// the channel perfect and the run byte-identical to one built without
    /// this call.
    pub fn fault_profile(mut self, profile: FaultProfile) -> Self {
        self.fault_profile = profile;
        self
    }

    /// Enables ack-based reliable delivery for coordination messages:
    /// sequence-numbered frames, retransmission with exponential backoff,
    /// duplicate suppression, and degraded-mode send suppression.
    pub fn reliable_delivery(mut self, cfg: ReliableConfig) -> Self {
        self.reliable = Some(cfg);
        self
    }

    /// Installs a chaos plan the master event loop consults at its three
    /// perturbation hook points (delayed event dispatch, forced Trigger
    /// preemption at accelerator batch boundaries, coordination-send
    /// jitter bursts). The default, [`ChaosPlan::none()`], is a
    /// constant-time no-op at every hook, so a chaos-off build stays
    /// byte-identical to one built without this call.
    pub fn chaos(mut self, plan: ChaosPlan) -> Self {
        self.chaos = plan;
        self
    }

    /// Enables the controller-side adversary defenses (per-entity Tune
    /// rate limiting and reputation-weighted delta discounting).
    pub fn coord_defenses(mut self, cfg: PolicerConfig) -> Self {
        self.defenses = Some(cfg);
        self
    }

    /// Adds strategic tenants (experiment A1): each spec becomes one
    /// extra guest VM that hogs CPU and plays its strategy against the
    /// coordination channel. Adversarial messages traverse the real
    /// mailbox and are policed by [`coord_defenses`](Self::coord_defenses)
    /// when enabled.
    pub fn adversaries(mut self, specs: Vec<AdversarySpec>) -> Self {
        self.adversaries = specs;
        self
    }

    pub(crate) fn link_config(&self) -> LinkConfig {
        LinkConfig {
            notify: self.notify,
            ..LinkConfig::default()
        }
    }

    /// Assembles a RUBiS platform: Dom0 plus web/app/db guest VMs behind
    /// the IXP with DPI classification enabled.
    pub fn build_rubis(self, scenario: RubisScenario) -> Platform {
        Platform::new_rubis(self, scenario)
    }

    /// Assembles an MPlayer platform: Dom0 plus one guest per player.
    pub fn build_mplayer(self, scenario: MplayerScenario) -> Platform {
        Platform::new_mplayer(self, scenario)
    }

    /// Assembles a three-island inference platform: Dom0 plus one guest
    /// per tenant, with a batching accelerator as the third coordinated
    /// island. The default two-island builds never construct it.
    pub fn build_inference(self, scenario: InferenceScenario) -> Platform {
        Platform::new_inference(self, scenario)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let b = PlatformBuilder::new();
        assert_eq!(b.ncpus, 2);
        assert_eq!(b.policy, PolicyKind::None);
        assert_eq!(b.coord_latency, Nanos::from_micros(30));
    }

    #[test]
    fn scenario_constructors() {
        let s = RubisScenario::read_write_mix(24);
        assert_eq!(s.clients, 24);
        assert_eq!(s.mix, Mix::ReadWrite);
        let b = RubisScenario::browsing_mix(8);
        assert_eq!(b.mix, Mix::Browsing);
        let m = MplayerScenario::figure6(384, 512);
        assert_eq!(m.players[0].weight, 384);
        assert_eq!(m.players[1].weight, 512);
        assert_eq!(m.players[1].stream, StreamSpec::high());
    }

    #[test]
    fn energy_config_constructors() {
        let c = EnergyConfig::coordinated(400.0);
        assert!(c.dvfs && c.cache && c.membw);
        assert_eq!(c.p99_target_ms, 400.0);
        let d = EnergyConfig::dvfs_only(400.0);
        assert!(d.dvfs && !d.cache && !d.membw);
        let f = EnergyConfig::frozen(400.0);
        assert!(!f.dvfs && !f.cache && !f.membw);
        let b = PlatformBuilder::new();
        assert!(b.energy.is_none(), "energy is off by default");
        assert_eq!(b.energy(c).energy, Some(c));
    }

    #[test]
    #[should_panic(expected = "pcpu")]
    fn zero_cpus_rejected() {
        let _ = PlatformBuilder::new().ncpus(0);
    }
}
