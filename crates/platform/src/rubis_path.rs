//! The RUBiS request lifecycle across the platform.
//!
//! A request is born at an external client, crosses the wire into the
//! IXP (where DPI classification drives the coordination policy), is
//! DMA'd to the host, delivered into the web VM, processed through
//! whichever tiers its type requires (each inter-VM hop is a Dom0 bridge
//! burst), and its response leaves through the IXP Tx pipeline. Response
//! time is measured client-to-client.

use crate::world::{horizon, Ctx, Ev, Platform, ReqState};
use ixp::{AppTag, Packet};
use workloads::rubis::Tier;
use xsched::{Burst, WakeMode};

impl Platform {
    /// A client issues its next request.
    pub(crate) fn client_send(&mut self, client: u32) {
        let now = self.now;
        let wire = self.costs.wire_latency;
        let rto = self.costs.rto_initial;
        let Some(r) = self.rubis.as_mut() else { return };
        let rt = r.model.next_request_for(client);
        let demands = r.model.demands(rt);
        let pkt = r.model.request_packet(rt, r.web_vm);
        let req = pkt.id;
        r.pkt_to_req.insert(pkt.id, req);
        r.reqs.insert(
            req,
            ReqState { rt, demands, client, start: now, attempt: 0, in_service: false },
        );
        self.horizons.mark(horizon::QUEUE);
        self.q.schedule(now + wire, Ev::WireArrive(pkt));
        self.q.schedule(now + rto, Ev::Rto { req, attempt: 0 });
    }

    /// A client's retransmission timer fired: if the request is still
    /// outstanding, resend it (TCP-style, with exponential backoff).
    pub(crate) fn client_rto(&mut self, req: u64, attempt: u32) {
        let now = self.now;
        let wire = self.costs.wire_latency;
        let rto = self.costs.rto_initial;
        let Some(r) = self.rubis.as_mut() else { return };
        let Some(state) = r.reqs.get_mut(&req) else { return };
        if state.attempt != attempt || state.in_service {
            // Response already in flight through the tiers, or this timer
            // belongs to a superseded attempt.
            return;
        }
        state.attempt += 1;
        let next_attempt = state.attempt;
        let rt = state.rt;
        let pkt = r.model.request_packet(rt, r.web_vm);
        r.pkt_to_req.insert(pkt.id, req);
        self.horizons.mark(horizon::QUEUE);
        self.q.schedule(now + wire, Ev::WireArrive(pkt));
        let backoff = rto * (1u64 << next_attempt.min(4));
        self.q.schedule(now + backoff, Ev::Rto { req, attempt: next_attempt });
    }

    /// A classified request packet reached the web VM.
    pub(crate) fn rubis_request_arrived(&mut self, vm: u32, pkt: Packet) {
        let AppTag::Http { .. } = pkt.app else { return };
        let Some(r) = self.rubis.as_mut() else { return };
        debug_assert_eq!(vm, r.web_vm, "requests enter at the web tier");
        let Some(&req) = r.pkt_to_req.get(&pkt.id) else {
            // Stale duplicate of an already-answered request.
            self.consume_rx(vm, 1);
            return;
        };
        r.pkt_to_req.remove(&pkt.id);
        let Some(state) = r.reqs.get_mut(&req) else {
            self.consume_rx(vm, 1);
            return;
        };
        if state.in_service {
            // A duplicate (original + retransmission both survived): the
            // web server still parses it, then discards it.
            self.consume_rx(vm, 1);
            return;
        }
        state.in_service = true;
        let demand = state.demands.web;
        self.admit_or_drop(vm, req, Tier::Web, demand);
    }

    /// Admission control at a tier: start the burst if the tier's backlog
    /// is under its connector cap, otherwise drop the request (the client
    /// recovers by retransmission).
    fn admit_or_drop(&mut self, vm: u32, req: u64, tier: Tier, demand: simcore::Nanos) {
        // The energy knobs act here: shrunken cache ways / bandwidth
        // share stretch this tier's service time (identity when the
        // energy dimension is off).
        let demand = self.energy_scaled(tier, demand);
        let Some(slot) = self.slot_by_vm(vm) else { return };
        if self.vms[slot].pending >= self.costs.tier_q_cap {
            self.guest_drops += 1;
            if let Some(r) = self.rubis.as_mut() {
                if let Some(state) = r.reqs.get_mut(&req) {
                    state.in_service = false; // the RTO will resend
                }
            }
            return;
        }
        self.vms[slot].pending += 1;
        let dom = self.vms[slot].dom;
        let tag = self.alloc_tag(Ctx::TierDone { req, tier });
        self.submit(dom, Burst::user(demand, tag), WakeMode::Boost);
    }

    /// A tier finished its CPU work for a request.
    pub(crate) fn rubis_tier_done(&mut self, req: u64, tier: Tier) {
        let Some(r) = self.rubis.as_ref() else { return };
        let (web_vm, app_vm, db_vm) = (r.web_vm, r.app_vm, r.db_vm);
        let tier_vm = match tier {
            Tier::Web => web_vm,
            Tier::App => app_vm,
            Tier::Db => db_vm,
        };
        if let Some(slot) = self.slot_by_vm(tier_vm) {
            self.vms[slot].pending = self.vms[slot].pending.saturating_sub(1);
        }
        let Some(r) = self.rubis.as_ref() else { return };
        let Some(state) = r.reqs.get(&req) else { return };
        let demands = state.demands;
        match tier {
            Tier::Web => {
                // The request packet's receive-window unit is consumed.
                self.consume_rx(web_vm, 1);
                if demands.app.as_nanos() > 0 {
                    self.bridge_hop(req, Tier::App);
                } else {
                    self.respond(req);
                }
            }
            Tier::App => {
                if demands.db.as_nanos() > 0 {
                    self.bridge_hop(req, Tier::Db);
                } else {
                    self.respond(req);
                }
            }
            Tier::Db => {
                self.respond(req);
            }
        }
    }

    /// A Dom0 bridge hop finished: start the destination tier's burst
    /// subject to the tier's admission cap.
    pub(crate) fn rubis_hop_done(&mut self, req: u64, tier: Tier) {
        let Some(r) = self.rubis.as_ref() else { return };
        let (app_vm, db_vm) = (r.app_vm, r.db_vm);
        let Some(state) = r.reqs.get(&req) else { return };
        let (vm, demand) = match tier {
            Tier::App => (app_vm, state.demands.app),
            Tier::Db => (db_vm, state.demands.db),
            Tier::Web => unreachable!("requests never hop back to web"),
        };
        self.admit_or_drop(vm, req, tier, demand);
    }

    /// Queues the Dom0 bridge burst carrying a request to its next tier.
    fn bridge_hop(&mut self, req: u64, tier: Tier) {
        let cost = self.costs.bridge;
        let tag = self.alloc_tag(Ctx::HopDone { req, tier });
        let dom0 = self.dom0;
        self.submit(dom0, Burst::system(cost, tag), WakeMode::Boost);
    }

    /// The deepest tier finished: emit the response through Dom0 → IXP.
    fn respond(&mut self, req: u64) {
        let cost = self.costs.resp_bridge;
        let tag = self.alloc_tag(Ctx::RespOut { req });
        let dom0 = self.dom0;
        self.submit(dom0, Burst::system(cost, tag), WakeMode::Boost);
    }

    /// Dom0's response bridge finished: hand the response packet to the
    /// IXP Tx pipeline.
    pub(crate) fn rubis_resp_out(&mut self, req: u64) {
        let Some(r) = self.rubis.as_mut() else { return };
        let Some(state) = r.reqs.get(&req) else { return };
        let rt = state.rt;
        // Responses use the shared wire-Tx stage: per-flow egress
        // scheduling is a streaming-QoS knob (§2.1), not part of the
        // request/response fast path.
        let resp = r.model.response_packet(rt, u32::MAX);
        r.resp_map.insert(resp.id, req);
        let now = self.now;
        self.horizons.mark(horizon::IXP);
        let evs = self.ixp.tx_from_host(now, resp);
        self.absorb_ixp(evs);
    }

    /// A packet left on the wire: if it is a RUBiS response, complete the
    /// request at the client.
    pub(crate) fn on_wire_tx(&mut self, pkt: Packet) {
        let now = self.now;
        let wire = self.costs.wire_latency;
        let run_end = self.run_end;
        let Some(r) = self.rubis.as_mut() else {
            self.inference_wire_tx(pkt);
            return;
        };
        let Some(req) = r.resp_map.remove(&pkt.id) else { return };
        let Some(state) = r.reqs.remove(&req) else { return };
        let t_client = now + wire;
        let latency = t_client.saturating_sub(state.start);
        self.responses.record(state.rt.name, latency);
        if let Some(e) = self.energy.as_mut() {
            e.window.record(state.rt.name, latency);
        }
        self.sessions.request_completed();
        // Session bookkeeping and the closed-loop think time.
        let session_len = r.model.config().session_len;
        let think = r.model.think_time();
        let c = &mut r.clients[state.client as usize];
        c.done_in_session += 1;
        if c.done_in_session >= session_len {
            let dur = t_client.saturating_sub(c.session_start);
            self.sessions.session_completed(dur);
            c.done_in_session = 0;
            c.session_start = t_client + think;
        }
        let next = t_client + think;
        if next <= run_end {
            self.horizons.mark(horizon::QUEUE);
            self.q.schedule(next, Ev::ClientSend(state.client));
        }
    }
}
