//! Island power models.

/// Affine CPU power model: `watts = idle + (peak − idle) × utilization`,
/// with utilization as a fraction of the whole package (0..=1).
///
/// Defaults approximate a 2006-era dual-core Xeon package.
///
/// # Example
///
/// ```
/// use power::CpuPowerModel;
/// let m = CpuPowerModel::xeon_2006();
/// assert_eq!(m.watts(0.0), 40.0);
/// assert_eq!(m.watts(1.0), 90.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuPowerModel {
    /// Package idle power in watts.
    pub idle_w: f64,
    /// Package power at full utilization.
    pub peak_w: f64,
}

impl CpuPowerModel {
    /// A dual-core 2.66 GHz Xeon package of the paper's era.
    pub fn xeon_2006() -> Self {
        CpuPowerModel {
            idle_w: 40.0,
            peak_w: 90.0,
        }
    }

    /// Power at `utilization` (clamped to 0..=1 of the package).
    pub fn watts(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        self.idle_w + (self.peak_w - self.idle_w) * u
    }
}

impl Default for CpuPowerModel {
    fn default() -> Self {
        Self::xeon_2006()
    }
}

/// Network-processor power model: a dominant static component (the
/// IXP2850's microengines run whether or not packets flow) plus a small
/// per-traffic term.
///
/// # Example
///
/// ```
/// use power::IxpPowerModel;
/// let m = IxpPowerModel::ixp2850();
/// assert!(m.watts(0.0) >= 20.0);
/// assert!(m.watts(500.0) > m.watts(0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IxpPowerModel {
    /// Static power in watts.
    pub static_w: f64,
    /// Additional watts per 1000 packets/second of traffic.
    pub per_kpps_w: f64,
}

impl IxpPowerModel {
    /// The IXP2850 network processor (~25 W typical).
    pub fn ixp2850() -> Self {
        IxpPowerModel {
            static_w: 25.0,
            per_kpps_w: 0.02,
        }
    }

    /// Power at `kpps` thousand packets per second.
    pub fn watts(&self, kpps: f64) -> f64 {
        self.static_w + self.per_kpps_w * kpps.max(0.0)
    }
}

impl Default for IxpPowerModel {
    fn default() -> Self {
        Self::ixp2850()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_model_is_affine_and_clamped() {
        let m = CpuPowerModel { idle_w: 10.0, peak_w: 110.0 };
        assert_eq!(m.watts(0.5), 60.0);
        assert_eq!(m.watts(-1.0), 10.0);
        assert_eq!(m.watts(2.0), 110.0);
    }

    #[test]
    fn ixp_model_scales_with_traffic() {
        let m = IxpPowerModel { static_w: 20.0, per_kpps_w: 0.1 };
        assert_eq!(m.watts(0.0), 20.0);
        assert_eq!(m.watts(100.0), 30.0);
        assert_eq!(m.watts(-5.0), 20.0);
    }

    #[test]
    fn defaults_are_the_paper_era_parts() {
        assert_eq!(CpuPowerModel::default(), CpuPowerModel::xeon_2006());
        assert_eq!(IxpPowerModel::default(), IxpPowerModel::ixp2850());
    }
}
