//! Island power models.

/// Affine CPU power model: `watts = idle + (peak − idle) × utilization`,
/// with utilization as a fraction of the whole package (0..=1).
///
/// Defaults approximate a 2006-era dual-core Xeon package.
///
/// # Example
///
/// ```
/// use power::CpuPowerModel;
/// let m = CpuPowerModel::xeon_2006();
/// assert_eq!(m.watts(0.0), 40.0);
/// assert_eq!(m.watts(1.0), 90.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuPowerModel {
    /// Package idle power in watts.
    pub idle_w: f64,
    /// Package power at full utilization.
    pub peak_w: f64,
}

impl CpuPowerModel {
    /// A dual-core 2.66 GHz Xeon package of the paper's era.
    pub fn xeon_2006() -> Self {
        CpuPowerModel {
            idle_w: 40.0,
            peak_w: 90.0,
        }
    }

    /// Power at `utilization` (clamped to 0..=1 of the package).
    pub fn watts(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        self.idle_w + (self.peak_w - self.idle_w) * u
    }
}

impl Default for CpuPowerModel {
    fn default() -> Self {
        Self::xeon_2006()
    }
}

/// A discrete DVFS operating point of the x86 package.
///
/// Frequency is an integer percent of nominal so the scheduler can scale
/// service rates with exact rational arithmetic (`freq_percent / 100`);
/// voltage is a fraction of nominal supply.
///
/// # Example
///
/// ```
/// use power::{CpuPowerModel, DvfsState};
/// let m = CpuPowerModel::xeon_2006();
/// let nominal = DvfsState::nominal();
/// // At the nominal point the scaled model is the plain affine model.
/// assert_eq!(m.watts_at(0.7, nominal), m.watts(0.7));
/// // Every lower rung draws strictly less at the same utilization.
/// let low = DvfsState::xeon_ladder()[3];
/// assert!(m.watts_at(0.7, low) < m.watts(0.7));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvfsState {
    /// Core frequency as an integer percent of nominal (100 = nominal).
    pub freq_percent: u32,
    /// Supply voltage as a fraction of nominal.
    pub volt: f64,
}

impl DvfsState {
    /// The nominal (full-speed) operating point.
    pub const fn nominal() -> Self {
        DvfsState { freq_percent: 100, volt: 1.0 }
    }

    /// The Xeon's discrete P-state ladder, fastest first. Voltage steps
    /// track frequency the way 2006-era SpeedStep tables did (voltage
    /// falls more slowly than frequency).
    pub const fn xeon_ladder() -> [DvfsState; 4] {
        [
            DvfsState { freq_percent: 100, volt: 1.0 },
            DvfsState { freq_percent: 85, volt: 0.95 },
            DvfsState { freq_percent: 70, volt: 0.9 },
            DvfsState { freq_percent: 55, volt: 0.85 },
        ]
    }

    /// The frequency as an exact rational `(numerator, denominator)`
    /// speed factor for the scheduler: nominal is `(100, 100)`.
    pub const fn speed(&self) -> (u64, u64) {
        (self.freq_percent as u64, 100)
    }
}

impl Default for DvfsState {
    fn default() -> Self {
        Self::nominal()
    }
}

impl CpuPowerModel {
    /// Power at `utilization` when the package runs at operating point
    /// `p`: leakage (idle) scales with voltage, switching (dynamic)
    /// power scales with `f · V²`. At the nominal point this reproduces
    /// [`CpuPowerModel::watts`] exactly.
    pub fn watts_at(&self, utilization: f64, p: DvfsState) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        let f = p.freq_percent as f64 / 100.0;
        self.idle_w * p.volt + (self.peak_w - self.idle_w) * u * f * p.volt * p.volt
    }
}

/// Network-processor power model: a dominant static component (the
/// IXP2850's microengines run whether or not packets flow) plus a small
/// per-traffic term.
///
/// # Example
///
/// ```
/// use power::IxpPowerModel;
/// let m = IxpPowerModel::ixp2850();
/// assert!(m.watts(0.0) >= 20.0);
/// assert!(m.watts(500.0) > m.watts(0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IxpPowerModel {
    /// Static power in watts.
    pub static_w: f64,
    /// Additional watts per 1000 packets/second of traffic.
    pub per_kpps_w: f64,
}

impl IxpPowerModel {
    /// The IXP2850 network processor (~25 W typical).
    pub fn ixp2850() -> Self {
        IxpPowerModel {
            static_w: 25.0,
            per_kpps_w: 0.02,
        }
    }

    /// Power at `kpps` thousand packets per second.
    pub fn watts(&self, kpps: f64) -> f64 {
        self.static_w + self.per_kpps_w * kpps.max(0.0)
    }
}

impl Default for IxpPowerModel {
    fn default() -> Self {
        Self::ixp2850()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_model_is_affine_and_clamped() {
        let m = CpuPowerModel { idle_w: 10.0, peak_w: 110.0 };
        assert_eq!(m.watts(0.5), 60.0);
        assert_eq!(m.watts(-1.0), 10.0);
        assert_eq!(m.watts(2.0), 110.0);
    }

    #[test]
    fn ixp_model_scales_with_traffic() {
        let m = IxpPowerModel { static_w: 20.0, per_kpps_w: 0.1 };
        assert_eq!(m.watts(0.0), 20.0);
        assert_eq!(m.watts(100.0), 30.0);
        assert_eq!(m.watts(-5.0), 20.0);
    }

    #[test]
    fn defaults_are_the_paper_era_parts() {
        assert_eq!(CpuPowerModel::default(), CpuPowerModel::xeon_2006());
        assert_eq!(IxpPowerModel::default(), IxpPowerModel::ixp2850());
    }

    #[test]
    fn nominal_point_reproduces_the_plain_model_bit_exactly() {
        let m = CpuPowerModel::xeon_2006();
        for u in [0.0, 0.13, 0.5, 0.77, 1.0] {
            assert_eq!(m.watts_at(u, DvfsState::nominal()), m.watts(u));
        }
    }

    #[test]
    fn ladder_is_monotone_in_power_and_frequency() {
        let m = CpuPowerModel::xeon_2006();
        let ladder = DvfsState::xeon_ladder();
        for w in ladder.windows(2) {
            assert!(w[0].freq_percent > w[1].freq_percent);
            assert!(m.watts_at(0.8, w[0]) > m.watts_at(0.8, w[1]));
            // Even idle power falls down the ladder (leakage tracks V).
            assert!(m.watts_at(0.0, w[0]) > m.watts_at(0.0, w[1]));
        }
    }

    #[test]
    fn speed_rational_is_exact() {
        assert_eq!(DvfsState::nominal().speed(), (100, 100));
        assert_eq!(DvfsState::xeon_ladder()[3].speed(), (55, 100));
    }
}
