//! # power — platform-level power modelling and coordinated capping
//!
//! The paper's second motivating use case (§1): "while power budgeting can
//! be performed on a per tile-basis, it is well-known that properties like
//! caps on total power usage must be obtained at platform level … turning
//! off or slowing down processors in certain tiles may negatively impact
//! the performance of application components executing on others.
//! Maintaining desired global platform properties, therefore, implies the
//! need for coordination mechanisms, which at the same time act to
//! preserve application-level quality of service." Power/CPU coordination
//! is also the first item of the paper's §5 ongoing work.
//!
//! This crate provides:
//!
//! * [`CpuPowerModel`] / [`IxpPowerModel`] — utilization→watts models for
//!   the two islands (affine CPU model; static + per-packet NP model);
//! * [`PowerGovernor`] — a sampling governor that keeps total platform
//!   power under a cap by adjusting per-domain CPU caps, with two victim
//!   strategies: the uncoordinated [`Strategy::BiggestConsumer`] (cap
//!   whoever burns most — per-tile logic with no application knowledge)
//!   and the coordinated [`Strategy::Priority`] (cap in an
//!   application-aware order, background load first).
//!
//! Experiment P1 in the `bench` crate shows the paper's point: at the same
//! watt cap, the priority strategy preserves stream QoS while the
//! biggest-consumer strategy destroys it — and, against an elastic
//! background load, barely saves any power.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod governor;
mod model;

pub use governor::{CapAction, DomainSample, PowerGovernor, Strategy};
pub use model::{CpuPowerModel, DvfsState, IxpPowerModel};
