//! The platform power governor.
//!
//! Sampled once per measurement period with each domain's recent CPU
//! utilization and the platform's modelled power draw, the governor keeps
//! total power under a cap by tightening per-domain CPU caps (the Xen
//! credit scheduler's `cap` knob) and relaxes them again when headroom
//! returns.
//!
//! The victim choice is the coordination story: [`Strategy::BiggestConsumer`]
//! is per-tile logic (no application knowledge — exactly what the paper
//! warns about), while [`Strategy::Priority`] caps in an application-aware
//! order supplied by the coordination layer.

use simcore::Nanos;
use std::collections::BTreeMap;

/// Who gets capped when over budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Strategy {
    /// Cap the domain currently consuming the most CPU (uncoordinated,
    /// application-blind).
    BiggestConsumer,
    /// Cap domains in the given order (first = first victim), restoring
    /// in reverse. Domains not listed are never capped.
    Priority(Vec<String>),
}

/// One domain's sample fed to the governor.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainSample {
    /// Domain name.
    pub name: String,
    /// CPU consumption over the window as a percentage of one pCPU.
    pub cpu_percent: f64,
}

/// A cap adjustment the platform should apply.
#[derive(Debug, Clone, PartialEq)]
pub struct CapAction {
    /// Domain to adjust.
    pub name: String,
    /// New cap as a percentage of one pCPU (0 = uncapped).
    pub cap_percent: u32,
}

/// The sampling power governor. See the module-level documentation.
#[derive(Debug, Clone)]
pub struct PowerGovernor {
    cap_watts: f64,
    hysteresis_w: f64,
    step_percent: u32,
    floor_percent: u32,
    strategy: Strategy,
    /// Current caps (0 = uncapped).
    caps: BTreeMap<String, u32>,
    actions_applied: u64,
    last_decision: Nanos,
    min_gap: Nanos,
}

impl PowerGovernor {
    /// Creates a governor holding platform power at or below `cap_watts`.
    pub fn new(cap_watts: f64, strategy: Strategy) -> Self {
        PowerGovernor {
            cap_watts,
            hysteresis_w: 3.0,
            step_percent: 15,
            floor_percent: 10,
            strategy,
            caps: BTreeMap::new(),
            actions_applied: 0,
            last_decision: Nanos::ZERO,
            min_gap: Nanos::from_secs(1),
        }
    }

    /// Overrides the cap step and floor (percent of one pCPU).
    ///
    /// # Panics
    ///
    /// Panics if `step == 0` (the governor could never change a cap) or
    /// `floor > 100` (a floor above full speed is meaningless).
    pub fn with_steps(mut self, step: u32, floor: u32) -> Self {
        assert!(step > 0, "governor step must be at least 1 percent");
        assert!(floor <= 100, "governor floor is a percent of one pCPU (0..=100)");
        self.step_percent = step;
        self.floor_percent = floor;
        self
    }

    /// The configured watt cap.
    pub fn cap_watts(&self) -> f64 {
        self.cap_watts
    }

    /// Total cap adjustments issued.
    pub fn actions_applied(&self) -> u64 {
        self.actions_applied
    }

    /// Current cap for a domain (0 = uncapped).
    pub fn cap_of(&self, name: &str) -> u32 {
        self.caps.get(name).copied().unwrap_or(0)
    }

    /// Feeds one sampling period; returns the cap adjustments to apply.
    ///
    /// `watts` is the modelled platform draw over the window; `domains`
    /// are the per-domain utilization samples.
    pub fn sample(
        &mut self,
        now: Nanos,
        watts: f64,
        domains: &[DomainSample],
    ) -> Vec<CapAction> {
        if now < self.last_decision + self.min_gap && !self.last_decision.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::new();
        if watts > self.cap_watts {
            if let Some(victim) = self.pick_victim(domains) {
                let sample = domains
                    .iter()
                    .find(|d| d.name == victim)
                    .map(|d| d.cpu_percent)
                    .unwrap_or(100.0);
                let current = self.cap_of(&victim);
                // First cap lands just below current consumption; further
                // caps step down toward the floor. Ceiling, not `as`-cast:
                // truncation would start the descent one percent short of
                // the measured consumption, landing the first cap below
                // where the step arithmetic intends (and, with a fractional
                // sample at the floor, below the floor itself before the
                // final clamp).
                let base = if current == 0 {
                    sample.max(self.floor_percent as f64).ceil() as u32
                } else {
                    current
                };
                let new = base
                    .saturating_sub(self.step_percent)
                    .max(self.floor_percent);
                if new != current {
                    self.caps.insert(victim.clone(), new);
                    self.actions_applied += 1;
                    self.last_decision = now;
                    out.push(CapAction { name: victim, cap_percent: new });
                }
            }
        } else if watts < self.cap_watts - self.hysteresis_w {
            if let Some(beneficiary) = self.pick_restore() {
                let current = self.cap_of(&beneficiary);
                let new = current + self.step_percent;
                // Fully uncap once the cap no longer binds meaningfully.
                let new = if new >= 100 { 0 } else { new };
                if new != current {
                    if new == 0 {
                        self.caps.remove(&beneficiary);
                    } else {
                        self.caps.insert(beneficiary.clone(), new);
                    }
                    self.actions_applied += 1;
                    self.last_decision = now;
                    out.push(CapAction { name: beneficiary, cap_percent: new });
                }
            }
        }
        out
    }

    fn pick_victim(&self, domains: &[DomainSample]) -> Option<String> {
        match &self.strategy {
            Strategy::BiggestConsumer => domains
                .iter()
                .filter(|d| {
                    let cap = self.cap_of(&d.name);
                    cap == 0 || cap > self.floor_percent
                })
                .max_by(|a, b| {
                    a.cpu_percent
                        .partial_cmp(&b.cpu_percent)
                        .expect("utilizations are finite")
                })
                .map(|d| d.name.clone()),
            Strategy::Priority(order) => order
                .iter()
                .find(|name| {
                    let cap = self.cap_of(name);
                    cap == 0 || cap > self.floor_percent
                })
                .cloned(),
        }
    }

    fn pick_restore(&self) -> Option<String> {
        match &self.strategy {
            Strategy::BiggestConsumer => self.caps.keys().next().cloned(),
            Strategy::Priority(order) => order
                .iter()
                .rev()
                .find(|n| self.caps.contains_key(*n))
                .cloned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doms(web: f64, db: f64, bg: f64) -> Vec<DomainSample> {
        vec![
            DomainSample { name: "web".into(), cpu_percent: web },
            DomainSample { name: "db".into(), cpu_percent: db },
            DomainSample { name: "background".into(), cpu_percent: bg },
        ]
    }

    #[test]
    fn over_budget_biggest_consumer_caps_the_hog() {
        let mut g = PowerGovernor::new(100.0, Strategy::BiggestConsumer);
        let actions = g.sample(Nanos::from_secs(1), 120.0, &doms(40.0, 80.0, 30.0));
        assert_eq!(actions.len(), 1);
        assert_eq!(actions[0].name, "db");
        assert_eq!(actions[0].cap_percent, 65); // 80 − 15
        assert_eq!(g.cap_of("db"), 65);
    }

    #[test]
    fn over_budget_priority_caps_in_order() {
        let mut g = PowerGovernor::new(
            100.0,
            Strategy::Priority(vec!["background".into(), "db".into()]),
        );
        let a1 = g.sample(Nanos::from_secs(1), 120.0, &doms(40.0, 80.0, 30.0));
        assert_eq!(a1[0].name, "background");
        // Keep squeezing: background steps toward the floor before db is
        // touched.
        let a2 = g.sample(Nanos::from_secs(2), 118.0, &doms(40.0, 80.0, 15.0));
        assert_eq!(a2[0].name, "background");
        let a3 = g.sample(Nanos::from_secs(3), 117.0, &doms(40.0, 80.0, 10.0));
        assert_eq!(a3[0].name, "db", "after the floor, the next priority");
    }

    #[test]
    fn under_budget_restores_in_reverse_order() {
        let mut g = PowerGovernor::new(
            100.0,
            Strategy::Priority(vec!["background".into(), "db".into()]),
        );
        g.sample(Nanos::from_secs(1), 120.0, &doms(40.0, 80.0, 30.0));
        g.sample(Nanos::from_secs(2), 115.0, &doms(40.0, 80.0, 15.0));
        g.sample(Nanos::from_secs(3), 112.0, &doms(40.0, 80.0, 10.0)); // caps db
        // Headroom: db (last capped) is restored first.
        let a = g.sample(Nanos::from_secs(4), 80.0, &doms(40.0, 50.0, 10.0));
        assert_eq!(a[0].name, "db");
    }

    #[test]
    fn within_band_is_quiet() {
        let mut g = PowerGovernor::new(100.0, Strategy::BiggestConsumer);
        assert!(g.sample(Nanos::from_secs(1), 99.0, &doms(40.0, 80.0, 30.0)).is_empty());
        assert!(g.sample(Nanos::from_secs(2), 98.0, &doms(40.0, 80.0, 30.0)).is_empty());
        assert_eq!(g.actions_applied(), 0);
    }

    #[test]
    fn decisions_are_rate_limited() {
        let mut g = PowerGovernor::new(100.0, Strategy::BiggestConsumer);
        let a1 = g.sample(Nanos::from_secs(1), 120.0, &doms(40.0, 80.0, 30.0));
        assert_eq!(a1.len(), 1);
        // 200 ms later: too soon.
        let a2 = g.sample(
            Nanos::from_secs(1) + Nanos::from_millis(200),
            120.0,
            &doms(40.0, 80.0, 30.0),
        );
        assert!(a2.is_empty());
        let a3 = g.sample(Nanos::from_secs(3), 120.0, &doms(40.0, 80.0, 30.0));
        assert_eq!(a3.len(), 1);
    }

    #[test]
    fn caps_never_fall_below_floor() {
        let mut g =
            PowerGovernor::new(100.0, Strategy::Priority(vec!["background".into()]))
                .with_steps(30, 10);
        for i in 1..10 {
            g.sample(Nanos::from_secs(i), 150.0, &doms(40.0, 80.0, 30.0));
        }
        assert_eq!(g.cap_of("background"), 10);
    }

    #[test]
    fn fractional_sample_at_the_floor_never_caps_below_it() {
        // Floor 10, consumption 10.4%: the old `as u32` truncation turned
        // `max(10.4, 10.0)` into base 10 via the fraction being dropped —
        // here the ceiling keeps base at 11 so the first step lands on the
        // clamped floor, never under it.
        let mut g = PowerGovernor::new(100.0, Strategy::BiggestConsumer).with_steps(1, 10);
        let a = g.sample(
            Nanos::from_secs(1),
            120.0,
            &[DomainSample { name: "db".into(), cpu_percent: 10.4 }],
        );
        assert_eq!(a.len(), 1);
        assert!(a[0].cap_percent >= 10, "cap {} fell below the floor", a[0].cap_percent);
        assert_eq!(a[0].cap_percent, 10);
    }

    #[test]
    fn first_cap_rounds_consumption_up_not_down() {
        // 80.3% consumption with a 15-point step: the descent starts from
        // ceil(80.3) = 81, so the first cap is 66, not the truncated 65.
        let mut g = PowerGovernor::new(100.0, Strategy::BiggestConsumer);
        let a = g.sample(
            Nanos::from_secs(1),
            120.0,
            &[DomainSample { name: "db".into(), cpu_percent: 80.3 }],
        );
        assert_eq!(a[0].cap_percent, 66);
    }

    #[test]
    #[should_panic(expected = "step must be at least 1")]
    fn with_steps_rejects_zero_step() {
        let _ = PowerGovernor::new(100.0, Strategy::BiggestConsumer).with_steps(0, 10);
    }

    #[test]
    #[should_panic(expected = "floor is a percent")]
    fn with_steps_rejects_floor_above_100() {
        let _ = PowerGovernor::new(100.0, Strategy::BiggestConsumer).with_steps(15, 101);
    }

    #[test]
    fn restore_uncaps_fully_at_100() {
        let mut g = PowerGovernor::new(100.0, Strategy::BiggestConsumer).with_steps(60, 10);
        g.sample(Nanos::from_secs(1), 120.0, &doms(40.0, 90.0, 30.0));
        assert_eq!(g.cap_of("db"), 30);
        g.sample(Nanos::from_secs(2), 80.0, &doms(40.0, 30.0, 30.0));
        assert_eq!(g.cap_of("db"), 90);
        g.sample(Nanos::from_secs(3), 80.0, &doms(40.0, 30.0, 30.0));
        assert_eq!(g.cap_of("db"), 0, "fully uncapped past 100");
    }
}
