//! Domain (virtual machine) identity and metadata.

use std::fmt;

/// The Xen default scheduling weight for a new domain.
pub const DEFAULT_WEIGHT: u32 = 256;

/// Identifies a domain (VM). `DomId(0)` is Dom0, the privileged controller
/// domain, by convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomId(pub u32);

impl DomId {
    /// The privileged controller domain.
    pub const DOM0: DomId = DomId(0);

    /// `true` for Dom0.
    pub fn is_dom0(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for DomId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dom{}", self.0)
    }
}

/// Identifies a physical CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PcpuId(pub u32);

impl fmt::Display for PcpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pcpu{}", self.0)
    }
}

/// Static metadata for a domain: its name, scheduling weight and cap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Domain {
    id: DomId,
    name: String,
    weight: u32,
    cap_percent: u32,
    nvcpus: u32,
}

impl Domain {
    pub(crate) fn new(id: DomId, name: &str, weight: u32, nvcpus: u32) -> Self {
        Domain {
            id,
            name: name.to_owned(),
            weight: weight.clamp(1, 65_535),
            cap_percent: 0,
            nvcpus,
        }
    }

    /// The domain's identifier.
    pub fn id(&self) -> DomId {
        self.id
    }

    /// Human-readable name ("web", "db", ...).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current scheduling weight (1..=65535, default 256).
    pub fn weight(&self) -> u32 {
        self.weight
    }

    pub(crate) fn set_weight(&mut self, weight: u32) {
        self.weight = weight.clamp(1, 65_535);
    }

    /// CPU cap as a percentage of one pCPU (0 = uncapped).
    pub fn cap_percent(&self) -> u32 {
        self.cap_percent
    }

    pub(crate) fn set_cap_percent(&mut self, cap: u32) {
        self.cap_percent = cap;
    }

    /// Number of virtual CPUs.
    pub fn nvcpus(&self) -> u32 {
        self.nvcpus
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dom0_identity() {
        assert!(DomId::DOM0.is_dom0());
        assert!(!DomId(3).is_dom0());
        assert_eq!(DomId(2).to_string(), "dom2");
        assert_eq!(PcpuId(1).to_string(), "pcpu1");
    }

    #[test]
    fn weight_clamped() {
        let mut d = Domain::new(DomId(1), "web", 0, 1);
        assert_eq!(d.weight(), 1);
        d.set_weight(100_000);
        assert_eq!(d.weight(), 65_535);
        d.set_weight(512);
        assert_eq!(d.weight(), 512);
    }

    #[test]
    fn metadata() {
        let d = Domain::new(DomId(4), "db", 256, 2);
        assert_eq!(d.id(), DomId(4));
        assert_eq!(d.name(), "db");
        assert_eq!(d.nvcpus(), 2);
        assert_eq!(d.cap_percent(), 0);
    }
}
