//! Per-domain run-state accounting: how much time each domain spent
//! running (user/system), waiting on a runqueue, or blocked.
//!
//! This is the data source for the paper's Figure 5 (per-VM CPU
//! utilization) and the user/system/iowait discussion in §3.1.

use crate::{BurstKind, DomId};
use simcore::Nanos;
use std::collections::BTreeMap;

/// Accumulated run-state time for one domain over an accounting window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DomainUsage {
    /// Time spent executing user-classified bursts.
    pub running_user: Nanos,
    /// Time spent executing system-classified bursts.
    pub running_system: Nanos,
    /// Time spent runnable but waiting for a pCPU (steal-time analogue).
    pub runnable: Nanos,
    /// Time spent blocked (no queued work).
    pub blocked: Nanos,
}

impl DomainUsage {
    /// Total CPU time consumed (user + system).
    pub fn running(&self) -> Nanos {
        self.running_user + self.running_system
    }
}

/// A consistent view of all domains' usage over a window.
#[derive(Debug, Clone, Default)]
pub struct RunstateSnapshot {
    per_dom: BTreeMap<DomId, DomainUsage>,
    window: Nanos,
}

impl RunstateSnapshot {
    /// Usage for one domain, if it exists.
    pub fn usage(&self, dom: DomId) -> Option<&DomainUsage> {
        self.per_dom.get(&dom)
    }

    /// The window length this snapshot covers.
    pub fn window(&self) -> Nanos {
        self.window
    }

    /// CPU consumption of `dom` as a percentage of one pCPU over the
    /// window (can exceed 100 for multi-VCPU domains).
    pub fn cpu_percent(&self, dom: DomId) -> f64 {
        if self.window.is_zero() {
            return 0.0;
        }
        self.per_dom
            .get(&dom)
            .map(|u| u.running() / self.window * 100.0)
            .unwrap_or(0.0)
    }

    /// User-mode share of `dom`'s CPU percentage.
    pub fn user_percent(&self, dom: DomId) -> f64 {
        if self.window.is_zero() {
            return 0.0;
        }
        self.per_dom
            .get(&dom)
            .map(|u| u.running_user / self.window * 100.0)
            .unwrap_or(0.0)
    }

    /// System-mode share of `dom`'s CPU percentage.
    pub fn system_percent(&self, dom: DomId) -> f64 {
        if self.window.is_zero() {
            return 0.0;
        }
        self.per_dom
            .get(&dom)
            .map(|u| u.running_system / self.window * 100.0)
            .unwrap_or(0.0)
    }

    /// Runnable-wait ("steal") share of `dom` as a percentage of the window.
    pub fn steal_percent(&self, dom: DomId) -> f64 {
        if self.window.is_zero() {
            return 0.0;
        }
        self.per_dom
            .get(&dom)
            .map(|u| u.runnable / self.window * 100.0)
            .unwrap_or(0.0)
    }

    /// Iterates over `(domain, usage)` in domain order.
    pub fn iter(&self) -> impl Iterator<Item = (DomId, &DomainUsage)> {
        self.per_dom.iter().map(|(d, u)| (*d, u))
    }

    /// Sum of all domains' CPU percentages (percent of one pCPU).
    pub fn total_cpu_percent(&self) -> f64 {
        self.per_dom
            .keys()
            .map(|d| self.cpu_percent(*d))
            .sum()
    }
}

/// Internal accumulator maintained by the scheduler.
#[derive(Debug, Clone, Default)]
pub(crate) struct UsageAccum {
    per_dom: BTreeMap<DomId, DomainUsage>,
    window_start: Nanos,
}

impl UsageAccum {
    pub(crate) fn register(&mut self, dom: DomId) {
        self.per_dom.entry(dom).or_default();
    }

    pub(crate) fn add_running(&mut self, dom: DomId, kind: BurstKind, dt: Nanos) {
        let u = self.per_dom.entry(dom).or_default();
        match kind {
            BurstKind::User => u.running_user += dt,
            BurstKind::System => u.running_system += dt,
        }
    }

    pub(crate) fn add_runnable(&mut self, dom: DomId, dt: Nanos) {
        self.per_dom.entry(dom).or_default().runnable += dt;
    }

    pub(crate) fn add_blocked(&mut self, dom: DomId, dt: Nanos) {
        self.per_dom.entry(dom).or_default().blocked += dt;
    }

    /// Snapshot the window ending at `now` without resetting.
    pub(crate) fn snapshot(&self, now: Nanos) -> RunstateSnapshot {
        RunstateSnapshot {
            per_dom: self.per_dom.clone(),
            window: now.saturating_sub(self.window_start),
        }
    }

    /// Clears all counters and starts a new window at `now`.
    pub(crate) fn reset(&mut self, now: Nanos) {
        for u in self.per_dom.values_mut() {
            *u = DomainUsage::default();
        }
        self.window_start = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_by_kind() {
        let mut a = UsageAccum::default();
        let d = DomId(1);
        a.add_running(d, BurstKind::User, Nanos::from_millis(10));
        a.add_running(d, BurstKind::System, Nanos::from_millis(5));
        a.add_runnable(d, Nanos::from_millis(20));
        let s = a.snapshot(Nanos::from_millis(100));
        let u = s.usage(d).unwrap();
        assert_eq!(u.running(), Nanos::from_millis(15));
        assert!((s.cpu_percent(d) - 15.0).abs() < 1e-9);
        assert!((s.user_percent(d) - 10.0).abs() < 1e-9);
        assert!((s.system_percent(d) - 5.0).abs() < 1e-9);
        assert!((s.steal_percent(d) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn reset_starts_new_window() {
        let mut a = UsageAccum::default();
        let d = DomId(1);
        a.add_running(d, BurstKind::User, Nanos::from_millis(10));
        a.reset(Nanos::from_millis(100));
        a.add_running(d, BurstKind::User, Nanos::from_millis(30));
        let s = a.snapshot(Nanos::from_millis(200));
        assert_eq!(s.window(), Nanos::from_millis(100));
        assert!((s.cpu_percent(d) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_domain_is_zero() {
        let s = RunstateSnapshot::default();
        assert_eq!(s.cpu_percent(DomId(9)), 0.0);
        assert!(s.usage(DomId(9)).is_none());
    }

    #[test]
    fn total_sums_domains() {
        let mut a = UsageAccum::default();
        a.add_running(DomId(1), BurstKind::User, Nanos::from_millis(50));
        a.add_running(DomId(2), BurstKind::User, Nanos::from_millis(100));
        let s = a.snapshot(Nanos::from_millis(100));
        assert!((s.total_cpu_percent() - 150.0).abs() < 1e-9);
    }
}
