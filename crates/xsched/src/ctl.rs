//! The `XenCtl` control-plane facade.
//!
//! The paper's x86 island exposes a user-space "XenCtrl interface" in Dom0
//! for tuning the credit scheduler (§2.2). [`XenCtl`] mirrors that: a
//! narrow, audited surface over the scheduler that the coordination layer
//! (and only it) uses to apply remote **Tune** and **Trigger** requests.

use crate::{CreditScheduler, DomId, RunstateSnapshot, SchedError};
use simcore::Nanos;

/// Control-plane handle over a [`CreditScheduler`].
///
/// Tune requests arrive as *relative* weight deltas; `XenCtl` translates
/// them into absolute weights, clamping to Xen's valid range, and counts
/// every applied adjustment for overhead reporting.
///
/// # Example
///
/// ```
/// use xsched::{CreditScheduler, SchedConfig, XenCtl};
///
/// let mut s = CreditScheduler::new(SchedConfig::new(2));
/// let web = s.create_domain("web", 256, 1);
/// let mut ctl = XenCtl::new(&mut s);
/// ctl.adjust_weight(web, 128)?;
/// assert_eq!(ctl.weight(web)?, 384);
/// # Ok::<(), xsched::SchedError>(())
/// ```
#[derive(Debug)]
pub struct XenCtl<'a> {
    sched: &'a mut CreditScheduler,
    tunes_applied: u64,
    triggers_applied: u64,
}

impl<'a> XenCtl<'a> {
    /// Wraps a scheduler in a control-plane handle.
    pub fn new(sched: &'a mut CreditScheduler) -> Self {
        XenCtl {
            sched,
            tunes_applied: 0,
            triggers_applied: 0,
        }
    }

    /// Applies a relative weight adjustment (the **Tune** mechanism),
    /// clamping the result to `[1, 65535]`.
    ///
    /// # Errors
    /// Returns [`SchedError::UnknownDomain`] if the domain does not exist.
    pub fn adjust_weight(&mut self, dom: DomId, delta: i64) -> Result<u32, SchedError> {
        let current = self.sched.weight(dom)? as i64;
        let new = (current + delta).clamp(1, 65_535) as u32;
        self.sched.set_weight(dom, new)?;
        self.tunes_applied += 1;
        Ok(new)
    }

    /// Sets an absolute weight.
    ///
    /// # Errors
    /// Returns [`SchedError::UnknownDomain`] if the domain does not exist.
    pub fn set_weight(&mut self, dom: DomId, weight: u32) -> Result<(), SchedError> {
        self.sched.set_weight(dom, weight)
    }

    /// Current weight of a domain.
    ///
    /// # Errors
    /// Returns [`SchedError::UnknownDomain`] if the domain does not exist.
    pub fn weight(&self, dom: DomId) -> Result<u32, SchedError> {
        self.sched.weight(dom)
    }

    /// Applies a **Trigger**: promote `dom` to the front of the runqueue
    /// with preemptive (BOOST) semantics, at time `now`.
    ///
    /// # Errors
    /// Returns [`SchedError::UnknownDomain`] if the domain does not exist.
    pub fn trigger_boost(&mut self, now: Nanos, dom: DomId) -> Result<(), SchedError> {
        self.sched.boost_front(now, dom)?;
        self.sched.grant_credit(dom, 100)?;
        self.triggers_applied += 1;
        Ok(())
    }

    /// Current run-state usage snapshot.
    pub fn usage(&mut self) -> RunstateSnapshot {
        self.sched.usage_snapshot()
    }

    /// Number of weight adjustments applied through this handle.
    pub fn tunes_applied(&self) -> u64 {
        self.tunes_applied
    }

    /// Number of trigger boosts applied through this handle.
    pub fn triggers_applied(&self) -> u64 {
        self.triggers_applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SchedConfig;

    #[test]
    fn adjust_weight_is_relative_and_clamped() {
        let mut s = CreditScheduler::new(SchedConfig::new(1));
        let d = s.create_domain("d", 256, 1);
        let mut ctl = XenCtl::new(&mut s);
        assert_eq!(ctl.adjust_weight(d, 100).unwrap(), 356);
        assert_eq!(ctl.adjust_weight(d, -400).unwrap(), 1);
        assert_eq!(ctl.adjust_weight(d, 100_000).unwrap(), 65_535);
        assert_eq!(ctl.tunes_applied(), 3);
    }

    #[test]
    fn trigger_counts() {
        let mut s = CreditScheduler::new(SchedConfig::new(1));
        let d = s.create_domain("d", 256, 1);
        let mut ctl = XenCtl::new(&mut s);
        ctl.trigger_boost(Nanos::ZERO, d).unwrap();
        assert_eq!(ctl.triggers_applied(), 1);
    }

    #[test]
    fn unknown_domain_propagates() {
        let mut s = CreditScheduler::new(SchedConfig::new(1));
        let mut ctl = XenCtl::new(&mut s);
        assert!(ctl.adjust_weight(DomId(9), 1).is_err());
        assert!(ctl.trigger_boost(Nanos::ZERO, DomId(9)).is_err());
    }
}
