//! The Xen credit scheduler, reimplemented as a discrete-event state
//! machine.
//!
//! ## Algorithm (matching Xen's `sched_credit.c` behaviour)
//!
//! * Time is divided into **ticks** (10 ms). Each tick debits the running
//!   VCPU `credits_per_tick` (100) credits and clears any BOOST priority it
//!   held. Every `ticks_per_acct` (3) ticks an **accounting** pass
//!   distributes `credits_per_tick × ticks_per_acct × ncpus` credits among
//!   *active* domains proportionally to weight.
//! * Priority is **UNDER** while credit ≥ 0 and **OVER** below; runqueues
//!   order BOOST → UNDER → OVER with FIFO inside each class.
//! * A VCPU woken by an event while UNDER enters **BOOST** and preempts
//!   lower-priority work ([`WakeMode::Boost`]); the paper's *Trigger*
//!   mechanism maps to [`CreditScheduler::boost_front`].
//! * Idle pCPUs steal the highest-priority runnable VCPU from peers
//!   (respecting affinity). Capped domains park when they exhaust their
//!   allowance.
//!
//! ## Driving the state machine
//!
//! Callers feed inputs ([`submit`](CreditScheduler::submit),
//! [`boost_front`](CreditScheduler::boost_front), weight changes) at
//! non-decreasing simulated times and must invoke
//! [`on_timer`](CreditScheduler::on_timer) whenever
//! [`next_event_time`](CreditScheduler::next_event_time) falls due. Every
//! input method returns the [`SchedEvent`]s (burst completions) produced
//! while catching up to the call time, so no completion is ever lost;
//! `on_timer` appends its completions to a caller-owned scratch buffer so
//! the steady-state dispatch loop performs no allocation. The horizon
//! returned by `next_event_time` is memoized behind a dirty flag and
//! invalidated only by state-mutating calls.

use crate::runstate::UsageAccum;
use crate::{Burst, BurstKind, DomId, Domain, PcpuId, RunstateSnapshot, SchedError};
use simcore::Nanos;
use std::cell::Cell;
use std::collections::{BTreeMap, VecDeque};

/// Lower bound on accumulated credit debt. Deliberately generous: a tight
/// floor (e.g. −300) lets saturated VCPUs burn CPU "for free" once pinned
/// to the floor, collapsing weight-proportional sharing into round-robin.
const CREDIT_FLOOR: i32 = -30_000;

/// Scheduler tuning parameters. [`SchedConfig::new`] gives Xen's defaults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedConfig {
    /// Number of physical CPUs.
    pub ncpus: u32,
    /// Tick period (credit debit granularity). Xen: 10 ms.
    pub tick: Nanos,
    /// Ticks between accounting passes. Xen: 3 (30 ms).
    pub ticks_per_acct: u32,
    /// Credits debited from a running VCPU per tick. Xen: 100.
    pub credits_per_tick: i32,
    /// Maximum uninterrupted slice before runqueue rotation. Xen: 30 ms.
    pub slice: Nanos,
    /// Credit clamp (±). Xen caps accumulation around one accounting
    /// period's worth.
    pub credit_cap: i32,
    /// Whether event-channel wakes grant BOOST (Xen's default on).
    pub boost_on_wake: bool,
    /// Credit accounting mode. `true` (default) debits each VCPU for the
    /// CPU time it actually consumed between ticks; `false` reproduces
    /// Xen's sampling behaviour — the full tick debit lands on whoever is
    /// running at the tick instant, which deterministic sub-tick workloads
    /// can dodge entirely (the classic credit-scheduler vulnerability).
    pub precise_accounting: bool,
}

impl SchedConfig {
    /// Xen defaults on `ncpus` physical CPUs.
    ///
    /// # Panics
    /// Panics if `ncpus == 0`.
    pub fn new(ncpus: u32) -> Self {
        assert!(ncpus > 0, "need at least one pcpu");
        SchedConfig {
            ncpus,
            tick: Nanos::from_millis(10),
            ticks_per_acct: 3,
            credits_per_tick: 100,
            slice: Nanos::from_millis(30),
            credit_cap: 300,
            boost_on_wake: true,
            precise_accounting: true,
        }
    }

    fn credits_per_acct(&self) -> i32 {
        self.credits_per_tick * self.ticks_per_acct as i32
    }
}

/// Runqueue priority classes, highest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Transient priority for event-woken or triggered VCPUs.
    Boost,
    /// Credit remaining (≥ 0).
    Under,
    /// Credit exhausted (< 0).
    Over,
}

impl Priority {
    fn rank(self) -> u8 {
        match self {
            Priority::Boost => 0,
            Priority::Under => 1,
            Priority::Over => 2,
        }
    }
}

/// Where a VCPU currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunState {
    /// Executing on a pCPU.
    Running,
    /// Waiting on a runqueue.
    Runnable,
    /// No queued work.
    Blocked,
    /// Cap exhausted; ineligible until accounting refills credit.
    Parked,
}

/// How a work submission wakes a blocked VCPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeMode {
    /// Plain wake: priority from credit (UNDER/OVER).
    Plain,
    /// Event-channel wake: BOOST if credit ≥ 0 (Xen I/O boost).
    Boost,
}

/// Observable scheduler outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedEvent {
    /// A burst finished executing.
    Completed {
        /// Domain that ran the burst.
        dom: DomId,
        /// Caller-supplied correlation tag.
        tag: u64,
        /// Burst classification.
        kind: BurstKind,
        /// Completion time.
        at: Nanos,
    },
}

#[derive(Debug)]
struct Vcpu {
    dom: DomId,
    credit: i32,
    prio: Priority,
    state: RunState,
    state_since: Nanos,
    work: VecDeque<Burst>,
    affinity: Option<Vec<PcpuId>>,
    pending_boost: bool,
    last_pcpu: PcpuId,
    consumed_in_period: Nanos,
    consumed_since_tick: Nanos,
    /// Trigger-granted BOOST persists until this instant (survives ticks,
    /// unlike wake boosts).
    boost_until: Nanos,
}

#[derive(Debug)]
struct Pcpu {
    running: Option<usize>,
    slice_end: Nanos,
    last_charge: Nanos,
    runq: VecDeque<usize>,
}

/// Cached event horizon: recomputing it scans every VCPU and pCPU, so the
/// value is memoized between state mutations.
#[derive(Debug, Clone, Copy)]
enum HorizonCache {
    /// State changed since the last computation.
    Dirty,
    /// Memoized result of the last from-scratch computation.
    Clean(Option<Nanos>),
}

/// The credit scheduler island. See the module-level documentation for the
/// algorithm and driving contract.
#[derive(Debug)]
pub struct CreditScheduler {
    cfg: SchedConfig,
    domains: BTreeMap<DomId, Domain>,
    dom_vcpus: BTreeMap<DomId, Vec<usize>>,
    vcpus: Vec<Vcpu>,
    pcpus: Vec<Pcpu>,
    next_dom_id: u32,
    next_tick: Nanos,
    ticks_until_acct: u32,
    now: Nanos,
    usage: UsageAccum,
    ctx_switches: u64,
    migrations: u64,
    preemptions: u64,
    horizon: Cell<HorizonCache>,
    /// Execution speed as an exact rational `num/den` of nominal (DVFS).
    /// At `num == den` every conversion below is the identity, so the
    /// nominal path is bit-identical to a scheduler without the feature.
    speed_num: u64,
    speed_den: u64,
}

impl CreditScheduler {
    /// Creates a scheduler over `cfg.ncpus` idle pCPUs at time zero.
    pub fn new(cfg: SchedConfig) -> Self {
        let pcpus = (0..cfg.ncpus)
            .map(|_| Pcpu {
                running: None,
                slice_end: Nanos::MAX,
                last_charge: Nanos::ZERO,
                runq: VecDeque::new(),
            })
            .collect();
        let next_tick = cfg.tick;
        let ticks_until_acct = cfg.ticks_per_acct;
        CreditScheduler {
            cfg,
            domains: BTreeMap::new(),
            dom_vcpus: BTreeMap::new(),
            vcpus: Vec::new(),
            pcpus,
            next_dom_id: 0,
            next_tick,
            ticks_until_acct,
            now: Nanos::ZERO,
            usage: UsageAccum::default(),
            ctx_switches: 0,
            migrations: 0,
            preemptions: 0,
            horizon: Cell::new(HorizonCache::Dirty),
            speed_num: 1,
            speed_den: 1,
        }
    }

    /// Sets the execution speed to the exact rational `num / den` of
    /// nominal (the DVFS frequency knob): burst demands are expressed in
    /// nominal-speed CPU time, so at speed `num/den` a burst of demand `d`
    /// occupies `d·den/num` of wall-clock pCPU time. Credits, caps and
    /// usage accounting stay in wall time (they meter pCPU *occupancy*,
    /// which frequency scaling does not change).
    ///
    /// # Panics
    /// Panics if `num == 0` or `den == 0`.
    pub fn set_speed(&mut self, num: u64, den: u64) {
        assert!(num > 0 && den > 0, "speed must be a positive rational");
        if (num, den) == (self.speed_num, self.speed_den) {
            return;
        }
        self.speed_num = num;
        self.speed_den = den;
        self.dirty_horizon();
    }

    /// The current execution speed as `(numerator, denominator)`.
    pub fn speed(&self) -> (u64, u64) {
        (self.speed_num, self.speed_den)
    }

    /// Wall-clock time needed to execute `work` nominal-speed demand at
    /// the current speed (identity at nominal; ceiling otherwise so the
    /// completion horizon never undershoots).
    fn wall_for(&self, work: Nanos) -> Nanos {
        if self.speed_num == self.speed_den {
            return work;
        }
        let n = work.as_nanos();
        Nanos((n * self.speed_den).div_ceil(self.speed_num))
    }

    /// Nominal-speed demand executed by `wall` wall-clock time at the
    /// current speed (identity at nominal; floor otherwise).
    fn work_for(&self, wall: Nanos) -> Nanos {
        if self.speed_num == self.speed_den {
            return wall;
        }
        Nanos(wall.as_nanos() * self.speed_num / self.speed_den)
    }

    // ------------------------------------------------------------------
    // Domain management
    // ------------------------------------------------------------------

    /// Creates a domain with `nvcpus` VCPUs and the given weight. The first
    /// domain created is Dom0 (`DomId(0)`).
    ///
    /// # Panics
    /// Panics if `nvcpus == 0`.
    pub fn create_domain(&mut self, name: &str, weight: u32, nvcpus: u32) -> DomId {
        assert!(nvcpus > 0, "domain must have at least one vcpu");
        let id = DomId(self.next_dom_id);
        self.next_dom_id += 1;
        self.domains.insert(id, Domain::new(id, name, weight, nvcpus));
        let mut idxs = Vec::new();
        for _ in 0..nvcpus {
            let idx = self.vcpus.len();
            self.vcpus.push(Vcpu {
                dom: id,
                credit: 0,
                prio: Priority::Under,
                state: RunState::Blocked,
                state_since: self.now,
                work: VecDeque::new(),
                affinity: None,
                pending_boost: false,
                last_pcpu: PcpuId(idx as u32 % self.cfg.ncpus),
                consumed_in_period: Nanos::ZERO,
                consumed_since_tick: Nanos::ZERO,
                boost_until: Nanos::ZERO,
            });
            idxs.push(idx);
        }
        self.dom_vcpus.insert(id, idxs);
        self.usage.register(id);
        self.dirty_horizon();
        id
    }

    /// Pins all VCPUs of `dom` to the given pCPUs.
    ///
    /// # Errors
    /// Returns [`SchedError::UnknownDomain`] or [`SchedError::BadAffinity`].
    pub fn pin_domain(&mut self, dom: DomId, pcpus: &[PcpuId]) -> Result<(), SchedError> {
        for p in pcpus {
            if p.0 >= self.cfg.ncpus {
                return Err(SchedError::BadAffinity(p.0));
            }
        }
        let idxs = self
            .dom_vcpus
            .get(&dom)
            .ok_or(SchedError::UnknownDomain(dom))?
            .clone();
        for i in idxs {
            self.vcpus[i].affinity = if pcpus.is_empty() {
                None
            } else {
                Some(pcpus.to_vec())
            };
        }
        Ok(())
    }

    /// Sets a domain's scheduling weight (takes full effect at the next
    /// accounting pass).
    ///
    /// # Errors
    /// Returns [`SchedError::UnknownDomain`] if the domain does not exist.
    pub fn set_weight(&mut self, dom: DomId, weight: u32) -> Result<(), SchedError> {
        self.domains
            .get_mut(&dom)
            .ok_or(SchedError::UnknownDomain(dom))?
            .set_weight(weight);
        Ok(())
    }

    /// Current weight of a domain.
    ///
    /// # Errors
    /// Returns [`SchedError::UnknownDomain`] if the domain does not exist.
    pub fn weight(&self, dom: DomId) -> Result<u32, SchedError> {
        self.domains
            .get(&dom)
            .map(|d| d.weight())
            .ok_or(SchedError::UnknownDomain(dom))
    }

    /// Sets a domain's CPU cap as a percentage of one pCPU (0 = uncapped).
    ///
    /// # Errors
    /// Returns [`SchedError::UnknownDomain`] if the domain does not exist.
    pub fn set_cap(&mut self, dom: DomId, cap_percent: u32) -> Result<(), SchedError> {
        self.domains
            .get_mut(&dom)
            .ok_or(SchedError::UnknownDomain(dom))?
            .set_cap_percent(cap_percent);
        Ok(())
    }

    /// Domain metadata, if it exists.
    pub fn domain(&self, dom: DomId) -> Option<&Domain> {
        self.domains.get(&dom)
    }

    /// All domains in id order.
    pub fn domains(&self) -> impl Iterator<Item = &Domain> {
        self.domains.values()
    }

    // ------------------------------------------------------------------
    // Work submission and coordination entry points
    // ------------------------------------------------------------------

    /// Queues a CPU burst on the least-loaded VCPU of `dom`, waking it if
    /// blocked. Returns any burst completions that fell due while catching
    /// up to `now`.
    ///
    /// # Errors
    /// Returns [`SchedError::UnknownDomain`] if the domain does not exist.
    pub fn submit(
        &mut self,
        now: Nanos,
        dom: DomId,
        burst: Burst,
        wake: WakeMode,
    ) -> Result<Vec<SchedEvent>, SchedError> {
        let mut out = Vec::new();
        self.advance(now, &mut out);
        let vi = self.pick_vcpu_for_work(dom)?;
        self.vcpus[vi].work.push_back(burst);
        if self.vcpus[vi].state == RunState::Blocked {
            self.wake_vcpu(vi, wake, false);
        }
        self.reschedule();
        Ok(out)
    }

    /// The paper's **Trigger** landing pad: requests that `dom` be given
    /// CPU as soon as possible. Runnable VCPUs are promoted to the front of
    /// the BOOST class and preempt lower-priority work; blocked VCPUs are
    /// marked so their next wake boosts regardless of credit.
    ///
    /// # Errors
    /// Returns [`SchedError::UnknownDomain`] if the domain does not exist.
    pub fn boost_front(&mut self, now: Nanos, dom: DomId) -> Result<Vec<SchedEvent>, SchedError> {
        let mut out = Vec::new();
        self.advance(now, &mut out);
        let idxs = self
            .dom_vcpus
            .get(&dom)
            .ok_or(SchedError::UnknownDomain(dom))?
            .clone();
        for vi in idxs {
            // The preemptive grant holds for one scheduling slice: the
            // triggered VCPU keeps BOOST across ticks until it expires.
            self.vcpus[vi].boost_until = now + self.cfg.slice;
            match self.vcpus[vi].state {
                RunState::Runnable => {
                    self.remove_from_runq(vi);
                    self.vcpus[vi].prio = Priority::Boost;
                    let p = self.choose_pcpu(vi);
                    self.insert_runq(p, vi, true);
                }
                RunState::Blocked => self.vcpus[vi].pending_boost = true,
                RunState::Running => self.vcpus[vi].prio = Priority::Boost,
                RunState::Parked => {}
            }
        }
        self.reschedule();
        Ok(out)
    }

    /// Grants immediate scheduling credit to `dom` (split across its
    /// VCPUs), clamped at the accumulation cap. This is the "credit
    /// adjustment" half of a Trigger's translation on the Xen island
    /// (§3.3 of the paper); the runqueue promotion is
    /// [`boost_front`](Self::boost_front).
    ///
    /// # Errors
    /// Returns [`SchedError::UnknownDomain`] if the domain does not exist.
    pub fn grant_credit(&mut self, dom: DomId, credits: i32) -> Result<(), SchedError> {
        let idxs = self
            .dom_vcpus
            .get(&dom)
            .ok_or(SchedError::UnknownDomain(dom))?
            .clone();
        let per = credits / idxs.len().max(1) as i32;
        for vi in idxs {
            let v = &mut self.vcpus[vi];
            v.credit = (v.credit + per).clamp(CREDIT_FLOOR, self.cfg.credit_cap);
            if v.prio != Priority::Boost && v.credit >= 0 {
                v.prio = Priority::Under;
            }
        }
        self.resort_runqueues();
        self.reschedule();
        Ok(())
    }

    /// Event-channel style notification: wakes (with BOOST eligibility) any
    /// blocked VCPU of `dom` that has queued work.
    ///
    /// # Errors
    /// Returns [`SchedError::UnknownDomain`] if the domain does not exist.
    pub fn notify(&mut self, now: Nanos, dom: DomId) -> Result<Vec<SchedEvent>, SchedError> {
        let mut out = Vec::new();
        self.advance(now, &mut out);
        let idxs = self
            .dom_vcpus
            .get(&dom)
            .ok_or(SchedError::UnknownDomain(dom))?
            .clone();
        for vi in idxs {
            if self.vcpus[vi].state == RunState::Blocked && !self.vcpus[vi].work.is_empty() {
                self.wake_vcpu(vi, WakeMode::Boost, false);
            }
        }
        self.reschedule();
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Event-loop contract
    // ------------------------------------------------------------------

    /// The next instant at which the scheduler needs to act (tick, slice
    /// expiry or burst completion), or `None` when fully idle.
    ///
    /// The answer is cached behind a dirty flag: state-mutating calls
    /// invalidate it, and repeated peeks between mutations (the master
    /// loop's steady state) return the memoized value without rescanning
    /// VCPUs and pCPUs.
    pub fn next_event_time(&self) -> Option<Nanos> {
        if let HorizonCache::Clean(t) = self.horizon.get() {
            return t;
        }
        let t = self.compute_horizon();
        self.horizon.set(HorizonCache::Clean(t));
        t
    }

    /// From-scratch horizon scan over all VCPUs and pCPUs. The cached
    /// [`next_event_time`](Self::next_event_time) must always agree with
    /// this (asserted by the randomized-operations test).
    fn compute_horizon(&self) -> Option<Nanos> {
        let mut next: Option<Nanos> = None;
        let mut fold = |t: Nanos| {
            next = Some(next.map_or(t, |n: Nanos| n.min(t)));
        };
        let any_active = self.vcpus.iter().any(|v| match v.state {
            RunState::Running | RunState::Runnable => true,
            RunState::Parked => !v.work.is_empty(),
            RunState::Blocked => false,
        });
        if any_active {
            fold(self.next_tick);
        }
        for p in &self.pcpus {
            if let Some(vi) = p.running {
                fold(p.slice_end);
                if let Some(front) = self.vcpus[vi].work.front() {
                    fold(p.last_charge + self.wall_for(front.demand));
                }
            }
        }
        next
    }

    /// Invalidates the memoized event horizon. Called from the internal
    /// choke points every mutation path runs through (`charge_to`,
    /// `handle_boundaries`, `reschedule`, domain creation).
    fn dirty_horizon(&self) {
        self.horizon.set(HorizonCache::Dirty);
    }

    /// Advances the scheduler to `now`, processing every internal boundary
    /// (ticks, accounting, slice rotation, completions) on the way,
    /// appending the completions produced to `out` (which the caller owns
    /// and typically reuses across calls, so steady-state dispatch does not
    /// allocate).
    pub fn on_timer(&mut self, now: Nanos, out: &mut Vec<SchedEvent>) {
        // `advance` reports whether its boundary loop already rescheduled
        // at exactly `now` with nothing mutated since; the trailing
        // reschedule (and the horizon recompute it forces) is redundant
        // then — the common case when driven at the cached horizon.
        if !self.advance(now, out) {
            self.reschedule();
        }
    }

    /// Last time the scheduler state was synchronised.
    pub fn now(&self) -> Nanos {
        self.now
    }

    // ------------------------------------------------------------------
    // Instrumentation
    // ------------------------------------------------------------------

    /// Run-state usage snapshot for the window since the last
    /// [`reset_usage`](Self::reset_usage).
    pub fn usage_snapshot(&mut self) -> RunstateSnapshot {
        self.flush_states();
        self.usage.snapshot(self.now)
    }

    /// Starts a fresh usage window at the current time.
    pub fn reset_usage(&mut self) {
        self.flush_states();
        self.usage.reset(self.now);
    }

    /// Total context switches since creation.
    pub fn context_switches(&self) -> u64 {
        self.ctx_switches
    }

    /// Total cross-pCPU migrations (steals) since creation.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Total preemptions since creation.
    pub fn preemptions(&self) -> u64 {
        self.preemptions
    }

    /// Current credit of a domain's first VCPU (diagnostics).
    pub fn credit(&self, dom: DomId) -> Option<i32> {
        self.dom_vcpus
            .get(&dom)
            .and_then(|v| v.first())
            .map(|&i| self.vcpus[i].credit)
    }

    /// Current priority of a domain's first VCPU.
    pub fn priority(&self, dom: DomId) -> Option<Priority> {
        self.dom_vcpus
            .get(&dom)
            .and_then(|v| v.first())
            .map(|&i| self.vcpus[i].prio)
    }

    /// Credits of every VCPU of a domain (diagnostics).
    pub fn credits_all(&self, dom: DomId) -> Vec<i32> {
        self.dom_vcpus
            .get(&dom)
            .map(|idxs| idxs.iter().map(|&i| self.vcpus[i].credit).collect())
            .unwrap_or_default()
    }

    /// Current run state of a domain's first VCPU.
    pub fn run_state(&self, dom: DomId) -> Option<RunState> {
        self.dom_vcpus
            .get(&dom)
            .and_then(|v| v.first())
            .map(|&i| self.vcpus[i].state)
    }

    /// Queued (unstarted + in-progress) work of a domain across VCPUs.
    pub fn backlog(&self, dom: DomId) -> Nanos {
        self.dom_vcpus
            .get(&dom)
            .map(|idxs| {
                idxs.iter()
                    .flat_map(|&i| self.vcpus[i].work.iter())
                    .map(|b| b.demand)
                    .sum()
            })
            .unwrap_or(Nanos::ZERO)
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Processes all internal boundaries up to `now`, then charges partial
    /// progress to `now`. Returns `true` when the state was left exactly as
    /// the boundary loop's own `reschedule()` at `now` produced it (no
    /// partial charge followed), so the caller may skip its trailing
    /// reschedule.
    fn advance(&mut self, now: Nanos, out: &mut Vec<SchedEvent>) -> bool {
        debug_assert!(now >= self.now, "scheduler time went backwards");
        let mut rescheduled_at_now = false;
        while let Some(t) = self.next_event_time() {
            if t > now {
                break;
            }
            self.charge_to(t, out);
            self.now = t;
            self.handle_boundaries(t);
            self.reschedule();
            rescheduled_at_now = t == now;
        }
        if now > self.now {
            // `self.now` is only ever set right after charging every pCPU
            // to that same instant, so `now == self.now` means this charge
            // would be a no-op — skipping it preserves the clean horizon
            // computed by the loop's exit test.
            self.charge_to(now, out);
            self.now = now;
            rescheduled_at_now = false;
        }
        if self.next_tick <= now {
            // Ticks were skipped while the platform was fully idle (they
            // would have been no-ops); realign to the tick grid.
            let tick = self.cfg.tick.as_nanos();
            self.next_tick = Nanos((now.as_nanos() / tick + 1) * tick);
            self.ticks_until_acct = self.cfg.ticks_per_acct;
            self.dirty_horizon();
        }
        rescheduled_at_now
    }

    /// Charges running VCPUs for the time since their last charge, emitting
    /// burst completions and blocking VCPUs that run out of work.
    fn charge_to(&mut self, t: Nanos, out: &mut Vec<SchedEvent>) {
        self.dirty_horizon();
        for pi in 0..self.pcpus.len() {
            let Some(vi) = self.pcpus[pi].running else {
                self.pcpus[pi].last_charge = t;
                continue;
            };
            let mut elapsed = t.saturating_sub(self.pcpus[pi].last_charge);
            self.pcpus[pi].last_charge = t;
            let dom = self.vcpus[vi].dom;
            while !elapsed.is_zero() {
                let wall_needed = match self.vcpus[vi].work.front() {
                    Some(front) => self.wall_for(front.demand),
                    None => {
                        debug_assert!(false, "running vcpu with no work");
                        break;
                    }
                };
                // `take` is wall-clock pCPU occupancy; the front burst's
                // demand depletes in nominal-speed work units. The ceil in
                // `wall_for` guarantees a burst whose horizon fell due has
                // executed its full demand by then.
                let (take, work) = if wall_needed <= elapsed {
                    (wall_needed, None)
                } else {
                    (elapsed, Some(self.work_for(elapsed)))
                };
                let front = self.vcpus[vi].work.front_mut().expect("front exists");
                front.demand -= work.unwrap_or(front.demand).min(front.demand);
                let (kind, finished) = (front.kind, front.demand.is_zero());
                elapsed -= take;
                self.usage.add_running(dom, kind, take);
                self.vcpus[vi].consumed_in_period += take;
                self.vcpus[vi].consumed_since_tick += take;
                if finished {
                    let done = self.vcpus[vi].work.pop_front().expect("front exists");
                    out.push(SchedEvent::Completed {
                        dom,
                        tag: done.tag,
                        kind: done.kind,
                        at: t,
                    });
                }
            }
            // Zero-demand bursts complete immediately even with no elapsed time.
            while self
                .vcpus[vi]
                .work
                .front()
                .is_some_and(|b| b.demand.is_zero())
            {
                let done = self.vcpus[vi].work.pop_front().expect("front exists");
                out.push(SchedEvent::Completed {
                    dom,
                    tag: done.tag,
                    kind: done.kind,
                    at: t,
                });
            }
            if self.vcpus[vi].work.is_empty() {
                self.pcpus[pi].running = None;
                self.set_state(vi, RunState::Blocked, t);
                self.ctx_switches += 1;
            }
        }
    }

    /// Handles tick / accounting / slice boundaries due exactly at `t`.
    /// The caller must `reschedule()` afterwards (which starts with the
    /// preemption scan this used to duplicate back-to-back).
    fn handle_boundaries(&mut self, t: Nanos) {
        self.dirty_horizon();
        while self.next_tick <= t {
            self.do_tick();
            self.next_tick += self.cfg.tick;
        }
        for pi in 0..self.pcpus.len() {
            if self.pcpus[pi].running.is_some() && self.pcpus[pi].slice_end <= t {
                let vi = self.pcpus[pi].running.take().expect("running checked");
                self.set_state(vi, RunState::Runnable, t);
                self.insert_runq(PcpuId(pi as u32), vi, false);
                self.ctx_switches += 1;
            }
        }
    }

    fn do_tick(&mut self) {
        if self.cfg.precise_accounting {
            // Debit every VCPU for what it actually consumed this tick and
            // drop the transient BOOST of anything that ran.
            let now = self.now;
            for v in &mut self.vcpus {
                let consumed = std::mem::take(&mut v.consumed_since_tick);
                if consumed.is_zero() {
                    continue;
                }
                let debit = (consumed.as_nanos() as i64 * self.cfg.credits_per_tick as i64
                    / self.cfg.tick.as_nanos().max(1) as i64) as i32;
                v.credit = (v.credit - debit).max(CREDIT_FLOOR);
                v.prio = if now < v.boost_until {
                    Priority::Boost
                } else if v.credit >= 0 {
                    Priority::Under
                } else {
                    Priority::Over
                };
            }
        } else {
            // Xen's sampling: the whole debit lands on whoever is running.
            let now = self.now;
            for pi in 0..self.pcpus.len() {
                if let Some(vi) = self.pcpus[pi].running {
                    let v = &mut self.vcpus[vi];
                    v.credit -= self.cfg.credits_per_tick;
                    v.credit = v.credit.max(CREDIT_FLOOR);
                    v.prio = if now < v.boost_until {
                        Priority::Boost
                    } else if v.credit >= 0 {
                        Priority::Under
                    } else {
                        Priority::Over
                    };
                }
            }
        }
        self.ticks_until_acct -= 1;
        if self.ticks_until_acct == 0 {
            self.ticks_until_acct = self.cfg.ticks_per_acct;
            self.do_accounting();
        }
    }

    fn do_accounting(&mut self) {
        // Identify active domains: any VCPU that is not blocked, or that
        // consumed CPU during the period.
        let mut active_weight: u64 = 0;
        let mut active_doms: Vec<(DomId, u32, Vec<usize>)> = Vec::new();
        for (dom, idxs) in &self.dom_vcpus {
            let active: Vec<usize> = idxs
                .iter()
                .copied()
                .filter(|&i| {
                    let v = &self.vcpus[i];
                    v.state != RunState::Blocked || !v.consumed_in_period.is_zero()
                })
                .collect();
            if !active.is_empty() {
                let w = self.domains[dom].weight();
                active_weight += w as u64;
                active_doms.push((*dom, w, active));
            }
        }
        if active_weight > 0 {
            let pool = self.cfg.credits_per_acct() as i64 * self.cfg.ncpus as i64;
            for (dom, w, idxs) in &active_doms {
                // Round the share to the nearest credit rather than
                // truncating: truncation makes a domain burning exactly
                // its entitlement drift OVER one credit per period.
                let mut share =
                    (pool * *w as i64 + active_weight as i64 / 2) / active_weight as i64;
                let cap = self.domains[dom].cap_percent();
                if cap > 0 {
                    let max = self.cfg.credits_per_acct() as i64 * cap as i64 / 100;
                    share = share.min(max);
                }
                let per_vcpu = (share / idxs.len() as i64) as i32;
                for &i in idxs {
                    let v = &mut self.vcpus[i];
                    v.credit = (v.credit + per_vcpu).clamp(CREDIT_FLOOR, self.cfg.credit_cap);
                }
            }
        }
        // Refresh priorities (BOOST survives accounting; it is cleared by
        // the tick that debits the boosted VCPU), park/unpark capped
        // domains, reset period counters.
        for i in 0..self.vcpus.len() {
            let dom = self.vcpus[i].dom;
            let capped = self.domains[&dom].cap_percent() > 0;
            let now = self.now;
            let v = &mut self.vcpus[i];
            v.consumed_in_period = Nanos::ZERO;
            if now < v.boost_until {
                v.prio = Priority::Boost;
            } else if v.prio != Priority::Boost {
                v.prio = if v.credit >= 0 {
                    Priority::Under
                } else {
                    Priority::Over
                };
            }
            match v.state {
                RunState::Parked => {
                    if v.credit > 0 {
                        let has_work = !v.work.is_empty();
                        let now = self.now;
                        if has_work {
                            self.set_state(i, RunState::Runnable, now);
                            let p = self.choose_pcpu(i);
                            self.insert_runq(p, i, false);
                        } else {
                            self.set_state(i, RunState::Blocked, now);
                        }
                    }
                }
                RunState::Runnable | RunState::Running => {
                    if capped && v.credit <= -self.cfg.credit_cap {
                        let now = self.now;
                        if v.state == RunState::Runnable {
                            self.remove_from_runq(i);
                        } else {
                            for p in &mut self.pcpus {
                                if p.running == Some(i) {
                                    p.running = None;
                                }
                            }
                            self.ctx_switches += 1;
                        }
                        self.set_state(i, RunState::Parked, now);
                    }
                }
                RunState::Blocked => {}
            }
        }
        // Runqueue order may be stale after priority changes.
        self.resort_runqueues();
    }

    fn resort_runqueues(&mut self) {
        for pi in 0..self.pcpus.len() {
            let mut q: Vec<usize> = self.pcpus[pi].runq.drain(..).collect();
            q.sort_by_key(|&vi| self.vcpus[vi].prio.rank());
            self.pcpus[pi].runq = q.into();
        }
    }

    /// Preempts running VCPUs whose local runqueue head outranks them.
    fn preempt_where_needed(&mut self, t: Nanos) {
        for pi in 0..self.pcpus.len() {
            let Some(vi) = self.pcpus[pi].running else { continue };
            let Some(&head) = self.pcpus[pi].runq.front() else {
                continue;
            };
            if self.vcpus[head].prio.rank() < self.vcpus[vi].prio.rank() {
                self.pcpus[pi].running = None;
                self.set_state(vi, RunState::Runnable, t);
                self.insert_runq(PcpuId(pi as u32), vi, false);
                self.preemptions += 1;
                self.ctx_switches += 1;
            }
        }
    }

    /// Fills every idle pCPU from its runqueue or by stealing.
    fn reschedule(&mut self) {
        self.dirty_horizon();
        let t = self.now;
        self.preempt_where_needed(t);
        for pi in 0..self.pcpus.len() {
            if self.pcpus[pi].running.is_some() {
                continue;
            }
            let next = self.pcpus[pi].runq.pop_front().or_else(|| self.steal(pi));
            if let Some(vi) = next {
                self.pcpus[pi].running = Some(vi);
                self.pcpus[pi].last_charge = t;
                self.pcpus[pi].slice_end = t + self.cfg.slice;
                self.set_state(vi, RunState::Running, t);
                self.vcpus[vi].last_pcpu = PcpuId(pi as u32);
                self.ctx_switches += 1;
            }
        }
        self.rebalance(t);
    }

    /// Global priority balancing (Xen's `csched_load_balance`): a queued
    /// VCPU never waits on one pCPU while a lower-priority VCPU runs on
    /// another pCPU it could use. Repeatedly migrates the highest-priority
    /// waiter over the lowest-priority runner until no inversion remains.
    fn rebalance(&mut self, t: Nanos) {
        loop {
            // Highest-priority waiting vcpu (queues are rank-sorted, so
            // heads suffice) and the lowest-priority runner it may preempt.
            let mut best: Option<(u8, usize, usize)> = None; // (rank, pcpu, vcpu)
            for (pi, p) in self.pcpus.iter().enumerate() {
                if let Some(&head) = p.runq.front() {
                    let rank = self.vcpus[head].prio.rank();
                    if best.is_none_or(|(r, _, _)| rank < r) {
                        best = Some((rank, pi, head));
                    }
                }
            }
            let Some((wait_rank, from_pi, vi)) = best else { return };
            let mut victim: Option<(u8, usize)> = None; // (rank, pcpu)
            for (pi, p) in self.pcpus.iter().enumerate() {
                let Some(run) = p.running else { continue };
                if !self.allowed_on(vi, PcpuId(pi as u32)) {
                    continue;
                }
                let rank = self.vcpus[run].prio.rank();
                if rank > wait_rank && victim.is_none_or(|(r, _)| rank > r) {
                    victim = Some((rank, pi));
                }
            }
            let Some((_, to_pi)) = victim else { return };
            // Demote the runner, migrate the waiter in.
            let out = self.pcpus[to_pi].running.take().expect("victim runs");
            self.set_state(out, RunState::Runnable, t);
            self.insert_runq(PcpuId(to_pi as u32), out, false);
            let pos = self.pcpus[from_pi]
                .runq
                .iter()
                .position(|&o| o == vi)
                .expect("waiter queued");
            self.pcpus[from_pi].runq.remove(pos);
            self.pcpus[to_pi].running = Some(vi);
            self.pcpus[to_pi].last_charge = t;
            self.pcpus[to_pi].slice_end = t + self.cfg.slice;
            self.set_state(vi, RunState::Running, t);
            if self.vcpus[vi].last_pcpu != PcpuId(to_pi as u32) {
                self.migrations += 1;
            }
            self.vcpus[vi].last_pcpu = PcpuId(to_pi as u32);
            self.preemptions += 1;
            self.ctx_switches += 1;
        }
    }

    /// Takes the highest-priority runnable VCPU allowed on `pi` from the
    /// longest-suffering peer runqueue.
    fn steal(&mut self, pi: usize) -> Option<usize> {
        let target = PcpuId(pi as u32);
        let mut best: Option<(u8, usize, usize)> = None; // (rank, owner_pcpu, pos)
        for (opi, p) in self.pcpus.iter().enumerate() {
            if opi == pi {
                continue;
            }
            for (pos, &vi) in p.runq.iter().enumerate() {
                if !self.allowed_on(vi, target) {
                    continue;
                }
                let rank = self.vcpus[vi].prio.rank();
                if best.is_none_or(|(brank, _, _)| rank < brank) {
                    best = Some((rank, opi, pos));
                }
                break; // runq is priority-ordered; first eligible is best here
            }
        }
        let (_, opi, pos) = best?;
        self.migrations += 1;
        self.pcpus[opi].runq.remove(pos)
    }

    fn allowed_on(&self, vi: usize, p: PcpuId) -> bool {
        match &self.vcpus[vi].affinity {
            None => true,
            Some(set) => set.contains(&p),
        }
    }

    fn choose_pcpu(&self, vi: usize) -> PcpuId {
        let allowed: Vec<PcpuId> = (0..self.cfg.ncpus)
            .map(PcpuId)
            .filter(|p| self.allowed_on(vi, *p))
            .collect();
        debug_assert!(!allowed.is_empty(), "vcpu pinned to no pcpu");
        // Prefer an idle pCPU, then the last one used, then the shortest queue.
        for &p in &allowed {
            let pc = &self.pcpus[p.0 as usize];
            if pc.running.is_none() && pc.runq.is_empty() {
                return p;
            }
        }
        let last = self.vcpus[vi].last_pcpu;
        if allowed.contains(&last) {
            return last;
        }
        *allowed
            .iter()
            .min_by_key(|p| self.pcpus[p.0 as usize].runq.len())
            .expect("allowed nonempty")
    }

    fn wake_vcpu(&mut self, vi: usize, mode: WakeMode, _force_boost: bool) {
        let now = self.now;
        let pending = std::mem::replace(&mut self.vcpus[vi].pending_boost, false);
        let boost = pending
            || (matches!(mode, WakeMode::Boost)
                && self.cfg.boost_on_wake
                && self.vcpus[vi].credit >= 0);
        self.vcpus[vi].prio = if boost {
            Priority::Boost
        } else if self.vcpus[vi].credit >= 0 {
            Priority::Under
        } else {
            Priority::Over
        };
        self.set_state(vi, RunState::Runnable, now);
        let p = self.choose_pcpu(vi);
        self.insert_runq(p, vi, boost && pending);
    }

    /// Inserts into the pCPU's runqueue at the tail (or head, for
    /// triggered boosts) of the VCPU's priority class.
    fn insert_runq(&mut self, p: PcpuId, vi: usize, front_of_class: bool) {
        let rank = self.vcpus[vi].prio.rank();
        let q = &mut self.pcpus[p.0 as usize].runq;
        let pos = if front_of_class {
            q.iter()
                .position(|&o| self.vcpus[o].prio.rank() >= rank)
                .unwrap_or(q.len())
        } else {
            q.iter()
                .position(|&o| self.vcpus[o].prio.rank() > rank)
                .unwrap_or(q.len())
        };
        q.insert(pos, vi);
    }

    fn remove_from_runq(&mut self, vi: usize) {
        for p in &mut self.pcpus {
            if let Some(pos) = p.runq.iter().position(|&o| o == vi) {
                p.runq.remove(pos);
                return;
            }
        }
    }

    /// Transitions a VCPU's run state, attributing the elapsed interval to
    /// the state being left.
    fn set_state(&mut self, vi: usize, new: RunState, t: Nanos) {
        let dom = self.vcpus[vi].dom;
        let since = self.vcpus[vi].state_since;
        let dt = t.saturating_sub(since);
        match self.vcpus[vi].state {
            RunState::Runnable => self.usage.add_runnable(dom, dt),
            RunState::Blocked | RunState::Parked => self.usage.add_blocked(dom, dt),
            RunState::Running => {} // attributed during charge_to
        }
        self.vcpus[vi].state = new;
        self.vcpus[vi].state_since = t;
    }

    /// Attributes in-progress runnable/blocked intervals up to `now` so a
    /// usage snapshot is consistent.
    fn flush_states(&mut self) {
        let t = self.now;
        for vi in 0..self.vcpus.len() {
            let state = self.vcpus[vi].state;
            self.set_state(vi, state, t);
        }
    }

    fn pick_vcpu_for_work(&self, dom: DomId) -> Result<usize, SchedError> {
        let idxs = self
            .dom_vcpus
            .get(&dom)
            .ok_or(SchedError::UnknownDomain(dom))?;
        idxs.iter()
            .copied()
            .min_by_key(|&i| self.vcpus[i].work.len())
            .ok_or(SchedError::NoVcpus)
    }
}

/// The scheduler as a master-loop event source: its horizon is the next
/// tick / slice expiry / burst completion, and advancing it emits the
/// completions that occurred on the way. (The x86 island's component
/// face — the platform registry drives every island through this trait.)
impl simcore::Component for CreditScheduler {
    type Event = SchedEvent;

    fn next_event_time(&self) -> Option<Nanos> {
        CreditScheduler::next_event_time(self)
    }

    fn advance(&mut self, now: Nanos, out: &mut Vec<SchedEvent>) {
        self.on_timer(now, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive_until(s: &mut CreditScheduler, t: Nanos) -> Vec<SchedEvent> {
        let mut out = Vec::new();
        while let Some(next) = s.next_event_time() {
            if next > t {
                break;
            }
            s.on_timer(next, &mut out);
        }
        s.on_timer(t, &mut out);
        out
    }

    #[test]
    fn single_burst_completes_on_time() {
        let mut s = CreditScheduler::new(SchedConfig::new(1));
        let d = s.create_domain("a", 256, 1);
        s.submit(Nanos::ZERO, d, Burst::user(Nanos::from_millis(5), 42), WakeMode::Plain)
            .unwrap();
        let done = drive_until(&mut s, Nanos::from_millis(10));
        assert_eq!(done.len(), 1);
        let SchedEvent::Completed { dom, tag, at, .. } = done[0];
        assert_eq!((dom, tag, at), (d, 42, Nanos::from_millis(5)));
    }

    #[test]
    fn half_speed_doubles_burst_wall_time() {
        let mut s = CreditScheduler::new(SchedConfig::new(1));
        let d = s.create_domain("a", 256, 1);
        s.set_speed(50, 100);
        s.submit(Nanos::ZERO, d, Burst::user(Nanos::from_millis(5), 7), WakeMode::Plain)
            .unwrap();
        let done = drive_until(&mut s, Nanos::from_millis(20));
        assert_eq!(done.len(), 1);
        let SchedEvent::Completed { at, .. } = done[0];
        assert_eq!(at, Nanos::from_millis(10), "5 ms of demand at half speed");
    }

    #[test]
    fn explicit_nominal_speed_matches_the_default_path() {
        let run = |set_nominal: bool| {
            let mut s = CreditScheduler::new(SchedConfig::new(1));
            let a = s.create_domain("a", 256, 1);
            let b = s.create_domain("b", 768, 1);
            if set_nominal {
                s.set_speed(100, 100);
            }
            s.submit(Nanos::ZERO, a, Burst::user(Nanos::from_millis(47), 1), WakeMode::Plain)
                .unwrap();
            s.submit(Nanos::from_micros(300), b, Burst::user(Nanos::from_millis(13), 2), WakeMode::Boost)
                .unwrap();
            drive_until(&mut s, Nanos::from_secs(1))
        };
        assert_eq!(run(false), run(true), "nominal speed must be the identity");
    }

    #[test]
    fn speed_change_mid_burst_scales_only_the_remainder() {
        let mut s = CreditScheduler::new(SchedConfig::new(1));
        let d = s.create_domain("a", 256, 1);
        s.submit(Nanos::ZERO, d, Burst::user(Nanos::from_millis(8), 7), WakeMode::Plain)
            .unwrap();
        // 4 ms runs at nominal, then the clock drops to half speed: the
        // remaining 4 ms of demand needs 8 ms of wall time.
        let mut out = Vec::new();
        s.on_timer(Nanos::from_millis(4), &mut out);
        s.set_speed(50, 100);
        let done = drive_until(&mut s, Nanos::from_millis(20));
        let SchedEvent::Completed { at, .. } = done[0];
        assert_eq!(at, Nanos::from_millis(12));
    }

    #[test]
    #[should_panic(expected = "positive rational")]
    fn zero_speed_is_rejected() {
        let mut s = CreditScheduler::new(SchedConfig::new(1));
        s.set_speed(0, 100);
    }

    #[test]
    fn two_domains_share_one_cpu_by_weight() {
        let mut s = CreditScheduler::new(SchedConfig::new(1));
        let a = s.create_domain("a", 256, 1);
        let b = s.create_domain("b", 768, 1);
        // Saturate both with long work.
        s.submit(Nanos::ZERO, a, Burst::user(Nanos::from_secs(10), 1), WakeMode::Plain)
            .unwrap();
        s.submit(Nanos::ZERO, b, Burst::user(Nanos::from_secs(10), 2), WakeMode::Plain)
            .unwrap();
        drive_until(&mut s, Nanos::from_secs(3));
        let snap = s.usage_snapshot();
        let ua = snap.cpu_percent(a);
        let ub = snap.cpu_percent(b);
        // 1:3 weight ratio should yield roughly 25%/75%.
        assert!((ua - 25.0).abs() < 6.0, "a got {ua}%");
        assert!((ub - 75.0).abs() < 6.0, "b got {ub}%");
        assert!((ua + ub - 100.0).abs() < 2.0, "sum {}", ua + ub);
    }

    #[test]
    fn weight_change_shifts_allocation() {
        let mut s = CreditScheduler::new(SchedConfig::new(1));
        let a = s.create_domain("a", 256, 1);
        let b = s.create_domain("b", 256, 1);
        s.submit(Nanos::ZERO, a, Burst::user(Nanos::from_secs(30), 1), WakeMode::Plain)
            .unwrap();
        s.submit(Nanos::ZERO, b, Burst::user(Nanos::from_secs(30), 2), WakeMode::Plain)
            .unwrap();
        drive_until(&mut s, Nanos::from_secs(2));
        s.reset_usage();
        s.set_weight(a, 1024).unwrap();
        drive_until(&mut s, Nanos::from_secs(5));
        let snap = s.usage_snapshot();
        let ua = snap.cpu_percent(a);
        let ub = snap.cpu_percent(b);
        // 4:1 ratio → ~80/20.
        assert!(ua > 70.0, "a got {ua}%");
        assert!(ub < 30.0, "b got {ub}%");
    }

    #[test]
    fn two_cpus_run_two_domains_concurrently() {
        let mut s = CreditScheduler::new(SchedConfig::new(2));
        let a = s.create_domain("a", 256, 1);
        let b = s.create_domain("b", 256, 1);
        s.submit(Nanos::ZERO, a, Burst::user(Nanos::from_millis(100), 1), WakeMode::Plain)
            .unwrap();
        s.submit(Nanos::ZERO, b, Burst::user(Nanos::from_millis(100), 2), WakeMode::Plain)
            .unwrap();
        let done = drive_until(&mut s, Nanos::from_millis(100));
        assert_eq!(done.len(), 2);
        for ev in done {
            let SchedEvent::Completed { at, .. } = ev;
            assert_eq!(at, Nanos::from_millis(100), "no contention on 2 cpus");
        }
    }

    #[test]
    fn boost_wake_preempts_cpu_hog() {
        let mut s = CreditScheduler::new(SchedConfig::new(1));
        let hog = s.create_domain("hog", 256, 1);
        let io = s.create_domain("io", 256, 1);
        s.submit(Nanos::ZERO, hog, Burst::user(Nanos::from_secs(10), 1), WakeMode::Plain)
            .unwrap();
        drive_until(&mut s, Nanos::from_millis(100));
        // An I/O wake should run almost immediately despite the hog.
        let t0 = Nanos::from_millis(100);
        s.submit(t0, io, Burst::user(Nanos::from_micros(500), 9), WakeMode::Boost)
            .unwrap();
        let done = drive_until(&mut s, Nanos::from_millis(105));
        let finish = done.iter().find_map(|e| {
            let SchedEvent::Completed { tag, at, .. } = e;
            (*tag == 9).then_some(*at)
        });
        let finish = finish.expect("io burst completed");
        assert!(
            finish <= t0 + Nanos::from_millis(1),
            "boosted wake finished at {finish}"
        );
    }

    #[test]
    fn plain_wake_queues_behind_equal_priority_hog() {
        // The hog has enormous weight, so its credit stays positive (UNDER)
        // even while monopolising the CPU. A plain wake at equal (UNDER)
        // priority must queue; only a boosted wake preempts.
        let mut s = CreditScheduler::new(SchedConfig::new(1));
        let hog = s.create_domain("hog", 60_000, 1);
        let meek = s.create_domain("meek", 16, 1);
        s.submit(Nanos::ZERO, hog, Burst::user(Nanos::from_secs(10), 1), WakeMode::Plain)
            .unwrap();
        drive_until(&mut s, Nanos::from_millis(95));
        let t0 = s.now();
        s.submit(t0, meek, Burst::user(Nanos::from_micros(500), 9), WakeMode::Plain)
            .unwrap();
        let done = drive_until(&mut s, t0 + Nanos::from_millis(200));
        let finish = done
            .iter()
            .find_map(|e| {
                let SchedEvent::Completed { tag, at, .. } = e;
                (*tag == 9).then_some(*at)
            })
            .expect("meek completed");
        assert!(
            finish > t0 + Nanos::from_millis(1),
            "plain wake should queue, finished at {finish} (t0 {t0})"
        );
    }

    #[test]
    fn trigger_boost_front_jumps_queue() {
        let mut s = CreditScheduler::new(SchedConfig::new(1));
        let hog = s.create_domain("hog", 256, 1);
        let v1 = s.create_domain("v1", 256, 1);
        let v2 = s.create_domain("v2", 256, 1);
        s.submit(Nanos::ZERO, hog, Burst::user(Nanos::from_secs(10), 1), WakeMode::Plain)
            .unwrap();
        s.submit(Nanos::ZERO, v1, Burst::user(Nanos::from_millis(50), 2), WakeMode::Plain)
            .unwrap();
        s.submit(Nanos::ZERO, v2, Burst::user(Nanos::from_millis(1), 3), WakeMode::Plain)
            .unwrap();
        // v2 sits behind v1 in the runqueue; a Trigger promotes it past
        // both the queue and the running hog.
        s.boost_front(Nanos::from_millis(2), v2).unwrap();
        let done = drive_until(&mut s, Nanos::from_millis(5));
        let finish = done
            .iter()
            .find_map(|e| {
                let SchedEvent::Completed { tag, at, .. } = e;
                (*tag == 3).then_some(*at)
            })
            .expect("v2 completed");
        assert!(finish <= Nanos::from_millis(3), "triggered at 2ms, done {finish}");
    }

    #[test]
    fn cap_limits_consumption() {
        let mut s = CreditScheduler::new(SchedConfig::new(1));
        let capped = s.create_domain("capped", 256, 1);
        s.set_cap(capped, 25).unwrap();
        s.submit(Nanos::ZERO, capped, Burst::user(Nanos::from_secs(30), 1), WakeMode::Plain)
            .unwrap();
        drive_until(&mut s, Nanos::from_secs(4));
        let snap = s.usage_snapshot();
        let u = snap.cpu_percent(capped);
        assert!(u < 45.0, "capped domain consumed {u}% (expected bounded)");
        assert!(u > 10.0, "capped domain starved at {u}%");
    }

    #[test]
    fn pinning_keeps_vcpu_on_cpu() {
        let mut s = CreditScheduler::new(SchedConfig::new(2));
        let a = s.create_domain("a", 256, 1);
        let b = s.create_domain("b", 256, 1);
        s.pin_domain(a, &[PcpuId(0)]).unwrap();
        s.pin_domain(b, &[PcpuId(0)]).unwrap();
        s.submit(Nanos::ZERO, a, Burst::user(Nanos::from_secs(4), 1), WakeMode::Plain)
            .unwrap();
        s.submit(Nanos::ZERO, b, Burst::user(Nanos::from_secs(4), 2), WakeMode::Plain)
            .unwrap();
        drive_until(&mut s, Nanos::from_secs(2));
        let snap = s.usage_snapshot();
        // Sharing one pinned CPU → each near 50%, total ≈ 100 despite 2 cpus.
        let total = snap.cpu_percent(a) + snap.cpu_percent(b);
        assert!((total - 100.0).abs() < 5.0, "total {total}");
    }

    #[test]
    fn pin_validates_pcpu() {
        let mut s = CreditScheduler::new(SchedConfig::new(1));
        let a = s.create_domain("a", 256, 1);
        assert_eq!(
            s.pin_domain(a, &[PcpuId(5)]),
            Err(SchedError::BadAffinity(5))
        );
    }

    #[test]
    fn unknown_domain_errors() {
        let mut s = CreditScheduler::new(SchedConfig::new(1));
        let ghost = DomId(99);
        assert!(matches!(
            s.submit(Nanos::ZERO, ghost, Burst::user(Nanos(1), 0), WakeMode::Plain),
            Err(SchedError::UnknownDomain(_))
        ));
        assert!(s.set_weight(ghost, 512).is_err());
        assert!(s.boost_front(Nanos::ZERO, ghost).is_err());
        assert!(s.notify(Nanos::ZERO, ghost).is_err());
    }

    #[test]
    fn idle_scheduler_has_no_events() {
        let mut s = CreditScheduler::new(SchedConfig::new(2));
        s.create_domain("a", 256, 1);
        assert_eq!(s.next_event_time(), None);
        let mut out = Vec::new();
        s.on_timer(Nanos::from_secs(1), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn work_after_idle_period_completes() {
        let mut s = CreditScheduler::new(SchedConfig::new(1));
        let a = s.create_domain("a", 256, 1);
        // Idle for 95ms, then submit.
        let t = Nanos::from_millis(95);
        s.submit(t, a, Burst::user(Nanos::from_millis(2), 7), WakeMode::Plain)
            .unwrap();
        let done = drive_until(&mut s, Nanos::from_millis(100));
        assert_eq!(done.len(), 1);
        let SchedEvent::Completed { at, .. } = done[0];
        assert_eq!(at, t + Nanos::from_millis(2));
    }

    #[test]
    fn sequential_bursts_complete_in_order() {
        let mut s = CreditScheduler::new(SchedConfig::new(1));
        let a = s.create_domain("a", 256, 1);
        for tag in 0..5 {
            s.submit(Nanos::ZERO, a, Burst::user(Nanos::from_millis(1), tag), WakeMode::Plain)
                .unwrap();
        }
        let done = drive_until(&mut s, Nanos::from_millis(10));
        let tags: Vec<u64> = done
            .iter()
            .map(|e| {
                let SchedEvent::Completed { tag, .. } = e;
                *tag
            })
            .collect();
        assert_eq!(tags, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn zero_demand_burst_completes_immediately() {
        let mut s = CreditScheduler::new(SchedConfig::new(1));
        let a = s.create_domain("a", 256, 1);
        let out = s
            .submit(Nanos::ZERO, a, Burst::user(Nanos::ZERO, 5), WakeMode::Plain)
            .unwrap();
        // Completion surfaces on the next advance (timer or submit).
        let done = if out.is_empty() {
            drive_until(&mut s, Nanos::from_millis(1))
        } else {
            out
        };
        assert!(done
            .iter()
            .any(|e| matches!(e, SchedEvent::Completed { tag: 5, .. })));
    }

    #[test]
    fn usage_accounts_system_vs_user() {
        let mut s = CreditScheduler::new(SchedConfig::new(1));
        let a = s.create_domain("a", 256, 1);
        s.submit(Nanos::ZERO, a, Burst::user(Nanos::from_millis(30), 1), WakeMode::Plain)
            .unwrap();
        s.submit(Nanos::ZERO, a, Burst::system(Nanos::from_millis(10), 2), WakeMode::Plain)
            .unwrap();
        drive_until(&mut s, Nanos::from_millis(100));
        let snap = s.usage_snapshot();
        assert!((snap.user_percent(a) - 30.0).abs() < 1.0);
        assert!((snap.system_percent(a) - 10.0).abs() < 1.0);
    }

    #[test]
    fn counters_advance() {
        let mut s = CreditScheduler::new(SchedConfig::new(1));
        let a = s.create_domain("a", 256, 1);
        let b = s.create_domain("b", 256, 1);
        s.submit(Nanos::ZERO, a, Burst::user(Nanos::from_secs(1), 1), WakeMode::Plain)
            .unwrap();
        s.submit(Nanos::ZERO, b, Burst::user(Nanos::from_secs(1), 2), WakeMode::Plain)
            .unwrap();
        drive_until(&mut s, Nanos::from_secs(2));
        assert!(s.context_switches() > 2);
        assert_eq!(s.run_state(a), Some(RunState::Blocked));
        assert_eq!(s.backlog(a), Nanos::ZERO);
    }

    #[test]
    fn steal_balances_load_across_cpus() {
        let mut s = CreditScheduler::new(SchedConfig::new(2));
        let a = s.create_domain("a", 256, 1);
        let b = s.create_domain("b", 256, 1);
        let c = s.create_domain("c", 256, 1);
        // All three wake at the same instant; two cpus must run two of them
        // immediately, one queues. Total throughput ≈ 2 cpus.
        for (d, tag) in [(a, 1u64), (b, 2), (c, 3)] {
            s.submit(Nanos::ZERO, d, Burst::user(Nanos::from_secs(2), tag), WakeMode::Plain)
                .unwrap();
        }
        drive_until(&mut s, Nanos::from_secs(3));
        let snap = s.usage_snapshot();
        let total: f64 = [a, b, c].iter().map(|d| snap.cpu_percent(*d)).sum();
        assert!(total > 180.0, "both cpus utilised, total {total}");
    }

    #[test]
    fn sampling_accounting_is_dodgeable_precise_is_not() {
        // A deterministic sub-tick on/off workload aligned against the
        // tick grid dodges sampled debits (the classic Xen credit
        // vulnerability) but not precise accounting.
        let run = |precise: bool| -> i32 {
            let mut cfg = SchedConfig::new(1);
            cfg.precise_accounting = precise;
            let mut s = CreditScheduler::new(cfg);
            let d = s.create_domain("dodger", 256, 1);
            let other = s.create_domain("other", 256, 1);
            // A continuously-busy background keeps ticks and accounting
            // alive; the dodger preempts it with sub-tick bursts that
            // start right after each 10 ms tick.
            s.submit(Nanos::ZERO, other, Burst::user(Nanos::from_secs(10), 999), WakeMode::Plain)
                .unwrap();
            for i in 0..200u64 {
                let t = Nanos::from_millis(i * 10) + Nanos::from_micros(500);
                s.submit(t, d, Burst::user(Nanos::from_millis(8), i), WakeMode::Boost)
                    .unwrap();
                while let Some(next) = s.next_event_time() {
                    if next > Nanos::from_millis(i * 10 + 10) {
                        break;
                    }
                    s.on_timer(next, &mut Vec::new());
                }
            }
            s.credit(d).unwrap()
        };
        let sampled = run(false);
        let precise = run(true);
        // Under sampling the dodger keeps accumulating credit (never
        // caught running at a tick); precise accounting debits it for its
        // real 80% consumption and sinks it.
        assert!(sampled > 0, "sampling dodged: credit {sampled}");
        assert!(precise < sampled, "precise {precise} vs sampled {sampled}");
    }

    #[test]
    fn grant_credit_lifts_priority() {
        let mut s = CreditScheduler::new(SchedConfig::new(1));
        let a = s.create_domain("a", 256, 1);
        let _b = s.create_domain("b", 256, 1);
        s.submit(Nanos::ZERO, a, Burst::user(Nanos::from_secs(5), 1), WakeMode::Plain)
            .unwrap();
        // Burn a into deep OVER.
        drive_until(&mut s, Nanos::from_secs(2));
        assert!(s.credit(a).unwrap() < 0);
        assert_eq!(s.priority(a), Some(Priority::Over));
        let owed = -s.credit(a).unwrap() + 50;
        s.grant_credit(a, owed).unwrap();
        assert!(s.credit(a).unwrap() >= 0);
        assert_eq!(s.priority(a), Some(Priority::Under));
        // Grants clamp at the accumulation cap.
        s.grant_credit(a, 1_000_000).unwrap();
        assert!(s.credit(a).unwrap() <= 300);
        assert!(s.grant_credit(DomId(99), 10).is_err());
    }

    #[test]
    fn trigger_boost_survives_ticks_for_one_slice() {
        let mut s = CreditScheduler::new(SchedConfig::new(1));
        let hog = s.create_domain("hog", 256, 1);
        let v = s.create_domain("v", 256, 1);
        s.submit(Nanos::ZERO, hog, Burst::user(Nanos::from_secs(5), 1), WakeMode::Plain)
            .unwrap();
        s.submit(Nanos::ZERO, v, Burst::user(Nanos::from_secs(5), 2), WakeMode::Plain)
            .unwrap();
        drive_until(&mut s, Nanos::from_millis(95));
        let t = s.now();
        s.boost_front(t, v).unwrap();
        assert_eq!(s.priority(v), Some(Priority::Boost));
        // Ticks inside the granted slice keep the BOOST.
        drive_until(&mut s, t + Nanos::from_millis(15));
        assert_eq!(s.priority(v), Some(Priority::Boost), "boost persists mid-slice");
        // Past the slice the priority reverts to credit-driven.
        drive_until(&mut s, t + Nanos::from_millis(45));
        assert_ne!(s.priority(v), Some(Priority::Boost), "boost expired");
    }

    #[test]
    fn rebalance_migrates_high_priority_waiters() {
        // Two UNDER vcpus stuck on one pcpu's queue while an OVER vcpu
        // runs on the other must migrate (csched_load_balance).
        let mut s = CreditScheduler::new(SchedConfig::new(2));
        let over = s.create_domain("over", 16, 1);
        let a = s.create_domain("a", 1024, 1);
        let b = s.create_domain("b", 1024, 1);
        // The low-weight domain saturates first and sinks OVER.
        s.submit(Nanos::ZERO, over, Burst::user(Nanos::from_secs(10), 1), WakeMode::Plain)
            .unwrap();
        s.submit(Nanos::ZERO, a, Burst::user(Nanos::from_secs(10), 2), WakeMode::Plain)
            .unwrap();
        drive_until(&mut s, Nanos::from_millis(200));
        s.submit(Nanos::from_millis(200), b, Burst::user(Nanos::from_secs(10), 3), WakeMode::Plain)
            .unwrap();
        drive_until(&mut s, Nanos::from_secs(4));
        let snap = s.usage_snapshot();
        // The two heavyweights must not be serialized behind each other:
        // each gets roughly a full CPU's worth while the lightweight OVER
        // domain scrapes the leftovers.
        let ua = snap.cpu_percent(a);
        let ub = snap.cpu_percent(b);
        let uo = snap.cpu_percent(over);
        assert!(ua > 70.0, "a {ua}");
        assert!(ub > 70.0, "b {ub}");
        assert!(uo < 30.0, "over-class domain squeezed: {uo}");
        assert!(
            s.migrations() + s.preemptions() > 0,
            "priority inversions were resolved"
        );
    }

    #[test]
    fn notify_wakes_only_domains_with_work() {
        let mut s = CreditScheduler::new(SchedConfig::new(1));
        let d = s.create_domain("d", 256, 1);
        s.notify(Nanos::ZERO, d).unwrap();
        assert_eq!(s.run_state(d), Some(RunState::Blocked), "nothing to run");
        s.submit(Nanos::ZERO, d, Burst::user(Nanos::from_millis(1), 1), WakeMode::Plain)
            .unwrap();
        drive_until(&mut s, Nanos::from_millis(5));
        assert_eq!(s.run_state(d), Some(RunState::Blocked));
    }

    #[test]
    fn multi_vcpu_domain_spreads_over_pcpus() {
        let mut s = CreditScheduler::new(SchedConfig::new(2));
        let d = s.create_domain("wide", 256, 2);
        // Two long bursts land on different VCPUs and run concurrently.
        s.submit(Nanos::ZERO, d, Burst::user(Nanos::from_millis(100), 1), WakeMode::Plain)
            .unwrap();
        s.submit(Nanos::ZERO, d, Burst::user(Nanos::from_millis(100), 2), WakeMode::Plain)
            .unwrap();
        let done = drive_until(&mut s, Nanos::from_millis(100));
        assert_eq!(done.len(), 2);
        for ev in done {
            let SchedEvent::Completed { at, .. } = ev;
            assert_eq!(at, Nanos::from_millis(100), "ran in parallel");
        }
        let snap = s.usage_snapshot();
        assert!(snap.cpu_percent(d) > 150.0, "used both pcpus");
    }

    #[test]
    fn affinity_constrains_rebalancing() {
        let mut s = CreditScheduler::new(SchedConfig::new(2));
        let pinned = s.create_domain("pinned", 1024, 1);
        let free_a = s.create_domain("a", 256, 1);
        let free_b = s.create_domain("b", 256, 1);
        s.pin_domain(pinned, &[PcpuId(1)]).unwrap();
        for (d, tag) in [(pinned, 1u64), (free_a, 2), (free_b, 3)] {
            s.submit(Nanos::ZERO, d, Burst::user(Nanos::from_secs(4), tag), WakeMode::Plain)
                .unwrap();
        }
        drive_until(&mut s, Nanos::from_secs(2));
        let snap = s.usage_snapshot();
        // The pinned heavyweight owns most of pcpu1; the two free domains
        // share what remains, mostly pcpu0.
        assert!(snap.cpu_percent(pinned) > 55.0, "{}", snap.cpu_percent(pinned));
        let others = snap.cpu_percent(free_a) + snap.cpu_percent(free_b);
        assert!(others > 95.0, "free domains keep a full cpu: {others}");
    }

    #[test]
    fn capped_domain_cannot_use_idle_capacity() {
        // Even on an otherwise idle host, a 20% cap binds (Xen cap
        // semantics): that is what distinguishes caps from weights.
        let mut s = CreditScheduler::new(SchedConfig::new(1));
        let capped = s.create_domain("capped", 256, 1);
        s.set_cap(capped, 20).unwrap();
        s.submit(Nanos::ZERO, capped, Burst::user(Nanos::from_secs(30), 1), WakeMode::Plain)
            .unwrap();
        drive_until(&mut s, Nanos::from_secs(5));
        let snap = s.usage_snapshot();
        let u = snap.cpu_percent(capped);
        assert!(u < 40.0, "cap binds on an idle host: {u}%");
    }

    #[test]
    fn weight_change_applies_within_one_accounting_period() {
        let mut s = CreditScheduler::new(SchedConfig::new(1));
        let a = s.create_domain("a", 256, 1);
        let b = s.create_domain("b", 256, 1);
        for (d, t) in [(a, 1u64), (b, 2)] {
            s.submit(Nanos::ZERO, d, Burst::user(Nanos::from_secs(30), t), WakeMode::Plain)
                .unwrap();
        }
        drive_until(&mut s, Nanos::from_secs(1));
        s.set_weight(a, 2048).unwrap();
        // Credits follow the new weight at the next 30 ms accounting, so
        // within a second the share is strongly skewed.
        s.reset_usage();
        drive_until(&mut s, Nanos::from_secs(2));
        let snap = s.usage_snapshot();
        assert!(
            snap.cpu_percent(a) > 2.0 * snap.cpu_percent(b),
            "a {} vs b {}",
            snap.cpu_percent(a),
            snap.cpu_percent(b)
        );
    }

    #[test]
    fn cached_horizon_matches_recomputation_under_random_ops() {
        // Drive the scheduler through a long randomized operation mix and
        // assert after every single operation that the memoized
        // next_event_time equals a from-scratch horizon scan. Any missed
        // dirty-flag invalidation shows up here.
        use simcore::SimRng;
        for seed in [1u64, 42, 0xDEAD] {
            let mut rng = SimRng::new(seed);
            let mut s = CreditScheduler::new(SchedConfig::new(2));
            let doms: Vec<DomId> = (0..4).map(|i| {
                s.create_domain(&format!("d{i}"), 128 + 128 * i, 1 + (i % 2))
            }).collect();
            let mut now = Nanos::ZERO;
            for _ in 0..2_000 {
                let dom = doms[rng.below(doms.len() as u64) as usize];
                match rng.below(9) {
                    0..=2 => {
                        let demand = Nanos::from_micros(rng.range(0, 20_000));
                        let wake = if rng.chance(0.5) { WakeMode::Boost } else { WakeMode::Plain };
                        s.submit(now, dom, Burst::user(demand, rng.next_u64()), wake).unwrap();
                    }
                    3 | 4 => {
                        now += Nanos::from_micros(rng.range(0, 15_000));
                        s.on_timer(now, &mut Vec::new());
                    }
                    5 => {
                        s.boost_front(now, dom).unwrap();
                    }
                    6 => {
                        s.grant_credit(dom, rng.range(1, 200) as i32).unwrap();
                    }
                    7 => {
                        s.notify(now, dom).unwrap();
                    }
                    _ => match rng.below(4) {
                        0 => s.set_weight(dom, rng.range(1, 1024) as u32).unwrap(),
                        1 => s.set_cap(dom, rng.range(0, 150) as u32).unwrap(),
                        2 => s.pin_domain(dom, &[PcpuId(rng.below(2) as u32)]).unwrap(),
                        _ => {
                            let _ = s.usage_snapshot();
                        }
                    },
                }
                assert_eq!(
                    s.next_event_time(),
                    s.compute_horizon(),
                    "cached horizon diverged from recomputation (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn usage_windows_are_disjoint() {
        let mut s = CreditScheduler::new(SchedConfig::new(1));
        let d = s.create_domain("d", 256, 1);
        s.submit(Nanos::ZERO, d, Burst::user(Nanos::from_millis(100), 1), WakeMode::Plain)
            .unwrap();
        drive_until(&mut s, Nanos::from_millis(100));
        let w1 = s.usage_snapshot().usage(d).unwrap().running();
        s.reset_usage();
        // Idle second window.
        drive_until(&mut s, Nanos::from_millis(200));
        let w2 = s.usage_snapshot().usage(d).unwrap().running();
        assert_eq!(w1, Nanos::from_millis(100));
        assert_eq!(w2, Nanos::ZERO);
    }
}
