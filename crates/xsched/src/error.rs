//! Error type for the scheduling island.

use crate::DomId;
use std::error::Error;
use std::fmt;

/// Errors returned by [`CreditScheduler`](crate::CreditScheduler) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SchedError {
    /// The referenced domain does not exist.
    UnknownDomain(DomId),
    /// A domain was created with zero VCPUs.
    NoVcpus,
    /// A VCPU was pinned to a pCPU outside the platform.
    BadAffinity(u32),
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::UnknownDomain(d) => write!(f, "unknown domain {d}"),
            SchedError::NoVcpus => write!(f, "domain must have at least one vcpu"),
            SchedError::BadAffinity(p) => write!(f, "pcpu {p} does not exist"),
        }
    }
}

impl Error for SchedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            SchedError::UnknownDomain(DomId(7)).to_string(),
            "unknown domain dom7"
        );
        assert!(SchedError::NoVcpus.to_string().contains("vcpu"));
        assert!(SchedError::BadAffinity(9).to_string().contains("pcpu 9"));
    }
}
