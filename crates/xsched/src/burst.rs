//! CPU work items executed by VCPUs.

use simcore::Nanos;

/// Classifies a burst for utilization accounting, mirroring `top`'s
/// user/system split the paper reports in §3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BurstKind {
    /// Guest application work (request processing, frame decoding).
    User,
    /// Kernel/driver work (bridging, messaging-driver polling, softirq).
    System,
}

/// A unit of CPU demand queued on a VCPU.
///
/// The `tag` is opaque to the scheduler and returned verbatim in
/// [`SchedEvent::Completed`](crate::SchedEvent), letting callers correlate
/// completions with in-flight requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Burst {
    /// Remaining CPU demand.
    pub demand: Nanos,
    /// Accounting classification.
    pub kind: BurstKind,
    /// Caller correlation tag, echoed on completion.
    pub tag: u64,
}

impl Burst {
    /// Creates a user-mode burst.
    pub fn user(demand: Nanos, tag: u64) -> Self {
        Burst {
            demand,
            kind: BurstKind::User,
            tag,
        }
    }

    /// Creates a system-mode burst.
    pub fn system(demand: Nanos, tag: u64) -> Self {
        Burst {
            demand,
            kind: BurstKind::System,
            tag,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        let u = Burst::user(Nanos::from_millis(1), 7);
        assert_eq!(u.kind, BurstKind::User);
        assert_eq!(u.tag, 7);
        let s = Burst::system(Nanos::from_micros(50), 8);
        assert_eq!(s.kind, BurstKind::System);
        assert_eq!(s.demand, Nanos::from_micros(50));
    }
}
