//! # xsched — the x86 scheduling island (Xen credit scheduler model)
//!
//! An event-driven reimplementation of the Xen **credit scheduler** as
//! described in Cherkasova, Gupta & Vahdat, *"Comparison of the three CPU
//! schedulers in Xen"* and the Xen source documentation, together with the
//! domain / VCPU / event-channel machinery the paper's x86 island uses:
//!
//! * Domains have **weights** (default 256); every 30 ms accounting period,
//!   active domains receive credits proportional to weight; a running VCPU
//!   is debited 100 credits per 10 ms tick.
//! * VCPUs are **UNDER** (credit ≥ 0) or **OVER** (credit < 0); runqueues
//!   are ordered BOOST → UNDER → OVER, FIFO within a class.
//! * A VCPU woken by an event channel with non-negative credit enters
//!   **BOOST** priority and preempts lower-priority work — Xen's I/O
//!   latency optimisation, and the landing pad for the paper's *Trigger*
//!   coordination mechanism ([`CreditScheduler::boost_front`]).
//! * Idle pCPUs steal runnable VCPUs from other runqueues (respecting
//!   pinning), and optional per-domain **caps** park VCPUs that exhaust
//!   their capped allowance.
//!
//! Work arrives as [`Burst`]s — CPU demands tagged by the caller — queued
//! per VCPU; the scheduler emits [`SchedEvent::Completed`] when a burst
//! finishes, which is how the platform layer sequences multi-tier request
//! processing.
//!
//! ## Example
//!
//! ```
//! use xsched::{Burst, CreditScheduler, SchedConfig, WakeMode};
//! use simcore::Nanos;
//!
//! let mut s = CreditScheduler::new(SchedConfig::new(2));
//! let web = s.create_domain("web", 256, 1);
//! s.submit(Nanos::ZERO, web, Burst::user(Nanos::from_millis(5), 1), WakeMode::Plain);
//! // Drive the scheduler to its next internal event, collecting burst
//! // completions into a reusable caller-owned buffer:
//! let t = s.next_event_time().unwrap();
//! let mut done = Vec::new();
//! s.on_timer(t, &mut done);
//! assert_eq!(done.len(), 1); // the 5 ms burst completed
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod burst;
mod credit;
mod ctl;
mod domain;
mod error;
mod runstate;

pub use burst::{Burst, BurstKind};
pub use credit::{CreditScheduler, Priority, RunState, SchedConfig, SchedEvent, WakeMode};
pub use ctl::XenCtl;
pub use domain::{DomId, Domain, PcpuId, DEFAULT_WEIGHT};
pub use error::SchedError;
pub use runstate::{DomainUsage, RunstateSnapshot};
