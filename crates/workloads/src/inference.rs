//! The inference-serving workload model for the accelerator island.
//!
//! Where RUBiS is closed-loop (clients think between requests), inference
//! serving is **open-loop**: each tenant is an independent Poisson request
//! source whose rate does not slow down when the platform falls behind —
//! exactly the regime where batch-forming policy matters, because backlog
//! compounds instead of self-throttling.
//!
//! ## Model catalogue
//!
//! Per-model parameters follow the standard serving taxonomy (small
//! interactive models with tight latency SLAs vs. large ranking/embedding
//! models optimized for throughput). Absolute costs are calibrated so a
//! handful of tenants saturate a two-unit accelerator at the default
//! rates; as with RUBiS, shapes matter, not milliseconds.

use ixp::{AppTag, Packet};
use simcore::{Nanos, SimRng};

/// A served model (one row of the catalogue).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelSpec {
    /// Model name as printed in reports.
    pub name: &'static str,
    /// Stable ordinal carried in packets for DPI classification.
    pub model_id: u16,
    /// `true` for interactive (latency-SLA) serving.
    pub latency_sensitive: bool,
    /// Mean accelerator compute cost per request, in milliseconds.
    pub compute_ms: f64,
    /// Request payload pinned in device memory while queued/in flight.
    pub input_bytes: u32,
    /// Response size on the wire.
    pub output_bytes: u32,
    /// Mean x86 post-processing (detokenize/serialize) cost per request,
    /// in milliseconds.
    pub post_ms: f64,
}

/// The model catalogue: two interactive and two batch-oriented models.
pub const MODELS: [ModelSpec; 4] = [
    ModelSpec { name: "chat-s",  model_id: 0, latency_sensitive: true,  compute_ms: 0.9, input_bytes: 2_048,  output_bytes: 1_400, post_ms: 0.30 },
    ModelSpec { name: "vision-m", model_id: 1, latency_sensitive: true,  compute_ms: 1.4, input_bytes: 8_192,  output_bytes: 900,   post_ms: 0.25 },
    ModelSpec { name: "rank-l",  model_id: 2, latency_sensitive: false, compute_ms: 2.2, input_bytes: 16_384, output_bytes: 600,   post_ms: 0.20 },
    ModelSpec { name: "embed-xl", model_id: 3, latency_sensitive: false, compute_ms: 3.0, input_bytes: 32_768, output_bytes: 500,   post_ms: 0.15 },
];

/// Looks up a model by its DPI ordinal.
pub fn by_model_id(model_id: u16) -> Option<&'static ModelSpec> {
    MODELS.get(model_id as usize)
}

/// One tenant: an open-loop request source for a single model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantSpec {
    /// Tenant name as printed in reports.
    pub name: &'static str,
    /// Model this tenant serves.
    pub model_id: u16,
    /// Mean request arrival rate (requests per second).
    pub rate_per_sec: f64,
}

/// Inference workload configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceConfig {
    /// Tenants sharing the accelerator (each gets its own VM + queues).
    pub tenants: Vec<TenantSpec>,
    /// Relative jitter (σ/mean) applied to sampled compute costs.
    pub cost_jitter: f64,
}

impl Default for InferenceConfig {
    fn default() -> Self {
        InferenceConfig {
            tenants: vec![
                TenantSpec { name: "chat", model_id: 0, rate_per_sec: 220.0 },
                TenantSpec { name: "rank", model_id: 2, rate_per_sec: 260.0 },
            ],
            cost_jitter: 0.2,
        }
    }
}

/// The inference stochastic model: Poisson arrivals per tenant, jittered
/// compute costs and packet synthesis. The platform drives it; it owns no
/// clock.
#[derive(Debug)]
pub struct InferenceModel {
    cfg: InferenceConfig,
    rng: SimRng,
    next_packet_id: u64,
}

impl InferenceModel {
    /// Creates a model with a deterministic seed.
    pub fn new(cfg: InferenceConfig, seed: u64) -> Self {
        InferenceModel {
            cfg,
            rng: SimRng::new(seed.wrapping_mul(0xC2B2_AE35)),
            next_packet_id: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &InferenceConfig {
        &self.cfg
    }

    /// The model a tenant serves.
    pub fn model_of(&self, tenant: usize) -> &'static ModelSpec {
        by_model_id(self.cfg.tenants[tenant].model_id).expect("tenant model in catalogue")
    }

    /// Draws the gap to a tenant's next arrival (exponential, open-loop).
    pub fn next_gap(&mut self, tenant: usize) -> Nanos {
        let rate = self.cfg.tenants[tenant].rate_per_sec.max(1e-9);
        self.rng.exp_nanos(Nanos::from_secs_f64(1.0 / rate))
    }

    /// Samples the jittered accelerator compute cost of one request.
    pub fn compute_cost(&mut self, tenant: usize) -> Nanos {
        let m = self.model_of(tenant);
        let sd = m.compute_ms * self.cfg.cost_jitter;
        let ms = self.rng.normal(m.compute_ms, sd).max(m.compute_ms * 0.2);
        Nanos::from_secs_f64(ms / 1e3)
    }

    /// The x86 post-processing burst for one of a tenant's responses.
    pub fn post_cost(&self, tenant: usize) -> Nanos {
        Nanos::from_secs_f64(self.model_of(tenant).post_ms / 1e3)
    }

    /// Builds the on-wire request packet for a tenant addressed to its
    /// serving VM's index.
    pub fn request_packet(&mut self, tenant: usize, vm: u32) -> Packet {
        let m = self.model_of(tenant);
        let id = self.next_packet_id;
        self.next_packet_id += 1;
        Packet::new(
            id,
            vm,
            m.input_bytes.clamp(200, 1500),
            AppTag::Inference {
                model_id: m.model_id,
                latency_sensitive: m.latency_sensitive,
            },
        )
    }

    /// Builds the response packet for one completed request.
    pub fn response_packet(&mut self, tenant: usize, client_vm: u32) -> Packet {
        let m = self.model_of(tenant);
        let id = self.next_packet_id;
        self.next_packet_id += 1;
        Packet::new(
            id,
            client_vm,
            m.output_bytes.clamp(200, 1500),
            AppTag::InferenceResponse { model_id: m.model_id },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_covers_both_sla_classes() {
        assert!(MODELS.iter().any(|m| m.latency_sensitive));
        assert!(MODELS.iter().any(|m| !m.latency_sensitive));
        for (i, m) in MODELS.iter().enumerate() {
            assert_eq!(m.model_id as usize, i, "ordinal matches position");
            assert_eq!(by_model_id(m.model_id), Some(m));
            assert!(m.compute_ms > 0.0 && m.post_ms > 0.0);
        }
        assert_eq!(by_model_id(99), None);
    }

    #[test]
    fn arrivals_match_configured_rate() {
        let mut model = InferenceModel::new(InferenceConfig::default(), 7);
        let rate = model.config().tenants[0].rate_per_sec;
        let n = 4000;
        let total: f64 = (0..n).map(|_| model.next_gap(0).as_secs_f64()).sum();
        let measured = n as f64 / total;
        assert!(
            (measured - rate).abs() / rate < 0.1,
            "measured {measured} vs configured {rate}"
        );
    }

    #[test]
    fn packets_carry_inference_tags() {
        let mut model = InferenceModel::new(InferenceConfig::default(), 7);
        let p = model.request_packet(0, 3);
        assert!(matches!(
            p.app,
            AppTag::Inference { model_id: 0, latency_sensitive: true }
        ));
        assert_eq!(p.dst_vm, 3);
        let r = model.response_packet(1, u32::MAX);
        assert!(matches!(r.app, AppTag::InferenceResponse { model_id: 2 }));
        assert!(r.id > p.id, "packet ids platform-unique and increasing");
    }

    #[test]
    fn compute_cost_jitters_around_mean() {
        let mut model = InferenceModel::new(InferenceConfig::default(), 11);
        let mean_ms = model.model_of(0).compute_ms;
        let n = 2000;
        let total_ms: f64 = (0..n).map(|_| model.compute_cost(0).as_secs_f64() * 1e3).sum();
        let measured = total_ms / n as f64;
        assert!((measured - mean_ms).abs() / mean_ms < 0.1);
        assert!(model.compute_cost(0) >= Nanos::from_secs_f64(mean_ms * 0.2 / 1e3));
    }
}
