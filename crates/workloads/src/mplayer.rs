//! The MPlayer streaming/decoding model.
//!
//! §3.2: MPlayer clients in guest VMs decode video streams served over
//! RTSP/UDP by a Darwin streaming server. Decode CPU cost depends on
//! stream characteristics (codec, resolution, bit/frame rate). In
//! benchmark mode MPlayer decodes as fast as frames are available, so the
//! reported frames/sec is bounded by both the stream delivery rate and
//! the CPU share the guest receives.
//!
//! The per-frame [decode cost](StreamSpec::decode_cost) is calibrated so
//! the Figure 6 experiment reproduces: with default weights (256/256)
//! each guest's demand exceeds its fair entitlement on the contended host
//! (both miss their frame rate); the paper's coordinated weight
//! configurations (384/512, then 384/640 with extra IXP threads) restore
//! the targets in the same order the paper reports.

use ixp::{AppTag, Packet};
use simcore::Nanos;

/// Maximum RTP payload per packet.
pub const MTU_BYTES: u32 = 1400;

/// A video stream's characteristics as learned at RTSP session setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamSpec {
    /// Bit rate in kbit/s.
    pub kbps: u32,
    /// Nominal frame rate in frames/s.
    pub fps: u32,
}

impl StreamSpec {
    /// The low-rate stream of Figure 6 (Domain-1): 20 fps at 300 kbit/s.
    pub fn low() -> Self {
        StreamSpec { kbps: 300, fps: 20 }
    }

    /// The high-rate stream of Figure 6 (Domain-2): 25 fps at 1 Mbit/s.
    pub fn high() -> Self {
        StreamSpec { kbps: 1000, fps: 25 }
    }

    /// Interval between frames at the nominal rate.
    ///
    /// # Panics
    /// Panics if `fps == 0`.
    pub fn frame_interval(&self) -> Nanos {
        assert!(self.fps > 0, "fps must be positive");
        Nanos::from_secs(1) / self.fps as u64
    }

    /// Mean encoded bytes per frame.
    pub fn bytes_per_frame(&self) -> u32 {
        (self.kbps as u64 * 1000 / 8 / self.fps as u64) as u32
    }

    /// RTP packets needed per frame at [`MTU_BYTES`].
    pub fn packets_per_frame(&self) -> u32 {
        self.bytes_per_frame().div_ceil(MTU_BYTES).max(1)
    }

    /// CPU demand to decode one frame.
    ///
    /// Modelled as a codec-dependent fixed per-second component spread
    /// over the frames (high-definition H.264 entropy decoding dominates)
    /// plus a bit-rate-dependent term:
    /// `cost = (0.6021 + kbps/4292) / fps` seconds.
    ///
    /// Yields 33.6 ms/frame for the 300 kbit/s 20 fps stream and 35 ms/frame
    /// for the 1 Mbit/s 25 fps stream. At the server's slightly
    /// over-provisioned delivery rate both streams then demand more than
    /// the 66.7% fair entitlement of three equal-weight domains on two
    /// contended cores (Figure 6's default configuration misses), while
    /// the 384/512 configuration's entitlements cover both (the
    /// coordinated configuration meets).
    pub fn decode_cost(&self) -> Nanos {
        assert!(self.fps > 0, "fps must be positive");
        Nanos::from_secs_f64((0.6021 + self.kbps as f64 / 4292.0) / self.fps as f64)
    }

    /// Fraction of one CPU needed to decode at the nominal rate.
    pub fn cpu_demand(&self) -> f64 {
        self.decode_cost().as_secs_f64() * self.fps as f64
    }

    /// The RTSP session-setup packet announcing this stream to `vm`.
    pub fn setup_packet(&self, id: u64, vm: u32) -> Packet {
        Packet::new(
            id,
            vm,
            400,
            AppTag::RtspSetup {
                kbps: self.kbps,
                fps: self.fps,
            },
        )
    }

    /// One RTP data packet of this stream addressed to `vm`.
    pub fn data_packet(&self, id: u64, vm: u32, len: u32) -> Packet {
        Packet::new(
            id,
            vm,
            len,
            AppTag::Rtp {
                kbps: self.kbps,
                fps: self.fps,
            },
        )
    }
}

/// How an MPlayer instance obtains its video.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Streamed over the network through the IXP (RTSP/UDP).
    Network,
    /// Played from the VM's local disk — no IXP resources used
    /// (Table 3's interference victim).
    LocalDisk,
}

/// One MPlayer instance: a stream spec, its source, and frame accounting.
#[derive(Debug, Clone)]
pub struct Player {
    spec: StreamSpec,
    source: Source,
    frames_decoded: u64,
    started: Nanos,
    stopped: Option<Nanos>,
}

impl Player {
    /// Creates a player that starts counting at `now`.
    pub fn new(spec: StreamSpec, source: Source, now: Nanos) -> Self {
        Player {
            spec,
            source,
            frames_decoded: 0,
            started: now,
            stopped: None,
        }
    }

    /// The stream being played.
    pub fn spec(&self) -> StreamSpec {
        self.spec
    }

    /// Where the video comes from.
    pub fn source(&self) -> Source {
        self.source
    }

    /// Records one decoded frame.
    pub fn frame_decoded(&mut self) {
        self.frames_decoded += 1;
    }

    /// Frames decoded so far.
    pub fn frames_decoded(&self) -> u64 {
        self.frames_decoded
    }

    /// Marks the end of measurement.
    pub fn stop(&mut self, now: Nanos) {
        self.stopped = Some(now);
    }

    /// Achieved frames/sec over the measurement window ending at `now`
    /// (or at the stop time if stopped).
    pub fn achieved_fps(&self, now: Nanos) -> f64 {
        let end = self.stopped.unwrap_or(now);
        let secs = end.saturating_sub(self.started).as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.frames_decoded as f64 / secs
    }

    /// Whether the nominal frame rate was met (within `tolerance`
    /// frames/sec) at `now`.
    pub fn meets_target(&self, now: Nanos, tolerance: f64) -> bool {
        self.achieved_fps(now) + tolerance >= self.spec.fps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_streams() {
        let lo = StreamSpec::low();
        let hi = StreamSpec::high();
        assert_eq!(lo.frame_interval(), Nanos::from_millis(50));
        assert_eq!(hi.frame_interval(), Nanos::from_millis(40));
        assert_eq!(lo.bytes_per_frame(), 1875);
        assert_eq!(hi.bytes_per_frame(), 5000);
        assert_eq!(lo.packets_per_frame(), 2);
        assert_eq!(hi.packets_per_frame(), 4);
    }

    #[test]
    fn decode_calibration_matches_figure6_design() {
        // At the server's 1.05× delivery pacing both offered demands
        // exceed the 66.7% fair entitlement of three equal-weight domains
        // on two cores, and the high stream fits the 88.9% entitlement it
        // gets at weight 512.
        let d_lo = StreamSpec::low().cpu_demand() * 1.05;
        let d_hi = StreamSpec::high().cpu_demand();
        assert!(d_lo > 0.66 && d_lo < 0.72, "low offered demand {d_lo}");
        assert!(d_hi > 0.8 && d_hi < 0.889, "high demand {d_hi}");
    }

    #[test]
    fn higher_bitrate_costs_more_per_second() {
        let lo = StreamSpec::low();
        let hi = StreamSpec::high();
        assert!(hi.cpu_demand() > lo.cpu_demand());
    }

    #[test]
    fn packets_carry_stream_properties() {
        let s = StreamSpec::high();
        let setup = s.setup_packet(1, 2);
        assert!(matches!(setup.app, AppTag::RtspSetup { kbps: 1000, fps: 25 }));
        let data = s.data_packet(2, 2, 1400);
        assert!(matches!(data.app, AppTag::Rtp { kbps: 1000, .. }));
        assert_eq!(data.dst_vm, 2);
    }

    #[test]
    fn player_fps_accounting() {
        let mut p = Player::new(StreamSpec::low(), Source::Network, Nanos::ZERO);
        for _ in 0..100 {
            p.frame_decoded();
        }
        let fps = p.achieved_fps(Nanos::from_secs(5));
        assert!((fps - 20.0).abs() < 1e-9);
        assert!(p.meets_target(Nanos::from_secs(5), 0.5));
        p.stop(Nanos::from_secs(5));
        // Counting stops at the stop mark.
        assert_eq!(p.achieved_fps(Nanos::from_secs(50)), fps);
        assert_eq!(p.frames_decoded(), 100);
        assert_eq!(p.source(), Source::Network);
    }

    #[test]
    fn zero_window_fps_is_zero() {
        let p = Player::new(StreamSpec::low(), Source::LocalDisk, Nanos::from_secs(1));
        assert_eq!(p.achieved_fps(Nanos::from_secs(1)), 0.0);
    }
}
