//! Open-loop session arrival with per-shard admission control.
//!
//! The seed RUBiS model is closed-loop: a fixed client population cycles
//! request → think → request, so offered load is bounded by the
//! population. Fleet scale inverts that: sessions arrive open-loop
//! (Poisson) at rates far beyond what one shard can hold, and a
//! per-shard **admission cap** bounds how many run concurrently — the
//! rest are rejected at the door (an M/G/c/c loss system). The fleet
//! controller's job is to move cap between shards so rejections land
//! where capacity is, which is exactly the Tune vocabulary at node
//! scale.
//!
//! The simulation here is intentionally lightweight — it prices
//! admission, not request service. Admitted sessions are handed to the
//! platform as an *effective concurrency* (see
//! [`AdmissionStats::mean_active`]); the platform then simulates that
//! many closed-loop clients in full detail. This keeps the per-shard
//! event budget proportional to *admitted* work while offered load
//! scales 100×–1000×.

use simcore::{Nanos, SimRng};
use std::collections::BinaryHeap;

/// Offered load for one shard: open-loop session arrivals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionLoad {
    /// Mean session arrival rate (sessions per second, Poisson).
    pub arrivals_per_sec: f64,
    /// Mean session residence time (seconds, exponential).
    pub mean_session_secs: f64,
}

impl SessionLoad {
    /// Offered concurrency in Erlangs (`λ · E[S]`): the concurrent
    /// session count an uncapped shard would settle at.
    pub fn erlangs(&self) -> f64 {
        self.arrivals_per_sec * self.mean_session_secs
    }
}

/// What happened at one shard's admission door over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AdmissionStats {
    /// Sessions that arrived.
    pub offered: u64,
    /// Sessions admitted (active count was below the cap).
    pub admitted: u64,
    /// Sessions rejected at the door.
    pub rejected: u64,
    /// Highest concurrent active count observed.
    pub peak_active: u32,
    /// Time-weighted mean concurrent active count.
    pub mean_active: f64,
}

impl AdmissionStats {
    /// Fraction of offered sessions rejected.
    pub fn loss_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.rejected as f64 / self.offered as f64
        }
    }
}

/// Simulates one shard's admission door for `duration`: Poisson session
/// arrivals at `load.arrivals_per_sec`, exponential residence times,
/// admit while fewer than `cap` sessions are active.
///
/// Deterministic: all randomness comes from `seed`, and the event loop
/// (arrival interleaved with departures via a min-heap on time) is a
/// pure function of it. Two shards with different seeds draw disjoint
/// streams; the same seed replays bit-identically.
pub fn simulate_admission(
    load: SessionLoad,
    cap: u32,
    duration: Nanos,
    seed: u64,
) -> AdmissionStats {
    assert!(load.arrivals_per_sec > 0.0, "need a positive arrival rate");
    assert!(load.mean_session_secs > 0.0, "need a positive session length");
    let mut rng = SimRng::new(seed);
    let mut stats = AdmissionStats::default();
    // Departure times of active sessions (min-heap via Reverse ordering).
    let mut departures: BinaryHeap<std::cmp::Reverse<Nanos>> = BinaryHeap::new();
    let mean_gap = Nanos::from_nanos((1e9 / load.arrivals_per_sec) as u64);
    let mean_stay = Nanos::from_nanos((load.mean_session_secs * 1e9) as u64);
    let mut now = Nanos::ZERO;
    let mut weighted_active = 0u128; // Σ active · dt, in active·nanos
    let mut last = Nanos::ZERO;
    loop {
        now += rng.exp_nanos(mean_gap);
        if now >= duration {
            break;
        }
        // Retire everything that left before this arrival.
        while let Some(&std::cmp::Reverse(t)) = departures.peek() {
            if t > now {
                break;
            }
            weighted_active += (departures.len() as u128) * (t - last).as_nanos() as u128;
            last = t;
            departures.pop();
        }
        weighted_active += (departures.len() as u128) * (now - last).as_nanos() as u128;
        last = now;
        stats.offered += 1;
        if (departures.len() as u32) < cap {
            stats.admitted += 1;
            departures.push(std::cmp::Reverse(now + rng.exp_nanos(mean_stay)));
            stats.peak_active = stats.peak_active.max(departures.len() as u32);
        } else {
            stats.rejected += 1;
        }
    }
    // Drain the tail up to the end of the run.
    while let Some(&std::cmp::Reverse(t)) = departures.peek() {
        if t > duration {
            break;
        }
        weighted_active += (departures.len() as u128) * (t - last).as_nanos() as u128;
        last = t;
        departures.pop();
    }
    weighted_active += (departures.len() as u128) * (duration - last).as_nanos() as u128;
    stats.mean_active = if duration == Nanos::ZERO {
        0.0
    } else {
        weighted_active as f64 / duration.as_nanos() as f64
    };
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOAD: SessionLoad = SessionLoad { arrivals_per_sec: 50.0, mean_session_secs: 2.0 };

    #[test]
    fn conserves_and_replays() {
        let d = Nanos::from_secs(60);
        let a = simulate_admission(LOAD, 64, d, 7);
        assert_eq!(a.offered, a.admitted + a.rejected);
        assert!(a.offered > 2000, "~3000 arrivals expected, got {}", a.offered);
        assert_eq!(a, simulate_admission(LOAD, 64, d, 7), "same seed must replay");
        assert_ne!(
            a,
            simulate_admission(LOAD, 64, d, 8),
            "different seeds must draw different streams"
        );
    }

    #[test]
    fn uncapped_settles_near_erlangs() {
        // λ·E[S] = 100 Erlangs; with cap far above that, mean active
        // concurrency approaches the offered load.
        let a = simulate_admission(LOAD, 10_000, Nanos::from_secs(120), 11);
        assert!(a.rejected == 0);
        assert!(
            (a.mean_active - LOAD.erlangs()).abs() < 15.0,
            "mean_active {} vs erlangs {}",
            a.mean_active,
            LOAD.erlangs()
        );
    }

    #[test]
    fn tight_cap_rejects_the_overflow() {
        // Cap at a quarter of the offered Erlangs: most arrivals bounce,
        // active count pins at the cap.
        let a = simulate_admission(LOAD, 25, Nanos::from_secs(120), 13);
        assert!(a.loss_rate() > 0.5, "loss rate {}", a.loss_rate());
        assert_eq!(a.peak_active, 25);
        assert!(a.mean_active <= 25.0);
        // And a wider cap strictly admits more.
        let b = simulate_admission(LOAD, 50, Nanos::from_secs(120), 13);
        assert!(b.admitted > a.admitted);
    }
}
