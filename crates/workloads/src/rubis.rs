//! The RUBiS multi-tier auction-site model.
//!
//! ## Request catalogue
//!
//! Table 1 of the paper lists sixteen request types. The offline-profiling
//! narrative in §3.1 gives their resource character: browsing (read-only)
//! requests serve static content and stress web↔application interactions
//! with "practically no database processing"; bid/browse/sell (read-write)
//! requests run Java servlets and generate heavy application↔database
//! interaction, with the application server also burning more CPU. The
//! per-tier service demands below encode exactly that structure; absolute
//! values are calibrated so a 24-client closed loop on a 2-pCPU host
//! reproduces the paper's utilization and latency *shapes*, not its
//! absolute milliseconds.
//!
//! ## Session model
//!
//! RUBiS clients follow probabilistic transitions emulating browsing
//! sessions. We approximate the transition matrix by its stationary mix:
//! each request type carries a weight in the browsing mix and in the
//! read-write mix, and a session is a fixed-length sequence of draws with
//! exponential think times.

use ixp::{AppTag, Packet};
use simcore::{Nanos, SimRng};

/// The three RUBiS tiers, each hosted in its own VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Apache front end.
    Web,
    /// Tomcat servlet container.
    App,
    /// MySQL backend.
    Db,
}

/// A RUBiS request type (one row of Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestType {
    /// Request name as printed in Table 1.
    pub name: &'static str,
    /// Stable ordinal carried in packets for DPI classification.
    pub class_id: u16,
    /// `true` for servlet/write-path requests.
    pub write: bool,
    /// Mean web-tier CPU demand in milliseconds.
    pub web_ms: f64,
    /// Mean application-tier CPU demand in milliseconds.
    pub app_ms: f64,
    /// Mean database-tier CPU demand in milliseconds (0 = tier skipped).
    pub db_ms: f64,
    /// Mean response size in bytes.
    pub resp_bytes: u32,
    /// Stationary weight in the browsing (read-only) mix.
    pub browse_weight: f64,
    /// Stationary weight in the bid/browse/sell (read-write) mix.
    pub rw_weight: f64,
}

/// The sixteen request types of Table 1.
///
/// Demands follow the profiling structure: read types have `db_ms` near
/// zero; write types are database- and application-heavy (`StoreBid`,
/// `PutComment` heaviest, matching their worst baseline latencies in the
/// paper).
pub const CATALOG: [RequestType; 16] = [
    RequestType { name: "Register",               class_id: 0,  write: true,  web_ms: 3.0,  app_ms: 8.0,  db_ms: 9.0, resp_bytes: 1200, browse_weight: 0.0,  rw_weight: 2.0 },
    RequestType { name: "Browse",                 class_id: 1,  write: false, web_ms: 8.0,  app_ms: 6.0,  db_ms: 0.0,  resp_bytes: 6000, browse_weight: 14.0, rw_weight: 8.0 },
    RequestType { name: "BrowseCategories",       class_id: 2,  write: false, web_ms: 9.0,  app_ms: 6.5,  db_ms: 0.0,  resp_bytes: 8000, browse_weight: 12.0, rw_weight: 7.0 },
    RequestType { name: "SearchItemsInCategory",  class_id: 3,  write: false, web_ms: 8.5,  app_ms: 7.0,  db_ms: 1.5,  resp_bytes: 9000, browse_weight: 14.0, rw_weight: 8.0 },
    RequestType { name: "BrowseRegions",          class_id: 4,  write: false, web_ms: 8.5,  app_ms: 6.0,  db_ms: 0.0,  resp_bytes: 7000, browse_weight: 9.0,  rw_weight: 5.0 },
    RequestType { name: "BrowseCategoriesInRegion", class_id: 5, write: false, web_ms: 9.0,  app_ms: 6.5,  db_ms: 0.0,  resp_bytes: 8000, browse_weight: 8.0,  rw_weight: 5.0 },
    RequestType { name: "SearchItemsInRegion",    class_id: 6,  write: false, web_ms: 8.5,  app_ms: 7.0,  db_ms: 1.5,  resp_bytes: 8500, browse_weight: 8.0,  rw_weight: 5.0 },
    RequestType { name: "ViewItem",               class_id: 7,  write: false, web_ms: 9.0,  app_ms: 7.5,  db_ms: 2.0,  resp_bytes: 7500, browse_weight: 16.0, rw_weight: 10.0 },
    RequestType { name: "BuyNow",                 class_id: 8,  write: true,  web_ms: 3.0,  app_ms: 8.0,  db_ms: 9.0,  resp_bytes: 4000, browse_weight: 0.0,  rw_weight: 4.0 },
    RequestType { name: "PutBidAuth",             class_id: 9,  write: true,  web_ms: 3.0,  app_ms: 8.0,  db_ms: 9.5,  resp_bytes: 3000, browse_weight: 0.0,  rw_weight: 5.0 },
    RequestType { name: "PutBid",                 class_id: 10, write: true,  web_ms: 3.0,  app_ms: 9.0,  db_ms: 12.0, resp_bytes: 4500, browse_weight: 0.0,  rw_weight: 6.0 },
    RequestType { name: "StoreBid",               class_id: 11, write: true,  web_ms: 3.0,  app_ms: 9.5,  db_ms: 14.0, resp_bytes: 2500, browse_weight: 0.0,  rw_weight: 6.0 },
    RequestType { name: "PutComment",             class_id: 12, write: true,  web_ms: 3.0,  app_ms: 10.0,  db_ms: 16.0, resp_bytes: 2500, browse_weight: 0.0,  rw_weight: 3.0 },
    RequestType { name: "Sell",                   class_id: 13, write: true,  web_ms: 3.0,  app_ms: 8.0,  db_ms: 10.0,  resp_bytes: 3500, browse_weight: 0.0,  rw_weight: 4.0 },
    RequestType { name: "SellItemForm",           class_id: 14, write: false, web_ms: 6.0,  app_ms: 4.0,  db_ms: 0.0,  resp_bytes: 3000, browse_weight: 5.0,  rw_weight: 3.0 },
    RequestType { name: "AboutMe",                class_id: 15, write: false, web_ms: 8.0,  app_ms: 7.0,  db_ms: 2.5,  resp_bytes: 6500, browse_weight: 14.0, rw_weight: 9.0 },
];

/// Looks up a request type by its DPI class ordinal.
pub fn by_class_id(class_id: u16) -> Option<&'static RequestType> {
    CATALOG.get(class_id as usize)
}

/// The two standard RUBiS client workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mix {
    /// Browsing (read-only) mix: static pages and images.
    Browsing,
    /// Bid/browse/sell (read-write) mix: servlets, reads and writes.
    #[default]
    ReadWrite,
}

/// Sampled per-tier demands for one request instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierDemands {
    /// Web tier CPU demand.
    pub web: Nanos,
    /// Application tier CPU demand.
    pub app: Nanos,
    /// Database tier CPU demand (zero when the tier is skipped).
    pub db: Nanos,
}

impl TierDemands {
    /// Total CPU demand across tiers.
    pub fn total(&self) -> Nanos {
        self.web + self.app + self.db
    }
}

/// RUBiS workload configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RubisConfig {
    /// Concurrent closed-loop clients.
    pub clients: u32,
    /// Which request mix the clients issue.
    pub mix: Mix,
    /// Mean exponential think time between a response and the next
    /// request of a session.
    pub think_mean: Nanos,
    /// Requests per user session.
    pub session_len: u32,
    /// Relative jitter (σ/mean) applied to sampled demands.
    pub demand_jitter: f64,
    /// Probability that a session stays in its current read/write phase
    /// for the next request. RUBiS bid/sell flows chain several
    /// write-path requests (PutBidAuth → PutBid → StoreBid), so request
    /// classes arrive in bursts rather than i.i.d.
    pub phase_persistence: f64,
    /// Multiplier applied to all catalogue service demands (scenario
    /// scaling knob).
    pub demand_scale: f64,
}

impl Default for RubisConfig {
    fn default() -> Self {
        RubisConfig {
            clients: 24,
            mix: Mix::ReadWrite,
            think_mean: Nanos::from_millis(100),
            session_len: 12,
            demand_jitter: 0.25,
            phase_persistence: 0.92,
            demand_scale: 1.0,
        }
    }
}

/// The RUBiS stochastic model: request sampling, think times, demand
/// jitter and packet synthesis. The platform drives it; it owns no clock.
#[derive(Debug)]
pub struct RubisModel {
    cfg: RubisConfig,
    rng: SimRng,
    read_weights: Vec<f64>,
    write_weights: Vec<f64>,
    write_fraction: f64,
    phases: Vec<bool>, // per-client: currently in a write phase?
    next_packet_id: u64,
}

impl RubisModel {
    /// Creates a model for the configured mix with a deterministic seed.
    pub fn new(cfg: RubisConfig, seed: u64) -> Self {
        let mix_weight = |rt: &RequestType| match cfg.mix {
            Mix::Browsing => rt.browse_weight,
            Mix::ReadWrite => rt.rw_weight,
        };
        let read_weights: Vec<f64> = CATALOG
            .iter()
            .map(|rt| if rt.write { 0.0 } else { mix_weight(rt) })
            .collect();
        let write_weights: Vec<f64> = CATALOG
            .iter()
            .map(|rt| if rt.write { mix_weight(rt) } else { 0.0 })
            .collect();
        let wsum: f64 = write_weights.iter().sum();
        let total: f64 = wsum + read_weights.iter().sum::<f64>();
        let write_fraction = if total > 0.0 { wsum / total } else { 0.0 };
        let mut rng = SimRng::new(seed);
        let phases = (0..cfg.clients)
            .map(|_| rng.chance(write_fraction))
            .collect();
        RubisModel {
            cfg,
            rng,
            read_weights,
            write_weights,
            write_fraction,
            phases,
            next_packet_id: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &RubisConfig {
        &self.cfg
    }

    /// Draws the next request type according to the mix, honouring the
    /// client's current session phase (read browsing vs. write flows).
    pub fn next_request_for(&mut self, client: u32) -> &'static RequestType {
        let c = client as usize % self.phases.len().max(1);
        if !self.rng.chance(self.cfg.phase_persistence) {
            // Phase change: re-draw according to the stationary fraction.
            self.phases[c] = self.rng.chance(self.write_fraction);
        }
        let writing = self.phases[c] && self.write_fraction > 0.0;
        let weights = if writing {
            &self.write_weights
        } else {
            &self.read_weights
        };
        let idx = self.rng.weighted_index(weights);
        &CATALOG[idx]
    }

    /// Draws the next request type ignoring session phases (stationary
    /// mix), used by stateless callers.
    pub fn next_request(&mut self) -> &'static RequestType {
        self.next_request_for(0)
    }

    /// The stationary write fraction of the configured mix.
    pub fn write_fraction(&self) -> f64 {
        self.write_fraction
    }

    /// Draws a think time.
    pub fn think_time(&mut self) -> Nanos {
        self.rng.exp_nanos(self.cfg.think_mean)
    }

    /// Samples jittered per-tier demands for one instance of `rt`.
    pub fn demands(&mut self, rt: &RequestType) -> TierDemands {
        let scale = self.cfg.demand_scale;
        let mut tier = |mean_ms: f64| {
            if mean_ms <= 0.0 {
                return Nanos::ZERO;
            }
            let mean_ms = mean_ms * scale;
            let sd = mean_ms * self.cfg.demand_jitter;
            let ms = self.rng.normal(mean_ms, sd).max(mean_ms * 0.2);
            Nanos::from_secs_f64(ms / 1e3)
        };
        TierDemands {
            web: tier(rt.web_ms),
            app: tier(rt.app_ms),
            db: tier(rt.db_ms),
        }
    }

    /// Builds the on-wire request packet for `rt` addressed to the web
    /// VM's index.
    pub fn request_packet(&mut self, rt: &RequestType, web_vm: u32) -> Packet {
        let id = self.next_packet_id;
        self.next_packet_id += 1;
        Packet::new(
            id,
            web_vm,
            420,
            AppTag::Http {
                class_id: rt.class_id,
                write: rt.write,
            },
        )
    }

    /// Builds the response packet for `rt` (single MTU-clamped packet
    /// standing in for the response burst).
    pub fn response_packet(&mut self, rt: &RequestType, client_vm: u32) -> Packet {
        let id = self.next_packet_id;
        self.next_packet_id += 1;
        Packet::new(
            id,
            client_vm,
            rt.resp_bytes.clamp(200, 1500),
            AppTag::HttpResponse {
                class_id: rt.class_id,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_structure_matches_profiling_narrative() {
        assert_eq!(CATALOG.len(), 16);
        for rt in &CATALOG {
            assert!(rt.web_ms > 0.0, "{} always hits the web tier", rt.name);
            if !rt.write {
                // Reads are light on the database.
                assert!(rt.db_ms <= 5.0, "{} is a read", rt.name);
            } else {
                // Writes hit the database hard.
                assert!(rt.db_ms >= 4.0, "{} is a write", rt.name);
                assert_eq!(rt.browse_weight, 0.0, "writes absent from browsing mix");
            }
        }
        // The heaviest writes of Table 1 are the heaviest here.
        let store = by_class_id(11).unwrap();
        let comment = by_class_id(12).unwrap();
        for rt in &CATALOG {
            if rt.name != "PutComment" {
                assert!(comment.db_ms >= rt.db_ms);
            }
        }
        assert!(store.db_ms > 8.0);
    }

    #[test]
    fn class_ids_are_their_indices() {
        for (i, rt) in CATALOG.iter().enumerate() {
            assert_eq!(rt.class_id as usize, i);
            assert_eq!(by_class_id(rt.class_id).unwrap().name, rt.name);
        }
        assert!(by_class_id(99).is_none());
    }

    #[test]
    fn browsing_mix_draws_only_reads() {
        let cfg = RubisConfig {
            mix: Mix::Browsing,
            ..RubisConfig::default()
        };
        let mut m = RubisModel::new(cfg, 1);
        for _ in 0..1000 {
            assert!(!m.next_request().write);
        }
    }

    #[test]
    fn readwrite_mix_draws_both() {
        let mut m = RubisModel::new(RubisConfig::default(), 1);
        let (mut reads, mut writes) = (0, 0);
        for _ in 0..2000 {
            if m.next_request().write {
                writes += 1;
            } else {
                reads += 1;
            }
        }
        assert!(writes > 300, "writes {writes}");
        assert!(reads > 600, "reads {reads}");
    }

    #[test]
    fn demands_are_jittered_but_positive() {
        let mut m = RubisModel::new(RubisConfig::default(), 2);
        let rt = by_class_id(11).unwrap(); // StoreBid
        let mut total = Nanos::ZERO;
        for _ in 0..100 {
            let d = m.demands(rt);
            assert!(d.web.as_nanos() > 0);
            assert!(d.db.as_nanos() > 0);
            total += d.total();
        }
        let avg_ms = total.as_millis_f64() / 100.0;
        let expect = rt.web_ms + rt.app_ms + rt.db_ms;
        assert!((avg_ms - expect).abs() < expect * 0.2, "avg {avg_ms} vs {expect}");
    }

    #[test]
    fn read_demands_skip_db() {
        let mut m = RubisModel::new(RubisConfig::default(), 3);
        let rt = by_class_id(1).unwrap(); // Browse
        assert_eq!(m.demands(rt).db, Nanos::ZERO);
    }

    #[test]
    fn packets_carry_classification() {
        let mut m = RubisModel::new(RubisConfig::default(), 4);
        let rt = by_class_id(10).unwrap(); // PutBid
        let p = m.request_packet(rt, 1);
        assert_eq!(p.dst_vm, 1);
        assert!(matches!(p.app, AppTag::Http { class_id: 10, write: true }));
        let r = m.response_packet(rt, 0);
        assert!(matches!(r.app, AppTag::HttpResponse { class_id: 10 }));
        assert!(r.len_bytes <= 1500);
        assert_ne!(p.id, r.id);
    }

    #[test]
    fn think_times_have_configured_mean() {
        let mut m = RubisModel::new(RubisConfig::default(), 5);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| m.think_time().as_secs_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.1).abs() < 0.01, "mean think {mean}");
    }

    #[test]
    fn phase_persistence_creates_class_runs() {
        // A single client's request stream must show much longer
        // same-class runs than an i.i.d. draw would.
        let cfg = RubisConfig { clients: 1, phase_persistence: 0.9, ..RubisConfig::default() };
        let mut m = RubisModel::new(cfg, 7);
        let mut runs = Vec::new();
        let mut current = m.next_request_for(0).write;
        let mut len = 1u32;
        for _ in 0..5000 {
            let w = m.next_request_for(0).write;
            if w == current {
                len += 1;
            } else {
                runs.push(len);
                current = w;
                len = 1;
            }
        }
        let mean_run = runs.iter().sum::<u32>() as f64 / runs.len() as f64;
        // i.i.d. at a 42% write fraction gives mean runs of ~2; with 0.9
        // persistence they must be several times longer.
        assert!(mean_run > 4.0, "mean class-run length {mean_run}");
    }

    #[test]
    fn stationary_write_fraction_is_preserved() {
        let mut m = RubisModel::new(RubisConfig::default(), 3);
        let expect = m.write_fraction();
        let mut writes = 0u32;
        let n = 20_000;
        for i in 0..n {
            if m.next_request_for(i % 24).write {
                writes += 1;
            }
        }
        let measured = writes as f64 / n as f64;
        assert!(
            (measured - expect).abs() < 0.03,
            "measured {measured} vs stationary {expect}"
        );
    }

    #[test]
    fn demand_scale_multiplies_all_tiers() {
        let base_cfg = RubisConfig { demand_jitter: 0.0, ..RubisConfig::default() };
        let scaled_cfg = RubisConfig { demand_scale: 3.0, ..base_cfg };
        let mut a = RubisModel::new(RubisConfig { demand_scale: 1.0, ..base_cfg }, 5);
        let mut b = RubisModel::new(scaled_cfg, 5);
        let rt = by_class_id(10).unwrap();
        let da = a.demands(rt);
        let db = b.demands(rt);
        assert_eq!(db.web.as_nanos(), 3 * da.web.as_nanos());
        assert_eq!(db.app.as_nanos(), 3 * da.app.as_nanos());
        assert_eq!(db.db.as_nanos(), 3 * da.db.as_nanos());
    }

    #[test]
    fn browsing_mix_write_fraction_is_zero() {
        let cfg = RubisConfig { mix: Mix::Browsing, ..RubisConfig::default() };
        let m = RubisModel::new(cfg, 1);
        assert_eq!(m.write_fraction(), 0.0);
    }
}
