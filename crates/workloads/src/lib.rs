//! # workloads — RUBiS and MPlayer application models
//!
//! The paper evaluates coordination with two widely-used benchmarks
//! (§3): **RUBiS**, an eBay-like three-tier auction site (Apache web
//! server, Tomcat servlet application server, MySQL database, each in its
//! own Xen VM), and **MPlayer**, a media player decoding RTSP/UDP video
//! streams inside guest VMs.
//!
//! Neither real application can run on a simulator, so this crate models
//! what the coordination schemes actually interact with:
//!
//! * [`rubis`] — the 16 request types of Table 1 with per-tier CPU service
//!   demands (derived from the paper's offline profiling narrative: read
//!   requests stress web↔app, write/servlet requests stress app↔db), the
//!   two standard client mixes (browsing and bid/browse/sell), and a
//!   closed-loop session generator with think times.
//! * [`mplayer`] — stream specifications (bit rate, frame rate), a paced
//!   frame/packet schedule, and a per-frame decode cost model calibrated
//!   so that the Figure 6 weight configurations reproduce the paper's
//!   meets/misses pattern.
//! * [`inference`] — open-loop multi-tenant inference serving for the
//!   accelerator island (§5's heterogeneous-future direction): a model
//!   catalogue spanning interactive and batch SLAs, Poisson per-tenant
//!   arrivals and per-request compute costs.
//! * [`adversary`] — strategic tenants that game the Tune/Trigger
//!   interface (demand-delta inflation, Trigger spam, free-riding),
//!   driving the price-of-anarchy experiment and the controller-side
//!   defenses in `coord`.
//! * [`session`] — open-loop session arrival with per-shard admission
//!   (an M/G/c/c loss door), the fleet-scale load model: offered load
//!   scales 100×–1000× beyond one shard's capacity and the admission
//!   cap is the knob fleet coordination moves between shards.
//!
//! ## Example
//!
//! ```
//! use workloads::rubis::{Mix, RubisModel, RubisConfig};
//!
//! let mut model = RubisModel::new(RubisConfig::default(), 42);
//! let rt = model.next_request();
//! assert!(!rt.name.is_empty());
//! let demands = model.demands(rt);
//! assert!(demands.total().as_nanos() > 0);
//! # let _ = Mix::Browsing;
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adversary;
pub mod inference;
pub mod mplayer;
pub mod rubis;
pub mod session;
