//! Strategic (adversarial) tenants that game the coordination interface.
//!
//! The Tune/Trigger vocabulary assumes requesters report honest demand.
//! Legrand & Touati's analysis of non-cooperative bag-of-tasks scheduling
//! (PAPERS.md) shows what happens when they don't: self-interested
//! players reach an equilibrium well below the cooperative optimum — the
//! *price of anarchy*. This module models the three strategies such a
//! tenant plays against the global controller:
//!
//! * [`Strategy::InflateTune`] — periodically request a large one-sided
//!   weight delta, monotonically ratcheting its own share upward.
//! * [`Strategy::SpamTrigger`] — fire preemptive Triggers far above any
//!   honest alarm rate, keeping itself runqueue-boosted at everyone
//!   else's expense.
//! * [`Strategy::FreeRide`] — send nothing and simply consume: a CPU hog
//!   that relies on honest tenants' coordinated concessions.
//!
//! An [`Adversary`] is a deterministic message source: the platform gives
//! it event-loop time ([`Adversary::next_at`]) and forwards whatever
//! [`Adversary::emit`] produces through the *real* coordination channel,
//! so adversarial traffic competes with honest traffic in the mailbox and
//! is policed by `coord`'s controller defenses. Experiment A1 sweeps the
//! adversary count and measures the QoS gap the defenses recover.

use coord::{CoordMsg, EntityId, IslandId};
use simcore::Nanos;

/// A strategic tenant's behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Request `delta` (typically large and positive) every `period`.
    InflateTune {
        /// Signed weight delta to request each time.
        delta: i32,
        /// Interval between requests.
        period: Nanos,
    },
    /// Fire a Trigger every `period`.
    SpamTrigger {
        /// Interval between triggers.
        period: Nanos,
    },
    /// Send no coordination traffic at all; just consume CPU.
    FreeRide,
}

/// Build-time description of one adversarial tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdversarySpec {
    /// The strategy the tenant plays.
    pub strategy: Strategy,
}

impl AdversarySpec {
    /// A demand-delta inflater: +512 every 250 ms — honest-looking
    /// per-message deltas (the request-type policy uses ±512 too) but
    /// monotone, ratcheting its weight without bound unless policed.
    pub fn inflate() -> Self {
        AdversarySpec {
            strategy: Strategy::InflateTune {
                delta: 512,
                period: Nanos::from_millis(250),
            },
        }
    }

    /// A Trigger spammer: one preemptive Trigger every 50 ms (20/s,
    /// roughly 100x the honest alarm rate).
    pub fn spam() -> Self {
        AdversarySpec {
            strategy: Strategy::SpamTrigger { period: Nanos::from_millis(50) },
        }
    }

    /// A free-rider: no messages, pure consumption.
    pub fn free_ride() -> Self {
        AdversarySpec { strategy: Strategy::FreeRide }
    }
}

/// A live adversary bound to a platform entity.
///
/// Purely deterministic: emission times are a fixed arithmetic sequence
/// from the strategy period, so adding adversaries never perturbs any
/// other RNG stream in the simulation.
#[derive(Debug, Clone)]
pub struct Adversary {
    entity: EntityId,
    target: Option<IslandId>,
    strategy: Strategy,
    next_at: Option<Nanos>,
    sent: u64,
}

impl Adversary {
    /// Binds a strategy to the entity it plays as. `start` is the
    /// simulation time of the first emission (free-riders never emit).
    pub fn new(
        entity: EntityId,
        target: Option<IslandId>,
        strategy: Strategy,
        start: Nanos,
    ) -> Self {
        let next_at = match strategy {
            Strategy::InflateTune { period, .. } | Strategy::SpamTrigger { period } => {
                Some(start + period)
            }
            Strategy::FreeRide => None,
        };
        Adversary { entity, target, strategy, next_at, sent: 0 }
    }

    /// The entity this adversary plays as.
    pub fn entity(&self) -> EntityId {
        self.entity
    }

    /// The strategy in play.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// When the next message should be emitted, if ever.
    pub fn next_at(&self) -> Option<Nanos> {
        self.next_at
    }

    /// Messages emitted so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Produces the message due at `now` (the host calls this when its
    /// event loop reaches [`next_at`](Self::next_at)) and advances the
    /// emission clock by one period.
    pub fn emit(&mut self, now: Nanos) -> Option<CoordMsg> {
        let due = self.next_at?;
        debug_assert!(now >= due, "emit called before the scheduled time");
        let (msg, period) = match self.strategy {
            Strategy::InflateTune { delta, period } => (
                CoordMsg::Tune { entity: self.entity, delta, target: self.target },
                period,
            ),
            Strategy::SpamTrigger { period } => {
                (CoordMsg::Trigger { entity: self.entity, target: self.target }, period)
            }
            Strategy::FreeRide => return None,
        };
        self.next_at = Some(due + period);
        self.sent += 1;
        Some(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inflater_emits_monotone_tunes_on_a_fixed_cadence() {
        let mut a = Adversary::new(EntityId(10), Some(IslandId(0)), AdversarySpec::inflate().strategy, Nanos::ZERO);
        let t0 = a.next_at().unwrap();
        assert_eq!(t0, Nanos::from_millis(250));
        let msg = a.emit(t0).unwrap();
        assert_eq!(
            msg,
            CoordMsg::Tune { entity: EntityId(10), delta: 512, target: Some(IslandId(0)) }
        );
        assert_eq!(a.next_at().unwrap(), Nanos::from_millis(500));
        assert_eq!(a.sent(), 1);
    }

    #[test]
    fn spammer_emits_triggers_20_per_second() {
        let mut a = Adversary::new(EntityId(11), None, AdversarySpec::spam().strategy, Nanos::ZERO);
        let mut n = 0;
        while let Some(t) = a.next_at() {
            if t > Nanos::from_secs(1) {
                break;
            }
            assert!(matches!(a.emit(t), Some(CoordMsg::Trigger { .. })));
            n += 1;
        }
        assert_eq!(n, 20);
    }

    #[test]
    fn free_rider_never_emits() {
        let mut a =
            Adversary::new(EntityId(12), None, AdversarySpec::free_ride().strategy, Nanos::ZERO);
        assert_eq!(a.next_at(), None);
        assert_eq!(a.emit(Nanos::from_secs(5)), None);
        assert_eq!(a.sent(), 0);
    }

    #[test]
    fn emission_schedule_is_deterministic() {
        let run = || {
            let mut a =
                Adversary::new(EntityId(1), None, AdversarySpec::spam().strategy, Nanos::ZERO);
            let mut log = Vec::new();
            for _ in 0..10 {
                let t = a.next_at().unwrap();
                a.emit(t);
                log.push(t);
            }
            log
        };
        assert_eq!(run(), run());
    }
}
