//! Composable value generators with greedy shrinking.
//!
//! A [`Gen<T>`] couples a sampling function (driven by [`simcore::SimRng`],
//! so every draw is deterministic in the case seed) with a shrinking
//! function that proposes strictly "smaller" candidates for a failing
//! value. Shrinking operates on values, not on the random stream: given
//! the same failing value, the shrink sequence replays identically, which
//! keeps `SIMTEST_SEED` reproductions exact.

use simcore::{Nanos, SimRng};
use std::rc::Rc;

type ShrinkFn<T> = Rc<dyn Fn(&T) -> Vec<T>>;

/// A generator of values of type `T` with optional shrinking.
///
/// Cloning is cheap (reference-counted closures), so generators compose
/// freely: build once, reuse across properties.
///
/// # Example
///
/// ```
/// use simtest::gen::Gen;
/// use simcore::SimRng;
/// let g = Gen::u64_in(10, 20);
/// let mut rng = SimRng::new(1);
/// let v = g.sample(&mut rng);
/// assert!((10..=20).contains(&v));
/// // Shrink candidates stay inside the configured range.
/// assert!(g.shrinks(&v).iter().all(|s| (10..=20).contains(s)));
/// ```
pub struct Gen<T> {
    sample: Rc<dyn Fn(&mut SimRng) -> T>,
    shrink: ShrinkFn<T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen {
            sample: Rc::clone(&self.sample),
            shrink: Rc::clone(&self.shrink),
        }
    }
}

impl<T: 'static> Gen<T> {
    /// A generator from a sampling function, with no shrinking.
    pub fn new(f: impl Fn(&mut SimRng) -> T + 'static) -> Self {
        Gen {
            sample: Rc::new(f),
            shrink: Rc::new(|_| Vec::new()),
        }
    }

    /// Attaches (replaces) the shrinking function: given a failing value,
    /// return candidate replacements in most-aggressive-first order.
    pub fn with_shrink(mut self, s: impl Fn(&T) -> Vec<T> + 'static) -> Self {
        self.shrink = Rc::new(s);
        self
    }

    /// Draws one value.
    pub fn sample(&self, rng: &mut SimRng) -> T {
        (self.sample)(rng)
    }

    /// Shrink candidates for `v` (possibly empty).
    pub fn shrinks(&self, v: &T) -> Vec<T> {
        (self.shrink)(v)
    }

    /// Maps the generated value. Shrinking is lost (the mapping is not
    /// invertible in general); reattach with
    /// [`with_shrink`](Self::with_shrink) if the image type shrinks.
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        let sample = self.sample;
        Gen::new(move |rng| f(sample(rng)))
    }

    /// Picks uniformly among several generators of the same type. A
    /// failing value is offered every branch's shrink candidates (greedy
    /// shrinking keeps only candidates that still fail, so foreign
    /// branches' suggestions are simply discarded by the runner).
    pub fn one_of(gens: Vec<Gen<T>>) -> Gen<T> {
        assert!(!gens.is_empty(), "one_of needs at least one generator");
        let shrinkers: Vec<Gen<T>> = gens.clone();
        let n = gens.len() as u64;
        Gen::new(move |rng| gens[rng.below(n) as usize].sample(rng)).with_shrink(move |v| {
            shrinkers.iter().flat_map(|g| g.shrinks(v)).collect()
        })
    }
}

impl<T: Clone + PartialEq + 'static> Gen<T> {
    /// Always the same value. Shrinks to nothing.
    pub fn just(v: T) -> Gen<T> {
        Gen::new(move |_| v.clone())
    }

    /// Picks uniformly from a fixed list; shrinks toward earlier entries.
    pub fn choice(values: Vec<T>) -> Gen<T> {
        assert!(!values.is_empty(), "choice needs at least one value");
        let n = values.len() as u64;
        let vals = values.clone();
        Gen::new(move |rng| values[rng.below(n) as usize].clone()).with_shrink(move |v| {
            vals.iter().take_while(|c| *c != v).cloned().collect()
        })
    }
}

/// Candidates between `lo` and `v` (exclusive), nearest `lo` first:
/// `lo`, then binary steps toward `v`, then `v - 1`.
fn shrink_integer_toward(lo: i128, v: i128) -> Vec<i128> {
    let mut out = Vec::new();
    if v == lo {
        return out;
    }
    out.push(lo);
    let mut gap = v - lo;
    while gap > 1 {
        gap /= 2;
        let cand = v - gap;
        if cand != lo && !out.contains(&cand) {
            out.push(cand);
        }
    }
    out
}

impl Gen<u64> {
    /// Uniform in `[lo, hi]`, shrinking toward `lo`.
    pub fn u64_in(lo: u64, hi: u64) -> Gen<u64> {
        assert!(lo <= hi);
        Gen::new(move |rng| rng.range(lo, hi)).with_shrink(move |&v| {
            shrink_integer_toward(lo as i128, v as i128)
                .into_iter()
                .map(|x| x as u64)
                .collect()
        })
    }

    /// Any `u64`, shrinking toward zero.
    pub fn u64_any() -> Gen<u64> {
        Gen::new(|rng| rng.next_u64()).with_shrink(|&v| {
            shrink_integer_toward(0, v as i128)
                .into_iter()
                .map(|x| x as u64)
                .collect()
        })
    }
}

impl Gen<u32> {
    /// Uniform in `[lo, hi]`, shrinking toward `lo`.
    pub fn u32_in(lo: u32, hi: u32) -> Gen<u32> {
        Gen::u64_in(lo as u64, hi as u64).map(|v| v as u32).with_shrink(move |&v| {
            shrink_integer_toward(lo as i128, v as i128)
                .into_iter()
                .map(|x| x as u32)
                .collect()
        })
    }

    /// Any `u32`, shrinking toward zero.
    pub fn u32_any() -> Gen<u32> {
        Gen::u32_in(0, u32::MAX)
    }
}

impl Gen<u16> {
    /// Uniform in `[lo, hi]`, shrinking toward `lo`.
    pub fn u16_in(lo: u16, hi: u16) -> Gen<u16> {
        Gen::u64_in(lo as u64, hi as u64).map(|v| v as u16).with_shrink(move |&v| {
            shrink_integer_toward(lo as i128, v as i128)
                .into_iter()
                .map(|x| x as u16)
                .collect()
        })
    }

    /// Any `u16`, shrinking toward zero.
    pub fn u16_any() -> Gen<u16> {
        Gen::u16_in(0, u16::MAX)
    }
}

impl Gen<i32> {
    /// Uniform in `[lo, hi]`, shrinking toward the in-range value nearest
    /// zero.
    pub fn i32_in(lo: i32, hi: i32) -> Gen<i32> {
        assert!(lo <= hi);
        let anchor = 0i32.clamp(lo, hi);
        Gen::new(move |rng| {
            (lo as i64 + rng.below((hi as i64 - lo as i64 + 1) as u64) as i64) as i32
        })
            .with_shrink(move |&v| {
                let mut out: Vec<i32> = shrink_integer_toward(anchor as i128, v as i128)
                    .into_iter()
                    .map(|x| x as i32)
                    .collect();
                if v < anchor {
                    // shrink_integer_toward walks upward; mirror it.
                    out = shrink_integer_toward(-(anchor as i128), -(v as i128))
                        .into_iter()
                        .map(|x| -x as i32)
                        .collect();
                }
                out
            })
    }

    /// Any `i32`, shrinking toward zero.
    pub fn i32_any() -> Gen<i32> {
        Gen::i32_in(i32::MIN + 1, i32::MAX)
    }
}

impl Gen<f64> {
    /// Uniform in `[lo, hi)`, shrinking toward `lo`.
    pub fn f64_in(lo: f64, hi: f64) -> Gen<f64> {
        assert!(lo < hi);
        Gen::new(move |rng| lo + rng.f64() * (hi - lo)).with_shrink(move |&v| {
            let mut out = Vec::new();
            if v > lo {
                out.push(lo);
                let mid = lo + (v - lo) / 2.0;
                if mid > lo && mid < v {
                    out.push(mid);
                }
            }
            out
        })
    }
}

impl Gen<bool> {
    /// Fair coin, shrinking `true` to `false`.
    pub fn bool_any() -> Gen<bool> {
        Gen::new(|rng| rng.chance(0.5))
            .with_shrink(|&v| if v { vec![false] } else { Vec::new() })
    }
}

impl Gen<Nanos> {
    /// Uniform duration in `[lo, hi]` nanoseconds, shrinking toward `lo`.
    pub fn nanos_in(lo: Nanos, hi: Nanos) -> Gen<Nanos> {
        Gen::u64_in(lo.as_nanos(), hi.as_nanos()).map(Nanos).with_shrink(move |v| {
            shrink_integer_toward(lo.as_nanos() as i128, v.as_nanos() as i128)
                .into_iter()
                .map(|x| Nanos(x as u64))
                .collect()
        })
    }
}

/// Pairs two generators; shrinks componentwise (left first).
pub fn zip2<A: Clone + 'static, B: Clone + 'static>(a: Gen<A>, b: Gen<B>) -> Gen<(A, B)> {
    let (sa, sb) = (a.clone(), b.clone());
    Gen::new(move |rng| (a.sample(rng), b.sample(rng))).with_shrink(move |(va, vb)| {
        let mut out: Vec<(A, B)> = sa
            .shrinks(va)
            .into_iter()
            .map(|x| (x, vb.clone()))
            .collect();
        out.extend(sb.shrinks(vb).into_iter().map(|y| (va.clone(), y)));
        out
    })
}

/// Triples three generators; shrinks componentwise.
pub fn zip3<A, B, C>(a: Gen<A>, b: Gen<B>, c: Gen<C>) -> Gen<(A, B, C)>
where
    A: Clone + 'static,
    B: Clone + 'static,
    C: Clone + 'static,
{
    let nested = zip2(a, zip2(b, c));
    let shrinker = nested.clone();
    Gen::new(move |rng| {
        let (a, (b, c)) = nested.sample(rng);
        (a, b, c)
    })
    .with_shrink(move |(a, b, c)| {
        shrinker
            .shrinks(&(a.clone(), (b.clone(), c.clone())))
            .into_iter()
            .map(|(a, (b, c))| (a, b, c))
            .collect()
    })
}

/// Vectors of `elem` with length uniform in `[min_len, max_len]`.
///
/// Shrinking removes chunks from the end, then single elements, then
/// shrinks individual elements in place — always respecting `min_len`.
pub fn vec_of<T: Clone + 'static>(elem: Gen<T>, min_len: usize, max_len: usize) -> Gen<Vec<T>> {
    assert!(min_len <= max_len);
    let sampler = elem.clone();
    Gen::new(move |rng| {
        let n = rng.range(min_len as u64, max_len as u64) as usize;
        (0..n).map(|_| sampler.sample(rng)).collect()
    })
    .with_shrink(move |v: &Vec<T>| {
        let mut out: Vec<Vec<T>> = Vec::new();
        let n = v.len();
        // Drop suffix chunks: halve toward min_len.
        let mut keep = min_len.max(n / 2);
        while keep < n {
            out.push(v[..keep].to_vec());
            keep = keep + (n - keep).div_ceil(2);
            if keep >= n {
                break;
            }
        }
        // Drop single elements (bounded scan keeps shrinking cheap).
        if n > min_len {
            for i in 0..n.min(16) {
                let mut w = v.clone();
                w.remove(i);
                out.push(w);
            }
        }
        // Shrink individual elements in place (first candidate each).
        for i in 0..n.min(16) {
            if let Some(smaller) = elem.shrinks(&v[i]).into_iter().next() {
                let mut w = v.clone();
                w[i] = smaller;
                out.push(w);
            }
        }
        out
    })
}

/// Generators for the archipelago domain vocabulary.
pub mod domain {
    use super::{vec_of, zip2, Gen};
    use coord::{CoordMsg, EntityId, IslandId, IslandKind, KnobAxis};
    use pcie::{FaultProfile, Jitter};
    use simcore::Nanos;

    /// Durations up to ~1 s, shrinking toward zero.
    pub fn nanos() -> Gen<Nanos> {
        Gen::nanos_in(Nanos::ZERO, Nanos::from_secs(1))
    }

    /// Any entity id, shrinking toward `EntityId(0)`.
    pub fn entity_id() -> Gen<EntityId> {
        Gen::u32_any().map(EntityId).with_shrink(|e| {
            Gen::u32_any().shrinks(&e.0).into_iter().map(EntityId).collect()
        })
    }

    /// Any island id, shrinking toward `IslandId(0)`.
    pub fn island_id() -> Gen<IslandId> {
        Gen::u16_any().map(IslandId).with_shrink(|i| {
            Gen::u16_any().shrinks(&i.0).into_iter().map(IslandId).collect()
        })
    }

    /// One of the four island kinds, shrinking toward `GeneralPurpose`.
    pub fn island_kind() -> Gen<IslandKind> {
        Gen::choice(vec![
            IslandKind::GeneralPurpose,
            IslandKind::NetworkProcessor,
            IslandKind::Accelerator,
            IslandKind::Storage,
        ])
    }

    /// One of the three energy-knob axes, shrinking toward `Dvfs`.
    pub fn knob_axis() -> Gen<KnobAxis> {
        Gen::choice(vec![KnobAxis::Dvfs, KnobAxis::CacheWays, KnobAxis::MembwShare])
    }

    /// `None` or some *addressable* island id; shrinks toward `None`.
    /// `IslandId(u16::MAX)` is excluded: the wire codec reserves that id
    /// as the broadcast/`None` sentinel, so `Some(MAX)` is outside the
    /// encodable domain of an optional target.
    pub fn opt_island() -> Gen<Option<IslandId>> {
        let id = Gen::u16_in(0, u16::MAX - 1).map(IslandId);
        let shrink_id = island_id();
        Gen::one_of(vec![
            Gen::new(|_| None),
            Gen::new(move |rng| Some(id.sample(rng))),
        ])
        .with_shrink(move |v| match v {
            None => Vec::new(),
            Some(i) => {
                let mut out = vec![None];
                out.extend(shrink_id.shrinks(i).into_iter().map(Some));
                out
            }
        })
    }

    /// Realistic wire packet lengths (1..2000 bytes), shrinking toward 1.
    pub fn packet_len() -> Gen<u32> {
        Gen::u32_in(1, 1999)
    }

    /// Xen-style scheduler weights (64..1024), shrinking toward 64.
    pub fn weight() -> Gen<u32> {
        Gen::u32_in(64, 1023)
    }

    /// Any coordination message, mirroring the seed suite's `arb_msg`
    /// strategy. Shrinks every numeric field toward zero and optional
    /// targets toward `None`, keeping the variant fixed.
    pub fn coord_msg() -> Gen<CoordMsg> {
        let reg_island = zip2(island_id(), island_kind())
            .map(|(island, kind)| CoordMsg::RegisterIsland { island, kind });
        let reg_entity = zip2(entity_id(), zip2(island_id(), Gen::u64_any())).map(
            |(entity, (island, local_key))| CoordMsg::RegisterEntity { entity, island, local_key },
        );
        let tune = zip2(entity_id(), zip2(Gen::i32_any(), opt_island()))
            .map(|(entity, (delta, target))| CoordMsg::Tune { entity, delta, target });
        let trigger = zip2(entity_id(), opt_island())
            .map(|(entity, target)| CoordMsg::Trigger { entity, target });
        let ack = Gen::u32_any().map(|seq| CoordMsg::Ack { seq });
        let knob = zip2(entity_id(), zip2(zip2(knob_axis(), Gen::u32_in(0, 7)), opt_island()))
            .map(|(entity, ((axis, rung), target))| CoordMsg::SetKnob {
                entity,
                axis,
                rung: rung as u8,
                target,
            });
        Gen::one_of(vec![reg_island, reg_entity, tune, trigger, ack, knob])
            .with_shrink(shrink_msg)
    }

    fn shrink_msg(m: &CoordMsg) -> Vec<CoordMsg> {
        match *m {
            CoordMsg::RegisterIsland { island, kind } => island_id()
                .shrinks(&island)
                .into_iter()
                .map(|island| CoordMsg::RegisterIsland { island, kind })
                .collect(),
            CoordMsg::RegisterEntity { entity, island, local_key } => {
                let mut out: Vec<CoordMsg> = entity_id()
                    .shrinks(&entity)
                    .into_iter()
                    .map(|entity| CoordMsg::RegisterEntity { entity, island, local_key })
                    .collect();
                out.extend(
                    Gen::u64_any()
                        .shrinks(&local_key)
                        .into_iter()
                        .map(|local_key| CoordMsg::RegisterEntity { entity, island, local_key }),
                );
                out
            }
            CoordMsg::Tune { entity, delta, target } => {
                let mut out: Vec<CoordMsg> = Gen::i32_any()
                    .shrinks(&delta)
                    .into_iter()
                    .map(|delta| CoordMsg::Tune { entity, delta, target })
                    .collect();
                out.extend(
                    opt_island()
                        .shrinks(&target)
                        .into_iter()
                        .map(|target| CoordMsg::Tune { entity, delta, target }),
                );
                out
            }
            CoordMsg::Trigger { entity, target } => opt_island()
                .shrinks(&target)
                .into_iter()
                .map(|target| CoordMsg::Trigger { entity, target })
                .chain(
                    entity_id()
                        .shrinks(&entity)
                        .into_iter()
                        .map(|entity| CoordMsg::Trigger { entity, target }),
                )
                .collect(),
            CoordMsg::Ack { seq } => Gen::u32_any()
                .shrinks(&seq)
                .into_iter()
                .map(|seq| CoordMsg::Ack { seq })
                .collect(),
            CoordMsg::SetKnob { entity, axis, rung, target } => {
                let mut out: Vec<CoordMsg> = (0..rung)
                    .map(|rung| CoordMsg::SetKnob { entity, axis, rung, target })
                    .collect();
                out.extend(
                    opt_island()
                        .shrinks(&target)
                        .into_iter()
                        .map(|target| CoordMsg::SetKnob { entity, axis, rung, target }),
                );
                out
            }
        }
    }

    /// Vectors of coordination messages (1..50, like the seed stream
    /// round-trip property).
    pub fn coord_msgs() -> Gen<Vec<CoordMsg>> {
        vec_of(coord_msg(), 1, 49)
    }

    /// Channel fault profiles for the reliability properties: loss up to
    /// 50%, duplication up to 30%, jitter up to ~200 µs, and an optional
    /// reorder window up to 1 ms. Shrinks by zeroing one fault dimension
    /// at a time, toward [`FaultProfile::none()`].
    pub fn fault_profile() -> Gen<FaultProfile> {
        let jitter = Gen::one_of(vec![
            Gen::new(|_| Jitter::None),
            Gen::nanos_in(Nanos(1), Nanos::from_micros(200)).map(|max| Jitter::Uniform { max }),
            Gen::nanos_in(Nanos(1), Nanos::from_micros(50))
                .map(|mean| Jitter::Exponential { mean }),
        ]);
        let reorder = Gen::one_of(vec![
            Gen::new(|_| Nanos::ZERO),
            Gen::nanos_in(Nanos(1), Nanos::from_millis(1)),
        ]);
        zip2(
            zip2(Gen::f64_in(0.0, 0.5), Gen::f64_in(0.0, 0.3)),
            zip2(jitter, reorder),
        )
        .map(|((drop, dup), (jitter, reorder))| {
            FaultProfile::none()
                .with_drop(drop)
                .with_dup(dup)
                .with_jitter(jitter)
                .with_reorder(reorder)
        })
        .with_shrink(|p| {
            let mut out = Vec::new();
            if !p.is_none() {
                out.push(FaultProfile::none());
            }
            if p.drop_prob > 0.0 {
                out.push(FaultProfile { drop_prob: 0.0, ..*p });
            }
            if p.dup_prob > 0.0 {
                out.push(FaultProfile { dup_prob: 0.0, ..*p });
            }
            if p.jitter != Jitter::None {
                out.push(FaultProfile { jitter: Jitter::None, ..*p });
            }
            if p.reorder_window > Nanos::ZERO {
                out.push(FaultProfile { reorder_window: Nanos::ZERO, ..*p });
            }
            out
        })
    }

    /// One generated inference tenant: the model ordinal it serves, a
    /// per-request accelerator compute cost, an open-loop arrival rate and
    /// the request's device-memory footprint.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct InferenceTenantMix {
        /// Model catalogue ordinal (0..=3).
        pub model_id: u16,
        /// Per-request compute cost on one execution unit.
        pub cost: Nanos,
        /// Mean arrival rate, requests per second.
        pub rate_per_sec: u32,
        /// Bytes pinned in device memory per request.
        pub bytes: u32,
    }

    impl InferenceTenantMix {
        /// The least-loaded tenant of the domain (the shrink anchor).
        pub fn minimal() -> Self {
            InferenceTenantMix {
                model_id: 0,
                cost: Nanos::from_micros(50),
                rate_per_sec: 1,
                bytes: 512,
            }
        }
    }

    /// Multi-tenant inference mixes for the accelerator properties: 1–6
    /// tenants, compute costs from 50 µs to 5 ms, rates up to 400 req/s
    /// and footprints from 512 B to 64 KiB. Shrinks tenant-count via
    /// `vec_of` and each tenant one dimension at a time toward
    /// [`InferenceTenantMix::minimal`].
    pub fn inference_mix() -> Gen<Vec<InferenceTenantMix>> {
        let tenant = zip2(
            zip2(
                Gen::u16_in(0, 3),
                Gen::nanos_in(Nanos::from_micros(50), Nanos::from_millis(5)),
            ),
            zip2(Gen::u32_in(1, 400), Gen::u32_in(512, 64 * 1024)),
        )
        .map(|((model_id, cost), (rate_per_sec, bytes))| InferenceTenantMix {
            model_id,
            cost,
            rate_per_sec,
            bytes,
        })
        .with_shrink(|t| {
            let min = InferenceTenantMix::minimal();
            let mut out = Vec::new();
            if *t != min {
                out.push(min);
            }
            if t.model_id != min.model_id {
                out.push(InferenceTenantMix { model_id: min.model_id, ..*t });
            }
            if t.cost != min.cost {
                out.push(InferenceTenantMix { cost: min.cost, ..*t });
            }
            if t.rate_per_sec != min.rate_per_sec {
                out.push(InferenceTenantMix { rate_per_sec: min.rate_per_sec, ..*t });
            }
            if t.bytes != min.bytes {
                out.push(InferenceTenantMix { bytes: min.bytes, ..*t });
            }
            out
        });
        vec_of(tenant, 1, 6)
    }

    /// One generated fleet shape: how many shards, how deep the
    /// coordination tree goes, how shards pack into racks, and how hostile
    /// the cross-node wire is.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct FleetShape {
        /// Shard (node) count (1..=16).
        pub shards: u16,
        /// Coordination tree depth (1..=3).
        pub depth: u8,
        /// Shards per rack (1..=shards).
        pub rack_size: u16,
        /// One-way cross-node bus latency.
        pub latency: Nanos,
        /// Per-frame loss probability on the bus.
        pub loss: f64,
    }

    impl FleetShape {
        /// The smallest fleet of the domain (the shrink anchor): one
        /// shard, a flat tree, and a perfect 1 µs wire.
        pub fn minimal() -> Self {
            FleetShape {
                shards: 1,
                depth: 1,
                rack_size: 1,
                latency: Nanos::from_micros(1),
                loss: 0.0,
            }
        }
    }

    /// Fleet topologies for the sharded-world properties: 1–16 shards,
    /// tree depth 1–3, rack sizes that never exceed the shard count,
    /// cross-node latencies from 1 µs to 5 ms and loss up to 40%.
    /// Shrinks one dimension at a time toward [`FleetShape::minimal`].
    pub fn fleet_topology() -> Gen<FleetShape> {
        zip2(
            zip2(Gen::u16_in(1, 16), Gen::u16_in(1, 3)),
            zip2(
                zip2(Gen::u16_in(1, 16), Gen::f64_in(0.0, 0.4)),
                Gen::nanos_in(Nanos::from_micros(1), Nanos::from_millis(5)),
            ),
        )
        .map(|((shards, depth), ((rack_raw, loss), latency))| FleetShape {
            shards,
            depth: depth as u8,
            // Fold the raw draw into 1..=shards so every shape is valid.
            rack_size: (rack_raw - 1) % shards + 1,
            latency,
            loss,
        })
        .with_shrink(|t| {
            let min = FleetShape::minimal();
            let mut out = Vec::new();
            if *t != min {
                out.push(min);
            }
            if t.shards > 1 {
                out.push(FleetShape {
                    shards: t.shards / 2,
                    rack_size: t.rack_size.min(t.shards / 2),
                    ..*t
                });
            }
            if t.depth > 1 {
                out.push(FleetShape { depth: t.depth - 1, ..*t });
            }
            if t.rack_size > 1 {
                out.push(FleetShape { rack_size: 1, ..*t });
            }
            if t.loss > 0.0 {
                out.push(FleetShape { loss: 0.0, ..*t });
            }
            if t.latency > min.latency {
                out.push(FleetShape { latency: min.latency, ..*t });
            }
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_shrink_moves_toward_anchor() {
        let c = shrink_integer_toward(0, 100);
        assert_eq!(c[0], 0);
        assert!(c.windows(2).all(|w| w[0] < w[1]), "{c:?}");
        assert_eq!(*c.last().unwrap(), 99);
        assert!(shrink_integer_toward(5, 5).is_empty());
    }

    #[test]
    fn u64_in_respects_bounds_and_shrinks_within() {
        let g = Gen::u64_in(10, 20);
        let mut rng = SimRng::new(1);
        for _ in 0..200 {
            let v = g.sample(&mut rng);
            assert!((10..=20).contains(&v));
            assert!(g.shrinks(&v).iter().all(|s| (10..=20).contains(s) && *s < v));
        }
    }

    #[test]
    fn i32_shrinks_toward_zero_from_both_sides() {
        let g = Gen::i32_in(-100, 100);
        assert_eq!(g.shrinks(&50)[0], 0);
        assert_eq!(g.shrinks(&-50)[0], 0);
        assert!(g.shrinks(&0).is_empty());
        let g = Gen::i32_in(10, 20);
        assert_eq!(g.shrinks(&15)[0], 10, "anchor clamps into the range");
    }

    #[test]
    fn vec_shrinks_never_violate_min_len() {
        let g = vec_of(Gen::u64_in(0, 9), 2, 10);
        let mut rng = SimRng::new(3);
        for _ in 0..100 {
            let v = g.sample(&mut rng);
            assert!((2..=10).contains(&v.len()));
            for s in g.shrinks(&v) {
                assert!(s.len() >= 2, "shrank below min_len: {s:?}");
            }
        }
    }

    #[test]
    fn choice_shrinks_toward_earlier_entries() {
        let g = Gen::choice(vec!['a', 'b', 'c']);
        assert_eq!(g.shrinks(&'c'), vec!['a', 'b']);
        assert!(g.shrinks(&'a').is_empty());
    }

    #[test]
    fn sampling_is_deterministic_in_the_seed() {
        let g = vec_of(Gen::u64_any(), 0, 20);
        let a = g.sample(&mut SimRng::new(99));
        let b = g.sample(&mut SimRng::new(99));
        assert_eq!(a, b);
    }

    #[test]
    fn domain_msgs_cover_every_variant() {
        let g = domain::coord_msg();
        let mut rng = SimRng::new(5);
        let mut seen = [false; 6];
        for _ in 0..200 {
            let idx = match g.sample(&mut rng) {
                coord::CoordMsg::RegisterIsland { .. } => 0,
                coord::CoordMsg::RegisterEntity { .. } => 1,
                coord::CoordMsg::Tune { .. } => 2,
                coord::CoordMsg::Trigger { .. } => 3,
                coord::CoordMsg::Ack { .. } => 4,
                coord::CoordMsg::SetKnob { .. } => 5,
            };
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn inference_mix_respects_domain_bounds_and_shrinks_to_minimal() {
        let g = domain::inference_mix();
        let mut rng = SimRng::new(9);
        for _ in 0..100 {
            let mix = g.sample(&mut rng);
            assert!((1..=6).contains(&mix.len()));
            for t in &mix {
                assert!(t.model_id <= 3);
                assert!(t.cost >= Nanos::from_micros(50) && t.cost <= Nanos::from_millis(5));
                assert!((1..=400).contains(&t.rate_per_sec));
                assert!((512..=64 * 1024).contains(&t.bytes));
            }
            for s in g.shrinks(&mix) {
                assert!(!s.is_empty(), "never shrinks to zero tenants");
            }
        }
        let heavy = vec![domain::InferenceTenantMix {
            model_id: 3,
            cost: Nanos::from_millis(4),
            rate_per_sec: 300,
            bytes: 32_768,
        }];
        assert!(
            g.shrinks(&heavy)
                .iter()
                .any(|s| s == &vec![domain::InferenceTenantMix::minimal()]),
            "offers the minimal tenant as a shrink"
        );
    }

    #[test]
    fn fleet_topology_respects_domain_bounds_and_shrinks_to_minimal() {
        let g = domain::fleet_topology();
        let mut rng = SimRng::new(11);
        for _ in 0..200 {
            let t = g.sample(&mut rng);
            assert!((1..=16).contains(&t.shards));
            assert!((1..=3).contains(&t.depth));
            assert!((1..=t.shards).contains(&t.rack_size), "{t:?}");
            assert!(t.latency >= Nanos::from_micros(1) && t.latency <= Nanos::from_millis(5));
            assert!((0.0..=0.4).contains(&t.loss));
            for s in g.shrinks(&t) {
                assert!(s.rack_size >= 1 && s.rack_size <= s.shards, "{s:?}");
            }
        }
        let big = domain::FleetShape {
            shards: 12,
            depth: 3,
            rack_size: 4,
            latency: Nanos::from_millis(2),
            loss: 0.3,
        };
        assert!(
            g.shrinks(&big).contains(&domain::FleetShape::minimal()),
            "offers the minimal fleet as a shrink"
        );
        assert!(g.shrinks(&domain::FleetShape::minimal()).is_empty());
    }

    #[test]
    fn zip_shrinks_componentwise() {
        let g = zip2(Gen::u64_in(0, 10), Gen::u64_in(0, 10));
        let shrinks = g.shrinks(&(4, 6));
        assert!(shrinks.contains(&(0, 6)));
        assert!(shrinks.contains(&(4, 0)));
    }
}
