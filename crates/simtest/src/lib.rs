//! # simtest — hermetic deterministic testing & benchmarking harness
//!
//! The workspace's replacement for `proptest` and `criterion`: everything
//! is built on [`simcore`]'s deterministic primitives, with zero external
//! dependencies, so the whole test and bench surface builds and runs fully
//! offline.
//!
//! Three pieces:
//!
//! * [`gen`] — composable value generators ([`Gen`]) with greedy
//!   shrinking, including domain generators for coordination messages,
//!   durations, packet lengths and scheduler weights.
//! * [`runner`] — the property runner ([`check`]): deterministic case
//!   seeds, `SIMTEST_SEED=<n>` exact-case reproduction, greedy shrinking
//!   of counterexamples, and the [`st_assert!`]/[`st_assert_eq!`] macros.
//! * [`bench`] — a wall-clock [`BenchSuite`]: warmup, N samples,
//!   mean/p50/p99 per benchmark, JSON reports under `results/` (verified
//!   to parse via the in-crate [`json`] module).
//! * [`chaos`] — seeded, replayable [`ChaosPlan`] schedules of
//!   event-timing perturbations (delayed timer fires, forced Trigger
//!   preemptions, coordination-jitter bursts) that a host simulation
//!   consults at defined hook points, plus [`chaos_check`] /
//!   [`chaos_property!`] runners that shrink the chaos schedule to empty
//!   alongside the generated case.
//!
//! ## Property example
//!
//! ```
//! use simtest::{check, st_assert, gen::Gen};
//!
//! let doubles = Gen::u64_in(0, 1000);
//! simtest::check("doubling_is_monotone", &doubles, |&v| {
//!     st_assert!(v * 2 >= v, "overflowed: {v}");
//!     Ok(())
//! });
//! ```
//!
//! ## Bench example
//!
//! ```no_run
//! let mut suite = simtest::BenchSuite::new("micro");
//! suite.bench("sum_1k", || (0..1000u64).sum::<u64>());
//! suite.finish(); // prints a table, writes results/bench_micro.json
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bench;
pub mod chaos;
pub mod gen;
pub mod json;
pub mod runner;

pub use bench::{BenchConfig, BenchRecord, BenchSuite};
pub use chaos::{chaos_check, chaos_check_with, ChaosPlan, Perturbation};
pub use gen::Gen;
pub use runner::{check, check_with, Config};
