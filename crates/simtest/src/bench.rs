//! A lightweight wall-clock benchmark harness.
//!
//! Replaces the criterion `harness = false` benches: each benchmark runs a
//! warmup phase, then collects `samples` timed samples (automatically
//! batching sub-microsecond operations so `Instant` overhead does not
//! dominate), and reports mean/p50/p99/min/max per-operation times. The
//! mean/min/max come from [`simcore::stats::Summary`]; the percentiles are
//! exact order statistics over the recorded samples.
//!
//! [`BenchSuite::finish`] prints a table and writes
//! `results/bench_<suite>.json`, re-parsing the file with [`crate::json`]
//! so a malformed report fails loudly.
//!
//! Environment knobs:
//!
//! * `SIMTEST_BENCH_MODE=smoke` — 1 sample, no warmup, no batching: a CI
//!   smoke pass that still exercises every benchmark body and the JSON
//!   pipeline.
//! * `SIMTEST_BENCH_SAMPLES=<n>` / `SIMTEST_BENCH_WARMUP=<n>` — override
//!   the per-benchmark sample and warmup iteration counts.
//! * `SIMTEST_RESULTS_DIR=<path>` — override the output directory
//!   (defaults to `<workspace root>/results`).

use crate::json::Json;
use simcore::stats::Summary;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Per-suite configuration, resolved from the environment.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Timed samples per benchmark.
    pub samples: u64,
    /// Untimed warmup iterations per benchmark.
    pub warmup: u64,
    /// Smoke mode: single iteration, no batching.
    pub smoke: bool,
}

impl Default for BenchConfig {
    fn default() -> Self {
        let smoke = std::env::var("SIMTEST_BENCH_MODE")
            .map(|m| m == "smoke")
            .unwrap_or(false);
        let env_u64 = |k: &str| std::env::var(k).ok().and_then(|v| v.parse::<u64>().ok());
        let samples = env_u64("SIMTEST_BENCH_SAMPLES").unwrap_or(if smoke { 1 } else { 100 });
        let warmup = env_u64("SIMTEST_BENCH_WARMUP").unwrap_or(if smoke { 0 } else { 10 });
        BenchConfig { samples: samples.max(1), warmup, smoke }
    }
}

/// One benchmark's result, in nanoseconds per operation.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Benchmark name (`group/function` style).
    pub name: String,
    /// Timed samples recorded.
    pub samples: u64,
    /// Operations per timed sample (batching factor).
    pub batch: u64,
    /// Mean ns/op.
    pub mean_ns: f64,
    /// Median ns/op (exact order statistic over the samples).
    pub p50_ns: f64,
    /// 99th-percentile ns/op.
    pub p99_ns: f64,
    /// Fastest sample ns/op.
    pub min_ns: f64,
    /// Slowest sample ns/op.
    pub max_ns: f64,
}

impl BenchRecord {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("samples", Json::Num(self.samples as f64)),
            ("batch", Json::Num(self.batch as f64)),
            ("mean_ns", Json::Num(self.mean_ns)),
            ("p50_ns", Json::Num(self.p50_ns)),
            ("p99_ns", Json::Num(self.p99_ns)),
            ("min_ns", Json::Num(self.min_ns)),
            ("max_ns", Json::Num(self.max_ns)),
        ])
    }
}

/// A named collection of benchmarks sharing one JSON report.
pub struct BenchSuite {
    suite: String,
    cfg: BenchConfig,
    filter: Option<String>,
    records: Vec<BenchRecord>,
}

/// Exact percentile over recorded samples (nearest-rank).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

impl BenchSuite {
    /// Creates a suite; configuration comes from the environment and the
    /// benchmark filter (if any) from the command line, so
    /// `cargo bench -- wire` runs only matching benchmarks.
    pub fn new(suite: &str) -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with("--"));
        BenchSuite {
            suite: suite.to_owned(),
            cfg: BenchConfig::default(),
            filter,
            records: Vec::new(),
        }
    }

    /// Overrides the configuration (used by tests; environment variables
    /// normally decide).
    pub fn with_config(mut self, cfg: BenchConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// The results recorded so far.
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }

    /// Runs one benchmark with the suite-default sample count.
    pub fn bench<R>(&mut self, name: &str, f: impl FnMut() -> R) {
        let samples = self.cfg.samples;
        self.bench_n(name, samples, f);
    }

    /// Runs one benchmark with an explicit sample count (still capped by
    /// smoke mode). Use for whole-system benches where the default count
    /// would take minutes.
    pub fn bench_n<R>(&mut self, name: &str, samples: u64, mut f: impl FnMut() -> R) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let samples = if self.cfg.smoke { 1 } else { samples.max(1) };
        let warmup = if self.cfg.smoke { 0 } else { self.cfg.warmup };
        for _ in 0..warmup {
            std::hint::black_box(f());
        }
        // Calibrate a batch size so each timed sample spans ≥ ~20 µs,
        // keeping Instant overhead below ~1%.
        let batch = if self.cfg.smoke {
            1
        } else {
            let t0 = Instant::now();
            std::hint::black_box(f());
            let one = t0.elapsed().as_nanos().max(1);
            (20_000u128 / one).clamp(1, 10_000) as u64
        };
        let mut summary = Summary::new();
        let mut per_op: Vec<f64> = Vec::with_capacity(samples as usize);
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let ns = t0.elapsed().as_nanos() as f64 / batch as f64;
            summary.record(ns);
            per_op.push(ns);
        }
        per_op.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let record = BenchRecord {
            name: name.to_owned(),
            samples,
            batch,
            mean_ns: summary.mean(),
            p50_ns: percentile(&per_op, 0.50),
            p99_ns: percentile(&per_op, 0.99),
            min_ns: summary.min(),
            max_ns: summary.max(),
        };
        eprintln!(
            "{:<44} mean {:>12}  p50 {:>12}  p99 {:>12}",
            record.name,
            fmt_ns(record.mean_ns),
            fmt_ns(record.p50_ns),
            fmt_ns(record.p99_ns),
        );
        self.records.push(record);
    }

    /// Renders the suite report as a JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("suite", Json::Str(self.suite.clone())),
            ("mode", Json::Str(if self.cfg.smoke { "smoke" } else { "full" }.into())),
            (
                "benches",
                Json::Arr(self.records.iter().map(BenchRecord::to_json).collect()),
            ),
        ])
    }

    /// Writes `results/bench_<suite>.json`, verifies it parses, and
    /// returns the path.
    ///
    /// # Panics
    /// Panics if the report cannot be written or does not round-trip
    /// through the JSON parser.
    pub fn finish(self) -> PathBuf {
        let dir = results_dir();
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
        let path = dir.join(format!("bench_{}.json", self.suite));
        let doc = self.to_json();
        let text = doc.to_string();
        std::fs::write(&path, &text)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        let reread = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot re-read {}: {e}", path.display()));
        let parsed = crate::json::parse(&reread)
            .unwrap_or_else(|e| panic!("{} is not valid JSON: {e}", path.display()));
        assert_eq!(parsed, doc, "bench report did not round-trip");
        eprintln!("[simtest] wrote {}", path.display());
        path
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The directory bench reports land in: `SIMTEST_RESULTS_DIR` if set,
/// otherwise `results/` under the nearest enclosing workspace root (cargo
/// runs bench binaries with the crate directory as cwd), otherwise
/// `./results`.
pub fn results_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("SIMTEST_RESULTS_DIR") {
        return PathBuf::from(dir);
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut probe: Option<&Path> = Some(cwd.as_path());
    while let Some(dir) = probe {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir.join("results");
            }
        }
        probe = dir.parent();
    }
    cwd.join("results")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_cfg() -> BenchConfig {
        BenchConfig { samples: 20, warmup: 2, smoke: false }
    }

    #[test]
    fn records_sane_statistics() {
        let mut suite = BenchSuite::new("unit_stats").with_config(quiet_cfg());
        suite.filter = None;
        let mut x = 0u64;
        suite.bench("spin", || {
            for i in 0..100u64 {
                x = x.wrapping_add(i * i);
            }
            x
        });
        let r = &suite.records()[0];
        assert_eq!(r.samples, 20);
        assert!(r.min_ns <= r.p50_ns && r.p50_ns <= r.p99_ns + 1e-9);
        assert!(r.p99_ns <= r.max_ns + 1e-9);
        assert!(r.mean_ns > 0.0);
    }

    #[test]
    fn percentiles_are_exact_order_statistics() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 0.50), 50.0);
        assert_eq!(percentile(&xs, 0.99), 99.0);
        assert_eq!(percentile(&xs, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn smoke_mode_runs_exactly_once() {
        let mut suite = BenchSuite::new("unit_smoke")
            .with_config(BenchConfig { samples: 50, warmup: 5, smoke: true });
        suite.filter = None;
        let mut calls = 0u64;
        suite.bench_n("count", 50, || calls += 1);
        assert_eq!(calls, 1, "smoke mode must not batch or warm up");
        assert_eq!(suite.records()[0].samples, 1);
    }

    #[test]
    fn json_report_roundtrips_through_parser() {
        let mut suite = BenchSuite::new("unit_json").with_config(quiet_cfg());
        suite.filter = None;
        suite.bench("noop", || 1 + 1);
        let doc = suite.to_json();
        let back = crate::json::parse(&doc.to_string()).expect("valid json");
        assert_eq!(back, doc);
        let benches = back.get("benches").unwrap().as_arr().unwrap();
        assert_eq!(benches.len(), 1);
        assert_eq!(benches[0].get("name").unwrap().as_str(), Some("noop"));
        assert!(benches[0].get("p99_ns").unwrap().as_f64().unwrap() >= 0.0);
    }

    #[test]
    fn finish_writes_parseable_file() {
        let dir = std::env::temp_dir().join("simtest_bench_unit");
        // Scoped env override: this test is the only writer of this var in
        // the crate's test binary, and tests touching it run serially in
        // practice; worst case another suite writes into the temp dir too.
        std::env::set_var("SIMTEST_RESULTS_DIR", &dir);
        let mut suite = BenchSuite::new("unit_finish").with_config(quiet_cfg());
        suite.filter = None;
        suite.bench("noop", || 0u8);
        let path = suite.finish();
        std::env::remove_var("SIMTEST_RESULTS_DIR");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(crate::json::parse(&text).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }
}
