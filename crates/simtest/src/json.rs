//! A minimal JSON value, writer and parser — just enough to emit bench
//! reports and verify they parse, with zero external dependencies.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Object keys are ordered (BTreeMap) so rendering is
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (rendered via `{:?}`, parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write(self, &mut s, 0);
        f.write_str(&s)
    }
}

fn write(v: &Json, out: &mut String, indent: usize) {
    let pad = |out: &mut String, n: usize| out.push_str(&"  ".repeat(n));
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => {
            if n.is_finite() {
                // {:?} round-trips f64 exactly and always includes enough
                // precision; integers render without a fraction.
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n:?}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => escape(s, out),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                pad(out, indent + 1);
                write(item, out, indent + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            pad(out, indent);
            out.push(']');
        }
        Json::Obj(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                pad(out, indent + 1);
                escape(k, out);
                out.push_str(": ");
                write(val, out, indent + 1);
                if i + 1 < map.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            pad(out, indent);
            out.push('}');
        }
    }
}

/// Parses a JSON document. Rejects trailing garbage.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected '{lit}' at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return Err("unexpected end of input".into());
    };
    match c {
        b'n' => expect(b, pos, "null").map(|()| Json::Null),
        b't' => expect(b, pos, "true").map(|()| Json::Bool(true)),
        b'f' => expect(b, pos, "false").map(|()| Json::Bool(false)),
        b'"' => parse_string(b, pos).map(Json::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let val = parse_value(b, pos)?;
                map.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        _ => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&e) = b.get(*pos) else {
                    return Err("unterminated escape".into());
                };
                *pos += 1;
                match e {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape '\\{}'", other as char)),
                }
            }
            c => {
                // Re-assemble UTF-8 multibyte sequences.
                if c < 0x80 {
                    out.push(c as char);
                } else {
                    let start = *pos - 1;
                    let len = if c >= 0xF0 {
                        4
                    } else if c >= 0xE0 {
                        3
                    } else {
                        2
                    };
                    let chunk = b
                        .get(start..start + len)
                        .and_then(|s| std::str::from_utf8(s).ok())
                        .ok_or("invalid utf-8 in string")?;
                    out.push_str(chunk);
                    *pos = start + len;
                }
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len()
        && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number '{text}' at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_document() {
        let doc = Json::obj(vec![
            ("suite", Json::Str("micro".into())),
            ("count", Json::Num(3.0)),
            ("mean_ns", Json::Num(123.456)),
            (
                "benches",
                Json::Arr(vec![Json::obj(vec![
                    ("name", Json::Str("wire/encode \"tune\"".into())),
                    ("ok", Json::Bool(true)),
                    ("skip", Json::Null),
                ])]),
            ),
        ]);
        let text = doc.to_string();
        let back = parse(&text).expect("parses");
        assert_eq!(back, doc);
    }

    #[test]
    fn parses_hand_written_json() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": "x\ny", "c": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("c"), Some(&Json::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("nope").is_err());
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
    }
}
