//! The deterministic property runner.
//!
//! [`check`] samples a generator for a configured number of cases and
//! applies the property to each. Case seeds are derived deterministically
//! from the property name and case index, so a run is reproducible without
//! any environment setup; on failure the runner greedily shrinks the
//! counterexample and panics with the exact case seed. Re-running with
//! `SIMTEST_SEED=<that seed>` regenerates the identical case (and, because
//! shrinking is a pure function of the failing value, the identical
//! shrink).
//!
//! Environment knobs:
//!
//! * `SIMTEST_SEED=<u64>` — run exactly one case per property, seeded with
//!   the given value. Combine with `cargo test <property_name>` to replay
//!   a single reported failure.
//! * `SIMTEST_CASES=<n>` — override the per-property case count.

use crate::gen::Gen;
use simcore::SimRng;
use std::fmt::Debug;

/// Runner configuration. `Default` reads the environment overrides.
#[derive(Debug, Clone)]
pub struct Config {
    /// Cases to run per property (default 96).
    pub cases: u32,
    /// Upper bound on shrink candidates evaluated after a failure.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("SIMTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(96);
        Config { cases, max_shrink_iters: 4096 }
    }
}

impl Config {
    /// A configuration with an explicit case count (environment
    /// `SIMTEST_CASES` still wins, so a CI override reaches every
    /// property).
    pub fn with_cases(cases: u32) -> Self {
        Config { cases, ..Config::default() }
    }
}

/// SplitMix64 step — used to derive independent case seeds.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn name_hash(name: &str) -> u64 {
    // FNV-1a: stable across platforms and compilers.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The seed of case `i` of property `name`. Exposed for tests.
pub fn case_seed(name: &str, i: u32) -> u64 {
    mix(name_hash(name) ^ mix(i as u64))
}

fn forced_seed() -> Option<u64> {
    std::env::var("SIMTEST_SEED").ok().and_then(|v| v.parse().ok())
}

/// Checks `prop` against [`Config::default`]`.cases` samples of `gen`.
///
/// `name` should be the enclosing `#[test]` function's name so the
/// reproduction instructions printed on failure are copy-pasteable.
///
/// # Panics
/// Panics (failing the test) on the first property violation, after
/// greedy shrinking, with the case seed in the message.
pub fn check<T, P>(name: &str, gen: &Gen<T>, prop: P)
where
    T: Debug + Clone + 'static,
    P: FnMut(&T) -> Result<(), String>,
{
    check_with(&Config::default(), name, gen, prop)
}

/// [`check`] with an explicit configuration.
pub fn check_with<T, P>(cfg: &Config, name: &str, gen: &Gen<T>, mut prop: P)
where
    T: Debug + Clone + 'static,
    P: FnMut(&T) -> Result<(), String>,
{
    if let Some(seed) = forced_seed() {
        run_case(cfg, name, gen, &mut prop, seed, 0);
        return;
    }
    for i in 0..cfg.cases {
        run_case(cfg, name, gen, &mut prop, case_seed(name, i), i);
    }
}

fn run_case<T, P>(cfg: &Config, name: &str, gen: &Gen<T>, prop: &mut P, seed: u64, case_index: u32)
where
    T: Debug + Clone + 'static,
    P: FnMut(&T) -> Result<(), String>,
{
    let mut rng = SimRng::new(seed);
    let value = gen.sample(&mut rng);
    let Err(original_err) = prop(&value) else { return };
    let (shrunk, shrunk_err, steps) = shrink(cfg, gen, prop, value.clone(), original_err.clone());
    panic!(
        "\n[simtest] property '{name}' failed (case {case_index})\n\
         [simtest] reproduce with: SIMTEST_SEED={seed} cargo test {name}\n\
         [simtest] original counterexample: {value:?}\n\
         [simtest]   error: {original_err}\n\
         [simtest] shrunk counterexample ({steps} steps): {shrunk:?}\n\
         [simtest]   error: {shrunk_err}\n"
    );
}

/// Greedy shrink: repeatedly replace the counterexample with the first
/// candidate that still fails, until no candidate fails (or the budget
/// runs out).
fn shrink<T, P>(
    cfg: &Config,
    gen: &Gen<T>,
    prop: &mut P,
    mut value: T,
    mut err: String,
) -> (T, String, u32)
where
    T: Debug + Clone + 'static,
    P: FnMut(&T) -> Result<(), String>,
{
    let mut steps = 0u32;
    let mut budget = cfg.max_shrink_iters;
    'outer: while budget > 0 {
        for cand in gen.shrinks(&value) {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if let Err(e) = prop(&cand) {
                value = cand;
                err = e;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (value, err, steps)
}

/// Asserts a condition inside a property closure, returning a formatted
/// `Err` (instead of panicking) so the runner can shrink the case.
#[macro_export]
macro_rules! st_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($arg:tt)+) => {
        if !$cond {
            return Err(format!($($arg)+));
        }
    };
}

/// Asserts equality inside a property closure; the `Err` carries both
/// values.
#[macro_export]
macro_rules! st_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($arg:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($arg)+),
                l,
                r
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::vec_of;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut ran = 0;
        check_with(
            &Config::with_cases(10),
            "passing_property_runs_all_cases",
            &Gen::u64_in(0, 100),
            |_| {
                ran += 1;
                Ok(())
            },
        );
        // With SIMTEST_SEED set globally a single case runs; otherwise 10.
        assert!(ran == 10 || ran == 1);
    }

    #[test]
    fn case_seeds_are_stable_and_distinct() {
        assert_eq!(case_seed("p", 3), case_seed("p", 3));
        assert_ne!(case_seed("p", 3), case_seed("p", 4));
        assert_ne!(case_seed("p", 3), case_seed("q", 3));
    }

    #[test]
    fn failure_panics_with_seed_and_shrinks_to_minimum() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            check_with(
                &Config::with_cases(50),
                "failure_demo",
                &Gen::u64_in(0, 1000),
                |&v| {
                    st_assert!(v < 500, "too big: {v}");
                    Ok(())
                },
            );
        }));
        let msg = *result.expect_err("must fail").downcast::<String>().unwrap();
        assert!(msg.contains("SIMTEST_SEED="), "{msg}");
        assert!(msg.contains("failure_demo"), "{msg}");
        // Greedy shrink must land on the boundary counterexample.
        assert!(msg.contains("shrunk counterexample"), "{msg}");
        assert!(msg.contains(": 500"), "expected minimal counterexample 500: {msg}");
    }

    #[test]
    fn reported_seed_reproduces_the_exact_case() {
        // Find a failing case the way the runner does, then confirm that
        // seeding a fresh rng with the reported seed regenerates it.
        let gen = vec_of(Gen::u64_in(0, 9), 1, 8);
        let name = "repro_demo";
        let mut failing: Option<(u64, Vec<u64>)> = None;
        for i in 0..200 {
            let seed = case_seed(name, i);
            let v = gen.sample(&mut SimRng::new(seed));
            if v.iter().sum::<u64>() > 30 {
                failing = Some((seed, v));
                break;
            }
        }
        let (seed, original) = failing.expect("some case fails");
        let replay = gen.sample(&mut SimRng::new(seed));
        assert_eq!(replay, original);
    }

    #[test]
    fn shrink_respects_budget() {
        let cfg = Config { cases: 1, max_shrink_iters: 3 };
        let gen = Gen::u64_in(0, u32::MAX as u64);
        let (v, _err, steps) =
            shrink(&cfg, &gen, &mut |_| Err("always".into()), 1_000_000, "always".into());
        assert!(steps <= 3);
        assert!(v <= 1_000_000);
    }
}
