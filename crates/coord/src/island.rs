//! Scheduling islands and the resource-manager abstraction.

use crate::{CoordError, EntityId};
use simcore::Nanos;
use std::fmt;

/// Identifies a scheduling island — a set of resources under the control
/// of a single resource manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IslandId(pub u16);

impl fmt::Display for IslandId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "island{}", self.0)
    }
}

/// What kind of resources an island manages (drives how Tune deltas are
/// interpreted and which policies make sense there).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum IslandKind {
    /// General-purpose cores (x86 under a hypervisor in the prototype).
    GeneralPurpose,
    /// Specialised communication cores (the IXP network processor).
    NetworkProcessor,
    /// Compute accelerator (GPU-like; future work in the paper).
    Accelerator,
    /// Storage-focused island.
    Storage,
}

/// The interface an island's resource manager exposes to the coordination
/// layer: the two mechanisms of §3.3, in the island's own vocabulary.
///
/// Implementations translate the neutral `(entity, delta)` pairs into
/// whatever their scheduler understands — credit weights for Xen,
/// dequeue-thread counts or poll intervals for the IXP runtime, poll-time
/// adjustments for an I/O scheduler, and so on.
pub trait ResourceManager {
    /// This island's identity.
    fn island(&self) -> IslandId;

    /// The kind of resources managed.
    fn kind(&self) -> IslandKind;

    /// Applies a fine-grained resource adjustment for `entity`.
    ///
    /// # Errors
    /// Implementations return [`CoordError`] when the entity is unknown to
    /// this island.
    fn apply_tune(&mut self, now: Nanos, entity: EntityId, delta: i32) -> Result<(), CoordError>;

    /// Applies an immediate resource-allocation request (preemptive
    /// semantics) for `entity`.
    ///
    /// # Errors
    /// Implementations return [`CoordError`] when the entity is unknown to
    /// this island.
    fn apply_trigger(&mut self, now: Nanos, entity: EntityId) -> Result<(), CoordError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy manager proving the trait is object-safe and usable.
    struct Recorder {
        id: IslandId,
        tunes: Vec<(EntityId, i32)>,
        triggers: Vec<EntityId>,
    }

    impl ResourceManager for Recorder {
        fn island(&self) -> IslandId {
            self.id
        }
        fn kind(&self) -> IslandKind {
            IslandKind::GeneralPurpose
        }
        fn apply_tune(
            &mut self,
            _now: Nanos,
            entity: EntityId,
            delta: i32,
        ) -> Result<(), CoordError> {
            self.tunes.push((entity, delta));
            Ok(())
        }
        fn apply_trigger(&mut self, _now: Nanos, entity: EntityId) -> Result<(), CoordError> {
            self.triggers.push(entity);
            Ok(())
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let mut r = Recorder {
            id: IslandId(3),
            tunes: vec![],
            triggers: vec![],
        };
        let m: &mut dyn ResourceManager = &mut r;
        assert_eq!(m.island(), IslandId(3));
        assert_eq!(m.kind(), IslandKind::GeneralPurpose);
        m.apply_tune(Nanos::ZERO, EntityId(1), -5).unwrap();
        m.apply_trigger(Nanos::ZERO, EntityId(2)).unwrap();
        assert_eq!(r.tunes, vec![(EntityId(1), -5)]);
        assert_eq!(r.triggers, vec![EntityId(2)]);
    }

    #[test]
    fn display_impls() {
        assert_eq!(IslandId(2).to_string(), "island2");
        assert_eq!(EntityId(4).to_string(), "entity4");
    }
}
