//! Ack-based reliable delivery for coordination messages.
//!
//! The channel the prototype rides (§2.3) is modelled as lossy/jittery by
//! `pcie::FaultProfile`; this module supplies the endpoint state machines
//! that survive it:
//!
//! * [`ReliableSender`] — assigns sequence numbers, keeps unacknowledged
//!   messages pending, retransmits with exponential backoff up to a retry
//!   cap, and exposes a *degraded-mode* signal (consecutive timeouts) so
//!   policies can fall back to doing nothing rather than acting on state
//!   the remote side may never have seen.
//! * [`ReliableReceiver`] — suppresses duplicate sequence numbers (both
//!   channel-injected duplicates and retransmissions whose ack was lost).
//!
//! Both are pure state machines over [`Nanos`] timestamps: the platform
//! owns the mailboxes and calls these at its event-loop pace, which keeps
//! the whole path deterministic and replayable.

use simcore::Nanos;
use std::collections::{BTreeMap, BTreeSet};

use crate::CoordMsg;

/// Tuning for the ack/retry state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReliableConfig {
    /// Time to wait for an ack before the first retransmission.
    pub ack_timeout: Nanos,
    /// Backoff multiplier applied per retry (timeout × backoff^retries).
    pub backoff: u32,
    /// Retransmissions attempted before giving a message up for lost.
    pub max_retries: u32,
    /// Consecutive timeout events (retransmits or give-ups) after which
    /// the sender reports degraded mode.
    pub degraded_after: u32,
}

impl Default for ReliableConfig {
    /// 1 ms initial timeout (≫ one coordination RTT at the default 30 µs
    /// one-way latency), doubling per retry, 5 retries, degraded after 4
    /// consecutive timeouts.
    fn default() -> Self {
        ReliableConfig {
            ack_timeout: Nanos::from_millis(1),
            backoff: 2,
            max_retries: 5,
            degraded_after: 4,
        }
    }
}

/// Counters kept by [`ReliableSender`] for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SenderStats {
    /// Retransmissions performed.
    pub retransmits: u64,
    /// Messages acknowledged by the receiver.
    pub acked: u64,
    /// Messages abandoned after exhausting the retry cap.
    pub gave_up: u64,
    /// Times the sender entered degraded mode.
    pub degraded_entries: u64,
}

#[derive(Debug, Clone)]
struct Pending {
    msg: CoordMsg,
    retries: u32,
    deadline: Nanos,
}

/// Sender half: sequence assignment, retransmission, degraded-mode signal.
#[derive(Debug, Clone)]
pub struct ReliableSender {
    cfg: ReliableConfig,
    next_seq: u32,
    pending: BTreeMap<u32, Pending>,
    consecutive_timeouts: u32,
    degraded_since: Option<Nanos>,
    degraded_total: Nanos,
    stats: SenderStats,
}

impl ReliableSender {
    /// Creates a sender with the given configuration.
    pub fn new(cfg: ReliableConfig) -> Self {
        ReliableSender {
            cfg,
            next_seq: 0,
            pending: BTreeMap::new(),
            consecutive_timeouts: 0,
            degraded_since: None,
            degraded_total: Nanos::ZERO,
            stats: SenderStats::default(),
        }
    }

    /// The configuration this sender runs with.
    pub fn config(&self) -> ReliableConfig {
        self.cfg
    }

    fn deadline(&self, now: Nanos, retries: u32) -> Nanos {
        let factor = self.cfg.backoff.max(1).saturating_pow(retries.min(16));
        now + Nanos(self.cfg.ack_timeout.as_nanos().saturating_mul(u64::from(factor)))
    }

    /// Registers a fresh outbound message and returns its sequence number;
    /// the caller transmits the framed bytes.
    pub fn send(&mut self, now: Nanos, msg: CoordMsg) -> u32 {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        let deadline = self.deadline(now, 0);
        self.pending.insert(seq, Pending { msg, retries: 0, deadline });
        seq
    }

    /// Earliest retransmission deadline among pending messages.
    pub fn next_timer(&self) -> Option<Nanos> {
        self.pending.values().map(|p| p.deadline).min()
    }

    /// Fires every deadline that has passed by `now`. Messages under the
    /// retry cap are appended to `out` as `(seq, msg)` for retransmission
    /// with a backed-off deadline; messages over the cap are dropped from
    /// the pending set. Every expired deadline counts one consecutive
    /// timeout toward the degraded threshold.
    pub fn on_timer(&mut self, now: Nanos, out: &mut Vec<(u32, CoordMsg)>) {
        let due: Vec<u32> = self
            .pending
            .iter()
            .filter(|(_, p)| p.deadline <= now)
            .map(|(&s, _)| s)
            .collect();
        for seq in due {
            self.consecutive_timeouts += 1;
            if self.consecutive_timeouts >= self.cfg.degraded_after && self.degraded_since.is_none()
            {
                self.degraded_since = Some(now);
                self.stats.degraded_entries += 1;
            }
            let retries = self.pending.get(&seq).map(|p| p.retries).expect("collected above");
            if retries >= self.cfg.max_retries {
                self.pending.remove(&seq);
                self.stats.gave_up += 1;
            } else {
                let deadline = self.deadline(now, retries + 1);
                let p = self.pending.get_mut(&seq).expect("collected above");
                p.retries = retries + 1;
                p.deadline = deadline;
                self.stats.retransmits += 1;
                out.push((seq, p.msg));
            }
        }
    }

    /// Processes an ack. Returns `true` when it matched a pending message;
    /// any valid ack resets the consecutive-timeout count and ends
    /// degraded mode (the channel demonstrably works again).
    pub fn on_ack(&mut self, now: Nanos, seq: u32) -> bool {
        let hit = self.pending.remove(&seq).is_some();
        if hit {
            self.stats.acked += 1;
        }
        self.consecutive_timeouts = 0;
        if let Some(since) = self.degraded_since.take() {
            self.degraded_total += now.saturating_sub(since);
        }
        hit
    }

    /// `true` while in degraded mode: enough consecutive timeouts that the
    /// remote side's view must be assumed stale.
    pub fn is_degraded(&self) -> bool {
        self.degraded_since.is_some()
    }

    /// Messages awaiting acknowledgement.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Total time spent in degraded mode up to `now` (including the
    /// current stretch, if degraded).
    pub fn degraded_time(&self, now: Nanos) -> Nanos {
        match self.degraded_since {
            Some(since) => self.degraded_total + now.saturating_sub(since),
            None => self.degraded_total,
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SenderStats {
        self.stats
    }
}

/// Receiver half: duplicate suppression by sequence number.
///
/// Keeps a low-watermark plus the sparse set of out-of-order sequence
/// numbers above it, so memory stays bounded by the reorder depth rather
/// than the message count.
#[derive(Debug, Clone, Default)]
pub struct ReliableReceiver {
    /// All sequences `< low` have been accepted.
    low: u32,
    /// Accepted sequences `>= low`, pending watermark advance.
    seen: BTreeSet<u32>,
    dup_suppressed: u64,
}

impl ReliableReceiver {
    /// Creates a receiver expecting sequence numbers from 0.
    pub fn new() -> Self {
        ReliableReceiver::default()
    }

    /// Returns `true` the first time `seq` is seen, `false` for replays
    /// (channel duplicates or retransmissions already processed).
    pub fn accept(&mut self, seq: u32) -> bool {
        if seq < self.low || !self.seen.insert(seq) {
            self.dup_suppressed += 1;
            return false;
        }
        while self.seen.remove(&self.low) {
            self.low = self.low.wrapping_add(1);
        }
        true
    }

    /// Duplicate deliveries suppressed so far.
    pub fn dup_suppressed(&self) -> u64 {
        self.dup_suppressed
    }
}

/// The reliable sender's retransmission clock as a master-loop event
/// source: its horizon is the earliest pending deadline, and advancing
/// it emits the `(seq, msg)` pairs that must be re-encoded onto the
/// coordination channel.
impl simcore::Component for ReliableSender {
    type Event = (u32, CoordMsg);

    fn next_event_time(&self) -> Option<Nanos> {
        self.next_timer()
    }

    fn advance(&mut self, now: Nanos, out: &mut Vec<(u32, CoordMsg)>) {
        self.on_timer(now, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EntityId;

    fn tune(delta: i32) -> CoordMsg {
        CoordMsg::Tune { entity: EntityId(1), delta, target: None }
    }

    fn cfg() -> ReliableConfig {
        ReliableConfig {
            ack_timeout: Nanos::from_millis(1),
            backoff: 2,
            max_retries: 3,
            degraded_after: 2,
        }
    }

    #[test]
    fn ack_before_deadline_means_no_retransmit() {
        let mut tx = ReliableSender::new(cfg());
        let seq = tx.send(Nanos::ZERO, tune(5));
        assert_eq!(tx.next_timer(), Some(Nanos::from_millis(1)));
        assert!(tx.on_ack(Nanos::from_micros(60), seq));
        assert_eq!(tx.next_timer(), None);
        let mut out = Vec::new();
        tx.on_timer(Nanos::from_secs(1), &mut out);
        assert!(out.is_empty());
        assert_eq!(tx.stats(), SenderStats { acked: 1, ..Default::default() });
    }

    #[test]
    fn timeouts_back_off_then_give_up() {
        let mut tx = ReliableSender::new(cfg());
        tx.send(Nanos::ZERO, tune(5));
        let mut out = Vec::new();
        let mut deadlines = Vec::new();
        while let Some(t) = tx.next_timer() {
            deadlines.push(t);
            tx.on_timer(t, &mut out);
        }
        // 1 ms, then +2 ms, +4 ms, +8 ms of backoff; three retransmits
        // fire and the fourth expiry abandons the message.
        assert_eq!(out.len(), 3);
        assert_eq!(
            deadlines,
            vec![
                Nanos::from_millis(1),
                Nanos::from_millis(3),
                Nanos::from_millis(7),
                Nanos::from_millis(15),
            ]
        );
        assert_eq!(tx.pending_len(), 0);
        assert_eq!(tx.stats().retransmits, 3);
        assert_eq!(tx.stats().gave_up, 1);
    }

    #[test]
    fn degraded_mode_enters_on_consecutive_timeouts_and_acks_clear_it() {
        let mut tx = ReliableSender::new(cfg());
        let s0 = tx.send(Nanos::ZERO, tune(1));
        let mut out = Vec::new();
        tx.on_timer(Nanos::from_millis(1), &mut out); // 1st timeout
        assert!(!tx.is_degraded());
        tx.on_timer(Nanos::from_millis(3), &mut out); // 2nd → degraded
        assert!(tx.is_degraded());
        assert_eq!(tx.stats().degraded_entries, 1);
        // Two ms of degraded time later, an ack recovers.
        let t = Nanos::from_millis(5);
        assert!(tx.on_ack(t, s0));
        assert!(!tx.is_degraded());
        assert_eq!(tx.degraded_time(t), Nanos::from_millis(2));
        // The counter reset means degradation needs a fresh streak.
        tx.send(t, tune(2));
        tx.on_timer(Nanos::from_millis(6), &mut out);
        assert!(!tx.is_degraded());
    }

    #[test]
    fn receiver_suppresses_replays_and_advances_watermark() {
        let mut rx = ReliableReceiver::new();
        assert!(rx.accept(0));
        assert!(rx.accept(2)); // out of order is fine, only replays die
        assert!(!rx.accept(0));
        assert!(!rx.accept(2));
        assert!(rx.accept(1));
        assert!(!rx.accept(1));
        assert_eq!(rx.dup_suppressed(), 3);
        // Watermark has moved past 0..=2: the set is empty again.
        assert!(rx.seen.is_empty());
        assert!(rx.accept(3));
    }

    #[test]
    fn unmatched_ack_still_resets_the_timeout_streak() {
        let mut tx = ReliableSender::new(cfg());
        tx.send(Nanos::ZERO, tune(1));
        let mut out = Vec::new();
        tx.on_timer(Nanos::from_millis(1), &mut out);
        // A duplicate ack for an already-settled seq proves the channel
        // works, so it clears the streak even though nothing matched.
        assert!(!tx.on_ack(Nanos::from_millis(2), 999));
        tx.on_timer(Nanos::from_millis(3), &mut out);
        assert!(!tx.is_degraded(), "streak was broken by the ack");
    }
}
