//! Coordination message vocabulary.

use crate::energy::KnobAxis;
use crate::{EntityId, IslandId, IslandKind};

/// Messages exchanged between islands over the coordination channel.
///
/// The registration messages implement §2.3's initialisation flow (islands
/// register with the global controller; deployed entities register their
/// island-local identities); `Tune` and `Trigger` are the two runtime
/// mechanisms of §3.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordMsg {
    /// An island announces itself to the global controller.
    RegisterIsland {
        /// The island registering.
        island: IslandId,
        /// What it manages.
        kind: IslandKind,
    },
    /// An entity's island-local identity is announced.
    RegisterEntity {
        /// Platform-global entity.
        entity: EntityId,
        /// Island on which the binding holds.
        island: IslandId,
        /// Island-local key (domain id, flow id, …).
        local_key: u64,
    },
    /// Fine-grained resource adjustment request (± numeric value).
    Tune {
        /// Target entity.
        entity: EntityId,
        /// Signed adjustment, interpreted by the receiving island.
        delta: i32,
        /// Island that should act; `None` addresses every island the
        /// entity is bound on.
        target: Option<IslandId>,
    },
    /// Immediate resource-allocation request with preemptive semantics.
    Trigger {
        /// Target entity.
        entity: EntityId,
        /// Island that should act; `None` addresses every island the
        /// entity is bound on.
        target: Option<IslandId>,
    },
    /// Acknowledgement of an applied message (sequence-numbered).
    Ack {
        /// Sequence number being acknowledged.
        seq: u32,
    },
    /// Energy-knob setting: moves one axis of the x86 island's energy
    /// lattice (DVFS rung, cache ways, bandwidth share) to an absolute
    /// rung. Issued by the platform's [`EnergyController`]
    /// (crate::EnergyController), riding the same channel and registry as
    /// Tune/Trigger; the receiving island translates the rung into its
    /// own operating point.
    SetKnob {
        /// Target entity (for DVFS the entity's whole island acts).
        entity: EntityId,
        /// The lattice axis to move.
        axis: KnobAxis,
        /// Absolute rung index (0 = full performance).
        rung: u8,
        /// Island that should act; `None` addresses every island the
        /// entity is bound on.
        target: Option<IslandId>,
    },
}

impl CoordMsg {
    /// `true` for the time-critical Trigger mechanism.
    pub fn is_urgent(&self) -> bool {
        matches!(self, CoordMsg::Trigger { .. })
    }

    /// The entity this message targets, if any.
    pub fn entity(&self) -> Option<EntityId> {
        match self {
            CoordMsg::RegisterEntity { entity, .. }
            | CoordMsg::Tune { entity, .. }
            | CoordMsg::Trigger { entity, .. }
            | CoordMsg::SetKnob { entity, .. } => Some(*entity),
            CoordMsg::RegisterIsland { .. } | CoordMsg::Ack { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn urgency() {
        assert!(CoordMsg::Trigger { entity: EntityId(1), target: None }.is_urgent());
        assert!(!CoordMsg::Tune { entity: EntityId(1), delta: 1, target: None }.is_urgent());
    }

    #[test]
    fn knob_settings_are_not_urgent_and_carry_their_entity() {
        let m = CoordMsg::SetKnob {
            entity: EntityId(2),
            axis: KnobAxis::Dvfs,
            rung: 3,
            target: None,
        };
        assert!(!m.is_urgent(), "knob moves are deliberate, not preemptive");
        assert_eq!(m.entity(), Some(EntityId(2)));
    }

    #[test]
    fn entity_extraction() {
        assert_eq!(
            CoordMsg::Tune { entity: EntityId(3), delta: -1, target: Some(IslandId(0)) }.entity(),
            Some(EntityId(3))
        );
        assert_eq!(CoordMsg::Ack { seq: 1 }.entity(), None);
        assert_eq!(
            CoordMsg::RegisterIsland { island: IslandId(0), kind: IslandKind::Storage }.entity(),
            None
        );
    }
}
