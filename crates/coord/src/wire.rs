//! Compact binary codec for [`CoordMsg`].
//!
//! Coordination messages ride a PCI config-space mailbox in the prototype
//! and would ride hardware signalling channels on future platforms (§3.3),
//! so they must be tiny and self-delimiting: one tag byte followed by
//! fixed-width little-endian fields. A `Tune` is 11 bytes.

use crate::energy::KnobAxis;
use crate::{CoordMsg, EntityId, IslandId, IslandKind};
use std::error::Error;
use std::fmt;

/// Errors from [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The buffer ended before the message did.
    Truncated,
    /// The tag byte does not name a message.
    BadTag(u8),
    /// The island-kind byte is invalid.
    BadKind(u8),
    /// The knob-axis byte is invalid.
    BadAxis(u8),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated message"),
            CodecError::BadTag(t) => write!(f, "unknown message tag {t:#x}"),
            CodecError::BadKind(k) => write!(f, "unknown island kind {k:#x}"),
            CodecError::BadAxis(a) => write!(f, "unknown knob axis {a:#x}"),
        }
    }
}

impl Error for CodecError {}

const TAG_REG_ISLAND: u8 = 1;
const TAG_REG_ENTITY: u8 = 2;
const TAG_TUNE: u8 = 3;
const TAG_TRIGGER: u8 = 4;
const TAG_ACK: u8 = 5;
const TAG_FRAME: u8 = 6;
const TAG_SET_KNOB: u8 = 7;
const TAG_ENVELOPE: u8 = 8;

/// Sentinel for an unaddressed (broadcast) target.
const TARGET_NONE: u16 = u16::MAX;

fn target_to_u16(t: Option<IslandId>) -> u16 {
    t.map_or(TARGET_NONE, |i| i.0)
}

fn target_from_u16(v: u16) -> Option<IslandId> {
    (v != TARGET_NONE).then_some(IslandId(v))
}

fn kind_to_byte(k: IslandKind) -> u8 {
    match k {
        IslandKind::GeneralPurpose => 0,
        IslandKind::NetworkProcessor => 1,
        IslandKind::Accelerator => 2,
        IslandKind::Storage => 3,
    }
}

fn axis_to_byte(a: KnobAxis) -> u8 {
    match a {
        KnobAxis::Dvfs => 0,
        KnobAxis::CacheWays => 1,
        KnobAxis::MembwShare => 2,
    }
}

fn axis_from_byte(b: u8) -> Result<KnobAxis, CodecError> {
    Ok(match b {
        0 => KnobAxis::Dvfs,
        1 => KnobAxis::CacheWays,
        2 => KnobAxis::MembwShare,
        other => return Err(CodecError::BadAxis(other)),
    })
}

fn kind_from_byte(b: u8) -> Result<IslandKind, CodecError> {
    Ok(match b {
        0 => IslandKind::GeneralPurpose,
        1 => IslandKind::NetworkProcessor,
        2 => IslandKind::Accelerator,
        3 => IslandKind::Storage,
        other => return Err(CodecError::BadKind(other)),
    })
}

/// Appends the encoding of `msg` to `buf` and returns the encoded length.
pub fn encode(msg: &CoordMsg, buf: &mut Vec<u8>) -> usize {
    let start = buf.len();
    match *msg {
        CoordMsg::RegisterIsland { island, kind } => {
            buf.push(TAG_REG_ISLAND);
            buf.extend_from_slice(&island.0.to_le_bytes());
            buf.push(kind_to_byte(kind));
        }
        CoordMsg::RegisterEntity {
            entity,
            island,
            local_key,
        } => {
            buf.push(TAG_REG_ENTITY);
            buf.extend_from_slice(&entity.0.to_le_bytes());
            buf.extend_from_slice(&island.0.to_le_bytes());
            buf.extend_from_slice(&local_key.to_le_bytes());
        }
        CoordMsg::Tune { entity, delta, target } => {
            buf.push(TAG_TUNE);
            buf.extend_from_slice(&entity.0.to_le_bytes());
            buf.extend_from_slice(&delta.to_le_bytes());
            buf.extend_from_slice(&target_to_u16(target).to_le_bytes());
        }
        CoordMsg::Trigger { entity, target } => {
            buf.push(TAG_TRIGGER);
            buf.extend_from_slice(&entity.0.to_le_bytes());
            buf.extend_from_slice(&target_to_u16(target).to_le_bytes());
        }
        CoordMsg::Ack { seq } => {
            buf.push(TAG_ACK);
            buf.extend_from_slice(&seq.to_le_bytes());
        }
        CoordMsg::SetKnob { entity, axis, rung, target } => {
            buf.push(TAG_SET_KNOB);
            buf.extend_from_slice(&entity.0.to_le_bytes());
            buf.push(axis_to_byte(axis));
            buf.push(rung);
            buf.extend_from_slice(&target_to_u16(target).to_le_bytes());
        }
    }
    buf.len() - start
}

/// Appends a sequence-numbered frame around `msg` to `buf` and returns
/// the encoded length.
///
/// The reliable-delivery layer wraps every data message this way: one
/// frame tag byte, a `u32` little-endian sequence number, then the plain
/// [`encode`] of the inner message. Acks stay unframed ([`CoordMsg::Ack`]
/// already carries the sequence number it acknowledges).
pub fn encode_framed(seq: u32, msg: &CoordMsg, buf: &mut Vec<u8>) -> usize {
    let start = buf.len();
    buf.push(TAG_FRAME);
    buf.extend_from_slice(&seq.to_le_bytes());
    encode(msg, buf);
    buf.len() - start
}

/// Decodes one sequence-numbered frame from the front of `buf`, returning
/// the sequence number, the inner message, and the bytes consumed.
///
/// # Errors
/// Returns [`CodecError::BadTag`] when the buffer does not start with a
/// frame, and propagates inner decoding errors.
pub fn decode_framed(buf: &[u8]) -> Result<(u32, CoordMsg, usize), CodecError> {
    let tag = *buf.first().ok_or(CodecError::Truncated)?;
    if tag != TAG_FRAME {
        return Err(CodecError::BadTag(tag));
    }
    let b = buf.get(1..5).ok_or(CodecError::Truncated)?;
    let seq = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
    let (msg, inner) = decode(&buf[5..])?;
    Ok((seq, msg, 5 + inner))
}

/// `true` when the buffer starts with a sequence-numbered frame.
pub fn is_framed(buf: &[u8]) -> bool {
    buf.first() == Some(&TAG_FRAME)
}

/// Appends a Lamport-stamped cross-node envelope around `msg` to `buf`
/// and returns the encoded length.
///
/// Fleet bus lanes wrap every data message this way: one envelope tag
/// byte, a `u32` little-endian sequence number (for the per-lane
/// reliable-delivery layer, exactly as in [`encode_framed`]), then the
/// `u64` Lamport timestamp and `u16` source node that give cross-node
/// messages their deterministic `(lamport, source)` total order, then
/// the plain [`encode`] of the inner message. An envelope `Tune` is
/// 26 bytes.
pub fn encode_envelope(
    seq: u32,
    lamport: u64,
    source: u16,
    msg: &CoordMsg,
    buf: &mut Vec<u8>,
) -> usize {
    let start = buf.len();
    buf.push(TAG_ENVELOPE);
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&lamport.to_le_bytes());
    buf.extend_from_slice(&source.to_le_bytes());
    encode(msg, buf);
    buf.len() - start
}

/// Decodes one cross-node envelope from the front of `buf`, returning
/// the lane sequence number, the `(lamport, source)` stamp, the inner
/// message, and the bytes consumed.
///
/// # Errors
/// Returns [`CodecError::BadTag`] when the buffer does not start with an
/// envelope, and propagates inner decoding errors.
pub fn decode_envelope(buf: &[u8]) -> Result<(u32, u64, u16, CoordMsg, usize), CodecError> {
    let tag = *buf.first().ok_or(CodecError::Truncated)?;
    if tag != TAG_ENVELOPE {
        return Err(CodecError::BadTag(tag));
    }
    let b = buf.get(1..15).ok_or(CodecError::Truncated)?;
    let seq = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
    let lamport = u64::from_le_bytes(b[4..12].try_into().expect("8 bytes"));
    let source = u16::from_le_bytes([b[12], b[13]]);
    let (msg, inner) = decode(&buf[15..])?;
    Ok((seq, lamport, source, msg, 15 + inner))
}

/// `true` when the buffer starts with a cross-node envelope.
pub fn is_envelope(buf: &[u8]) -> bool {
    buf.first() == Some(&TAG_ENVELOPE)
}

/// Decodes one message from the front of `buf`, returning it and the
/// number of bytes consumed.
///
/// # Errors
/// Returns [`CodecError`] on truncation or unknown tags.
pub fn decode(buf: &[u8]) -> Result<(CoordMsg, usize), CodecError> {
    let tag = *buf.first().ok_or(CodecError::Truncated)?;
    let rest = &buf[1..];
    let take = |n: usize| -> Result<&[u8], CodecError> {
        rest.get(..n).ok_or(CodecError::Truncated)
    };
    match tag {
        TAG_REG_ISLAND => {
            let b = take(3)?;
            let island = IslandId(u16::from_le_bytes([b[0], b[1]]));
            let kind = kind_from_byte(b[2])?;
            Ok((CoordMsg::RegisterIsland { island, kind }, 4))
        }
        TAG_REG_ENTITY => {
            let b = take(14)?;
            let entity = EntityId(u32::from_le_bytes([b[0], b[1], b[2], b[3]]));
            let island = IslandId(u16::from_le_bytes([b[4], b[5]]));
            let local_key = u64::from_le_bytes(b[6..14].try_into().expect("8 bytes"));
            Ok((
                CoordMsg::RegisterEntity {
                    entity,
                    island,
                    local_key,
                },
                15,
            ))
        }
        TAG_TUNE => {
            let b = take(10)?;
            let entity = EntityId(u32::from_le_bytes([b[0], b[1], b[2], b[3]]));
            let delta = i32::from_le_bytes([b[4], b[5], b[6], b[7]]);
            let target = target_from_u16(u16::from_le_bytes([b[8], b[9]]));
            Ok((CoordMsg::Tune { entity, delta, target }, 11))
        }
        TAG_TRIGGER => {
            let b = take(6)?;
            let entity = EntityId(u32::from_le_bytes([b[0], b[1], b[2], b[3]]));
            let target = target_from_u16(u16::from_le_bytes([b[4], b[5]]));
            Ok((CoordMsg::Trigger { entity, target }, 7))
        }
        TAG_ACK => {
            let b = take(4)?;
            let seq = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
            Ok((CoordMsg::Ack { seq }, 5))
        }
        TAG_SET_KNOB => {
            let b = take(8)?;
            let entity = EntityId(u32::from_le_bytes([b[0], b[1], b[2], b[3]]));
            let axis = axis_from_byte(b[4])?;
            let rung = b[5];
            let target = target_from_u16(u16::from_le_bytes([b[6], b[7]]));
            Ok((CoordMsg::SetKnob { entity, axis, rung, target }, 9))
        }
        other => Err(CodecError::BadTag(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: CoordMsg) {
        let mut buf = Vec::new();
        let n = encode(&msg, &mut buf);
        assert_eq!(n, buf.len());
        let (decoded, consumed) = decode(&buf).unwrap();
        assert_eq!(decoded, msg);
        assert_eq!(consumed, n);
    }

    #[test]
    fn roundtrips_every_variant() {
        roundtrip(CoordMsg::RegisterIsland {
            island: IslandId(7),
            kind: IslandKind::NetworkProcessor,
        });
        roundtrip(CoordMsg::RegisterEntity {
            entity: EntityId(0xDEAD_BEEF),
            island: IslandId(u16::MAX),
            local_key: u64::MAX,
        });
        roundtrip(CoordMsg::Tune {
            entity: EntityId(3),
            delta: -12345,
            target: Some(IslandId(2)),
        });
        roundtrip(CoordMsg::Tune {
            entity: EntityId(3),
            delta: 64,
            target: None,
        });
        roundtrip(CoordMsg::Trigger { entity: EntityId(0), target: None });
        roundtrip(CoordMsg::Trigger { entity: EntityId(0), target: Some(IslandId(0)) });
        roundtrip(CoordMsg::Ack { seq: 42 });
        for axis in KnobAxis::ALL {
            roundtrip(CoordMsg::SetKnob {
                entity: EntityId(3),
                axis,
                rung: u8::MAX,
                target: Some(IslandId(1)),
            });
            roundtrip(CoordMsg::SetKnob { entity: EntityId(0), axis, rung: 0, target: None });
        }
    }

    #[test]
    fn set_knob_is_nine_bytes_and_rejects_bad_axes() {
        let mut buf = Vec::new();
        let n = encode(
            &CoordMsg::SetKnob {
                entity: EntityId(1),
                axis: KnobAxis::CacheWays,
                rung: 2,
                target: None,
            },
            &mut buf,
        );
        assert_eq!(n, 9);
        assert_eq!(
            decode(&[TAG_SET_KNOB, 0, 0, 0, 0, 9, 0, 0, 0]),
            Err(CodecError::BadAxis(9))
        );
    }

    #[test]
    fn tune_is_eleven_bytes() {
        let mut buf = Vec::new();
        let n = encode(
            &CoordMsg::Tune {
                entity: EntityId(1),
                delta: 64,
                target: None,
            },
            &mut buf,
        );
        assert_eq!(n, 11);
    }

    #[test]
    fn stream_of_messages_decodes_sequentially() {
        let msgs = [
            CoordMsg::Tune { entity: EntityId(1), delta: 64, target: None },
            CoordMsg::Trigger { entity: EntityId(2), target: Some(IslandId(1)) },
            CoordMsg::Ack { seq: 9 },
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            encode(m, &mut buf);
        }
        let mut off = 0;
        for m in &msgs {
            let (d, n) = decode(&buf[off..]).unwrap();
            assert_eq!(d, *m);
            off += n;
        }
        assert_eq!(off, buf.len());
    }

    #[test]
    fn truncated_and_bad_tags_error() {
        assert_eq!(decode(&[]), Err(CodecError::Truncated));
        assert_eq!(decode(&[TAG_TUNE, 1, 2]), Err(CodecError::Truncated));
        assert_eq!(decode(&[0xFF]), Err(CodecError::BadTag(0xFF)));
        assert_eq!(
            decode(&[TAG_REG_ISLAND, 0, 0, 9]),
            Err(CodecError::BadKind(9))
        );
    }

    #[test]
    fn framed_roundtrip_and_errors() {
        let msg = CoordMsg::Tune { entity: EntityId(9), delta: -3, target: Some(IslandId(1)) };
        let mut buf = Vec::new();
        let n = encode_framed(0xABCD_1234, &msg, &mut buf);
        assert_eq!(n, buf.len());
        assert_eq!(n, 5 + 11, "frame header + inner Tune");
        assert!(is_framed(&buf));
        let (seq, decoded, consumed) = decode_framed(&buf).unwrap();
        assert_eq!((seq, decoded, consumed), (0xABCD_1234, msg, n));

        // An unframed message is rejected as a frame, and vice versa the
        // plain decoder rejects the frame tag — the two namespaces stay
        // disjoint on the wire.
        let mut plain = Vec::new();
        encode(&msg, &mut plain);
        assert!(!is_framed(&plain));
        assert_eq!(decode_framed(&plain), Err(CodecError::BadTag(TAG_TUNE)));
        assert_eq!(decode(&buf), Err(CodecError::BadTag(TAG_FRAME)));
        assert_eq!(decode_framed(&buf[..3]), Err(CodecError::Truncated));
    }

    #[test]
    fn envelope_roundtrip_and_errors() {
        let msg = CoordMsg::Tune { entity: EntityId(9), delta: -3, target: Some(IslandId(1)) };
        let mut buf = Vec::new();
        let n = encode_envelope(0xABCD_1234, u64::MAX - 1, 0xBEEF, &msg, &mut buf);
        assert_eq!(n, buf.len());
        assert_eq!(n, 15 + 11, "envelope header + inner Tune");
        assert!(is_envelope(&buf));
        let (seq, lamport, source, decoded, consumed) = decode_envelope(&buf).unwrap();
        assert_eq!(
            (seq, lamport, source, decoded, consumed),
            (0xABCD_1234, u64::MAX - 1, 0xBEEF, msg, n)
        );

        // The three wire namespaces — plain, framed, enveloped — stay
        // disjoint: each decoder rejects the other tags.
        let mut plain = Vec::new();
        encode(&msg, &mut plain);
        assert!(!is_envelope(&plain));
        assert_eq!(decode_envelope(&plain), Err(CodecError::BadTag(TAG_TUNE)));
        assert_eq!(decode(&buf), Err(CodecError::BadTag(TAG_ENVELOPE)));
        assert_eq!(decode_framed(&buf), Err(CodecError::BadTag(TAG_ENVELOPE)));
        let mut framed = Vec::new();
        encode_framed(7, &msg, &mut framed);
        assert_eq!(decode_envelope(&framed), Err(CodecError::BadTag(TAG_FRAME)));
    }

    #[test]
    fn envelope_rejects_every_strict_prefix() {
        let msg = CoordMsg::SetKnob {
            entity: EntityId(3),
            axis: KnobAxis::Dvfs,
            rung: 2,
            target: None,
        };
        let mut buf = Vec::new();
        let n = encode_envelope(1, 2, 3, &msg, &mut buf);
        for cut in 0..n {
            assert_eq!(
                decode_envelope(&buf[..cut]),
                Err(CodecError::Truncated),
                "prefix of {cut} bytes must be rejected"
            );
        }
    }

    #[test]
    fn all_messages_fit_a_config_space_dword_run() {
        // The mailbox in the prototype is a handful of config-space
        // registers; every message must stay tiny.
        let msgs = [
            CoordMsg::RegisterIsland { island: IslandId(1), kind: IslandKind::Storage },
            CoordMsg::RegisterEntity { entity: EntityId(1), island: IslandId(1), local_key: 2 },
            CoordMsg::Tune { entity: EntityId(1), delta: i32::MIN, target: None },
            CoordMsg::Trigger { entity: EntityId(1), target: Some(IslandId(9)) },
            CoordMsg::Ack { seq: u32::MAX },
            CoordMsg::SetKnob {
                entity: EntityId(1),
                axis: KnobAxis::MembwShare,
                rung: u8::MAX,
                target: None,
            },
        ];
        for m in msgs {
            let mut buf = Vec::new();
            assert!(encode(&m, &mut buf) <= 16, "{m:?} too large");
        }
    }
}
