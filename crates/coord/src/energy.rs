//! The QoS-constrained energy controller.
//!
//! Energy is the one dimension the islands historically never negotiated
//! over: the power governor caps watts by squeezing CPU shares with no
//! notion of application QoS. This module adds the coordinated
//! alternative in the shape of Nejat et al.'s processor-configuration +
//! cache-partitioning work and CBP's coordinated throttling: the x86
//! island exposes three discrete knobs —
//!
//! * **DVFS** — the package operating point (frequency/voltage rung);
//! * **cache ways** — ways powered for the DB-heavy partition;
//! * **memory-bandwidth share** — the partition's bandwidth allocation;
//!
//! — and [`EnergyController`] hill-climbs the knob *lattice* downward in
//! power while every tenant's p99 stays under target. Each knob alone is
//! weak (its latency cost turns steep a rung or two down); walked
//! jointly, each axis stays in its shallow region and the lattice reaches
//! operating points none of the knobs can reach alone (experiment E2).
//!
//! The controller is deliberately island-agnostic: it works on lattice
//! *indices* (rung 0 = full performance on every axis) and the platform
//! maps indices to concrete operating points (`power::DvfsState`, demand
//! factors). Decisions come back as [`KnobSetting`]s which the platform
//! ships over the ordinary coordination channel as
//! [`CoordMsg::SetKnob`](crate::CoordMsg::SetKnob) messages — energy
//! management rides the same Tune vocabulary as everything else.
//!
//! ## Algorithm
//!
//! One decision per period, driven by the worst per-tenant p99 observed
//! over the platform's sampling window:
//!
//! * **violation** (`p99 > target`): step the most recently deepened axis
//!   back toward performance and feed the flip to the
//!   [`OscillationDetector`]. While the detector reports oscillation the
//!   controller freezes (holds the current point) for a cooldown — the
//!   hysteresis that keeps a marginal tenant from knob-flapping.
//! * **headroom** (`p99 < margin × target`): deepen one axis, round-robin
//!   over the axes that still have rungs left, one rung at a time.
//! * otherwise: hold.
//!
//! Round-robin descent is the lattice-walk analogue of coordinate
//! descent: it keeps the three axes at nearly equal depth, which is where
//! the convex per-axis latency costs sum cheapest.

use crate::limits::OscillationDetector;
use simcore::Nanos;

/// One knob axis of the energy lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnobAxis {
    /// The package DVFS operating point.
    Dvfs,
    /// Cache ways powered for the partitioned (DB-heavy) class.
    CacheWays,
    /// Memory-bandwidth share of the partitioned class.
    MembwShare,
}

impl KnobAxis {
    /// All axes, in descent (round-robin) order.
    pub const ALL: [KnobAxis; 3] = [KnobAxis::Dvfs, KnobAxis::CacheWays, KnobAxis::MembwShare];
}

/// A point on the knob lattice: the rung index of each axis, where rung 0
/// is full performance and higher rungs trade latency for power.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KnobPoint {
    /// DVFS rung (0 = nominal frequency).
    pub dvfs: u8,
    /// Cache-way rung (0 = all ways powered).
    pub ways: u8,
    /// Bandwidth-share rung (0 = full share).
    pub membw: u8,
}

impl KnobPoint {
    /// The rung of one axis.
    pub fn rung(&self, axis: KnobAxis) -> u8 {
        match axis {
            KnobAxis::Dvfs => self.dvfs,
            KnobAxis::CacheWays => self.ways,
            KnobAxis::MembwShare => self.membw,
        }
    }

    fn rung_mut(&mut self, axis: KnobAxis) -> &mut u8 {
        match axis {
            KnobAxis::Dvfs => &mut self.dvfs,
            KnobAxis::CacheWays => &mut self.ways,
            KnobAxis::MembwShare => &mut self.membw,
        }
    }

    /// Total descent depth (sum of rungs) — a cheap power-order proxy:
    /// deeper points never draw more than shallower ones on a monotone
    /// ladder.
    pub fn depth(&self) -> u32 {
        self.dvfs as u32 + self.ways as u32 + self.membw as u32
    }
}

/// A decision: set `axis` to rung `rung`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnobSetting {
    /// The axis to move.
    pub axis: KnobAxis,
    /// The new rung index on that axis.
    pub rung: u8,
}

/// Configuration for [`EnergyController`].
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyControllerConfig {
    /// Per-tenant p99 response-time target in milliseconds.
    pub p99_target_ms: f64,
    /// Descend only while `p99 < margin × target` (headroom guard).
    pub margin: f64,
    /// Rungs available per axis (inclusive max index = rungs − 1), in
    /// [`KnobAxis::ALL`] order.
    pub rungs: [u8; 3],
    /// Minimum time between decisions.
    pub decision_period: Nanos,
    /// Oscillation-detector window.
    pub osc_window: Nanos,
    /// Flips inside the window that count as oscillation.
    pub osc_threshold: u32,
    /// Hold time after the detector trips.
    pub freeze: Nanos,
}

impl Default for EnergyControllerConfig {
    fn default() -> Self {
        EnergyControllerConfig {
            p99_target_ms: 400.0,
            margin: 0.85,
            rungs: [4, 5, 5],
            decision_period: Nanos::from_secs(2),
            osc_window: Nanos::from_secs(30),
            osc_threshold: 4,
            freeze: Nanos::from_secs(20),
        }
    }
}

impl EnergyControllerConfig {
    /// Sets the p99 target.
    pub fn with_target_ms(mut self, ms: f64) -> Self {
        self.p99_target_ms = ms;
        self
    }
}

/// The hill-climbing QoS-constrained energy controller. See the module
/// documentation for the algorithm.
#[derive(Debug, Clone)]
pub struct EnergyController {
    cfg: EnergyControllerConfig,
    point: KnobPoint,
    next_axis: usize,
    last_stepped: Option<KnobAxis>,
    last_decision: Nanos,
    frozen_until: Nanos,
    osc: OscillationDetector,
    violations: u64,
    backoffs: u64,
    descents: u64,
    freezes: u64,
}

impl EnergyController {
    /// Creates a controller at the full-performance lattice corner.
    ///
    /// # Panics
    /// Panics if the target is not positive, the margin is not in
    /// `(0, 1]`, or any axis has zero rungs.
    pub fn new(cfg: EnergyControllerConfig) -> Self {
        assert!(cfg.p99_target_ms > 0.0, "p99 target must be positive");
        assert!(
            cfg.margin > 0.0 && cfg.margin <= 1.0,
            "margin must be in (0, 1]"
        );
        assert!(
            cfg.rungs.iter().all(|&r| r >= 1),
            "every axis needs at least its performance rung"
        );
        let osc = OscillationDetector::new(cfg.osc_window, cfg.osc_threshold);
        EnergyController {
            cfg,
            point: KnobPoint::default(),
            next_axis: 0,
            last_stepped: None,
            last_decision: Nanos::ZERO,
            frozen_until: Nanos::ZERO,
            osc,
            violations: 0,
            backoffs: 0,
            descents: 0,
            freezes: 0,
        }
    }

    /// The current lattice point.
    pub fn point(&self) -> KnobPoint {
        self.point
    }

    /// QoS violations observed (p99 over target at a decision instant).
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Back-off steps taken (rungs climbed back toward performance).
    pub fn backoffs(&self) -> u64 {
        self.backoffs
    }

    /// Descent steps taken (rungs walked down in power).
    pub fn descents(&self) -> u64 {
        self.descents
    }

    /// Times the oscillation detector froze the controller.
    pub fn freezes(&self) -> u64 {
        self.freezes
    }

    /// The configured p99 target in milliseconds.
    pub fn p99_target_ms(&self) -> f64 {
        self.cfg.p99_target_ms
    }

    /// Feeds one observation (the worst per-tenant p99 over the last
    /// window, in milliseconds) and returns the knob move to apply, if
    /// any. Call at the platform's sampling cadence; the controller
    /// self-limits to one decision per `decision_period`.
    pub fn observe(&mut self, now: Nanos, worst_p99_ms: f64) -> Option<KnobSetting> {
        let violating = worst_p99_ms > self.cfg.p99_target_ms;
        if violating {
            // Violations are counted (and fed to the detector) even
            // between decision instants — QoS pain must not be masked by
            // the decision rate limit.
            self.violations += 1;
        }
        self.osc.observe(now, violating);
        if now < self.last_decision + self.cfg.decision_period
            && !self.last_decision.is_zero()
        {
            return None;
        }
        if now < self.frozen_until {
            return None;
        }
        if self.osc.is_oscillating(now) {
            self.frozen_until = now + self.cfg.freeze;
            self.freezes += 1;
            return None;
        }
        if violating {
            return self.back_off(now);
        }
        if worst_p99_ms < self.cfg.margin * self.cfg.p99_target_ms {
            return self.descend(now);
        }
        None
    }

    /// Steps the most recently deepened axis back toward performance
    /// (falling back to the deepest axis when the last-stepped one is
    /// already at rung 0).
    fn back_off(&mut self, now: Nanos) -> Option<KnobSetting> {
        let axis = self
            .last_stepped
            .filter(|&a| self.point.rung(a) > 0)
            .or_else(|| {
                KnobAxis::ALL
                    .into_iter()
                    .max_by_key(|&a| self.point.rung(a))
                    .filter(|&a| self.point.rung(a) > 0)
            })?;
        let r = self.point.rung_mut(axis);
        *r -= 1;
        self.backoffs += 1;
        self.last_decision = now;
        self.last_stepped = Some(axis);
        Some(KnobSetting { axis, rung: self.point.rung(axis) })
    }

    /// Deepens the next axis (round-robin) that still has rungs left.
    fn descend(&mut self, now: Nanos) -> Option<KnobSetting> {
        for i in 0..KnobAxis::ALL.len() {
            let ai = (self.next_axis + i) % KnobAxis::ALL.len();
            let axis = KnobAxis::ALL[ai];
            let max_rung = self.cfg.rungs[ai] - 1;
            if self.point.rung(axis) < max_rung {
                *self.point.rung_mut(axis) += 1;
                self.next_axis = (ai + 1) % KnobAxis::ALL.len();
                self.descents += 1;
                self.last_decision = now;
                self.last_stepped = Some(axis);
                return Some(KnobSetting { axis, rung: self.point.rung(axis) });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(target: f64) -> EnergyControllerConfig {
        EnergyControllerConfig {
            p99_target_ms: target,
            decision_period: Nanos::from_secs(1),
            ..EnergyControllerConfig::default()
        }
    }

    /// Drives the controller against a synthetic monotone latency model:
    /// each rung of depth adds `per_rung` ms to a base p99. Returns the
    /// final lattice point.
    fn converge(target: f64, base: f64, per_rung: f64) -> KnobPoint {
        let mut c = EnergyController::new(cfg(target));
        for i in 0..200u64 {
            let p99 = base + c.point().depth() as f64 * per_rung;
            c.observe(Nanos::from_secs(i), p99);
        }
        c.point()
    }

    #[test]
    fn descends_round_robin_under_headroom() {
        let mut c = EnergyController::new(cfg(400.0));
        let s1 = c.observe(Nanos::from_secs(1), 100.0).unwrap();
        let s2 = c.observe(Nanos::from_secs(2), 100.0).unwrap();
        let s3 = c.observe(Nanos::from_secs(3), 100.0).unwrap();
        assert_eq!(s1.axis, KnobAxis::Dvfs);
        assert_eq!(s2.axis, KnobAxis::CacheWays);
        assert_eq!(s3.axis, KnobAxis::MembwShare);
        assert_eq!(c.point(), KnobPoint { dvfs: 1, ways: 1, membw: 1 });
        assert_eq!(c.descents(), 3);
    }

    #[test]
    fn violation_backs_off_the_last_stepped_axis() {
        let mut c = EnergyController::new(cfg(400.0));
        c.observe(Nanos::from_secs(1), 100.0); // dvfs → 1
        let s = c.observe(Nanos::from_secs(2), 500.0).unwrap();
        assert_eq!(s, KnobSetting { axis: KnobAxis::Dvfs, rung: 0 });
        assert_eq!(c.violations(), 1);
        assert_eq!(c.backoffs(), 1);
    }

    #[test]
    fn holds_inside_the_margin_band() {
        let mut c = EnergyController::new(cfg(400.0));
        // 0.85 × 400 = 340: neither headroom nor violation.
        assert!(c.observe(Nanos::from_secs(1), 360.0).is_none());
        assert_eq!(c.point(), KnobPoint::default());
    }

    #[test]
    fn decisions_are_rate_limited() {
        let mut c = EnergyController::new(cfg(400.0));
        assert!(c.observe(Nanos::from_millis(1000), 100.0).is_some());
        assert!(c.observe(Nanos::from_millis(1500), 100.0).is_none());
        assert!(c.observe(Nanos::from_millis(2100), 100.0).is_some());
    }

    #[test]
    fn converges_to_the_deepest_feasible_point() {
        // base 100, 40 ms per rung, target 400 with margin 0.85 → descend
        // while p99 < 340, i.e. depth < 6; stop at depth 6 (340 ≤ p99 ≤ 400).
        let p = converge(400.0, 100.0, 40.0);
        assert_eq!(p.depth(), 6, "stopped at {p:?}");
    }

    #[test]
    fn tighter_target_never_descends_deeper() {
        // The monotonicity property behind the simtest version: for the
        // same monotone latency response, a tighter target's solution is
        // never deeper (never lower-power) than a looser one's.
        let mut last_depth = u32::MAX;
        for target in [200.0, 300.0, 400.0, 600.0, 1000.0] {
            let depth = converge(target, 100.0, 40.0).depth();
            assert!(
                depth >= last_depth || last_depth == u32::MAX,
                "target {target} descended shallower than a tighter one"
            );
            last_depth = depth;
        }
    }

    #[test]
    fn knob_flapping_freezes_instead_of_oscillating_forever() {
        // A workload exactly at the edge: p99 flips violating/clear each
        // observation. The detector must trip and freeze the controller.
        let mut c = EnergyController::new(EnergyControllerConfig {
            p99_target_ms: 400.0,
            decision_period: Nanos::from_secs(1),
            osc_window: Nanos::from_secs(60),
            osc_threshold: 4,
            freeze: Nanos::from_secs(30),
            ..EnergyControllerConfig::default()
        });
        let mut moves = 0;
        for i in 0..120u64 {
            let p99 = if i % 2 == 0 { 100.0 } else { 500.0 };
            if c.observe(Nanos::from_secs(i), p99).is_some() {
                moves += 1;
            }
        }
        assert!(c.freezes() > 0, "detector never froze the controller");
        assert!(moves < 30, "controller flapped {moves} times");
    }

    #[test]
    fn backoff_from_the_corner_is_a_no_op() {
        let mut c = EnergyController::new(cfg(400.0));
        assert!(c.observe(Nanos::from_secs(1), 500.0).is_none());
        assert_eq!(c.point(), KnobPoint::default());
        assert_eq!(c.violations(), 1);
    }

    #[test]
    #[should_panic(expected = "margin")]
    fn bad_margin_is_rejected() {
        let _ = EnergyController::new(EnergyControllerConfig {
            margin: 1.5,
            ..EnergyControllerConfig::default()
        });
    }
}
