//! Error type for the coordination layer.

use crate::{EntityId, IslandId};
use std::error::Error;
use std::fmt;

/// Errors surfaced by coordination operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoordError {
    /// The entity is not registered anywhere.
    UnknownEntity(EntityId),
    /// The island has not registered with the controller.
    UnknownIsland(IslandId),
    /// The entity has no binding on the named island.
    NotMapped {
        /// Entity being resolved.
        entity: EntityId,
        /// Island it was resolved against.
        island: IslandId,
    },
    /// A conflicting registration already exists.
    DuplicateBinding {
        /// Entity being bound.
        entity: EntityId,
        /// Island the binding targeted.
        island: IslandId,
    },
}

impl fmt::Display for CoordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordError::UnknownEntity(e) => write!(f, "unknown {e}"),
            CoordError::UnknownIsland(i) => write!(f, "unregistered {i}"),
            CoordError::NotMapped { entity, island } => {
                write!(f, "{entity} has no binding on {island}")
            }
            CoordError::DuplicateBinding { entity, island } => {
                write!(f, "conflicting binding for {entity} on {island}")
            }
        }
    }
}

impl Error for CoordError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert_eq!(
            CoordError::UnknownEntity(EntityId(1)).to_string(),
            "unknown entity1"
        );
        assert_eq!(
            CoordError::NotMapped {
                entity: EntityId(1),
                island: IslandId(2)
            }
            .to_string(),
            "entity1 has no binding on island2"
        );
    }
}
