//! Coordination policies: producers of Tune/Trigger traffic.
//!
//! Policies run on the island that *observes* something actionable (in the
//! prototype, the IXP: it sees every packet first) and translate
//! observations into coordination messages for remote islands. The paper
//! evaluates three (§3.1–§3.2); [`HysteresisPolicy`] implements the
//! "predicting frequent transitions / recognising oscillations" mechanism
//! the paper explicitly defers to future work.

use crate::{CoordMsg, EntityId, IslandId, TokenBucket};
use simcore::Nanos;

/// What a policy can observe from its host island.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Observation {
    /// The DPI engine classified an incoming application request.
    Request {
        /// Workload-defined request class ordinal.
        class_id: u16,
        /// `true` for write-path requests.
        write: bool,
    },
    /// Stream properties learned at session setup (RTSP SDP).
    StreamInfo {
        /// Entity (guest VM) hosting the stream consumer.
        entity: EntityId,
        /// Stream bit rate in kbit/s.
        kbps: u32,
        /// Stream frame rate in frames/s.
        fps: u32,
    },
    /// A buffer monitor report for an entity's queue.
    BufferLevel {
        /// Entity whose queue is reported.
        entity: EntityId,
        /// Queue occupancy in bytes.
        bytes: u64,
        /// `true` when the monitor's threshold alarm fired.
        crossed: bool,
    },
    /// The DPI engine classified an inference request bound for the
    /// accelerator island.
    InferenceArrival {
        /// Entity (tenant) the request belongs to.
        entity: EntityId,
        /// `true` for interactive (latency-SLA) traffic.
        latency_sensitive: bool,
    },
}

/// A coordination policy: observations in, coordination messages out.
pub trait CoordinationPolicy {
    /// Feeds one observation; returns messages to put on the channel.
    fn observe(&mut self, now: Nanos, obs: &Observation) -> Vec<CoordMsg>;

    /// Short policy name for reports.
    fn name(&self) -> &'static str;
}

/// Selector used by configuration layers to pick a policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolicyKind {
    /// Baseline: no coordination.
    #[default]
    None,
    /// RUBiS request-type driven weight shifting (§3.1).
    RequestType,
    /// Request-type with oscillation damping (paper future work).
    RequestTypeHysteresis,
    /// MPlayer stream-property driven weights (§3.2 scheme 1).
    StreamQos,
    /// Buffer-threshold triggers (§3.2 scheme 2).
    BufferTrigger,
    /// Accelerator batch tuning from DPI-classified SLA classes
    /// (experiment I1).
    InferenceBatch,
}

/// The no-coordination baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullPolicy;

impl CoordinationPolicy for NullPolicy {
    fn observe(&mut self, _now: Nanos, _obs: &Observation) -> Vec<CoordMsg> {
        Vec::new()
    }
    fn name(&self) -> &'static str {
        "no-coord"
    }
}

/// RUBiS request-type coordination (§3.1).
///
/// Per the paper's scheme: browsing (read) requests send a *weight
/// increase* for the web VM and a *weight decrease* for the database;
/// servlet (write) requests send a *weight increase* for the database;
/// the application server's weight rises with the web server for reads
/// and with the database for writes (i.e. it is high in both regimes).
///
/// Applied **per request**, exactly as the paper does — a read request
/// moves the platform into the read weight regime, a write request into
/// the write regime — with deltas emitted only when the regime actually
/// changes, so a class flip costs at most three messages. Under a mixed
/// stream this oscillates, and combined with channel latency can apply
/// the *wrong* regime to an in-flight request — the mis-coordination the
/// paper observes on `BrowseCategoriesInRegion` (§3.1) and defers to
/// future work; see [`HysteresisPolicy`].
#[derive(Debug, Clone)]
pub struct RequestTypePolicy {
    web: EntityId,
    app: EntityId,
    db: EntityId,
    target: IslandId,
    hi: i32,
    lo: i32,
    base: i32,
    regime: Option<bool>, // last applied class: Some(write?)
    communicated: [i32; 3],
}

impl RequestTypePolicy {
    /// Creates the policy for the three RUBiS tiers hosted on `target`.
    /// Defaults: base weight 256, high regime weight 768, low 256.
    pub fn new(web: EntityId, app: EntityId, db: EntityId, target: IslandId) -> Self {
        RequestTypePolicy {
            web,
            app,
            db,
            target,
            hi: 768,
            lo: 256,
            base: 256,
            regime: None,
            communicated: [256; 3],
        }
    }

    /// Overrides the regime weights.
    pub fn with_weights(mut self, hi: i32, lo: i32) -> Self {
        self.hi = hi;
        self.lo = lo.min(hi);
        self
    }

    fn desired_for(&self, write: bool) -> [i32; 3] {
        if write {
            // db up, app follows db; web stays at its base weight (the
            // paper raises db for servlet requests but never lowers web).
            [self.base, self.hi, self.hi]
        } else {
            // web up, app follows web, db down.
            [self.hi, self.hi, self.lo]
        }
    }

    /// The weight regime weights currently communicated (diagnostics).
    pub fn communicated(&self) -> [i32; 3] {
        self.communicated
    }

    /// The neutral starting weight.
    pub fn base(&self) -> i32 {
        self.base
    }
}

impl CoordinationPolicy for RequestTypePolicy {
    fn observe(&mut self, _now: Nanos, obs: &Observation) -> Vec<CoordMsg> {
        let Observation::Request { write, .. } = obs else {
            return Vec::new();
        };
        if self.regime == Some(*write) {
            return Vec::new(); // same class as last request: regime holds
        }
        self.regime = Some(*write);
        let desired = self.desired_for(*write);
        let entities = [self.web, self.app, self.db];
        let mut out = Vec::new();
        for i in 0..3 {
            let delta = desired[i] - self.communicated[i];
            if delta != 0 {
                self.communicated[i] = desired[i];
                out.push(CoordMsg::Tune {
                    entity: entities[i],
                    delta,
                    target: Some(self.target),
                });
            }
        }
        out
    }
    fn name(&self) -> &'static str {
        "coord-ixp-dom0"
    }
}

/// MPlayer stream-property coordination (§3.2 scheme 1).
///
/// At RTSP session setup the IXP learns each guest's stream bit/frame
/// rate. High-rate streams get a weight increase on the CPU island (and,
/// in tandem mode, extra IXP dequeue threads); low-rate streams give
/// weight back.
#[derive(Debug, Clone)]
pub struct StreamQosPolicy {
    cpu_island: IslandId,
    ixp_island: Option<IslandId>,
    hi_kbps: u32,
    raise: i32,
    lower: i32,
    thread_raise: i32,
}

impl StreamQosPolicy {
    /// Creates the policy: streams at or above `hi_kbps` are high-rate.
    pub fn new(cpu_island: IslandId, hi_kbps: u32) -> Self {
        StreamQosPolicy {
            cpu_island,
            ixp_island: None,
            hi_kbps,
            raise: 128,
            lower: -64,
            thread_raise: 2,
        }
    }

    /// Enables tandem IXP thread tuning (Figure 6's third configuration).
    pub fn with_tandem_ixp(mut self, ixp_island: IslandId) -> Self {
        self.ixp_island = Some(ixp_island);
        self
    }

    /// Overrides the weight adjustments.
    pub fn with_adjustments(mut self, raise: i32, lower: i32) -> Self {
        self.raise = raise;
        self.lower = lower;
        self
    }
}

impl CoordinationPolicy for StreamQosPolicy {
    fn observe(&mut self, _now: Nanos, obs: &Observation) -> Vec<CoordMsg> {
        let Observation::StreamInfo { entity, kbps, .. } = obs else {
            return Vec::new();
        };
        let mut out = Vec::new();
        if *kbps >= self.hi_kbps {
            out.push(CoordMsg::Tune {
                entity: *entity,
                delta: self.raise,
                target: Some(self.cpu_island),
            });
            if let Some(ixp) = self.ixp_island {
                out.push(CoordMsg::Tune {
                    entity: *entity,
                    delta: self.thread_raise,
                    target: Some(ixp),
                });
            }
        } else {
            out.push(CoordMsg::Tune {
                entity: *entity,
                delta: self.lower,
                target: Some(self.cpu_island),
            });
        }
        out
    }
    fn name(&self) -> &'static str {
        "stream-qos"
    }
}

/// Buffer-threshold trigger coordination (§3.2 scheme 2).
///
/// Purely system-level: no application knowledge. When a flow's DRAM queue
/// crosses its threshold, fire a Trigger for the dequeuing guest, rate
/// limited by a token bucket (Table 3 measures the interference cost of
/// each trigger).
#[derive(Debug, Clone)]
pub struct BufferTriggerPolicy {
    target: IslandId,
    bucket: TokenBucket,
    fired: u64,
    suppressed: u64,
}

impl BufferTriggerPolicy {
    /// Creates the policy with an effectively unlimited trigger rate.
    pub fn new(target: IslandId) -> Self {
        BufferTriggerPolicy {
            target,
            bucket: TokenBucket::unlimited(),
            fired: 0,
            suppressed: 0,
        }
    }

    /// Bounds trigger emission.
    pub fn with_rate_limit(mut self, per_sec: f64, burst: f64) -> Self {
        self.bucket = TokenBucket::new(per_sec, burst);
        self
    }

    /// Triggers emitted.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Alarms swallowed by the rate limiter.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }
}

impl CoordinationPolicy for BufferTriggerPolicy {
    fn observe(&mut self, now: Nanos, obs: &Observation) -> Vec<CoordMsg> {
        let Observation::BufferLevel { entity, crossed: true, .. } = obs else {
            return Vec::new();
        };
        if self.bucket.try_take(now) {
            self.fired += 1;
            vec![CoordMsg::Trigger {
                entity: *entity,
                target: Some(self.target),
            }]
        } else {
            self.suppressed += 1;
            Vec::new()
        }
    }
    fn name(&self) -> &'static str {
        "buffer-trigger"
    }
}

/// Accelerator batch-shape coordination (experiment I1).
///
/// The IXP's DPI engine recovers each inference request's SLA class from
/// the RPC header; this policy turns the *first* classification of each
/// tenant into one batch-shape Tune for the accelerator island:
/// interactive tenants get a negative delta (smaller batch budget, higher
/// queue weight — a latency lean), batch tenants get a positive delta
/// (bigger batches that amortize launch overhead). One message per tenant
/// per regime, matching the paper's regime-change discipline: steady
/// classes cost no channel traffic.
#[derive(Debug, Clone)]
pub struct InferenceBatchPolicy {
    target: IslandId,
    latency_lean: i32,
    throughput_lean: i32,
    /// Tenants whose SLA regime has been communicated: (entity, class).
    communicated: Vec<(EntityId, bool)>,
}

impl InferenceBatchPolicy {
    /// Creates the policy for the accelerator island `target` with a
    /// ±6 batch-shape lean.
    pub fn new(target: IslandId) -> Self {
        InferenceBatchPolicy {
            target,
            latency_lean: -6,
            throughput_lean: 6,
            communicated: Vec::new(),
        }
    }

    /// Overrides the leans applied to latency/throughput tenants.
    pub fn with_leans(mut self, latency: i32, throughput: i32) -> Self {
        self.latency_lean = latency;
        self.throughput_lean = throughput;
        self
    }

    /// Tenants whose regime has been communicated (diagnostics).
    pub fn communicated(&self) -> usize {
        self.communicated.len()
    }
}

impl CoordinationPolicy for InferenceBatchPolicy {
    fn observe(&mut self, _now: Nanos, obs: &Observation) -> Vec<CoordMsg> {
        let Observation::InferenceArrival { entity, latency_sensitive } = obs else {
            return Vec::new();
        };
        match self.communicated.iter_mut().find(|(e, _)| e == entity) {
            Some((_, class)) if *class == *latency_sensitive => return Vec::new(),
            Some((_, class)) => *class = *latency_sensitive,
            None => self.communicated.push((*entity, *latency_sensitive)),
        }
        let delta = if *latency_sensitive {
            self.latency_lean
        } else {
            self.throughput_lean
        };
        vec![CoordMsg::Tune {
            entity: *entity,
            delta,
            target: Some(self.target),
        }]
    }
    fn name(&self) -> &'static str {
        "inference-batch"
    }
}

/// Oscillation-damped request-type coordination (the paper's future-work
/// extension, used by ablation A2).
///
/// Maintains an exponentially weighted moving average of the write
/// fraction and switches between three regimes (read-heavy / mixed /
/// write-heavy) with hysteresis bands, emitting one burst of tunes per
/// regime change instead of per request.
#[derive(Debug, Clone)]
pub struct HysteresisPolicy {
    web: EntityId,
    app: EntityId,
    db: EntityId,
    target: IslandId,
    alpha: f64,
    ewma_write: f64,
    regime: Regime,
    swing: i32,
    communicated: [i32; 3],
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Regime {
    Read,
    Mixed,
    Write,
}

impl HysteresisPolicy {
    /// Creates the policy with smoothing factor 0.05 and a ±128 swing.
    pub fn new(web: EntityId, app: EntityId, db: EntityId, target: IslandId) -> Self {
        HysteresisPolicy {
            web,
            app,
            db,
            target,
            alpha: 0.05,
            ewma_write: 0.5,
            regime: Regime::Mixed,
            swing: 128,
            communicated: [256; 3],
        }
    }

    /// Overrides the EWMA smoothing factor (0 < alpha ≤ 1).
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha.clamp(1e-6, 1.0);
        self
    }

    fn desired_for(&self, regime: Regime) -> [i32; 3] {
        match regime {
            Regime::Read => [256 + self.swing, 256 + self.swing, 256 - self.swing / 2],
            Regime::Mixed => [256, 256 + self.swing / 2, 256],
            Regime::Write => [256, 256 + self.swing, 256 + self.swing],
        }
    }
}

impl CoordinationPolicy for HysteresisPolicy {
    fn observe(&mut self, _now: Nanos, obs: &Observation) -> Vec<CoordMsg> {
        let Observation::Request { write, .. } = obs else {
            return Vec::new();
        };
        self.ewma_write =
            (1.0 - self.alpha) * self.ewma_write + self.alpha * if *write { 1.0 } else { 0.0 };
        let next = match self.regime {
            Regime::Read if self.ewma_write > 0.40 => Regime::Mixed,
            Regime::Write if self.ewma_write < 0.60 => Regime::Mixed,
            Regime::Mixed if self.ewma_write < 0.25 => Regime::Read,
            Regime::Mixed if self.ewma_write > 0.75 => Regime::Write,
            r => r,
        };
        if next == self.regime {
            return Vec::new();
        }
        self.regime = next;
        let desired = self.desired_for(next);
        let entities = [self.web, self.app, self.db];
        let mut out = Vec::new();
        for i in 0..3 {
            let delta = desired[i] - self.communicated[i];
            if delta != 0 {
                self.communicated[i] = desired[i];
                out.push(CoordMsg::Tune {
                    entity: entities[i],
                    delta,
                    target: Some(self.target),
                });
            }
        }
        out
    }
    fn name(&self) -> &'static str {
        "coord-hysteresis"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WEB: EntityId = EntityId(1);
    const APP: EntityId = EntityId(2);
    const DB: EntityId = EntityId(3);
    const X86: IslandId = IslandId(0);

    fn read_req() -> Observation {
        Observation::Request { class_id: 1, write: false }
    }

    fn write_req() -> Observation {
        Observation::Request { class_id: 11, write: true }
    }

    #[test]
    fn null_policy_is_silent() {
        let mut p = NullPolicy;
        assert!(p.observe(Nanos::ZERO, &read_req()).is_empty());
        assert_eq!(p.name(), "no-coord");
    }

    #[test]
    fn read_request_enters_read_regime() {
        let mut p = RequestTypePolicy::new(WEB, APP, DB, X86);
        let msgs = p.observe(Nanos::ZERO, &read_req());
        // From base 256: web +512 → 768, app +512 → 768, db stays (lo=256).
        assert!(msgs.contains(&CoordMsg::Tune { entity: WEB, delta: 512, target: Some(X86) }));
        assert!(msgs.contains(&CoordMsg::Tune { entity: APP, delta: 512, target: Some(X86) }));
        assert_eq!(p.communicated(), [768, 768, 256]);
    }

    #[test]
    fn write_request_enters_write_regime() {
        let mut p = RequestTypePolicy::new(WEB, APP, DB, X86);
        let msgs = p.observe(Nanos::ZERO, &write_req());
        assert!(msgs.contains(&CoordMsg::Tune { entity: DB, delta: 512, target: Some(X86) }));
        // Web stays at base in the write regime (the paper never lowers it).
        assert_eq!(p.communicated(), [256, 768, 768]);
    }

    #[test]
    fn same_class_stream_is_quiet_flips_oscillate() {
        let mut p = RequestTypePolicy::new(WEB, APP, DB, X86);
        assert!(!p.observe(Nanos::ZERO, &read_req()).is_empty());
        for _ in 0..50 {
            assert!(p.observe(Nanos::ZERO, &read_req()).is_empty());
        }
        // A class flip re-tunes web and db (app stays high in both regimes).
        let flip = p.observe(Nanos::ZERO, &write_req());
        assert_eq!(flip.len(), 2);
        let flop = p.observe(Nanos::ZERO, &read_req());
        assert_eq!(flop.len(), 2);
    }

    #[test]
    fn non_request_observations_ignored() {
        let mut p = RequestTypePolicy::new(WEB, APP, DB, X86);
        let obs = Observation::BufferLevel { entity: WEB, bytes: 1, crossed: true };
        assert!(p.observe(Nanos::ZERO, &obs).is_empty());
    }

    #[test]
    fn stream_qos_raises_high_rate_lowers_low_rate() {
        let mut p = StreamQosPolicy::new(X86, 500);
        let hi = Observation::StreamInfo { entity: WEB, kbps: 1000, fps: 25 };
        let lo = Observation::StreamInfo { entity: APP, kbps: 300, fps: 20 };
        let m1 = p.observe(Nanos::ZERO, &hi);
        assert_eq!(m1, vec![CoordMsg::Tune { entity: WEB, delta: 128, target: Some(X86) }]);
        let m2 = p.observe(Nanos::ZERO, &lo);
        assert_eq!(m2, vec![CoordMsg::Tune { entity: APP, delta: -64, target: Some(X86) }]);
    }

    #[test]
    fn stream_qos_tandem_tunes_ixp_too() {
        let ixp = IslandId(1);
        let mut p = StreamQosPolicy::new(X86, 500).with_tandem_ixp(ixp);
        let hi = Observation::StreamInfo { entity: WEB, kbps: 1000, fps: 25 };
        let msgs = p.observe(Nanos::ZERO, &hi);
        assert_eq!(msgs.len(), 2);
        assert!(msgs.contains(&CoordMsg::Tune { entity: WEB, delta: 2, target: Some(ixp) }));
    }

    #[test]
    fn buffer_trigger_fires_on_crossings_only() {
        let mut p = BufferTriggerPolicy::new(X86);
        let quiet = Observation::BufferLevel { entity: WEB, bytes: 10, crossed: false };
        assert!(p.observe(Nanos::ZERO, &quiet).is_empty());
        let crossed = Observation::BufferLevel { entity: WEB, bytes: 1 << 17, crossed: true };
        let msgs = p.observe(Nanos::ZERO, &crossed);
        assert_eq!(msgs, vec![CoordMsg::Trigger { entity: WEB, target: Some(X86) }]);
        assert_eq!(p.fired(), 1);
    }

    #[test]
    fn buffer_trigger_rate_limited() {
        let mut p = BufferTriggerPolicy::new(X86).with_rate_limit(1.0, 1.0);
        let crossed = Observation::BufferLevel { entity: WEB, bytes: 1 << 17, crossed: true };
        assert_eq!(p.observe(Nanos::ZERO, &crossed).len(), 1);
        assert_eq!(p.observe(Nanos::from_millis(100), &crossed).len(), 0);
        assert_eq!(p.suppressed(), 1);
        assert_eq!(p.observe(Nanos::from_secs(2), &crossed).len(), 1);
    }

    #[test]
    fn hysteresis_ignores_isolated_flips() {
        let mut p = HysteresisPolicy::new(WEB, APP, DB, X86);
        // Drive into the read regime.
        let mut changed = 0;
        for _ in 0..200 {
            changed += p.observe(Nanos::ZERO, &read_req()).len();
        }
        assert!(changed > 0, "entered read regime");
        // A few writes inside a read-heavy stream must not flip the regime.
        let mut noise = 0;
        for _ in 0..3 {
            noise += p.observe(Nanos::ZERO, &write_req()).len();
            noise += p.observe(Nanos::ZERO, &read_req()).len();
        }
        assert_eq!(noise, 0, "hysteresis damps isolated flips");
    }

    #[test]
    fn hysteresis_follows_sustained_shift() {
        let mut p = HysteresisPolicy::new(WEB, APP, DB, X86);
        for _ in 0..200 {
            p.observe(Nanos::ZERO, &read_req());
        }
        let mut msgs = Vec::new();
        for _ in 0..200 {
            msgs.extend(p.observe(Nanos::ZERO, &write_req()));
        }
        assert!(
            msgs.iter().any(|m| matches!(
                m,
                CoordMsg::Tune { entity, delta, .. } if *entity == DB && *delta > 0
            )),
            "sustained writes eventually raise the db"
        );
    }

    #[test]
    fn policy_kind_default_is_none() {
        assert_eq!(PolicyKind::default(), PolicyKind::None);
    }

    #[test]
    fn stream_qos_custom_adjustments() {
        let mut p = StreamQosPolicy::new(X86, 500).with_adjustments(200, -20);
        let hi = Observation::StreamInfo { entity: WEB, kbps: 900, fps: 30 };
        let lo = Observation::StreamInfo { entity: APP, kbps: 100, fps: 10 };
        assert_eq!(
            p.observe(Nanos::ZERO, &hi),
            vec![CoordMsg::Tune { entity: WEB, delta: 200, target: Some(X86) }]
        );
        assert_eq!(
            p.observe(Nanos::ZERO, &lo),
            vec![CoordMsg::Tune { entity: APP, delta: -20, target: Some(X86) }]
        );
    }

    #[test]
    fn stream_qos_threshold_is_inclusive() {
        let mut p = StreamQosPolicy::new(X86, 500);
        let edge = Observation::StreamInfo { entity: WEB, kbps: 500, fps: 25 };
        let msgs = p.observe(Nanos::ZERO, &edge);
        assert!(matches!(msgs[0], CoordMsg::Tune { delta, .. } if delta > 0));
    }

    #[test]
    fn hysteresis_alpha_controls_reaction_speed() {
        let flips_needed = |alpha: f64| -> usize {
            let mut p = HysteresisPolicy::new(WEB, APP, DB, X86).with_alpha(alpha);
            for _ in 0..500 {
                p.observe(Nanos::ZERO, &read_req());
            }
            for i in 0..500 {
                if !p.observe(Nanos::ZERO, &write_req()).is_empty() {
                    return i;
                }
            }
            500
        };
        let fast = flips_needed(0.3);
        let slow = flips_needed(0.02);
        assert!(fast < slow, "larger alpha reacts sooner: {fast} vs {slow}");
    }

    #[test]
    fn policies_ignore_foreign_observations() {
        let buf = Observation::BufferLevel { entity: WEB, bytes: 1, crossed: true };
        let req = read_req();
        assert!(StreamQosPolicy::new(X86, 500).observe(Nanos::ZERO, &buf).is_empty());
        assert!(StreamQosPolicy::new(X86, 500).observe(Nanos::ZERO, &req).is_empty());
        assert!(BufferTriggerPolicy::new(X86).observe(Nanos::ZERO, &req).is_empty());
        assert!(HysteresisPolicy::new(WEB, APP, DB, X86).observe(Nanos::ZERO, &buf).is_empty());
    }

    #[test]
    fn inference_batch_leans_once_per_tenant() {
        let accel = IslandId(2);
        let mut p = InferenceBatchPolicy::new(accel);
        let chat = Observation::InferenceArrival { entity: WEB, latency_sensitive: true };
        let rank = Observation::InferenceArrival { entity: APP, latency_sensitive: false };
        assert_eq!(
            p.observe(Nanos::ZERO, &chat),
            vec![CoordMsg::Tune { entity: WEB, delta: -6, target: Some(accel) }]
        );
        assert_eq!(
            p.observe(Nanos::ZERO, &rank),
            vec![CoordMsg::Tune { entity: APP, delta: 6, target: Some(accel) }]
        );
        // Steady classes cost no further channel traffic.
        for _ in 0..100 {
            assert!(p.observe(Nanos::ZERO, &chat).is_empty());
            assert!(p.observe(Nanos::ZERO, &rank).is_empty());
        }
        assert_eq!(p.communicated(), 2);
        // A tenant changing SLA class re-tunes.
        let flipped = Observation::InferenceArrival { entity: WEB, latency_sensitive: false };
        assert_eq!(p.observe(Nanos::ZERO, &flipped).len(), 1);
        assert!(p.observe(Nanos::ZERO, &read_req()).is_empty());
    }

    #[test]
    fn inference_batch_custom_leans() {
        let mut p = InferenceBatchPolicy::new(X86).with_leans(-2, 9);
        let obs = Observation::InferenceArrival { entity: DB, latency_sensitive: false };
        assert_eq!(
            p.observe(Nanos::ZERO, &obs),
            vec![CoordMsg::Tune { entity: DB, delta: 9, target: Some(X86) }]
        );
    }

    #[test]
    fn policy_names_are_stable_report_keys() {
        assert_eq!(NullPolicy.name(), "no-coord");
        assert_eq!(RequestTypePolicy::new(WEB, APP, DB, X86).name(), "coord-ixp-dom0");
        assert_eq!(StreamQosPolicy::new(X86, 1).name(), "stream-qos");
        assert_eq!(BufferTriggerPolicy::new(X86).name(), "buffer-trigger");
        assert_eq!(InferenceBatchPolicy::new(X86).name(), "inference-batch");
        assert_eq!(HysteresisPolicy::new(WEB, APP, DB, X86).name(), "coord-hysteresis");
    }
}
