//! Distributed coordination across many islands (the paper's §5 ongoing
//! work: "evaluations of the scalability of such mechanisms to large-scale
//! multicore platforms, part of which involve the use of distributed
//! coordination algorithms across multiple island resource managers").
//!
//! A single global controller serializes every Tune/Trigger through one
//! point. [`HierarchicalController`] shards the registry instead: each
//! *zone* controller owns a subset of islands and resolves messages for
//! entities bound in its zone locally; only messages whose target lives in
//! another zone are forwarded through the root directory, which maps
//! entities to zones. Locality in the workload then translates directly
//! into load taken off the root — the scalability experiment S1 measures
//! exactly that.

use crate::{Action, Controller, CoordMsg, EntityId, IslandId};
use simcore::Nanos;
use std::collections::BTreeMap;

/// A zone identifier (one per zone controller).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ZoneId(pub u16);

/// Where a message was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Handled entirely within the origin zone.
    Local,
    /// Forwarded through the root directory to another zone.
    Forwarded {
        /// Zone that ultimately resolved the message.
        to: ZoneId,
    },
    /// No zone knows the entity (or the message was a registration).
    None,
}

/// A child decision waiting to be folded into the fabric: a coordination
/// message plus the `(lamport, source)` stamp its cross-node envelope
/// carried and the zone it originated in.
///
/// Fleet aggregation delivers these in *arrival* order, which under
/// cross-node latency skew, loss, and retransmission is not a
/// deterministic order. [`HierarchicalController::aggregate`] restores
/// the `(lamport, source)` total order before folding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChildReport {
    /// Lamport timestamp from the envelope.
    pub lamport: u64,
    /// Source node from the envelope (tie-breaker for equal timestamps).
    pub source: u16,
    /// Zone the report originated in.
    pub origin: ZoneId,
    /// The decision itself.
    pub msg: CoordMsg,
}

/// Per-controller load counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ZoneLoad {
    /// Messages this zone resolved for its own islands.
    pub local: u64,
    /// Messages this zone resolved on behalf of another zone.
    pub remote_in: u64,
    /// Messages this zone originated that had to be forwarded.
    pub forwarded_out: u64,
}

/// A two-level coordination fabric: zone controllers plus a root entity
/// directory.
///
/// # Example
///
/// ```
/// use coord::hierarchy::{HierarchicalController, ZoneId};
/// use coord::{CoordMsg, EntityId, IslandId, IslandKind};
/// use simcore::Nanos;
///
/// let mut h = HierarchicalController::new(2);
/// h.register_island(ZoneId(0), IslandId(0), IslandKind::GeneralPurpose);
/// h.register_entity(ZoneId(0), EntityId(1), IslandId(0), 1);
/// // A tune originating in zone 1 for an entity owned by zone 0 is
/// // forwarded through the root.
/// let (actions, res) = h.handle(
///     Nanos::ZERO,
///     ZoneId(1),
///     CoordMsg::Tune { entity: EntityId(1), delta: 64, target: None },
/// );
/// assert_eq!(actions.len(), 1);
/// assert_eq!(res, coord::hierarchy::Resolution::Forwarded { to: ZoneId(0) });
/// ```
#[derive(Debug)]
pub struct HierarchicalController {
    zones: Vec<Controller>,
    loads: Vec<ZoneLoad>,
    /// Root directory: entity → owning zone.
    directory: BTreeMap<EntityId, ZoneId>,
    /// Root directory: island → owning zone.
    island_zone: BTreeMap<IslandId, ZoneId>,
    root_lookups: u64,
}

impl HierarchicalController {
    /// Creates a fabric with `zones` empty zone controllers.
    ///
    /// # Panics
    /// Panics if `zones == 0`.
    pub fn new(zones: u16) -> Self {
        assert!(zones > 0, "need at least one zone");
        HierarchicalController {
            zones: (0..zones).map(|_| Controller::new()).collect(),
            loads: vec![ZoneLoad::default(); zones as usize],
            directory: BTreeMap::new(),
            island_zone: BTreeMap::new(),
            root_lookups: 0,
        }
    }

    /// Registers an island under a zone.
    pub fn register_island(
        &mut self,
        zone: ZoneId,
        island: IslandId,
        kind: crate::IslandKind,
    ) {
        self.island_zone.insert(island, zone);
        self.zones[zone.0 as usize].handle(
            Nanos::ZERO,
            CoordMsg::RegisterIsland { island, kind },
        );
    }

    /// Registers an entity binding; the entity is owned by the island's
    /// zone and advertised in the root directory.
    pub fn register_entity(
        &mut self,
        zone: ZoneId,
        entity: EntityId,
        island: IslandId,
        local_key: u64,
    ) {
        self.directory.insert(entity, zone);
        self.zones[zone.0 as usize].handle(
            Nanos::ZERO,
            CoordMsg::RegisterEntity { entity, island, local_key },
        );
    }

    /// Handles a runtime coordination message originating in `origin`.
    /// Returns the resolved actions and where resolution happened.
    pub fn handle(
        &mut self,
        now: Nanos,
        origin: ZoneId,
        msg: CoordMsg,
    ) -> (Vec<Action>, Resolution) {
        let Some(entity) = msg.entity() else {
            // Registrations go through the typed APIs; acks are no-ops.
            return (Vec::new(), Resolution::None);
        };
        let owner = match self.directory.get(&entity) {
            Some(z) => *z,
            None => {
                // Unknown everywhere: charge the origin's rejection count.
                self.zones[origin.0 as usize].handle(now, msg);
                return (Vec::new(), Resolution::None);
            }
        };
        if owner == origin {
            self.loads[origin.0 as usize].local += 1;
            let actions = self.zones[origin.0 as usize].handle(now, msg);
            (actions, Resolution::Local)
        } else {
            // Root directory lookup + forward to the owning zone.
            self.root_lookups += 1;
            self.loads[origin.0 as usize].forwarded_out += 1;
            self.loads[owner.0 as usize].remote_in += 1;
            let actions = self.zones[owner.0 as usize].handle(now, msg);
            (actions, Resolution::Forwarded { to: owner })
        }
    }

    /// Folds a batch of child reports into the fabric in `(lamport,
    /// source)` order, returning the resolved actions in that order.
    ///
    /// This is the ordered counterpart of calling [`Self::handle`] per
    /// report as it arrives: bus lanes deliver reports in arrival order,
    /// which varies with latency skew and retransmission, and a fold
    /// whose effects are order-dependent (e.g. clamped weight arithmetic)
    /// would diverge across runs. Sorting by the envelope stamp first
    /// makes the aggregate a pure function of the *set* of reports —
    /// permuted arrival yields an identical aggregate.
    pub fn aggregate(&mut self, now: Nanos, mut batch: Vec<ChildReport>) -> Vec<Action> {
        batch.sort_by_key(|r| (r.lamport, r.source));
        let mut actions = Vec::new();
        for r in batch {
            let (mut a, _) = self.handle(now, r.origin, r.msg);
            actions.append(&mut a);
        }
        actions
    }

    /// Load counters for a zone.
    pub fn load(&self, zone: ZoneId) -> ZoneLoad {
        self.loads[zone.0 as usize]
    }

    /// Root-directory lookups performed (the centralization pressure).
    pub fn root_lookups(&self) -> u64 {
        self.root_lookups
    }

    /// Number of zones.
    pub fn zones(&self) -> usize {
        self.zones.len()
    }

    /// Read access to a zone controller (diagnostics).
    pub fn zone(&self, zone: ZoneId) -> &Controller {
        &self.zones[zone.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IslandKind;

    fn fabric() -> HierarchicalController {
        let mut h = HierarchicalController::new(4);
        for z in 0..4u16 {
            let island = IslandId(z);
            h.register_island(ZoneId(z), island, IslandKind::GeneralPurpose);
            // Entities 10z..10z+9 live in zone z.
            for e in 0..10u32 {
                h.register_entity(ZoneId(z), EntityId(z as u32 * 10 + e), island, e as u64);
            }
        }
        h
    }

    #[test]
    fn local_messages_stay_local() {
        let mut h = fabric();
        let (actions, res) = h.handle(
            Nanos::ZERO,
            ZoneId(2),
            CoordMsg::Tune { entity: EntityId(25), delta: 64, target: None },
        );
        assert_eq!(actions.len(), 1);
        assert_eq!(res, Resolution::Local);
        assert_eq!(h.load(ZoneId(2)).local, 1);
        assert_eq!(h.root_lookups(), 0);
    }

    #[test]
    fn cross_zone_messages_forward_through_root() {
        let mut h = fabric();
        let (actions, res) = h.handle(
            Nanos::ZERO,
            ZoneId(0),
            CoordMsg::Trigger { entity: EntityId(31), target: None },
        );
        assert_eq!(actions.len(), 1);
        assert_eq!(res, Resolution::Forwarded { to: ZoneId(3) });
        assert_eq!(h.load(ZoneId(0)).forwarded_out, 1);
        assert_eq!(h.load(ZoneId(3)).remote_in, 1);
        assert_eq!(h.root_lookups(), 1);
    }

    #[test]
    fn unknown_entities_rejected_at_origin() {
        let mut h = fabric();
        let (actions, res) = h.handle(
            Nanos::ZERO,
            ZoneId(1),
            CoordMsg::Tune { entity: EntityId(999), delta: 1, target: None },
        );
        assert!(actions.is_empty());
        assert_eq!(res, Resolution::None);
        assert_eq!(h.zone(ZoneId(1)).stats().rejected, 1);
    }

    #[test]
    fn locality_reduces_root_pressure() {
        let mut h = fabric();
        // 90% local traffic, 10% cross-zone.
        for i in 0..100u32 {
            let origin = ZoneId((i % 4) as u16);
            let entity = if i % 10 == 0 {
                EntityId(((i + 1) % 4) * 10) // someone else's entity
            } else {
                EntityId(origin.0 as u32 * 10 + (i % 10))
            };
            h.handle(
                Nanos::ZERO,
                origin,
                CoordMsg::Tune { entity, delta: 1, target: None },
            );
        }
        assert_eq!(h.root_lookups(), 10);
        let total_local: u64 = (0..4).map(|z| h.load(ZoneId(z)).local).sum();
        assert_eq!(total_local, 90);
    }

    /// Issue-4 coverage: a fabric mixing the three *real* island kinds the
    /// platform now ships (x86 credit scheduler, IXP network processor,
    /// batching accelerator), not a homogeneous synthetic one.
    fn mixed_kind_fabric() -> HierarchicalController {
        let mut h = HierarchicalController::new(2);
        for z in 0..2u16 {
            let base = z * 10;
            h.register_island(ZoneId(z), IslandId(base), IslandKind::GeneralPurpose);
            h.register_island(ZoneId(z), IslandId(base + 1), IslandKind::NetworkProcessor);
            h.register_island(ZoneId(z), IslandId(base + 2), IslandKind::Accelerator);
            // Entity z00+e: a VM bound on the zone's x86 island; tenants
            // z00+100+e are bound on the zone's accelerator.
            for e in 0..4u32 {
                let vm = EntityId(z as u32 * 100 + e);
                h.register_entity(ZoneId(z), vm, IslandId(base), e as u64);
                let tenant = EntityId(z as u32 * 100 + 50 + e);
                h.register_entity(ZoneId(z), tenant, IslandId(base + 2), e as u64);
            }
        }
        h
    }

    #[test]
    fn zone_local_accel_to_xsched_tune_needs_no_root() {
        let mut h = mixed_kind_fabric();
        // The accelerator island in zone 0 observes congestion and tunes a
        // VM living on zone 0's x86 island: resolved zone-locally.
        let (actions, res) = h.handle(
            Nanos::ZERO,
            ZoneId(0),
            CoordMsg::Tune { entity: EntityId(2), delta: -32, target: None },
        );
        assert_eq!(res, Resolution::Local);
        assert_eq!(h.root_lookups(), 0, "no root directory involvement");
        assert_eq!(
            actions,
            vec![Action::ApplyTune { island: IslandId(0), local_key: 2, delta: -32 }]
        );
        // And the reverse direction: tuning a zone-local accel tenant.
        let (actions, res) = h.handle(
            Nanos::ZERO,
            ZoneId(0),
            CoordMsg::Tune { entity: EntityId(51), delta: 6, target: None },
        );
        assert_eq!(res, Resolution::Local);
        assert_eq!(h.root_lookups(), 0);
        assert_eq!(
            actions,
            vec![Action::ApplyTune { island: IslandId(2), local_key: 1, delta: 6 }]
        );
        assert_eq!(h.load(ZoneId(0)).local, 2);
    }

    #[test]
    fn cross_zone_accel_trigger_still_forwards() {
        let mut h = mixed_kind_fabric();
        // Zone 0 triggers a tenant hosted on zone 1's accelerator.
        let (actions, res) = h.handle(
            Nanos::ZERO,
            ZoneId(0),
            CoordMsg::Trigger { entity: EntityId(153), target: None },
        );
        assert_eq!(res, Resolution::Forwarded { to: ZoneId(1) });
        assert_eq!(h.root_lookups(), 1);
        assert_eq!(
            actions,
            vec![Action::ApplyTrigger { island: IslandId(12), local_key: 3 }]
        );
        assert_eq!(h.load(ZoneId(0)).forwarded_out, 1);
        assert_eq!(h.load(ZoneId(1)).remote_in, 1);
    }

    #[test]
    fn aggregate_is_arrival_order_independent() {
        // Regression (issue 9): the fold over child reports must consume
        // children in (lamport, source) order, not arrival order. Build a
        // batch whose stamps collide on lamport (tie broken by source) and
        // fold every rotation + a few swaps; all must agree exactly.
        let batch = [
            ChildReport {
                lamport: 3,
                source: 1,
                origin: ZoneId(0),
                msg: CoordMsg::Tune { entity: EntityId(5), delta: 64, target: None },
            },
            ChildReport {
                lamport: 1,
                source: 2,
                origin: ZoneId(1),
                msg: CoordMsg::Tune { entity: EntityId(12), delta: -32, target: None },
            },
            ChildReport {
                lamport: 3,
                source: 0,
                origin: ZoneId(2),
                msg: CoordMsg::Trigger { entity: EntityId(25), target: None },
            },
            ChildReport {
                lamport: 1,
                source: 0,
                origin: ZoneId(3),
                msg: CoordMsg::Tune { entity: EntityId(7), delta: 16, target: None },
            },
        ];
        let run = |order: &[usize]| {
            let mut h = fabric();
            let permuted: Vec<ChildReport> =
                order.iter().map(|&i| batch[i].clone()).collect();
            let actions = h.aggregate(Nanos::ZERO, permuted);
            let loads: Vec<ZoneLoad> = (0..4).map(|z| h.load(ZoneId(z))).collect();
            (actions, loads, h.root_lookups())
        };
        let reference = run(&[0, 1, 2, 3]);
        for order in [
            [1, 0, 3, 2],
            [3, 2, 1, 0],
            [2, 3, 0, 1],
            [1, 3, 0, 2],
            [2, 0, 3, 1],
        ] {
            assert_eq!(run(&order), reference, "arrival order {order:?} diverged");
        }
        // And the sorted fold really is the (lamport, source) order: the
        // lamport-1 pair resolves before the lamport-3 pair, sources
        // breaking the ties.
        assert_eq!(
            reference.0,
            vec![
                Action::ApplyTune { island: IslandId(0), local_key: 7, delta: 16 },
                Action::ApplyTune { island: IslandId(1), local_key: 2, delta: -32 },
                Action::ApplyTrigger { island: IslandId(2), local_key: 5 },
                Action::ApplyTune { island: IslandId(0), local_key: 5, delta: 64 },
            ]
        );
    }

    #[test]
    fn acks_are_noops() {
        let mut h = fabric();
        let (a, r) = h.handle(Nanos::ZERO, ZoneId(0), CoordMsg::Ack { seq: 7 });
        assert!(a.is_empty());
        assert_eq!(r, Resolution::None);
    }
}
