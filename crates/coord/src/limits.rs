//! Coordination-traffic rate limiting.
//!
//! Triggers are preemptive and therefore disruptive to colocated entities
//! (Table 3 measures the interference). A token bucket bounds how often a
//! policy may fire them; ablation A5 sweeps the rate.

use simcore::Nanos;

/// A token bucket: `rate` tokens per second, holding at most `burst`.
///
/// # Example
///
/// ```
/// use coord::TokenBucket;
/// use simcore::Nanos;
///
/// let mut b = TokenBucket::new(10.0, 1.0); // 10/s, no burst capacity
/// assert!(b.try_take(Nanos::ZERO));
/// assert!(!b.try_take(Nanos::from_millis(50)));  // refills at 100 ms
/// assert!(b.try_take(Nanos::from_millis(100)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TokenBucket {
    rate_per_sec: f64,
    burst: f64,
    tokens: f64,
    last: Nanos,
}

impl TokenBucket {
    /// Creates a full bucket.
    ///
    /// # Panics
    /// Panics if `rate_per_sec` or `burst` is not positive.
    pub fn new(rate_per_sec: f64, burst: f64) -> Self {
        assert!(rate_per_sec > 0.0 && burst > 0.0, "rate and burst must be positive");
        TokenBucket {
            rate_per_sec,
            burst,
            tokens: burst,
            last: Nanos::ZERO,
        }
    }

    /// An effectively unlimited bucket.
    pub fn unlimited() -> Self {
        TokenBucket::new(1e12, 1e12)
    }

    /// Takes one token if available. Time must be non-decreasing.
    pub fn try_take(&mut self, now: Nanos) -> bool {
        let dt = now.saturating_sub(self.last).as_secs_f64();
        self.last = self.last.max(now);
        self.tokens = (self.tokens + dt * self.rate_per_sec).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (diagnostics).
    pub fn available(&self) -> f64 {
        self.tokens
    }
}

/// Detects read↔write regime oscillation in a coordination stream.
///
/// §3.1 attributes the occasional mis-application of coordination to
/// "frequent transitions amongst read and write requests" the prototype
/// does not recognise. The detector counts regime flips over a sliding
/// window; policies (or operators) can consult
/// [`is_oscillating`](Self::is_oscillating) to switch into a damped mode.
///
/// # Example
///
/// ```
/// use coord::OscillationDetector;
/// use simcore::Nanos;
///
/// let mut d = OscillationDetector::new(Nanos::from_secs(1), 4);
/// for i in 0..6 {
///     d.observe(Nanos::from_millis(i * 50), i % 2 == 0);
/// }
/// assert!(d.is_oscillating(Nanos::from_millis(250)));
/// // Queries are time-aware: once the burst ages out of the window the
/// // verdict decays even if no further requests are observed.
/// assert!(!d.is_oscillating(Nanos::from_secs(10)));
/// ```
#[derive(Debug, Clone)]
pub struct OscillationDetector {
    window: Nanos,
    threshold: u32,
    last_class: Option<bool>,
    flips: std::collections::VecDeque<Nanos>,
}

impl OscillationDetector {
    /// Creates a detector that reports oscillation when more than
    /// `threshold` regime flips land inside `window`.
    pub fn new(window: Nanos, threshold: u32) -> Self {
        OscillationDetector {
            window,
            threshold,
            last_class: None,
            flips: std::collections::VecDeque::new(),
        }
    }

    /// Feeds one classified request (`write` = its class). Returns the
    /// number of flips currently inside the window.
    pub fn observe(&mut self, now: Nanos, write: bool) -> u32 {
        if let Some(last) = self.last_class {
            if last != write {
                self.flips.push_back(now);
            }
        }
        self.last_class = Some(write);
        while let Some(&front) = self.flips.front() {
            if front + self.window < now {
                self.flips.pop_front();
            } else {
                break;
            }
        }
        self.flips.len() as u32
    }

    /// `true` while the flip rate exceeds the configured threshold.
    ///
    /// Time-aware: flips older than the window as of `now` do not count,
    /// so the verdict decays during silence instead of sticking at the
    /// last observed burst.
    pub fn is_oscillating(&self, now: Nanos) -> bool {
        self.flips_in_window(now) > self.threshold
    }

    /// Flips inside the window as of `now`.
    pub fn flips_in_window(&self, now: Nanos) -> u32 {
        // Count instead of evicting: queries take `&self`, and the stale
        // entries are cheap to skip (they are bounded by one burst and are
        // physically evicted on the next `observe`).
        self.flips.iter().filter(|&&f| f + self.window >= now).count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oscillation_detected_and_decays() {
        let mut d = OscillationDetector::new(Nanos::from_secs(1), 3);
        // Alternating classes every 100 ms: flips pile up.
        for i in 0..10u64 {
            d.observe(Nanos::from_millis(i * 100), i % 2 == 0);
        }
        assert!(d.is_oscillating(Nanos::from_millis(900)));
        // A long steady run lets the window drain (the transition into
        // the steady phase is itself the final flip, then nothing).
        for i in 0..15u64 {
            d.observe(Nanos::from_secs(5) + Nanos::from_millis(i * 100), true);
        }
        let end = Nanos::from_secs(5) + Nanos::from_millis(1400);
        assert!(!d.is_oscillating(end));
        assert_eq!(d.flips_in_window(end), 0);
    }

    #[test]
    fn verdict_decays_during_silence() {
        // The stream stops entirely after a burst of flips; queries must
        // still decay rather than report the burst forever.
        let mut d = OscillationDetector::new(Nanos::from_secs(1), 3);
        for i in 0..10u64 {
            d.observe(Nanos::from_millis(i * 100), i % 2 == 0);
        }
        let last = Nanos::from_millis(900);
        assert!(d.is_oscillating(last));
        assert!(d.is_oscillating(last + Nanos::from_millis(500)));
        assert!(!d.is_oscillating(last + Nanos::from_secs(2)));
        assert_eq!(d.flips_in_window(last + Nanos::from_secs(2)), 0);
        // …and a fresh flip after the silence starts a clean count.
        assert_eq!(d.observe(Nanos::from_secs(60), true), 1);
    }

    #[test]
    fn steady_stream_never_oscillates() {
        let mut d = OscillationDetector::new(Nanos::from_secs(1), 0);
        for i in 0..100u64 {
            assert_eq!(d.observe(Nanos::from_millis(i * 10), true), 0);
        }
        assert!(!d.is_oscillating(Nanos::from_millis(990)));
    }

    #[test]
    fn single_flip_counts_once() {
        let mut d = OscillationDetector::new(Nanos::from_secs(10), 1);
        d.observe(Nanos::from_millis(0), false);
        assert_eq!(d.observe(Nanos::from_millis(1), true), 1);
        assert!(!d.is_oscillating(Nanos::from_millis(1)), "one flip is within threshold");
    }

    #[test]
    fn burst_then_throttle() {
        let mut b = TokenBucket::new(1.0, 3.0);
        assert!(b.try_take(Nanos::ZERO));
        assert!(b.try_take(Nanos::ZERO));
        assert!(b.try_take(Nanos::ZERO));
        assert!(!b.try_take(Nanos::ZERO));
        // One second refills one token.
        assert!(b.try_take(Nanos::from_secs(1)));
        assert!(!b.try_take(Nanos::from_secs(1)));
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut b = TokenBucket::new(100.0, 2.0);
        assert!(b.try_take(Nanos::ZERO));
        // A long quiet period cannot bank more than `burst`.
        let t = Nanos::from_secs(100);
        assert!(b.try_take(t));
        assert!(b.try_take(t));
        assert!(!b.try_take(t));
    }

    #[test]
    fn unlimited_never_throttles() {
        let mut b = TokenBucket::unlimited();
        for _ in 0..10_000 {
            assert!(b.try_take(Nanos::ZERO));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let _ = TokenBucket::new(0.0, 1.0);
    }
}
