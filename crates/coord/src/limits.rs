//! Coordination-traffic rate limiting and adversary policing.
//!
//! Triggers are preemptive and therefore disruptive to colocated entities
//! (Table 3 measures the interference). A token bucket bounds how often a
//! policy may fire them; ablation A5 sweeps the rate.
//!
//! The Tune/Trigger interface also invites *strategic* play (Legrand &
//! Touati's non-cooperative scheduling analysis): a tenant that inflates
//! its demand deltas or spams Triggers captures resources that honest
//! tenants paid for. [`EntityPolicer`] is the controller-side defense:
//! per-entity token buckets bound request *rates*, and a
//! reputation-weighted discount bounds cumulative *displacement* — an
//! entity whose past tunes all pushed one way has spent its budget and
//! sees later requests scaled toward zero, while honest oscillating
//! corrections keep their net displacement small and pass ~unscathed.
//! Experiment A1 measures the recovered price of anarchy.

use crate::EntityId;
use simcore::Nanos;
use std::collections::BTreeMap;

/// A token bucket: `rate` tokens per second, holding at most `burst`.
///
/// # Example
///
/// ```
/// use coord::TokenBucket;
/// use simcore::Nanos;
///
/// let mut b = TokenBucket::new(10.0, 1.0); // 10/s, no burst capacity
/// assert!(b.try_take(Nanos::ZERO));
/// assert!(!b.try_take(Nanos::from_millis(50)));  // refills at 100 ms
/// assert!(b.try_take(Nanos::from_millis(100)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TokenBucket {
    rate_per_sec: f64,
    burst: f64,
    tokens: f64,
    last: Nanos,
}

impl TokenBucket {
    /// Creates a full bucket.
    ///
    /// # Panics
    /// Panics if `rate_per_sec` or `burst` is not positive.
    pub fn new(rate_per_sec: f64, burst: f64) -> Self {
        assert!(rate_per_sec > 0.0 && burst > 0.0, "rate and burst must be positive");
        TokenBucket {
            rate_per_sec,
            burst,
            tokens: burst,
            last: Nanos::ZERO,
        }
    }

    /// An effectively unlimited bucket.
    pub fn unlimited() -> Self {
        TokenBucket::new(1e12, 1e12)
    }

    /// Takes one token if available. Time must be non-decreasing.
    pub fn try_take(&mut self, now: Nanos) -> bool {
        let dt = now.saturating_sub(self.last).as_secs_f64();
        self.last = self.last.max(now);
        self.tokens = (self.tokens + dt * self.rate_per_sec).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (diagnostics).
    pub fn available(&self) -> f64 {
        self.tokens
    }
}

/// Detects read↔write regime oscillation in a coordination stream.
///
/// §3.1 attributes the occasional mis-application of coordination to
/// "frequent transitions amongst read and write requests" the prototype
/// does not recognise. The detector counts regime flips over a sliding
/// window; policies (or operators) can consult
/// [`is_oscillating`](Self::is_oscillating) to switch into a damped mode.
///
/// # Example
///
/// ```
/// use coord::OscillationDetector;
/// use simcore::Nanos;
///
/// let mut d = OscillationDetector::new(Nanos::from_secs(1), 4);
/// for i in 0..6 {
///     d.observe(Nanos::from_millis(i * 50), i % 2 == 0);
/// }
/// assert!(d.is_oscillating(Nanos::from_millis(250)));
/// // Queries are time-aware: once the burst ages out of the window the
/// // verdict decays even if no further requests are observed.
/// assert!(!d.is_oscillating(Nanos::from_secs(10)));
/// ```
#[derive(Debug, Clone)]
pub struct OscillationDetector {
    window: Nanos,
    threshold: u32,
    last_class: Option<bool>,
    flips: std::collections::VecDeque<Nanos>,
}

impl OscillationDetector {
    /// Creates a detector that reports oscillation when more than
    /// `threshold` regime flips land inside `window`.
    pub fn new(window: Nanos, threshold: u32) -> Self {
        OscillationDetector {
            window,
            threshold,
            last_class: None,
            flips: std::collections::VecDeque::new(),
        }
    }

    /// Feeds one classified request (`write` = its class). Returns the
    /// number of flips currently inside the window.
    pub fn observe(&mut self, now: Nanos, write: bool) -> u32 {
        if let Some(last) = self.last_class {
            if last != write {
                self.flips.push_back(now);
            }
        }
        self.last_class = Some(write);
        while let Some(&front) = self.flips.front() {
            if front + self.window < now {
                self.flips.pop_front();
            } else {
                break;
            }
        }
        self.flips.len() as u32
    }

    /// `true` while the flip rate exceeds the configured threshold.
    ///
    /// Time-aware: flips older than the window as of `now` do not count,
    /// so the verdict decays during silence instead of sticking at the
    /// last observed burst.
    pub fn is_oscillating(&self, now: Nanos) -> bool {
        self.flips_in_window(now) > self.threshold
    }

    /// Flips inside the window as of `now`.
    pub fn flips_in_window(&self, now: Nanos) -> u32 {
        // Count instead of evicting: queries take `&self`, and the stale
        // entries are cheap to skip (they are bounded by one burst and are
        // physically evicted on the next `observe`).
        self.flips.iter().filter(|&&f| f + self.window >= now).count() as u32
    }
}

/// Configuration for the controller-side adversary defenses.
///
/// Rates are per entity. `displacement_cap` bounds the *net* signed tune
/// displacement an entity may accumulate; reputation falls quadratically
/// as an entity approaches the cap — mild on the small transient
/// displacements honest policies carry, crushing near the cap — and
/// discounts the entity's requested deltas toward zero (see
/// [`EntityPolicer::police_tune`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicerConfig {
    /// Sustained Tune admissions per second per entity.
    pub tune_rate_per_sec: f64,
    /// Tune burst capacity per entity.
    pub tune_burst: f64,
    /// Sustained Trigger admissions per second per entity.
    pub trigger_rate_per_sec: f64,
    /// Trigger burst capacity per entity.
    pub trigger_burst: f64,
    /// Bound on |net applied tune displacement| per entity.
    pub displacement_cap: i64,
}

impl Default for PolicerConfig {
    /// Permissive enough for the honest request-type policy (which sends
    /// tens of tunes per second per entity but oscillates, keeping net
    /// displacement near zero) and tight enough to cap a monotone
    /// inflater at `displacement_cap` and a Trigger spammer at 2/s. The
    /// tune rate is deliberately loose: inflaters are caught by the
    /// displacement cap, not the rate, so a tight tune rate would only
    /// punish honest traffic.
    fn default() -> Self {
        PolicerConfig {
            tune_rate_per_sec: 32.0,
            tune_burst: 64.0,
            trigger_rate_per_sec: 2.0,
            trigger_burst: 4.0,
            // Half the honest policies' ±512 swing: an alternating honest
            // sender bounces its net inside ±cap and passes at face value
            // (only its first displacement is clamped), while a monotone
            // inflater saturates at a weight displacement too small to
            // outschedule honest tenants.
            displacement_cap: 256,
        }
    }
}

/// Per-entity policing counters (diagnostics and property tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeterStats {
    /// Requests admitted (possibly discounted).
    pub admitted: u64,
    /// Requests dropped by the rate limiter.
    pub throttled: u64,
    /// Admitted tunes whose applied delta differed from the request.
    pub discounted: u64,
    /// Net signed tune displacement applied so far.
    pub net_applied: i64,
}

#[derive(Debug, Clone)]
struct Meter {
    tunes: TokenBucket,
    triggers: TokenBucket,
    stats: MeterStats,
}

/// Per-entity Tune rate-limiting plus reputation-weighted request
/// discounting — the coordination stack's defense against strategic
/// tenants.
///
/// # Example
///
/// ```
/// use coord::{EntityId, EntityPolicer, PolicerConfig};
/// use simcore::Nanos;
///
/// let mut p = EntityPolicer::new(PolicerConfig::default());
/// // An honest ±64 oscillation passes essentially at face value…
/// assert_eq!(p.police_tune(Nanos::ZERO, EntityId(1), 64), Some(64));
/// // …while a monotone inflater is discounted toward zero as its net
/// // displacement approaches the cap.
/// let mut t = Nanos::ZERO;
/// for _ in 0..200 {
///     t += Nanos::from_secs(1);
///     p.police_tune(t, EntityId(2), 512);
/// }
/// assert!(p.stats_for(EntityId(2)).net_applied <= PolicerConfig::default().displacement_cap);
/// ```
#[derive(Debug, Clone)]
pub struct EntityPolicer {
    cfg: PolicerConfig,
    meters: BTreeMap<u32, Meter>,
}

impl EntityPolicer {
    /// Creates a policer with no per-entity history.
    ///
    /// # Panics
    /// Panics if any rate or burst in `cfg` is not positive (via
    /// [`TokenBucket::new`]).
    pub fn new(cfg: PolicerConfig) -> Self {
        // Validate eagerly so a bad config fails at build time, not at
        // the first message.
        let _ = TokenBucket::new(cfg.tune_rate_per_sec, cfg.tune_burst);
        let _ = TokenBucket::new(cfg.trigger_rate_per_sec, cfg.trigger_burst);
        EntityPolicer { cfg, meters: BTreeMap::new() }
    }

    /// The active configuration.
    pub fn config(&self) -> PolicerConfig {
        self.cfg
    }

    fn meter(&mut self, entity: EntityId) -> &mut Meter {
        let cfg = self.cfg;
        self.meters.entry(entity.0).or_insert_with(|| Meter {
            tunes: TokenBucket::new(cfg.tune_rate_per_sec, cfg.tune_burst),
            triggers: TokenBucket::new(cfg.trigger_rate_per_sec, cfg.trigger_burst),
            stats: MeterStats::default(),
        })
    }

    /// Polices one Tune request. Returns `None` when the entity's rate
    /// bucket is empty (request dropped), otherwise `Some(applied)` —
    /// the requested delta scaled by the entity's reputation and clamped
    /// so its net displacement stays inside `±displacement_cap`.
    pub fn police_tune(&mut self, now: Nanos, entity: EntityId, delta: i32) -> Option<i32> {
        let cap = self.cfg.displacement_cap.max(1);
        let m = self.meter(entity);
        if !m.tunes.try_take(now) {
            m.stats.throttled += 1;
            return None;
        }
        // Reputation falls quadratically with net displacement already
        // applied: monotone pushers approach zero weight while the small
        // transient displacements honest policies carry are barely
        // touched. Deltas moving the net *toward* zero restore the budget
        // and pass at face value — otherwise truncation bias would slowly
        // walk an honest oscillator's net up to the cap.
        let net = m.stats.net_applied;
        let toward_zero = (net > 0 && delta < 0) || (net < 0 && delta > 0);
        let scaled = if toward_zero {
            delta as i64
        } else {
            let used = net.unsigned_abs().min(cap as u64) as f64 / cap as f64;
            let rep = 1.0 - used * used;
            (delta as f64 * rep) as i64
        };
        let applied = scaled.clamp(-cap - m.stats.net_applied, cap - m.stats.net_applied);
        m.stats.net_applied += applied;
        m.stats.admitted += 1;
        if applied != delta as i64 {
            m.stats.discounted += 1;
        }
        Some(applied as i32)
    }

    /// Polices one Trigger request. Returns false when the entity's
    /// Trigger bucket is empty (request dropped).
    pub fn police_trigger(&mut self, now: Nanos, entity: EntityId) -> bool {
        let m = self.meter(entity);
        if m.triggers.try_take(now) {
            m.stats.admitted += 1;
            true
        } else {
            m.stats.throttled += 1;
            false
        }
    }

    /// The entity's current reputation in `[0, 1]` (1 = full weight).
    pub fn reputation(&self, entity: EntityId) -> f64 {
        let cap = self.cfg.displacement_cap.max(1);
        self.meters.get(&entity.0).map_or(1.0, |m| {
            let used =
                m.stats.net_applied.unsigned_abs().min(cap as u64) as f64 / cap as f64;
            1.0 - used * used
        })
    }

    /// Per-entity counters (zero if the entity was never seen).
    pub fn stats_for(&self, entity: EntityId) -> MeterStats {
        self.meters.get(&entity.0).map_or_else(MeterStats::default, |m| m.stats)
    }

    /// Counters summed across every entity (net displacements included,
    /// so opposing entities can cancel).
    pub fn totals(&self) -> MeterStats {
        let mut t = MeterStats::default();
        for m in self.meters.values() {
            t.admitted += m.stats.admitted;
            t.throttled += m.stats.throttled;
            t.discounted += m.stats.discounted;
            t.net_applied += m.stats.net_applied;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oscillation_detected_and_decays() {
        let mut d = OscillationDetector::new(Nanos::from_secs(1), 3);
        // Alternating classes every 100 ms: flips pile up.
        for i in 0..10u64 {
            d.observe(Nanos::from_millis(i * 100), i % 2 == 0);
        }
        assert!(d.is_oscillating(Nanos::from_millis(900)));
        // A long steady run lets the window drain (the transition into
        // the steady phase is itself the final flip, then nothing).
        for i in 0..15u64 {
            d.observe(Nanos::from_secs(5) + Nanos::from_millis(i * 100), true);
        }
        let end = Nanos::from_secs(5) + Nanos::from_millis(1400);
        assert!(!d.is_oscillating(end));
        assert_eq!(d.flips_in_window(end), 0);
    }

    #[test]
    fn verdict_decays_during_silence() {
        // The stream stops entirely after a burst of flips; queries must
        // still decay rather than report the burst forever.
        let mut d = OscillationDetector::new(Nanos::from_secs(1), 3);
        for i in 0..10u64 {
            d.observe(Nanos::from_millis(i * 100), i % 2 == 0);
        }
        let last = Nanos::from_millis(900);
        assert!(d.is_oscillating(last));
        assert!(d.is_oscillating(last + Nanos::from_millis(500)));
        assert!(!d.is_oscillating(last + Nanos::from_secs(2)));
        assert_eq!(d.flips_in_window(last + Nanos::from_secs(2)), 0);
        // …and a fresh flip after the silence starts a clean count.
        assert_eq!(d.observe(Nanos::from_secs(60), true), 1);
    }

    #[test]
    fn steady_stream_never_oscillates() {
        let mut d = OscillationDetector::new(Nanos::from_secs(1), 0);
        for i in 0..100u64 {
            assert_eq!(d.observe(Nanos::from_millis(i * 10), true), 0);
        }
        assert!(!d.is_oscillating(Nanos::from_millis(990)));
    }

    #[test]
    fn single_flip_counts_once() {
        let mut d = OscillationDetector::new(Nanos::from_secs(10), 1);
        d.observe(Nanos::from_millis(0), false);
        assert_eq!(d.observe(Nanos::from_millis(1), true), 1);
        assert!(!d.is_oscillating(Nanos::from_millis(1)), "one flip is within threshold");
    }

    #[test]
    fn burst_then_throttle() {
        let mut b = TokenBucket::new(1.0, 3.0);
        assert!(b.try_take(Nanos::ZERO));
        assert!(b.try_take(Nanos::ZERO));
        assert!(b.try_take(Nanos::ZERO));
        assert!(!b.try_take(Nanos::ZERO));
        // One second refills one token.
        assert!(b.try_take(Nanos::from_secs(1)));
        assert!(!b.try_take(Nanos::from_secs(1)));
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut b = TokenBucket::new(100.0, 2.0);
        assert!(b.try_take(Nanos::ZERO));
        // A long quiet period cannot bank more than `burst`.
        let t = Nanos::from_secs(100);
        assert!(b.try_take(t));
        assert!(b.try_take(t));
        assert!(!b.try_take(t));
    }

    #[test]
    fn unlimited_never_throttles() {
        let mut b = TokenBucket::unlimited();
        for _ in 0..10_000 {
            assert!(b.try_take(Nanos::ZERO));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let _ = TokenBucket::new(0.0, 1.0);
    }

    #[test]
    fn policer_caps_monotone_inflater_at_displacement_cap() {
        let mut p = EntityPolicer::new(PolicerConfig::default());
        let e = EntityId(7);
        let mut t = Nanos::ZERO;
        for _ in 0..100 {
            t += Nanos::from_secs(1); // slow enough to never hit the rate limit
            p.police_tune(t, e, 512);
        }
        let s = p.stats_for(e);
        assert_eq!(s.throttled, 0);
        let cap = PolicerConfig::default().displacement_cap;
        assert!(s.net_applied <= cap, "net {} over cap", s.net_applied);
        assert!(s.discounted > 0, "inflater was never discounted");
        assert!(p.reputation(e) < 0.1, "saturated inflater keeps reputation");
        // Once saturated, further requests are admitted at zero effect.
        assert_eq!(p.police_tune(t + Nanos::from_secs(1), e, 512), Some(0));
    }

    #[test]
    fn policer_leaves_honest_oscillation_nearly_untouched() {
        let mut p = EntityPolicer::new(PolicerConfig::default());
        let e = EntityId(1);
        let mut t = Nanos::ZERO;
        for i in 0..40 {
            t += Nanos::from_secs(1);
            let want = if i % 2 == 0 { 64 } else { -64 };
            let got = p.police_tune(t, e, want).expect("honest tenant throttled");
            assert!(
                (got - want).abs() <= want.abs() / 8,
                "honest delta {want} mangled to {got}"
            );
        }
        assert!(p.reputation(e) > 0.9);
        assert_eq!(p.stats_for(e).throttled, 0);
    }

    #[test]
    fn policer_rate_limits_trigger_spam() {
        let cfg = PolicerConfig::default();
        let mut p = EntityPolicer::new(cfg);
        let e = EntityId(9);
        let mut admitted = 0;
        // 20/s for 10 s against a 2/s, burst-4 bucket.
        for i in 0..200u64 {
            if p.police_trigger(Nanos::from_millis(i * 50), e) {
                admitted += 1;
            }
        }
        assert!(admitted <= 4 + 2 * 10 + 1, "spam admitted {admitted} triggers");
        assert!(p.stats_for(e).throttled > 0);
        let s = p.stats_for(e);
        assert_eq!(s.admitted + s.throttled, 200);
    }

    #[test]
    fn policer_negative_displacement_is_capped_symmetrically() {
        let mut p = EntityPolicer::new(PolicerConfig::default());
        let e = EntityId(3);
        let mut t = Nanos::ZERO;
        for _ in 0..100 {
            t += Nanos::from_secs(1);
            p.police_tune(t, e, -512);
        }
        let s = p.stats_for(e);
        let cap = PolicerConfig::default().displacement_cap;
        assert!(s.net_applied >= -cap, "net {} under -cap", s.net_applied);
        assert!(p.reputation(e) < 0.1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn policer_rejects_nonpositive_rates_eagerly() {
        let _ = EntityPolicer::new(PolicerConfig {
            tune_rate_per_sec: 0.0,
            ..PolicerConfig::default()
        });
    }
}
