//! Platform-global entity identity and the island-local mapping registry.
//!
//! Problem 2 of the paper's introduction: islands manage *heterogeneous
//! abstractions* — VMs and processes on x86, message queues and flows on
//! the IXP. Coordination messages therefore name a neutral [`EntityId`];
//! each island registers the local key (domain id, flow id, queue index…)
//! it knows the entity by.

use crate::island::IslandId;
use crate::CoordError;
use std::collections::BTreeMap;
use std::fmt;

/// A platform-global identifier for an application entity that may span
/// islands (e.g. "the web-server VM" = Xen domain 1 = IXP flow 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntityId(pub u32);

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "entity{}", self.0)
    }
}

/// Bidirectional mapping between entities and island-local keys.
///
/// # Example
///
/// ```
/// use coord::{EntityId, IslandId, Registry};
///
/// let mut r = Registry::new();
/// let web = EntityId(1);
/// r.bind(web, IslandId(0), 1)?;  // Xen domain 1
/// r.bind(web, IslandId(1), 0)?;  // IXP flow 0
/// assert_eq!(r.local_key(web, IslandId(1))?, 0);
/// assert_eq!(r.entity_of(IslandId(0), 1), Some(web));
/// # Ok::<(), coord::CoordError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Registry {
    forward: BTreeMap<(EntityId, IslandId), u64>,
    reverse: BTreeMap<(IslandId, u64), EntityId>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `entity` to `local_key` on `island`.
    ///
    /// # Errors
    /// Returns [`CoordError::DuplicateBinding`] if the island already maps
    /// that entity or that local key to something else.
    pub fn bind(
        &mut self,
        entity: EntityId,
        island: IslandId,
        local_key: u64,
    ) -> Result<(), CoordError> {
        if let Some(&k) = self.forward.get(&(entity, island)) {
            if k == local_key {
                return Ok(()); // idempotent re-registration
            }
            return Err(CoordError::DuplicateBinding { entity, island });
        }
        if self.reverse.contains_key(&(island, local_key)) {
            return Err(CoordError::DuplicateBinding { entity, island });
        }
        self.forward.insert((entity, island), local_key);
        self.reverse.insert((island, local_key), entity);
        Ok(())
    }

    /// The island-local key for `entity` on `island`.
    ///
    /// # Errors
    /// Returns [`CoordError::NotMapped`] if the entity has no binding there.
    pub fn local_key(&self, entity: EntityId, island: IslandId) -> Result<u64, CoordError> {
        self.forward
            .get(&(entity, island))
            .copied()
            .ok_or(CoordError::NotMapped { entity, island })
    }

    /// Reverse lookup: which entity does `island` know as `local_key`?
    pub fn entity_of(&self, island: IslandId, local_key: u64) -> Option<EntityId> {
        self.reverse.get(&(island, local_key)).copied()
    }

    /// All islands an entity is bound on.
    pub fn islands_of(&self, entity: EntityId) -> Vec<IslandId> {
        self.forward
            .keys()
            .filter(|(e, _)| *e == entity)
            .map(|(_, i)| *i)
            .collect()
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// `true` when no bindings exist.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_and_lookup() {
        let mut r = Registry::new();
        let e = EntityId(7);
        r.bind(e, IslandId(0), 3).unwrap();
        assert_eq!(r.local_key(e, IslandId(0)).unwrap(), 3);
        assert_eq!(r.entity_of(IslandId(0), 3), Some(e));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn rebind_same_is_idempotent() {
        let mut r = Registry::new();
        let e = EntityId(7);
        r.bind(e, IslandId(0), 3).unwrap();
        r.bind(e, IslandId(0), 3).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn conflicting_bindings_rejected() {
        let mut r = Registry::new();
        r.bind(EntityId(1), IslandId(0), 3).unwrap();
        assert!(matches!(
            r.bind(EntityId(1), IslandId(0), 4),
            Err(CoordError::DuplicateBinding { .. })
        ));
        assert!(matches!(
            r.bind(EntityId(2), IslandId(0), 3),
            Err(CoordError::DuplicateBinding { .. })
        ));
    }

    #[test]
    fn unmapped_lookup_errors() {
        let r = Registry::new();
        assert!(matches!(
            r.local_key(EntityId(1), IslandId(0)),
            Err(CoordError::NotMapped { .. })
        ));
        assert_eq!(r.entity_of(IslandId(0), 9), None);
        assert!(r.is_empty());
    }

    #[test]
    fn islands_of_lists_all_bindings() {
        let mut r = Registry::new();
        let e = EntityId(5);
        r.bind(e, IslandId(0), 1).unwrap();
        r.bind(e, IslandId(1), 0).unwrap();
        assert_eq!(r.islands_of(e), vec![IslandId(0), IslandId(1)]);
    }
}
