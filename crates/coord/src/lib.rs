//! # coord — coordinated resource management across scheduling islands
//!
//! This crate is the paper's primary contribution: the vocabulary and
//! machinery that let *independent resource managers* on heterogeneous
//! islands coordinate on behalf of applications that span them.
//!
//! ## The two mechanisms (§3.3)
//!
//! * **Tune** ([`CoordMsg::Tune`]) — a fine-grained resource adjustment
//!   request for an entity in a remote island: an entity id plus a ±
//!   numeric value, translated *by the remote island* into its own
//!   scheduler's terms — credit-weight deltas on Xen, dequeue-thread or
//!   poll-interval changes on the IXP.
//! * **Trigger** ([`CoordMsg::Trigger`]) — an immediate, interrupt-like
//!   notification asking that an entity receive resources as soon as
//!   possible; preemptive semantics (Xen runqueue boost).
//!
//! ## The pieces
//!
//! * [`EntityId`] / [`Registry`] — platform-global identity for things that
//!   span islands (a VM on x86 that is also a flow on the IXP), hiding each
//!   island's local abstraction behind a uniform key.
//! * [`ResourceManager`] — the trait an island implements to receive
//!   coordination verbs in its own vocabulary.
//! * [`Controller`] — the global controller (hosted by Dom0 in the
//!   prototype): islands and entities register at initialisation; incoming
//!   messages are resolved against the registry into island-local actions.
//! * [`CoordinationPolicy`] — producers of coordination traffic:
//!   [`RequestTypePolicy`] (RUBiS request classes → weight shifts),
//!   [`StreamQosPolicy`] (stream properties → weight + IXP thread tunes),
//!   [`BufferTriggerPolicy`] (queue occupancy → triggers), and the
//!   [`HysteresisPolicy`] extension that damps read↔write oscillation.
//! * [`wire`] — the compact binary codec for the messages (they must fit a
//!   PCI config-space mailbox).
//! * [`ReliableSender`] / [`ReliableReceiver`] — optional ack-based
//!   delivery over a lossy channel: sequence-numbered frames,
//!   retransmission with exponential backoff, duplicate suppression, and
//!   a degraded-mode signal for graceful policy fallback (see
//!   `pcie::FaultProfile` for the faults they survive).
//! * [`TokenBucket`] — rate limiting for coordination traffic — and
//!   [`EntityPolicer`] — the controller-side defense against strategic
//!   tenants (per-entity rate limits plus reputation-weighted Tune
//!   discounting; enable with [`Controller::with_defenses`]).
//! * [`hierarchy`] — the paper's future-work extension: a two-level
//!   coordination fabric (zone controllers + root directory) for
//!   large-scale multi-island platforms.
//! * [`EnergyController`] — the QoS-constrained energy dimension: a
//!   hill-climbing walk of the x86 island's knob lattice (DVFS rung ×
//!   cache ways × bandwidth share, [`CoordMsg::SetKnob`]) downward in
//!   power while per-tenant p99 stays under target, frozen by the
//!   [`OscillationDetector`] when a marginal tenant makes it knob-flap.
//!
//! ## Example
//!
//! ```
//! use coord::{Controller, CoordMsg, EntityId, IslandId, IslandKind, Action};
//! use simcore::Nanos;
//!
//! let mut ctl = Controller::new();
//! let x86 = IslandId(0);
//! ctl.handle(Nanos::ZERO, CoordMsg::RegisterIsland { island: x86, kind: IslandKind::GeneralPurpose });
//! let web = EntityId(1);
//! ctl.handle(Nanos::ZERO, CoordMsg::RegisterEntity { entity: web, island: x86, local_key: 1 });
//! let actions = ctl.handle(Nanos::ZERO, CoordMsg::Tune { entity: web, delta: 64, target: None });
//! assert_eq!(actions, vec![Action::ApplyTune { island: x86, local_key: 1, delta: 64 }]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod controller;
mod energy;
mod entity;
pub mod hierarchy;
mod error;
mod island;
mod limits;
mod msg;
mod policy;
mod reliable;
pub mod wire;

pub use controller::{Action, Controller, ControllerStats};
pub use energy::{
    EnergyController, EnergyControllerConfig, KnobAxis, KnobPoint, KnobSetting,
};
pub use entity::{EntityId, Registry};
pub use error::CoordError;
pub use island::{IslandId, IslandKind, ResourceManager};
pub use limits::{EntityPolicer, MeterStats, OscillationDetector, PolicerConfig, TokenBucket};
pub use msg::CoordMsg;
pub use policy::{
    BufferTriggerPolicy, CoordinationPolicy, HysteresisPolicy, InferenceBatchPolicy, NullPolicy,
    Observation, PolicyKind, RequestTypePolicy, StreamQosPolicy,
};
pub use reliable::{ReliableConfig, ReliableReceiver, ReliableSender, SenderStats};
