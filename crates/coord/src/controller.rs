//! The global controller.
//!
//! §2.3: "At system initialization time, all scheduling islands register
//! with a global controller (the first privileged domain to boot …, in our
//! prototype a part of Xen Dom0). When guest VMs … are deployed across the
//! platform's scheduling islands, they register with Dom0."
//!
//! The [`Controller`] owns the registry, validates incoming coordination
//! messages, and resolves them into island-local [`Action`]s that the
//! platform dispatches to the appropriate [`ResourceManager`]
//! (crate::ResourceManager).

use crate::energy::KnobAxis;
use crate::limits::{EntityPolicer, PolicerConfig};
use crate::{CoordError, CoordMsg, EntityId, IslandId, IslandKind, Registry};
use simcore::Nanos;
use std::collections::BTreeMap;

/// A resolved, island-local coordination action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Apply a tune to `local_key` on `island`.
    ApplyTune {
        /// Island that must act.
        island: IslandId,
        /// Island-local identity of the target entity.
        local_key: u64,
        /// Signed adjustment.
        delta: i32,
    },
    /// Apply a trigger to `local_key` on `island`.
    ApplyTrigger {
        /// Island that must act.
        island: IslandId,
        /// Island-local identity of the target entity.
        local_key: u64,
    },
    /// Move one energy-knob axis to an absolute rung on `island`.
    ApplyKnob {
        /// Island that must act.
        island: IslandId,
        /// Island-local identity of the target entity.
        local_key: u64,
        /// The lattice axis to move.
        axis: KnobAxis,
        /// Absolute rung index (0 = full performance).
        rung: u8,
    },
}

/// Controller counters, for coordination-overhead reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControllerStats {
    /// Islands registered.
    pub islands: u64,
    /// Entity bindings registered.
    pub bindings: u64,
    /// Tunes routed.
    pub tunes: u64,
    /// Triggers routed.
    pub triggers: u64,
    /// Messages that failed validation.
    pub rejected: u64,
    /// Tune/Trigger requests dropped by the adversary policer.
    pub throttled: u64,
    /// Admitted tunes whose delta the policer discounted.
    pub discounted: u64,
    /// Energy-knob settings routed.
    pub knobs: u64,
}

/// The global coordination controller (the Dom0 role).
///
/// See the crate-level example for typical use.
#[derive(Debug)]
pub struct Controller {
    islands: BTreeMap<IslandId, IslandKind>,
    registry: Registry,
    stats: ControllerStats,
    last_error: Option<CoordError>,
    audit: std::collections::VecDeque<(Nanos, CoordMsg)>,
    audit_cap: usize,
    policer: Option<EntityPolicer>,
}

impl Default for Controller {
    fn default() -> Self {
        Self::new()
    }
}

impl Controller {
    /// Creates an empty controller with a 256-entry audit ring.
    pub fn new() -> Self {
        Controller {
            islands: BTreeMap::new(),
            registry: Registry::new(),
            stats: ControllerStats::default(),
            last_error: None,
            audit: std::collections::VecDeque::new(),
            audit_cap: 256,
            policer: None,
        }
    }

    /// Overrides the audit-ring capacity (0 disables auditing).
    pub fn with_audit_capacity(mut self, cap: usize) -> Self {
        self.audit_cap = cap;
        self.audit.truncate(cap);
        self
    }

    /// Enables the adversary defenses: per-entity Tune/Trigger rate
    /// limiting and reputation-weighted delta discounting. Off by
    /// default — an undefended controller behaves exactly as before.
    pub fn with_defenses(mut self, cfg: PolicerConfig) -> Self {
        self.set_defenses(cfg);
        self
    }

    /// Enables the adversary defenses in place (see
    /// [`with_defenses`](Self::with_defenses)).
    pub fn set_defenses(&mut self, cfg: PolicerConfig) {
        self.policer = Some(EntityPolicer::new(cfg));
    }

    /// The active policer, if defenses are enabled.
    pub fn policer(&self) -> Option<&EntityPolicer> {
        self.policer.as_ref()
    }

    /// Processes one coordination message, returning the island-local
    /// actions it resolves to. Registration messages return no actions;
    /// invalid messages are counted in [`ControllerStats::rejected`] and
    /// recorded in [`last_error`](Self::last_error).
    pub fn handle(&mut self, now: Nanos, msg: CoordMsg) -> Vec<Action> {
        if self.audit_cap > 0 {
            if self.audit.len() == self.audit_cap {
                self.audit.pop_front();
            }
            self.audit.push_back((now, msg));
        }
        match self.try_handle(now, msg) {
            Ok(actions) => actions,
            Err(e) => {
                self.stats.rejected += 1;
                self.last_error = Some(e);
                Vec::new()
            }
        }
    }

    fn try_handle(&mut self, now: Nanos, msg: CoordMsg) -> Result<Vec<Action>, CoordError> {
        match msg {
            CoordMsg::RegisterIsland { island, kind } => {
                if self.islands.insert(island, kind).is_none() {
                    self.stats.islands += 1;
                }
                Ok(Vec::new())
            }
            CoordMsg::RegisterEntity {
                entity,
                island,
                local_key,
            } => {
                if !self.islands.contains_key(&island) {
                    return Err(CoordError::UnknownIsland(island));
                }
                self.registry.bind(entity, island, local_key)?;
                self.stats.bindings += 1;
                Ok(Vec::new())
            }
            CoordMsg::Tune { entity, delta, target } => {
                let delta = match self.policer.as_mut() {
                    None => delta,
                    Some(p) => match p.police_tune(now, entity, delta) {
                        None => {
                            self.stats.throttled += 1;
                            return Ok(Vec::new());
                        }
                        Some(applied) => {
                            if applied != delta {
                                self.stats.discounted += 1;
                            }
                            applied
                        }
                    },
                };
                let actions =
                    self.resolve(entity, target, |island, local_key| Action::ApplyTune {
                        island,
                        local_key,
                        delta,
                    })?;
                self.stats.tunes += 1;
                Ok(actions)
            }
            CoordMsg::Trigger { entity, target } => {
                if let Some(p) = self.policer.as_mut() {
                    if !p.police_trigger(now, entity) {
                        self.stats.throttled += 1;
                        return Ok(Vec::new());
                    }
                }
                let actions =
                    self.resolve(entity, target, |island, local_key| Action::ApplyTrigger {
                        island,
                        local_key,
                    })?;
                self.stats.triggers += 1;
                Ok(actions)
            }
            CoordMsg::SetKnob { entity, axis, rung, target } => {
                // Knob settings originate from the platform's own energy
                // controller, not from tenants, so they bypass the
                // adversary policer (which meters the tenant-facing
                // Tune/Trigger verbs) — but still resolve through the
                // registry like every other coordination message.
                let actions =
                    self.resolve(entity, target, |island, local_key| Action::ApplyKnob {
                        island,
                        local_key,
                        axis,
                        rung,
                    })?;
                self.stats.knobs += 1;
                Ok(actions)
            }
            CoordMsg::Ack { .. } => Ok(Vec::new()),
        }
    }

    /// Resolves an entity to one action per addressed island binding.
    /// With `target = None` every bound island acts; otherwise only the
    /// named island (erroring if the entity has no binding there).
    fn resolve(
        &self,
        entity: EntityId,
        target: Option<IslandId>,
        mk: impl Fn(IslandId, u64) -> Action,
    ) -> Result<Vec<Action>, CoordError> {
        let islands = self.registry.islands_of(entity);
        if islands.is_empty() {
            return Err(CoordError::UnknownEntity(entity));
        }
        let islands: Vec<IslandId> = match target {
            None => islands,
            Some(t) => {
                if !islands.contains(&t) {
                    return Err(CoordError::NotMapped { entity, island: t });
                }
                vec![t]
            }
        };
        Ok(islands
            .into_iter()
            .map(|i| {
                let key = self
                    .registry
                    .local_key(entity, i)
                    .expect("islands_of implies binding");
                mk(i, key)
            })
            .collect())
    }

    /// The registered kind of an island, if any.
    pub fn island_kind(&self, island: IslandId) -> Option<IslandKind> {
        self.islands.get(&island).copied()
    }

    /// Read access to the entity registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Counters.
    pub fn stats(&self) -> ControllerStats {
        self.stats
    }

    /// The most recent validation failure, if any.
    pub fn last_error(&self) -> Option<CoordError> {
        self.last_error
    }

    /// The most recent messages seen (oldest first), up to the audit
    /// capacity — §2.3's coordination-channel record, for debugging
    /// coordination schemes.
    pub fn audit_log(&self) -> impl Iterator<Item = &(Nanos, CoordMsg)> {
        self.audit.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Controller, EntityId) {
        let mut c = Controller::new();
        c.handle(
            Nanos::ZERO,
            CoordMsg::RegisterIsland {
                island: IslandId(0),
                kind: IslandKind::GeneralPurpose,
            },
        );
        c.handle(
            Nanos::ZERO,
            CoordMsg::RegisterIsland {
                island: IslandId(1),
                kind: IslandKind::NetworkProcessor,
            },
        );
        let e = EntityId(1);
        c.handle(
            Nanos::ZERO,
            CoordMsg::RegisterEntity { entity: e, island: IslandId(0), local_key: 1 },
        );
        (c, e)
    }

    #[test]
    fn tune_resolves_to_bound_islands() {
        let (mut c, e) = setup();
        let actions = c.handle(Nanos::ZERO, CoordMsg::Tune { entity: e, delta: 64, target: None });
        assert_eq!(
            actions,
            vec![Action::ApplyTune { island: IslandId(0), local_key: 1, delta: 64 }]
        );
        assert_eq!(c.stats().tunes, 1);
    }

    #[test]
    fn entity_bound_on_two_islands_gets_two_actions() {
        let (mut c, e) = setup();
        c.handle(
            Nanos::ZERO,
            CoordMsg::RegisterEntity { entity: e, island: IslandId(1), local_key: 0 },
        );
        let actions = c.handle(Nanos::ZERO, CoordMsg::Trigger { entity: e, target: None });
        assert_eq!(actions.len(), 2);
        assert!(actions.contains(&Action::ApplyTrigger { island: IslandId(0), local_key: 1 }));
        assert!(actions.contains(&Action::ApplyTrigger { island: IslandId(1), local_key: 0 }));
    }

    #[test]
    fn set_knob_resolves_like_a_tune() {
        let (mut c, e) = setup();
        let actions = c.handle(
            Nanos::ZERO,
            CoordMsg::SetKnob { entity: e, axis: KnobAxis::Dvfs, rung: 2, target: None },
        );
        assert_eq!(
            actions,
            vec![Action::ApplyKnob {
                island: IslandId(0),
                local_key: 1,
                axis: KnobAxis::Dvfs,
                rung: 2
            }]
        );
        assert_eq!(c.stats().knobs, 1);
        // Unknown entities are rejected exactly like tunes.
        let none = c.handle(
            Nanos::ZERO,
            CoordMsg::SetKnob {
                entity: EntityId(99),
                axis: KnobAxis::CacheWays,
                rung: 1,
                target: None,
            },
        );
        assert!(none.is_empty());
        assert_eq!(c.stats().rejected, 1);
    }

    #[test]
    fn unknown_entity_rejected() {
        let (mut c, _) = setup();
        let actions = c.handle(Nanos::ZERO, CoordMsg::Tune { entity: EntityId(99), delta: 1, target: None });
        assert!(actions.is_empty());
        assert_eq!(c.stats().rejected, 1);
        assert_eq!(c.last_error(), Some(CoordError::UnknownEntity(EntityId(99))));
    }

    #[test]
    fn entity_registration_requires_island() {
        let mut c = Controller::new();
        c.handle(
            Nanos::ZERO,
            CoordMsg::RegisterEntity { entity: EntityId(1), island: IslandId(9), local_key: 0 },
        );
        assert_eq!(c.stats().rejected, 1);
        assert_eq!(c.last_error(), Some(CoordError::UnknownIsland(IslandId(9))));
    }

    #[test]
    fn island_reregistration_not_double_counted() {
        let (mut c, _) = setup();
        c.handle(
            Nanos::ZERO,
            CoordMsg::RegisterIsland {
                island: IslandId(0),
                kind: IslandKind::GeneralPurpose,
            },
        );
        assert_eq!(c.stats().islands, 2);
        assert_eq!(c.island_kind(IslandId(1)), Some(IslandKind::NetworkProcessor));
    }

    #[test]
    fn audit_log_records_and_rotates() {
        let (mut c, e) = setup();
        let before = c.audit_log().count();
        for i in 0..300u32 {
            c.handle(
                Nanos::from_millis(i as u64),
                CoordMsg::Tune { entity: e, delta: i as i32, target: None },
            );
        }
        assert_eq!(c.audit_log().count(), 256, "ring capped (had {before} setup msgs)");
        let (t, last) = c.audit_log().last().unwrap();
        assert_eq!(*t, Nanos::from_millis(299));
        assert!(matches!(last, CoordMsg::Tune { delta: 299, .. }));
    }

    #[test]
    fn audit_can_be_disabled() {
        let mut c = Controller::new().with_audit_capacity(0);
        c.handle(Nanos::ZERO, CoordMsg::Ack { seq: 1 });
        assert_eq!(c.audit_log().count(), 0);
    }

    #[test]
    fn ack_is_a_no_op() {
        let (mut c, _) = setup();
        assert!(c.handle(Nanos::ZERO, CoordMsg::Ack { seq: 3 }).is_empty());
        assert_eq!(c.stats().rejected, 0);
    }

    #[test]
    fn defended_controller_throttles_trigger_spam() {
        let (mut c, e) = setup();
        c.set_defenses(PolicerConfig::default());
        let mut applied = 0;
        for i in 0..100u64 {
            let actions =
                c.handle(Nanos::from_millis(i * 10), CoordMsg::Trigger { entity: e, target: None });
            applied += actions.len();
        }
        assert!(applied < 100, "spam passed untouched");
        assert!(c.stats().throttled > 0);
        assert_eq!(c.stats().triggers as usize, applied);
        assert_eq!(c.stats().rejected, 0, "policing is not a validation failure");
    }

    #[test]
    fn defended_controller_discounts_inflated_tunes() {
        let (mut c, e) = setup();
        c.set_defenses(PolicerConfig::default());
        let mut last_delta = i32::MAX;
        for i in 0..20u64 {
            let actions = c.handle(
                Nanos::from_secs(i),
                CoordMsg::Tune { entity: e, delta: 512, target: None },
            );
            if let Some(Action::ApplyTune { delta, .. }) = actions.first() {
                last_delta = *delta;
            }
        }
        assert_eq!(last_delta, 0, "saturated inflater still moves weight");
        assert!(c.stats().discounted > 0);
        let net = c.policer().unwrap().stats_for(e).net_applied;
        let cap = PolicerConfig::default().displacement_cap;
        assert!(net <= cap, "net displacement {net} exceeds the cap");
    }

    #[test]
    fn undefended_controller_is_unchanged() {
        let (mut c, e) = setup();
        for i in 0..100u64 {
            c.handle(Nanos::from_millis(i), CoordMsg::Tune { entity: e, delta: 512, target: None });
        }
        assert_eq!(c.stats().tunes, 100);
        assert_eq!(c.stats().throttled, 0);
        assert_eq!(c.stats().discounted, 0);
    }
}
