//! Serial vs parallel determinism of the experiment harness: with
//! identical seeds, the merged experiment tables must be byte-identical
//! whether the (independent) experiment units run on one worker or many.
//! Runs under a short smoke cap — determinism does not depend on the
//! simulated duration.
//!
//! Also the chaos differential: a platform built with an explicit
//! [`ChaosPlan::none()`] must be bit-identical to one that never heard
//! of chaos, across every island type — the chaos hooks must cost
//! nothing (not even an RNG draw) when the schedule is empty.

use metrics::Table;
use platform::{
    ChaosPlan, InferenceScenario, MplayerScenario, PlatformBuilder, PolicyKind, RubisScenario,
    RunReport,
};
use simcore::Nanos;
use simtest::json::Json;

/// Renders the merged tables the way the `experiments` binary persists
/// them: a JSON array of `{slug, csv}` objects, in submission order.
fn render(tables: &[(String, Table)]) -> String {
    Json::Arr(
        tables
            .iter()
            .map(|(slug, t)| {
                Json::obj(vec![
                    ("slug", Json::Str(slug.clone())),
                    ("csv", Json::Str(t.to_csv())),
                ])
            })
            .collect(),
    )
    .to_string()
}

#[test]
fn serial_and_parallel_experiments_are_byte_identical() {
    bench::set_smoke_cap_secs(2);
    let ids = bench::experiment_ids().to_vec();
    for seed in [bench::SEED, 7, 1234] {
        let serial = render(&bench::run_experiments(1, ids.clone(), seed));
        let parallel = render(&bench::run_experiments(4, ids.clone(), seed));
        assert_eq!(
            serial, parallel,
            "seed {seed}: parallel run diverged from serial"
        );
        assert!(!serial.is_empty());
    }
}

/// Every counter and float a run reports, flattened to exact bits.
fn fingerprint(r: &RunReport) -> Vec<u64> {
    let mut v = vec![
        r.rubis.completed,
        r.rubis.throughput.to_bits(),
        r.coord.messages_sent,
        r.coord.bytes_sent,
        r.coord.tunes_applied,
        r.coord.triggers_applied,
        r.coord.rejected,
        r.coord.throttled,
        r.coord.discounted,
        r.net.delivered,
        r.net.guest_drops,
        r.total_cpu_percent.to_bits(),
    ];
    for p in &r.players {
        v.push(p.frames);
        v.push(p.achieved_fps.to_bits());
    }
    for t in &r.accel.tenants {
        v.push(t.submitted);
        v.push(t.completed);
        v.push(t.batches);
        v.push(t.preemptions);
    }
    v
}

#[test]
fn chaos_none_is_bit_identical_to_a_chaos_free_build() {
    let dur = Nanos::from_secs(2);
    for seed in [bench::SEED, 7, 1234] {
        let rubis = |chaos: Option<ChaosPlan>| {
            let mut b = PlatformBuilder::new().seed(seed).policy(PolicyKind::RequestType);
            if let Some(plan) = chaos {
                b = b.chaos(plan);
            }
            fingerprint(&b.build_rubis(RubisScenario::read_write_mix(8)).run(dur))
        };
        let mplayer = |chaos: Option<ChaosPlan>| {
            let mut b = PlatformBuilder::new().seed(seed).policy(PolicyKind::BufferTrigger);
            if let Some(plan) = chaos {
                b = b.chaos(plan);
            }
            fingerprint(&b.build_mplayer(MplayerScenario::trigger_setup()).run(dur))
        };
        let inference = |chaos: Option<ChaosPlan>| {
            let mut b = PlatformBuilder::new().seed(seed).policy(PolicyKind::InferenceBatch);
            if let Some(plan) = chaos {
                b = b.chaos(plan);
            }
            fingerprint(&b.build_inference(InferenceScenario::mixed_tenants()).run(dur))
        };
        assert_eq!(
            rubis(None),
            rubis(Some(ChaosPlan::none())),
            "seed {seed}: ChaosPlan::none() perturbed a rubis run"
        );
        assert_eq!(
            mplayer(None),
            mplayer(Some(ChaosPlan::none())),
            "seed {seed}: ChaosPlan::none() perturbed an mplayer run"
        );
        assert_eq!(
            inference(None),
            inference(Some(ChaosPlan::none())),
            "seed {seed}: ChaosPlan::none() perturbed an inference run"
        );
    }
}

#[test]
fn registry_ids_are_unique_and_unknown_ids_are_rejected() {
    let ids = bench::experiment_ids();
    let mut sorted: Vec<_> = ids.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), ids.len(), "duplicate experiment id");
    assert!(bench::run_experiment("no_such_experiment", 1).is_none());
}
