//! Serial vs parallel determinism of the experiment harness: with
//! identical seeds, the merged experiment tables must be byte-identical
//! whether the (independent) experiment units run on one worker or many.
//! Runs under a short smoke cap — determinism does not depend on the
//! simulated duration.
//!
//! Also the chaos differential: a platform built with an explicit
//! [`ChaosPlan::none()`] must be bit-identical to one that never heard
//! of chaos, across every island type — the chaos hooks must cost
//! nothing (not even an RNG draw) when the schedule is empty.

use metrics::Table;
use platform::{
    ChaosPlan, InferenceScenario, MplayerScenario, PlatformBuilder, PolicyKind, RubisScenario,
    RunReport,
};
use simcore::Nanos;
use simtest::json::Json;

/// Renders the merged tables the way the `experiments` binary persists
/// them: a JSON array of `{slug, csv}` objects, in submission order.
fn render(tables: &[(String, Table)]) -> String {
    Json::Arr(
        tables
            .iter()
            .map(|(slug, t)| {
                Json::obj(vec![
                    ("slug", Json::Str(slug.clone())),
                    ("csv", Json::Str(t.to_csv())),
                ])
            })
            .collect(),
    )
    .to_string()
}

#[test]
fn serial_and_parallel_experiments_are_byte_identical() {
    bench::set_smoke_cap_secs(2);
    let ids = bench::experiment_ids().to_vec();
    for seed in [bench::SEED, 7, 1234] {
        let serial = render(&bench::run_experiments(1, ids.clone(), seed));
        let parallel = render(&bench::run_experiments(4, ids.clone(), seed));
        assert_eq!(
            serial, parallel,
            "seed {seed}: parallel run diverged from serial"
        );
        assert!(!serial.is_empty());
    }
}

/// Every counter and float a run reports, flattened to exact bits.
fn fingerprint(r: &RunReport) -> Vec<u64> {
    let mut v = vec![
        r.rubis.completed,
        r.rubis.throughput.to_bits(),
        r.coord.messages_sent,
        r.coord.bytes_sent,
        r.coord.tunes_applied,
        r.coord.triggers_applied,
        r.coord.rejected,
        r.coord.throttled,
        r.coord.discounted,
        r.net.delivered,
        r.net.guest_drops,
        r.total_cpu_percent.to_bits(),
    ];
    for p in &r.players {
        v.push(p.frames);
        v.push(p.achieved_fps.to_bits());
    }
    for t in &r.accel.tenants {
        v.push(t.submitted);
        v.push(t.completed);
        v.push(t.batches);
        v.push(t.preemptions);
    }
    v
}

#[test]
fn chaos_none_is_bit_identical_to_a_chaos_free_build() {
    let dur = Nanos::from_secs(2);
    for seed in [bench::SEED, 7, 1234] {
        let rubis = |chaos: Option<ChaosPlan>| {
            let mut b = PlatformBuilder::new().seed(seed).policy(PolicyKind::RequestType);
            if let Some(plan) = chaos {
                b = b.chaos(plan);
            }
            fingerprint(&b.build_rubis(RubisScenario::read_write_mix(8)).run(dur))
        };
        let mplayer = |chaos: Option<ChaosPlan>| {
            let mut b = PlatformBuilder::new().seed(seed).policy(PolicyKind::BufferTrigger);
            if let Some(plan) = chaos {
                b = b.chaos(plan);
            }
            fingerprint(&b.build_mplayer(MplayerScenario::trigger_setup()).run(dur))
        };
        let inference = |chaos: Option<ChaosPlan>| {
            let mut b = PlatformBuilder::new().seed(seed).policy(PolicyKind::InferenceBatch);
            if let Some(plan) = chaos {
                b = b.chaos(plan);
            }
            fingerprint(&b.build_inference(InferenceScenario::mixed_tenants()).run(dur))
        };
        assert_eq!(
            rubis(None),
            rubis(Some(ChaosPlan::none())),
            "seed {seed}: ChaosPlan::none() perturbed a rubis run"
        );
        assert_eq!(
            mplayer(None),
            mplayer(Some(ChaosPlan::none())),
            "seed {seed}: ChaosPlan::none() perturbed an mplayer run"
        );
        assert_eq!(
            inference(None),
            inference(Some(ChaosPlan::none())),
            "seed {seed}: ChaosPlan::none() perturbed an inference run"
        );
    }
}

// ----------------------------------------------------------------------
// Component conformance: horizon monotonicity per island device
// ----------------------------------------------------------------------

/// Drains a [`Component`] and asserts its contract: after `advance(t)`,
/// `next_event_time()` never reports a time before `t` (a past horizon
/// would wedge or reorder the master loop). Returns the events absorbed
/// so callers can assert the drive did real work.
fn drive_conformant<C: simcore::Component>(name: &str, c: &mut C, max_steps: usize) -> usize {
    use simcore::Component;
    let mut out = Vec::new();
    let mut events = 0;
    for _ in 0..max_steps {
        let Some(t) = Component::next_event_time(c) else { break };
        Component::advance(c, t, &mut out);
        events += out.len();
        out.clear();
        if let Some(t2) = Component::next_event_time(c) {
            assert!(
                t2 >= t,
                "{name}: advance({:?}) left a past horizon {:?}",
                t,
                t2
            );
        }
    }
    events
}

#[test]
fn every_island_component_keeps_a_monotone_horizon() {
    use ixp::{AppTag, Packet};
    use simcore::Component;

    // x86 island: the credit scheduler under a two-domain burst mix.
    let mut sched = xsched::CreditScheduler::new(xsched::SchedConfig::new(2));
    let d0 = sched.create_domain("dom0", 256, 1);
    let d1 = sched.create_domain("dom1", 512, 2);
    for i in 0..40u64 {
        let (dom, demand) = if i % 3 == 0 { (d0, 700) } else { (d1, 300) };
        sched
            .submit(
                Nanos::from_micros(i),
                dom,
                xsched::Burst::user(Nanos::from_micros(demand), i),
                xsched::WakeMode::Boost,
            )
            .expect("known domain");
    }
    assert!(drive_conformant("sched", &mut sched, 10_000) > 0);

    // x86 island: the master event queue.
    let mut q = simcore::EventQueue::new();
    for i in (0..20u64).rev() {
        q.schedule(Nanos::from_micros(i * 3), i);
    }
    assert_eq!(drive_conformant("queue", &mut q, 100), 20);

    // x86 island: the PCIe link's DMA + notification pipeline.
    let mut link = pcie::HostLink::new(pcie::LinkConfig::default());
    for i in 0..20u64 {
        let pkt = Packet::new(i, 1, 1500, AppTag::Http { class_id: 0, write: false });
        link.post_to_host(Nanos::from_micros(i), ixp::FlowId(0), pkt);
    }
    assert!(drive_conformant("link", &mut link, 1_000) > 0);

    // x86 island: a coordination mailbox endpoint.
    let mut mbx = pcie::Mailbox::new(Nanos::from_micros(30));
    for i in 0..10u64 {
        mbx.send(Nanos::from_micros(i * 7), i);
    }
    assert_eq!(drive_conformant("mbx", &mut mbx, 100), 10);

    // x86 island: reliable retransmission timers (unacked messages back
    // off through every retry, then the sender abandons them).
    let mut tx = coord::ReliableSender::new(coord::ReliableConfig::default());
    for i in 0..4u32 {
        tx.send(
            Nanos::from_micros(i as u64),
            coord::CoordMsg::Tune { entity: coord::EntityId(i), delta: 1, target: None },
        );
    }
    drive_conformant("retx", &mut tx, 1_000);
    assert_eq!(Component::next_event_time(&tx), None, "retries exhausted");

    // IXP island: the stage pipeline under wire arrivals.
    let mut island = ixp::IxpIsland::new(ixp::IxpConfig::default());
    let flow = island.register_flow(1);
    for i in 0..30u64 {
        island.rx_from_wire(
            Nanos::from_micros(i * 2),
            Packet::new(i, 1, 1000, AppTag::Http { class_id: 0, write: false }),
        );
    }
    assert!(drive_conformant("ixp", &mut island, 10_000) > 0);
    let _ = flow;

    // Accel island: the batching engine under a submission burst. All
    // submissions land at time zero — the Component contract only covers
    // time-monotonic interleavings of inputs and `advance`.
    let mut isl = accel::AccelIsland::new(accel::AccelConfig::default());
    let t0 = isl.register_tenant(17);
    for i in 0..20u64 {
        isl.submit(
            Nanos::ZERO,
            accel::AccelRequest { id: i, tenant: t0, cost: Nanos::from_micros(300), bytes: 4096 },
        );
    }
    assert!(drive_conformant("accel", &mut isl, 10_000) > 0);
}

// ----------------------------------------------------------------------
// Serial vs PDES-parallel differential: dispatch order is conserved
// ----------------------------------------------------------------------

/// A run's full observable surface: the report fingerprint plus the
/// rendered coordination trace.
fn run_surface(sim: &mut platform::Platform, dur: Nanos, threads: usize) -> (Vec<u64>, Vec<String>) {
    let fp = fingerprint(&sim.run_with(dur, threads));
    let trace = sim
        .coordination_trace()
        .map(|(t, line)| format!("{} {line}", t.as_nanos()))
        .collect();
    (fp, trace)
}

#[test]
fn island_threads_do_not_change_any_run() {
    use platform::{FaultProfile, Jitter, ReliableConfig};
    let dur = Nanos::from_secs(2);
    let faulty = FaultProfile::none()
        .with_drop(0.10)
        .with_dup(0.05)
        .with_jitter(Jitter::Exponential { mean: Nanos::from_micros(20) });
    for seed in [bench::SEED, 7, 1234] {
        for faults in [None, Some(faulty)] {
            for chaos in [None, Some(ChaosPlan::seeded(seed, 6))] {
                let build_rubis = || {
                    let mut b = PlatformBuilder::new().seed(seed).policy(PolicyKind::RequestType);
                    if let Some(profile) = faults {
                        b = b.fault_profile(profile).reliable_delivery(ReliableConfig::default());
                    }
                    if let Some(plan) = chaos.clone() {
                        b = b.chaos(plan);
                    }
                    b.build_rubis(RubisScenario::read_write_mix(8))
                };
                let build_inference = || {
                    let mut b =
                        PlatformBuilder::new().seed(seed).policy(PolicyKind::InferenceBatch);
                    if let Some(profile) = faults {
                        b = b.fault_profile(profile).reliable_delivery(ReliableConfig::default());
                    }
                    if let Some(plan) = chaos.clone() {
                        b = b.chaos(plan);
                    }
                    b.build_inference(InferenceScenario::mixed_tenants())
                };
                let ctx = format!(
                    "seed {seed}, faults {}, chaos {}",
                    faults.is_some(),
                    chaos.is_some()
                );
                let serial = run_surface(&mut build_rubis(), dur, 1);
                for threads in [2, 3] {
                    let par = run_surface(&mut build_rubis(), dur, threads);
                    assert_eq!(serial, par, "rubis diverged with {threads} threads ({ctx})");
                }
                let serial = run_surface(&mut build_inference(), dur, 1);
                let par = run_surface(&mut build_inference(), dur, 3);
                assert_eq!(serial, par, "inference diverged with 3 threads ({ctx})");
            }
        }
    }
}

#[test]
fn registry_ids_are_unique_and_unknown_ids_are_rejected() {
    let ids = bench::experiment_ids();
    let mut sorted: Vec<_> = ids.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), ids.len(), "duplicate experiment id");
    assert!(bench::run_experiment("no_such_experiment", 1).is_none());
}
