//! Serial vs parallel determinism of the experiment harness: with
//! identical seeds, the merged experiment tables must be byte-identical
//! whether the (independent) experiment units run on one worker or many.
//! Runs under a short smoke cap — determinism does not depend on the
//! simulated duration.

use metrics::Table;
use simtest::json::Json;

/// Renders the merged tables the way the `experiments` binary persists
/// them: a JSON array of `{slug, csv}` objects, in submission order.
fn render(tables: &[(String, Table)]) -> String {
    Json::Arr(
        tables
            .iter()
            .map(|(slug, t)| {
                Json::obj(vec![
                    ("slug", Json::Str(slug.clone())),
                    ("csv", Json::Str(t.to_csv())),
                ])
            })
            .collect(),
    )
    .to_string()
}

#[test]
fn serial_and_parallel_experiments_are_byte_identical() {
    bench::set_smoke_cap_secs(2);
    let ids = bench::experiment_ids().to_vec();
    for seed in [bench::SEED, 7, 1234] {
        let serial = render(&bench::run_experiments(1, ids.clone(), seed));
        let parallel = render(&bench::run_experiments(4, ids.clone(), seed));
        assert_eq!(
            serial, parallel,
            "seed {seed}: parallel run diverged from serial"
        );
        assert!(!serial.is_empty());
    }
}

#[test]
fn registry_ids_are_unique_and_unknown_ids_are_rejected() {
    let ids = bench::experiment_ids();
    let mut sorted: Vec<_> = ids.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), ids.len(), "duplicate experiment id");
    assert!(bench::run_experiment("no_such_experiment", 1).is_none());
}
