//! A pure-`std` scoped-thread job pool for fanning independent
//! simulation runs across cores.
//!
//! Every experiment/seed pair is an isolated deterministic simulation, so
//! the harness parallelises at that granularity: workers claim items off a
//! shared atomic cursor and write results into per-item slots, and the
//! caller receives them in submission order regardless of completion
//! order. With identical inputs the merged output is therefore
//! byte-identical whether `jobs` is 1 or 64 — the determinism tests in
//! `tests/determinism.rs` enforce this.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default worker count: the `ARCH_JOBS` environment variable if set,
/// otherwise [`std::thread::available_parallelism`].
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("ARCH_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Strips a `--jobs N` / `--jobs=N` flag from `args` and returns the
/// requested worker count, falling back to [`default_jobs`].
pub fn take_jobs_flag(args: &mut Vec<String>) -> usize {
    let mut jobs = None;
    let mut i = 0;
    while i < args.len() {
        if let Some(v) = args[i].strip_prefix("--jobs=") {
            jobs = v.parse::<usize>().ok();
            args.remove(i);
        } else if args[i] == "--jobs" && i + 1 < args.len() {
            jobs = args[i + 1].parse::<usize>().ok();
            args.drain(i..=i + 1);
        } else {
            i += 1;
        }
    }
    jobs.map(|n| n.max(1)).unwrap_or_else(default_jobs)
}

/// Strips an `--island-threads N` / `--island-threads=N` flag from `args`
/// and returns the requested per-run PDES island worker count, defaulting
/// to 1 (the exact serial master loop). Orthogonal to `--jobs`: jobs fan
/// whole experiments across workers, island threads sit inside one
/// [`platform::Platform`] run.
pub fn take_island_threads_flag(args: &mut Vec<String>) -> usize {
    let mut threads = None;
    let mut i = 0;
    while i < args.len() {
        if let Some(v) = args[i].strip_prefix("--island-threads=") {
            threads = v.parse::<usize>().ok();
            args.remove(i);
        } else if args[i] == "--island-threads" && i + 1 < args.len() {
            threads = args[i + 1].parse::<usize>().ok();
            args.drain(i..=i + 1);
        } else {
            i += 1;
        }
    }
    threads.map(|n| n.max(1)).unwrap_or(1)
}

/// Strips a `--shards N` / `--shards=N` flag from `args` and returns the
/// requested fleet shard count, if any. `None` leaves the fleet
/// experiments on their default (12-shard) fleet; the value is clamped
/// by `bench::set_fleet_shards`.
pub fn take_shards_flag(args: &mut Vec<String>) -> Option<u16> {
    let mut shards = None;
    let mut i = 0;
    while i < args.len() {
        if let Some(v) = args[i].strip_prefix("--shards=") {
            shards = v.parse::<u16>().ok();
            args.remove(i);
        } else if args[i] == "--shards" && i + 1 < args.len() {
            shards = args[i + 1].parse::<u16>().ok();
            args.drain(i..=i + 1);
        } else {
            i += 1;
        }
    }
    shards
}

/// Runs `f` over `items` on up to `jobs` worker threads and returns the
/// results in submission order.
///
/// With `jobs <= 1` (or fewer than two items) everything runs inline on
/// the calling thread — the serial and parallel paths produce the same
/// output for pure `f`. A panicking `f` propagates to the caller when the
/// thread scope joins.
pub fn parallel_map<T, U, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    if jobs <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> =
        items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    // Each slot holds the item's result or the panic payload `f` died
    // with. A worker panic used to poison its result mutex and surface
    // at the merge as `PoisonError` on `into_inner().unwrap()` — masking
    // the actual panic message and the item it belongs to. Catching the
    // unwind per item keeps the real payload (AssertUnwindSafe is sound
    // here: a failed item's slot stays `None` and is never read as a
    // result).
    type Caught = Box<dyn std::any::Any + Send>;
    let results: Vec<Mutex<Option<Result<U, Caught>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(n) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().unwrap().take().expect("item claimed once");
                let out =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item)));
                *results[i].lock().unwrap() = Some(out);
            });
        }
    });
    results
        .into_iter()
        .enumerate()
        .map(|(i, m)| {
            match m.into_inner().unwrap_or_else(|e| e.into_inner()) {
                Some(Ok(out)) => out,
                // Re-raise the first failed item's original panic, tagged
                // with which item it was (completion order can differ).
                Some(Err(payload)) => {
                    eprintln!("parallel_map: worker panicked on item {i}");
                    std::panic::resume_unwind(payload)
                }
                None => panic!("parallel_map: item {i} produced no result"),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_submission_order() {
        let items: Vec<u64> = (0..100).collect();
        for jobs in [1, 2, 4, 13] {
            let out = parallel_map(jobs, items.clone(), |x| x * x);
            let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
            assert_eq!(out, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn runs_every_item_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let out = parallel_map(8, (0..50).collect::<Vec<u64>>(), |x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 50);
        assert_eq!(calls.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        assert_eq!(parallel_map(16, vec![1, 2], |x| x + 1), vec![2, 3]);
        assert_eq!(parallel_map(16, vec![7], |x| x + 1), vec![8]);
        assert_eq!(parallel_map(16, Vec::<u8>::new(), |x| x), Vec::<u8>::new());
    }

    #[test]
    fn worker_panic_propagates_its_original_payload() {
        // Regression: a panicking `f` used to poison its result slot and
        // surface at the merge as `PoisonError`, hiding the real message.
        let result = std::panic::catch_unwind(|| {
            parallel_map(4, (0..16u64).collect::<Vec<_>>(), |x| {
                if x == 9 {
                    panic!("simulation diverged on seed {x}");
                }
                x
            })
        });
        let payload = result.expect_err("panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("simulation diverged on seed 9"),
            "original panic payload was masked: {msg:?}"
        );
    }

    #[test]
    fn jobs_flag_parsing() {
        let mut args: Vec<String> =
            ["a", "--jobs", "3", "b"].iter().map(|s| s.to_string()).collect();
        assert_eq!(take_jobs_flag(&mut args), 3);
        assert_eq!(args, ["a", "b"]);
        let mut args: Vec<String> = ["--jobs=5"].iter().map(|s| s.to_string()).collect();
        assert_eq!(take_jobs_flag(&mut args), 5);
        assert!(args.is_empty());
        let mut args: Vec<String> = ["--jobs=0"].iter().map(|s| s.to_string()).collect();
        assert_eq!(take_jobs_flag(&mut args), 1, "zero clamps to one");
    }

    #[test]
    fn shards_flag_parsing() {
        let mut args: Vec<String> =
            ["fleet", "--shards", "4"].iter().map(|s| s.to_string()).collect();
        assert_eq!(take_shards_flag(&mut args), Some(4));
        assert_eq!(args, ["fleet"]);
        let mut args: Vec<String> = ["--shards=16"].iter().map(|s| s.to_string()).collect();
        assert_eq!(take_shards_flag(&mut args), Some(16));
        assert!(args.is_empty());
        let mut args: Vec<String> = ["fleet"].iter().map(|s| s.to_string()).collect();
        assert_eq!(take_shards_flag(&mut args), None, "default is no override");
    }

    #[test]
    fn island_threads_flag_parsing() {
        let mut args: Vec<String> =
            ["all", "--island-threads", "3"].iter().map(|s| s.to_string()).collect();
        assert_eq!(take_island_threads_flag(&mut args), 3);
        assert_eq!(args, ["all"]);
        let mut args: Vec<String> =
            ["--island-threads=0"].iter().map(|s| s.to_string()).collect();
        assert_eq!(take_island_threads_flag(&mut args), 1, "zero clamps to serial");
        let mut args: Vec<String> = ["all"].iter().map(|s| s.to_string()).collect();
        assert_eq!(take_island_threads_flag(&mut args), 1, "default is serial");
    }
}
