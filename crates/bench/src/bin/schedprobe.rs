//! Minimal scheduler-only probe reproducing the Figure-6 contention
//! pattern without the platform: two paced decoders against a two-stream
//! Dom0 chunk workload. Useful when bisecting credit-scheduler dynamics
//! (it also demonstrates the UNDER-FIFO starvation trap that global
//! rebalancing does not address, since no priority inversion exists).

use simcore::Nanos;
use xsched::{Burst, CreditScheduler, SchedConfig, SchedEvent, WakeMode};

fn main() {
    let mut s = CreditScheduler::new(SchedConfig::new(2));
    let dom0 = s.create_domain("dom0", 256, 2);
    let d1 = s.create_domain("d1", 256, 1);
    let d2 = s.create_domain("d2", 256, 1);

    // dom0: two continuous 30ms chunk streams (resubmitted on completion).
    // d1: 32ms bursts arriving every 47.6ms (paced, boost wake).
    // d2: 35ms bursts arriving every 38.1ms.
    let mut next_arrival1 = Nanos::ZERO;
    let mut next_arrival2 = Nanos::ZERO;
    for tag in [1u64, 2] {
        s.submit(Nanos::ZERO, dom0, Burst::system(Nanos::from_millis(30), tag), WakeMode::Plain)
            .unwrap();
    }
    let t_end = Nanos::from_secs(60);
    let mut now = Nanos::ZERO;
    let mut pending = Vec::new();
    while now < t_end {
        let next_event = s.next_event_time().unwrap_or(Nanos::MAX);
        let t = next_event.min(next_arrival1).min(next_arrival2).min(t_end);
        now = t;
        if t == next_arrival1 {
            pending.extend(
                s.submit(t, d1, Burst::user(Nanos::from_millis(32), 10), WakeMode::Boost)
                    .unwrap(),
            );
            next_arrival1 += Nanos::from_micros(47_600);
        }
        if t == next_arrival2 {
            pending.extend(
                s.submit(t, d2, Burst::user(Nanos::from_millis(35), 20), WakeMode::Boost)
                    .unwrap(),
            );
            next_arrival2 += Nanos::from_micros(38_100);
        }
        if t == next_event {
            s.on_timer(t, &mut pending);
        }
        for ev in pending.drain(..) {
            let SchedEvent::Completed { dom, tag, .. } = ev;
            if dom == dom0 {
                pending_resubmit(&mut s, t, dom, tag);
            }
        }
    }
    bench::summary::print_sched_usage(&mut s, &[(dom0, "dom0"), (d1, "d1"), (d2, "d2")]);
}

fn pending_resubmit(s: &mut CreditScheduler, t: Nanos, dom: xsched::DomId, tag: u64) {
    let _ = s.submit(t, dom, Burst::system(Nanos::from_millis(30), tag), WakeMode::Plain);
}
