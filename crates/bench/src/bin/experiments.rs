//! Regenerates every table and figure of the paper's evaluation plus the
//! ablations, printing paper-style tables and writing CSVs to `results/`.
//!
//! Usage: `experiments [all|fig2|table1|fig4|table2|fig5|fig6|fig7|table3|ablations]`

use metrics::Table;
use std::fs;
use std::time::Instant;

fn emit(slug: &str, table: &Table) {
    println!("{table}");
    if fs::create_dir_all("results").is_ok() {
        let path = format!("results/{slug}.csv");
        if let Err(e) = fs::write(&path, table.to_csv()) {
            eprintln!("warning: could not write {path}: {e}");
        }
    }
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let t0 = Instant::now();
    let selected: Vec<(String, Table)> = match which.as_str() {
        "all" => bench::all_experiments(),
        "fig2" => vec![("fig2".into(), bench::fig2())],
        "table1" => vec![("table1".into(), bench::table1())],
        "fig4" => vec![
            ("fig4".into(), bench::fig4()),
            ("fig4_browsing".into(), bench::fig4_browsing()),
        ],
        "table2" => vec![("table2".into(), bench::table2())],
        "fig5" => vec![("fig5".into(), bench::fig5())],
        "fig6" => vec![("fig6".into(), bench::fig6())],
        "fig7" => {
            let (series, summary) = bench::fig7();
            vec![
                ("fig7_series".into(), series),
                ("fig7_summary".into(), summary),
            ]
        }
        "table3" => vec![("table3".into(), bench::table3())],
        "extensions" => vec![
            ("p1_power_capping".into(), bench::extension_p1()),
            ("s1_fabric_scalability".into(), bench::extension_s1()),
        ],
        "ablations" => vec![
            ("a1_channel_latency".into(), bench::ablation_a1()),
            ("a2_hysteresis".into(), bench::ablation_a2()),
            ("a3_notification".into(), bench::ablation_a3()),
            ("a4_ixp_threads".into(), bench::ablation_a4()),
            ("a5_trigger_rate".into(), bench::ablation_a5()),
            ("a6_accounting_mode".into(), bench::ablation_a6()),
        ],
        "list" => {
            println!("available: all fig2 table1 fig4 table2 fig5 fig6 fig7 table3 ablations extensions");
            return;
        }
        other => {
            eprintln!("unknown experiment '{other}' (try `experiments list`)");
            std::process::exit(2);
        }
    };
    for (slug, table) in &selected {
        emit(slug, table);
    }
    println!(
        "{} experiment table(s) regenerated in {:.2?}; CSVs under results/",
        selected.len(),
        t0.elapsed()
    );
}
