//! Regenerates every table and figure of the paper's evaluation plus the
//! ablations, printing paper-style tables and writing CSVs to `results/`.
//!
//! Usage: `experiments [--jobs N] [--island-threads N] [--shards N]
//! [--smoke[=SECS]] [--seed S] [SELECTION]`
//!
//! * `SELECTION` — `all` (default), an experiment id (`experiments list`
//!   prints them), or one of the groups `fig4`, `fig7`, `ablations`,
//!   `extensions`, `fleet`.
//! * `--jobs N` — fan independent experiments across N worker threads
//!   (default: `ARCH_JOBS` or the machine's available parallelism).
//!   Output is byte-identical to `--jobs 1`.
//! * `--island-threads N` — PDES island worker threads inside each
//!   simulated run (default 1 = the serial master loop). Dispatch order
//!   is conserved, so output is byte-identical to `--island-threads 1`;
//!   ci.sh asserts this on every pass.
//! * `--shards N` — shard count for the fleet experiments (default 12,
//!   clamped to 2..=64). Output for any fixed N is byte-identical across
//!   `--jobs` values; ci.sh asserts this on a 2-shard fleet.
//! * `--smoke[=SECS]` — cap every simulated run (default 5 simulated
//!   seconds): a fast CI pass that keeps table shapes but not statistics.
//! * `--seed S` — override the default deterministic seed.
//!
//! Besides the per-table CSVs this writes `results/BENCH_experiments.json`
//! with the simulator-throughput block (events dispatched, wall µs,
//! events/sec) and the deterministic per-island dispatch totals for the
//! whole pass.

use metrics::Table;
use simtest::json::Json;
use std::fs;
use std::time::Instant;

fn emit(slug: &str, table: &Table) {
    println!("{table}");
    if fs::create_dir_all("results").is_ok() {
        let path = format!("results/{slug}.csv");
        if let Err(e) = fs::write(&path, table.to_csv()) {
            eprintln!("warning: could not write {path}: {e}");
        }
    }
}

fn selection(which: &str) -> Option<Vec<&'static str>> {
    let ids = bench::experiment_ids();
    match which {
        "all" => Some(ids.to_vec()),
        "fig4" => Some(vec!["fig4", "fig4_browsing"]),
        "ablations" => Some(
            ids.iter()
                .copied()
                .filter(|id| id.starts_with("a") && id.chars().nth(1).is_some_and(|c| c.is_ascii_digit()))
                .collect(),
        ),
        "extensions" => Some(vec!["p1_power_capping", "s1_fabric_scalability"]),
        "inference" => Some(vec!["i1_inference_batching", "i2_batch_preemption"]),
        "i1" => Some(vec!["i1_inference_batching"]),
        "i2" => Some(vec!["i2_batch_preemption"]),
        "a1" => Some(vec!["a1_price_of_anarchy"]),
        "energy" => Some(vec!["e1_energy_qos", "e2_energy_ablation"]),
        "e1" => Some(vec!["e1_energy_qos"]),
        "e2" => Some(vec!["e2_energy_ablation"]),
        "fleet" => Some(vec!["f1_fleet_scale", "f2_fleet_determinism"]),
        "f1" => Some(vec!["f1_fleet_scale"]),
        "f2" => Some(vec!["f2_fleet_determinism"]),
        id if ids.contains(&id) => Some(vec![ids[ids.iter().position(|x| *x == id).unwrap()]]),
        _ => None,
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = bench::pool::take_jobs_flag(&mut args);
    let island_threads = bench::pool::take_island_threads_flag(&mut args);
    bench::set_island_threads(island_threads);
    if let Some(shards) = bench::pool::take_shards_flag(&mut args) {
        bench::set_fleet_shards(shards);
    }
    let mut seed = bench::SEED;
    let mut smoke: Option<u64> = None;
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--smoke" {
            smoke = Some(5);
        } else if let Some(v) = a.strip_prefix("--smoke=") {
            smoke = Some(v.parse().unwrap_or(5));
        } else if a == "--seed" {
            seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(seed);
        } else if let Some(v) = a.strip_prefix("--seed=") {
            seed = v.parse().unwrap_or(seed);
        } else {
            rest.push(a);
        }
    }
    if let Some(secs) = smoke {
        bench::set_smoke_cap_secs(secs);
    }
    let which = rest.first().map(String::as_str).unwrap_or("all");
    if which == "list" {
        println!(
            "available: all ablations extensions {}",
            bench::experiment_ids().join(" ")
        );
        return;
    }
    let Some(ids) = selection(which) else {
        eprintln!("unknown experiment '{which}' (try `experiments list`)");
        std::process::exit(2);
    };

    let t0 = Instant::now();
    bench::reset_sim_rate_totals();
    let tables = bench::run_experiments(jobs, ids.clone(), seed);
    let wall = t0.elapsed();
    for (slug, table) in &tables {
        emit(slug, table);
    }

    let (events, run_micros) = bench::sim_rate_totals();
    let rate = if run_micros > 0 {
        events as f64 * 1e6 / run_micros as f64
    } else {
        0.0
    };
    println!(
        "{} experiment table(s) regenerated in {:.2?} (jobs={jobs}); CSVs under results/",
        tables.len(),
        wall
    );
    println!(
        "sim rate: {events} events in {:.2} s of simulator time ({rate:.0} events/s)",
        run_micros as f64 / 1e6
    );
    let islands = bench::island_totals();
    println!(
        "islands: x86 {} ixp {} accel {}  sync points {} (island threads {island_threads})",
        islands.x86, islands.ixp, islands.accel, islands.sync_points
    );
    let fleet = bench::fleet_totals();
    if fleet.runs > 0 {
        println!(
            "fleet: {} run(s), {} shard slices, {} events, sessions {}/{} admitted, \
             bus {}/{} delivered ({} late), tunes {}/{}/{}",
            fleet.runs,
            fleet.shard_slices,
            fleet.events,
            fleet.admitted,
            fleet.offered,
            fleet.frames_sent,
            fleet.delivered,
            fleet.late,
            fleet.tunes[0],
            fleet.tunes[1],
            fleet.tunes[2],
        );
    }

    let report = Json::obj(vec![
        ("schema", Json::Str("bench-experiments-v1".into())),
        ("selection", Json::Str(which.into())),
        ("jobs", Json::Num(jobs as f64)),
        ("seed", Json::Num(seed as f64)),
        (
            "smoke_cap_secs",
            smoke.map(|s| Json::Num(s as f64)).unwrap_or(Json::Null),
        ),
        (
            "experiments",
            Json::Arr(ids.iter().map(|id| Json::Str((*id).into())).collect()),
        ),
        (
            "tables",
            Json::Arr(
                tables
                    .iter()
                    .map(|(slug, _)| Json::Str(slug.clone()))
                    .collect(),
            ),
        ),
        (
            "sim_rate",
            Json::obj(vec![
                ("events", Json::Num(events as f64)),
                ("run_wall_micros", Json::Num(run_micros as f64)),
                ("events_per_sec", Json::Num(rate)),
            ]),
        ),
        (
            "events_by_island",
            Json::obj(vec![
                ("x86", Json::Num(islands.x86 as f64)),
                ("ixp", Json::Num(islands.ixp as f64)),
                ("accel", Json::Num(islands.accel as f64)),
                ("sync_points", Json::Num(islands.sync_points as f64)),
                ("island_threads", Json::Num(island_threads as f64)),
            ]),
        ),
        (
            "fleet",
            Json::obj(vec![
                ("runs", Json::Num(fleet.runs as f64)),
                ("shards", Json::Num(bench::fleet_shards() as f64)),
                ("shard_slices", Json::Num(fleet.shard_slices as f64)),
                ("events", Json::Num(fleet.events as f64)),
                (
                    "per_shard_events",
                    Json::Arr(
                        fleet
                            .per_shard_events
                            .iter()
                            .map(|&e| Json::Num(e as f64))
                            .collect(),
                    ),
                ),
                (
                    "sessions",
                    Json::obj(vec![
                        ("offered", Json::Num(fleet.offered as f64)),
                        ("admitted", Json::Num(fleet.admitted as f64)),
                        ("rejected", Json::Num(fleet.rejected as f64)),
                    ]),
                ),
                (
                    "bus",
                    Json::obj(vec![
                        ("frames_sent", Json::Num(fleet.frames_sent as f64)),
                        ("delivered", Json::Num(fleet.delivered as f64)),
                        ("reordered", Json::Num(fleet.reordered as f64)),
                        ("late", Json::Num(fleet.late as f64)),
                    ]),
                ),
                (
                    "tunes_by_level",
                    Json::Arr(
                        fleet.tunes.iter().map(|&t| Json::Num(t as f64)).collect(),
                    ),
                ),
            ]),
        ),
        ("wall_micros", Json::Num(wall.as_micros() as f64)),
    ]);
    if fs::create_dir_all("results").is_ok() {
        let path = "results/BENCH_experiments.json";
        match fs::write(path, report.to_string()) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
}
