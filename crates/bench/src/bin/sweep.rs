//! Calibration sweep: multi-seed comparison of baseline vs coordinated
//! RUBiS over a configuration grid. Used to choose (and to re-validate)
//! the shipped scenario defaults; edit the `grid` to explore.

use coord::PolicyKind;
use platform::{PlatformBuilder, RubisScenario};
use simcore::Nanos;

#[derive(Clone, Copy)]
struct Cfg {
    hi: i32,
    lo: i32,
    rxw: u32,
    cap: u32,
    clients: u32,
    think_ms: u64,
    scale: f64,
    rto_ms: u64,
}

struct Out {
    x: f64,
    mean: f64,
    sd: f64,
    max: f64,
    drops: u64,
}

fn run(policy: PolicyKind, c: Cfg, seed: u64) -> Out {
    let mut scen = RubisScenario::read_write_mix(c.clients);
    scen.think_mean = Nanos::from_millis(c.think_ms);
    scen.demand_scale = c.scale;
    let mut sim = PlatformBuilder::new()
        .seed(seed)
        .policy(policy)
        .policy_weights(c.hi, c.lo)
        .queue_caps(c.rxw, c.cap)
        .rto_initial(Nanos::from_millis(c.rto_ms))
        .build_rubis(scen);
    let r = sim.run(Nanos::from_secs(60));
    let o = r.rubis.responses.overall().clone();
    Out {
        x: r.rubis.throughput,
        mean: o.mean(),
        sd: o.std_dev(),
        max: o.max(),
        drops: r.net.guest_drops,
    }
}

fn main() {
    println!(
        "{:>4} {:>4} {:>3} {:>3} {:>3} {:>4} {:>4} | {:>5} {:>6} {:>6} {:>7} {:>5} | {:>5} {:>6} {:>6} {:>7} {:>5} | ratio",
        "hi", "lo", "rxw", "cap", "N", "thnk", "scl", "Xb", "meanB", "sdB", "maxB", "dropB",
        "Xc", "meanC", "sdC", "maxC", "dropC"
    );
    let grid = [
        Cfg { hi: 512, lo: 256, rxw: 8, cap: 10, clients: 24, think_ms: 250, scale: 2.5, rto_ms: 500 },
    ];
    // Average over seeds to beat run-to-run noise.
    let seeds = [42u64, 7, 99, 1234, 5, 6, 777, 2020];
    for c in grid {
        let avg = |policy: PolicyKind| {
            let mut acc = Out { x: 0.0, mean: 0.0, sd: 0.0, max: 0.0, drops: 0 };
            for &s in &seeds {
                let o = run(policy, c, s);
                acc.x += o.x;
                acc.mean += o.mean;
                acc.sd += o.sd;
                acc.max += o.max;
                acc.drops += o.drops;
            }
            let n = seeds.len() as f64;
            Out { x: acc.x / n, mean: acc.mean / n, sd: acc.sd / n, max: acc.max / n, drops: acc.drops / seeds.len() as u64 }
        };
        let b = avg(PolicyKind::None);
        let co = avg(PolicyKind::RequestType);
        println!(
            "{:>4} {:>4} {:>3} {:>3} {:>3} {:>4} {:>4.1} | {:>5.1} {:>6.0} {:>6.0} {:>7.0} {:>5} | {:>5.1} {:>6.0} {:>6.0} {:>7.0} {:>5} | X{:+.0}% m{:+.0}% sd{:+.0}%",
            c.hi, c.lo, c.rxw, c.cap, c.clients, c.think_ms, c.scale,
            b.x, b.mean, b.sd, b.max, b.drops,
            co.x, co.mean, co.sd, co.max, co.drops,
            (co.x / b.x - 1.0) * 100.0,
            (co.mean / b.mean - 1.0) * 100.0,
            (co.sd / b.sd - 1.0) * 100.0,
        );
    }
}
