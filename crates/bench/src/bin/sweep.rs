//! Calibration sweep: multi-seed comparison of baseline vs coordinated
//! RUBiS over a configuration grid. Used to choose (and to re-validate)
//! the shipped scenario defaults; edit the `grid` to explore.
//!
//! Accepts `--jobs N`; the per-seed runs fan out across the job pool and
//! the averages are merged in submission order, so the printed grid is
//! identical at any worker count.

use bench::pool;
use bench::summary::RubisOut;
use coord::PolicyKind;
use platform::{PlatformBuilder, RubisScenario};
use simcore::Nanos;

#[derive(Clone, Copy)]
struct Cfg {
    hi: i32,
    lo: i32,
    rxw: u32,
    cap: u32,
    clients: u32,
    think_ms: u64,
    scale: f64,
    rto_ms: u64,
}

fn run(policy: PolicyKind, c: Cfg, seed: u64) -> RubisOut {
    let mut scen = RubisScenario::read_write_mix(c.clients);
    scen.think_mean = Nanos::from_millis(c.think_ms);
    scen.demand_scale = c.scale;
    let mut sim = PlatformBuilder::new()
        .seed(seed)
        .policy(policy)
        .policy_weights(c.hi, c.lo)
        .queue_caps(c.rxw, c.cap)
        .rto_initial(Nanos::from_millis(c.rto_ms))
        .build_rubis(scen);
    RubisOut::of(&sim.run(Nanos::from_secs(60)))
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = pool::take_jobs_flag(&mut args);
    println!(
        "{:>4} {:>4} {:>3} {:>3} {:>3} {:>4} {:>4} | {:>5} {:>6} {:>6} {:>7} {:>5} | {:>5} {:>6} {:>6} {:>7} {:>5} | ratio",
        "hi", "lo", "rxw", "cap", "N", "thnk", "scl", "Xb", "meanB", "sdB", "maxB", "dropB",
        "Xc", "meanC", "sdC", "maxC", "dropC"
    );
    let grid = [
        Cfg { hi: 512, lo: 256, rxw: 8, cap: 10, clients: 24, think_ms: 250, scale: 2.5, rto_ms: 500 },
    ];
    // Average over seeds to beat run-to-run noise; the (policy, seed)
    // pairs are independent simulations, so they all run concurrently.
    let seeds = [42u64, 7, 99, 1234, 5, 6, 777, 2020];
    for c in grid {
        let runs: Vec<(PolicyKind, u64)> = [PolicyKind::None, PolicyKind::RequestType]
            .into_iter()
            .flat_map(|p| seeds.iter().map(move |&s| (p, s)))
            .collect();
        let outs = pool::parallel_map(jobs, runs, |(p, s)| run(p, c, s));
        let (base_outs, coord_outs) = outs.split_at(seeds.len());
        let b = RubisOut::average(base_outs);
        let co = RubisOut::average(coord_outs);
        println!(
            "{:>4} {:>4} {:>3} {:>3} {:>3} {:>4} {:>4.1} | {:>5.1} {:>6.0} {:>6.0} {:>7.0} {:>5} | {:>5.1} {:>6.0} {:>6.0} {:>7.0} {:>5} | X{:+.0}% m{:+.0}% sd{:+.0}%",
            c.hi, c.lo, c.rxw, c.cap, c.clients, c.think_ms, c.scale,
            b.throughput, b.mean, b.sd, b.max, b.drops,
            co.throughput, co.mean, co.sd, co.max, co.drops,
            (co.throughput / b.throughput - 1.0) * 100.0,
            (co.mean / b.mean - 1.0) * 100.0,
            (co.sd / b.sd - 1.0) * 100.0,
        );
    }
}
