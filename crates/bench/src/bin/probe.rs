//! Calibration probe: quick, detailed looks at the headline scenarios.
//!
//! Usage: `probe [all|rubis|static|mplayer|trigger|energy|fleet]`
//!
//! * `rubis` — baseline vs coordinated read-write mix with per-type stats
//! * `static` — static weight assignments (sanity-checks the scheduler's
//!   sensitivity outside the coordination loop)
//! * `mplayer` — the three Figure 6 weight configurations
//! * `trigger` — Figure 7 / Table 3 buffer-trigger runs
//! * `energy` — the E1 arms (frozen metering vs coordinated knob walk)
//!   with joules, knob residency and the controller counters
//! * `fleet` — a small sharded fleet, uncoordinated vs depth-2
//!   coordinated, with per-shard event/coordination counters

use bench::summary;
use coord::PolicyKind;
use fleet::BusConfig;
use platform::{EnergyConfig, MplayerScenario, PlatformBuilder, RubisScenario};
use simcore::Nanos;

fn rubis(policy: PolicyKind, label: &str) {
    rubis_w(policy, label, None)
}

fn rubis_w(policy: PolicyKind, label: &str, weights: Option<(u32, u32, u32)>) {
    let mut sim = PlatformBuilder::new()
        .seed(42)
        .policy(policy)
        .build_rubis(RubisScenario::read_write_mix(24));
    if let Some((w, a, d)) = weights {
        sim.set_weight_by_name("web", w);
        sim.set_weight_by_name("app", a);
        sim.set_weight_by_name("db", d);
    }
    let r = sim.run(Nanos::from_secs(60));
    println!(
        "== RUBiS {label} (sim rate {:.0} events/s)",
        r.sim_rate.events_per_sec
    );
    println!(
        "  throughput {:.1} req/s  sessions {}  avg-session {:.1}s  efficiency {:.1}",
        r.rubis.throughput, r.rubis.sessions, r.rubis.avg_session_secs, r.efficiency
    );
    summary::print_cpu(&r, true);
    summary::print_islands(&r);
    println!(
        "  coord: sent {} tunes {} trig {}  net: drops {} link {} deliv {}",
        r.coord.messages_sent,
        r.coord.tunes_applied,
        r.coord.triggers_applied,
        r.net.ixp_drops,
        r.net.link_drops,
        r.net.delivered
    );
    println!("  guest_drops {}", r.net.guest_drops);
    summary::print_responses(&r);
}

fn mplayer(w1: u32, w2: u32) {
    let mut sim = PlatformBuilder::new()
        .seed(42)
        .policy(PolicyKind::None)
        .build_mplayer(MplayerScenario::figure6(w1, w2));
    let r = sim.run(Nanos::from_secs(60));
    println!("== MPlayer weights {w1}-{w2}");
    summary::print_players(&r);
    summary::print_cpu(&r, false);
    println!("  drops {} delivered {}", r.net.ixp_drops, r.net.delivered);
}

fn energy(cfg: EnergyConfig, label: &str) {
    let mut sim = PlatformBuilder::new()
        .seed(42)
        .policy(PolicyKind::RequestType)
        .energy(cfg)
        .build_rubis(RubisScenario::read_write_mix(8));
    let r = sim.run(Nanos::from_secs(300));
    println!("== energy {label}");
    println!(
        "  throughput {:.1} req/s  worst p99 {:.1} ms",
        r.rubis.throughput,
        r.rubis.responses.overall_percentile(0.99)
    );
    summary::print_energy(&r);
}

fn fleet_probe(coordinated: bool) {
    let cfg = bench::fleet_cfg(
        42,
        6,
        2,
        BusConfig::perfect(Nanos::from_micros(100)),
        coordinated,
    );
    let r = bench::run_fleet(cfg, 3, 20, 1);
    println!(
        "== fleet {} (6 shards, depth 2)",
        if coordinated { "coordinated" } else { "uncoordinated" }
    );
    summary::print_fleet(&r);
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    if which == "all" || which == "rubis" {
        rubis(PolicyKind::None, "baseline");
        rubis(PolicyKind::RequestType, "coordinated");
    }
    if which == "static" {
        rubis_w(PolicyKind::None, "static 256/512/512", Some((256, 512, 512)));
        rubis_w(PolicyKind::None, "static 512/512/160", Some((512, 512, 160)));
        rubis_w(PolicyKind::None, "static 64/64/64", Some((64, 64, 64)));
    }
    if which == "all" || which == "mplayer" {
        mplayer(256, 256);
        mplayer(384, 512);
        mplayer(384, 640);
    }
    if which == "fleet" {
        fleet_probe(false);
        fleet_probe(true);
    }
    if which == "energy" {
        energy(EnergyConfig::frozen(800.0), "frozen (metering only)");
        energy(EnergyConfig::coordinated(800.0), "coordinated, target 800 ms");
    }
    if which == "trigger" {
        for policy in [PolicyKind::None, PolicyKind::BufferTrigger] {
            let mut sim = PlatformBuilder::new()
                .seed(42)
                .policy(policy)
                .build_mplayer(MplayerScenario::trigger_setup());
            let r = sim.run(Nanos::from_secs(180));
            println!("== trigger policy={:?}", policy);
            summary::print_players(&r);
            let late: Vec<f64> = r
                .buffer_series
                .points()
                .iter()
                .filter(|(t, _)| t.as_millis() > 60_000)
                .map(|&(_, v)| v)
                .collect();
            let late_mean = late.iter().sum::<f64>() / late.len().max(1) as f64;
            println!(
                "  triggers {} buffer max {:.0} late-mean {:.0} drops {}",
                r.coord.triggers_applied,
                r.buffer_series.max_value().unwrap_or(0.0),
                late_mean,
                r.net.ixp_drops
            );
        }
    }
}
