//! # bench — the experiment harness
//!
//! One function per table and figure of the paper's evaluation (§3), plus
//! the ablations DESIGN.md calls out. Each experiment builds the platform
//! through the public API, runs it deterministically, and renders
//! paper-style [`Table`]s; the `experiments` binary prints them and writes
//! CSVs under `results/`.
//!
//! Reproduction targets are *shapes*, not absolute numbers — see
//! EXPERIMENTS.md for the measured-vs-paper comparison and the analysis of
//! where (and why) magnitudes diverge.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod pool;
pub mod summary;

use coord::PolicyKind;
use fleet::{BusConfig, FleetConfig, FleetReport, FleetState, FleetTopology, ShardPlan};
use metrics::Table;
use pcie::NotifyMode;
use platform::{
    AdversarySpec, EnergyConfig, FaultProfile, InferenceScenario, Jitter, MplayerScenario,
    Platform, PlatformBuilder, PolicerConfig, PowerStrategy, ReliableConfig, RubisScenario,
    RunReport,
};
use simcore::Nanos;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use workloads::session::SessionLoad;

/// Default deterministic seed for headline runs.
pub const SEED: u64 = 42;

/// Simulated duration of RUBiS runs.
pub const RUBIS_SECS: u64 = 300;

/// Simulated duration of the Figure 7 trigger run.
pub const TRIGGER_SECS: u64 = 180;

/// Simulated duration of the inference (accelerator island) runs.
pub const INFER_SECS: u64 = 120;

// ----------------------------------------------------------------------
// Run plumbing: smoke cap and simulator-rate accounting
// ----------------------------------------------------------------------

static SMOKE_CAP_SECS: AtomicU64 = AtomicU64::new(u64::MAX);
static TOTAL_EVENTS: AtomicU64 = AtomicU64::new(0);
static TOTAL_WALL_MICROS: AtomicU64 = AtomicU64::new(0);
static ISLAND_THREADS: AtomicU64 = AtomicU64::new(1);
static TOTAL_X86_EVENTS: AtomicU64 = AtomicU64::new(0);
static TOTAL_IXP_EVENTS: AtomicU64 = AtomicU64::new(0);
static TOTAL_ACCEL_EVENTS: AtomicU64 = AtomicU64::new(0);
static TOTAL_SYNC_POINTS: AtomicU64 = AtomicU64::new(0);

/// Caps every simulated run at `secs` simulated seconds. Smoke mode for
/// CI and the determinism tests: the tables lose statistical meaning but
/// keep their exact shape and determinism. `u64::MAX` restores full runs.
pub fn set_smoke_cap_secs(secs: u64) {
    SMOKE_CAP_SECS.store(secs.max(1), Ordering::Relaxed);
}

fn sim_secs(n: u64) -> Nanos {
    Nanos::from_secs(n.min(SMOKE_CAP_SECS.load(Ordering::Relaxed)))
}

/// Totals accumulated across every [`Platform`] run the experiments have
/// executed in this process: `(events dispatched, wall microseconds)`.
pub fn sim_rate_totals() -> (u64, u64) {
    (
        TOTAL_EVENTS.load(Ordering::Relaxed),
        TOTAL_WALL_MICROS.load(Ordering::Relaxed),
    )
}

/// Resets the [`sim_rate_totals`], [`island_totals`] and
/// [`fleet_totals`] counters.
pub fn reset_sim_rate_totals() {
    TOTAL_EVENTS.store(0, Ordering::Relaxed);
    TOTAL_WALL_MICROS.store(0, Ordering::Relaxed);
    TOTAL_X86_EVENTS.store(0, Ordering::Relaxed);
    TOTAL_IXP_EVENTS.store(0, Ordering::Relaxed);
    TOTAL_ACCEL_EVENTS.store(0, Ordering::Relaxed);
    TOTAL_SYNC_POINTS.store(0, Ordering::Relaxed);
    for c in [
        &FLEET_RUNS,
        &FLEET_SHARD_SLICES,
        &FLEET_EVENTS,
        &FLEET_OFFERED,
        &FLEET_ADMITTED,
        &FLEET_REJECTED,
        &FLEET_FRAMES_SENT,
        &FLEET_DELIVERED,
        &FLEET_REORDERED,
        &FLEET_LATE,
        &FLEET_TUNES_L0,
        &FLEET_TUNES_L1,
        &FLEET_TUNES_L2,
    ] {
        c.store(0, Ordering::Relaxed);
    }
    FLEET_PER_SHARD_EVENTS.lock().unwrap().clear();
}

/// Sets the PDES island worker count every subsequent [`Platform`] run in
/// this process uses (1 = the exact serial master loop, the default).
/// Dispatch order — and so every table — is identical for any value; the
/// determinism suite asserts it.
pub fn set_island_threads(threads: usize) {
    ISLAND_THREADS.store(threads.max(1) as u64, Ordering::Relaxed);
}

/// The configured PDES island worker count.
pub fn island_threads() -> usize {
    ISLAND_THREADS.load(Ordering::Relaxed) as usize
}

/// Deterministic per-island dispatch totals accumulated across every run:
/// x86/ixp/accel event counts plus epoch barriers crossed. `epoch_ns` is
/// not aggregated (it is per-run configuration) and reads 0 here.
pub fn island_totals() -> platform::IslandEvents {
    platform::IslandEvents {
        x86: TOTAL_X86_EVENTS.load(Ordering::Relaxed),
        ixp: TOTAL_IXP_EVENTS.load(Ordering::Relaxed),
        accel: TOTAL_ACCEL_EVENTS.load(Ordering::Relaxed),
        sync_points: TOTAL_SYNC_POINTS.load(Ordering::Relaxed),
        island_threads: ISLAND_THREADS.load(Ordering::Relaxed),
        epoch_ns: 0,
    }
}

/// Every experiment run goes through here so the aggregate simulator
/// throughput and per-island dispatch counts can be reported by the
/// `experiments` binary.
fn timed_run(sim: &mut Platform, duration: Nanos) -> RunReport {
    sim.set_island_threads(island_threads());
    let r = sim.run(duration);
    TOTAL_EVENTS.fetch_add(r.sim_rate.events, Ordering::Relaxed);
    TOTAL_WALL_MICROS.fetch_add(r.sim_rate.wall_micros, Ordering::Relaxed);
    TOTAL_X86_EVENTS.fetch_add(r.events_by_island.x86, Ordering::Relaxed);
    TOTAL_IXP_EVENTS.fetch_add(r.events_by_island.ixp, Ordering::Relaxed);
    TOTAL_ACCEL_EVENTS.fetch_add(r.events_by_island.accel, Ordering::Relaxed);
    TOTAL_SYNC_POINTS.fetch_add(r.events_by_island.sync_points, Ordering::Relaxed);
    r
}

fn run_rubis(policy: PolicyKind, scenario: RubisScenario, seed: u64) -> RunReport {
    let mut sim = PlatformBuilder::new()
        .seed(seed)
        .policy(policy)
        .build_rubis(scenario);
    timed_run(&mut sim, sim_secs(RUBIS_SECS))
}

fn run_rubis_faulty(
    policy: PolicyKind,
    scenario: RubisScenario,
    seed: u64,
    profile: FaultProfile,
    reliable: Option<ReliableConfig>,
) -> RunReport {
    let mut b = PlatformBuilder::new()
        .seed(seed)
        .policy(policy)
        .fault_profile(profile);
    if let Some(cfg) = reliable {
        b = b.reliable_delivery(cfg);
    }
    let mut sim = b.build_rubis(scenario);
    timed_run(&mut sim, sim_secs(RUBIS_SECS))
}

/// Unweighted average of the per-request-type mean response times — the
/// single-number summary the reliability sweeps compare across variants.
fn mean_response_ms(r: &RunReport) -> f64 {
    let (mut sum, mut n) = (0.0, 0u32);
    for (_, s) in r.rubis.responses.iter() {
        sum += s.mean();
        n += 1;
    }
    if n > 0 {
        sum / n as f64
    } else {
        0.0
    }
}

fn fmt(v: f64) -> String {
    format!("{v:.1}")
}

fn yesno(b: bool) -> String {
    if b {
        "yes".into()
    } else {
        "NO".into()
    }
}

// ----------------------------------------------------------------------
// Figure 2 — RUBiS min–max response latencies, uncoordinated baseline
// ----------------------------------------------------------------------

/// Figure 2: variation in minimum–maximum response latencies under the
/// bid/browse/sell mix with no coordination.
pub fn fig2(seed: u64) -> Table {
    let r = run_rubis(PolicyKind::None, RubisScenario::read_write_mix(24), seed);
    let mut t = Table::new(
        "Figure 2 — RUBiS min-max response latencies, no coordination (ms)",
        &["Request Type", "min", "max", "mean", "sd", "p95", "p99"],
    );
    let names: Vec<String> = r.rubis.responses.iter().map(|(n, _)| n.to_owned()).collect();
    for name in names {
        let s = r.rubis.responses.summary(&name).expect("iterated key");
        t.row_owned(vec![
            name.clone(),
            fmt(s.min()),
            fmt(s.max()),
            fmt(s.mean()),
            fmt(s.std_dev()),
            fmt(r.rubis.responses.percentile(&name, 0.95)),
            fmt(r.rubis.responses.percentile(&name, 0.99)),
        ]);
    }
    t
}

// ----------------------------------------------------------------------
// Table 1 — average response times, base vs coord-ixp-dom0
// ----------------------------------------------------------------------

/// Table 1: per-type average response times, baseline vs coordinated.
pub fn table1(seed: u64) -> Table {
    let base = run_rubis(PolicyKind::None, RubisScenario::read_write_mix(24), seed);
    let coord = run_rubis(
        PolicyKind::RequestType,
        RubisScenario::read_write_mix(24),
        seed,
    );
    let mut t = Table::new(
        "Table 1 — RUBiS average request response times (ms)",
        &["Request Type", "Base", "coord-ixp-dom0", "change %"],
    );
    for (name, s) in base.rubis.responses.iter() {
        let c = coord
            .rubis
            .responses
            .summary(name)
            .map(|c| c.mean())
            .unwrap_or(0.0);
        let pct = if s.mean() > 0.0 {
            (c / s.mean() - 1.0) * 100.0
        } else {
            0.0
        };
        t.row_owned(vec![
            name.to_owned(),
            fmt(s.mean()),
            fmt(c),
            format!("{pct:+.1}"),
        ]);
    }
    t
}

// ----------------------------------------------------------------------
// Figure 4 — min-max response, base vs coordinated
// ----------------------------------------------------------------------

/// Figure 4: min–max response times with and without coordination
/// (read-write mix). The paper's headline: coordination alleviates peak
/// latencies and reduces per-type standard deviation.
pub fn fig4(seed: u64) -> Table {
    let base = run_rubis(PolicyKind::None, RubisScenario::read_write_mix(24), seed);
    let coord = run_rubis(
        PolicyKind::RequestType,
        RubisScenario::read_write_mix(24),
        seed,
    );
    let mut t = Table::new(
        "Figure 4 — RUBiS min-max response times, base vs coordinated (ms)",
        &[
            "Request Type",
            "min B",
            "max B",
            "sd B",
            "min C",
            "max C",
            "sd C",
        ],
    );
    for (name, s) in base.rubis.responses.iter() {
        let c = coord.rubis.responses.summary(name);
        let (cmin, cmax, csd) = c
            .map(|c| (c.min(), c.max(), c.std_dev()))
            .unwrap_or_default();
        t.row_owned(vec![
            name.to_owned(),
            fmt(s.min()),
            fmt(s.max()),
            fmt(s.std_dev()),
            fmt(cmin),
            fmt(cmax),
            fmt(csd),
        ]);
    }
    t
}

/// Figure 4's footnote experiment: under the pure browsing mix (no
/// read-write transitions) coordination should win for every type.
pub fn fig4_browsing(seed: u64) -> Table {
    // Moderate load: the browsing mix is web-heavy, and the paper's point
    // is that without read/write transitions the coordination regime is
    // always right — best visible when the web tier is not pinned at
    // saturation.
    let base = run_rubis(PolicyKind::None, RubisScenario::browsing_mix(12), seed);
    let coord = run_rubis(
        PolicyKind::RequestType,
        RubisScenario::browsing_mix(12),
        seed,
    );
    let mut t = Table::new(
        "Figure 4 (browsing-only mix) — mean/max response times (ms)",
        &["Request Type", "mean B", "max B", "mean C", "max C"],
    );
    for (name, s) in base.rubis.responses.iter() {
        let c = coord.rubis.responses.summary(name);
        let (cm, cx) = c.map(|c| (c.mean(), c.max())).unwrap_or_default();
        t.row_owned(vec![
            name.to_owned(),
            fmt(s.mean()),
            fmt(s.max()),
            fmt(cm),
            fmt(cx),
        ]);
    }
    t
}

// ----------------------------------------------------------------------
// Table 2 — throughput, sessions, session time, platform efficiency
// ----------------------------------------------------------------------

/// Table 2: RUBiS throughput results.
pub fn table2(seed: u64) -> Table {
    let base = run_rubis(PolicyKind::None, RubisScenario::read_write_mix(24), seed);
    let coord = run_rubis(
        PolicyKind::RequestType,
        RubisScenario::read_write_mix(24),
        seed,
    );
    let mut t = Table::new(
        "Table 2 — RUBiS throughput results",
        &["Metric", "Base", "coord-ixp-dom0"],
    );
    t.row_owned(vec![
        "Throughput (req/s)".into(),
        fmt(base.rubis.throughput),
        fmt(coord.rubis.throughput),
    ]);
    t.row_owned(vec![
        "Sessions completed".into(),
        base.rubis.sessions.to_string(),
        coord.rubis.sessions.to_string(),
    ]);
    t.row_owned(vec![
        "Avg session time (s)".into(),
        fmt(base.rubis.avg_session_secs),
        fmt(coord.rubis.avg_session_secs),
    ]);
    t.row_owned(vec![
        "Platform efficiency".into(),
        format!("{:.2}", base.efficiency),
        format!("{:.2}", coord.efficiency),
    ]);
    t.row_owned(vec![
        "Dropped packets".into(),
        base.net.guest_drops.to_string(),
        coord.net.guest_drops.to_string(),
    ]);
    t.row_owned(vec![
        "Coordination msgs".into(),
        base.coord.messages_sent.to_string(),
        coord.coord.messages_sent.to_string(),
    ]);
    t
}

// ----------------------------------------------------------------------
// Figure 5 — per-VM CPU utilization
// ----------------------------------------------------------------------

/// Figure 5: RUBiS CPU utilization per component (percent of one pCPU),
/// baseline vs coordinated, with the user/system split of §3.1.
pub fn fig5(seed: u64) -> Table {
    let base = run_rubis(PolicyKind::None, RubisScenario::read_write_mix(24), seed);
    let coord = run_rubis(
        PolicyKind::RequestType,
        RubisScenario::read_write_mix(24),
        seed,
    );
    let mut t = Table::new(
        "Figure 5 — RUBiS CPU utilization (% of one pCPU)",
        &[
            "Domain",
            "base",
            "base usr",
            "base sys",
            "coord",
            "coord usr",
            "coord sys",
        ],
    );
    for d in &base.cpu {
        let c = coord.cpu.iter().find(|c| c.name == d.name);
        let (cp, cu, cs) = c.map(|c| (c.percent, c.user, c.system)).unwrap_or_default();
        t.row_owned(vec![
            d.name.clone(),
            fmt(d.percent),
            fmt(d.user),
            fmt(d.system),
            fmt(cp),
            fmt(cu),
            fmt(cs),
        ]);
    }
    t.row_owned(vec![
        "TOTAL".into(),
        fmt(base.total_cpu_percent),
        String::new(),
        String::new(),
        fmt(coord.total_cpu_percent),
        String::new(),
        String::new(),
    ]);
    t
}

// ----------------------------------------------------------------------
// Figure 6 — MPlayer video-stream quality of service
// ----------------------------------------------------------------------

/// Figure 6: achieved frame rates under the paper's three weight
/// configurations (256-256, 384-512, 384-640 with tandem IXP threads).
pub fn fig6(seed: u64) -> Table {
    let mut t = Table::new(
        "Figure 6 — MPlayer video-stream QoS (frames/s; targets: dom1=20, dom2=25)",
        &["Weights", "Dom1 fps", "meets", "Dom2 fps", "meets"],
    );
    for (label, w1, w2, tandem) in [
        ("256-256", 256, 256, false),
        ("384-512", 384, 512, false),
        ("384-640", 384, 640, true),
    ] {
        let scen = MplayerScenario::figure6(w1, w2);
        let mut sim = PlatformBuilder::new().seed(seed).build_mplayer(scen);
        if tandem {
            // The paper's third configuration also raises the IXP threads
            // servicing Domain-2's receive queue in tandem.
            sim.set_flow_threads_by_vm(2, 4);
        }
        let r = timed_run(&mut sim, sim_secs(RUBIS_SECS));
        let d1 = r.player("dom1").expect("dom1 report");
        let d2 = r.player("dom2").expect("dom2 report");
        t.row_owned(vec![
            label.to_owned(),
            fmt(d1.achieved_fps),
            yesno(d1.achieved_fps >= d1.target_fps as f64),
            fmt(d2.achieved_fps),
            yesno(d2.achieved_fps >= d2.target_fps as f64),
        ]);
    }
    t
}

// ----------------------------------------------------------------------
// Figure 7 — trigger coordination time series
// ----------------------------------------------------------------------

/// Figure 7: the trigger run's time series — boosted domain CPU
/// utilization and IXP buffer occupancy, sampled once per second.
/// Returns (series table, summary table).
pub fn fig7(seed: u64) -> (Table, Table) {
    let mut runs = Vec::new();
    for policy in [PolicyKind::None, PolicyKind::BufferTrigger] {
        let mut sim = PlatformBuilder::new()
            .seed(seed)
            .policy(policy)
            .build_mplayer(MplayerScenario::trigger_setup());
        runs.push(timed_run(&mut sim, sim_secs(TRIGGER_SECS)));
    }
    let (base, coord) = (&runs[0], &runs[1]);
    let mut series = Table::new(
        "Figure 7 — boosted domain CPU% and IXP buffer occupancy over time",
        &["t (s)", "no-coord cpu%", "coord cpu%", "coord buffer (bytes)"],
    );
    let pick = |r: &RunReport| {
        r.cpu_series
            .iter()
            .find(|(n, _)| n == "dom1")
            .map(|(_, s)| s.points().to_vec())
            .unwrap_or_default()
    };
    let coord_cpu = pick(coord);
    let base_cpu = pick(base);
    let buffer = coord.buffer_series.points();
    for (i, (t, v)) in coord_cpu.iter().enumerate() {
        if i % 10 != 0 {
            continue; // print every 10th sample; the CSV keeps them all
        }
        let b = base_cpu.get(i).map(|&(_, v)| v).unwrap_or(0.0);
        let buf = buffer.get(i).map(|&(_, v)| v).unwrap_or(0.0);
        series.row_owned(vec![
            format!("{:.0}", t.as_secs_f64()),
            fmt(b),
            fmt(*v),
            format!("{buf:.0}"),
        ]);
    }
    let mut summary = Table::new(
        "Figure 7 — summary",
        &["Metric", "no-coord", "coord-trigger"],
    );
    let fps = |r: &RunReport| r.player("dom1").map(|p| p.achieved_fps).unwrap_or(0.0);
    summary.row_owned(vec![
        "Dom1 frames/s".into(),
        format!("{:.1}", fps(base)),
        format!("{:.1}", fps(coord)),
    ]);
    summary.row_owned(vec![
        "Triggers applied".into(),
        base.coord.triggers_applied.to_string(),
        coord.coord.triggers_applied.to_string(),
    ]);
    summary.row_owned(vec![
        "Mean IXP buffer (bytes)".into(),
        format!("{:.0}", base.buffer_series.mean()),
        format!("{:.0}", coord.buffer_series.mean()),
    ]);
    summary.row_owned(vec![
        "Max IXP buffer (bytes)".into(),
        format!("{:.0}", base.buffer_series.max_value().unwrap_or(0.0)),
        format!("{:.0}", coord.buffer_series.max_value().unwrap_or(0.0)),
    ]);
    (series, summary)
}

// ----------------------------------------------------------------------
// Table 3 — trigger interference
// ----------------------------------------------------------------------

/// Table 3: trigger interference — the boosted network player gains,
/// the colocated local-disk player pays.
pub fn table3(seed: u64) -> Table {
    let mut results = Vec::new();
    for policy in [PolicyKind::None, PolicyKind::BufferTrigger] {
        let mut sim = PlatformBuilder::new()
            .seed(seed)
            .policy(policy)
            .build_mplayer(MplayerScenario::trigger_setup());
        results.push(timed_run(&mut sim, sim_secs(TRIGGER_SECS)));
    }
    let (base, coord) = (&results[0], &results[1]);
    let mut t = Table::new(
        "Table 3 — MPlayer trigger interference (frames/s)",
        &["Guest Domain", "Baseline", "With Co-ord", "% change"],
    );
    for name in ["dom1", "dom2"] {
        let b = base.player(name).map(|p| p.achieved_fps).unwrap_or(0.0);
        let c = coord.player(name).map(|p| p.achieved_fps).unwrap_or(0.0);
        let pct = if b > 0.0 { (c / b - 1.0) * 100.0 } else { 0.0 };
        t.row_owned(vec![
            name.to_owned(),
            format!("{b:.1}"),
            format!("{c:.1}"),
            format!("{pct:+.2}"),
        ]);
    }
    t
}

// ----------------------------------------------------------------------
// Ablations
// ----------------------------------------------------------------------

/// A1: coordination-channel latency sweep (PCIe mailbox vs QPI/HTX-class
/// integration, §3.3 "Hardware considerations").
pub fn ablation_a1(seed: u64) -> Table {
    let mut t = Table::new(
        "A1 — coordination channel latency vs response-time damage",
        &["one-way latency", "mean (ms)", "sd (ms)", "max (ms)", "drops"],
    );
    for us in [1u64, 30, 300, 3_000, 30_000] {
        let mut sim = PlatformBuilder::new()
            .seed(seed)
            .policy(PolicyKind::RequestType)
            .coord_latency(Nanos::from_micros(us))
            .build_rubis(RubisScenario::read_write_mix(24));
        let r = timed_run(&mut sim, sim_secs(RUBIS_SECS));
        let o = r.rubis.responses.overall().clone();
        t.row_owned(vec![
            format!("{us} us"),
            fmt(o.mean()),
            fmt(o.std_dev()),
            fmt(o.max()),
            r.net.guest_drops.to_string(),
        ]);
    }
    t
}

/// A2: per-request regime switching vs the hysteresis extension the paper
/// defers to future work.
pub fn ablation_a2(seed: u64) -> Table {
    let mut t = Table::new(
        "A2 — per-request coordination vs hysteresis damping",
        &["Policy", "X (req/s)", "mean", "sd", "max", "msgs", "drops"],
    );
    for (label, policy) in [
        ("none", PolicyKind::None),
        ("per-request", PolicyKind::RequestType),
        ("hysteresis", PolicyKind::RequestTypeHysteresis),
    ] {
        let r = run_rubis(policy, RubisScenario::read_write_mix(24), seed);
        let o = r.rubis.responses.overall().clone();
        t.row_owned(vec![
            label.into(),
            fmt(r.rubis.throughput),
            fmt(o.mean()),
            fmt(o.std_dev()),
            fmt(o.max()),
            r.coord.messages_sent.to_string(),
            r.net.guest_drops.to_string(),
        ]);
    }
    t
}

/// A3: messaging-driver notification policy — interrupt moderation period
/// sweep vs Dom0 polling.
pub fn ablation_a3(seed: u64) -> Table {
    let mut t = Table::new(
        "A3 — host notification policy vs response times",
        &["Notify mode", "mean (ms)", "sd (ms)", "max (ms)"],
    );
    let mut modes: Vec<(String, NotifyMode)> = vec![];
    for us in [20u64, 100, 500, 2_000] {
        modes.push((
            format!("irq {us} us"),
            NotifyMode::Interrupt {
                period: Nanos::from_micros(us),
            },
        ));
    }
    for us in [100u64, 1_000] {
        modes.push((
            format!("poll {us} us"),
            NotifyMode::Poll {
                period: Nanos::from_micros(us),
            },
        ));
    }
    for (label, mode) in modes {
        let mut sim = PlatformBuilder::new()
            .seed(seed)
            .policy(PolicyKind::RequestType)
            .notify_mode(mode)
            .build_rubis(RubisScenario::read_write_mix(24));
        let r = timed_run(&mut sim, sim_secs(RUBIS_SECS));
        let o = r.rubis.responses.overall().clone();
        t.row_owned(vec![label, fmt(o.mean()), fmt(o.std_dev()), fmt(o.max())]);
    }
    t
}

/// A4: IXP per-flow dequeue-thread assignment vs delivered throughput
/// (the §2.1 claim that thread tuning controls per-VM ingress bandwidth).
pub fn ablation_a4(seed: u64) -> Table {
    let mut t = Table::new(
        "A4 — IXP flow threads vs delivered ingress bandwidth",
        &["threads", "delivered pkts", "fps dom1", "IXP buffer mean (bytes)"],
    );
    for threads in [1u32, 2, 4, 8] {
        let ixp_cfg = ixp::IxpConfig {
            flow_threads: threads,
            // Slow per-flow polling exposes the knob: each thread serves
            // roughly one packet per poll interval, so per-flow bandwidth
            // ≈ threads / poll.
            flow_poll: Nanos::from_millis(30),
            ..ixp::IxpConfig::default()
        };
        let mut sim = PlatformBuilder::new()
            .seed(seed)
            .ixp_config(ixp_cfg)
            .build_mplayer(MplayerScenario::trigger_setup());
        let r = timed_run(&mut sim, sim_secs(60));
        t.row_owned(vec![
            threads.to_string(),
            r.net.delivered.to_string(),
            r.player("dom1")
                .map(|p| fmt(p.achieved_fps))
                .unwrap_or_default(),
            format!("{:.0}", r.buffer_series.mean()),
        ]);
    }
    t
}

/// A5: trigger rate limiting — the interference/gain trade-off of Table 3.
pub fn ablation_a5(seed: u64) -> Table {
    let mut t = Table::new(
        "A5 — trigger rate limit vs gain and interference",
        &["max triggers/s", "triggers", "dom1 fps", "dom2 fps"],
    );
    for rate in [0.5f64, 2.0, 10.0, 1e9] {
        let mut sim = PlatformBuilder::new()
            .seed(seed)
            .policy(PolicyKind::BufferTrigger)
            .trigger_rate_limit(rate)
            .build_mplayer(MplayerScenario::trigger_setup());
        let r = timed_run(&mut sim, sim_secs(TRIGGER_SECS));
        let label = if rate > 1e6 {
            "unlimited".into()
        } else {
            format!("{rate}")
        };
        t.row_owned(vec![
            label,
            r.coord.triggers_applied.to_string(),
            r.player("dom1")
                .map(|p| fmt(p.achieved_fps))
                .unwrap_or_default(),
            r.player("dom2")
                .map(|p| fmt(p.achieved_fps))
                .unwrap_or_default(),
        ]);
    }
    t
}

/// A6: credit-accounting fidelity — precise consumption-based debits vs
/// Xen 3.x's tick-sampled debits (which deterministic sub-tick workloads
/// dodge). Shows how much of the coordination story depends on the
/// accounting substrate.
pub fn ablation_a6(seed: u64) -> Table {
    let mut t = Table::new(
        "A6 — credit accounting mode vs RUBiS outcomes",
        &["Accounting", "Policy", "X (req/s)", "mean (ms)", "sd (ms)", "drops"],
    );
    for (acct_label, precise) in [("precise", true), ("tick-sampled", false)] {
        for (pol_label, policy) in [("none", PolicyKind::None), ("coord", PolicyKind::RequestType)]
        {
            let mut sim = PlatformBuilder::new()
                .seed(seed)
                .policy(policy)
                .precise_accounting(precise)
                .build_rubis(RubisScenario::read_write_mix(24));
            let r = timed_run(&mut sim, sim_secs(RUBIS_SECS));
            let o = r.rubis.responses.overall().clone();
            t.row_owned(vec![
                acct_label.into(),
                pol_label.into(),
                fmt(r.rubis.throughput),
                fmt(o.mean()),
                fmt(o.std_dev()),
                r.net.guest_drops.to_string(),
            ]);
        }
    }
    t
}

/// P1 (extension, paper §1 use case 2 + §5): platform-level power capping
/// under the two victim strategies. At the same watt budget, the
/// application-aware priority order (cap the elastic Dom0 background load
/// first) preserves stream QoS, while per-tile biggest-consumer capping
/// destroys the high-rate stream's frame rate — and, because the elastic
/// background absorbs the freed cycles, saves almost no power.
pub fn extension_p1(seed: u64) -> Table {
    let mut t = Table::new(
        "P1 — platform power capping: coordinated vs per-tile victim choice",
        &["Config", "mean W", "max W", "dom1 fps", "dom2 fps", "cap actions"],
    );
    let mut run = |label: &str, cap: Option<(f64, PowerStrategy)>| {
        let mut b = PlatformBuilder::new().seed(seed);
        if let Some((w, s)) = cap {
            b = b.power_cap(w, s);
        }
        let mut sim = b.build_mplayer(MplayerScenario::figure6(384, 512));
        let r = timed_run(&mut sim, sim_secs(120));
        t.row_owned(vec![
            label.into(),
            format!("{:.1}", r.power.mean_watts),
            format!("{:.1}", r.power.max_watts),
            r.player("dom1").map(|p| fmt(p.achieved_fps)).unwrap_or_default(),
            r.player("dom2").map(|p| fmt(p.achieved_fps)).unwrap_or_default(),
            r.power.cap_actions.to_string(),
        ]);
    };
    run("uncapped", None);
    run(
        "cap 105W, biggest-consumer",
        Some((105.0, PowerStrategy::BiggestConsumer)),
    );
    run(
        "cap 105W, coordinated priority",
        Some((105.0, PowerStrategy::Priority(vec!["dom0".into(), "dom1".into(), "dom2".into()]))),
    );
    run(
        "cap 100W, biggest-consumer",
        Some((100.0, PowerStrategy::BiggestConsumer)),
    );
    run(
        "cap 100W, coordinated priority",
        Some((100.0, PowerStrategy::Priority(vec!["dom0".into(), "dom1".into(), "dom2".into()]))),
    );
    t
}

/// S1 (extension, paper §5): coordination-fabric scalability — a single
/// global controller vs the two-level zone fabric, at increasing island
/// counts and 90%-local traffic.
pub fn extension_s1(seed: u64) -> Table {
    use coord::hierarchy::{HierarchicalController, ZoneId};
    use coord::{CoordMsg, EntityId, IslandId, IslandKind};
    let mut t = Table::new(
        "S1 — coordination fabric scalability (100k tunes, 90% zone-local)",
        &["zones", "islands", "root lookups", "max zone load", "centralized load"],
    );
    for zones in [1u16, 2, 4, 8, 16] {
        let islands_per_zone = 4u16;
        let entities_per_island = 8u32;
        let mut h = HierarchicalController::new(zones);
        let mut all_entities: Vec<(ZoneId, EntityId)> = Vec::new();
        for z in 0..zones {
            for i in 0..islands_per_zone {
                let island = IslandId(z * islands_per_zone + i);
                h.register_island(ZoneId(z), island, IslandKind::GeneralPurpose);
                for e in 0..entities_per_island {
                    let entity =
                        EntityId((island.0 as u32) * entities_per_island + e);
                    h.register_entity(ZoneId(z), entity, island, e as u64);
                    all_entities.push((ZoneId(z), entity));
                }
            }
        }
        let mut rng = simcore::SimRng::new(seed);
        let n_msgs = 100_000u32;
        for i in 0..n_msgs {
            let origin = ZoneId((i % zones as u32) as u16);
            // 90% of traffic targets entities in the origin zone (with a
            // single zone everything is local by construction).
            let local = zones == 1 || rng.chance(0.9);
            let (_, entity) = loop {
                let pick = all_entities[rng.below(all_entities.len() as u64) as usize];
                if (pick.0 == origin) == local {
                    break pick;
                }
            };
            h.handle(
                Nanos::ZERO,
                origin,
                CoordMsg::Tune { entity, delta: 1, target: None },
            );
        }
        let max_zone_load = (0..zones)
            .map(|z| {
                let l = h.load(ZoneId(z));
                l.local + l.remote_in
            })
            .max()
            .unwrap_or(0);
        t.row_owned(vec![
            zones.to_string(),
            (zones * islands_per_zone).to_string(),
            h.root_lookups().to_string(),
            max_zone_load.to_string(),
            n_msgs.to_string(),
        ]);
    }
    t
}

/// Coordination overhead counters from a coordinated RUBiS run.
pub fn coordination_overhead(seed: u64) -> Table {
    let r = run_rubis(
        PolicyKind::RequestType,
        RubisScenario::read_write_mix(24),
        seed,
    );
    let mut t = Table::new(
        "Coordination overhead (60 s coordinated RUBiS run)",
        &["Metric", "Value"],
    );
    t.row_owned(vec![
        "Messages sent".into(),
        r.coord.messages_sent.to_string(),
    ]);
    t.row_owned(vec!["Wire bytes".into(), r.coord.bytes_sent.to_string()]);
    t.row_owned(vec![
        "Tunes applied".into(),
        r.coord.tunes_applied.to_string(),
    ]);
    t.row_owned(vec![
        "Msgs per request".into(),
        format!(
            "{:.2}",
            r.coord.messages_sent as f64 / r.rubis.completed.max(1) as f64
        ),
    ]);
    t
}

// ----------------------------------------------------------------------
// R1 / R2 — coordination under an unreliable channel
// ----------------------------------------------------------------------

/// R1: coordination benefit vs. message-loss rate. Table-1-style deltas
/// (mean RUBiS response time vs. the uncoordinated baseline) as the
/// coordination channel's drop probability sweeps 0 → 20%.
///
/// The expected shape: the baseline sends no coordination traffic, so it
/// is loss-invariant by construction; fire-and-forget coordination decays
/// toward (or past) the baseline as tunes are silently lost and the
/// policy's view of the communicated weights drifts from reality; ack/
/// retry recovers most of the lossless benefit at the cost of retransmit
/// traffic.
///
/// Response means under RUBiS are heavy-tailed (σ ≈ half the mean), so a
/// single run's mean moves several percent with the fault draws alone;
/// every cell averages `R1_SEEDS` independent seeds to isolate the loss
/// effect from that noise. Counter columns are per-run means.
pub fn reliability_r1(seed: u64) -> Table {
    const R1_SEEDS: u64 = 5;
    let scenario = RubisScenario::read_write_mix(24);
    let mut t = Table::new(
        "R1 — coordination benefit vs message-loss rate (RUBiS mean ms)",
        &[
            "loss %",
            "Base",
            "f&f",
            "ack/retry",
            "f&f change %",
            "ack change %",
            "drops",
            "retransmits",
            "gave up",
            "degraded s",
        ],
    );
    for loss in [0.0, 0.05, 0.10, 0.20] {
        let profile = FaultProfile::none().with_drop(loss);
        let (mut b, mut f, mut a) = (0.0, 0.0, 0.0);
        let (mut drops, mut retx, mut gave_up, mut degraded) = (0u64, 0u64, 0u64, 0.0f64);
        for s in seed..seed + R1_SEEDS {
            let base = run_rubis_faulty(PolicyKind::None, scenario, s, profile, None);
            let ff = run_rubis_faulty(PolicyKind::RequestType, scenario, s, profile, None);
            let ack = run_rubis_faulty(
                PolicyKind::RequestType,
                scenario,
                s,
                profile,
                Some(ReliableConfig::default()),
            );
            b += mean_response_ms(&base);
            f += mean_response_ms(&ff);
            a += mean_response_ms(&ack);
            drops += ff.coord.channel_drops + ack.coord.channel_drops;
            retx += ack.coord.retransmits;
            gave_up += ack.coord.gave_up;
            degraded += ack.coord.degraded_secs;
        }
        let n = R1_SEEDS as f64;
        let (b, f, a) = (b / n, f / n, a / n);
        let pct = |v: f64| {
            if b > 0.0 {
                format!("{:+.1}", (v / b - 1.0) * 100.0)
            } else {
                "0.0".into()
            }
        };
        t.row_owned(vec![
            format!("{:.0}", loss * 100.0),
            fmt(b),
            fmt(f),
            fmt(a),
            pct(f),
            pct(a),
            (drops / R1_SEEDS).to_string(),
            (retx / R1_SEEDS).to_string(),
            (gave_up / R1_SEEDS).to_string(),
            fmt(degraded / n),
        ]);
    }
    t
}

/// R2: ack/retry vs. fire-and-forget under combined loss, jitter, and
/// duplication — the full fault profile rather than R1's pure loss — with
/// the delivery-layer counters that explain the difference.
pub fn reliability_r2(seed: u64) -> Table {
    let scenario = RubisScenario::read_write_mix(24);
    let faults = FaultProfile::none()
        .with_drop(0.10)
        .with_dup(0.05)
        .with_jitter(Jitter::Exponential { mean: Nanos::from_micros(20) });
    let mut t = Table::new(
        "R2 — delivery strategy under loss + jitter + duplication (RUBiS)",
        &[
            "Variant",
            "mean ms",
            "msgs",
            "drops",
            "dups",
            "retransmits",
            "acked",
            "gave up",
            "dup suppressed",
            "degraded s",
        ],
    );
    let variants: [(&str, FaultProfile, Option<ReliableConfig>); 3] = [
        ("f&f, clean channel", FaultProfile::none(), None),
        ("f&f, faulty channel", faults, None),
        ("ack/retry, faulty channel", faults, Some(ReliableConfig::default())),
    ];
    for (name, profile, reliable) in variants {
        let r = run_rubis_faulty(PolicyKind::RequestType, scenario, seed, profile, reliable);
        t.row_owned(vec![
            name.to_owned(),
            fmt(mean_response_ms(&r)),
            r.coord.messages_sent.to_string(),
            r.coord.channel_drops.to_string(),
            r.coord.channel_dups.to_string(),
            r.coord.retransmits.to_string(),
            r.coord.acked.to_string(),
            r.coord.gave_up.to_string(),
            r.coord.dup_suppressed.to_string(),
            fmt(r.coord.degraded_secs),
        ]);
    }
    t
}

// ----------------------------------------------------------------------
// Adversarial tenants — price of anarchy
// ----------------------------------------------------------------------

fn run_rubis_adversarial(
    policy: PolicyKind,
    scenario: RubisScenario,
    seed: u64,
    advs: &[AdversarySpec],
    defenses: Option<PolicerConfig>,
) -> RunReport {
    let mut b = PlatformBuilder::new()
        .seed(seed)
        .policy(policy)
        .adversaries(advs.to_vec());
    if let Some(cfg) = defenses {
        b = b.coord_defenses(cfg);
    }
    let mut sim = b.build_rubis(scenario);
    timed_run(&mut sim, sim_secs(RUBIS_SECS))
}

/// The strategy mix for `n` adversarial tenants: inflater, spammer,
/// free-rider, repeating.
fn adversary_mix(n: usize) -> Vec<AdversarySpec> {
    (0..n)
        .map(|i| match i % 3 {
            0 => AdversarySpec::inflate(),
            1 => AdversarySpec::spam(),
            _ => AdversarySpec::free_ride(),
        })
        .collect()
}

/// A1 (adversarial): price-of-anarchy sweep. Each row adds strategic
/// tenants (inflater / Trigger-spammer / free-rider mix) to the RUBiS
/// platform and compares five worlds on mean response time:
///
/// * **honest** — coordinated, zero extra tenants (computed once;
///   repeated per row so the CSV is self-contained);
/// * **honest+load** — the same tenant population behaving honestly:
///   every extra tenant runs its CPU load but games nothing. This is the
///   cooperative counterfactual of the same game, and the baseline the
///   recovery metric uses — a tenant's fair-share consumption is
///   legitimate, so only the damage its *strategic behavior* adds on top
///   counts as the gap;
/// * **non-coop** — no coordination policy at all, adversaries present:
///   the non-cooperative equilibrium;
/// * **coord** — the request-type policy running undefended while the
///   adversaries game the same Tune/Trigger channel;
/// * **coord+def** — the same policy with [`PolicerConfig`] defenses
///   (per-entity rate limits + reputation-weighted discounting).
///
/// The *price of anarchy* column is `non-coop / honest+load` — worst
/// equilibrium over cooperative outcome for the same set of players —
/// and *recovered %* is [`summary::gap_recovered`] × 100 over
/// (honest+load, coord, coord+def): the share of the gap the gaming
/// opens (within coordinated runs) that the defenses claw back.
/// Adversarial congestion is heavy-tailed, so every cell averages
/// `A1_SEEDS` independent seeds; counter columns are per-run means from
/// the defended runs.
pub fn anarchy_a1(seed: u64) -> Table {
    const A1_SEEDS: u64 = 3;
    let scenario = RubisScenario::read_write_mix(24);
    let mut t = Table::new(
        "A1 — price of anarchy vs strategic tenants (RUBiS mean ms)",
        &[
            "adversaries",
            "honest",
            "honest+load",
            "non-coop",
            "coord",
            "coord+def",
            "PoA",
            "recovered %",
            "throttled",
            "discounted",
        ],
    );
    let honest: f64 = (seed..seed + A1_SEEDS)
        .map(|s| mean_response_ms(&run_rubis(PolicyKind::RequestType, scenario, s)))
        .sum::<f64>()
        / A1_SEEDS as f64;
    for n in [0usize, 1, 2, 4] {
        let advs = adversary_mix(n);
        // The cooperative counterfactual: same tenant count, all honest
        // (free-riders consume CPU but send nothing).
        let well_behaved: Vec<AdversarySpec> =
            (0..n).map(|_| AdversarySpec::free_ride()).collect();
        let (mut load, mut nc, mut co, mut de) = (0.0, 0.0, 0.0, 0.0);
        let (mut throttled, mut discounted) = (0u64, 0u64);
        for s in seed..seed + A1_SEEDS {
            load += mean_response_ms(&run_rubis_adversarial(
                PolicyKind::RequestType,
                scenario,
                s,
                &well_behaved,
                None,
            ));
            let noncoop = run_rubis_adversarial(PolicyKind::None, scenario, s, &advs, None);
            let coord =
                run_rubis_adversarial(PolicyKind::RequestType, scenario, s, &advs, None);
            let defended = run_rubis_adversarial(
                PolicyKind::RequestType,
                scenario,
                s,
                &advs,
                Some(PolicerConfig::default()),
            );
            nc += mean_response_ms(&noncoop);
            co += mean_response_ms(&coord);
            de += mean_response_ms(&defended);
            throttled += defended.coord.throttled;
            discounted += defended.coord.discounted;
        }
        let k = A1_SEEDS as f64;
        let (load, nc, co, de) = (load / k, nc / k, co / k, de / k);
        let poa = if load > 0.0 { nc / load } else { 0.0 };
        let recovered = summary::gap_recovered(load, co, de);
        t.row_owned(vec![
            n.to_string(),
            fmt(honest),
            fmt(load),
            fmt(nc),
            fmt(co),
            fmt(de),
            format!("{poa:.2}"),
            format!("{:.1}", recovered * 100.0),
            (throttled / A1_SEEDS).to_string(),
            (discounted / A1_SEEDS).to_string(),
        ]);
    }
    t
}

// ----------------------------------------------------------------------
// Inference — the third scheduling island
// ----------------------------------------------------------------------

fn run_inference(policy: PolicyKind, scenario: InferenceScenario, seed: u64) -> RunReport {
    let mut sim = PlatformBuilder::new()
        .seed(seed)
        .policy(policy)
        .build_inference(scenario);
    timed_run(&mut sim, sim_secs(INFER_SECS))
}

/// I1: coordinated vs uncoordinated batch tuning under a mixed-SLA tenant
/// population. The InferenceBatch policy leans interactive tenants toward
/// small batches and larger queue weights (and batch tenants the other
/// way); the claim is the Figure 4 shape transplanted to the third
/// island — latency-tenant p99 drops without giving up batch goodput.
pub fn inference_i1(seed: u64) -> Table {
    let scenario = InferenceScenario::mixed_tenants();
    let base = run_inference(PolicyKind::None, scenario.clone(), seed);
    let coord = run_inference(PolicyKind::InferenceBatch, scenario, seed);
    let mut t = Table::new(
        "I1 — coordinated batch tuning on the accelerator island",
        &[
            "tenant",
            "class",
            "Base p99 ms",
            "Coord p99 ms",
            "p99 change %",
            "Base goodput/s",
            "Coord goodput/s",
            "Base mean batch",
            "Coord mean batch",
        ],
    );
    let secs = |r: &RunReport| r.duration.as_secs_f64().max(1e-9);
    for tb in &base.accel.tenants {
        let Some(tc) = coord.accel.tenant(&tb.name) else { continue };
        let p99b = base.rubis.responses.percentile(&tb.name, 0.99);
        let p99c = coord.rubis.responses.percentile(&tb.name, 0.99);
        let pct = if p99b > 0.0 { (p99c / p99b - 1.0) * 100.0 } else { 0.0 };
        t.row_owned(vec![
            tb.name.clone(),
            if tb.latency_sensitive { "latency".into() } else { "throughput".into() },
            format!("{p99b:.1}"),
            format!("{p99c:.1}"),
            format!("{pct:+.1}"),
            format!("{:.1}", tb.completed as f64 / secs(&base)),
            format!("{:.1}", tc.completed as f64 / secs(&coord)),
            format!("{:.2}", tb.mean_batch),
            format!("{:.2}", tc.mean_batch),
        ]);
    }
    t
}

/// I2: trigger-based batch preemption (the Figure 7 / Table 3 analogue on
/// the accelerator). A device-queue occupancy alarm on the interactive
/// tenant raises a Trigger that preempts the forming batch; the gain is
/// the alarmed tenant's tail, the cost is the colocated batch tenants'
/// batch efficiency.
pub fn inference_i2(seed: u64) -> Table {
    let scenario = InferenceScenario::trigger_setup();
    let base = run_inference(PolicyKind::None, scenario.clone(), seed);
    let coord = run_inference(PolicyKind::BufferTrigger, scenario, seed);
    let mut t = Table::new(
        "I2 — trigger-based batch preemption vs colocated cost",
        &["Metric", "no-coord", "coord-trigger", "% change"],
    );
    let pct = |b: f64, c: f64| {
        if b.abs() > 1e-12 { format!("{:+.2}", (c / b - 1.0) * 100.0) } else { "0.00".into() }
    };
    for tb in &base.accel.tenants {
        let Some(tc) = coord.accel.tenant(&tb.name) else { continue };
        let (qb, qc) = (tb.queue_p99_ms, tc.queue_p99_ms);
        t.row_owned(vec![
            format!("{} queue p99 ms", tb.name),
            format!("{qb:.2}"),
            format!("{qc:.2}"),
            pct(qb, qc),
        ]);
        let (bb, bc) = (tb.mean_batch, tc.mean_batch);
        t.row_owned(vec![
            format!("{} mean batch", tb.name),
            format!("{bb:.2}"),
            format!("{bc:.2}"),
            pct(bb, bc),
        ]);
    }
    let preempt = |r: &RunReport| r.accel.tenants.iter().map(|t| t.preemptions).sum::<u64>();
    let alarms = |r: &RunReport| r.accel.tenants.iter().map(|t| t.alarms).sum::<u64>();
    t.row_owned(vec![
        "Queue alarms".into(),
        alarms(&base).to_string(),
        alarms(&coord).to_string(),
        String::new(),
    ]);
    t.row_owned(vec![
        "Triggers applied".into(),
        base.coord.triggers_applied.to_string(),
        coord.coord.triggers_applied.to_string(),
        String::new(),
    ]);
    t.row_owned(vec![
        "Batches preempted".into(),
        preempt(&base).to_string(),
        preempt(&coord).to_string(),
        String::new(),
    ]);
    t
}

// ----------------------------------------------------------------------
// E1 / E2 — energy under QoS (the coordinated energy dimension)
// ----------------------------------------------------------------------

/// Seeds averaged per energy cell. Joules integrate utilisation over the
/// whole run, so they are steadier than response means, but the p99
/// constraint check still inherits the arrival draws' tail noise.
const E_SEEDS: u64 = 3;

/// The iso-QoS constraint every energy arm is held to (worst per-tenant
/// p99, milliseconds). Sub-second, but far enough above the unmanaged
/// tail that the controller has rungs to walk: the knob ladder is coarse
/// (one DVFS step stretches service times ~18%, and queueing amplifies
/// it), so a target hugging the baseline p99 leaves no safe rung and the
/// controller correctly refuses to move.
const E_TARGET_MS: f64 = 800.0;

/// Client population for the energy runs. Lighter than the Table-1 mix
/// on purpose: the energy question is only interesting when the platform
/// has QoS headroom to trade — at saturation the controller (correctly)
/// refuses to move and every arm collapses onto the baseline.
const E_CLIENTS: u32 = 8;

/// Worst per-request-type p99 in milliseconds — the whole-run analogue
/// of the signal the energy controller samples per decision window.
/// Types with fewer than five completions are skipped (a p99 over three
/// samples is noise, and the controller ignores them too).
fn worst_p99_ms(r: &RunReport) -> f64 {
    let mut worst = r.rubis.responses.overall_percentile(0.99);
    for (name, s) in r.rubis.responses.iter() {
        if s.count() >= 5 {
            worst = worst.max(r.rubis.responses.percentile(name, 0.99));
        }
    }
    worst
}

/// One energy arm: RUBiS under the RequestType policy with the given
/// energy dimension and (optionally) a power cap on top.
fn run_rubis_energy(
    scenario: RubisScenario,
    seed: u64,
    energy: EnergyConfig,
    cap: Option<(f64, PowerStrategy)>,
) -> RunReport {
    let mut b = PlatformBuilder::new()
        .seed(seed)
        .policy(PolicyKind::RequestType)
        .energy(energy);
    if let Some((w, s)) = cap {
        b = b.power_cap(w, s);
    }
    let mut sim = b.build_rubis(scenario);
    timed_run(&mut sim, sim_secs(RUBIS_SECS))
}

/// Seed-averaged accounting for one energy arm. `p99_ms` is the *worst*
/// seed's worst per-type p99 — the iso-QoS claim has to hold on every
/// seed, not on average.
struct EnergyArm {
    joules: f64,
    mean_watts: f64,
    p99_ms: f64,
    violations: u64,
    knob_actions: u64,
    descents: u64,
    backoffs: u64,
    final_dvfs: u32,
    final_ways: u32,
    final_membw: u32,
}

fn energy_arm(
    scenario: RubisScenario,
    seed: u64,
    energy: EnergyConfig,
    cap: Option<(f64, PowerStrategy)>,
) -> EnergyArm {
    let mut a = EnergyArm {
        joules: 0.0,
        mean_watts: 0.0,
        p99_ms: 0.0,
        violations: 0,
        knob_actions: 0,
        descents: 0,
        backoffs: 0,
        final_dvfs: 0,
        final_ways: 0,
        final_membw: 0,
    };
    for s in seed..seed + E_SEEDS {
        let r = run_rubis_energy(scenario, s, energy, cap.clone());
        let secs = r.duration.as_secs_f64().max(1e-9);
        a.joules += r.energy.total_joules();
        a.mean_watts += r.energy.total_joules() / secs;
        a.p99_ms = a.p99_ms.max(worst_p99_ms(&r));
        a.violations += r.energy.violations;
        a.knob_actions += r.energy.knob_actions;
        a.descents += r.energy.descents;
        a.backoffs += r.energy.backoffs;
        if s == seed {
            // Final operating points are reported from the first seed;
            // they are a qualitative "where did the walk settle" signal,
            // not an average.
            a.final_dvfs = r.energy.final_dvfs_percent;
            a.final_ways = r.energy.final_ways;
            a.final_membw = r.energy.final_membw_percent;
        }
    }
    let k = E_SEEDS as f64;
    a.joules /= k;
    a.mean_watts /= k;
    a
}

/// E1: energy saved at iso-p99 — the QoS-constrained coordinated energy
/// controller vs uncoordinated power capping.
///
/// All three arms meter energy through the *same* power model (the two
/// baselines use [`EnergyConfig::frozen`], which enables the metering and
/// the uncore terms but pins every knob at full performance), so the
/// joules columns are directly comparable. The capping arm reacts to
/// *watts* with per-domain CPU caps and no QoS feedback: it only saves
/// energy by throttling whoever is biggest, and pays for it in tail
/// latency. The coordinated arm walks the DVFS/cache/bandwidth lattice
/// downward only while the worst per-tenant p99 holds under the target,
/// backing off on violations — energy falls *and* the constraint holds.
pub fn energy_e1(seed: u64) -> Table {
    let scenario = RubisScenario::read_write_mix(E_CLIENTS);
    let mut t = Table::new(
        "E1 — energy under a p99 QoS target: coordinated knobs vs uncoordinated capping",
        &[
            "Config",
            "joules",
            "mean W",
            "worst p99 ms",
            "p99 under target",
            "violations",
            "knob actions",
        ],
    );
    let mut row = |label: &str, a: EnergyArm| {
        t.row_owned(vec![
            label.into(),
            fmt(a.joules),
            fmt(a.mean_watts),
            fmt(a.p99_ms),
            yesno(a.p99_ms <= E_TARGET_MS),
            (a.violations / E_SEEDS).to_string(),
            (a.knob_actions / E_SEEDS).to_string(),
        ]);
    };
    row(
        "no management",
        energy_arm(scenario, seed, EnergyConfig::frozen(E_TARGET_MS), None),
    );
    // Two capping arms bracket the coordinated one: a mild cap that
    // happens to hold the tail but barely saves energy, and a cap sized
    // to the coordinated arm's power draw that — lacking any QoS
    // feedback — blows the tail out by an order of magnitude.
    row(
        "uncoordinated cap 105W",
        energy_arm(
            scenario,
            seed,
            EnergyConfig::frozen(E_TARGET_MS),
            Some((105.0, PowerStrategy::BiggestConsumer)),
        ),
    );
    row(
        "uncoordinated cap 90W",
        energy_arm(
            scenario,
            seed,
            EnergyConfig::frozen(E_TARGET_MS),
            Some((90.0, PowerStrategy::BiggestConsumer)),
        ),
    );
    row(
        "coordinated energy",
        energy_arm(scenario, seed, EnergyConfig::coordinated(E_TARGET_MS), None),
    );
    t
}

/// E2: the three-knob ablation — each knob alone vs all three
/// coordinated, at the same QoS target.
///
/// A disabled axis is a one-rung ladder the controller can never step,
/// so each single-knob arm is the same controller walking a shorter
/// lattice. The claim is superadditivity in reach, not in rate: DVFS
/// alone strands the uncore power the cache/bandwidth knobs reclaim (and
/// vice versa), so the coordinated walk settles at lower power than any
/// single axis can reach — under the same p99 constraint.
pub fn energy_e2(seed: u64) -> Table {
    let scenario = RubisScenario::read_write_mix(E_CLIENTS);
    let mut t = Table::new(
        "E2 — knob ablation at iso-QoS: each axis alone vs coordinated",
        &[
            "Config",
            "joules",
            "saved %",
            "worst p99 ms",
            "descents",
            "backoffs",
            "final dvfs %",
            "final ways",
            "final membw %",
        ],
    );
    let frozen = energy_arm(scenario, seed, EnergyConfig::frozen(E_TARGET_MS), None);
    let baseline_joules = frozen.joules;
    let mut row = |label: &str, a: EnergyArm| {
        let saved = if baseline_joules > 0.0 {
            (1.0 - a.joules / baseline_joules) * 100.0
        } else {
            0.0
        };
        t.row_owned(vec![
            label.into(),
            fmt(a.joules),
            format!("{saved:.1}"),
            fmt(a.p99_ms),
            (a.descents / E_SEEDS).to_string(),
            (a.backoffs / E_SEEDS).to_string(),
            a.final_dvfs.to_string(),
            a.final_ways.to_string(),
            a.final_membw.to_string(),
        ]);
    };
    row("frozen (all knobs pinned)", frozen);
    row(
        "dvfs only",
        energy_arm(scenario, seed, EnergyConfig::dvfs_only(E_TARGET_MS), None),
    );
    row(
        "cache ways only",
        energy_arm(scenario, seed, EnergyConfig::cache_only(E_TARGET_MS), None),
    );
    row(
        "membw share only",
        energy_arm(scenario, seed, EnergyConfig::membw_only(E_TARGET_MS), None),
    );
    row(
        "coordinated (all three)",
        energy_arm(scenario, seed, EnergyConfig::coordinated(E_TARGET_MS), None),
    );
    t
}

// ----------------------------------------------------------------------
// F1 / F2 — fleet-scale sharded worlds
// ----------------------------------------------------------------------

static FLEET_SHARDS: AtomicU64 = AtomicU64::new(12);
static FLEET_RUNS: AtomicU64 = AtomicU64::new(0);
static FLEET_SHARD_SLICES: AtomicU64 = AtomicU64::new(0);
static FLEET_EVENTS: AtomicU64 = AtomicU64::new(0);
static FLEET_OFFERED: AtomicU64 = AtomicU64::new(0);
static FLEET_ADMITTED: AtomicU64 = AtomicU64::new(0);
static FLEET_REJECTED: AtomicU64 = AtomicU64::new(0);
static FLEET_FRAMES_SENT: AtomicU64 = AtomicU64::new(0);
static FLEET_DELIVERED: AtomicU64 = AtomicU64::new(0);
static FLEET_REORDERED: AtomicU64 = AtomicU64::new(0);
static FLEET_LATE: AtomicU64 = AtomicU64::new(0);
static FLEET_TUNES_L0: AtomicU64 = AtomicU64::new(0);
static FLEET_TUNES_L1: AtomicU64 = AtomicU64::new(0);
static FLEET_TUNES_L2: AtomicU64 = AtomicU64::new(0);
static FLEET_PER_SHARD_EVENTS: Mutex<Vec<u64>> = Mutex::new(Vec::new());

/// Simulated seconds per fleet slice (smoke-capped like every run).
/// Sized with [`F1_SLICES`] so the full F1 sweep — one baseline plus
/// nine coordinated fleets — dispatches over 100M island events at the
/// default 12-shard fleet (~740 events per shard-second).
const F1_SLICE_SECS: u64 = 300;

/// Coordination rounds (slices) per fleet run. The first slice runs on
/// uniform caps for both arms, so the coordinated arm's benefit has to
/// materialise — and be measured — over the remaining rounds.
const F1_SLICES: u32 = 4;

/// Overrides the shard count of the fleet experiments (`--shards N`);
/// clamped to 2..=64 (rebalancing needs a pair, and the ncpus/load
/// cycles repeat every 3 shards).
pub fn set_fleet_shards(n: u16) {
    FLEET_SHARDS.store(n.clamp(2, 64) as u64, Ordering::Relaxed);
}

/// The configured fleet shard count (default 12).
pub fn fleet_shards() -> u16 {
    FLEET_SHARDS.load(Ordering::Relaxed) as u16
}

/// Fleet-level totals accumulated across every fleet run in this
/// process — the `fleet` block of `results/BENCH_experiments.json`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetTotals {
    /// Fleet runs executed.
    pub runs: u64,
    /// Shard slices simulated (shards × slices, summed over runs).
    pub shard_slices: u64,
    /// Island events dispatched inside fleet shards.
    pub events: u64,
    /// Sessions offered at the admission doors.
    pub offered: u64,
    /// Sessions admitted.
    pub admitted: u64,
    /// Sessions rejected.
    pub rejected: u64,
    /// Envelope frames first-transmitted on the buses.
    pub frames_sent: u64,
    /// Envelopes delivered.
    pub delivered: u64,
    /// Deliveries the wire reordered.
    pub reordered: u64,
    /// Deliveries arriving a round late.
    pub late: u64,
    /// Cap moves by tree level (node group, rack, fleet root).
    pub tunes: [u64; 3],
    /// Per-shard event totals, indexed by shard id.
    pub per_shard_events: Vec<u64>,
}

/// The fleet totals accumulated so far (reset by
/// [`reset_sim_rate_totals`]).
pub fn fleet_totals() -> FleetTotals {
    FleetTotals {
        runs: FLEET_RUNS.load(Ordering::Relaxed),
        shard_slices: FLEET_SHARD_SLICES.load(Ordering::Relaxed),
        events: FLEET_EVENTS.load(Ordering::Relaxed),
        offered: FLEET_OFFERED.load(Ordering::Relaxed),
        admitted: FLEET_ADMITTED.load(Ordering::Relaxed),
        rejected: FLEET_REJECTED.load(Ordering::Relaxed),
        frames_sent: FLEET_FRAMES_SENT.load(Ordering::Relaxed),
        delivered: FLEET_DELIVERED.load(Ordering::Relaxed),
        reordered: FLEET_REORDERED.load(Ordering::Relaxed),
        late: FLEET_LATE.load(Ordering::Relaxed),
        tunes: [
            FLEET_TUNES_L0.load(Ordering::Relaxed),
            FLEET_TUNES_L1.load(Ordering::Relaxed),
            FLEET_TUNES_L2.load(Ordering::Relaxed),
        ],
        per_shard_events: FLEET_PER_SHARD_EVENTS.lock().unwrap().clone(),
    }
}

fn record_fleet(r: &FleetReport) {
    FLEET_RUNS.fetch_add(1, Ordering::Relaxed);
    FLEET_SHARD_SLICES
        .fetch_add(r.shards as u64 * r.slices as u64, Ordering::Relaxed);
    FLEET_EVENTS.fetch_add(r.total_events(), Ordering::Relaxed);
    let (o, a, rej) = r.sessions();
    FLEET_OFFERED.fetch_add(o, Ordering::Relaxed);
    FLEET_ADMITTED.fetch_add(a, Ordering::Relaxed);
    FLEET_REJECTED.fetch_add(rej, Ordering::Relaxed);
    for b in [&r.fleet_bus, &r.rack_bus] {
        FLEET_FRAMES_SENT.fetch_add(b.frames_sent, Ordering::Relaxed);
        FLEET_DELIVERED.fetch_add(b.delivered, Ordering::Relaxed);
        FLEET_REORDERED.fetch_add(b.reordered, Ordering::Relaxed);
        FLEET_LATE.fetch_add(b.late, Ordering::Relaxed);
    }
    FLEET_TUNES_L0.fetch_add(r.tunes[0], Ordering::Relaxed);
    FLEET_TUNES_L1.fetch_add(r.tunes[1], Ordering::Relaxed);
    FLEET_TUNES_L2.fetch_add(r.tunes[2], Ordering::Relaxed);
    let mut per = FLEET_PER_SHARD_EVENTS.lock().unwrap();
    if per.len() < r.per_shard.len() {
        per.resize(r.per_shard.len(), 0);
    }
    for s in &r.per_shard {
        per[s.shard as usize] += s.events;
    }
}

/// The heterogeneous fleet the F-experiments run: ncpus cycle 3/2/1 and
/// every shard's open-loop offered load exceeds the base admission cap
/// (erlangs 96/48/64 against a cap of 48), so uniform caps melt the weak
/// shards and cap-rebalancing has real work to do.
fn fleet_plans(shards: u16) -> Vec<ShardPlan> {
    (0..shards)
        .map(|s| ShardPlan {
            shard: s,
            ncpus: [3, 2, 1][s as usize % 3],
            load: SessionLoad {
                arrivals_per_sec: [12.0, 6.0, 8.0][s as usize % 3],
                mean_session_secs: 8.0,
            },
        })
        .collect()
}

/// Fleet configuration shared by the F-experiments: admission caps start
/// uniform at 48 concurrent sessions per shard (clamped to 8..=96), a
/// rebalance corrects half the pressure imbalance per round, and every
/// coordination round waits 2 ms for envelopes before acting.
pub fn fleet_cfg(seed: u64, shards: u16, depth: u8, bus: BusConfig, coordinated: bool) -> FleetConfig {
    FleetConfig {
        topo: FleetTopology::new(shards, depth, 4),
        bus,
        coordinated,
        base_cap: 48,
        min_cap: 8,
        max_cap: 96,
        gain: 0.5,
        window: Nanos::from_millis(2),
        seed,
    }
}

/// Runs one fleet: `slices` coordination rounds of `slice_secs` simulated
/// seconds (smoke-capped), each round fanning the shard builds across
/// `jobs` scoped pool threads and merging reports in shard order. The
/// returned report is a pure function of `(cfg, slices, slice_secs)` —
/// `jobs` must not affect a byte of it, which is exactly what F2 and the
/// ci.sh byte-compare assert.
pub fn run_fleet(cfg: FleetConfig, slices: u32, slice_secs: u64, jobs: usize) -> FleetReport {
    let mut state = FleetState::new(cfg, fleet_plans(cfg.topo.shards));
    for slice in 0..slices {
        let specs = state.specs(slice, sim_secs(slice_secs));
        let reports = pool::parallel_map(jobs, specs, |spec| {
            let mut sim = spec.build();
            timed_run(&mut sim, spec.duration)
        });
        state.absorb(&reports);
    }
    let r = state.report();
    record_fleet(&r);
    r
}

/// The three cross-node bus conditions F1 sweeps. The coordination
/// window is 2 ms, so `fast` envelopes land in their own round, `slow`
/// ones land one round stale, and `lossy` adds 25% frame loss on top —
/// first transmissions that die wait out a 3×-latency retransmit timer
/// and arrive several rounds stale, if at all.
fn f1_buses(base_latency: Nanos) -> Vec<(&'static str, BusConfig)> {
    let reliable = |latency: Nanos| ReliableConfig {
        ack_timeout: Nanos::from_nanos(latency.as_nanos() * 3),
        ..ReliableConfig::default()
    };
    let fast = BusConfig {
        latency: base_latency,
        fault: FaultProfile::none(),
        reliable: reliable(base_latency),
    };
    let slow_lat = Nanos::from_nanos(base_latency.as_nanos() * 30);
    let slow = BusConfig {
        latency: slow_lat,
        fault: FaultProfile::none(),
        reliable: reliable(slow_lat),
    };
    let lossy = BusConfig {
        latency: slow_lat,
        fault: FaultProfile::none().with_drop(0.25),
        reliable: reliable(slow_lat),
    };
    vec![("fast 100us", fast), ("slow 3ms", slow), ("lossy 3ms/25%", lossy)]
}

/// F1: fleet-scale coordination benefit vs tree depth × cross-node bus
/// quality. One uncoordinated baseline (caps pinned at 48 — bus-
/// invariant by construction, repeated per bus block so the CSV is
/// self-contained) against coordinated fleets at depth 1 (flat, all
/// rebalancing over the cross-node bus), 2 (racks rebalance locally over
/// 8×-faster intra-rack lanes) and 3 (node-group pre-balance under the
/// racks). The expected shape: coordination beats the baseline
/// everywhere the envelopes arrive, the flat tree degrades hardest as
/// the cross-node bus slows and loses frames, and deeper trees hold
/// most of their benefit because rack-local rebalancing never leaves
/// the building.
pub fn fleet_f1(seed: u64) -> Table {
    let shards = fleet_shards();
    let jobs = pool::default_jobs();
    let mut t = Table::new(
        "F1 — fleet coordination benefit vs tree depth x cross-node bus",
        &[
            "bus",
            "depth",
            "arm",
            "events",
            "offered",
            "adm %",
            "X (req/s)",
            "mean ms",
            "vs base %",
            "late %",
            "tunes l0/l1/l2",
            "drops",
        ],
    );
    let base = run_fleet(
        fleet_cfg(seed, shards, 1, BusConfig::perfect(Nanos::from_micros(100)), false),
        F1_SLICES,
        F1_SLICE_SECS,
        jobs,
    );
    let mut row = |bus: &str, depth: &str, arm: &str, r: &FleetReport| {
        let (offered, admitted, _) = r.sessions();
        let adm = if offered > 0 { admitted as f64 * 100.0 / offered as f64 } else { 0.0 };
        let vs = if base.mean_ms() > 0.0 {
            (r.mean_ms() / base.mean_ms() - 1.0) * 100.0
        } else {
            0.0
        };
        let delivered = r.fleet_bus.delivered + r.rack_bus.delivered;
        let late = r.fleet_bus.late + r.rack_bus.late;
        let late_pct =
            if delivered > 0 { late as f64 * 100.0 / delivered as f64 } else { 0.0 };
        t.row_owned(vec![
            bus.to_owned(),
            depth.to_owned(),
            arm.to_owned(),
            r.total_events().to_string(),
            offered.to_string(),
            fmt(adm),
            fmt(r.throughput()),
            fmt(r.mean_ms()),
            format!("{vs:+.1}"),
            fmt(late_pct),
            format!("{}/{}/{}", r.tunes[0], r.tunes[1], r.tunes[2]),
            (r.fleet_bus.channel_drops
                + r.rack_bus.channel_drops
                + r.fleet_bus.partition_drops
                + r.rack_bus.partition_drops)
                .to_string(),
        ]);
    };
    for (bus_label, bus) in f1_buses(Nanos::from_micros(100)) {
        row(bus_label, "-", "base", &base);
        for depth in 1..=3u8 {
            let r = run_fleet(
                fleet_cfg(seed, shards, depth, bus, true),
                F1_SLICES,
                F1_SLICE_SECS,
                jobs,
            );
            row(bus_label, &depth.to_string(), "coord", &r);
        }
    }
    t
}

/// F2: shard determinism. The same lossy depth-2 fleet runs with the
/// shard pool on 1 worker, on 4 workers, and once more on 1 worker (the
/// replay); every run must land on the same [`FleetReport::digest`] —
/// same events, same sessions, same bus counters, bit for bit. The
/// digest is over [`FleetReport::canonical`], which excludes every
/// wall-clock and host-configuration field.
pub fn fleet_f2(seed: u64) -> Table {
    let shards = fleet_shards().min(6);
    let bus = f1_buses(Nanos::from_micros(100))
        .pop()
        .expect("bus sweep is non-empty")
        .1;
    let cfg = fleet_cfg(seed, shards, 2, bus, true);
    let mut t = Table::new(
        "F2 — N-shard replay bit-identity across thread counts",
        &["run", "shards", "depth", "events", "completed", "digest", "matches jobs=1"],
    );
    let runs = [("jobs=1", 1usize), ("jobs=4", 4), ("replay jobs=1", 1)];
    let mut first: Option<u64> = None;
    for (label, jobs) in runs {
        let r = run_fleet(cfg, 2, 20, jobs);
        let digest = r.digest();
        let reference = *first.get_or_insert(digest);
        let completed: u64 = r.per_shard.iter().map(|s| s.completed).sum();
        t.row_owned(vec![
            label.to_owned(),
            r.shards.to_string(),
            r.depth.to_string(),
            r.total_events().to_string(),
            completed.to_string(),
            format!("{digest:016x}"),
            yesno(digest == reference),
        ]);
    }
    t
}

// ----------------------------------------------------------------------
// Experiment registry
// ----------------------------------------------------------------------

/// Independently runnable experiment units, in paper order. Each id maps
/// to one [`run_experiment`] call; `fig7` renders two tables from its one
/// pair of runs.
pub fn experiment_ids() -> &'static [&'static str] {
    &[
        "fig2",
        "table1",
        "fig4",
        "fig4_browsing",
        "table2",
        "fig5",
        "fig6",
        "fig7",
        "table3",
        "a1_channel_latency",
        "a2_hysteresis",
        "a3_notification",
        "a4_ixp_threads",
        "a5_trigger_rate",
        "a6_accounting_mode",
        "a1_price_of_anarchy",
        "p1_power_capping",
        "s1_fabric_scalability",
        "r1_loss_sweep",
        "r2_reliability",
        "i1_inference_batching",
        "i2_batch_preemption",
        "e1_energy_qos",
        "e2_energy_ablation",
        "f1_fleet_scale",
        "f2_fleet_determinism",
        "overhead",
    ]
}

/// Runs one experiment unit with the given seed, returning its `(slug,
/// table)` pairs (slugs name the CSV files). `None` for an unknown id.
pub fn run_experiment(id: &str, seed: u64) -> Option<Vec<(String, Table)>> {
    fn one(slug: &str, t: Table) -> Option<Vec<(String, Table)>> {
        Some(vec![(slug.to_owned(), t)])
    }
    match id {
        "fig2" => one("fig2", fig2(seed)),
        "table1" => one("table1", table1(seed)),
        "fig4" => one("fig4", fig4(seed)),
        "fig4_browsing" => one("fig4_browsing", fig4_browsing(seed)),
        "table2" => one("table2", table2(seed)),
        "fig5" => one("fig5", fig5(seed)),
        "fig6" => one("fig6", fig6(seed)),
        "fig7" => {
            let (series, summary) = fig7(seed);
            Some(vec![
                ("fig7_series".to_owned(), series),
                ("fig7_summary".to_owned(), summary),
            ])
        }
        "table3" => one("table3", table3(seed)),
        "a1_channel_latency" => one("a1_channel_latency", ablation_a1(seed)),
        "a2_hysteresis" => one("a2_hysteresis", ablation_a2(seed)),
        "a3_notification" => one("a3_notification", ablation_a3(seed)),
        "a4_ixp_threads" => one("a4_ixp_threads", ablation_a4(seed)),
        "a5_trigger_rate" => one("a5_trigger_rate", ablation_a5(seed)),
        "a6_accounting_mode" => one("a6_accounting_mode", ablation_a6(seed)),
        "a1_price_of_anarchy" => one("a1_price_of_anarchy", anarchy_a1(seed)),
        "p1_power_capping" => one("p1_power_capping", extension_p1(seed)),
        "s1_fabric_scalability" => one("s1_fabric_scalability", extension_s1(seed)),
        "r1_loss_sweep" => one("r1_loss_sweep", reliability_r1(seed)),
        "r2_reliability" => one("r2_reliability", reliability_r2(seed)),
        "i1_inference_batching" => one("i1_inference_batching", inference_i1(seed)),
        "i2_batch_preemption" => one("i2_batch_preemption", inference_i2(seed)),
        "e1_energy_qos" => one("e1_energy_qos", energy_e1(seed)),
        "e2_energy_ablation" => one("e2_energy_ablation", energy_e2(seed)),
        "f1_fleet_scale" => one("f1_fleet_scale", fleet_f1(seed)),
        "f2_fleet_determinism" => one("f2_fleet_determinism", fleet_f2(seed)),
        "overhead" => one("overhead", coordination_overhead(seed)),
        _ => None,
    }
}

/// Runs the given experiment units on up to `jobs` workers and returns
/// their tables merged in submission order — byte-identical to a serial
/// run with the same seed.
pub fn run_experiments(jobs: usize, ids: Vec<&str>, seed: u64) -> Vec<(String, Table)> {
    pool::parallel_map(jobs, ids, |id| {
        run_experiment(id, seed).unwrap_or_else(|| panic!("unknown experiment id '{id}'"))
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Everything, in paper order, on one worker with the default seed.
/// Returns `(slug, table)` pairs; slugs name the CSV files.
pub fn all_experiments() -> Vec<(String, Table)> {
    run_experiments(1, experiment_ids().to_vec(), SEED)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Parses a table's CSV into rows of cells, headers dropped.
    fn csv_rows(t: &Table) -> Vec<Vec<String>> {
        t.to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_owned).collect())
            .collect()
    }

    fn num(cell: &str) -> f64 {
        cell.parse::<f64>()
            .unwrap_or_else(|_| panic!("cell '{cell}' is not numeric"))
    }

    #[test]
    fn fmt_renders_one_decimal() {
        assert_eq!(fmt(3.15159), "3.2");
        assert_eq!(fmt(0.0), "0.0");
        assert_eq!(fmt(99.95), "100.0");
    }

    #[test]
    fn yesno_renders_verdicts() {
        assert_eq!(yesno(true), "yes");
        assert_eq!(yesno(false), "NO");
    }

    #[test]
    fn fig2_rows_have_ordered_summary_statistics() {
        let t = fig2(SEED);
        assert!(!t.is_empty(), "fig2 reports at least one request type");
        for row in csv_rows(&t) {
            assert_eq!(row.len(), 7, "type,min,max,mean,sd,p95,p99");
            let (min, max, mean, sd) = (num(&row[1]), num(&row[2]), num(&row[3]), num(&row[4]));
            let (p95, p99) = (num(&row[5]), num(&row[6]));
            assert!(min <= mean + 0.05 && mean <= max + 0.05, "{row:?}");
            assert!(sd >= 0.0, "{row:?}");
            // The percentiles come from a log-bucketed histogram, so they
            // report bucket upper edges and may exceed the exact max; only
            // their ordering is guaranteed.
            assert!(p95 <= p99 + 0.05 && p99 > 0.0, "{row:?}");
        }
    }

    #[test]
    fn table3_change_column_matches_its_inputs() {
        let t = table3(SEED);
        let rows = csv_rows(&t);
        assert_eq!(rows.len(), 2, "one row per guest domain");
        for row in rows {
            let (base, coord, pct) = (num(&row[1]), num(&row[2]), num(&row[3]));
            assert!(base > 0.0, "baseline fps must be positive: {row:?}");
            let expect = (coord / base - 1.0) * 100.0;
            // Both inputs are printed at one decimal, so recomputing from
            // the rendered cells carries rounding of its own.
            assert!(
                (pct - expect).abs() < 0.5,
                "% change {pct} inconsistent with {base} -> {coord} ({expect:.2})"
            );
        }
    }
}
