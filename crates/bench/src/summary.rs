//! Shared run-loop and reporting scaffolding for the probe binaries
//! (`probe`, `sweep`, `schedprobe`) — each used to carry its own copy.

use platform::RunReport;
use simcore::Nanos;
use xsched::{CreditScheduler, DomId};

/// The overall RUBiS response summary the calibration tools compare:
/// throughput, response moments, and guest-side drops.
#[derive(Debug, Clone, Copy, Default)]
pub struct RubisOut {
    /// Requests per second.
    pub throughput: f64,
    /// Mean response time (ms).
    pub mean: f64,
    /// Response-time standard deviation (ms).
    pub sd: f64,
    /// Maximum response time (ms).
    pub max: f64,
    /// Packets dropped at the guest receive queues.
    pub drops: u64,
}

impl RubisOut {
    /// Extracts the summary from a run report.
    pub fn of(r: &RunReport) -> RubisOut {
        let o = r.rubis.responses.overall();
        RubisOut {
            throughput: r.rubis.throughput,
            mean: o.mean(),
            sd: o.std_dev(),
            max: o.max(),
            drops: r.net.guest_drops,
        }
    }

    /// Element-wise mean of several summaries (seed averaging).
    pub fn average(outs: &[RubisOut]) -> RubisOut {
        let n = outs.len().max(1) as f64;
        let mut acc = RubisOut::default();
        for o in outs {
            acc.throughput += o.throughput;
            acc.mean += o.mean;
            acc.sd += o.sd;
            acc.max += o.max;
            acc.drops += o.drops;
        }
        RubisOut {
            throughput: acc.throughput / n,
            mean: acc.mean / n,
            sd: acc.sd / n,
            max: acc.max / n,
            drops: acc.drops / outs.len().max(1) as u64,
        }
    }
}

/// Fraction of the QoS gap that strategic tenants open — measured as a
/// mean-response-time increase over the honest baseline — which the
/// controller's defenses claw back:
///
/// `recovered = (adversarial − defended) / (adversarial − honest)`
///
/// 0 means the defenses changed nothing, 1 means they fully restored the
/// honest baseline, and values above 1 mean the defended run beat it.
/// When the adversaries opened no gap (`adversarial ≤ honest`) there is
/// nothing to recover and the fraction is defined as 0.
pub fn gap_recovered(honest: f64, adversarial: f64, defended: f64) -> f64 {
    let gap = adversarial - honest;
    if gap <= f64::EPSILON * honest.abs().max(1.0) {
        return 0.0;
    }
    (adversarial - defended) / gap
}

/// One inference tenant's accelerator summary as the calibration tools
/// compare it: client-observed p99 plus the device-side batching view.
#[derive(Debug, Clone, Default)]
pub struct AccelTenantOut {
    /// Tenant name.
    pub name: String,
    /// `true` when the tenant carries an interactive latency SLA.
    pub latency_sensitive: bool,
    /// Client-observed p99 response time (ms).
    pub p99_ms: f64,
    /// Completed requests per second.
    pub goodput: f64,
    /// Mean items per launched batch.
    pub mean_batch: f64,
    /// p99 batch-forming queue delay (ms).
    pub queue_p99_ms: f64,
    /// Batches launched early by a Trigger.
    pub preemptions: u64,
}

/// Per-tenant accelerator summaries of a run (empty for two-island runs).
pub fn accel_tenants(r: &RunReport) -> Vec<AccelTenantOut> {
    let secs = r.duration.as_secs_f64().max(1e-9);
    r.accel
        .tenants
        .iter()
        .map(|t| AccelTenantOut {
            name: t.name.clone(),
            latency_sensitive: t.latency_sensitive,
            p99_ms: r.rubis.responses.percentile(&t.name, 0.99),
            goodput: t.completed as f64 / secs,
            mean_batch: t.mean_batch,
            queue_p99_ms: t.queue_p99_ms,
            preemptions: t.preemptions,
        })
        .collect()
}

/// Prints the per-tenant accelerator lines (no-op for two-island runs).
pub fn print_accel(r: &RunReport) {
    for t in accel_tenants(r) {
        println!(
            "  {:8} [{}] p99={:7.1}ms goodput={:6.1}/s batch={:5.2} q_p99={:6.2}ms preempt={}",
            t.name,
            if t.latency_sensitive { "lat" } else { "thr" },
            t.p99_ms,
            t.goodput,
            t.mean_batch,
            t.queue_p99_ms,
            t.preemptions,
        );
    }
}

/// Prints the deterministic per-island dispatch split and PDES barrier
/// accounting of a run.
pub fn print_islands(r: &RunReport) {
    let i = &r.events_by_island;
    println!(
        "  islands: x86 {} ixp {} accel {}  sync points {}  epoch {} us  threads {}",
        i.x86,
        i.ixp,
        i.accel,
        i.sync_points,
        i.epoch_ns as f64 / 1e3,
        i.island_threads,
    );
}

/// Prints a fleet run's per-shard event/coordination counters plus the
/// bus and tree totals (the `probe fleet` view).
pub fn print_fleet(r: &fleet::FleetReport) {
    println!(
        "  fleet: {} shards, depth {} ({} racks), {} slices, coordinated={}",
        r.shards, r.depth, r.racks, r.slices, r.coordinated
    );
    for s in &r.per_shard {
        println!(
            "  shard {:2} ncpus {} cap {:3}  sessions {}/{} (rej {})  \
             events {:>9}  X={:6.1}/s mean={:7.1}ms",
            s.shard,
            s.ncpus,
            s.cap,
            s.admitted,
            s.offered,
            s.rejected,
            s.events,
            s.throughput,
            s.mean_ms,
        );
    }
    for (name, b) in [("fleet bus", &r.fleet_bus), ("rack bus ", &r.rack_bus)] {
        println!(
            "  {name}: sent {} delivered {} reordered {} late {} retx {} \
             gave-up {} dup-suppressed {} drops {} partition-drops {}",
            b.frames_sent,
            b.delivered,
            b.reordered,
            b.late,
            b.retransmits,
            b.gave_up,
            b.dup_suppressed,
            b.channel_drops,
            b.partition_drops,
        );
    }
    println!(
        "  tunes l0/l1/l2 {}/{}/{}  root lookups {}  total events {}  \
         fleet mean {:.1} ms  digest {:016x}",
        r.tunes[0],
        r.tunes[1],
        r.tunes[2],
        r.root_lookups,
        r.total_events(),
        r.mean_ms(),
        r.digest(),
    );
}

/// Prints the per-domain CPU table: full user/system/steal split when
/// `detail` is set, the compact percent+steal form otherwise.
pub fn print_cpu(r: &RunReport, detail: bool) {
    for c in &r.cpu {
        if detail {
            println!(
                "  {}: {:.1}% (u {:.1} / s {:.1} / steal {:.1})",
                c.name, c.percent, c.user, c.system, c.steal
            );
        } else {
            println!("  {}: {:.1}% steal {:.1}", c.name, c.percent, c.steal);
        }
    }
}

/// Prints the energy-dimension accounting of a run (no-op when the
/// energy dimension was off — the default).
pub fn print_energy(r: &RunReport) {
    let e = &r.energy;
    if !e.enabled {
        return;
    }
    println!(
        "  energy: {:.1} J (cpu {:.1} / ixp {:.1})  target p99 {:.0} ms  \
         violations {} descents {} backoffs {} freezes {}",
        e.total_joules(),
        e.cpu_joules,
        e.ixp_joules,
        e.p99_target_ms,
        e.violations,
        e.descents,
        e.backoffs,
        e.freezes,
    );
    let total: u64 = e.residency.iter().map(|&(_, n)| n).sum();
    let mix = e
        .residency
        .iter()
        .filter(|&&(_, n)| n > 0)
        .map(|&(f, n)| format!("{f}%×{:.0}%", n as f64 * 100.0 / total.max(1) as f64))
        .collect::<Vec<_>>()
        .join(" ");
    println!(
        "  knobs: {} applied, final dvfs {}% ways {} membw {}%  residency {}",
        e.knob_actions, e.final_dvfs_percent, e.final_ways, e.final_membw_percent, mix,
    );
}

/// Prints the per-player frame-rate lines.
pub fn print_players(r: &RunReport) {
    for p in &r.players {
        println!(
            "  {}: target {} achieved {:.1} fps ({} frames)",
            p.name, p.target_fps, p.achieved_fps, p.frames
        );
    }
}

/// Prints per-request-type response statistics.
pub fn print_responses(r: &RunReport) {
    for (name, s) in r.rubis.responses.iter() {
        println!(
            "  {:26} n={:4} mean={:7.1} sd={:7.1} min={:6.1} max={:8.1}",
            name,
            s.count(),
            s.mean(),
            s.std_dev(),
            s.min(),
            s.max()
        );
    }
}

/// Prints the usage snapshot lines for a raw scheduler probe.
pub fn print_sched_usage(s: &mut CreditScheduler, doms: &[(DomId, &str)]) {
    let snap = s.usage_snapshot();
    for &(d, name) in doms {
        println!(
            "{name}: {:.1}% steal {:.1} credit {:?}",
            snap.cpu_percent(d),
            snap.steal_percent(d),
            s.credit(d)
        );
    }
}

/// Drives a scheduler forward, discarding completion events, until its
/// horizon passes `t_end` (or it idles).
pub fn drive_sched_until(s: &mut CreditScheduler, t_end: Nanos) {
    let mut evs = Vec::new();
    while let Some(t) = s.next_event_time() {
        if t > t_end {
            break;
        }
        evs.clear();
        s.on_timer(t, &mut evs);
    }
}

#[cfg(test)]
mod tests {
    use super::gap_recovered;

    #[test]
    fn gap_recovered_spans_the_defined_range() {
        // Defenses restored half of a 100 → 300 ms degradation.
        assert!((gap_recovered(100.0, 300.0, 200.0) - 0.5).abs() < 1e-12);
        // Full restoration and no restoration.
        assert!((gap_recovered(100.0, 300.0, 100.0) - 1.0).abs() < 1e-12);
        assert!(gap_recovered(100.0, 300.0, 300.0).abs() < 1e-12);
        // No gap opened: nothing to recover, even if "defended" is lower.
        assert_eq!(gap_recovered(100.0, 100.0, 50.0), 0.0);
        assert_eq!(gap_recovered(100.0, 90.0, 50.0), 0.0);
    }
}
