//! Churn benchmarks for the timing-wheel [`EventQueue`]: schedule,
//! cancel, and pop mixes at the three horizon regimes the wheel
//! distinguishes — imminent (inside the current bucket), near (inside
//! the wheel span), and far (overflow heap) — plus a mixed workload
//! shaped like the platform's steady state.

use simcore::{EventQueue, Nanos, SimRng};
use simtest::BenchSuite;
use std::hint::black_box;

/// One schedule+pop cycle of `n` events whose horizons are drawn
/// uniformly from `[1, span]` ns past the current virtual time.
fn schedule_pop_cycle(rng: &mut SimRng, span: u64, n: u64) -> u64 {
    let mut q = EventQueue::new();
    let mut now = 0u64;
    let mut sum = 0u64;
    for i in 0..n {
        q.schedule(Nanos(now + 1 + rng.next_u64() % span), i);
        // Drain every other event so the wheel advances as it would in a
        // live simulation instead of filling up and emptying once.
        if i % 2 == 1 {
            if let Some((t, v)) = q.pop() {
                now = t.0;
                sum += v;
            }
        }
    }
    while let Some((_, v)) = q.pop() {
        sum += v;
    }
    black_box(sum)
}

fn main() {
    let mut suite = BenchSuite::new("queue");

    // Horizon regimes: imminent events land in the wheel's current
    // bucket, near events elsewhere in the 512-bucket span, far events
    // in the overflow heap.
    let mut rng = SimRng::new(11);
    suite.bench("queue/schedule_pop_imminent_1k", || {
        schedule_pop_cycle(&mut rng, 2_000, 1000)
    });
    let mut rng = SimRng::new(12);
    suite.bench("queue/schedule_pop_near_1k", || {
        schedule_pop_cycle(&mut rng, 1_000_000, 1000)
    });
    let mut rng = SimRng::new(13);
    suite.bench("queue/schedule_pop_far_1k", || {
        schedule_pop_cycle(&mut rng, 100_000_000, 1000)
    });

    // Steady-state churn against a persistent queue: every iteration
    // schedules one long timer, cancels one outstanding timer (the
    // retransmit/RTO pattern — most timers never fire), schedules one
    // imminent event and pops one due event. Queue depth and the live
    // timer set both stay flat, so the loop measures churn, not growth.
    let mut rng = SimRng::new(14);
    let mut q = EventQueue::new();
    let mut keys = Vec::new();
    let mut now = 0u64;
    for i in 0..256u64 {
        keys.push(q.schedule(Nanos(10_000_000 + rng.next_u64() % 1_000_000), i));
    }
    suite.bench("queue/churn_mixed", || {
        keys.push(q.schedule(
            Nanos(now + 10_000_000 + rng.next_u64() % 1_000_000),
            0,
        ));
        let idx = (rng.next_u64() as usize) % keys.len();
        q.cancel(keys.swap_remove(idx));
        q.schedule(Nanos(now + 1 + rng.next_u64() % 2_000), 1);
        if let Some((t, v)) = q.pop() {
            now = t.0;
            black_box(v);
        }
        black_box(q.len())
    });

    suite.finish();
}
