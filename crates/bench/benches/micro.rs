//! Microbenchmarks of the coordination mechanisms and kernel primitives:
//! the cost story behind the paper's claim that Tune/Trigger are cheap
//! enough to standardize (§3.3).

use coord::{wire, CoordMsg, EntityId, IslandId, TokenBucket};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use simcore::stats::{Histogram, OnlineStats};
use simcore::{EventQueue, Nanos, SimRng};
use std::hint::black_box;

fn bench_wire_codec(c: &mut Criterion) {
    let msg = CoordMsg::Tune {
        entity: EntityId(3),
        delta: -128,
        target: Some(IslandId(0)),
    };
    c.bench_function("wire/encode_tune", |b| {
        b.iter_batched(
            || Vec::with_capacity(16),
            |mut buf| {
                black_box(wire::encode(black_box(&msg), &mut buf));
                buf
            },
            BatchSize::SmallInput,
        )
    });
    let mut buf = Vec::new();
    wire::encode(&msg, &mut buf);
    c.bench_function("wire/decode_tune", |b| {
        b.iter(|| wire::decode(black_box(&buf)).unwrap())
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/schedule_pop_1k", |b| {
        let mut rng = SimRng::new(7);
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule(Nanos(rng.next_u64() % 1_000_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum += v;
            }
            black_box(sum)
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng/exponential", |b| {
        let mut rng = SimRng::new(1);
        b.iter(|| black_box(rng.exponential(4.0)))
    });
    c.bench_function("rng/weighted_index_16", |b| {
        let mut rng = SimRng::new(2);
        let weights: Vec<f64> = (1..=16).map(|i| i as f64).collect();
        b.iter(|| black_box(rng.weighted_index(&weights)))
    });
}

fn bench_stats(c: &mut Criterion) {
    c.bench_function("stats/welford_record", |b| {
        let mut s = OnlineStats::new();
        let mut x = 0.0;
        b.iter(|| {
            x += 1.0;
            s.record(black_box(x));
        })
    });
    c.bench_function("stats/histogram_record", |b| {
        let mut h = Histogram::latency_millis();
        let mut x = 0.1;
        b.iter(|| {
            x = (x * 1.1) % 1e4;
            h.record(black_box(x));
        })
    });
}

fn bench_token_bucket(c: &mut Criterion) {
    c.bench_function("coord/token_bucket_try_take", |b| {
        let mut bucket = TokenBucket::new(1e6, 1e3);
        let mut t = Nanos::ZERO;
        b.iter(|| {
            t += Nanos(1000);
            black_box(bucket.try_take(t))
        })
    });
}

criterion_group!(
    benches,
    bench_wire_codec,
    bench_event_queue,
    bench_rng,
    bench_stats,
    bench_token_bucket
);
criterion_main!(benches);
