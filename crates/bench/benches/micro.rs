//! Microbenchmarks of the coordination mechanisms and kernel primitives:
//! the cost story behind the paper's claim that Tune/Trigger are cheap
//! enough to standardize (§3.3).

use coord::{wire, CoordMsg, EntityId, IslandId, TokenBucket};
use simcore::stats::{Histogram, OnlineStats};
use simcore::{EventQueue, Nanos, SimRng};
use simtest::BenchSuite;
use std::hint::black_box;

fn main() {
    let mut suite = BenchSuite::new("micro");

    let msg = CoordMsg::Tune {
        entity: EntityId(3),
        delta: -128,
        target: Some(IslandId(0)),
    };
    suite.bench("wire/encode_tune", || {
        let mut buf = Vec::with_capacity(16);
        black_box(wire::encode(black_box(&msg), &mut buf));
        buf
    });
    let mut buf = Vec::new();
    wire::encode(&msg, &mut buf);
    suite.bench("wire/decode_tune", || wire::decode(black_box(&buf)).unwrap());

    let mut rng = SimRng::new(7);
    suite.bench("event_queue/schedule_pop_1k", || {
        let mut q = EventQueue::new();
        for i in 0..1000u64 {
            q.schedule(Nanos(rng.next_u64() % 1_000_000), i);
        }
        let mut sum = 0u64;
        while let Some((_, v)) = q.pop() {
            sum += v;
        }
        black_box(sum)
    });

    let mut rng = SimRng::new(1);
    suite.bench("rng/exponential", || black_box(rng.exponential(4.0)));
    let mut rng = SimRng::new(2);
    let weights: Vec<f64> = (1..=16).map(|i| i as f64).collect();
    suite.bench("rng/weighted_index_16", || {
        black_box(rng.weighted_index(&weights))
    });

    let mut s = OnlineStats::new();
    let mut x = 0.0;
    suite.bench("stats/welford_record", || {
        x += 1.0;
        s.record(black_box(x));
    });
    let mut h = Histogram::latency_millis();
    let mut y = 0.1;
    suite.bench("stats/histogram_record", || {
        y = (y * 1.1) % 1e4;
        h.record(black_box(y));
    });

    let mut bucket = TokenBucket::new(1e6, 1e3);
    let mut t = Nanos::ZERO;
    suite.bench("coord/token_bucket_try_take", || {
        t += Nanos(1000);
        black_box(bucket.try_take(t))
    });

    suite.finish();
}
