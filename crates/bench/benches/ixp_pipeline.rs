//! IXP island benchmarks: packet pipeline throughput with and without
//! deep packet inspection, and the flow-knob costs.

use ixp::{AppTag, IxpConfig, IxpIsland, Packet};
use simcore::Nanos;
use simtest::BenchSuite;
use std::hint::black_box;

fn drive_packets(island: &mut IxpIsland, n: u64) -> usize {
    let mut delivered = 0;
    let mut now = Nanos::ZERO;
    for i in 0..n {
        now += Nanos(2_000); // 500 kpps offered
        let pkt = Packet::new(i, 1, 1400, AppTag::Http { class_id: 3, write: false });
        delivered += island.rx_from_wire(now, pkt).len();
        // Open the window as fast as packets appear.
        let evs = island.host_ack(now, ixp::FlowId(0), 4);
        delivered += evs.len();
    }
    let mut evs = Vec::new();
    while let Some(t) = island.next_event_time() {
        evs.clear();
        island.on_timer(t, &mut evs);
        delivered += evs.len();
    }
    delivered
}

fn main() {
    let mut suite = BenchSuite::new("ixp_pipeline");

    // Per-sample figures cover one 1k-packet block (criterion reported
    // these with Throughput::Elements(1000)).
    suite.bench_n("ixp/rx_pipeline/flow_classify_1k_pkts", 30, || {
        let mut island = IxpIsland::new(IxpConfig::default());
        island.register_flow(1);
        black_box(drive_packets(&mut island, 1000))
    });
    suite.bench_n("ixp/rx_pipeline/dpi_classify_1k_pkts", 30, || {
        let cfg = IxpConfig { dpi: true, ..IxpConfig::default() };
        let mut island = IxpIsland::new(cfg);
        island.register_flow(1);
        black_box(drive_packets(&mut island, 1000))
    });

    let mut island = IxpIsland::new(IxpConfig::default());
    let flow = island.register_flow(1);
    let mut n = 2;
    suite.bench("ixp/set_flow_threads", || {
        n = if n == 2 { 4 } else { 2 };
        island.set_flow_threads(black_box(flow), n)
    });

    let mut island = IxpIsland::new(IxpConfig::default());
    let flow = island.register_flow(1);
    for i in 0..100 {
        island.rx_from_wire(Nanos(i * 1000), Packet::new(i, 1, 1400, AppTag::Plain));
    }
    suite.bench("ixp/buffer_occupancy_query", || {
        black_box(island.flow_queue_bytes(flow))
    });

    suite.finish();
}
