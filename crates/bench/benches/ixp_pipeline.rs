//! IXP island benchmarks: packet pipeline throughput with and without
//! deep packet inspection, and the flow-knob costs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ixp::{AppTag, IxpConfig, IxpIsland, Packet};
use simcore::Nanos;
use std::hint::black_box;

fn drive_packets(island: &mut IxpIsland, n: u64) -> usize {
    let mut delivered = 0;
    let mut now = Nanos::ZERO;
    for i in 0..n {
        now += Nanos(2_000); // 500 kpps offered
        let pkt = Packet::new(i, 1, 1400, AppTag::Http { class_id: 3, write: false });
        delivered += island.rx_from_wire(now, pkt).len();
        // Open the window as fast as packets appear.
        let evs = island.host_ack(now, ixp::FlowId(0), 4);
        delivered += evs.len();
    }
    while let Some(t) = island.next_event_time() {
        delivered += island.on_timer(t).len();
    }
    delivered
}

fn bench_rx_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("ixp/rx_pipeline");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("flow_classify_1k_pkts", |b| {
        b.iter(|| {
            let mut island = IxpIsland::new(IxpConfig::default());
            island.register_flow(1);
            black_box(drive_packets(&mut island, 1000))
        })
    });
    g.bench_function("dpi_classify_1k_pkts", |b| {
        b.iter(|| {
            let cfg = IxpConfig { dpi: true, ..IxpConfig::default() };
            let mut island = IxpIsland::new(cfg);
            island.register_flow(1);
            black_box(drive_packets(&mut island, 1000))
        })
    });
    g.finish();
}

fn bench_flow_knobs(c: &mut Criterion) {
    c.bench_function("ixp/set_flow_threads", |b| {
        let mut island = IxpIsland::new(IxpConfig::default());
        let flow = island.register_flow(1);
        let mut n = 2;
        b.iter(|| {
            n = if n == 2 { 4 } else { 2 };
            island.set_flow_threads(black_box(flow), n)
        })
    });
    c.bench_function("ixp/buffer_occupancy_query", |b| {
        let mut island = IxpIsland::new(IxpConfig::default());
        let flow = island.register_flow(1);
        for i in 0..100 {
            island.rx_from_wire(Nanos(i * 1000), Packet::new(i, 1, 1400, AppTag::Plain));
        }
        b.iter(|| black_box(island.flow_queue_bytes(flow)))
    });
}

criterion_group!(benches, bench_rx_pipeline, bench_flow_knobs);
criterion_main!(benches);
