//! One benchmark per paper artifact: each sample regenerates the
//! corresponding table or figure end-to-end (workload generation, both
//! baseline and coordinated runs, and the statistics), so `cargo bench`
//! doubles as a full reproduction pass.
//!
//! These are whole-system benches (tens to hundreds of milliseconds per
//! sample); the sample count is kept small.

use simtest::BenchSuite;
use std::hint::black_box;

fn main() {
    let mut suite = BenchSuite::new("paper_artifacts");
    let n = 10; // samples per artifact (criterion used sample_size(10))

    let s = bench::SEED;
    suite.bench_n("paper/fig2_rubis_baseline_minmax", n, || black_box(bench::fig2(s)));
    suite.bench_n("paper/table1_avg_response", n, || black_box(bench::table1(s)));
    suite.bench_n("paper/fig4_minmax_coordination", n, || black_box(bench::fig4(s)));
    suite.bench_n("paper/table2_throughput", n, || black_box(bench::table2(s)));
    suite.bench_n("paper/fig5_cpu_utilization", n, || black_box(bench::fig5(s)));
    suite.bench_n("paper/fig6_mplayer_qos", n, || black_box(bench::fig6(s)));
    suite.bench_n("paper/fig7_trigger_series", n, || black_box(bench::fig7(s)));
    suite.bench_n("paper/table3_trigger_interference", n, || black_box(bench::table3(s)));

    suite.bench_n("ablations/a1_channel_latency", n, || black_box(bench::ablation_a1(s)));
    suite.bench_n("ablations/a2_hysteresis", n, || black_box(bench::ablation_a2(s)));
    suite.bench_n("ablations/a5_trigger_rate", n, || black_box(bench::ablation_a5(s)));

    suite.bench_n("extensions/p1_power_capping", n, || black_box(bench::extension_p1(s)));
    suite.bench_n("extensions/s1_fabric_scalability", n, || black_box(bench::extension_s1(s)));

    suite.finish();
}
