//! One Criterion bench per paper artifact: each iteration regenerates the
//! corresponding table or figure end-to-end (workload generation, both
//! baseline and coordinated runs, and the statistics), so `cargo bench`
//! doubles as a full reproduction pass.
//!
//! These are whole-system benches (tens to hundreds of milliseconds per
//! iteration); the sample count is kept small.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn artifacts(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10).measurement_time(Duration::from_secs(8));

    g.bench_function("fig2_rubis_baseline_minmax", |b| b.iter(|| black_box(bench::fig2())));
    g.bench_function("table1_avg_response", |b| b.iter(|| black_box(bench::table1())));
    g.bench_function("fig4_minmax_coordination", |b| b.iter(|| black_box(bench::fig4())));
    g.bench_function("table2_throughput", |b| b.iter(|| black_box(bench::table2())));
    g.bench_function("fig5_cpu_utilization", |b| b.iter(|| black_box(bench::fig5())));
    g.bench_function("fig6_mplayer_qos", |b| b.iter(|| black_box(bench::fig6())));
    g.bench_function("fig7_trigger_series", |b| b.iter(|| black_box(bench::fig7())));
    g.bench_function("table3_trigger_interference", |b| b.iter(|| black_box(bench::table3())));
    g.finish();

    let mut a = c.benchmark_group("ablations");
    a.sample_size(10).measurement_time(Duration::from_secs(8));
    a.bench_function("a1_channel_latency", |b| b.iter(|| black_box(bench::ablation_a1())));
    a.bench_function("a2_hysteresis", |b| b.iter(|| black_box(bench::ablation_a2())));
    a.bench_function("a5_trigger_rate", |b| b.iter(|| black_box(bench::ablation_a5())));
    a.finish();

    let mut e = c.benchmark_group("extensions");
    e.sample_size(10).measurement_time(Duration::from_secs(8));
    e.bench_function("p1_power_capping", |b| b.iter(|| black_box(bench::extension_p1())));
    e.bench_function("s1_fabric_scalability", |b| b.iter(|| black_box(bench::extension_s1())));
    e.finish();
}

criterion_group!(benches, artifacts);
criterion_main!(benches);
