//! Credit-scheduler benchmarks: simulated-second throughput and the cost
//! of the coordination entry points (weight change, trigger boost).

use simcore::Nanos;
use simtest::BenchSuite;
use std::hint::black_box;
use xsched::{Burst, CreditScheduler, SchedConfig, WakeMode};

/// Builds a loaded scheduler: 4 domains on 2 pCPUs, all saturated.
fn loaded() -> CreditScheduler {
    let mut s = CreditScheduler::new(SchedConfig::new(2));
    for i in 0..4 {
        let d = s.create_domain(&format!("d{i}"), 256, 1);
        s.submit(Nanos::ZERO, d, Burst::user(Nanos::from_secs(3600), i), WakeMode::Plain)
            .unwrap();
    }
    s
}

fn main() {
    let mut suite = BenchSuite::new("scheduler");

    // Whole-run bench: each sample simulates a full saturated second.
    suite.bench_n("sched/simulate_1s_saturated", 20, || {
        let mut s = loaded();
        let mut evs = Vec::new();
        while let Some(t) = s.next_event_time() {
            if t > Nanos::from_secs(1) {
                break;
            }
            evs.clear();
            s.on_timer(t, &mut evs);
            black_box(&evs);
        }
        s
    });

    let mut s = CreditScheduler::new(SchedConfig::new(2));
    let d = s.create_domain("d", 256, 1);
    let mut now = Nanos::ZERO;
    let mut tag = 0u64;
    let mut evs = Vec::new();
    suite.bench("sched/submit_and_complete", || {
        tag += 1;
        s.submit(now, d, Burst::user(Nanos::from_micros(10), tag), WakeMode::Boost)
            .unwrap();
        let t = s.next_event_time().expect("completion pending");
        now = t;
        evs.clear();
        s.on_timer(t, &mut evs);
        black_box(&evs);
    });

    let mut s = loaded();
    let d = xsched::DomId(1);
    let mut w = 256;
    suite.bench("sched/set_weight", || {
        w = if w == 256 { 512 } else { 256 };
        s.set_weight(d, black_box(w)).unwrap()
    });

    let mut s = loaded();
    let d = xsched::DomId(2);
    let mut now = Nanos::ZERO;
    suite.bench("sched/trigger_boost_front", || {
        now += Nanos(1000);
        black_box(s.boost_front(now, d).unwrap())
    });

    let mut s = loaded();
    let mut evs = Vec::new();
    while let Some(t) = s.next_event_time() {
        if t > Nanos::from_millis(100) {
            break;
        }
        evs.clear();
        s.on_timer(t, &mut evs);
    }
    suite.bench("sched/usage_snapshot", || black_box(s.usage_snapshot()));

    suite.finish();
}
