//! Credit-scheduler benchmarks: simulated-second throughput and the cost
//! of the coordination entry points (weight change, trigger boost).

use criterion::{criterion_group, criterion_main, Criterion};
use simcore::Nanos;
use std::hint::black_box;
use xsched::{Burst, CreditScheduler, SchedConfig, WakeMode};

/// Builds a loaded scheduler: 4 domains on 2 pCPUs, all saturated.
fn loaded() -> CreditScheduler {
    let mut s = CreditScheduler::new(SchedConfig::new(2));
    for i in 0..4 {
        let d = s.create_domain(&format!("d{i}"), 256, 1);
        s.submit(Nanos::ZERO, d, Burst::user(Nanos::from_secs(3600), i), WakeMode::Plain)
            .unwrap();
    }
    s
}

fn bench_simulated_second(c: &mut Criterion) {
    c.bench_function("sched/simulate_1s_saturated", |b| {
        b.iter(|| {
            let mut s = loaded();
            while let Some(t) = s.next_event_time() {
                if t > Nanos::from_secs(1) {
                    break;
                }
                black_box(s.on_timer(t));
            }
            s
        })
    });
}

fn bench_submit_complete_cycle(c: &mut Criterion) {
    c.bench_function("sched/submit_and_complete", |b| {
        let mut s = CreditScheduler::new(SchedConfig::new(2));
        let d = s.create_domain("d", 256, 1);
        let mut now = Nanos::ZERO;
        let mut tag = 0u64;
        b.iter(|| {
            tag += 1;
            s.submit(now, d, Burst::user(Nanos::from_micros(10), tag), WakeMode::Boost)
                .unwrap();
            let t = s.next_event_time().expect("completion pending");
            now = t;
            black_box(s.on_timer(t))
        })
    });
}

fn bench_coordination_entry_points(c: &mut Criterion) {
    c.bench_function("sched/set_weight", |b| {
        let mut s = loaded();
        let d = xsched::DomId(1);
        let mut w = 256;
        b.iter(|| {
            w = if w == 256 { 512 } else { 256 };
            s.set_weight(d, black_box(w)).unwrap()
        })
    });
    c.bench_function("sched/trigger_boost_front", |b| {
        let mut s = loaded();
        let d = xsched::DomId(2);
        let mut now = Nanos::ZERO;
        b.iter(|| {
            now += Nanos(1000);
            black_box(s.boost_front(now, d).unwrap())
        })
    });
    c.bench_function("sched/usage_snapshot", |b| {
        let mut s = loaded();
        while let Some(t) = s.next_event_time() {
            if t > Nanos::from_millis(100) {
                break;
            }
            s.on_timer(t);
        }
        b.iter(|| black_box(s.usage_snapshot()))
    });
}

criterion_group!(
    benches,
    bench_simulated_second,
    bench_submit_complete_cycle,
    bench_coordination_entry_points
);
criterion_main!(benches);
