//! Shard plans and build specs: one independent [`Platform`] per shard.
//!
//! A *plan* is the durable description of a shard — its capacity and its
//! open-loop offered load. A *spec* is one slice's concrete build order:
//! plan + the admission decision (how many concurrent sessions the shard
//! may run this slice) + the slice-salted seed. Specs are plain `Send`
//! data so `bench::pool` can fan them out across scoped threads; each
//! spec builds its own platform with every RNG stream derived from
//! `seed ^ shard_id`, which is the whole shard determinism contract:
//! a shard's slice replays bit-identically from `(seed, slice, shard)`
//! no matter which thread runs it or what its neighbours do.

use platform::{Platform, PlatformBuilder, RubisScenario};
use simcore::Nanos;
use workloads::session::SessionLoad;

/// Mixes slice and shard into the fleet seed (splitmix-style odd
/// multiplier keeps nearby slices' streams far apart).
pub(crate) fn slice_seed(seed: u64, slice: u32) -> u64 {
    seed.wrapping_add((slice as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// The durable description of one shard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardPlan {
    /// Shard (node) id; also the seed salt.
    pub shard: u16,
    /// Physical CPUs on the shard's x86 island (heterogeneous fleets
    /// mix 1–3).
    pub ncpus: u32,
    /// Open-loop offered session load at the shard's door.
    pub load: SessionLoad,
}

/// One slice's build order for one shard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardSpec {
    /// Shard id (applied via [`PlatformBuilder::shard`]).
    pub shard: u16,
    /// Slice-salted fleet seed (pre `^ shard`).
    pub seed: u64,
    /// Physical CPUs.
    pub ncpus: u32,
    /// Admitted concurrent sessions to simulate (closed-loop clients).
    pub clients: u32,
    /// Slice duration.
    pub duration: Nanos,
}

impl ShardSpec {
    /// Builds the shard's platform: an independent island set whose
    /// every RNG stream derives from `seed ^ shard`.
    pub fn build(&self) -> Platform {
        PlatformBuilder::new()
            .seed(self.seed)
            .shard(self.shard)
            .ncpus(self.ncpus)
            .build_rubis(RubisScenario::read_write_mix(self.clients))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_spec_replays_bit_identically() {
        let spec = ShardSpec {
            shard: 3,
            seed: slice_seed(42, 0),
            ncpus: 2,
            clients: 8,
            duration: Nanos::from_secs(2),
        };
        let mut sim_a = spec.build();
        let a = sim_a.run(spec.duration);
        let mut sim_b = spec.build();
        let b = sim_b.run(spec.duration);
        assert_eq!(a.rubis.completed, b.rubis.completed);
        assert_eq!(a.events_by_island, b.events_by_island);
        assert_eq!(
            a.rubis.responses.overall().mean(),
            b.rubis.responses.overall().mean()
        );
    }

    #[test]
    fn different_shards_draw_disjoint_streams() {
        let mk = |shard| ShardSpec {
            shard,
            seed: slice_seed(42, 0),
            ncpus: 2,
            clients: 8,
            duration: Nanos::from_secs(2),
        };
        let mut sim_a = mk(0).build();
        let a = sim_a.run(Nanos::from_secs(2));
        let mut sim_b = mk(1).build();
        let b = sim_b.run(Nanos::from_secs(2));
        assert_ne!(
            (a.rubis.completed, a.events_by_island.x86),
            (b.rubis.completed, b.events_by_island.x86),
            "shard salt must shift every stream"
        );
    }
}
