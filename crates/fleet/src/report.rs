//! Fleet-level run reports and the determinism digest.
//!
//! Everything in a [`FleetReport`] is a pure function of the fleet seed
//! and configuration — no wall-clock fields — so two runs of the same
//! fleet must produce byte-identical [`FleetReport::canonical`] strings
//! (and therefore equal [`FleetReport::digest`]s) regardless of how many
//! worker threads ran the shards. The F2 experiment commits exactly that
//! comparison.

use crate::bus::BusStats;
use platform::IslandEvents;
use std::fmt::Write as _;

/// One shard's totals across every slice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardSummary {
    /// Shard id.
    pub shard: u16,
    /// Physical CPUs on the shard.
    pub ncpus: u32,
    /// Final admission cap after coordination.
    pub cap: u32,
    /// Sessions that arrived at the door.
    pub offered: u64,
    /// Sessions admitted.
    pub admitted: u64,
    /// Sessions rejected.
    pub rejected: u64,
    /// Island events the shard's slices dispatched.
    pub events: u64,
    /// RUBiS requests completed.
    pub completed: u64,
    /// Requests per simulated second.
    pub throughput: f64,
    /// Session-weighted mean response time (ms).
    pub mean_ms: f64,
}

/// The fleet's aggregate view over a whole run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Shard count.
    pub shards: u16,
    /// Tree depth (1..=3).
    pub depth: u8,
    /// Rack count.
    pub racks: u16,
    /// Slices absorbed.
    pub slices: u32,
    /// Whether the coordinated arm ran.
    pub coordinated: bool,
    /// Per-shard totals, in shard order.
    pub per_shard: Vec<ShardSummary>,
    /// Cross-node (root uplink) bus counters.
    pub fleet_bus: BusStats,
    /// Intra-rack bus counters (zeroed at depth 1).
    pub rack_bus: BusStats,
    /// Cap moves by tree level (node group, rack, fleet root).
    pub tunes: [u64; 3],
    /// Root-directory forwards inside `coord::hierarchy`.
    pub root_lookups: u64,
    /// Summed per-island event counts across every shard slice.
    pub islands: IslandEvents,
}

impl FleetReport {
    /// Total island events dispatched across all shards.
    pub fn total_events(&self) -> u64 {
        self.per_shard.iter().map(|s| s.events).sum()
    }

    /// Total sessions offered / admitted / rejected.
    pub fn sessions(&self) -> (u64, u64, u64) {
        self.per_shard.iter().fold((0, 0, 0), |(o, a, r), s| {
            (o + s.offered, a + s.admitted, r + s.rejected)
        })
    }

    /// Fleet request throughput (sum of shard throughputs).
    pub fn throughput(&self) -> f64 {
        self.per_shard.iter().map(|s| s.throughput).sum()
    }

    /// Completion-weighted fleet mean response time (ms).
    pub fn mean_ms(&self) -> f64 {
        let total: u64 = self.per_shard.iter().map(|s| s.completed).sum();
        if total == 0 {
            return 0.0;
        }
        self.per_shard
            .iter()
            .map(|s| s.mean_ms * s.completed as f64)
            .sum::<f64>()
            / total as f64
    }

    /// A canonical, thread-count-independent rendering of the report.
    ///
    /// Floats print with fixed precision and `island_threads` (a host
    /// configuration knob, not a simulation outcome) is excluded, so the
    /// string — and the digest over it — is the shard determinism
    /// contract in one value.
    pub fn canonical(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "fleet v1 shards={} depth={} racks={} slices={} coord={}",
            self.shards, self.depth, self.racks, self.slices, self.coordinated
        );
        for p in &self.per_shard {
            let _ = write!(
                s,
                "|s{} ncpus={} cap={} off={} adm={} rej={} ev={} done={} thr={:.6} ms={:.6}",
                p.shard,
                p.ncpus,
                p.cap,
                p.offered,
                p.admitted,
                p.rejected,
                p.events,
                p.completed,
                p.throughput,
                p.mean_ms
            );
        }
        for (name, b) in [("fleet", &self.fleet_bus), ("rack", &self.rack_bus)] {
            let _ = write!(
                s,
                "|{name} sent={} del={} reord={} late={} retx={} ack={} gaveup={} dup={} drop={} cut={}",
                b.frames_sent,
                b.delivered,
                b.reordered,
                b.late,
                b.retransmits,
                b.acked,
                b.gave_up,
                b.dup_suppressed,
                b.channel_drops,
                b.partition_drops
            );
        }
        let _ = write!(
            s,
            "|tunes={},{},{} root={} x86={} ixp={} accel={} sync={}",
            self.tunes[0],
            self.tunes[1],
            self.tunes[2],
            self.root_lookups,
            self.islands.x86,
            self.islands.ixp,
            self.islands.accel,
            self.islands.sync_points
        );
        s
    }

    /// FNV-1a hash of [`Self::canonical`]: the value the F2 determinism
    /// columns compare across thread counts and replays.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in self.canonical().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> FleetReport {
        FleetReport {
            shards: 2,
            depth: 2,
            racks: 1,
            slices: 3,
            coordinated: true,
            per_shard: vec![
                ShardSummary {
                    shard: 0,
                    ncpus: 3,
                    cap: 60,
                    offered: 100,
                    admitted: 80,
                    rejected: 20,
                    events: 1000,
                    completed: 500,
                    throughput: 12.5,
                    mean_ms: 80.0,
                },
                ShardSummary {
                    shard: 1,
                    ncpus: 1,
                    cap: 36,
                    offered: 50,
                    admitted: 40,
                    rejected: 10,
                    events: 700,
                    completed: 300,
                    throughput: 7.5,
                    mean_ms: 160.0,
                },
            ],
            fleet_bus: BusStats::default(),
            rack_bus: BusStats::default(),
            tunes: [0, 4, 2],
            root_lookups: 2,
            islands: IslandEvents::default(),
        }
    }

    #[test]
    fn totals_roll_up() {
        let r = report();
        assert_eq!(r.total_events(), 1700);
        assert_eq!(r.sessions(), (150, 120, 30));
        assert!((r.throughput() - 20.0).abs() < 1e-9);
        assert!((r.mean_ms() - 110.0).abs() < 1e-9, "completion-weighted mean");
    }

    #[test]
    fn digest_tracks_content() {
        let a = report();
        let mut b = report();
        assert_eq!(a.digest(), b.digest());
        b.per_shard[1].completed += 1;
        assert_ne!(a.digest(), b.digest());
        // island_threads is excluded: a host knob must not change the
        // digest.
        let mut c = report();
        c.islands.island_threads = 4;
        assert_eq!(a.digest(), c.digest());
    }
}
