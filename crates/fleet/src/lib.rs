//! # fleet — sharded worlds under a Lamport-ordered coordination bus
//!
//! The paper's scalability discussion (§5) asks how coordination behaves
//! when the coordinated entities no longer share a board. This crate is
//! that story at fleet scale: **N independent platform shards** — each a
//! full island set seeded `seed ^ shard_id` for deterministic replay —
//! joined by a **cross-node coordination bus** whose frames carry
//! Lamport-timestamped envelopes, aggregated through a real
//! node → rack → fleet tree built on `coord::hierarchy`.
//!
//! The moving parts:
//!
//! * [`lamport`] — logical clocks and the `(lamport, source)` total
//!   order (after the Actyx event-sourcing treatment): every cross-node
//!   message is stamped, and every observer sorts deliveries into the
//!   same order no matter how the wire skewed them.
//! * [`bus`] — per-node lanes built from the PR-3 machinery
//!   (`pcie::Mailbox` fault injection + `coord::reliable`
//!   ack/retransmit), carrying wire-tag-8 envelopes; undelivered frames
//!   carry over into later coordination rounds as stale reports.
//! * [`shard`] — shard plans and slice build specs; plain `Send` data
//!   that `bench::pool` fans out across scoped threads.
//! * [`state`] — [`FleetState`]: per-shard admission caps (the
//!   fleet-scale coordinated resource, fed by `workloads::session`'s
//!   open-loop arrival), rebalanced each round at the tree level the
//!   topology allows.
//! * [`report`] — [`FleetReport`] and the canonical digest behind the
//!   F2 determinism columns.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bus;
pub mod lamport;
pub mod report;
pub mod shard;
pub mod state;

pub use bus::{BusConfig, BusStats, CoordBus, Delivery};
pub use lamport::{merge_streams, sort_envelopes, Envelope, LamportClock, NodeId};
pub use report::{FleetReport, ShardSummary};
pub use shard::{ShardPlan, ShardSpec};
pub use state::{FleetConfig, FleetState, FleetTopology, RoundStats};
