//! Lamport logical clocks and the `(lamport, source)` total order.
//!
//! Cross-node coordination messages cannot be ordered by wall-clock
//! arrival: bus lanes have skewed latency, drop frames, and retransmit,
//! so two nodes can observe the same set of messages in different
//! orders. Following the event-sourcing treatment in the Actyx SDK
//! (SNIPPETS.md snippet 2), every envelope carries a Lamport timestamp
//! and its source node id; sorting by `(lamport, source)` is then a
//! *total* order every observer agrees on, because a single node never
//! reuses a timestamp (its clock strictly increases) and ties between
//! nodes break by the id.

use coord::CoordMsg;

/// A fleet node identifier (shard, rack aggregator, or fleet root).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u16);

/// A Lamport logical clock: ticks on every local event, and jumps past
/// any remote timestamp it observes, so causality (`a` happened-before
/// `b`) always implies `lamport(a) < lamport(b)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LamportClock {
    time: u64,
}

impl LamportClock {
    /// A clock at time zero (no events witnessed yet).
    pub fn new() -> Self {
        LamportClock { time: 0 }
    }

    /// Advances for a local event and returns the new timestamp.
    pub fn tick(&mut self) -> u64 {
        self.time += 1;
        self.time
    }

    /// Folds in a remote timestamp (message receipt) and returns the new
    /// local time, which is strictly greater than both inputs.
    pub fn observe(&mut self, remote: u64) -> u64 {
        self.time = self.time.max(remote) + 1;
        self.time
    }

    /// The current timestamp (last returned by [`Self::tick`] /
    /// [`Self::observe`]).
    pub fn now(&self) -> u64 {
        self.time
    }
}

/// A coordination message stamped for cross-node transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Lamport timestamp assigned by the sender's clock.
    pub lamport: u64,
    /// The sending node (total-order tie-breaker).
    pub source: NodeId,
    /// The coordination verb itself.
    pub msg: CoordMsg,
}

impl Envelope {
    /// The envelope's position in the fleet-wide total order.
    pub fn key(&self) -> (u64, u16) {
        (self.lamport, self.source.0)
    }
}

/// Sorts envelopes into the `(lamport, source)` total order in place.
pub fn sort_envelopes(envs: &mut [Envelope]) {
    envs.sort_by_key(Envelope::key);
}

/// Merges per-node envelope streams (each already in total order, as any
/// single node's output is) into one totally ordered stream.
///
/// The merge is deterministic and *monotone*: the output key sequence is
/// non-decreasing, and merging is associative — merging all streams at
/// once or pairwise yields the same result.
pub fn merge_streams(streams: Vec<Vec<Envelope>>) -> Vec<Envelope> {
    let total: usize = streams.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut heads = vec![0usize; streams.len()];
    for _ in 0..total {
        let mut best: Option<usize> = None;
        for (i, s) in streams.iter().enumerate() {
            let Some(e) = s.get(heads[i]) else { continue };
            match best {
                None => best = Some(i),
                Some(b) => {
                    if e.key() < streams[b][heads[b]].key() {
                        best = Some(i);
                    }
                }
            }
        }
        let b = best.expect("total counted non-exhausted heads");
        out.push(streams[b][heads[b]].clone());
        heads[b] += 1;
    }
    debug_assert!(streams.iter().enumerate().all(|(i, s)| heads[i] == s.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use coord::EntityId;

    fn env(lamport: u64, source: u16) -> Envelope {
        Envelope {
            lamport,
            source: NodeId(source),
            msg: CoordMsg::Tune { entity: EntityId(source as u32), delta: 1, target: None },
        }
    }

    #[test]
    fn clock_ticks_and_observes() {
        let mut c = LamportClock::new();
        assert_eq!(c.tick(), 1);
        assert_eq!(c.tick(), 2);
        // Observing a remote time jumps strictly past it.
        assert_eq!(c.observe(10), 11);
        // Observing the past still advances.
        assert_eq!(c.observe(3), 12);
        assert_eq!(c.now(), 12);
    }

    #[test]
    fn merge_is_totally_ordered_with_source_tiebreak() {
        let a = vec![env(1, 0), env(3, 0), env(3, 0)];
        let b = vec![env(1, 1), env(2, 1)];
        let c = vec![env(3, 2)];
        let merged = merge_streams(vec![a, b, c]);
        let keys: Vec<(u64, u16)> = merged.iter().map(Envelope::key).collect();
        assert_eq!(keys, vec![(1, 0), (1, 1), (2, 1), (3, 0), (3, 0), (3, 2)]);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]), "monotone output");
    }

    #[test]
    fn merge_agrees_with_global_sort() {
        let a = vec![env(2, 0), env(5, 0)];
        let b = vec![env(1, 3), env(5, 3)];
        let c = vec![env(5, 1), env(6, 1)];
        let merged = merge_streams(vec![a.clone(), b.clone(), c.clone()]);
        let mut flat: Vec<Envelope> =
            a.into_iter().chain(b).chain(c).collect();
        sort_envelopes(&mut flat);
        assert_eq!(merged, flat);
    }
}
