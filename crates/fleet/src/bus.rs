//! The cross-node coordination bus: per-node lanes of faulty, latency-
//! injected [`pcie::Mailbox`] channels under the `coord::reliable`
//! ack/retransmit layer, carrying Lamport-stamped envelopes (wire tag 8).
//!
//! Each lane models one node's uplink to an aggregation point (rack or
//! fleet root). The lane reuses the exact PR-3 machinery the in-platform
//! coordination channel uses — [`pcie::FaultProfile`] for seeded
//! drop/dup/jitter/reorder, [`coord::ReliableSender`]/
//! [`coord::ReliableReceiver`] for seq-numbered retransmission and dup
//! suppression — but frames are [`coord::wire::encode_envelope`] bytes,
//! so every delivery carries the `(lamport, source)` stamp that gives
//! the fleet its total order. Delivery order within the advance window
//! is arrival order (i.e. *not* deterministic under skew); consumers
//! restore the total order by sorting on the stamp, which is exactly
//! what [`crate::FleetState`] and `coord::hierarchy::aggregate` do.

use crate::lamport::{Envelope, NodeId};
use coord::{wire, CoordMsg, ReliableConfig, ReliableReceiver, ReliableSender};
use pcie::{FaultProfile, Mailbox};
use simcore::{Nanos, SimRng};
use std::collections::BTreeMap;

/// Configuration for one bus (all lanes identical).
#[derive(Debug, Clone, Copy)]
pub struct BusConfig {
    /// One-way lane latency (cross-node: hundreds of µs to ms).
    pub latency: Nanos,
    /// Fault injection on every lane (data and ack directions).
    pub fault: FaultProfile,
    /// Reliable-delivery tuning for the lane senders.
    pub reliable: ReliableConfig,
}

impl BusConfig {
    /// A perfect bus with the given latency and default retransmission.
    pub fn perfect(latency: Nanos) -> Self {
        BusConfig { latency, fault: FaultProfile::none(), reliable: ReliableConfig::default() }
    }
}

/// Aggregate bus counters (summed over lanes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Envelope frames put on lanes (first transmissions).
    pub frames_sent: u64,
    /// Envelopes delivered to the consumer (dups suppressed).
    pub delivered: u64,
    /// Deliveries whose `(lamport, source)` key regressed on their lane —
    /// the wire really reordered (or retransmission resurrected) them.
    pub reordered: u64,
    /// Deliveries that arrived in a later round than they were sent in.
    pub late: u64,
    /// Retransmissions by the reliable layer.
    pub retransmits: u64,
    /// Frames acknowledged end-to-end.
    pub acked: u64,
    /// Frames the reliable layer gave up on.
    pub gave_up: u64,
    /// Duplicate frames suppressed at the receivers.
    pub dup_suppressed: u64,
    /// Frame copies dropped in the channel by fault injection.
    pub channel_drops: u64,
    /// Frame copies swallowed by partitions.
    pub partition_drops: u64,
}

/// One delivered envelope, with transport metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Lane (node) the envelope arrived on.
    pub node: NodeId,
    /// The envelope itself.
    pub envelope: Envelope,
    /// `true` when it was sent in an earlier round than it arrived in.
    pub late: bool,
}

struct Lane {
    data: Mailbox<Vec<u8>>,
    acks: Mailbox<u32>,
    tx: ReliableSender,
    rx: ReliableReceiver,
    /// seq → (lamport, source, send round); retransmits re-stamp from
    /// here, keys are pruned on ack.
    stamps: BTreeMap<u32, (u64, u16, u32)>,
    last_key: Option<(u64, u16)>,
    delivered: u64,
    reordered: u64,
    late: u64,
    frames_sent: u64,
}

impl Lane {
    fn new(cfg: &BusConfig, data_rng: u64, ack_rng: u64) -> Self {
        let mut data = Mailbox::new(cfg.latency);
        let mut acks = Mailbox::new(cfg.latency);
        if !cfg.fault.is_none() {
            data.set_faults(cfg.fault, SimRng::new(data_rng));
            acks.set_faults(cfg.fault, SimRng::new(ack_rng));
        }
        Lane {
            data,
            acks,
            tx: ReliableSender::new(cfg.reliable),
            rx: ReliableReceiver::new(),
            stamps: BTreeMap::new(),
            last_key: None,
            delivered: 0,
            reordered: 0,
            late: 0,
            frames_sent: 0,
        }
    }
}

/// A set of node → aggregator lanes advanced as a little discrete-event
/// simulation of its own.
///
/// Time on the bus is partitioned into coordination rounds: senders
/// stamp and send at the current round's start, [`CoordBus::advance`]
/// runs the lane event loops (deliveries, acks, retransmission timers)
/// up to the round's end, and anything still in flight carries over —
/// arriving in a later round as a *late* (stale) envelope.
pub struct CoordBus {
    lanes: Vec<Lane>,
    now: Nanos,
    round: u32,
}

impl CoordBus {
    /// Creates a bus with `nodes` lanes. Fault RNG streams derive
    /// straight from `seed` and the lane index (never from any workload
    /// RNG), so faulty buses replay exactly and fault-free buses draw
    /// nothing.
    pub fn new(nodes: u16, cfg: &BusConfig, seed: u64) -> Self {
        let lanes = (0..nodes)
            .map(|i| {
                let salt = (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                Lane::new(cfg, seed ^ 0xF1EE_7000 ^ salt, seed ^ 0xF1EE_7ACC ^ salt)
            })
            .collect();
        CoordBus { lanes, now: Nanos::ZERO, round: 0 }
    }

    /// Number of lanes.
    pub fn nodes(&self) -> u16 {
        self.lanes.len() as u16
    }

    /// The bus clock (end of the last advanced window).
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Starts round `round` (monotonically non-decreasing; used only to
    /// classify late deliveries).
    pub fn set_round(&mut self, round: u32) {
        self.round = self.round.max(round);
    }

    /// Cuts (or heals) a node's lane in both directions.
    pub fn partition(&mut self, node: NodeId, cut: bool) {
        let lane = &mut self.lanes[node.0 as usize];
        lane.data.set_partitioned(cut);
        lane.acks.set_partitioned(cut);
    }

    /// Sends an envelope on `node`'s lane at the current bus time.
    pub fn send(&mut self, node: NodeId, env: &Envelope) {
        let lane = &mut self.lanes[node.0 as usize];
        let seq = lane.tx.send(self.now, env.msg);
        lane.stamps.insert(seq, (env.lamport, env.source.0, self.round));
        let mut bytes = Vec::with_capacity(32);
        wire::encode_envelope(seq, env.lamport, env.source.0, &env.msg, &mut bytes);
        lane.data.send(self.now, bytes);
        lane.frames_sent += 1;
    }

    /// Runs every lane's event loop — deliveries, acks, retransmission
    /// timers — up to `until`, appending delivered envelopes to `out` in
    /// per-lane arrival order (lanes drained in node order).
    pub fn advance(&mut self, until: Nanos, out: &mut Vec<Delivery>) {
        let round = self.round;
        for (i, lane) in self.lanes.iter_mut().enumerate() {
            let node = NodeId(i as u16);
            let mut frames: Vec<Vec<u8>> = Vec::new();
            let mut acked: Vec<u32> = Vec::new();
            let mut retx: Vec<(u32, CoordMsg)> = Vec::new();
            loop {
                let next = [
                    lane.data.next_event_time(),
                    lane.acks.next_event_time(),
                    lane.tx.next_timer(),
                ]
                .into_iter()
                .flatten()
                .min();
                let Some(t) = next else { break };
                if t > until {
                    break;
                }
                // Deliver data frames due at t: decode, dedup, ack.
                frames.clear();
                lane.data.on_timer(t, &mut frames);
                for bytes in frames.drain(..) {
                    let (seq, lamport, source, msg, _) =
                        wire::decode_envelope(&bytes).expect("bus frames are self-encoded");
                    // Ack every copy — the original ack may have been
                    // lost, and a stale retransmitting sender must stop.
                    lane.acks.send(t, seq);
                    if !lane.rx.accept(seq) {
                        continue;
                    }
                    let key = (lamport, source);
                    if lane.last_key.is_some_and(|last| key < last) {
                        lane.reordered += 1;
                    }
                    lane.last_key = Some(lane.last_key.map_or(key, |last| last.max(key)));
                    let sent_round =
                        lane.stamps.get(&seq).map_or(round, |&(_, _, r)| r);
                    let late = sent_round < round;
                    if late {
                        lane.late += 1;
                    }
                    lane.delivered += 1;
                    out.push(Delivery {
                        node,
                        envelope: Envelope {
                            lamport,
                            source: NodeId(source),
                            msg,
                        },
                        late,
                    });
                }
                // Acks back to the sender retire pending entries.
                acked.clear();
                lane.acks.on_timer(t, &mut acked);
                for seq in acked.drain(..) {
                    if lane.tx.on_ack(t, seq) {
                        lane.stamps.remove(&seq);
                    }
                }
                // Retransmission timers re-stamp from the stored stamp.
                retx.clear();
                lane.tx.on_timer(t, &mut retx);
                for (seq, msg) in retx.drain(..) {
                    let &(lamport, source, _) =
                        lane.stamps.get(&seq).expect("pending frames keep their stamp");
                    let mut bytes = Vec::with_capacity(32);
                    wire::encode_envelope(seq, lamport, source, &msg, &mut bytes);
                    lane.data.send(t, bytes);
                }
            }
        }
        self.now = self.now.max(until);
    }

    /// Summed lane counters.
    pub fn stats(&self) -> BusStats {
        let mut s = BusStats::default();
        for lane in &self.lanes {
            s.frames_sent += lane.frames_sent;
            s.delivered += lane.delivered;
            s.reordered += lane.reordered;
            s.late += lane.late;
            let tx = lane.tx.stats();
            s.retransmits += tx.retransmits;
            s.acked += tx.acked;
            s.gave_up += tx.gave_up;
            s.dup_suppressed += lane.rx.dup_suppressed();
            s.channel_drops += lane.data.dropped() + lane.acks.dropped();
            s.partition_drops += lane.data.partition_drops() + lane.acks.partition_drops();
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coord::EntityId;
    use pcie::Jitter;

    fn env(lamport: u64, source: u16, delta: i32) -> Envelope {
        Envelope {
            lamport,
            source: NodeId(source),
            msg: CoordMsg::Tune { entity: EntityId(source as u32), delta, target: None },
        }
    }

    fn window(bus: &mut CoordBus, until: Nanos) -> Vec<Delivery> {
        let mut out = Vec::new();
        bus.advance(until, &mut out);
        out
    }

    #[test]
    fn perfect_bus_delivers_everything_in_one_window() {
        let cfg = BusConfig::perfect(Nanos::from_micros(500));
        let mut bus = CoordBus::new(3, &cfg, 42);
        for n in 0..3u16 {
            bus.send(NodeId(n), &env(1, n, 10));
        }
        let got = window(&mut bus, Nanos::from_millis(5));
        assert_eq!(got.len(), 3);
        assert!(got.iter().all(|d| !d.late));
        let s = bus.stats();
        assert_eq!((s.frames_sent, s.delivered, s.acked), (3, 3, 3));
        assert_eq!((s.retransmits, s.reordered, s.late), (0, 0, 0));
    }

    #[test]
    fn lossy_lanes_recover_by_retransmission() {
        let cfg = BusConfig {
            latency: Nanos::from_micros(200),
            fault: FaultProfile::none().with_drop(0.4),
            reliable: ReliableConfig::default(),
        };
        let mut bus = CoordBus::new(2, &cfg, 7);
        for i in 0..20u64 {
            bus.send(NodeId((i % 2) as u16), &env(i + 1, (i % 2) as u16, 1));
        }
        // A generous window lets the ack/retransmit machinery converge.
        let got = window(&mut bus, Nanos::from_millis(100));
        assert_eq!(got.len(), 20, "reliable layer must recover every frame");
        let s = bus.stats();
        assert!(s.retransmits > 0, "40% drop must force retransmissions");
        assert!(s.channel_drops > 0);
        assert_eq!(s.delivered, 20);
    }

    #[test]
    fn undelivered_frames_arrive_late_next_round() {
        let cfg = BusConfig::perfect(Nanos::from_millis(2));
        let mut bus = CoordBus::new(1, &cfg, 1);
        bus.set_round(0);
        bus.send(NodeId(0), &env(1, 0, 5));
        // Window ends before the 2 ms latency elapses: nothing lands.
        assert!(window(&mut bus, Nanos::from_millis(1)).is_empty());
        bus.set_round(1);
        let got = window(&mut bus, Nanos::from_millis(4));
        assert_eq!(got.len(), 1);
        assert!(got[0].late, "carried-over frame must be flagged stale");
        assert_eq!(bus.stats().late, 1);
    }

    #[test]
    fn partition_swallows_then_heals() {
        let cfg = BusConfig {
            latency: Nanos::from_micros(100),
            fault: FaultProfile::none(),
            // Cap retries so the partition-era frames die quickly.
            reliable: ReliableConfig::default(),
        };
        let mut bus = CoordBus::new(2, &cfg, 3);
        bus.partition(NodeId(0), true);
        bus.send(NodeId(0), &env(1, 0, 1));
        bus.send(NodeId(1), &env(1, 1, 1));
        // Backed-off retries (1, 3, 7, 15, 31 ms) exhaust at 63 ms.
        let got = window(&mut bus, Nanos::from_millis(70));
        // Only the healthy node's envelope lands; the partitioned lane
        // swallowed the original and every retransmission.
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].envelope.source, NodeId(1));
        let s = bus.stats();
        assert!(s.partition_drops > 0);
        assert_eq!(s.gave_up, 1);
        // Heal and verify the lane works again.
        bus.partition(NodeId(0), false);
        bus.send(NodeId(0), &env(2, 0, 1));
        let got = window(&mut bus, Nanos::from_millis(100));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].envelope.lamport, 2);
    }

    #[test]
    fn reorder_window_flags_key_regressions() {
        let cfg = BusConfig {
            latency: Nanos::from_micros(50),
            fault: FaultProfile::none()
                .with_jitter(Jitter::Uniform { max: Nanos::from_millis(2) })
                .with_reorder(Nanos::from_millis(2)),
            reliable: ReliableConfig::default(),
        };
        let mut bus = CoordBus::new(1, &cfg, 9);
        for i in 0..50u64 {
            bus.send(NodeId(0), &env(i + 1, 0, 1));
        }
        let got = window(&mut bus, Nanos::from_secs(1));
        assert_eq!(got.len(), 50);
        let s = bus.stats();
        assert!(s.reordered > 0, "a 2 ms window over 50 µs spacing must reorder");
        // The consumer-side fix: sorting by the stamp restores the order.
        let mut envs: Vec<Envelope> = got.into_iter().map(|d| d.envelope).collect();
        crate::lamport::sort_envelopes(&mut envs);
        assert!(envs.windows(2).all(|w| w[0].key() <= w[1].key()));
    }
}
