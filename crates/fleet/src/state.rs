//! Fleet coordination state: admission caps, Lamport clocks, buses, and
//! the node → rack → fleet aggregation tree.
//!
//! The coordinated resource at fleet scale is the per-shard **admission
//! cap** (how many concurrent sessions a shard may run). Each slice,
//! every shard reports its pressure (mean response time) upward as a
//! Lamport-stamped Tune envelope; aggregation points rebalance cap from
//! high-pressure members toward low-pressure ones, conserving the total.
//! The tree depth decides *where* rebalancing happens:
//!
//! * depth 1 — every shard reports straight to the fleet root over the
//!   cross-node bus; all rebalancing is global (and every decision is a
//!   root-directory forward in `coord::hierarchy` terms).
//! * depth 2 — shards report to their rack over short intra-rack lanes;
//!   racks rebalance locally (zone-local resolutions) and forward only a
//!   residual summary to the root.
//! * depth 3 — node-group pairs pre-balance synchronously (level-0
//!   tunes) before the rack and fleet stages.
//!
//! Deeper trees therefore keep most coordination close to the data and
//! degrade gracefully when the cross-node bus is slow or lossy — the F1
//! experiment measures exactly that.

use crate::bus::{BusConfig, CoordBus, Delivery};
use crate::lamport::{Envelope, LamportClock, NodeId};
use crate::report::{FleetReport, ShardSummary};
use crate::shard::{slice_seed, ShardPlan, ShardSpec};
use coord::hierarchy::{ChildReport, HierarchicalController, ZoneId};
use coord::{Action, CoordMsg, EntityId, IslandId, IslandKind};
use pcie::{FaultProfile, Jitter};
use platform::{IslandEvents, RunReport};
use simcore::Nanos;
use workloads::session::simulate_admission;

/// Shape of the fleet tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetTopology {
    /// Number of shards (independent platforms).
    pub shards: u16,
    /// Aggregation depth: 1 (flat), 2 (racks), or 3 (node groups + racks).
    pub depth: u8,
    /// Shards per rack.
    pub rack_size: u16,
}

impl FleetTopology {
    /// Creates a topology.
    ///
    /// # Panics
    /// Panics unless `shards > 0`, `rack_size > 0` and `1 <= depth <= 3`.
    pub fn new(shards: u16, depth: u8, rack_size: u16) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(rack_size > 0, "need a positive rack size");
        assert!((1..=3).contains(&depth), "depth must be 1..=3");
        FleetTopology { shards, depth, rack_size }
    }

    /// Number of racks.
    pub fn racks(&self) -> u16 {
        self.shards.div_ceil(self.rack_size)
    }

    /// The rack a shard belongs to.
    pub fn rack_of(&self, shard: u16) -> u16 {
        shard / self.rack_size
    }

    /// The node-group (pair) a shard belongs to (depth-3 level 0).
    pub fn group_of(&self, shard: u16) -> u16 {
        shard / 2
    }
}

/// Fleet-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Tree shape.
    pub topo: FleetTopology,
    /// Cross-node bus lanes (the fleet root's uplinks). Intra-rack lanes
    /// derive from this with 8× lower latency and 4× lower loss.
    pub bus: BusConfig,
    /// `false` runs the uncoordinated arm: caps stay at `base_cap`.
    pub coordinated: bool,
    /// Initial per-shard admission cap (concurrent sessions).
    pub base_cap: u32,
    /// Floor a rebalance may push a shard's cap to.
    pub min_cap: u32,
    /// Ceiling a rebalance may raise a shard's cap to.
    pub max_cap: u32,
    /// Rebalance step: fraction of the pressure imbalance corrected per
    /// round (0.5 = half).
    pub gain: f64,
    /// Coordination-round window: how long each round waits for
    /// envelopes before acting on what arrived.
    pub window: Nanos,
    /// Fleet seed; shard `s` derives every stream from `seed ^ s`.
    pub seed: u64,
}

/// What one coordination round did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundStats {
    /// Envelopes delivered (all buses) within the round's window.
    pub delivered: u32,
    /// Deliveries that were stale (sent in an earlier round).
    pub late: u32,
    /// Cap moves applied, by tree level (node group, rack, fleet root).
    pub moves: [u32; 3],
}

/// Intra-rack lanes: an 8× faster, 4× cleaner derivative of the
/// cross-node bus config.
fn rack_bus_cfg(bus: &BusConfig) -> BusConfig {
    let div = |n: Nanos, d: u64| Nanos::from_nanos(n.as_nanos() / d);
    let jitter = match bus.fault.jitter {
        Jitter::None => Jitter::None,
        Jitter::Uniform { max } => Jitter::Uniform { max: div(max, 8) },
        Jitter::Exponential { mean } => Jitter::Exponential { mean: div(mean, 8) },
    };
    BusConfig {
        latency: div(bus.latency, 8),
        fault: FaultProfile {
            drop_prob: bus.fault.drop_prob / 4.0,
            dup_prob: bus.fault.dup_prob / 4.0,
            jitter,
            reorder_window: div(bus.fault.reorder_window, 8),
        },
        reliable: bus.reliable,
    }
}

/// Encodes a pressure (mean response ms) into a Tune delta (centi-ms).
fn quantize(pressure_ms: f64) -> i32 {
    (pressure_ms * 100.0).round().clamp(0.0, i32::MAX as f64) as i32
}

/// Rebalances capacity among units: moves cap from units whose pressure
/// sits above the cap-weighted mean toward units below it, `gain` of the
/// imbalance per call, conserving the total (subject to the per-unit
/// clamp). Deterministic; ties resolve by lowest index.
fn rebalance(units: &[(u32, f64)], gain: f64, min_cap: u32, max_cap: u32) -> Vec<i64> {
    let n = units.len();
    let mut deltas = vec![0i64; n];
    if n < 2 {
        return deltas;
    }
    let total_cap: u64 = units.iter().map(|&(c, _)| c as u64).sum();
    if total_cap == 0 {
        return deltas;
    }
    let wmean: f64 = units.iter().map(|&(c, p)| c as f64 * p).sum::<f64>() / total_cap as f64;
    if wmean <= f64::EPSILON {
        return deltas;
    }
    let lo = |cap: u32| min_cap as i64 - cap as i64;
    let hi = |cap: u32| max_cap as i64 - cap as i64;
    for (i, &(cap, p)) in units.iter().enumerate() {
        let raw = gain * cap as f64 * (wmean - p) / wmean;
        deltas[i] = (raw.round() as i64).clamp(lo(cap), hi(cap));
    }
    // Restore conservation lost to rounding and clamping: shave the
    // largest donors/receivers one unit at a time, lowest index first.
    loop {
        let sum: i64 = deltas.iter().sum();
        if sum == 0 {
            break;
        }
        let pick = if sum > 0 {
            deltas
                .iter()
                .enumerate()
                .filter(|&(i, &d)| d > lo(units[i].0))
                .max_by_key(|&(i, &d)| (d, std::cmp::Reverse(i)))
                .map(|(i, _)| i)
        } else {
            deltas
                .iter()
                .enumerate()
                .filter(|&(i, &d)| d < hi(units[i].0))
                .min_by_key(|&(i, &d)| (d, i))
                .map(|(i, _)| i)
        };
        let Some(i) = pick else { break };
        deltas[i] -= sum.signum();
    }
    deltas
}

/// Splits a unit-level delta across members pro-rata by cap (largest
/// share first in index order; remainder spread one unit at a time).
fn distribute(delta: i64, member_caps: &[u32]) -> Vec<i64> {
    let n = member_caps.len();
    if n == 1 {
        return vec![delta];
    }
    let total: i64 = member_caps.iter().map(|&c| c as i64).sum();
    let mut out = vec![0i64; n];
    if total == 0 {
        out[0] = delta;
        return out;
    }
    let mut assigned = 0i64;
    for (i, &c) in member_caps.iter().enumerate() {
        out[i] = delta * c as i64 / total;
        assigned += out[i];
    }
    let mut rem = delta - assigned;
    let step = rem.signum();
    let mut i = 0;
    while rem != 0 {
        out[i % n] += step;
        rem -= step;
        i += 1;
    }
    out
}

/// The fleet: N shard plans, their admission caps, and the coordination
/// tree that moves cap between them.
pub struct FleetState {
    cfg: FleetConfig,
    plans: Vec<ShardPlan>,
    caps: Vec<u32>,
    shard_clocks: Vec<LamportClock>,
    rack_clocks: Vec<LamportClock>,
    root_clock: LamportClock,
    /// Shard → rack lanes (depth ≥ 2).
    rack_bus: Option<CoordBus>,
    /// Uplinks to the fleet root: shard lanes at depth 1, rack lanes
    /// at depth ≥ 2.
    fleet_bus: CoordBus,
    h: HierarchicalController,
    tunes: [u64; 3],
    round: u32,
    slices: u32,
    sim_nanos: u128,
    // Per-shard accumulators across slices.
    offered: Vec<u64>,
    admitted: Vec<u64>,
    rejected: Vec<u64>,
    events: Vec<u64>,
    completed: Vec<u64>,
    resp_weight: Vec<f64>,
    resp_count: Vec<u64>,
    islands: IslandEvents,
}

impl FleetState {
    /// Builds the fleet from per-shard plans.
    ///
    /// # Panics
    /// Panics if `plans.len()` does not match the topology's shard count.
    pub fn new(cfg: FleetConfig, plans: Vec<ShardPlan>) -> Self {
        let topo = cfg.topo;
        let shards = topo.shards as usize;
        assert_eq!(plans.len(), shards, "one plan per shard");
        let racks = topo.racks();
        // The hierarchy models racks as zones plus one extra root zone;
        // rack-stage decisions resolve zone-locally, root-stage decisions
        // originate in the root zone and forward through the directory.
        let mut h = HierarchicalController::new(racks + 1);
        for r in 0..racks {
            h.register_island(ZoneId(r), IslandId(r), IslandKind::GeneralPurpose);
        }
        for plan in &plans {
            let rack = topo.rack_of(plan.shard);
            h.register_entity(
                ZoneId(rack),
                EntityId(plan.shard as u32),
                IslandId(rack),
                plan.shard as u64,
            );
        }
        let rack_bus = (topo.depth >= 2)
            .then(|| CoordBus::new(topo.shards, &rack_bus_cfg(&cfg.bus), cfg.seed ^ 0x7ACC));
        let fleet_nodes = if topo.depth >= 2 { racks } else { topo.shards };
        let fleet_bus = CoordBus::new(fleet_nodes, &cfg.bus, cfg.seed);
        FleetState {
            plans,
            caps: vec![cfg.base_cap; shards],
            shard_clocks: vec![LamportClock::new(); shards],
            rack_clocks: vec![LamportClock::new(); racks as usize],
            root_clock: LamportClock::new(),
            rack_bus,
            fleet_bus,
            h,
            tunes: [0; 3],
            round: 0,
            slices: 0,
            sim_nanos: 0,
            offered: vec![0; shards],
            admitted: vec![0; shards],
            rejected: vec![0; shards],
            events: vec![0; shards],
            completed: vec![0; shards],
            resp_weight: vec![0.0; shards],
            resp_count: vec![0; shards],
            islands: IslandEvents::default(),
            cfg,
        }
    }

    /// Current per-shard admission caps.
    pub fn caps(&self) -> &[u32] {
        &self.caps
    }

    /// The topology.
    pub fn topo(&self) -> FleetTopology {
        self.cfg.topo
    }

    /// Cuts (or heals) a shard's uplink — its rack lane at depth ≥ 2,
    /// its root lane at depth 1.
    pub fn partition_shard(&mut self, shard: u16, cut: bool) {
        match self.rack_bus.as_mut() {
            Some(bus) => bus.partition(NodeId(shard), cut),
            None => self.fleet_bus.partition(NodeId(shard), cut),
        }
    }

    /// Runs each shard's admission door for the coming slice and returns
    /// the build specs (admitted concurrency, slice-salted seeds).
    pub fn specs(&mut self, slice: u32, duration: Nanos) -> Vec<ShardSpec> {
        let seed = slice_seed(self.cfg.seed, slice);
        self.slices += 1;
        self.sim_nanos += duration.as_nanos() as u128;
        self.plans
            .iter()
            .map(|plan| {
                let s = plan.shard as usize;
                let adm_seed = seed
                    ^ 0xAD3A_0000
                    ^ (plan.shard as u64).wrapping_mul(0x517C_C1B7_2722_0A95);
                let adm = simulate_admission(plan.load, self.caps[s], duration, adm_seed);
                self.offered[s] += adm.offered;
                self.admitted[s] += adm.admitted;
                self.rejected[s] += adm.rejected;
                let clients = (adm.mean_active.round() as u32).min(self.caps[s]).max(1);
                ShardSpec {
                    shard: plan.shard,
                    seed,
                    ncpus: plan.ncpus,
                    clients,
                    duration,
                }
            })
            .collect()
    }

    /// Folds one slice's shard reports into the fleet accumulators and —
    /// on the coordinated arm — runs one coordination round over the
    /// resulting pressures.
    pub fn absorb(&mut self, reports: &[RunReport]) -> RoundStats {
        assert_eq!(reports.len(), self.plans.len(), "one report per shard");
        let mut pressures = vec![0.0f64; reports.len()];
        for (s, r) in reports.iter().enumerate() {
            self.events[s] += r.events_by_island.x86 + r.events_by_island.ixp + r.events_by_island.accel;
            self.completed[s] += r.rubis.completed;
            let overall = r.rubis.responses.overall();
            self.resp_weight[s] += overall.mean() * overall.count() as f64;
            self.resp_count[s] += overall.count();
            self.islands.accumulate(&r.events_by_island);
            pressures[s] = overall.mean();
        }
        if self.cfg.coordinated {
            self.coordinate(&pressures)
        } else {
            RoundStats::default()
        }
    }

    /// One coordination round: stamp → bus → ordered fold → rebalance,
    /// at each level of the tree.
    fn coordinate(&mut self, pressures: &[f64]) -> RoundStats {
        let topo = self.cfg.topo;
        let window = self.cfg.window;
        let round = self.round;
        self.round += 1;
        let mut stats = RoundStats::default();

        // Every shard stamps its pressure report.
        let stamps: Vec<u64> =
            self.shard_clocks.iter_mut().map(LamportClock::tick).collect();

        // ---- Level 0: node-group pre-balance (depth 3) --------------
        // Units carried upward: (representative shard, lamport, source,
        // pressure, member shards).
        let mut units: Vec<(u16, u64, u16, f64, Vec<u16>)> = Vec::new();
        if topo.depth == 3 {
            let groups = topo.shards.div_ceil(2);
            for g in 0..groups {
                let members: Vec<u16> =
                    (g * 2..topo.shards.min(g * 2 + 2)).collect();
                let member_units: Vec<(u32, f64)> = members
                    .iter()
                    .map(|&m| (self.caps[m as usize], pressures[m as usize]))
                    .collect();
                let deltas = rebalance(
                    &member_units,
                    self.cfg.gain,
                    self.cfg.min_cap,
                    self.cfg.max_cap,
                );
                let batch: Vec<ChildReport> = members
                    .iter()
                    .zip(&deltas)
                    .filter(|&(_, &d)| d != 0)
                    .map(|(&m, &d)| ChildReport {
                        lamport: stamps[m as usize],
                        source: m,
                        origin: ZoneId(topo.rack_of(m)),
                        msg: CoordMsg::Tune {
                            entity: EntityId(m as u32),
                            delta: d as i32,
                            target: None,
                        },
                    })
                    .collect();
                stats.moves[0] += batch.len() as u32;
                self.tunes[0] += batch.len() as u64;
                let actions = self.h.aggregate(self.fleet_bus.now(), batch);
                self.apply(&actions);
                // Residual: cap-weighted group pressure under the rep's
                // clock, which observes its partner before speaking.
                let rep = members[0];
                let cap_sum: u64 =
                    members.iter().map(|&m| self.caps[m as usize] as u64).sum();
                let p = if cap_sum == 0 {
                    0.0
                } else {
                    members
                        .iter()
                        .map(|&m| self.caps[m as usize] as f64 * pressures[m as usize])
                        .sum::<f64>()
                        / cap_sum as f64
                };
                let max_stamp =
                    members.iter().map(|&m| stamps[m as usize]).max().unwrap_or(0);
                let lamport = self.shard_clocks[rep as usize].observe(max_stamp);
                units.push((rep, lamport, rep, p, members));
            }
        } else {
            for plan in &self.plans {
                let s = plan.shard;
                units.push((s, stamps[s as usize], s, pressures[s as usize], vec![s]));
            }
        }

        // ---- Level 1: rack stage over the intra-rack bus (depth ≥ 2) --
        let racks = topo.racks();
        let mut root_inputs: Vec<(u16, u64, u16, f64, Vec<u16>)> = Vec::new();
        let rack_deliveries: Option<Vec<Delivery>> = self.rack_bus.as_mut().map(|bus| {
            bus.set_round(round);
            let start = bus.now();
            for &(rep, lamport, source, p, _) in &units {
                bus.send(
                    NodeId(rep),
                    &Envelope {
                        lamport,
                        source: NodeId(source),
                        msg: CoordMsg::Tune {
                            entity: EntityId(rep as u32),
                            delta: quantize(p),
                            target: None,
                        },
                    },
                );
            }
            let mut deliveries: Vec<Delivery> = Vec::new();
            bus.advance(start + window, &mut deliveries);
            deliveries
        });
        if let Some(deliveries) = rack_deliveries {
            stats.delivered += deliveries.len() as u32;
            stats.late += deliveries.iter().filter(|d| d.late).count() as u32;
            for r in 0..racks {
                // Latest report per unit, restored to (lamport, source)
                // order — the satellite-1 contract.
                let mut seen: Vec<(u16, u64, u16, f64)> = Vec::new();
                for d in deliveries.iter().filter(|d| topo.rack_of(d.node.0) == r) {
                    let CoordMsg::Tune { entity, delta, .. } = d.envelope.msg else {
                        continue;
                    };
                    let unit = entity.0 as u16;
                    let rec =
                        (unit, d.envelope.lamport, d.envelope.source.0, delta as f64 / 100.0);
                    match seen.iter_mut().find(|u| u.0 == unit) {
                        Some(u) if (u.1, u.2) < (rec.1, rec.2) => *u = rec,
                        Some(_) => {}
                        None => seen.push(rec),
                    }
                }
                seen.sort_by_key(|&(unit, l, s, _)| (l, s, unit));
                if seen.is_empty() {
                    continue;
                }
                let max_stamp = seen.iter().map(|&(_, l, _, _)| l).max().unwrap_or(0);
                self.rack_clocks[r as usize].observe(max_stamp);
                let rack_node = topo.shards + r;
                let unit_defs: Vec<(u32, f64)> = seen
                    .iter()
                    .map(|&(unit, _, _, p)| (self.unit_cap(unit, topo.depth), p))
                    .collect();
                let deltas = rebalance(
                    &unit_defs,
                    self.cfg.gain,
                    self.cfg.min_cap,
                    self.cfg.max_cap,
                );
                let mut batch: Vec<ChildReport> = Vec::new();
                for (&(unit, ..), &d) in seen.iter().zip(&deltas) {
                    if d == 0 {
                        continue;
                    }
                    for (member, md) in self.split_unit(unit, topo.depth, d) {
                        batch.push(ChildReport {
                            lamport: self.rack_clocks[r as usize].tick(),
                            source: rack_node,
                            origin: ZoneId(r),
                            msg: CoordMsg::Tune {
                                entity: EntityId(member as u32),
                                delta: md as i32,
                                target: None,
                            },
                        });
                    }
                }
                stats.moves[1] += batch.len() as u32;
                self.tunes[1] += batch.len() as u64;
                let now = self.fleet_bus.now();
                let actions = self.h.aggregate(now, batch);
                self.apply(&actions);
                // Residual pressure forwarded to the root.
                let cap_sum: u64 = unit_defs.iter().map(|&(c, _)| c as u64).sum();
                let p = if cap_sum == 0 {
                    0.0
                } else {
                    unit_defs.iter().map(|&(c, p)| c as f64 * p).sum::<f64>() / cap_sum as f64
                };
                let members: Vec<u16> = self
                    .plans
                    .iter()
                    .map(|pl| pl.shard)
                    .filter(|&s| topo.rack_of(s) == r)
                    .collect();
                let lamport = self.rack_clocks[r as usize].tick();
                root_inputs.push((r, lamport, rack_node, p, members));
            }
        } else {
            root_inputs = units;
        }

        // ---- Level 2: fleet root over the cross-node bus -------------
        self.fleet_bus.set_round(round);
        let start = self.fleet_bus.now();
        for &(lane, lamport, source, p, _) in &root_inputs {
            self.fleet_bus.send(
                NodeId(lane),
                &Envelope {
                    lamport,
                    source: NodeId(source),
                    msg: CoordMsg::Tune {
                        entity: EntityId(lane as u32),
                        delta: quantize(p),
                        target: None,
                    },
                },
            );
        }
        let mut deliveries: Vec<Delivery> = Vec::new();
        self.fleet_bus.advance(start + window, &mut deliveries);
        stats.delivered += deliveries.len() as u32;
        stats.late += deliveries.iter().filter(|d| d.late).count() as u32;
        let mut seen: Vec<(u16, u64, u16, f64)> = Vec::new();
        for d in &deliveries {
            let CoordMsg::Tune { entity, delta, .. } = d.envelope.msg else { continue };
            let unit = entity.0 as u16;
            let rec = (unit, d.envelope.lamport, d.envelope.source.0, delta as f64 / 100.0);
            match seen.iter_mut().find(|u| u.0 == unit) {
                Some(u) if (u.1, u.2) < (rec.1, rec.2) => *u = rec,
                Some(_) => {}
                None => seen.push(rec),
            }
        }
        seen.sort_by_key(|&(unit, l, s, _)| (l, s, unit));
        if !seen.is_empty() {
            let max_stamp = seen.iter().map(|&(_, l, _, _)| l).max().unwrap_or(0);
            self.root_clock.observe(max_stamp);
            let root_zone = ZoneId(racks);
            let root_node = topo.shards + racks;
            let unit_defs: Vec<(u32, f64)> = seen
                .iter()
                .map(|&(unit, _, _, p)| {
                    if topo.depth >= 2 {
                        (self.rack_cap(unit), p)
                    } else {
                        (self.caps[unit as usize], p)
                    }
                })
                .collect();
            let deltas =
                rebalance(&unit_defs, self.cfg.gain, self.cfg.min_cap, self.cfg.max_cap);
            let mut batch: Vec<ChildReport> = Vec::new();
            for (&(unit, ..), &d) in seen.iter().zip(&deltas) {
                if d == 0 {
                    continue;
                }
                let members: Vec<u16> = if topo.depth >= 2 {
                    self.plans
                        .iter()
                        .map(|pl| pl.shard)
                        .filter(|&s| topo.rack_of(s) == unit)
                        .collect()
                } else {
                    vec![unit]
                };
                let member_caps: Vec<u32> =
                    members.iter().map(|&m| self.caps[m as usize]).collect();
                for (&m, &md) in members.iter().zip(&distribute(d, &member_caps)) {
                    if md == 0 {
                        continue;
                    }
                    batch.push(ChildReport {
                        lamport: self.root_clock.tick(),
                        source: root_node,
                        origin: root_zone,
                        msg: CoordMsg::Tune {
                            entity: EntityId(m as u32),
                            delta: md as i32,
                            target: None,
                        },
                    });
                }
            }
            stats.moves[2] += batch.len() as u32;
            self.tunes[2] += batch.len() as u64;
            let now = self.fleet_bus.now();
            let actions = self.h.aggregate(now, batch);
            self.apply(&actions);
        }
        // Feedback: the root's decision closes the causal loop — every
        // shard clock observes the root's time before its next report.
        let root_now = self.root_clock.now();
        for c in &mut self.shard_clocks {
            c.observe(root_now);
        }
        stats
    }

    /// A unit's current cap: the shard's own cap at depth ≤ 2, the
    /// node-group sum at depth 3 (unit = representative shard).
    fn unit_cap(&self, unit: u16, depth: u8) -> u32 {
        if depth == 3 {
            let g = self.cfg.topo.group_of(unit);
            (g * 2..self.cfg.topo.shards.min(g * 2 + 2))
                .map(|m| self.caps[m as usize])
                .sum()
        } else {
            self.caps[unit as usize]
        }
    }

    /// Splits a unit delta into per-shard deltas.
    fn split_unit(&self, unit: u16, depth: u8, delta: i64) -> Vec<(u16, i64)> {
        if depth == 3 {
            let g = self.cfg.topo.group_of(unit);
            let members: Vec<u16> =
                (g * 2..self.cfg.topo.shards.min(g * 2 + 2)).collect();
            let caps: Vec<u32> = members.iter().map(|&m| self.caps[m as usize]).collect();
            members.into_iter().zip(distribute(delta, &caps)).collect()
        } else {
            vec![(unit, delta)]
        }
    }

    /// A rack's total cap.
    fn rack_cap(&self, rack: u16) -> u32 {
        self.plans
            .iter()
            .filter(|p| self.cfg.topo.rack_of(p.shard) == rack)
            .map(|p| self.caps[p.shard as usize])
            .sum()
    }

    /// Applies hierarchy actions to the cap vector (clamped — which is
    /// exactly why the fold order must be deterministic).
    fn apply(&mut self, actions: &[Action]) {
        for a in actions {
            if let Action::ApplyTune { local_key, delta, .. } = *a {
                let s = local_key as usize;
                let next = self.caps[s] as i64 + delta as i64;
                self.caps[s] =
                    next.clamp(self.cfg.min_cap as i64, self.cfg.max_cap as i64) as u32;
            }
        }
    }

    /// The fleet-level report over everything absorbed so far.
    pub fn report(&self) -> FleetReport {
        let secs = self.sim_nanos as f64 / 1e9;
        let per_shard: Vec<ShardSummary> = self
            .plans
            .iter()
            .map(|plan| {
                let s = plan.shard as usize;
                ShardSummary {
                    shard: plan.shard,
                    ncpus: plan.ncpus,
                    cap: self.caps[s],
                    offered: self.offered[s],
                    admitted: self.admitted[s],
                    rejected: self.rejected[s],
                    events: self.events[s],
                    completed: self.completed[s],
                    throughput: if secs > 0.0 { self.completed[s] as f64 / secs } else { 0.0 },
                    mean_ms: if self.resp_count[s] > 0 {
                        self.resp_weight[s] / self.resp_count[s] as f64
                    } else {
                        0.0
                    },
                }
            })
            .collect();
        FleetReport {
            shards: self.cfg.topo.shards,
            depth: self.cfg.topo.depth,
            racks: self.cfg.topo.racks(),
            slices: self.slices,
            coordinated: self.cfg.coordinated,
            per_shard,
            fleet_bus: self.fleet_bus.stats(),
            rack_bus: self.rack_bus.as_ref().map(CoordBus::stats).unwrap_or_default(),
            tunes: self.tunes,
            root_lookups: self.h.root_lookups(),
            islands: self.islands,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::session::SessionLoad;

    fn plans(n: u16) -> Vec<ShardPlan> {
        (0..n)
            .map(|s| ShardPlan {
                shard: s,
                ncpus: [3, 2, 1][s as usize % 3],
                load: SessionLoad {
                    arrivals_per_sec: [12.0, 6.0, 8.0][s as usize % 3],
                    mean_session_secs: 8.0,
                },
            })
            .collect()
    }

    fn cfg(shards: u16, depth: u8, coordinated: bool) -> FleetConfig {
        FleetConfig {
            topo: FleetTopology::new(shards, depth, 4),
            bus: BusConfig::perfect(Nanos::from_micros(100)),
            coordinated,
            base_cap: 48,
            min_cap: 8,
            max_cap: 96,
            gain: 0.5,
            window: Nanos::from_millis(2),
            seed: 42,
        }
    }

    /// Synthetic pressures standing in for platform runs: weak shards
    /// (fewer cpus) report higher mean response.
    fn pressure_round(state: &mut FleetState) -> RoundStats {
        let p: Vec<f64> = state
            .plans
            .iter()
            .map(|pl| 400.0 * pl.load.erlangs() / (pl.ncpus as f64 * 40.0))
            .collect();
        state.coordinate(&p)
    }

    #[test]
    fn uncoordinated_caps_never_move() {
        let mut st = FleetState::new(cfg(8, 2, false), plans(8));
        let specs = st.specs(0, Nanos::from_secs(30));
        assert_eq!(specs.len(), 8);
        assert!(st.caps().iter().all(|&c| c == 48));
    }

    #[test]
    fn coordination_moves_cap_toward_capacity() {
        let mut st = FleetState::new(cfg(8, 2, true), plans(8));
        for _ in 0..4 {
            let _ = st.specs(0, Nanos::from_secs(10));
            pressure_round(&mut st);
        }
        // ncpus-3 shards are low-pressure → they gain cap; ncpus-1
        // shards shed it.
        let strong: u32 = (0..8).filter(|s| s % 3 == 0).map(|s| st.caps()[s]).sum();
        let weak: u32 = (0..8).filter(|s| s % 3 == 2).map(|s| st.caps()[s]).sum();
        assert!(
            strong > weak + 20,
            "strong shards must accumulate cap: strong={strong} weak={weak} caps={:?}",
            st.caps()
        );
        let r = st.report();
        assert!(r.tunes.iter().sum::<u64>() > 0);
        assert!(r.root_lookups > 0, "root-stage moves forward through the directory");
    }

    #[test]
    fn deeper_trees_resolve_more_locally() {
        let mut flat = FleetState::new(cfg(8, 1, true), plans(8));
        let mut racked = FleetState::new(cfg(8, 2, true), plans(8));
        for _ in 0..3 {
            pressure_round(&mut flat);
            pressure_round(&mut racked);
        }
        let flat_r = flat.report();
        let racked_r = racked.report();
        assert_eq!(flat_r.tunes[1], 0, "flat fleet has no rack stage");
        assert!(racked_r.tunes[1] > 0, "racked fleet rebalances locally");
        assert!(
            racked_r.root_lookups < flat_r.root_lookups,
            "racks absorb directory pressure: {} vs {}",
            racked_r.root_lookups,
            flat_r.root_lookups
        );
    }

    #[test]
    fn rounds_replay_bit_identically() {
        let run = || {
            let mut st = FleetState::new(cfg(6, 3, true), plans(6));
            for _ in 0..3 {
                let _ = st.specs(0, Nanos::from_secs(5));
                pressure_round(&mut st);
            }
            (st.caps().to_vec(), st.report().digest())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn rebalance_conserves_and_clamps() {
        let units = [(48u32, 900.0), (48, 100.0), (48, 400.0), (48, 50.0)];
        let d = rebalance(&units, 0.5, 8, 96);
        assert_eq!(d.iter().sum::<i64>(), 0, "conserved: {d:?}");
        assert!(d[0] < 0, "hottest unit sheds cap");
        assert!(d[3] > 0, "coolest unit gains cap");
        for (&(c, _), &di) in units.iter().zip(&d) {
            let next = c as i64 + di;
            assert!((8..=96).contains(&next), "clamped: {next}");
        }
        // Equal pressures are a fixed point.
        let flat = rebalance(&[(40, 100.0), (40, 100.0)], 0.5, 8, 96);
        assert_eq!(flat, vec![0, 0]);
    }

    #[test]
    fn distribute_is_exact() {
        assert_eq!(distribute(10, &[30, 10]).iter().sum::<i64>(), 10);
        assert_eq!(distribute(-7, &[10, 10, 10]).iter().sum::<i64>(), -7);
        assert_eq!(distribute(5, &[0, 0]), vec![5, 0]);
    }

    #[test]
    fn partitioned_shard_is_left_out_of_rebalancing() {
        let mut cut = FleetState::new(cfg(8, 2, true), plans(8));
        let mut healthy = FleetState::new(cfg(8, 2, true), plans(8));
        cut.partition_shard(5, true);
        for _ in 0..3 {
            pressure_round(&mut cut);
            pressure_round(&mut healthy);
        }
        assert!(cut.report().rack_bus.partition_drops > 0);
        // The cut shard's cap can only have been moved by the root's
        // rack-level distribution, not by its own (unheard) reports; the
        // healthy run must have moved it more.
        assert_ne!(cut.caps(), healthy.caps());
    }
}
