//! The coordination channel: a small-message mailbox with injected
//! one-way latency.
//!
//! The prototype carves this channel out of the IXP device's PCI
//! configuration space (§2.3). Its latency is the knob behind the paper's
//! hardware-considerations discussion: PCIe-era mailboxes cost tens of
//! microseconds, while QPI/HTX-class integration or hardware signalling
//! would cut that by orders of magnitude (§3.3). Ablation A1 sweeps it.

use simcore::{EventQueue, Nanos};

/// A unidirectional, latency-injected, order-preserving message channel.
///
/// Generic over the message type so the coordination layer can ship its
/// own enums without serialisation in the common case (the wire codec in
/// `coord::msg` covers the "real bytes" story and is exercised separately).
#[derive(Debug)]
pub struct Mailbox<M> {
    latency: Nanos,
    q: EventQueue<M>,
    sent: u64,
    delivered: u64,
}

impl<M> Mailbox<M> {
    /// Creates a mailbox with the given one-way delivery latency.
    pub fn new(latency: Nanos) -> Self {
        Mailbox {
            latency,
            q: EventQueue::new(),
            sent: 0,
            delivered: 0,
        }
    }

    /// Enqueues a message at `now`; it arrives at `now + latency()`.
    pub fn send(&mut self, now: Nanos, msg: M) {
        self.q.schedule(now + self.latency, msg);
        self.sent += 1;
    }

    /// Arrival time of the earliest undelivered message (read-only O(1)).
    pub fn next_event_time(&self) -> Option<Nanos> {
        self.q.peek_time()
    }

    /// Delivers every message that has arrived by `now`, in send order,
    /// appending to `out` (caller-owned and typically reused across calls).
    pub fn on_timer(&mut self, now: Nanos, out: &mut Vec<M>) {
        while let Some(t) = self.q.peek_time() {
            if t > now {
                break;
            }
            let (_, m) = self.q.pop().expect("peeked");
            out.push(m);
            self.delivered += 1;
        }
    }

    /// Configured one-way latency.
    pub fn latency(&self) -> Nanos {
        self.latency
    }

    /// Changes the one-way latency for subsequently sent messages.
    pub fn set_latency(&mut self, latency: Nanos) {
        self.latency = latency;
    }

    /// Messages sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Messages currently in flight.
    pub fn in_flight(&self) -> u64 {
        self.sent - self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliveries<M>(m: &mut Mailbox<M>, now: Nanos) -> Vec<M> {
        let mut out = Vec::new();
        m.on_timer(now, &mut out);
        out
    }

    #[test]
    fn delivers_after_latency_in_order() {
        let mut m = Mailbox::new(Nanos::from_micros(10));
        m.send(Nanos::ZERO, 1);
        m.send(Nanos::from_micros(1), 2);
        assert_eq!(deliveries(&mut m, Nanos::from_micros(9)), Vec::<i32>::new());
        assert_eq!(deliveries(&mut m, Nanos::from_micros(11)), vec![1, 2]);
        assert_eq!(m.in_flight(), 0);
        assert_eq!((m.sent(), m.delivered()), (2, 2));
    }

    #[test]
    fn zero_latency_delivers_immediately() {
        let mut m = Mailbox::new(Nanos::ZERO);
        m.send(Nanos::from_millis(5), "x");
        assert_eq!(m.next_event_time(), Some(Nanos::from_millis(5)));
        assert_eq!(deliveries(&mut m, Nanos::from_millis(5)), vec!["x"]);
    }

    #[test]
    fn latency_change_applies_to_new_sends() {
        let mut m = Mailbox::new(Nanos::from_micros(30));
        m.send(Nanos::ZERO, 'a');
        m.set_latency(Nanos::from_micros(1));
        m.send(Nanos::ZERO, 'b');
        // 'b' arrives before 'a' (different latencies).
        assert_eq!(deliveries(&mut m, Nanos::from_micros(2)), vec!['b']);
        assert_eq!(deliveries(&mut m, Nanos::from_micros(30)), vec!['a']);
    }
}
