//! The coordination channel: a small-message mailbox with injected
//! one-way latency.
//!
//! The prototype carves this channel out of the IXP device's PCI
//! configuration space (§2.3). Its latency is the knob behind the paper's
//! hardware-considerations discussion: PCIe-era mailboxes cost tens of
//! microseconds, while QPI/HTX-class integration or hardware signalling
//! would cut that by orders of magnitude (§3.3). Ablation A1 sweeps it.
//!
//! A mailbox may additionally carry a [`FaultProfile`]: seeded,
//! per-message drop/duplication/jitter/reordering for the reliability
//! experiments (R1/R2). Without one the channel is perfect.

use crate::fault::{FaultLayer, FaultProfile};
use simcore::{EventQueue, Nanos, SimRng};

/// A unidirectional, latency-injected, order-preserving message channel.
///
/// Order preservation holds regardless of [`set_latency`](Self::set_latency)
/// calls: each arrival is clamped to be no earlier than the previous
/// send's arrival, so a latency cut never lets a newer message overtake
/// an older one. The only opt-out is an explicit [`FaultProfile`] with a
/// non-zero reorder window.
///
/// Generic over the message type so the coordination layer can ship its
/// own enums without serialisation in the common case (the wire codec in
/// `coord::msg` covers the "real bytes" story and is exercised separately).
#[derive(Debug)]
pub struct Mailbox<M> {
    latency: Nanos,
    q: EventQueue<M>,
    sent: u64,
    delivered: u64,
    in_flight: u64,
    /// Arrival time of the most recent (non-duplicate) send; new arrivals
    /// clamp to it so FIFO survives latency changes.
    last_arrival: Nanos,
    faults: Option<FaultLayer>,
    partitioned: bool,
    partition_drops: u64,
}

impl<M> Mailbox<M> {
    /// Creates a mailbox with the given one-way delivery latency.
    pub fn new(latency: Nanos) -> Self {
        Mailbox {
            latency,
            q: EventQueue::new(),
            sent: 0,
            delivered: 0,
            in_flight: 0,
            last_arrival: Nanos::ZERO,
            faults: None,
            partitioned: false,
            partition_drops: 0,
        }
    }

    /// Attaches a fault profile driven by `rng`. All randomness is private
    /// to this mailbox, so faulty runs replay exactly from the seed. A
    /// profile of [`FaultProfile::none()`] draws nothing and injects
    /// nothing.
    pub fn set_faults(&mut self, profile: FaultProfile, rng: SimRng) {
        self.faults = Some(FaultLayer::new(profile, rng));
    }

    /// The attached fault profile, if any.
    pub fn fault_profile(&self) -> Option<FaultProfile> {
        self.faults.as_ref().map(|f| f.profile)
    }

    /// Enqueues a message at `now`; it arrives at `now + latency()` plus
    /// any fault-injected jitter, but never before a previously sent
    /// message unless the fault profile enables reordering.
    pub fn send(&mut self, now: Nanos, msg: M)
    where
        M: Clone,
    {
        self.sent += 1;
        if self.partitioned {
            // A partitioned lane swallows every send; messages already in
            // flight still arrive (the cut is at the sender's edge).
            self.partition_drops += 1;
            return;
        }
        let base = now + self.latency;
        let (mut arrival, dup) = match self.faults.as_mut() {
            None => (base, None),
            Some(layer) => match layer.roll() {
                None => return, // dropped in the channel
                Some((extra, dup)) => (base + extra, dup.map(|d| base + d)),
            },
        };
        let reorder = self
            .faults
            .as_ref()
            .is_some_and(|f| f.profile.reorder_window > Nanos::ZERO);
        if !reorder {
            arrival = arrival.max(self.last_arrival);
        }
        self.last_arrival = self.last_arrival.max(arrival);
        if let Some(dup_at) = dup {
            // The spurious copy never constrains real traffic: it is not
            // folded into the FIFO clamp.
            let at = if reorder { dup_at } else { dup_at.max(arrival) };
            self.q.schedule(at, msg.clone());
            self.in_flight += 1;
        }
        self.q.schedule(arrival, msg);
        self.in_flight += 1;
    }

    /// Arrival time of the earliest undelivered message (read-only O(1)).
    pub fn next_event_time(&self) -> Option<Nanos> {
        self.q.peek_time()
    }

    /// Delivers every message that has arrived by `now`, in arrival order
    /// (send order unless reordering is enabled), appending to `out`
    /// (caller-owned and typically reused across calls).
    pub fn on_timer(&mut self, now: Nanos, out: &mut Vec<M>) {
        while let Some(t) = self.q.peek_time() {
            if t > now {
                break;
            }
            let (_, m) = self.q.pop().expect("peeked");
            out.push(m);
            self.delivered += 1;
            self.in_flight -= 1;
        }
    }

    /// Configured one-way latency.
    pub fn latency(&self) -> Nanos {
        self.latency
    }

    /// Changes the one-way latency for subsequently sent messages. Order
    /// is still preserved: a send after a latency cut arrives no earlier
    /// than everything already in flight.
    pub fn set_latency(&mut self, latency: Nanos) {
        self.latency = latency;
    }

    /// Messages sent so far (drops and injected duplicates not included).
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Message copies delivered so far (duplicate copies included).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Message copies currently in flight.
    ///
    /// Conservation: `delivered + dropped + partition_drops + in_flight
    /// == sent + duplicated` at every instant.
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Messages dropped by fault injection.
    pub fn dropped(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.dropped)
    }

    /// Duplicate copies injected by fault injection.
    pub fn duplicated(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.duplicated)
    }

    /// Cuts (or heals) the lane. While partitioned every send is dropped
    /// deterministically — no fault RNG is consumed, so healing the
    /// partition resumes the exact same fault stream a never-partitioned
    /// replay would have seen from that send onward.
    pub fn set_partitioned(&mut self, partitioned: bool) {
        self.partitioned = partitioned;
    }

    /// `true` while the lane is partitioned.
    pub fn is_partitioned(&self) -> bool {
        self.partitioned
    }

    /// Messages swallowed by partitions (disjoint from [`Self::dropped`]).
    pub fn partition_drops(&self) -> u64 {
        self.partition_drops
    }
}

/// A mailbox lane as a master-loop event source: its horizon is the
/// earliest undelivered frame's arrival time (post fault-layer jitter),
/// and advancing it delivers everything due at `now` in send order.
impl<M> simcore::Component for Mailbox<M> {
    type Event = M;

    fn next_event_time(&self) -> Option<Nanos> {
        Mailbox::next_event_time(self)
    }

    fn advance(&mut self, now: Nanos, out: &mut Vec<M>) {
        self.on_timer(now, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Jitter;

    fn deliveries<M: Clone>(m: &mut Mailbox<M>, now: Nanos) -> Vec<M> {
        let mut out = Vec::new();
        m.on_timer(now, &mut out);
        out
    }

    #[test]
    fn delivers_after_latency_in_order() {
        let mut m = Mailbox::new(Nanos::from_micros(10));
        m.send(Nanos::ZERO, 1);
        m.send(Nanos::from_micros(1), 2);
        assert_eq!(deliveries(&mut m, Nanos::from_micros(9)), Vec::<i32>::new());
        assert_eq!(deliveries(&mut m, Nanos::from_micros(11)), vec![1, 2]);
        assert_eq!(m.in_flight(), 0);
        assert_eq!((m.sent(), m.delivered()), (2, 2));
    }

    #[test]
    fn zero_latency_delivers_immediately() {
        let mut m = Mailbox::new(Nanos::ZERO);
        m.send(Nanos::from_millis(5), "x");
        assert_eq!(m.next_event_time(), Some(Nanos::from_millis(5)));
        assert_eq!(deliveries(&mut m, Nanos::from_millis(5)), vec!["x"]);
    }

    #[test]
    fn latency_change_applies_to_new_sends() {
        let mut m = Mailbox::new(Nanos::from_micros(30));
        m.send(Nanos::ZERO, 'a');
        m.set_latency(Nanos::from_micros(1));
        m.send(Nanos::ZERO, 'b');
        // 'b' would arrive at 1 µs under its own latency, but the channel
        // is order-preserving: it clamps to 'a''s 30 µs arrival.
        assert_eq!(deliveries(&mut m, Nanos::from_micros(29)), Vec::<char>::new());
        assert_eq!(deliveries(&mut m, Nanos::from_micros(30)), vec!['a', 'b']);
        // A later send under the shorter latency is not held back further
        // than the in-flight horizon requires.
        m.send(Nanos::from_micros(40), 'c');
        assert_eq!(m.next_event_time(), Some(Nanos::from_micros(41)));
    }

    #[test]
    fn latency_increase_never_reorders_either() {
        let mut m = Mailbox::new(Nanos::from_micros(1));
        m.send(Nanos::ZERO, 'a');
        m.set_latency(Nanos::from_micros(30));
        m.send(Nanos::ZERO, 'b');
        assert_eq!(deliveries(&mut m, Nanos::from_micros(30)), vec!['a', 'b']);
    }

    #[test]
    fn drop_faults_account_and_conserve() {
        let mut m = Mailbox::new(Nanos::from_micros(10));
        m.set_faults(FaultProfile::none().with_drop(1.0), SimRng::new(1));
        m.send(Nanos::ZERO, 1);
        m.send(Nanos::ZERO, 2);
        assert_eq!(m.sent(), 2);
        assert_eq!(m.dropped(), 2);
        assert_eq!(m.in_flight(), 0);
        assert_eq!(deliveries(&mut m, Nanos::from_secs(1)), Vec::<i32>::new());
    }

    #[test]
    fn duplication_delivers_extra_copies() {
        let mut m = Mailbox::new(Nanos::from_micros(10));
        m.set_faults(FaultProfile::none().with_dup(1.0), SimRng::new(2));
        m.send(Nanos::ZERO, 7);
        assert_eq!(m.duplicated(), 1);
        assert_eq!(m.in_flight(), 2);
        assert_eq!(deliveries(&mut m, Nanos::from_micros(10)), vec![7, 7]);
        assert_eq!(m.delivered(), 2);
    }

    #[test]
    fn jitter_without_reorder_preserves_order() {
        let mut m = Mailbox::new(Nanos::from_micros(10));
        m.set_faults(
            FaultProfile::none().with_jitter(Jitter::Uniform { max: Nanos::from_micros(500) }),
            SimRng::new(3),
        );
        for i in 0..100 {
            m.send(Nanos::from_micros(i), i);
        }
        let got = deliveries(&mut m, Nanos::from_secs(1));
        assert_eq!(got.len(), 100);
        assert!(got.windows(2).all(|w| w[0] < w[1]), "FIFO violated: {got:?}");
    }

    #[test]
    fn partition_swallows_sends_and_heals_cleanly() {
        let mut m = Mailbox::new(Nanos::from_micros(10));
        m.send(Nanos::ZERO, 1);
        m.set_partitioned(true);
        assert!(m.is_partitioned());
        // In-flight traffic still lands; new sends vanish at the edge.
        m.send(Nanos::from_micros(1), 2);
        m.send(Nanos::from_micros(2), 3);
        assert_eq!(deliveries(&mut m, Nanos::from_micros(10)), vec![1]);
        assert_eq!(m.partition_drops(), 2);
        assert_eq!(m.dropped(), 0, "partition drops are not fault drops");
        m.set_partitioned(false);
        m.send(Nanos::from_micros(20), 4);
        assert_eq!(deliveries(&mut m, Nanos::from_micros(30)), vec![4]);
        // Conservation with the partition term included.
        assert_eq!(
            m.delivered() + m.dropped() + m.partition_drops() + m.in_flight(),
            m.sent() + m.duplicated()
        );
    }

    #[test]
    fn reorder_window_allows_overtaking() {
        let mut m = Mailbox::new(Nanos::from_micros(10));
        m.set_faults(
            FaultProfile::none().with_reorder(Nanos::from_millis(5)),
            SimRng::new(4),
        );
        for i in 0..200 {
            m.send(Nanos::from_micros(i), i);
        }
        let got = deliveries(&mut m, Nanos::from_secs(1));
        assert_eq!(got.len(), 200);
        assert!(
            got.windows(2).any(|w| w[0] > w[1]),
            "a 5 ms window over 10 µs spacing must reorder something"
        );
    }
}
