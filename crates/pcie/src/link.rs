//! The descriptor/payload path between the IXP and the host.
//!
//! Host-bound: the IXP posts descriptors ([`HostLink::post_to_host`]);
//! after DMA latency they land in a bounded ring in reserved host memory.
//! The Dom0 messaging driver learns about them via [`NotifyMode`] — a
//! moderated interrupt or a periodic poll — and drains the ring
//! ([`HostLink::host_take`]). Crucially, the *drain* is driven by the
//! platform only after Dom0 has been scheduled to run its driver burst, so
//! host-side latency inherits Dom0's scheduling fortunes.
//!
//! IXP-bound: host transmissions DMA across and pop out as
//! [`PcieEvent::TxArrived`] for the IXP island's Tx pipeline.

use crate::DmaModel;
use ixp::{FlowId, Packet};
use simcore::{EventQueue, Nanos};
use std::collections::VecDeque;

/// Link configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// DMA cost model.
    pub dma: DmaModel,
    /// How the host learns of new host-bound descriptors.
    pub notify: NotifyMode,
    /// Host-bound ring capacity in descriptors.
    pub ring_slots: u32,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            dma: DmaModel::pcie_i8000(),
            notify: NotifyMode::Interrupt {
                period: Nanos::from_micros(100),
            },
            ring_slots: 1024,
        }
    }
}

/// Host notification policy for the messaging driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NotifyMode {
    /// The IXP interrupts the host at most once per `period` while
    /// descriptors are pending (user-defined interrupt frequency, §2.1).
    Interrupt {
        /// Minimum gap between interrupts.
        period: Nanos,
    },
    /// Dom0 polls the ring every `period`.
    Poll {
        /// Polling cadence.
        period: Nanos,
    },
}

/// Observable link outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PcieEvent {
    /// The host should run its messaging-driver service routine: `pending`
    /// descriptors await in the ring.
    HostNotify {
        /// Descriptors currently in the ring.
        pending: u32,
        /// Notification time.
        at: Nanos,
    },
    /// A host→IXP packet finished its DMA and is available to the IXP Tx
    /// pipeline.
    TxArrived {
        /// The packet.
        pkt: Packet,
        /// Arrival time.
        at: Nanos,
    },
}

/// Link counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Descriptors successfully posted host-bound.
    pub posted: u64,
    /// Descriptors dropped because the host ring was full.
    pub ring_full_drops: u64,
    /// Host notifications (interrupts or non-empty polls) raised.
    pub notifications: u64,
    /// Descriptors drained by the host.
    pub drained: u64,
    /// Bytes moved in either direction.
    pub bytes: u64,
}

#[derive(Debug)]
enum Transfer {
    ToHost { flow: FlowId, pkt: Packet },
    ToIxp { pkt: Packet },
    Notify,
}

/// The bidirectional DMA + ring + notification state machine.
#[derive(Debug)]
pub struct HostLink {
    cfg: LinkConfig,
    q: EventQueue<Transfer>,
    ring: VecDeque<(FlowId, Packet)>,
    /// A notification has been raised and not yet serviced by `host_take`.
    notify_outstanding: bool,
    /// A notify timer is scheduled.
    notify_scheduled: bool,
    last_notify: Nanos,
    now: Nanos,
    stats: LinkStats,
}

impl HostLink {
    /// Creates an idle link.
    pub fn new(cfg: LinkConfig) -> Self {
        HostLink {
            cfg,
            q: EventQueue::new(),
            ring: VecDeque::new(),
            notify_outstanding: false,
            notify_scheduled: false,
            last_notify: Nanos::ZERO,
            now: Nanos::ZERO,
            stats: LinkStats::default(),
        }
    }

    /// IXP posts a host-bound descriptor. Returns `false` if the ring
    /// (including in-flight transfers) is full and the descriptor was
    /// dropped.
    pub fn post_to_host(&mut self, now: Nanos, flow: FlowId, pkt: Packet) -> bool {
        self.now = self.now.max(now);
        if self.ring.len() as u32 >= self.cfg.ring_slots {
            self.stats.ring_full_drops += 1;
            return false;
        }
        let t = now + self.cfg.dma.transfer_time(pkt.len_bytes);
        self.q.schedule(t, Transfer::ToHost { flow, pkt });
        self.stats.posted += 1;
        self.stats.bytes += pkt.len_bytes as u64;
        true
    }

    /// Host posts an IXP-bound packet for transmission.
    pub fn post_to_ixp(&mut self, now: Nanos, pkt: Packet) {
        self.now = self.now.max(now);
        let t = now + self.cfg.dma.transfer_time(pkt.len_bytes);
        self.q.schedule(t, Transfer::ToIxp { pkt });
        self.stats.bytes += pkt.len_bytes as u64;
    }

    /// The host messaging driver services the ring, draining up to `max`
    /// descriptors. Re-arms notification if descriptors remain.
    pub fn host_take(&mut self, now: Nanos, max: usize) -> Vec<(FlowId, Packet)> {
        self.now = self.now.max(now);
        let n = max.min(self.ring.len());
        let taken: Vec<_> = self.ring.drain(..n).collect();
        self.stats.drained += taken.len() as u64;
        self.notify_outstanding = false;
        if !self.ring.is_empty() {
            self.schedule_notify(now);
        }
        taken
    }

    /// Descriptors currently waiting in the host ring.
    pub fn ring_len(&self) -> usize {
        self.ring.len()
    }

    /// Link counters.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Next internal event (DMA completion or notification), if any.
    /// Read-only O(1): the horizon is the head of the internal queue.
    pub fn next_event_time(&self) -> Option<Nanos> {
        self.q.peek_time()
    }

    /// Conservative lookahead of this link: no transfer handed to the
    /// DMA engine at time `t` becomes visible on the other side before
    /// `t + lookahead()`. This is the per-transfer base latency of the
    /// lane's DMA model (doorbell + descriptor fetch + setup); payload
    /// time only adds to it. PDES epoch derivation takes the min of
    /// these bounds across every cross-island channel.
    pub fn lookahead(&self) -> Nanos {
        self.cfg.dma.base()
    }

    /// Advances to `now`, appending notifications and IXP-bound arrivals
    /// to `out` (caller-owned and typically reused across calls).
    pub fn on_timer(&mut self, now: Nanos, out: &mut Vec<PcieEvent>) {
        self.now = self.now.max(now);
        while let Some(t) = self.q.peek_time() {
            if t > now {
                break;
            }
            let (t, ev) = self.q.pop().expect("peeked");
            match ev {
                Transfer::ToHost { flow, pkt } => {
                    self.ring.push_back((flow, pkt));
                    if !self.notify_outstanding && !self.notify_scheduled {
                        self.schedule_notify(t);
                    }
                }
                Transfer::ToIxp { pkt } => out.push(PcieEvent::TxArrived { pkt, at: t }),
                Transfer::Notify => {
                    self.notify_scheduled = false;
                    if !self.ring.is_empty() && !self.notify_outstanding {
                        self.notify_outstanding = true;
                        self.last_notify = t;
                        self.stats.notifications += 1;
                        out.push(PcieEvent::HostNotify {
                            pending: self.ring.len() as u32,
                            at: t,
                        });
                    }
                }
            }
        }
    }

    fn schedule_notify(&mut self, now: Nanos) {
        if self.notify_scheduled {
            return;
        }
        let t = match self.cfg.notify {
            NotifyMode::Interrupt { period } => now.max(self.last_notify + period),
            NotifyMode::Poll { period } => {
                // Next point on the polling grid strictly after `now`.
                let p = period.as_nanos().max(1);
                Nanos((now.as_nanos() / p + 1) * p)
            }
        };
        self.q.schedule(t, Transfer::Notify);
        self.notify_scheduled = true;
    }
}

/// The PCIe link as a master-loop event source: its horizon is the next
/// DMA completion or moderated notification, and advancing it emits the
/// host notifications and IXP-bound arrivals due at `now`.
impl simcore::Component for HostLink {
    type Event = PcieEvent;

    fn next_event_time(&self) -> Option<Nanos> {
        HostLink::next_event_time(self)
    }

    fn advance(&mut self, now: Nanos, out: &mut Vec<PcieEvent>) {
        self.on_timer(now, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixp::AppTag;

    fn pkt(id: u64, len: u32) -> Packet {
        Packet::new(id, 0, len, AppTag::Plain)
    }

    fn drain_events(l: &mut HostLink, until: Nanos) -> Vec<PcieEvent> {
        let mut out = Vec::new();
        while let Some(t) = l.next_event_time() {
            if t > until {
                break;
            }
            l.on_timer(t, &mut out);
        }
        out
    }

    #[test]
    fn to_host_notifies_after_dma_and_moderation() {
        let mut l = HostLink::new(LinkConfig::default());
        l.post_to_host(Nanos::ZERO, FlowId(0), pkt(1, 1000));
        let evs = drain_events(&mut l, Nanos::from_millis(1));
        let notify = evs
            .iter()
            .find_map(|e| match e {
                PcieEvent::HostNotify { pending, at } => Some((*pending, *at)),
                _ => None,
            })
            .expect("notified");
        assert_eq!(notify.0, 1);
        // DMA = 2 µs + 1 µs; interrupt not before max(arrival, period).
        assert!(notify.1 >= Nanos::from_micros(3));
        assert_eq!(l.ring_len(), 1);
        let taken = l.host_take(notify.1, 64);
        assert_eq!(taken.len(), 1);
        assert_eq!(taken[0].1.id, 1);
        assert_eq!(l.stats().drained, 1);
    }

    #[test]
    fn interrupt_moderation_batches() {
        let cfg = LinkConfig {
            notify: NotifyMode::Interrupt {
                period: Nanos::from_micros(100),
            },
            ..LinkConfig::default()
        };
        let mut l = HostLink::new(cfg);
        for i in 0..10 {
            l.post_to_host(Nanos::from_micros(i), FlowId(0), pkt(i, 100));
        }
        let evs = drain_events(&mut l, Nanos::from_millis(1));
        let notifies: Vec<_> = evs
            .iter()
            .filter(|e| matches!(e, PcieEvent::HostNotify { .. }))
            .collect();
        assert_eq!(notifies.len(), 1, "one interrupt covers the batch");
        if let PcieEvent::HostNotify { pending, .. } = notifies[0] {
            assert_eq!(*pending, 10);
        }
    }

    #[test]
    fn renotifies_if_host_leaves_residue() {
        let mut l = HostLink::new(LinkConfig::default());
        for i in 0..5 {
            l.post_to_host(Nanos::ZERO, FlowId(0), pkt(i, 100));
        }
        let evs = drain_events(&mut l, Nanos::from_millis(1));
        let first_at = evs
            .iter()
            .find_map(|e| match e {
                PcieEvent::HostNotify { at, .. } => Some(*at),
                _ => None,
            })
            .unwrap();
        // Host takes only 2; the link must schedule another notification.
        let taken = l.host_take(first_at, 2);
        assert_eq!(taken.len(), 2);
        let evs = drain_events(&mut l, Nanos::from_millis(2));
        assert!(
            evs.iter().any(|e| matches!(e, PcieEvent::HostNotify { .. })),
            "residue re-notified"
        );
    }

    #[test]
    fn poll_mode_aligns_to_grid() {
        let cfg = LinkConfig {
            notify: NotifyMode::Poll {
                period: Nanos::from_micros(50),
            },
            ..LinkConfig::default()
        };
        let mut l = HostLink::new(cfg);
        l.post_to_host(Nanos::from_micros(7), FlowId(0), pkt(1, 100));
        let evs = drain_events(&mut l, Nanos::from_millis(1));
        let at = evs
            .iter()
            .find_map(|e| match e {
                PcieEvent::HostNotify { at, .. } => Some(*at),
                _ => None,
            })
            .unwrap();
        assert_eq!(at.as_nanos() % 50_000, 0, "poll happens on the grid");
    }

    #[test]
    fn ring_full_drops() {
        let cfg = LinkConfig {
            ring_slots: 2,
            ..LinkConfig::default()
        };
        let mut l = HostLink::new(cfg);
        assert!(l.post_to_host(Nanos::ZERO, FlowId(0), pkt(1, 100)));
        drain_events(&mut l, Nanos::from_millis(1));
        assert!(l.post_to_host(Nanos::from_millis(1), FlowId(0), pkt(2, 100)));
        drain_events(&mut l, Nanos::from_millis(2));
        assert!(!l.post_to_host(Nanos::from_millis(2), FlowId(0), pkt(3, 100)));
        assert_eq!(l.stats().ring_full_drops, 1);
    }

    #[test]
    fn tx_direction_arrives_after_dma() {
        let mut l = HostLink::new(LinkConfig::default());
        l.post_to_ixp(Nanos::ZERO, pkt(5, 1000));
        let evs = drain_events(&mut l, Nanos::from_millis(1));
        let (p, at) = evs
            .iter()
            .find_map(|e| match e {
                PcieEvent::TxArrived { pkt, at } => Some((*pkt, *at)),
                _ => None,
            })
            .unwrap();
        assert_eq!(p.id, 5);
        assert_eq!(at, Nanos::from_micros(3)); // 2 µs base + 1 µs payload
    }

    #[test]
    fn stats_track_both_directions() {
        let mut l = HostLink::new(LinkConfig::default());
        l.post_to_host(Nanos::ZERO, FlowId(0), pkt(1, 500));
        l.post_to_ixp(Nanos::ZERO, pkt(2, 700));
        drain_events(&mut l, Nanos::from_millis(1));
        let s = l.stats();
        assert_eq!(s.posted, 1);
        assert_eq!(s.bytes, 1200);
        assert_eq!(s.notifications, 1);
    }

    #[test]
    fn host_take_respects_max() {
        let mut l = HostLink::new(LinkConfig::default());
        for i in 0..10 {
            l.post_to_host(Nanos::ZERO, FlowId(0), pkt(i, 100));
        }
        drain_events(&mut l, Nanos::from_millis(1));
        assert_eq!(l.ring_len(), 10);
        let first = l.host_take(Nanos::from_millis(1), 3);
        assert_eq!(first.len(), 3);
        assert_eq!(first[0].1.id, 0, "FIFO drain");
        assert_eq!(l.ring_len(), 7);
    }

    #[test]
    fn interrupt_rate_is_moderated() {
        let cfg = LinkConfig {
            notify: NotifyMode::Interrupt { period: Nanos::from_millis(1) },
            ..LinkConfig::default()
        };
        let mut l = HostLink::new(cfg);
        let mut notifies = 0;
        // Post steadily for 10 ms, servicing promptly after each notify.
        let mut evs = Vec::new();
        for i in 0..100u64 {
            l.post_to_host(Nanos::from_micros(i * 100), FlowId(0), pkt(i, 100));
            evs.clear();
            l.on_timer(Nanos::from_micros(i * 100 + 50), &mut evs);
            for ev in &evs {
                if let PcieEvent::HostNotify { at, .. } = ev {
                    notifies += 1;
                    l.host_take(*at, usize::MAX);
                }
            }
        }
        for ev in drain_events(&mut l, Nanos::from_millis(20)) {
            if matches!(ev, PcieEvent::HostNotify { .. }) {
                notifies += 1;
            }
        }
        assert!(
            notifies <= 12,
            "≤ ~1 interrupt per moderation period: {notifies}"
        );
    }
}
