//! DMA transfer cost model.

use simcore::Nanos;

/// Latency/bandwidth model for moving a packet across the PCIe link.
///
/// Transfer time = `base` (doorbell, descriptor fetch, setup) plus payload
/// bytes at `bytes_per_sec`.
///
/// # Example
///
/// ```
/// use pcie::DmaModel;
/// use simcore::Nanos;
/// let dma = DmaModel::new(Nanos::from_micros(2), 1e9);
/// // 1000 bytes at 1 GB/s = 1 µs on top of the 2 µs base.
/// assert_eq!(dma.transfer_time(1000), Nanos::from_micros(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DmaModel {
    base: Nanos,
    bytes_per_sec: f64,
}

impl DmaModel {
    /// Creates a model with the given per-transfer base latency and
    /// sustained bandwidth in bytes/second.
    ///
    /// # Panics
    /// Panics if `bytes_per_sec` is not positive.
    pub fn new(base: Nanos, bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
        DmaModel {
            base,
            bytes_per_sec,
        }
    }

    /// The i8000-class PCIe link used by the prototype: ~2 µs setup,
    /// ~1 GB/s sustained.
    pub fn pcie_i8000() -> Self {
        DmaModel::new(Nanos::from_micros(2), 1e9)
    }

    /// Time to move `bytes` across the link.
    pub fn transfer_time(&self, bytes: u32) -> Nanos {
        self.base + Nanos::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }

    /// Base (payload-independent) latency.
    pub fn base(&self) -> Nanos {
        self.base
    }
}

impl Default for DmaModel {
    fn default() -> Self {
        Self::pcie_i8000()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_scales_with_bytes() {
        let d = DmaModel::new(Nanos::from_micros(1), 1e9);
        assert_eq!(d.transfer_time(0), Nanos::from_micros(1));
        assert!(d.transfer_time(64_000) > d.transfer_time(64));
    }

    #[test]
    fn default_is_i8000() {
        assert_eq!(DmaModel::default(), DmaModel::pcie_i8000());
        assert_eq!(DmaModel::default().base(), Nanos::from_micros(2));
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_panics() {
        let _ = DmaModel::new(Nanos::ZERO, 0.0);
    }
}
