//! # pcie — the host ↔ IXP interconnect substrate
//!
//! The paper's prototype moves packets between the IXP and the x86 host
//! over PCIe: message queues of descriptors live in reserved host memory,
//! payloads move by DMA, the messaging driver in Dom0 learns of new
//! descriptors either by periodic polling or by a rate-moderated interrupt,
//! and a small *coordination channel* rides on the device's PCI
//! configuration space (§2, §2.3).
//!
//! This crate models each of those pieces:
//!
//! * [`DmaModel`] — transfer latency as base cost + bytes / bandwidth;
//! * [`HostLink`] — the bidirectional descriptor path with a bounded
//!   host-bound ring and a [`NotifyMode`] (interrupt moderation vs. Dom0
//!   polling), whose service latency the *platform* couples to Dom0's CPU
//!   scheduling — the source of the response-time variability the paper
//!   attributes to the uncoordinated baseline;
//! * [`Mailbox`] — the latency-injected coordination message channel. Its
//!   one-way latency is a first-class parameter because §3.3 singles out
//!   PCIe channel latency as a cause of mis-applied coordination, to be
//!   fixed by QPI/HTX-class integration;
//! * [`FaultProfile`] — seeded per-message drop/duplication/jitter/
//!   reordering for a mailbox, so the reliability experiments (R1/R2) can
//!   study *unreliable* — not merely slow — coordination, deterministically.
//!
//! ## Example
//!
//! ```
//! use pcie::{Mailbox};
//! use simcore::Nanos;
//!
//! let mut mbx: Mailbox<&'static str> = Mailbox::new(Nanos::from_micros(30));
//! mbx.send(Nanos::ZERO, "tune web +64");
//! assert_eq!(mbx.next_event_time(), Some(Nanos::from_micros(30)));
//! let mut delivered = Vec::new();
//! mbx.on_timer(Nanos::from_micros(30), &mut delivered);
//! assert_eq!(delivered, vec!["tune web +64"]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod dma;
mod fault;
mod link;
mod mailbox;

pub use dma::DmaModel;
pub use fault::{FaultProfile, Jitter};
pub use link::{HostLink, LinkConfig, LinkStats, NotifyMode, PcieEvent};
pub use mailbox::Mailbox;
