//! Deterministic fault injection for the coordination channel.
//!
//! The paper attributes occasional *mis*-coordination to channel latency
//! (§3.3); real interconnects add loss, jitter, duplication, and
//! reordering on top. A [`FaultProfile`] describes those imperfections
//! per channel; the [`Mailbox`](crate::Mailbox) applies them to each send
//! using a caller-supplied [`SimRng`], so a faulty run replays
//! byte-identically from its seed. Experiments R1/R2 sweep the profile.

use simcore::{Nanos, SimRng};

/// Latency jitter added on top of the mailbox's base latency.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Jitter {
    /// No jitter: every copy takes exactly the base latency.
    #[default]
    None,
    /// Uniform extra delay in `[0, max]`.
    Uniform {
        /// Upper bound of the extra delay.
        max: Nanos,
    },
    /// Exponentially distributed extra delay with the given mean.
    Exponential {
        /// Mean of the extra delay.
        mean: Nanos,
    },
}

impl Jitter {
    fn sample(&self, rng: &mut SimRng) -> Nanos {
        match *self {
            Jitter::None => Nanos::ZERO,
            Jitter::Uniform { max } => Nanos(rng.range(0, max.as_nanos())),
            Jitter::Exponential { mean } => rng.exp_nanos(mean),
        }
    }
}

/// Per-message fault model for a [`Mailbox`](crate::Mailbox).
///
/// `FaultProfile::none()` (the default) injects nothing and draws nothing
/// from the RNG, so a fault-free mailbox behaves — draw for draw —
/// exactly like one built without a profile.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultProfile {
    /// Probability that a sent message is silently dropped.
    pub drop_prob: f64,
    /// Probability that a delivered message is duplicated (one extra copy).
    pub dup_prob: f64,
    /// Extra delivery delay distribution.
    pub jitter: Jitter,
    /// When non-zero, each arrival additionally slips by a uniform draw in
    /// `[0, reorder_window]` and the mailbox's FIFO clamp is disabled, so
    /// later sends may overtake earlier ones — the only supported opt-out
    /// from the order-preserving contract.
    pub reorder_window: Nanos,
}

impl FaultProfile {
    /// The perfect channel: no loss, no jitter, no duplication, FIFO.
    pub fn none() -> Self {
        FaultProfile::default()
    }

    /// `true` when the profile injects nothing.
    pub fn is_none(&self) -> bool {
        *self == FaultProfile::none()
    }

    /// Sets the per-message drop probability.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-message duplication probability.
    pub fn with_dup(mut self, p: f64) -> Self {
        self.dup_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the latency jitter distribution.
    pub fn with_jitter(mut self, jitter: Jitter) -> Self {
        self.jitter = jitter;
        self
    }

    /// Enables reordering within the given window (disables the FIFO
    /// clamp).
    pub fn with_reorder(mut self, window: Nanos) -> Self {
        self.reorder_window = window;
        self
    }
}

/// The mailbox-side fault state: a profile plus its private RNG stream
/// and injection counters.
#[derive(Debug, Clone)]
pub(crate) struct FaultLayer {
    pub profile: FaultProfile,
    pub rng: SimRng,
    pub dropped: u64,
    pub duplicated: u64,
}

impl FaultLayer {
    pub fn new(profile: FaultProfile, rng: SimRng) -> Self {
        FaultLayer {
            profile,
            rng,
            dropped: 0,
            duplicated: 0,
        }
    }

    /// Rolls the per-send faults. Returns `None` when the message is
    /// dropped; otherwise `(extra_delay, duplicate_extra_delay)` where the
    /// second field is `Some` when a duplicate copy must be scheduled.
    pub fn roll(&mut self) -> Option<(Nanos, Option<Nanos>)> {
        let p = self.profile;
        if p.drop_prob > 0.0 && self.rng.chance(p.drop_prob) {
            self.dropped += 1;
            return None;
        }
        let mut extra = p.jitter.sample(&mut self.rng);
        if p.reorder_window > Nanos::ZERO {
            extra += Nanos(self.rng.range(0, p.reorder_window.as_nanos()));
        }
        let dup = if p.dup_prob > 0.0 && self.rng.chance(p.dup_prob) {
            self.duplicated += 1;
            let mut d = extra;
            if p.reorder_window > Nanos::ZERO {
                d = p.jitter.sample(&mut self.rng)
                    + Nanos(self.rng.range(0, p.reorder_window.as_nanos()));
            }
            Some(d)
        } else {
            None
        };
        Some((extra, dup))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_profile_is_none() {
        assert!(FaultProfile::none().is_none());
        assert!(!FaultProfile::none().with_drop(0.1).is_none());
        assert!(!FaultProfile::none().with_jitter(Jitter::Uniform { max: Nanos(5) }).is_none());
    }

    #[test]
    fn drop_probability_is_clamped() {
        assert_eq!(FaultProfile::none().with_drop(7.0).drop_prob, 1.0);
        assert_eq!(FaultProfile::none().with_dup(-1.0).dup_prob, 0.0);
    }

    #[test]
    fn certain_drop_always_drops() {
        let mut layer = FaultLayer::new(FaultProfile::none().with_drop(1.0), SimRng::new(1));
        for _ in 0..100 {
            assert!(layer.roll().is_none());
        }
        assert_eq!(layer.dropped, 100);
    }

    #[test]
    fn jitter_stays_in_bounds() {
        let max = Nanos::from_micros(50);
        let mut layer = FaultLayer::new(
            FaultProfile::none().with_jitter(Jitter::Uniform { max }),
            SimRng::new(2),
        );
        for _ in 0..1000 {
            let (extra, dup) = layer.roll().expect("no drops configured");
            assert!(extra <= max, "{extra}");
            assert!(dup.is_none());
        }
    }

    #[test]
    fn rolls_replay_from_the_seed() {
        let profile = FaultProfile::none()
            .with_drop(0.3)
            .with_dup(0.2)
            .with_jitter(Jitter::Exponential { mean: Nanos::from_micros(20) })
            .with_reorder(Nanos::from_micros(100));
        let mut a = FaultLayer::new(profile, SimRng::new(42));
        let mut b = FaultLayer::new(profile, SimRng::new(42));
        for _ in 0..1000 {
            assert_eq!(a.roll(), b.roll());
        }
        assert_eq!((a.dropped, a.duplicated), (b.dropped, b.duplicated));
        assert!(a.dropped > 0 && a.duplicated > 0, "faults actually fired");
    }
}
