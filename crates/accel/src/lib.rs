//! # accel — a batching inference accelerator scheduling island
//!
//! A discrete-event model of a GPU-style compute accelerator shared by
//! several inference tenants, built as a third scheduling island alongside
//! the x86 credit scheduler and the IXP network processor. The paper
//! (§2, §5) argues that Tune and Trigger are *general* cross-island
//! interfaces; this island proves it for a vocabulary that is neither
//! credits nor dequeue threads but **batch budgets and queue weights**.
//!
//! The model captures the behaviours a coordination layer interacts with:
//!
//! * **K execution units** each run one batch at a time; a batch costs a
//!   fixed launch overhead plus the sum of its requests' compute costs, so
//!   larger batches amortize the launch cost (throughput) at the price of
//!   queueing delay (latency).
//! * **Per-tenant weighted submission queues**: a deficit-style weighted
//!   round-robin picks which tenant's batch launches next when a unit
//!   frees up.
//! * **Batch forming with a size/timeout policy**: a tenant's batch
//!   launches when its queue reaches the tenant's *batch budget*, or when
//!   its oldest queued request has waited the forming timeout.
//! * **HBM-style buffer occupancy**: every queued or in-flight request
//!   pins device memory; submissions that would overflow the pool are
//!   rejected at the PCIe doorbell (the host sees the rejection
//!   synchronously and may retransmit).
//!
//! As a [`coord::ResourceManager`]:
//!
//! * **Tune(entity, delta)** moves the tenant along its latency ↔
//!   throughput trade-off: `delta < 0` shrinks the batch budget *and*
//!   raises the queue weight by `|delta|` (smaller, more frequent batches
//!   served sooner — a latency lean); `delta > 0` does the reverse.
//! * **Trigger(entity)** preempts the current batch boundary: the tenant's
//!   forming batch launches immediately (even partial) and jumps the
//!   weighted order for the next free unit.
//!
//! ## Example
//!
//! ```
//! use accel::{AccelConfig, AccelEvent, AccelIsland, AccelRequest};
//! use simcore::Nanos;
//!
//! let mut isl = AccelIsland::new(AccelConfig::default());
//! let t = isl.register_tenant(17);
//! isl.submit(Nanos::ZERO, AccelRequest { id: 1, tenant: t, cost: Nanos::from_micros(300), bytes: 4096 });
//! let mut out = Vec::new();
//! while let Some(at) = isl.next_event_time() {
//!     isl.on_timer(at, &mut out);
//! }
//! assert!(matches!(out[0], AccelEvent::Completed { id: 1, .. }));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use coord::{CoordError, EntityId, IslandId, IslandKind, ResourceManager};
use simcore::{EventQueue, Nanos};
use std::collections::VecDeque;
use std::fmt;

/// Island-local tenant handle (index into the submission-queue table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u32);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// Static accelerator parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccelConfig {
    /// Number of execution units (each runs one batch at a time).
    pub units: usize,
    /// Hard ceiling on any tenant's batch budget.
    pub max_batch: u32,
    /// Batch budget a freshly registered tenant starts with.
    pub default_batch_budget: u32,
    /// Initial weighted-round-robin weight for new tenants.
    pub default_weight: u32,
    /// Forming timeout: a partial batch launches once its oldest request
    /// has waited this long.
    pub batch_timeout: Nanos,
    /// Fixed cost charged per batch launch, independent of batch size.
    pub launch_overhead: Nanos,
    /// Device-memory pool shared by all queued and in-flight requests.
    pub hbm_capacity: u64,
    /// Per-tenant queued-bytes threshold for [`AccelEvent::QueueAlarm`];
    /// `None` disables alarming.
    pub queue_alarm_bytes: Option<u64>,
}

impl Default for AccelConfig {
    fn default() -> Self {
        AccelConfig {
            units: 2,
            max_batch: 32,
            default_batch_budget: 8,
            default_weight: 10,
            batch_timeout: Nanos::from_millis(2),
            launch_overhead: Nanos::from_micros(250),
            hbm_capacity: 64 * 1024 * 1024,
            queue_alarm_bytes: None,
        }
    }
}

/// A request submitted to the accelerator (one inference invocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccelRequest {
    /// Platform-unique request id, echoed back in [`AccelEvent::Completed`].
    pub id: u64,
    /// Owning tenant's submission queue.
    pub tenant: TenantId,
    /// Pure compute cost of this request on one execution unit.
    pub cost: Nanos,
    /// Device memory pinned while the request is queued or in flight.
    pub bytes: u64,
}

/// Events the island reports to its host platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccelEvent {
    /// A request's batch finished executing.
    Completed {
        /// Completion time.
        at: Nanos,
        /// Request id as submitted.
        id: u64,
        /// Owning tenant.
        tenant: TenantId,
        /// Size of the batch the request rode in.
        batch_size: u32,
        /// Time the request spent in the submission queue before launch.
        queued: Nanos,
    },
    /// A tenant's queued bytes crossed the alarm threshold upward — the
    /// device-side congestion signal a Trigger policy consumes.
    QueueAlarm {
        /// Detection time.
        at: Nanos,
        /// Congested tenant.
        tenant: TenantId,
        /// Queued bytes at detection.
        queued_bytes: u64,
        /// Queued requests at detection.
        depth: u32,
    },
}

/// Per-tenant lifetime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Requests accepted into the submission queue.
    pub submitted: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests rejected at submission (HBM pool exhausted).
    pub rejected: u64,
    /// Batches launched.
    pub batches: u64,
    /// Sum of launched batch sizes (mean = `batch_items / batches`).
    pub batch_items: u64,
    /// Trigger-forced launches that jumped the batch boundary.
    pub preemptions: u64,
    /// Queue alarms raised for this tenant.
    pub alarms: u64,
}

#[derive(Debug, Clone, Copy)]
struct Queued {
    req: AccelRequest,
    enq: Nanos,
}

#[derive(Debug)]
struct Tenant {
    /// Guest VM index this queue belongs to (platform-level identity).
    vm: u32,
    queue: VecDeque<Queued>,
    weight: u32,
    batch_budget: u32,
    /// Weighted-round-robin virtual time; smallest ready tenant launches.
    vtime: u64,
    /// Trigger pending: launch this tenant next, even a partial batch.
    forced: bool,
    /// Queued-bytes threshold that raises [`AccelEvent::QueueAlarm`];
    /// starts at the island-wide default, overridable per tenant.
    alarm_bytes: Option<u64>,
    /// Alarm re-arms only after the queue drains below half the threshold.
    alarm_armed: bool,
    stats: TenantStats,
}

#[derive(Debug)]
struct Busy {
    tenant: TenantId,
    reqs: Vec<Queued>,
    launched: Nanos,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Internal {
    /// A unit finishes its batch.
    BatchDone { unit: usize },
    /// Re-evaluate batch forming (arrival, knob change, forming timeout).
    Poll,
}

/// The batching accelerator island.
#[derive(Debug)]
pub struct AccelIsland {
    cfg: AccelConfig,
    island: IslandId,
    now: Nanos,
    tenants: Vec<Tenant>,
    units: Vec<Option<Busy>>,
    q: EventQueue<Internal>,
    hbm_used: u64,
    hbm_high_water: u64,
    hbm_rejects: u64,
}

const WRR_SCALE: u64 = 1_000_000;

impl AccelIsland {
    /// Creates an island with coordination identity `IslandId(2)`.
    pub fn new(cfg: AccelConfig) -> Self {
        Self::with_island(cfg, IslandId(2))
    }

    /// Creates an island with an explicit coordination identity.
    pub fn with_island(cfg: AccelConfig, island: IslandId) -> Self {
        let units = cfg.units.max(1);
        AccelIsland {
            cfg,
            island,
            now: Nanos::ZERO,
            tenants: Vec::new(),
            units: (0..units).map(|_| None).collect(),
            q: EventQueue::new(),
            hbm_used: 0,
            hbm_high_water: 0,
            hbm_rejects: 0,
        }
    }

    /// Registers a tenant submission queue for guest VM `vm`, returning the
    /// island-local handle (also the `local_key` for coordination binding).
    pub fn register_tenant(&mut self, vm: u32) -> TenantId {
        let id = TenantId(self.tenants.len() as u32);
        self.tenants.push(Tenant {
            vm,
            queue: VecDeque::new(),
            weight: self.cfg.default_weight.max(1),
            batch_budget: self
                .cfg
                .default_batch_budget
                .clamp(1, self.cfg.max_batch.max(1)),
            vtime: 0,
            forced: false,
            alarm_bytes: self.cfg.queue_alarm_bytes,
            alarm_armed: true,
            stats: TenantStats::default(),
        });
        id
    }

    /// Overrides one tenant's queue-alarm threshold (`None` disarms it).
    /// Lets the platform monitor only the queues whose occupancy matters —
    /// the Figure 7 pattern, where one domain's buffer is watched and its
    /// colocated neighbours are not.
    pub fn set_queue_alarm(&mut self, t: TenantId, bytes: Option<u64>) {
        if let Some(tenant) = self.tenants.get_mut(t.0 as usize) {
            tenant.alarm_bytes = bytes;
            tenant.alarm_armed = true;
        }
    }

    /// Guest VM index a tenant queue belongs to.
    pub fn tenant_vm(&self, t: TenantId) -> Option<u32> {
        self.tenants.get(t.0 as usize).map(|x| x.vm)
    }

    /// Number of registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Lifetime counters for a tenant.
    pub fn stats(&self, t: TenantId) -> Option<&TenantStats> {
        self.tenants.get(t.0 as usize).map(|x| &x.stats)
    }

    /// Current batch budget for a tenant.
    pub fn batch_budget(&self, t: TenantId) -> Option<u32> {
        self.tenants.get(t.0 as usize).map(|x| x.batch_budget)
    }

    /// Current queue weight for a tenant.
    pub fn weight(&self, t: TenantId) -> Option<u32> {
        self.tenants.get(t.0 as usize).map(|x| x.weight)
    }

    /// Currently queued requests for a tenant.
    pub fn queue_depth(&self, t: TenantId) -> usize {
        self.tenants.get(t.0 as usize).map_or(0, |x| x.queue.len())
    }

    /// Bytes of device memory currently pinned.
    pub fn hbm_used(&self) -> u64 {
        self.hbm_used
    }

    /// Highest device-memory occupancy observed.
    pub fn hbm_high_water(&self) -> u64 {
        self.hbm_high_water
    }

    /// Submissions rejected because the device-memory pool was exhausted.
    pub fn hbm_rejects(&self) -> u64 {
        self.hbm_rejects
    }

    /// Submits a request at `now`. Returns `false` (and counts a
    /// rejection) when the HBM pool cannot hold the request's bytes; the
    /// caller sees this synchronously, like a doorbell write bouncing.
    pub fn submit(&mut self, now: Nanos, req: AccelRequest) -> bool {
        let idx = req.tenant.0 as usize;
        assert!(idx < self.tenants.len(), "submit to unregistered {}", req.tenant);
        if self.hbm_used + req.bytes > self.cfg.hbm_capacity {
            self.hbm_rejects += 1;
            self.tenants[idx].stats.rejected += 1;
            return false;
        }
        self.hbm_used += req.bytes;
        self.hbm_high_water = self.hbm_high_water.max(self.hbm_used);
        let t = &mut self.tenants[idx];
        t.stats.submitted += 1;
        t.queue.push_back(Queued { req, enq: now });
        // Wake the former now (the batch may be full) and again at this
        // request's forming deadline (it may become the queue head).
        self.q.schedule(now, Internal::Poll);
        self.q
            .schedule(now + self.cfg.batch_timeout, Internal::Poll);
        true
    }

    /// Earliest pending internal event (master-loop peek).
    pub fn next_event_time(&self) -> Option<Nanos> {
        self.q.peek_time()
    }

    /// Advances to `now`, appending completions and alarms to `out`.
    pub fn on_timer(&mut self, now: Nanos, out: &mut Vec<AccelEvent>) {
        self.advance(now, out);
    }

    fn advance(&mut self, now: Nanos, out: &mut Vec<AccelEvent>) {
        debug_assert!(now >= self.now, "time went backwards");
        self.now = now;
        while let Some(t) = self.q.peek_time() {
            if t > now {
                break;
            }
            let (_, ev) = self.q.pop().expect("peeked");
            if let Internal::BatchDone { unit } = ev {
                self.finish_batch(now, unit, out);
            }
        }
        self.form_and_launch(now);
        self.check_alarms(now, out);
    }

    fn finish_batch(&mut self, now: Nanos, unit: usize, out: &mut Vec<AccelEvent>) {
        let Some(busy) = self.units[unit].take() else {
            return;
        };
        let size = busy.reqs.len() as u32;
        for q in &busy.reqs {
            self.hbm_used = self.hbm_used.saturating_sub(q.req.bytes);
            self.tenants[busy.tenant.0 as usize].stats.completed += 1;
            out.push(AccelEvent::Completed {
                at: now,
                id: q.req.id,
                tenant: busy.tenant,
                batch_size: size,
                queued: busy.launched - q.enq,
            });
        }
    }

    /// Whether tenant `i` has a launchable batch at `now`: full budget,
    /// forming timeout expired, or a pending trigger.
    fn ready(&self, i: usize, now: Nanos) -> bool {
        let t = &self.tenants[i];
        if t.queue.is_empty() {
            return false;
        }
        if t.forced || t.queue.len() >= t.batch_budget as usize {
            return true;
        }
        t.queue.front().is_some_and(|h| now >= h.enq + self.cfg.batch_timeout)
    }

    fn form_and_launch(&mut self, now: Nanos) {
        loop {
            let Some(unit) = self.units.iter().position(Option::is_none) else {
                return;
            };
            // Triggered tenants jump the weighted order; otherwise the
            // ready tenant with the smallest virtual time launches.
            let pick = (0..self.tenants.len())
                .filter(|&i| self.ready(i, now))
                .min_by_key(|&i| {
                    let t = &self.tenants[i];
                    (!t.forced, t.vtime, i)
                });
            let Some(i) = pick else {
                return;
            };
            self.launch(now, unit, i);
        }
    }

    fn launch(&mut self, now: Nanos, unit: usize, i: usize) {
        let t = &mut self.tenants[i];
        let take = (t.batch_budget as usize).min(t.queue.len());
        let reqs: Vec<Queued> = t.queue.drain(..take).collect();
        let size = reqs.len() as u64;
        t.stats.batches += 1;
        t.stats.batch_items += size;
        if t.forced {
            t.forced = false;
            t.stats.preemptions += 1;
        }
        t.vtime += WRR_SCALE * size / u64::from(t.weight.max(1));
        let cost: Nanos = reqs
            .iter()
            .fold(self.cfg.launch_overhead, |acc, q| acc + q.req.cost);
        self.q.schedule(now + cost, Internal::BatchDone { unit });
        self.units[unit] = Some(Busy {
            tenant: TenantId(i as u32),
            reqs,
            launched: now,
        });
    }

    fn check_alarms(&mut self, now: Nanos, out: &mut Vec<AccelEvent>) {
        for (i, t) in self.tenants.iter_mut().enumerate() {
            let Some(threshold) = t.alarm_bytes else { continue };
            let bytes: u64 = t.queue.iter().map(|q| q.req.bytes).sum();
            if t.alarm_armed && bytes >= threshold {
                t.alarm_armed = false;
                t.stats.alarms += 1;
                out.push(AccelEvent::QueueAlarm {
                    at: now,
                    tenant: TenantId(i as u32),
                    queued_bytes: bytes,
                    depth: t.queue.len() as u32,
                });
            } else if !t.alarm_armed && bytes < threshold / 2 {
                t.alarm_armed = true;
            }
        }
    }
}

impl ResourceManager for AccelIsland {
    fn island(&self) -> IslandId {
        self.island
    }

    fn kind(&self) -> IslandKind {
        IslandKind::Accelerator
    }

    /// `delta < 0`: latency lean — batch budget −|delta|, weight +|delta|.
    /// `delta > 0`: throughput lean — batch budget +delta, weight −delta.
    fn apply_tune(&mut self, now: Nanos, entity: EntityId, delta: i32) -> Result<(), CoordError> {
        let idx = entity.0 as usize;
        let max_batch = self.cfg.max_batch.max(1);
        let Some(t) = self.tenants.get_mut(idx) else {
            return Err(CoordError::NotMapped {
                entity,
                island: self.island,
            });
        };
        let mag = delta.unsigned_abs();
        if delta < 0 {
            t.batch_budget = t.batch_budget.saturating_sub(mag).clamp(1, max_batch);
            t.weight = t.weight.saturating_add(mag).min(1024);
        } else {
            t.batch_budget = t.batch_budget.saturating_add(mag).clamp(1, max_batch);
            t.weight = t.weight.saturating_sub(mag).max(1);
        }
        // A smaller budget can make an already-queued batch launchable.
        self.q.schedule(now, Internal::Poll);
        Ok(())
    }

    /// Preempts the batch boundary: the tenant's forming batch launches at
    /// the next opportunity (even partial) ahead of the weighted order.
    fn apply_trigger(&mut self, now: Nanos, entity: EntityId) -> Result<(), CoordError> {
        let idx = entity.0 as usize;
        let Some(t) = self.tenants.get_mut(idx) else {
            return Err(CoordError::NotMapped {
                entity,
                island: self.island,
            });
        };
        t.forced = true;
        self.q.schedule(now, Internal::Poll);
        Ok(())
    }
}

/// The accelerator island as a master-loop event source: its horizon is
/// the next batch-formation deadline or completion, and advancing it
/// emits the completions and queue alarms due at `now`.
impl simcore::Component for AccelIsland {
    type Event = AccelEvent;

    fn next_event_time(&self) -> Option<Nanos> {
        AccelIsland::next_event_time(self)
    }

    fn advance(&mut self, now: Nanos, out: &mut Vec<AccelEvent>) {
        self.on_timer(now, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(isl: &mut AccelIsland, until: Nanos) -> Vec<AccelEvent> {
        let mut out = Vec::new();
        while let Some(t) = isl.next_event_time() {
            if t > until {
                break;
            }
            isl.on_timer(t, &mut out);
        }
        out
    }

    fn req(id: u64, tenant: TenantId, micros: u64) -> AccelRequest {
        AccelRequest {
            id,
            tenant,
            cost: Nanos::from_micros(micros),
            bytes: 4096,
        }
    }

    fn completions(evs: &[AccelEvent]) -> Vec<u64> {
        evs.iter()
            .filter_map(|e| match e {
                AccelEvent::Completed { id, .. } => Some(*id),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn full_batch_launches_immediately() {
        let cfg = AccelConfig {
            default_batch_budget: 2,
            ..AccelConfig::default()
        };
        let mut isl = AccelIsland::new(cfg.clone());
        let t = isl.register_tenant(1);
        isl.submit(Nanos::ZERO, req(1, t, 100));
        isl.submit(Nanos::ZERO, req(2, t, 100));
        let evs = drain(&mut isl, Nanos::from_secs(1));
        assert_eq!(completions(&evs), vec![1, 2]);
        // One batch of two: launch overhead + 2 × cost, no timeout wait.
        let expect = cfg.launch_overhead + Nanos::from_micros(200);
        assert!(matches!(evs[0], AccelEvent::Completed { at, batch_size: 2, .. } if at == expect));
        let s = *isl.stats(t).unwrap();
        assert_eq!((s.batches, s.batch_items, s.completed), (1, 2, 2));
    }

    #[test]
    fn partial_batch_waits_for_timeout() {
        let cfg = AccelConfig::default();
        let mut isl = AccelIsland::new(cfg.clone());
        let t = isl.register_tenant(1);
        isl.submit(Nanos::ZERO, req(1, t, 100));
        let evs = drain(&mut isl, Nanos::from_secs(1));
        let expect = cfg.batch_timeout + cfg.launch_overhead + Nanos::from_micros(100);
        assert!(matches!(evs[0], AccelEvent::Completed { at, batch_size: 1, queued, .. }
            if at == expect && queued == cfg.batch_timeout));
    }

    #[test]
    fn weighted_order_prefers_heavier_tenant() {
        let cfg = AccelConfig {
            units: 1,
            default_batch_budget: 1,
            ..AccelConfig::default()
        };
        let mut isl = AccelIsland::new(cfg);
        let a = isl.register_tenant(1);
        let b = isl.register_tenant(2);
        isl.apply_tune(Nanos::ZERO, EntityId(b.0), -10).unwrap(); // b: weight 20
        // Backlog both tenants while the unit is busy with a first batch.
        for i in 0..4 {
            isl.submit(Nanos::ZERO, req(i, a, 500));
            isl.submit(Nanos::ZERO, req(10 + i, b, 500));
        }
        let evs = drain(&mut isl, Nanos::from_secs(1));
        let ids = completions(&evs);
        assert_eq!(ids.len(), 8);
        // b (weight 20) finishes its backlog before a (weight 10) does.
        let last_b = ids.iter().rposition(|&i| i >= 10).unwrap();
        let last_a = ids.iter().rposition(|&i| i < 10).unwrap();
        assert!(last_b < last_a, "order: {ids:?}");
    }

    #[test]
    fn tune_moves_budget_and_weight_with_clamps() {
        let mut isl = AccelIsland::new(AccelConfig::default());
        let t = isl.register_tenant(1);
        isl.apply_tune(Nanos::ZERO, EntityId(t.0), -3).unwrap();
        assert_eq!(isl.batch_budget(t), Some(5));
        assert_eq!(isl.weight(t), Some(13));
        isl.apply_tune(Nanos::ZERO, EntityId(t.0), 100).unwrap();
        assert_eq!(isl.batch_budget(t), Some(32)); // clamped to max_batch
        assert_eq!(isl.weight(t), Some(1)); // floor
        isl.apply_tune(Nanos::ZERO, EntityId(t.0), -1000).unwrap();
        assert_eq!(isl.batch_budget(t), Some(1)); // floor
        assert!(isl
            .apply_tune(Nanos::ZERO, EntityId(99), 1)
            .is_err());
    }

    #[test]
    fn trigger_preempts_forming_timeout() {
        let cfg = AccelConfig::default();
        let mut isl = AccelIsland::new(cfg.clone());
        let t = isl.register_tenant(1);
        isl.submit(Nanos::ZERO, req(1, t, 100));
        // Without a trigger the partial batch would wait 2 ms; the trigger
        // launches it immediately.
        isl.apply_trigger(Nanos::ZERO, EntityId(t.0)).unwrap();
        let evs = drain(&mut isl, Nanos::from_secs(1));
        let expect = cfg.launch_overhead + Nanos::from_micros(100);
        assert!(matches!(evs[0], AccelEvent::Completed { at, .. } if at == expect));
        assert_eq!(isl.stats(t).unwrap().preemptions, 1);
    }

    #[test]
    fn trigger_jumps_weighted_order() {
        let cfg = AccelConfig {
            units: 1,
            default_batch_budget: 1,
            ..AccelConfig::default()
        };
        let mut isl = AccelIsland::new(cfg);
        let a = isl.register_tenant(1);
        let b = isl.register_tenant(2);
        for i in 0..3 {
            isl.submit(Nanos::ZERO, req(i, a, 500));
        }
        isl.submit(Nanos::ZERO, req(10, b, 500));
        // Let the first batch (a, by tie-break) launch, then force b ahead
        // of a's remaining backlog.
        let mut out = Vec::new();
        isl.on_timer(Nanos::ZERO, &mut out);
        isl.apply_trigger(Nanos::ZERO, EntityId(b.0)).unwrap();
        let evs = drain(&mut isl, Nanos::from_secs(1));
        let ids = completions(&evs);
        assert_eq!(ids[0], 0, "a's in-flight batch is not revoked");
        assert_eq!(ids[1], 10, "b jumps a's backlog at the batch boundary");
    }

    #[test]
    fn hbm_exhaustion_rejects_then_recovers() {
        let cfg = AccelConfig {
            hbm_capacity: 10_000,
            default_batch_budget: 1,
            ..AccelConfig::default()
        };
        let mut isl = AccelIsland::new(cfg);
        let t = isl.register_tenant(1);
        assert!(isl.submit(Nanos::ZERO, req(1, t, 100))); // 4096
        assert!(isl.submit(Nanos::ZERO, req(2, t, 100))); // 8192
        assert!(!isl.submit(Nanos::ZERO, req(3, t, 100))); // would be 12288
        assert_eq!(isl.hbm_rejects(), 1);
        assert_eq!(isl.hbm_high_water(), 8192);
        assert_eq!(isl.stats(t).unwrap().rejected, 1);
        let evs = drain(&mut isl, Nanos::from_secs(1));
        assert_eq!(completions(&evs), vec![1, 2]);
        assert_eq!(isl.hbm_used(), 0);
        assert!(isl.submit(Nanos::from_secs(1), req(4, t, 100)));
    }

    #[test]
    fn queue_alarm_fires_on_upward_crossing_once() {
        let cfg = AccelConfig {
            units: 1,
            queue_alarm_bytes: Some(10_000),
            ..AccelConfig::default()
        };
        let mut isl = AccelIsland::new(cfg);
        let t = isl.register_tenant(1);
        // Occupy the unit so the backlog builds.
        isl.submit(Nanos::ZERO, req(0, t, 50_000));
        isl.apply_trigger(Nanos::ZERO, EntityId(t.0)).unwrap();
        let mut out = Vec::new();
        isl.on_timer(Nanos::ZERO, &mut out);
        for i in 1..=4 {
            isl.submit(Nanos::from_micros(i), req(i, t, 100));
            isl.on_timer(Nanos::from_micros(i), &mut out);
        }
        let alarms: Vec<_> = out
            .iter()
            .filter(|e| matches!(e, AccelEvent::QueueAlarm { .. }))
            .collect();
        assert_eq!(alarms.len(), 1, "one alarm per upward crossing: {out:?}");
        assert!(matches!(alarms[0], AccelEvent::QueueAlarm { depth: 3, queued_bytes: 12288, .. }));
        assert_eq!(isl.stats(t).unwrap().alarms, 1);
    }

    #[test]
    fn units_run_batches_concurrently() {
        let cfg = AccelConfig {
            units: 2,
            default_batch_budget: 1,
            ..AccelConfig::default()
        };
        let mut isl = AccelIsland::new(cfg.clone());
        let t = isl.register_tenant(1);
        isl.submit(Nanos::ZERO, req(1, t, 1000));
        isl.submit(Nanos::ZERO, req(2, t, 1000));
        let evs = drain(&mut isl, Nanos::from_secs(1));
        let expect = cfg.launch_overhead + Nanos::from_millis(1);
        for ev in &evs {
            assert!(matches!(ev, AccelEvent::Completed { at, .. } if *at == expect));
        }
        assert_eq!(evs.len(), 2);
    }

    #[test]
    fn resource_manager_identity() {
        let isl = AccelIsland::with_island(AccelConfig::default(), IslandId(7));
        assert_eq!(isl.island(), IslandId(7));
        assert_eq!(isl.kind(), IslandKind::Accelerator);
        assert_eq!(AccelIsland::new(AccelConfig::default()).island(), IslandId(2));
    }
}
