//! The paper's platform-efficiency metric.

/// Platform efficiency as defined in §3.1: average request throughput
/// (application performance) over mean CPU utilization (resource
/// utilization), where utilization is the sum of per-domain percentages
/// expressed as a fraction (150% → 1.5).
///
/// The paper's Table 2: 68 req/s at ~132.6% utilization → 51.28;
/// 95 req/s at ~163.2% → 58.20.
///
/// # Example
///
/// ```
/// use metrics::platform_efficiency;
/// let e = platform_efficiency(68.0, 132.6);
/// assert!((e - 51.28).abs() < 0.1);
/// ```
pub fn platform_efficiency(throughput_rps: f64, total_cpu_percent: f64) -> f64 {
    if total_cpu_percent <= 0.0 {
        return 0.0;
    }
    throughput_rps / (total_cpu_percent / 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_arithmetic() {
        assert!((platform_efficiency(95.0, 163.2) - 58.2).abs() < 0.1);
    }

    #[test]
    fn zero_utilization_is_zero() {
        assert_eq!(platform_efficiency(100.0, 0.0), 0.0);
    }

    #[test]
    fn higher_throughput_same_cpu_is_better() {
        assert!(platform_efficiency(90.0, 150.0) > platform_efficiency(60.0, 150.0));
    }
}
