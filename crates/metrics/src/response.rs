//! Per-request-type response-time collection (Figures 2 & 4, Table 1).

use simcore::stats::{Histogram, Summary};
use simcore::Nanos;
use std::collections::BTreeMap;

/// Response-time summaries keyed by request type name.
///
/// # Example
///
/// ```
/// use metrics::ResponseStats;
/// use simcore::Nanos;
///
/// let mut r = ResponseStats::new();
/// r.record("PutBid", Nanos::from_millis(1500));
/// r.record("PutBid", Nanos::from_millis(500));
/// let s = r.summary("PutBid").unwrap();
/// assert_eq!(s.count(), 2);
/// assert_eq!(s.mean(), 1000.0); // milliseconds
/// ```
#[derive(Debug, Clone)]
pub struct ResponseStats {
    per_type: BTreeMap<String, Summary>,
    histograms: BTreeMap<String, Histogram>,
    all: Summary,
    all_hist: Histogram,
}

impl Default for ResponseStats {
    fn default() -> Self {
        ResponseStats {
            per_type: BTreeMap::new(),
            histograms: BTreeMap::new(),
            all: Summary::new(),
            all_hist: Histogram::latency_millis(),
        }
    }
}

impl ResponseStats {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a completed request of type `key` with the given
    /// end-to-end latency. Values are summarised in milliseconds.
    pub fn record(&mut self, key: &str, latency: Nanos) {
        self.per_type
            .entry(key.to_owned())
            .or_default()
            .record_nanos(latency);
        self.histograms
            .entry(key.to_owned())
            .or_insert_with(Histogram::latency_millis)
            .record(latency.as_millis_f64());
        self.all.record_nanos(latency);
        self.all_hist.record(latency.as_millis_f64());
    }

    /// Approximate latency percentile for one request type, in
    /// milliseconds (`q` in 0..=1; 0 when the type was never seen).
    pub fn percentile(&self, key: &str, q: f64) -> f64 {
        self.histograms.get(key).map(|h| h.quantile(q)).unwrap_or(0.0)
    }

    /// Approximate latency percentile across all types, in milliseconds.
    pub fn overall_percentile(&self, q: f64) -> f64 {
        self.all_hist.quantile(q)
    }

    /// Summary for one request type.
    pub fn summary(&self, key: &str) -> Option<&Summary> {
        self.per_type.get(key)
    }

    /// Summary across all request types.
    pub fn overall(&self) -> &Summary {
        &self.all
    }

    /// Iterates `(type, summary)` in type order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Summary)> {
        self.per_type.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Total requests recorded.
    pub fn total(&self) -> u64 {
        self.all.count()
    }

    /// Number of distinct request types seen.
    pub fn types(&self) -> usize {
        self.per_type.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_type_and_overall() {
        let mut r = ResponseStats::new();
        r.record("A", Nanos::from_millis(10));
        r.record("A", Nanos::from_millis(30));
        r.record("B", Nanos::from_millis(100));
        assert_eq!(r.total(), 3);
        assert_eq!(r.types(), 2);
        assert_eq!(r.summary("A").unwrap().mean(), 20.0);
        assert_eq!(r.summary("B").unwrap().count(), 1);
        assert!(r.summary("C").is_none());
        assert!((r.overall().mean() - 140.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_are_monotone_and_bracket_the_data() {
        let mut r = ResponseStats::new();
        for i in 1..=1000u64 {
            r.record("T", Nanos::from_millis(i));
        }
        let p50 = r.percentile("T", 0.5);
        let p95 = r.percentile("T", 0.95);
        let p99 = r.percentile("T", 0.99);
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p50 > 300.0 && p50 < 800.0, "p50 {p50}");
        assert!(p99 > 800.0, "p99 {p99}");
        assert_eq!(r.percentile("missing", 0.5), 0.0);
        assert!(r.overall_percentile(0.99) >= r.overall_percentile(0.5));
    }

    #[test]
    fn iteration_is_sorted() {
        let mut r = ResponseStats::new();
        r.record("Zed", Nanos(1));
        r.record("Alpha", Nanos(1));
        let keys: Vec<&str> = r.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["Alpha", "Zed"]);
    }
}
