//! Plain-text table and CSV rendering for the experiment harness.

use std::fmt;

/// A titled table of string cells with aligned plain-text rendering and a
/// CSV export, used to print paper-style artifacts.
///
/// # Example
///
/// ```
/// use metrics::Table;
/// let mut t = Table::new("Table 2: RUBiS throughput", &["Metric", "Base", "Coord"]);
/// t.row(&["Throughput (req/s)", "68", "95"]);
/// let text = t.to_string();
/// assert!(text.contains("Throughput"));
/// assert!(t.to_csv().starts_with("Metric,Base,Coord\n"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Short rows are padded with empty cells; long rows
    /// are truncated to the header width.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        let mut r: Vec<String> = cells.iter().map(|s| (*s).to_owned()).collect();
        r.resize(self.headers.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Appends a row of already-owned cells.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        let mut r = cells;
        r.resize(self.headers.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// CSV rendering (headers + rows; cells with commas/quotes are
    /// quoted).
    pub fn to_csv(&self) -> String {
        fn esc(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let line: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        writeln!(f, "{line}")?;
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let row = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!(" {c:<w$} "))
                .collect::<Vec<_>>()
                .join("|");
            writeln!(f, "{row}")
        };
        render(f, &self.headers)?;
        writeln!(f, "{line}")?;
        for r in &self.rows {
            render(f, r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_text() {
        let mut t = Table::new("T", &["a", "bbbb"]);
        t.row(&["xxxxx", "y"]);
        let s = t.to_string();
        assert!(s.contains("xxxxx"));
        assert!(s.lines().count() >= 4);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert_eq!(t.title(), "T");
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(&["1"]);
        t.row(&["1", "2", "3"]);
        assert!(t.to_csv().contains("1,\n"));
        assert!(t.to_csv().contains("1,2\n"));
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("T", &["k"]);
        t.row(&["a,b"]);
        t.row(&["q\"uote"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"q\"\"uote\""));
    }

    #[test]
    fn row_owned_works() {
        let mut t = Table::new("T", &["x", "y"]);
        t.row_owned(vec!["1".into(), "2".into()]);
        assert_eq!(t.len(), 1);
    }
}
