//! # metrics — measurement and reporting for the reproduction
//!
//! The paper's evaluation (§3.1) defines four application-facing metrics
//! for RUBiS — response-time variability, request throughput, session
//! time, and **platform efficiency** (throughput over mean CPU
//! utilization) — plus per-VM CPU utilization breakdowns (Figure 5) and
//! frame-rate QoS for MPlayer (Figures 6–7, Table 3). This crate holds the
//! collectors and the plain-text table/CSV renderers the experiment
//! harness prints paper-style artifacts with.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod efficiency;
mod response;
mod table;
mod throughput;

pub use efficiency::platform_efficiency;
pub use response::ResponseStats;
pub use table::Table;
pub use throughput::SessionStats;
