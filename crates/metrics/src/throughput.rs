//! Request throughput and session accounting (Table 2).

use simcore::stats::OnlineStats;
use simcore::Nanos;

/// Accumulates completed requests and user sessions over a measurement
/// window.
///
/// # Example
///
/// ```
/// use metrics::SessionStats;
/// use simcore::Nanos;
///
/// let mut s = SessionStats::new();
/// s.request_completed();
/// s.request_completed();
/// s.session_completed(Nanos::from_secs(90));
/// assert_eq!(s.requests(), 2);
/// assert_eq!(s.sessions(), 1);
/// assert_eq!(s.throughput(Nanos::from_secs(2)), 1.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SessionStats {
    requests: u64,
    sessions: u64,
    session_time: OnlineStats,
}

impl SessionStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one completed request.
    pub fn request_completed(&mut self) {
        self.requests += 1;
    }

    /// Counts one completed user session with its duration.
    pub fn session_completed(&mut self, duration: Nanos) {
        self.sessions += 1;
        self.session_time.record(duration.as_secs_f64());
    }

    /// Completed requests.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Completed sessions.
    pub fn sessions(&self) -> u64 {
        self.sessions
    }

    /// Requests per second over `window`.
    pub fn throughput(&self, window: Nanos) -> f64 {
        let secs = window.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.requests as f64 / secs
    }

    /// Mean completed-session duration in seconds.
    pub fn avg_session_secs(&self) -> f64 {
        self.session_time.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_rates() {
        let mut s = SessionStats::new();
        for _ in 0..50 {
            s.request_completed();
        }
        s.session_completed(Nanos::from_secs(100));
        s.session_completed(Nanos::from_secs(50));
        assert_eq!(s.requests(), 50);
        assert_eq!(s.sessions(), 2);
        assert_eq!(s.throughput(Nanos::from_secs(10)), 5.0);
        assert_eq!(s.avg_session_secs(), 75.0);
    }

    #[test]
    fn zero_window_is_zero_throughput() {
        let mut s = SessionStats::new();
        s.request_completed();
        assert_eq!(s.throughput(Nanos::ZERO), 0.0);
    }
}
