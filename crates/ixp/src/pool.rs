//! Microengine thread pools.
//!
//! Each pipeline task (Rx, classify, per-flow host dequeue, Tx) owns a set
//! of hardware thread contexts. A pool is an M/G/k-style server group: a
//! free thread starts a packet immediately (plus a polling delay when the
//! pool was idle), excess packets queue in DRAM. The pool tracks queued
//! bytes — the quantity the paper's buffer monitor watches.

use crate::Packet;
use simcore::Nanos;
use std::collections::VecDeque;

/// A group of identical microengine threads serving one packet queue.
///
/// The pool does not know service *times* — the island computes those from
/// the task's [`CostModel`](crate::CostModel) — it only tracks which
/// threads are busy and what is queued, so resizing the pool (the paper's
/// IXP-side Tune lever) never loses in-flight work.
#[derive(Debug, Clone)]
pub struct ThreadPool {
    threads: u32,
    busy: u32,
    poll: Nanos,
    queue: VecDeque<Packet>,
    queued_bytes: u64,
    capacity_bytes: u64,
    served: u64,
    dropped: u64,
    max_queued_bytes: u64,
}

impl ThreadPool {
    /// Creates a pool of `threads` contexts polling every `poll`, with a
    /// DRAM queue bounded at `capacity_bytes`.
    pub fn new(threads: u32, poll: Nanos, capacity_bytes: u64) -> Self {
        ThreadPool {
            threads,
            busy: 0,
            poll,
            queue: VecDeque::new(),
            queued_bytes: 0,
            capacity_bytes,
            served: 0,
            dropped: 0,
            max_queued_bytes: 0,
        }
    }

    /// Offers a packet to the pool. If a thread is free the packet starts
    /// service and `Some(start_delay)` is returned (the polling latency if
    /// the pool was idle); otherwise the packet is queued, or dropped if
    /// the queue is at capacity (`None` either way —
    /// [`dropped`](Self::dropped) distinguishes).
    pub fn offer(&mut self, pkt: Packet) -> Option<(Nanos, Packet)> {
        if self.busy < self.threads {
            let delay = if self.busy == 0 { self.poll / 2 } else { Nanos::ZERO };
            self.busy += 1;
            return Some((delay, pkt));
        }
        if self.queued_bytes + pkt.len_bytes as u64 > self.capacity_bytes {
            self.dropped += 1;
            return None;
        }
        self.queued_bytes += pkt.len_bytes as u64;
        self.max_queued_bytes = self.max_queued_bytes.max(self.queued_bytes);
        self.queue.push_back(pkt);
        None
    }

    /// Marks one service completion. Returns the next queued packet to
    /// start (no polling delay: the thread is hot), if capacity allows.
    pub fn finish_one(&mut self) -> Option<Packet> {
        debug_assert!(self.busy > 0, "finish without start");
        self.busy = self.busy.saturating_sub(1);
        self.served += 1;
        self.start_next()
    }

    /// Starts one queued packet if a thread is free.
    pub fn start_next(&mut self) -> Option<Packet> {
        if self.busy < self.threads {
            if let Some(pkt) = self.queue.pop_front() {
                self.queued_bytes -= pkt.len_bytes as u64;
                self.busy += 1;
                return Some(pkt);
            }
        }
        None
    }

    /// Resizes the pool. Growing releases queued packets (returned, to be
    /// started immediately); shrinking lets excess in-flight work finish
    /// without starting new packets.
    pub fn set_threads(&mut self, threads: u32) -> Vec<Packet> {
        self.threads = threads;
        let mut started = Vec::new();
        while let Some(p) = self.start_next() {
            started.push(p);
        }
        started
    }

    /// Updates the polling interval for idle threads.
    pub fn set_poll(&mut self, poll: Nanos) {
        self.poll = poll;
    }

    /// Configured thread count.
    pub fn threads(&self) -> u32 {
        self.threads
    }

    /// Threads currently serving packets (may transiently exceed
    /// [`threads`](Self::threads) after a shrink).
    pub fn busy(&self) -> u32 {
        self.busy
    }

    /// Bytes waiting in the DRAM queue.
    pub fn queued_bytes(&self) -> u64 {
        self.queued_bytes
    }

    /// Packets waiting in the queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Total packets fully served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Packets dropped due to queue overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// High-water mark of queued bytes.
    pub fn max_queued_bytes(&self) -> u64 {
        self.max_queued_bytes
    }

    /// Current polling interval.
    pub fn poll(&self) -> Nanos {
        self.poll
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AppTag;

    fn pkt(id: u64, len: u32) -> Packet {
        Packet::new(id, 0, len, AppTag::Plain)
    }

    #[test]
    fn idle_pool_starts_with_poll_delay() {
        let mut p = ThreadPool::new(2, Nanos::from_micros(20), 1 << 20);
        let (delay, _) = p.offer(pkt(1, 100)).unwrap();
        assert_eq!(delay, Nanos::from_micros(10));
        // Second packet: pool busy but has a free thread — no poll delay.
        let (delay2, _) = p.offer(pkt(2, 100)).unwrap();
        assert_eq!(delay2, Nanos::ZERO);
        assert_eq!(p.busy(), 2);
    }

    #[test]
    fn excess_packets_queue_fifo() {
        let mut p = ThreadPool::new(1, Nanos::ZERO, 1 << 20);
        assert!(p.offer(pkt(1, 100)).is_some());
        assert!(p.offer(pkt(2, 100)).is_none());
        assert!(p.offer(pkt(3, 100)).is_none());
        assert_eq!(p.queue_len(), 2);
        assert_eq!(p.queued_bytes(), 200);
        let next = p.finish_one().unwrap();
        assert_eq!(next.id, 2);
        let next = p.finish_one().unwrap();
        assert_eq!(next.id, 3);
        assert!(p.finish_one().is_none());
        assert_eq!(p.served(), 3);
    }

    #[test]
    fn zero_threads_never_serve() {
        let mut p = ThreadPool::new(0, Nanos::ZERO, 1 << 20);
        assert!(p.offer(pkt(1, 100)).is_none());
        assert_eq!(p.queue_len(), 1);
        assert!(p.start_next().is_none());
    }

    #[test]
    fn growing_releases_queue() {
        let mut p = ThreadPool::new(1, Nanos::ZERO, 1 << 20);
        p.offer(pkt(1, 100));
        p.offer(pkt(2, 100));
        p.offer(pkt(3, 100));
        let started = p.set_threads(3);
        assert_eq!(started.len(), 2);
        assert_eq!(p.busy(), 3);
        assert_eq!(p.queue_len(), 0);
    }

    #[test]
    fn shrink_lets_inflight_finish() {
        let mut p = ThreadPool::new(2, Nanos::ZERO, 1 << 20);
        p.offer(pkt(1, 100));
        p.offer(pkt(2, 100));
        p.offer(pkt(3, 100)); // queued
        assert!(p.set_threads(1).is_empty());
        assert_eq!(p.busy(), 2, "in-flight work keeps running");
        // First completion frees a thread but busy (1) == threads (1):
        // the queued packet must wait for the next completion.
        assert!(p.finish_one().is_none());
        let next = p.finish_one().unwrap();
        assert_eq!(next.id, 3);
    }

    #[test]
    fn overflow_drops() {
        let mut p = ThreadPool::new(1, Nanos::ZERO, 250);
        p.offer(pkt(1, 100)); // in service
        assert!(p.offer(pkt(2, 200)).is_none()); // queued: 200
        assert!(p.offer(pkt(3, 100)).is_none()); // would exceed 250 → drop
        assert_eq!(p.dropped(), 1);
        assert_eq!(p.queued_bytes(), 200);
        assert_eq!(p.max_queued_bytes(), 200);
    }
}
