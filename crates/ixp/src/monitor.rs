//! System-level buffer monitoring (§3.2 "Using system buffer monitoring").
//!
//! The IXP watches per-VM packet-queue lengths in its DRAM. When a queue
//! crosses a byte threshold the monitor fires an alarm — the platform turns
//! it into a coordination *Trigger* — re-firing periodically while the
//! overload persists (the XScale monitor polls the queue), and fully
//! re-arming once the queue has drained below half the threshold so a
//! hovering queue does not spam triggers.

use simcore::Nanos;

/// Threshold detector over a byte-occupancy signal.
///
/// Fires on the upward crossing, then re-fires every `refire` interval
/// while the level stays at or above the threshold; fully re-arms below
/// half the threshold.
///
/// # Example
///
/// ```
/// use ixp::BufferMonitor;
/// use simcore::Nanos;
/// let mut m = BufferMonitor::new(Some(128 * 1024));
/// assert!(!m.on_level(Nanos::ZERO, 100 * 1024));
/// assert!(m.on_level(Nanos::ZERO, 130 * 1024));            // crossed: fire
/// assert!(!m.on_level(Nanos::from_millis(1), 140 * 1024)); // within refire
/// assert!(!m.on_level(Nanos::from_millis(2), 60 * 1024));  // below half: re-armed
/// assert!(m.on_level(Nanos::from_millis(3), 130 * 1024));  // fires again
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferMonitor {
    threshold: Option<u64>,
    refire: Nanos,
    armed: bool,
    last_fire: Option<Nanos>,
    alarms: u64,
}

impl BufferMonitor {
    /// Creates a monitor with a 100 ms re-fire interval; `None` disables
    /// alarming.
    pub fn new(threshold: Option<u64>) -> Self {
        BufferMonitor {
            threshold,
            refire: Nanos::from_millis(100),
            armed: true,
            last_fire: None,
            alarms: 0,
        }
    }

    /// Overrides the re-fire interval for sustained overloads.
    pub fn with_refire(mut self, refire: Nanos) -> Self {
        self.refire = refire;
        self
    }

    /// Reports the current occupancy at time `now`. Returns `true` exactly
    /// when an alarm fires.
    pub fn on_level(&mut self, now: Nanos, bytes: u64) -> bool {
        let Some(th) = self.threshold else { return false };
        if bytes >= th {
            let due = match self.last_fire {
                None => true,
                Some(t) => self.armed || now >= t + self.refire,
            };
            if due {
                self.armed = false;
                self.last_fire = Some(now);
                self.alarms += 1;
                return true;
            }
        }
        if !self.armed && bytes < th / 2 {
            self.armed = true;
        }
        false
    }

    /// Configured threshold.
    pub fn threshold(&self) -> Option<u64> {
        self.threshold
    }

    /// Replaces the threshold (re-arms).
    pub fn set_threshold(&mut self, threshold: Option<u64>) {
        self.threshold = threshold;
        self.armed = true;
        self.last_fire = None;
    }

    /// Total alarms fired.
    pub fn alarms(&self) -> u64 {
        self.alarms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> Nanos {
        Nanos::from_millis(ms)
    }

    #[test]
    fn disabled_never_fires() {
        let mut m = BufferMonitor::new(None);
        assert!(!m.on_level(at(0), u64::MAX));
        assert_eq!(m.alarms(), 0);
    }

    #[test]
    fn fires_once_per_crossing_within_refire() {
        let mut m = BufferMonitor::new(Some(100));
        assert!(m.on_level(at(0), 100));
        assert!(!m.on_level(at(10), 200));
        assert!(!m.on_level(at(20), 150));
        assert_eq!(m.alarms(), 1);
    }

    #[test]
    fn refires_during_sustained_overload() {
        let mut m = BufferMonitor::new(Some(100)).with_refire(at(200));
        assert!(m.on_level(at(0), 150));
        assert!(!m.on_level(at(100), 150));
        assert!(m.on_level(at(250), 150), "re-fires after the interval");
        assert_eq!(m.alarms(), 2);
    }

    #[test]
    fn rearms_below_half() {
        let mut m = BufferMonitor::new(Some(100));
        assert!(m.on_level(at(0), 100));
        assert!(!m.on_level(at(1), 60)); // not below half yet
        assert!(!m.on_level(at(2), 100)); // still disarmed, within refire
        assert!(!m.on_level(at(3), 49)); // re-armed
        assert!(m.on_level(at(4), 100));
        assert_eq!(m.alarms(), 2);
    }

    #[test]
    fn set_threshold_rearms() {
        let mut m = BufferMonitor::new(Some(100));
        assert!(m.on_level(at(0), 100));
        m.set_threshold(Some(200));
        assert!(m.on_level(at(1), 250));
        assert_eq!(m.alarms(), 2);
    }
}
