//! # ixp — the IXP2850 network-processor scheduling island
//!
//! An event-driven model of the Intel IXP2850 as deployed on the paper's
//! Netronome i8000 card: 16 microengines × 8 hardware threads at 1.4 GHz,
//! a deep memory hierarchy (local / scratchpad / SRAM / DRAM), packet
//! descriptor rings in SRAM with payloads in DRAM, and — on top of the
//! hardware round-robin thread switching — the paper's *scheduler-like*
//! software layer that assigns threads and polling intervals to classified
//! per-VM flow queues (§2.1).
//!
//! The model reproduces the island behaviours the coordination schemes
//! consume:
//!
//! * per-packet processing costs derived from an instruction + memory
//!   reference [`CostModel`] with multithreaded latency hiding;
//! * per-flow service rates as a function of **thread assignment** and
//!   **poll interval** ([`IxpIsland::set_flow_threads`],
//!   [`IxpIsland::set_flow_poll`]) — the IXP-side Tune levers;
//! * deep-packet-inspection classification of incoming requests
//!   ([`IxpEvent::Classified`]) — the input to RUBiS request-type
//!   coordination;
//! * DRAM buffer occupancy per flow with threshold alarms
//!   ([`IxpEvent::BufferAlarm`]) — the input to Trigger coordination.
//!
//! ## Example
//!
//! ```
//! use ixp::{AppTag, IxpConfig, IxpEvent, IxpIsland, Packet};
//! use simcore::Nanos;
//!
//! let mut island = IxpIsland::new(IxpConfig::default());
//! let flow = island.register_flow(1); // VM #1's receive flow
//! let pkt = Packet::new(0, 1, 1500, AppTag::Plain);
//! island.rx_from_wire(Nanos::ZERO, pkt);
//! // Drive to completion: the packet crosses Rx → classify → flow queue.
//! // Outputs land in a reusable caller-owned buffer.
//! let mut delivered = false;
//! let mut evs = Vec::new();
//! while let Some(t) = island.next_event_time() {
//!     evs.clear();
//!     island.on_timer(t, &mut evs);
//!     for ev in &evs {
//!         if let IxpEvent::DeliverToHost { flow: f, .. } = ev {
//!             assert_eq!(*f, flow);
//!             delivered = true;
//!         }
//!     }
//! }
//! assert!(delivered);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
mod hw;
mod island;
mod monitor;
mod packet;
mod pool;

pub use hw::{CostModel, IxpGeometry, MemLevel};
pub use island::{FlowStats, IxpConfig, IxpEvent, IxpIsland};
pub use monitor::BufferMonitor;
pub use packet::{AppTag, FlowId, Packet};
pub use pool::ThreadPool;
