//! Packets and the application-level metadata the IXP classifiers extract.

use std::fmt;

/// Index of a classified per-VM flow queue on the IXP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u32);

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow{}", self.0)
    }
}

/// Application-level content of a packet, as the IXP's classification
/// engines would recover it from headers and payload bytes.
///
/// In the hardware prototype this information lives in HTTP request lines,
/// RTSP SDP exchanges and RTP headers; the simulation carries it as
/// structured metadata and charges the classifier the DRAM references it
/// would spend parsing the real bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppTag {
    /// An HTTP request with an application-defined class (e.g. a RUBiS
    /// request type ordinal) and whether it is a write-path request.
    Http {
        /// Workload-defined request class ordinal.
        class_id: u16,
        /// `true` for write-path (servlet / DB mutating) requests.
        write: bool,
    },
    /// An HTTP response flowing back to a client.
    HttpResponse {
        /// Class of the request being answered.
        class_id: u16,
    },
    /// An RTSP session setup advertising stream properties.
    RtspSetup {
        /// Stream bit rate in kbit/s.
        kbps: u32,
        /// Stream frame rate in frames/s.
        fps: u32,
    },
    /// RTP media data belonging to an established stream.
    Rtp {
        /// Stream bit rate in kbit/s (as learned at setup).
        kbps: u32,
        /// Stream frame rate in frames/s.
        fps: u32,
    },
    /// An inference invocation bound for the accelerator island, carrying
    /// the model ordinal the classifier recovers from the RPC header.
    Inference {
        /// Workload-defined model ordinal.
        model_id: u16,
        /// `true` for interactive (latency-SLA) traffic, `false` for
        /// batch/throughput traffic.
        latency_sensitive: bool,
    },
    /// An inference result flowing back to a client.
    InferenceResponse {
        /// Model ordinal of the request being answered.
        model_id: u16,
    },
    /// Flow-control-free UDP bulk data.
    UdpBulk,
    /// Anything else.
    Plain,
}

/// A network packet traversing the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Platform-unique packet id (assigned by the traffic source).
    pub id: u64,
    /// Destination VM index (guest domain the packet is addressed to);
    /// the Rx flow-classification key.
    pub dst_vm: u32,
    /// Source VM index for host-originated packets; the Tx
    /// flow-classification key (`None` for external traffic).
    pub src_vm: Option<u32>,
    /// On-wire length in bytes.
    pub len_bytes: u32,
    /// Application metadata recovered by classification.
    pub app: AppTag,
}

impl Packet {
    /// Creates a packet arriving from the wire (no source VM).
    pub fn new(id: u64, dst_vm: u32, len_bytes: u32, app: AppTag) -> Self {
        Packet {
            id,
            dst_vm,
            src_vm: None,
            len_bytes,
            app,
        }
    }

    /// Tags the packet with its originating guest VM (host-side egress).
    pub fn with_src(mut self, src_vm: u32) -> Self {
        self.src_vm = Some(src_vm);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_display() {
        assert_eq!(FlowId(3).to_string(), "flow3");
    }

    #[test]
    fn packet_fields() {
        let p = Packet::new(9, 2, 1500, AppTag::Http { class_id: 4, write: true });
        assert_eq!(p.id, 9);
        assert_eq!(p.dst_vm, 2);
        assert_eq!(p.src_vm, None);
        assert_eq!(p.len_bytes, 1500);
        assert!(matches!(p.app, AppTag::Http { class_id: 4, write: true }));
        assert_eq!(p.with_src(7).src_vm, Some(7));
    }
}
