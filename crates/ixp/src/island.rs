//! The assembled IXP island: Rx/Tx pipelines, classification, per-flow
//! host-bound queues with backpressure, and the software scheduling knobs.
//!
//! ## Pipeline (mirrors Figure 3 of the paper)
//!
//! ```text
//!  wire ──► Rx pool ──► classifier pool ──► per-flow queue ──► host ring
//!                         (flow / DPI)      (thread + poll      (window-
//!                                            knobs, monitor)    limited)
//!  host ──► Tx pool ──► wire
//! ```
//!
//! The host ring is **window-limited**: each flow may have at most
//! `host_window` packets posted to the PCIe message queue and not yet
//! consumed by the host. When the host stalls (e.g. the destination VM is
//! CPU-starved), the window closes, the per-flow DRAM queue grows, and the
//! buffer monitor eventually fires — precisely the causal chain behind the
//! paper's Figure 7 trigger experiment.

use crate::monitor::BufferMonitor;
use crate::{AppTag, CostModel, FlowId, IxpGeometry, Packet, ThreadPool};
use simcore::{EventQueue, Nanos};
use std::collections::BTreeMap;

/// Configuration for an [`IxpIsland`].
#[derive(Debug, Clone, PartialEq)]
pub struct IxpConfig {
    /// Hardware geometry (clock, engines, threads, stall exposure).
    pub geometry: IxpGeometry,
    /// Threads receiving packets from the wire.
    pub rx_threads: u32,
    /// Threads running the Rx classifier.
    pub classify_threads: u32,
    /// Threads transmitting host packets to the wire.
    pub tx_threads: u32,
    /// Default threads per registered flow's host-bound queue.
    pub flow_threads: u32,
    /// Default poll interval for flow queues.
    pub flow_poll: Nanos,
    /// Poll interval for the shared pipeline pools.
    pub stage_poll: Nanos,
    /// Enable deep packet inspection on Rx (request classification).
    pub dpi: bool,
    /// Per-flow DRAM queue capacity in bytes.
    pub flow_capacity_bytes: u64,
    /// Per-flow buffer-monitor alarm threshold in bytes (None = off).
    pub buffer_threshold: Option<u64>,
    /// Per-flow host ring window (descriptors posted but not yet consumed).
    pub host_window: u32,
}

impl Default for IxpConfig {
    fn default() -> Self {
        IxpConfig {
            geometry: IxpGeometry::ixp2850(),
            rx_threads: 8,
            classify_threads: 8,
            tx_threads: 8,
            flow_threads: 2,
            flow_poll: Nanos::from_micros(20),
            stage_poll: Nanos::from_micros(2),
            dpi: false,
            flow_capacity_bytes: 4 << 20,
            buffer_threshold: None,
            host_window: 128,
        }
    }
}

/// Observable outputs of the island.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IxpEvent {
    /// A packet descriptor was posted on the host-bound message ring.
    DeliverToHost {
        /// Flow the packet belongs to.
        flow: FlowId,
        /// The packet.
        pkt: Packet,
        /// Posting time.
        at: Nanos,
    },
    /// A host packet left on the wire.
    TransmitToWire {
        /// The packet.
        pkt: Packet,
        /// Transmission time.
        at: Nanos,
    },
    /// The Rx classifier finished classifying a packet (DPI result).
    Classified {
        /// Flow the packet was mapped to.
        flow: FlowId,
        /// The packet (carrying its [`AppTag`]).
        pkt: Packet,
        /// Classification time.
        at: Nanos,
    },
    /// A flow's DRAM queue crossed the monitor threshold.
    BufferAlarm {
        /// Flow whose queue crossed.
        flow: FlowId,
        /// Occupancy at the crossing.
        bytes: u64,
        /// Crossing time.
        at: Nanos,
    },
}

/// Per-flow counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// Packets classified into this flow.
    pub rx_packets: u64,
    /// Bytes classified into this flow.
    pub rx_bytes: u64,
    /// Packets posted to the host.
    pub delivered: u64,
    /// Packets dropped on DRAM queue overflow.
    pub dropped: u64,
    /// Host-originated packets classified into this flow's egress queue.
    pub tx_packets: u64,
    /// High-water mark of the DRAM queue in bytes.
    pub max_queue_bytes: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Rx,
    Classify,
    FlowQueue(FlowId),
    Egress(FlowId),
    Tx,
}

#[derive(Debug)]
struct Internal {
    stage: Stage,
    pkt: Packet,
}

#[derive(Debug)]
struct FlowState {
    vm: u32,
    pool: ThreadPool,
    /// Egress (Tx classifier + scheduler of Figure 3): host packets from
    /// this VM queue here before the shared wire-Tx stage.
    egress: ThreadPool,
    monitor: BufferMonitor,
    stats: FlowStats,
    window: u32,
    window_max: u32,
    /// Packets that finished queue service but found the window closed.
    awaiting_window: Vec<Packet>,
}

/// The IXP island state machine. See the module-level documentation for
/// the pipeline layout and the crate docs for a driving example.
#[derive(Debug)]
pub struct IxpIsland {
    cfg: IxpConfig,
    rx: ThreadPool,
    classify: ThreadPool,
    tx: ThreadPool,
    flows: Vec<FlowState>,
    vm_to_flow: BTreeMap<u32, FlowId>,
    q: EventQueue<Internal>,
    now: Nanos,
    unroutable: u64,
}

impl IxpIsland {
    /// Creates an island with no registered flows.
    pub fn new(cfg: IxpConfig) -> Self {
        let cap = u64::MAX; // shared stages are not the DRAM-bounded queues
        IxpIsland {
            rx: ThreadPool::new(cfg.rx_threads, cfg.stage_poll, cap),
            classify: ThreadPool::new(cfg.classify_threads, cfg.stage_poll, cap),
            tx: ThreadPool::new(cfg.tx_threads, cfg.stage_poll, cap),
            flows: Vec::new(),
            vm_to_flow: BTreeMap::new(),
            q: EventQueue::new(),
            now: Nanos::ZERO,
            unroutable: 0,
            cfg,
        }
    }

    /// Registers a receive flow for guest VM index `vm` and returns its id.
    /// Registering the same VM twice returns the existing flow.
    pub fn register_flow(&mut self, vm: u32) -> FlowId {
        if let Some(&f) = self.vm_to_flow.get(&vm) {
            return f;
        }
        let id = FlowId(self.flows.len() as u32);
        self.flows.push(FlowState {
            vm,
            pool: ThreadPool::new(
                self.cfg.flow_threads,
                self.cfg.flow_poll,
                self.cfg.flow_capacity_bytes,
            ),
            egress: ThreadPool::new(
                self.cfg.flow_threads,
                self.cfg.flow_poll,
                self.cfg.flow_capacity_bytes,
            ),
            monitor: BufferMonitor::new(self.cfg.buffer_threshold),
            stats: FlowStats::default(),
            window: self.cfg.host_window,
            window_max: self.cfg.host_window,
            awaiting_window: Vec::new(),
        });
        self.vm_to_flow.insert(vm, id);
        id
    }

    /// The flow registered for a VM, if any.
    pub fn flow_of_vm(&self, vm: u32) -> Option<FlowId> {
        self.vm_to_flow.get(&vm).copied()
    }

    // ------------------------------------------------------------------
    // Software scheduler knobs (the IXP-side Tune levers, §2.1)
    // ------------------------------------------------------------------

    /// Sets the number of dequeuing threads serving `flow`'s queue.
    pub fn set_flow_threads(&mut self, flow: FlowId, threads: u32) {
        let now = self.now;
        if let Some(f) = self.flows.get_mut(flow.0 as usize) {
            for pkt in f.pool.set_threads(threads) {
                let t = now + Self::flow_service(&self.cfg, &pkt);
                self.q.schedule(
                    t,
                    Internal {
                        stage: Stage::FlowQueue(flow),
                        pkt,
                    },
                );
            }
        }
    }

    /// Like [`set_flow_threads`](Self::set_flow_threads) but validates the
    /// hardware thread budget first.
    ///
    /// # Errors
    /// Returns the shortfall in threads if the assignment would exceed the
    /// contexts available after the PCI engines' reservation.
    pub fn try_set_flow_threads(&mut self, flow: FlowId, threads: u32) -> Result<(), u32> {
        let current = self.flow_threads(flow);
        let proposed = self.threads_allocated() - current + threads;
        let budget = self.thread_budget();
        if proposed > budget {
            return Err(proposed - budget);
        }
        self.set_flow_threads(flow, threads);
        Ok(())
    }

    /// Current number of dequeuing threads serving `flow`.
    pub fn flow_threads(&self, flow: FlowId) -> u32 {
        self.flows
            .get(flow.0 as usize)
            .map(|f| f.pool.threads())
            .unwrap_or(0)
    }

    /// The VM a flow was registered for.
    pub fn vm_of_flow(&self, flow: FlowId) -> Option<u32> {
        self.flows.get(flow.0 as usize).map(|f| f.vm)
    }

    /// Sets the polling interval of `flow`'s dequeuing threads.
    pub fn set_flow_poll(&mut self, flow: FlowId, poll: Nanos) {
        if let Some(f) = self.flows.get_mut(flow.0 as usize) {
            f.pool.set_poll(poll);
        }
    }

    /// Sets the number of threads serving `flow`'s *egress* queue (the Tx
    /// scheduler of Figure 3).
    pub fn set_flow_tx_threads(&mut self, flow: FlowId, threads: u32) {
        let now = self.now;
        if let Some(f) = self.flows.get_mut(flow.0 as usize) {
            for pkt in f.egress.set_threads(threads) {
                let t = now + Self::flow_service(&self.cfg, &pkt);
                self.q.schedule(t, Internal { stage: Stage::Egress(flow), pkt });
            }
        }
    }

    /// Sets the polling interval of `flow`'s egress threads.
    pub fn set_flow_tx_poll(&mut self, flow: FlowId, poll: Nanos) {
        if let Some(f) = self.flows.get_mut(flow.0 as usize) {
            f.egress.set_poll(poll);
        }
    }

    /// Current egress-thread count for `flow`.
    pub fn flow_tx_threads(&self, flow: FlowId) -> u32 {
        self.flows
            .get(flow.0 as usize)
            .map(|f| f.egress.threads())
            .unwrap_or(0)
    }

    /// Bytes waiting in `flow`'s egress queue.
    pub fn flow_egress_bytes(&self, flow: FlowId) -> u64 {
        self.flows
            .get(flow.0 as usize)
            .map(|f| f.egress.queued_bytes())
            .unwrap_or(0)
    }

    /// Sets (or disables) the buffer alarm threshold for `flow`.
    pub fn set_buffer_threshold(&mut self, flow: FlowId, threshold: Option<u64>) {
        if let Some(f) = self.flows.get_mut(flow.0 as usize) {
            f.monitor.set_threshold(threshold);
        }
    }

    // ------------------------------------------------------------------
    // Data path inputs
    // ------------------------------------------------------------------

    /// A packet arrived from the wire.
    pub fn rx_from_wire(&mut self, now: Nanos, pkt: Packet) -> Vec<IxpEvent> {
        let mut out = Vec::new();
        self.advance(now, &mut out);
        if let Some((delay, pkt)) = self.rx.offer(pkt) {
            let t = now + delay + CostModel::rx().service_time(&self.cfg.geometry, pkt.len_bytes);
            self.q.schedule(t, Internal { stage: Stage::Rx, pkt });
        }
        out
    }

    /// A packet arrived from the host for transmission. Packets from a
    /// registered guest VM pass through that flow's egress queue (the Tx
    /// classifier/scheduler pair of Figure 3); unclassified packets go
    /// straight to the shared wire-Tx stage.
    pub fn tx_from_host(&mut self, now: Nanos, pkt: Packet) -> Vec<IxpEvent> {
        let mut out = Vec::new();
        self.advance(now, &mut out);
        let flow = pkt.src_vm.and_then(|vm| self.vm_to_flow.get(&vm).copied());
        match flow {
            Some(flow) => {
                let f = &mut self.flows[flow.0 as usize];
                f.stats.tx_packets += 1;
                if let Some((delay, pkt)) = f.egress.offer(pkt) {
                    let t = now + delay + Self::flow_service(&self.cfg, &pkt);
                    self.q.schedule(t, Internal { stage: Stage::Egress(flow), pkt });
                }
            }
            None => {
                if let Some((delay, pkt)) = self.tx.offer(pkt) {
                    let t = now
                        + delay
                        + CostModel::tx().service_time(&self.cfg.geometry, pkt.len_bytes);
                    self.q.schedule(t, Internal { stage: Stage::Tx, pkt });
                }
            }
        }
        out
    }

    /// The host consumed `n` descriptors of `flow`'s ring, reopening the
    /// delivery window.
    pub fn host_ack(&mut self, now: Nanos, flow: FlowId, n: u32) -> Vec<IxpEvent> {
        let mut out = Vec::new();
        self.advance(now, &mut out);
        let Some(f) = self.flows.get_mut(flow.0 as usize) else {
            return out;
        };
        f.window = (f.window + n).min(f.window_max);
        // Release packets that were blocked on the window.
        while f.window > 0 && !f.awaiting_window.is_empty() {
            let pkt = f.awaiting_window.remove(0);
            f.window -= 1;
            f.stats.delivered += 1;
            out.push(IxpEvent::DeliverToHost { flow, pkt, at: now });
        }
        // Freed queue space may admit new services.
        let mut starts = Vec::new();
        while let Some(pkt) = f.pool.start_next() {
            starts.push(pkt);
        }
        for pkt in starts {
            let t = now + Self::flow_service(&self.cfg, &pkt);
            self.q.schedule(
                t,
                Internal {
                    stage: Stage::FlowQueue(flow),
                    pkt,
                },
            );
        }
        out
    }

    // ------------------------------------------------------------------
    // Event-loop contract
    // ------------------------------------------------------------------

    /// Next internal completion time, if any work is in flight.
    ///
    /// This is a read-only O(1) peek: the island's event horizon is the
    /// head of its internal queue, which keeps itself clean of cancelled
    /// tombstones on mutation.
    pub fn next_event_time(&self) -> Option<Nanos> {
        self.q.peek_time()
    }

    /// Advances to `now`, appending all pipeline outputs that fall due to
    /// `out` (caller-owned and typically reused, so steady-state dispatch
    /// does not allocate).
    pub fn on_timer(&mut self, now: Nanos, out: &mut Vec<IxpEvent>) {
        self.advance(now, out);
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Counters for `flow`.
    pub fn flow_stats(&self, flow: FlowId) -> Option<FlowStats> {
        self.flows.get(flow.0 as usize).map(|f| f.stats)
    }

    /// Current DRAM queue occupancy of `flow` in bytes (queued + blocked
    /// on the host window).
    pub fn flow_queue_bytes(&self, flow: FlowId) -> u64 {
        self.flows
            .get(flow.0 as usize)
            .map(|f| {
                f.pool.queued_bytes()
                    + f.awaiting_window
                        .iter()
                        .map(|p| p.len_bytes as u64)
                        .sum::<u64>()
            })
            .unwrap_or(0)
    }

    /// Packets whose destination VM had no registered flow.
    pub fn unroutable(&self) -> u64 {
        self.unroutable
    }

    /// Thread contexts in use across all pools.
    pub fn threads_allocated(&self) -> u32 {
        self.cfg.rx_threads
            + self.cfg.classify_threads
            + self.cfg.tx_threads
            + self
                .flows
                .iter()
                .map(|f| f.pool.threads() + f.egress.threads())
                .sum::<u32>()
    }

    /// Threads available on the hardware after reserving two engines for
    /// the PCI Rx/Tx engines (as in Figure 3).
    pub fn thread_budget(&self) -> u32 {
        self.cfg.geometry.total_threads() - 2 * self.cfg.geometry.threads_per_engine
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn flow_service(cfg: &IxpConfig, pkt: &Packet) -> Nanos {
        CostModel::host_queue().service_time(&cfg.geometry, pkt.len_bytes)
    }

    fn advance(&mut self, now: Nanos, out: &mut Vec<IxpEvent>) {
        debug_assert!(now >= self.now, "ixp time went backwards");
        while let Some(t) = self.q.peek_time() {
            if t > now {
                break;
            }
            let (t, ev) = self.q.pop().expect("peeked");
            self.handle_done(t, ev, out);
        }
        self.now = now;
    }

    fn handle_done(&mut self, t: Nanos, ev: Internal, out: &mut Vec<IxpEvent>) {
        match ev.stage {
            Stage::Rx => {
                if let Some(pkt) = self.rx.finish_one() {
                    let d = CostModel::rx().service_time(&self.cfg.geometry, pkt.len_bytes);
                    self.q.schedule(t + d, Internal { stage: Stage::Rx, pkt });
                }
                // Hand to the classifier.
                if let Some((delay, pkt)) = self.classify.offer(ev.pkt) {
                    let d = self.classify_cost(&pkt);
                    self.q.schedule(
                        t + delay + d,
                        Internal {
                            stage: Stage::Classify,
                            pkt,
                        },
                    );
                }
            }
            Stage::Classify => {
                if let Some(pkt) = self.classify.finish_one() {
                    let d = self.classify_cost(&pkt);
                    self.q.schedule(
                        t + d,
                        Internal {
                            stage: Stage::Classify,
                            pkt,
                        },
                    );
                }
                let Some(&flow) = self.vm_to_flow.get(&ev.pkt.dst_vm) else {
                    self.unroutable += 1;
                    return;
                };
                out.push(IxpEvent::Classified {
                    flow,
                    pkt: ev.pkt,
                    at: t,
                });
                let f = &mut self.flows[flow.0 as usize];
                f.stats.rx_packets += 1;
                f.stats.rx_bytes += ev.pkt.len_bytes as u64;
                if let Some((delay, pkt)) = f.pool.offer(ev.pkt) {
                    let d = Self::flow_service(&self.cfg, &pkt);
                    self.q.schedule(
                        t + delay + d,
                        Internal {
                            stage: Stage::FlowQueue(flow),
                            pkt,
                        },
                    );
                } else {
                    f.stats.dropped = f.pool.dropped();
                }
                self.check_monitor(flow, t, out);
            }
            Stage::FlowQueue(flow) => {
                let f = &mut self.flows[flow.0 as usize];
                if let Some(pkt) = f.pool.finish_one() {
                    // A dequeue thread polls its queue between services:
                    // per-flow bandwidth ≈ threads / poll interval — the
                    // §2.1 knob pair.
                    let d = f.pool.poll() + Self::flow_service(&self.cfg, &pkt);
                    self.q.schedule(
                        t + d,
                        Internal {
                            stage: Stage::FlowQueue(flow),
                            pkt,
                        },
                    );
                }
                if f.window > 0 {
                    f.window -= 1;
                    f.stats.delivered += 1;
                    out.push(IxpEvent::DeliverToHost {
                        flow,
                        pkt: ev.pkt,
                        at: t,
                    });
                } else {
                    f.awaiting_window.push(ev.pkt);
                }
                self.check_monitor(flow, t, out);
            }
            Stage::Egress(flow) => {
                let f = &mut self.flows[flow.0 as usize];
                if let Some(pkt) = f.egress.finish_one() {
                    // Egress threads poll between services like their Rx
                    // counterparts: per-flow egress bandwidth ≈
                    // threads / poll.
                    let d = f.egress.poll() + Self::flow_service(&self.cfg, &pkt);
                    self.q.schedule(t + d, Internal { stage: Stage::Egress(flow), pkt });
                }
                // Hand to the shared wire-Tx stage.
                if let Some((delay, pkt)) = self.tx.offer(ev.pkt) {
                    let d = CostModel::tx().service_time(&self.cfg.geometry, pkt.len_bytes);
                    self.q.schedule(t + delay + d, Internal { stage: Stage::Tx, pkt });
                }
            }
            Stage::Tx => {
                if let Some(pkt) = self.tx.finish_one() {
                    let d = CostModel::tx().service_time(&self.cfg.geometry, pkt.len_bytes);
                    self.q.schedule(t + d, Internal { stage: Stage::Tx, pkt });
                }
                out.push(IxpEvent::TransmitToWire { pkt: ev.pkt, at: t });
            }
        }
    }

    fn classify_cost(&self, pkt: &Packet) -> Nanos {
        let model = if self.cfg.dpi
            && matches!(pkt.app, AppTag::Http { .. } | AppTag::Inference { .. })
        {
            CostModel::classify_dpi()
        } else {
            CostModel::classify_flow()
        };
        model.service_time(&self.cfg.geometry, pkt.len_bytes)
    }

    fn check_monitor(&mut self, flow: FlowId, t: Nanos, out: &mut Vec<IxpEvent>) {
        let bytes = self.flow_queue_bytes(flow);
        let f = &mut self.flows[flow.0 as usize];
        f.stats.max_queue_bytes = f.stats.max_queue_bytes.max(bytes);
        if f.monitor.on_level(t, bytes) {
            out.push(IxpEvent::BufferAlarm { flow, bytes, at: t });
        }
    }
}

/// The IXP island as a master-loop event source: its horizon is the
/// earliest internal stage-pipeline event, and advancing it emits the
/// classification/delivery/alarm/transmit events due at `now`.
impl simcore::Component for IxpIsland {
    type Event = IxpEvent;

    fn next_event_time(&self) -> Option<Nanos> {
        IxpIsland::next_event_time(self)
    }

    fn advance(&mut self, now: Nanos, out: &mut Vec<IxpEvent>) {
        self.on_timer(now, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(island: &mut IxpIsland, until: Nanos) -> Vec<IxpEvent> {
        let mut out = Vec::new();
        while let Some(t) = island.next_event_time() {
            if t > until {
                break;
            }
            island.on_timer(t, &mut out);
        }
        out
    }

    fn plain(id: u64, vm: u32) -> Packet {
        Packet::new(id, vm, 1500, AppTag::Plain)
    }

    #[test]
    fn rx_packet_traverses_pipeline() {
        let mut island = IxpIsland::new(IxpConfig::default());
        let flow = island.register_flow(1);
        island.rx_from_wire(Nanos::ZERO, plain(1, 1));
        let evs = drain(&mut island, Nanos::from_millis(1));
        assert!(evs
            .iter()
            .any(|e| matches!(e, IxpEvent::Classified { flow: f, .. } if *f == flow)));
        assert!(evs
            .iter()
            .any(|e| matches!(e, IxpEvent::DeliverToHost { flow: f, .. } if *f == flow)));
        let stats = island.flow_stats(flow).unwrap();
        assert_eq!(stats.rx_packets, 1);
        assert_eq!(stats.delivered, 1);
    }

    #[test]
    fn unknown_vm_is_unroutable() {
        let mut island = IxpIsland::new(IxpConfig::default());
        island.register_flow(1);
        island.rx_from_wire(Nanos::ZERO, plain(1, 99));
        drain(&mut island, Nanos::from_millis(1));
        assert_eq!(island.unroutable(), 1);
    }

    #[test]
    fn tx_path_emits_to_wire() {
        let mut island = IxpIsland::new(IxpConfig::default());
        island.tx_from_host(Nanos::ZERO, plain(7, 0));
        let evs = drain(&mut island, Nanos::from_millis(1));
        assert!(evs
            .iter()
            .any(|e| matches!(e, IxpEvent::TransmitToWire { pkt, .. } if pkt.id == 7)));
    }

    #[test]
    fn register_flow_idempotent() {
        let mut island = IxpIsland::new(IxpConfig::default());
        let a = island.register_flow(5);
        let b = island.register_flow(5);
        assert_eq!(a, b);
        assert_eq!(island.flow_of_vm(5), Some(a));
        assert_eq!(island.flow_of_vm(6), None);
    }

    #[test]
    fn window_backpressure_queues_in_dram() {
        let cfg = IxpConfig { host_window: 2, ..IxpConfig::default() };
        let mut island = IxpIsland::new(cfg);
        let flow = island.register_flow(1);
        for i in 0..10 {
            island.rx_from_wire(Nanos::ZERO, plain(i, 1));
        }
        let evs = drain(&mut island, Nanos::from_millis(10));
        let delivered = evs
            .iter()
            .filter(|e| matches!(e, IxpEvent::DeliverToHost { .. }))
            .count();
        assert_eq!(delivered, 2, "window limits deliveries");
        assert!(island.flow_queue_bytes(flow) > 0, "rest parked in DRAM");
        // Host consumes: the window reopens and more deliveries flow.
        let evs = island.host_ack(Nanos::from_millis(11), flow, 2);
        let more = evs
            .iter()
            .filter(|e| matches!(e, IxpEvent::DeliverToHost { .. }))
            .count();
        assert_eq!(more, 2);
    }

    #[test]
    fn buffer_alarm_fires_on_threshold() {
        let cfg = IxpConfig {
            host_window: 0, // host never consumes
            buffer_threshold: Some(6000), // four 1500-byte packets
            ..IxpConfig::default()
        };
        let mut island = IxpIsland::new(cfg);
        let flow = island.register_flow(1);
        let mut evs = Vec::new();
        for i in 0..10 {
            evs.extend(island.rx_from_wire(Nanos::from_micros(i * 50), plain(i, 1)));
        }
        evs.extend(drain(&mut island, Nanos::from_millis(10)));
        let alarms: Vec<_> = evs
            .iter()
            .filter(|e| matches!(e, IxpEvent::BufferAlarm { .. }))
            .collect();
        assert_eq!(alarms.len(), 1, "one alarm per crossing");
        if let IxpEvent::BufferAlarm { flow: f, bytes, .. } = alarms[0] {
            assert_eq!(*f, flow);
            assert!(*bytes >= 6000);
        }
    }

    #[test]
    fn more_threads_drain_faster() {
        // Measure time to deliver a burst with 1 vs 6 flow threads.
        let time_to_drain = |threads: u32| {
            let cfg = IxpConfig { flow_threads: threads, ..IxpConfig::default() };
            let mut island = IxpIsland::new(cfg);
            island.register_flow(1);
            for i in 0..200 {
                island.rx_from_wire(Nanos::ZERO, plain(i, 1));
            }
            let mut last = Nanos::ZERO;
            let mut evs = Vec::new();
            while let Some(t) = island.next_event_time() {
                evs.clear();
                island.on_timer(t, &mut evs);
                for ev in &evs {
                    if matches!(ev, IxpEvent::DeliverToHost { .. }) {
                        last = t;
                    }
                }
            }
            last
        };
        let slow = time_to_drain(1);
        let fast = time_to_drain(6);
        assert!(
            fast < slow,
            "6 threads ({fast}) should beat 1 thread ({slow})"
        );
    }

    #[test]
    fn dpi_slows_classification() {
        let latency = |dpi: bool| {
            let cfg = IxpConfig { dpi, ..IxpConfig::default() };
            let mut island = IxpIsland::new(cfg);
            island.register_flow(1);
            let pkt = Packet::new(1, 1, 1500, AppTag::Http { class_id: 3, write: false });
            island.rx_from_wire(Nanos::ZERO, pkt);
            let mut t_class = Nanos::ZERO;
            let mut evs = Vec::new();
            while let Some(t) = island.next_event_time() {
                evs.clear();
                island.on_timer(t, &mut evs);
                for ev in &evs {
                    if matches!(ev, IxpEvent::Classified { .. }) {
                        t_class = t;
                    }
                }
            }
            t_class
        };
        assert!(latency(true) > latency(false));
    }

    #[test]
    fn thread_budget_accounting() {
        let mut island = IxpIsland::new(IxpConfig::default());
        let base = island.threads_allocated();
        island.register_flow(1);
        // Each flow allocates an Rx dequeue pool and an egress pool.
        assert_eq!(island.threads_allocated(), base + 4);
        assert_eq!(island.thread_budget(), 112); // 128 − 2 engines for PCI
    }

    #[test]
    fn set_flow_threads_releases_backlog() {
        let cfg = IxpConfig { flow_threads: 0, ..IxpConfig::default() }; // nothing drains initially
        let mut island = IxpIsland::new(cfg);
        let flow = island.register_flow(1);
        for i in 0..5 {
            island.rx_from_wire(Nanos::ZERO, plain(i, 1));
        }
        drain(&mut island, Nanos::from_millis(5));
        assert_eq!(island.flow_stats(flow).unwrap().delivered, 0);
        island.set_flow_threads(flow, 4);
        drain(&mut island, Nanos::from_millis(10));
        assert_eq!(island.flow_stats(flow).unwrap().delivered, 5);
    }

    #[test]
    fn classified_event_carries_app_tag() {
        let cfg = IxpConfig { dpi: true, ..IxpConfig::default() };
        let mut island = IxpIsland::new(cfg);
        island.register_flow(2);
        let pkt = Packet::new(1, 2, 800, AppTag::Http { class_id: 9, write: true });
        island.rx_from_wire(Nanos::ZERO, pkt);
        let evs = drain(&mut island, Nanos::from_millis(1));
        let classified = evs.iter().find_map(|e| match e {
            IxpEvent::Classified { pkt, .. } => Some(*pkt),
            _ => None,
        });
        assert!(matches!(
            classified.unwrap().app,
            AppTag::Http { class_id: 9, write: true }
        ));
    }

    #[test]
    fn thread_budget_is_enforced_by_try_set() {
        let mut island = IxpIsland::new(IxpConfig::default());
        let flow = island.register_flow(1);
        assert!(island.try_set_flow_threads(flow, 8).is_ok());
        assert_eq!(island.flow_threads(flow), 8);
        let headroom = island.thread_budget() - island.threads_allocated();
        let too_many = 8 + headroom + 1;
        let err = island.try_set_flow_threads(flow, too_many).unwrap_err();
        assert_eq!(err, 1, "shortfall reported");
        assert_eq!(island.flow_threads(flow), 8, "assignment unchanged");
    }

    #[test]
    fn egress_routes_through_per_flow_queue() {
        let mut island = IxpIsland::new(IxpConfig::default());
        let flow = island.register_flow(1);
        let pkt = Packet::new(5, u32::MAX, 1000, AppTag::Plain).with_src(1);
        island.tx_from_host(Nanos::ZERO, pkt);
        let evs = drain(&mut island, Nanos::from_millis(1));
        assert!(evs
            .iter()
            .any(|e| matches!(e, IxpEvent::TransmitToWire { pkt, .. } if pkt.id == 5)));
        assert_eq!(island.flow_stats(flow).unwrap().tx_packets, 1);
    }

    #[test]
    fn unclassified_egress_skips_flow_queues() {
        let mut island = IxpIsland::new(IxpConfig::default());
        let flow = island.register_flow(1);
        island.tx_from_host(Nanos::ZERO, Packet::new(6, u32::MAX, 1000, AppTag::Plain));
        drain(&mut island, Nanos::from_millis(1));
        assert_eq!(island.flow_stats(flow).unwrap().tx_packets, 0);
    }

    #[test]
    fn egress_threads_partition_outbound_bandwidth() {
        // Two VMs blast outbound traffic; the flow with more egress
        // threads transmits proportionally more in the same window.
        let cfg = IxpConfig {
            flow_poll: Nanos::from_millis(10), // one pkt per thread per 10ms
            ..IxpConfig::default()
        };
        let mut island = IxpIsland::new(cfg);
        let fa = island.register_flow(1);
        let fb = island.register_flow(2);
        island.set_flow_tx_threads(fa, 1);
        island.set_flow_tx_threads(fb, 4);
        for i in 0..200u64 {
            island.tx_from_host(
                Nanos::ZERO,
                Packet::new(i, u32::MAX, 1000, AppTag::Plain).with_src(1),
            );
            island.tx_from_host(
                Nanos::ZERO,
                Packet::new(1000 + i, u32::MAX, 1000, AppTag::Plain).with_src(2),
            );
        }
        let evs = drain(&mut island, Nanos::from_millis(500));
        let (mut a, mut b) = (0u32, 0u32);
        for e in evs {
            if let IxpEvent::TransmitToWire { pkt, .. } = e {
                if pkt.id < 1000 { a += 1 } else { b += 1 }
            }
        }
        assert!(b > a * 3, "4 threads ({b}) ≫ 1 thread ({a})");
        assert!(a > 0, "the slow flow still makes progress");
    }
}
