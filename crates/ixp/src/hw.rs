//! IXP2850 hardware geometry and per-packet cost modelling.
//!
//! The IXP2850 (per the paper's §2.1 and the Intel IXP2xxx documentation)
//! couples 16 RISC microengines, each with 8 hardware thread contexts that
//! round-robin on memory references, to a deep memory hierarchy. We model
//! per-packet task cost as instruction time plus *partially hidden* memory
//! stall time: with 8 contexts per engine, most of a reference's latency
//! overlaps with other threads' execution, so only a configurable fraction
//! of it lands on the critical path.

use simcore::{Cycles, Nanos};

/// Memory levels of the IXP2850 hierarchy with their access latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemLevel {
    /// Per-microengine local memory (640 words).
    Local,
    /// 16 KB shared scratchpad.
    Scratch,
    /// 256 MB external SRAM (packet descriptor queues).
    Sram,
    /// 256 MB external DRAM (packet payloads).
    Dram,
}

impl MemLevel {
    /// Access latency in microengine cycles (order-of-magnitude values
    /// from the IXP2xxx hardware reference).
    pub fn latency(self) -> Cycles {
        match self {
            MemLevel::Local => Cycles(3),
            MemLevel::Scratch => Cycles(60),
            MemLevel::Sram => Cycles(90),
            MemLevel::Dram => Cycles(120),
        }
    }
}

/// Static platform geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IxpGeometry {
    /// Number of microengines (16 on the IXP2850).
    pub microengines: u32,
    /// Hardware thread contexts per microengine (8).
    pub threads_per_engine: u32,
    /// Microengine clock frequency in Hz (1.4 GHz).
    pub clock_hz: f64,
    /// Fraction of memory latency that lands on the critical path after
    /// multithreaded latency hiding (0 = perfectly hidden, 1 = fully
    /// exposed).
    pub stall_exposure: f64,
}

impl IxpGeometry {
    /// The IXP2850 as used in the paper.
    pub fn ixp2850() -> Self {
        IxpGeometry {
            microengines: 16,
            threads_per_engine: 8,
            clock_hz: 1.4e9,
            stall_exposure: 0.25,
        }
    }

    /// Total hardware thread contexts.
    pub fn total_threads(&self) -> u32 {
        self.microengines * self.threads_per_engine
    }
}

impl Default for IxpGeometry {
    fn default() -> Self {
        Self::ixp2850()
    }
}

/// Per-packet processing cost for one pipeline task, expressed as
/// instruction cycles plus memory references by level.
///
/// # Example
///
/// ```
/// use ixp::{CostModel, IxpGeometry};
/// let rx = CostModel::rx();
/// let t = rx.service_time(&IxpGeometry::ixp2850(), 1500);
/// assert!(t.as_nanos() > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Pure instruction cycles per packet.
    pub instr: Cycles,
    /// Scratchpad references per packet.
    pub scratch_refs: u32,
    /// SRAM references per packet (descriptor handling).
    pub sram_refs: u32,
    /// DRAM references per packet (payload handling).
    pub dram_refs: u32,
    /// Additional DRAM references per 64 payload bytes touched (0 for
    /// tasks that never read the payload).
    pub dram_refs_per_64b: f64,
}

impl CostModel {
    /// Packet receive from the wire into DRAM.
    pub fn rx() -> Self {
        CostModel {
            instr: Cycles(500),
            scratch_refs: 1,
            sram_refs: 2,
            dram_refs: 4,
            dram_refs_per_64b: 0.0,
        }
    }

    /// Packet transmit from DRAM to the wire.
    pub fn tx() -> Self {
        CostModel {
            instr: Cycles(450),
            scratch_refs: 1,
            sram_refs: 2,
            dram_refs: 4,
            dram_refs_per_64b: 0.0,
        }
    }

    /// Flow classification by header fields (destination IP → VM flow).
    pub fn classify_flow() -> Self {
        CostModel {
            instr: Cycles(300),
            scratch_refs: 1,
            sram_refs: 1,
            dram_refs: 1,
            dram_refs_per_64b: 0.0,
        }
    }

    /// Deep packet inspection (RUBiS request classification): walks part of
    /// the payload in DRAM.
    pub fn classify_dpi() -> Self {
        CostModel {
            instr: Cycles(2_000),
            scratch_refs: 1,
            sram_refs: 1,
            dram_refs: 2,
            dram_refs_per_64b: 0.5,
        }
    }

    /// Enqueue/dequeue on the host-bound message ring.
    pub fn host_queue() -> Self {
        CostModel {
            instr: Cycles(250),
            scratch_refs: 1,
            sram_refs: 2,
            dram_refs: 1,
            dram_refs_per_64b: 0.0,
        }
    }

    /// Service time for one packet of `len_bytes` under `geom`.
    pub fn service_time(&self, geom: &IxpGeometry, len_bytes: u32) -> Nanos {
        let payload_refs = (self.dram_refs_per_64b * (len_bytes as f64 / 64.0)).round() as u64;
        let stall_cycles = (self.scratch_refs as u64 * MemLevel::Scratch.latency().count()
            + self.sram_refs as u64 * MemLevel::Sram.latency().count()
            + (self.dram_refs as u64 + payload_refs) * MemLevel::Dram.latency().count())
            as f64
            * geom.stall_exposure;
        let total = Cycles(self.instr.count() + stall_cycles.round() as u64);
        total.to_nanos(geom.clock_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_totals() {
        let g = IxpGeometry::ixp2850();
        assert_eq!(g.total_threads(), 128);
        assert_eq!(g.clock_hz, 1.4e9);
    }

    #[test]
    fn memory_hierarchy_is_ordered() {
        assert!(MemLevel::Local.latency() < MemLevel::Scratch.latency());
        assert!(MemLevel::Scratch.latency() < MemLevel::Sram.latency());
        assert!(MemLevel::Sram.latency() < MemLevel::Dram.latency());
    }

    #[test]
    fn dpi_costs_more_than_flow_classification() {
        let g = IxpGeometry::ixp2850();
        let flow = CostModel::classify_flow().service_time(&g, 1500);
        let dpi = CostModel::classify_dpi().service_time(&g, 1500);
        assert!(dpi > flow * 2, "dpi {dpi} vs flow {flow}");
    }

    #[test]
    fn payload_length_scales_dpi_cost() {
        let g = IxpGeometry::ixp2850();
        let small = CostModel::classify_dpi().service_time(&g, 64);
        let large = CostModel::classify_dpi().service_time(&g, 1500);
        assert!(large > small);
    }

    #[test]
    fn stall_exposure_zero_leaves_instruction_time() {
        let mut g = IxpGeometry::ixp2850();
        g.stall_exposure = 0.0;
        let t = CostModel::rx().service_time(&g, 1500);
        // 500 cycles at 1.4 GHz ≈ 357 ns.
        assert_eq!(t, Cycles(500).to_nanos(1.4e9));
    }

    #[test]
    fn service_times_are_sub_microsecond_scale() {
        // Sanity: the IXP is built to do millions of packets per second.
        let g = IxpGeometry::ixp2850();
        for c in [
            CostModel::rx(),
            CostModel::tx(),
            CostModel::classify_flow(),
            CostModel::host_queue(),
        ] {
            let t = c.service_time(&g, 1500);
            assert!(t < Nanos::from_micros(2), "{t}");
        }
    }
}
