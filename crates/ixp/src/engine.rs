//! Cycle-level microengine model, used to validate the analytic
//! [`CostModel`].
//!
//! The IXP2850's microengines interleave 8 hardware thread contexts with a
//! zero-cost context switch on every memory reference (§2.1): while one
//! thread waits out an SRAM/DRAM access, the others execute. The pipeline
//! model uses a closed-form approximation (instruction time + a fixed
//! *exposure fraction* of memory stall time); this module simulates the
//! actual interleaving cycle-by-cycle so tests can check the approximation
//! against ground truth for the shipped task profiles.

use crate::{CostModel, IxpGeometry, MemLevel};

/// One task's execution shape on a microengine: alternating compute
/// segments and memory references.
#[derive(Debug, Clone)]
pub struct TaskProfile {
    /// Instruction cycles between consecutive memory references.
    pub compute_per_ref: u64,
    /// Memory references per packet, with their levels.
    pub refs: Vec<MemLevel>,
    /// Trailing instruction cycles after the last reference.
    pub tail_compute: u64,
}

impl TaskProfile {
    /// Derives a representative profile from a [`CostModel`]: the model's
    /// instruction budget is spread evenly between its memory references.
    pub fn from_cost_model(cost: &CostModel, len_bytes: u32) -> Self {
        let payload_refs = (cost.dram_refs_per_64b * (len_bytes as f64 / 64.0)).round() as u32;
        let mut refs = Vec::new();
        for _ in 0..cost.scratch_refs {
            refs.push(MemLevel::Scratch);
        }
        for _ in 0..cost.sram_refs {
            refs.push(MemLevel::Sram);
        }
        for _ in 0..(cost.dram_refs + payload_refs) {
            refs.push(MemLevel::Dram);
        }
        let segments = refs.len() as u64 + 1;
        let per = cost.instr.count() / segments;
        TaskProfile {
            compute_per_ref: per,
            refs,
            tail_compute: cost.instr.count() - per * (segments - 1),
        }
    }

    fn total_compute(&self) -> u64 {
        self.compute_per_ref * self.refs.len() as u64 + self.tail_compute
    }

    fn total_stall(&self) -> u64 {
        self.refs.iter().map(|r| r.latency().count()).sum()
    }
}

/// Simulates `threads` contexts on one microengine, each repeatedly
/// executing `profile`, for `packets_per_thread` packets each. Returns the
/// achieved packets-per-1000-cycles throughput.
///
/// Round-robin semantics: a thread runs until its next memory reference,
/// issues it, and yields; it becomes runnable again once the reference
/// completes. The engine idles only when every context is stalled.
pub fn simulate_engine(profile: &TaskProfile, threads: u32, packets_per_thread: u32) -> f64 {
    assert!(threads >= 1, "need at least one context");
    #[derive(Clone)]
    struct Ctx {
        /// Cycle at which this context's pending memory reference completes
        /// (0 = runnable).
        ready_at: u64,
        /// Position in the profile: next reference index.
        next_ref: usize,
        packets_done: u32,
    }
    let mut ctxs = vec![
        Ctx { ready_at: 0, next_ref: 0, packets_done: 0 };
        threads as usize
    ];
    let mut cycle: u64 = 0;
    let total_packets = packets_per_thread as u64 * threads as u64;
    let mut done: u64 = 0;
    let mut rr = 0usize;
    while done < total_packets {
        // Pick the next runnable context round-robin.
        let runnable = (0..ctxs.len())
            .map(|i| (rr + i) % ctxs.len())
            .find(|&i| ctxs[i].ready_at <= cycle && ctxs[i].packets_done < packets_per_thread);
        let Some(i) = runnable else {
            // Everyone is stalled: advance to the earliest completion.
            cycle = ctxs
                .iter()
                .filter(|c| c.packets_done < packets_per_thread)
                .map(|c| c.ready_at)
                .min()
                .expect("unfinished context exists");
            continue;
        };
        rr = i + 1;
        let c = &mut ctxs[i];
        if c.next_ref < profile.refs.len() {
            // Compute segment, then issue the reference and yield.
            cycle += profile.compute_per_ref;
            let lat = profile.refs[c.next_ref].latency().count();
            c.ready_at = cycle + lat;
            c.next_ref += 1;
        } else {
            // Tail compute finishes the packet.
            cycle += profile.tail_compute;
            c.packets_done += 1;
            c.next_ref = 0;
            c.ready_at = cycle;
            done += 1;
        }
    }
    total_packets as f64 * 1000.0 / cycle as f64
}

/// The effective per-packet cost (cycles) observed by the cycle simulator.
pub fn effective_cycles_per_packet(profile: &TaskProfile, threads: u32) -> f64 {
    1000.0 / simulate_engine(profile, threads, 200)
}

/// The analytic model's prediction for the same task: instruction cycles
/// plus the exposed fraction of stall cycles.
pub fn analytic_cycles_per_packet(profile: &TaskProfile, geom: &IxpGeometry) -> f64 {
    profile.total_compute() as f64 + profile.total_stall() as f64 * geom.stall_exposure
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_pays_full_stalls() {
        let p = TaskProfile {
            compute_per_ref: 100,
            refs: vec![MemLevel::Dram, MemLevel::Sram],
            tail_compute: 100,
        };
        let cy = effective_cycles_per_packet(&p, 1);
        let expect = (p.total_compute() + p.total_stall()) as f64;
        assert!(
            (cy - expect).abs() < expect * 0.01,
            "one context hides nothing: {cy} vs {expect}"
        );
    }

    #[test]
    fn eight_threads_hide_most_stalls() {
        // Compute-heavy enough that 8 contexts cover the latencies.
        let p = TaskProfile {
            compute_per_ref: 60,
            refs: vec![MemLevel::Dram, MemLevel::Sram, MemLevel::Scratch],
            tail_compute: 60,
        };
        let cy = effective_cycles_per_packet(&p, 8);
        let compute = p.total_compute() as f64;
        assert!(
            cy < compute * 1.10,
            "8 contexts approach pure-compute throughput: {cy} vs {compute}"
        );
    }

    #[test]
    fn throughput_improves_monotonically_with_threads() {
        let p = TaskProfile {
            compute_per_ref: 30,
            refs: vec![MemLevel::Dram; 4],
            tail_compute: 30,
        };
        let mut last = f64::INFINITY;
        for t in [1u32, 2, 4, 8] {
            let cy = effective_cycles_per_packet(&p, t);
            assert!(cy <= last + 1e-9, "{t} threads: {cy} vs {last}");
            last = cy;
        }
    }

    #[test]
    fn analytic_model_tracks_cycle_simulation_for_shipped_tasks() {
        // The pipeline's closed-form costs must stay within 40% of the
        // cycle-level ground truth at the hardware's 8-context geometry
        // for every shipped task profile. The analytic model is expected
        // to land on the *high* side: the idealized interleaving here
        // hides essentially all stall latency at 8 contexts, while the
        // 25% exposure factor keeps a margin for SDRAM bank conflicts and
        // memory-command-queue limits real IXPs hit.
        let geom = IxpGeometry::ixp2850();
        for (name, cost, len) in [
            ("rx", CostModel::rx(), 1500u32),
            ("tx", CostModel::tx(), 1500),
            ("classify_flow", CostModel::classify_flow(), 1500),
            ("classify_dpi", CostModel::classify_dpi(), 1500),
            ("host_queue", CostModel::host_queue(), 1500),
        ] {
            let profile = TaskProfile::from_cost_model(&cost, len);
            let simulated = effective_cycles_per_packet(&profile, geom.threads_per_engine);
            let analytic = analytic_cycles_per_packet(&profile, &geom);
            let ratio = analytic / simulated;
            assert!(
                (0.95..=1.40).contains(&ratio),
                "{name}: analytic {analytic:.0}cy vs simulated {simulated:.0}cy (ratio {ratio:.2})"
            );
        }
    }
}
